#include "engine/hash_join.h"

#include <map>

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

using testing::Edges;

/// Brute-force join oracle: list of (a_rid, b_rid) matches.
std::vector<std::pair<rid_t, rid_t>> Oracle(const Table& a, int acol,
                                            const Table& b, int bcol) {
  std::vector<std::pair<rid_t, rid_t>> m;
  const auto& av = a.column(static_cast<size_t>(acol)).ints();
  const auto& bv = b.column(static_cast<size_t>(bcol)).ints();
  for (rid_t i = 0; i < a.num_rows(); ++i) {
    for (rid_t j = 0; j < b.num_rows(); ++j) {
      if (av[i] == bv[j]) m.emplace_back(i, j);
    }
  }
  return m;
}

/// Extracts sorted (a, b) witness pairs from a join's backward arrays.
std::vector<std::pair<rid_t, rid_t>> Witnesses(const JoinResult& res) {
  const auto& a_bw = res.lineage.input(0).backward.array();
  const auto& b_bw = res.lineage.input(1).backward.array();
  EXPECT_EQ(a_bw.size(), b_bw.size());
  std::vector<std::pair<rid_t, rid_t>> w;
  for (size_t o = 0; o < a_bw.size(); ++o) w.emplace_back(a_bw[o], b_bw[o]);
  std::sort(w.begin(), w.end());
  return w;
}

JoinSpec MnSpec() {
  JoinSpec s;
  s.left_key = zipf_table::kZ;
  s.right_key = zipf_table::kZ;
  return s;
}

TEST(HashJoinTest, MnInjectMatchesOracle) {
  Table a = MakeZipfTable(60, 10, 1.0, 1);
  Table b = MakeZipfTable(200, 15, 1.0, 2);
  auto res = HashJoinExec(a, "a", b, "b", MnSpec(), CaptureOptions::Inject());
  auto oracle = Oracle(a, zipf_table::kZ, b, zipf_table::kZ);
  std::sort(oracle.begin(), oracle.end());
  EXPECT_EQ(Witnesses(res), oracle);
  EXPECT_EQ(res.output.num_rows(), oracle.size());
  EXPECT_EQ(res.output_cardinality, oracle.size());
}

TEST(HashJoinTest, MnForwardIndexesInvertBackward) {
  Table a = MakeZipfTable(60, 10, 1.0, 1);
  Table b = MakeZipfTable(200, 15, 1.0, 2);
  auto res = HashJoinExec(a, "a", b, "b", MnSpec(), CaptureOptions::Inject());
  EXPECT_TRUE(testing::AreInverse(res.lineage.input(0).backward,
                                  res.lineage.input(0).forward));
  EXPECT_TRUE(testing::AreInverse(res.lineage.input(1).backward,
                                  res.lineage.input(1).forward));
}

TEST(HashJoinTest, DeferMatchesInject) {
  Table a = MakeZipfTable(80, 10, 1.0, 3);
  Table b = MakeZipfTable(300, 12, 0.8, 4);
  auto inj = HashJoinExec(a, "a", b, "b", MnSpec(),
                          CaptureOptions::Inject());
  auto def = HashJoinExec(a, "a", b, "b", MnSpec(), CaptureOptions::Defer());
  EXPECT_EQ(Witnesses(inj), Witnesses(def));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward),
            Edges(def.lineage.input(0).forward));
  EXPECT_EQ(Edges(inj.lineage.input(1).forward),
            Edges(def.lineage.input(1).forward));
}

TEST(HashJoinTest, DeferForwardOnlyMatchesInject) {
  Table a = MakeZipfTable(80, 10, 1.0, 3);
  Table b = MakeZipfTable(300, 12, 0.8, 4);
  JoinSpec spec = MnSpec();
  spec.defer_variant = JoinSpec::DeferVariant::kForwardOnly;
  auto inj = HashJoinExec(a, "a", b, "b", MnSpec(),
                          CaptureOptions::Inject());
  auto dfw = HashJoinExec(a, "a", b, "b", spec, CaptureOptions::Defer());
  EXPECT_EQ(Witnesses(inj), Witnesses(dfw));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward),
            Edges(dfw.lineage.input(0).forward));
}

TEST(HashJoinTest, PkFkJoin) {
  Table gids = MakeGidsTable(20);
  Table fact = MakeZipfTable(500, 20, 1.0, 5);
  JoinSpec spec;
  spec.left_key = 0;  // gids.id
  spec.right_key = zipf_table::kZ;
  spec.pk_build = true;
  auto res =
      HashJoinExec(gids, "gids", fact, "zipf", spec, CaptureOptions::Inject());
  // Every fact row joins exactly once (fk always present in gids).
  EXPECT_EQ(res.output.num_rows(), fact.num_rows());
  // B-side forward is a 1:1 rid array under the pk-fk optimization.
  ASSERT_EQ(res.lineage.input(1).forward.kind(), LineageIndex::Kind::kArray);
  auto oracle = Oracle(gids, 0, fact, zipf_table::kZ);
  std::sort(oracle.begin(), oracle.end());
  EXPECT_EQ(Witnesses(res), oracle);
}

TEST(HashJoinTest, PkFkDeferEqualsInject) {
  Table gids = MakeGidsTable(15);
  Table fact = MakeZipfTable(400, 15, 1.0, 6);
  JoinSpec spec;
  spec.left_key = 0;
  spec.right_key = zipf_table::kZ;
  spec.pk_build = true;
  auto inj =
      HashJoinExec(gids, "gids", fact, "zipf", spec, CaptureOptions::Inject());
  auto def =
      HashJoinExec(gids, "gids", fact, "zipf", spec, CaptureOptions::Defer());
  EXPECT_EQ(Witnesses(inj), Witnesses(def));
}

TEST(HashJoinTest, TrueCardinalityHintsPreallocateForward) {
  Table a = MakeZipfTable(50, 8, 1.0, 7);
  Table b = MakeZipfTable(400, 8, 1.0, 8);
  CardinalityHints hints;
  hints.per_key_counts = CountPerKey(b, zipf_table::kZ);
  hints.have_per_key_counts = true;
  CaptureOptions opts = CaptureOptions::Inject();
  opts.hints = &hints;
  auto tc = HashJoinExec(a, "a", b, "b", MnSpec(), opts);
  auto plain = HashJoinExec(a, "a", b, "b", MnSpec(),
                            CaptureOptions::Inject());
  EXPECT_EQ(Witnesses(tc), Witnesses(plain));
  // Each left row's forward list was allocated exactly once.
  const RidIndex& fw = tc.lineage.input(0).forward.index();
  for (size_t r = 0; r < fw.size(); ++r) {
    if (fw.list(r).size() > 0) {
      ASSERT_LE(fw.list(r).realloc_count(), 1u);
    }
  }
}

TEST(HashJoinTest, NoMaterializeStillCapturesLineage) {
  Table a = MakeZipfTable(50, 5, 1.0, 9);
  Table b = MakeZipfTable(200, 5, 1.0, 10);
  JoinSpec spec = MnSpec();
  spec.materialize_output = false;
  auto res = HashJoinExec(a, "a", b, "b", spec, CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 0u);
  auto oracle = Oracle(a, zipf_table::kZ, b, zipf_table::kZ);
  EXPECT_EQ(res.output_cardinality, oracle.size());
  std::sort(oracle.begin(), oracle.end());
  EXPECT_EQ(Witnesses(res), oracle);
}

TEST(HashJoinTest, LogicIdxMatchesInject) {
  Table a = MakeZipfTable(60, 6, 1.0, 11);
  Table b = MakeZipfTable(250, 6, 1.0, 12);
  auto inj = HashJoinExec(a, "a", b, "b", MnSpec(),
                          CaptureOptions::Inject());
  auto idx = HashJoinExec(a, "a", b, "b", MnSpec(),
                          CaptureOptions::Mode(CaptureMode::kLogicIdx));
  EXPECT_EQ(Witnesses(inj), Witnesses(idx));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward),
            Edges(idx.lineage.input(0).forward));
  EXPECT_EQ(Edges(inj.lineage.input(1).forward),
            Edges(idx.lineage.input(1).forward));
}

TEST(HashJoinTest, EmptyProbeResult) {
  Table a = MakeZipfTable(50, 5, 1.0, 13);
  Schema s;
  s.AddField("id", DataType::kInt64);
  s.AddField("z", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table b(s);
  b.AppendRow({int64_t{0}, int64_t{1000}, 0.0});  // no matching key
  auto res = HashJoinExec(a, "a", b, "b", MnSpec(), CaptureOptions::Inject());
  EXPECT_EQ(res.output_cardinality, 0u);
}

TEST(HashJoinTest, ColumnNameCollisionPrefixed) {
  Table a = MakeZipfTable(10, 2, 0.0, 14);
  Table b = MakeZipfTable(10, 2, 0.0, 15);
  auto res = HashJoinExec(a, "a", b, "bee", MnSpec(), CaptureOptions::None());
  EXPECT_GE(res.output.ColumnIndex("bee_z"), 0);
  EXPECT_GE(res.output.ColumnIndex("z"), 0);
}

class JoinPropertySweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int>> {};

TEST_P(JoinPropertySweep, AllSmokeVariantsAgree) {
  auto [na, nb, groups] = GetParam();
  Table a = MakeZipfTable(na, static_cast<uint64_t>(groups), 1.0, 21);
  Table b = MakeZipfTable(nb, static_cast<uint64_t>(groups), 1.0, 22);
  auto inj = HashJoinExec(a, "a", b, "b", MnSpec(),
                          CaptureOptions::Inject());
  auto def = HashJoinExec(a, "a", b, "b", MnSpec(), CaptureOptions::Defer());
  JoinSpec dfw_spec = MnSpec();
  dfw_spec.defer_variant = JoinSpec::DeferVariant::kForwardOnly;
  auto dfw = HashJoinExec(a, "a", b, "b", dfw_spec, CaptureOptions::Defer());
  auto oracle = Oracle(a, zipf_table::kZ, b, zipf_table::kZ);
  std::sort(oracle.begin(), oracle.end());
  ASSERT_EQ(Witnesses(inj), oracle);
  ASSERT_EQ(Witnesses(def), oracle);
  ASSERT_EQ(Witnesses(dfw), oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinPropertySweep,
    ::testing::Combine(::testing::Values(10, 100), ::testing::Values(50, 500),
                       ::testing::Values(2, 10, 50)));

}  // namespace
}  // namespace smoke
