#include "common/rid_vec.h"

#include <gtest/gtest.h>

namespace smoke {
namespace {

TEST(RidVecTest, StartsEmpty) {
  RidVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(RidVecTest, InitialCapacityIsTen) {
  RidVec v;
  v.PushBack(1);
  EXPECT_EQ(v.capacity(), RidVec::kInitialCapacity);
  EXPECT_EQ(v.capacity(), 10u);
}

TEST(RidVecTest, GrowsByOnePointFive) {
  RidVec v;
  for (int i = 0; i < 11; ++i) v.PushBack(static_cast<rid_t>(i));
  // 10 -> 10 + 5 + 1 = 16.
  EXPECT_EQ(v.capacity(), 16u);
  for (int i = 11; i < 17; ++i) v.PushBack(static_cast<rid_t>(i));
  EXPECT_EQ(v.capacity(), 25u);  // 16 + 8 + 1
}

TEST(RidVecTest, PushBackPreservesValues) {
  RidVec v;
  for (rid_t i = 0; i < 1000; ++i) v.PushBack(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (rid_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(RidVecTest, ReserveIsExact) {
  RidVec v(137);
  EXPECT_EQ(v.capacity(), 137u);
  EXPECT_EQ(v.size(), 0u);
}

TEST(RidVecTest, ReserveAvoidsReallocation) {
  RidVec v;
  v.Reserve(1000);
  uint32_t before = v.realloc_count();
  for (rid_t i = 0; i < 1000; ++i) v.PushBack(i);
  EXPECT_EQ(v.realloc_count(), before);  // no further reallocation
}

TEST(RidVecTest, UnreservedIncursReallocations) {
  RidVec v;
  for (rid_t i = 0; i < 1000; ++i) v.PushBack(i);
  EXPECT_GT(v.realloc_count(), 5u);
}

TEST(RidVecTest, ReserveSmallerIsNoop) {
  RidVec v(100);
  v.Reserve(10);
  EXPECT_EQ(v.capacity(), 100u);
}

TEST(RidVecTest, CopyPreservesContent) {
  RidVec v;
  for (rid_t i = 0; i < 50; ++i) v.PushBack(i);
  RidVec w(v);
  ASSERT_EQ(w.size(), 50u);
  for (rid_t i = 0; i < 50; ++i) EXPECT_EQ(w[i], i);
  // Deep copy: mutating w does not affect v.
  w[0] = 99;
  EXPECT_EQ(v[0], 0u);
}

TEST(RidVecTest, MoveTransfersOwnership) {
  RidVec v;
  for (rid_t i = 0; i < 50; ++i) v.PushBack(i);
  const rid_t* data = v.data();
  RidVec w(std::move(v));
  EXPECT_EQ(w.data(), data);
  EXPECT_EQ(w.size(), 50u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(RidVecTest, MoveAssignReleasesOld) {
  RidVec v;
  v.PushBack(1);
  RidVec w;
  w.PushBack(2);
  w = std::move(v);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 1u);
}

TEST(RidVecTest, ClearKeepsCapacity) {
  RidVec v;
  for (rid_t i = 0; i < 20; ++i) v.PushBack(i);
  size_t cap = v.capacity();
  v.Clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);
}

TEST(RidVecTest, IterationMatchesIndexing) {
  RidVec v;
  for (rid_t i = 0; i < 30; ++i) v.PushBack(i + 7);
  rid_t expect = 7;
  for (rid_t x : v) EXPECT_EQ(x, expect++);
}

TEST(RidVecTest, MemoryBytesTracksCapacity) {
  RidVec v(64);
  EXPECT_EQ(v.MemoryBytes(), 64 * sizeof(rid_t));
}

class RidVecGrowthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RidVecGrowthSweep, SizeAlwaysLeCapacityAndContentStable) {
  const size_t n = GetParam();
  RidVec v;
  for (size_t i = 0; i < n; ++i) {
    v.PushBack(static_cast<rid_t>(i ^ 0x5a5a));
    ASSERT_LE(v.size(), v.capacity());
  }
  ASSERT_EQ(v.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(v[i], static_cast<rid_t>(i ^ 0x5a5a));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RidVecGrowthSweep,
                         ::testing::Values(0, 1, 9, 10, 11, 100, 1337, 10000));

}  // namespace
}  // namespace smoke
