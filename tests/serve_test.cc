// The concurrent serving core: snapshot linearizability under a live
// writer (every brush sees exactly one complete version, bit-identical to
// the serial schedule), epoch reclamation of retired versions, per-session
// budget slices, and session-close accounting.
#include "serve/serve_core.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/plan_crossfilter.h"
#include "serve/session.h"
#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

constexpr size_t kRows = 3000;
constexpr uint64_t kGroups = 8;

/// Deterministic table contents for snapshot version `v` — the serial
/// reference and the serving core regenerate identical bytes from `v`.
Table VersionTable(int v) {
  return MakeZipfTable(kRows, kGroups, 1.0, /*seed=*/100 + v);
}

LogicalPlan ByZPlan(const Table* t) {
  PlanBuilder b;
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(b.Scan(t, "zipf"), spec), &plan).ok());
  return plan;
}

/// Selection under the histogram so snapshot rebuilds exercise more than
/// one parallel kernel.
LogicalPlan HotZPlan(const Table* t) {
  PlanBuilder b;
  int sel = b.Select(b.Scan(t, "zipf"),
                     {Predicate::Double(zipf_table::kV, CmpOp::kLt, 50.0)});
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(sel, spec), &plan).ok());
  return plan;
}

ServeCore::ViewDef DefOf(LogicalPlan (*maker)(const Table*)) {
  return [maker](const SmokeEngine& engine, LogicalPlan* plan) {
    const Table* t = nullptr;
    SMOKE_RETURN_NOT_OK(engine.GetTable("zipf", &t));
    *plan = maker(t);
    return Status::OK();
  };
}

/// The serial reference: the same views over one version's table, brushed
/// through the single-session PlanCrossfilter.
std::map<std::string, LinkedBrush> SerialBrush(const Table& data,
                                               const std::string& view,
                                               rid_t bar) {
  PlanCrossfilter xf("zipf");
  SMOKE_CHECK(xf.AddView("by_z", ByZPlan(&data)).ok());
  SMOKE_CHECK(xf.AddView("hot_z", HotZPlan(&data)).ok());
  std::map<std::string, LinkedBrush> out;
  SMOKE_CHECK(xf.Brush(view, bar, &out).ok());
  return out;
}

/// Canonical rendering of a brush result — fingerprint equality is the
/// bit-identical-to-serial check (rids, witness counts, materialized rows).
std::string Fingerprint(const std::map<std::string, LinkedBrush>& views) {
  std::string s;
  for (const auto& [name, lb] : views) {
    s += name + ":";
    SMOKE_CHECK(lb.rids.size() == lb.counts.size());
    SMOKE_CHECK(lb.rids.size() == lb.rows.num_rows());
    for (size_t i = 0; i < lb.rids.size(); ++i) {
      s += std::to_string(lb.rids[i]) + "#" + std::to_string(lb.counts[i]) +
           "[" + testing::RowKey(lb.rows, static_cast<rid_t>(i)) + "];";
    }
    s += "\n";
  }
  return s;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions opts;
    opts.num_threads = 2;
    opts.view_capture.morsel_rows = 256;  // many batch morsels per rebuild
    core_ = std::make_unique<ServeCore>("zipf", opts);
    ASSERT_TRUE(core_->CreateTable("zipf", VersionTable(1)).ok());
    ASSERT_TRUE(core_->DefineView("by_z", DefOf(ByZPlan)).ok());
    ASSERT_TRUE(core_->DefineView("hot_z", DefOf(HotZPlan)).ok());
    ASSERT_TRUE(core_->Start().ok());
  }

  std::unique_ptr<ServeCore> core_;
};

TEST(ServeCoreDefinitionTest, StartValidatesDefinition) {
  ServeCore empty("zipf");
  EXPECT_FALSE(empty.Start().ok());  // no tables

  ServeCore no_views("zipf");
  ASSERT_TRUE(no_views.CreateTable("zipf", VersionTable(1)).ok());
  EXPECT_FALSE(no_views.Start().ok());  // no views

  ServeCore wrong_rel("not_a_table");
  ASSERT_TRUE(wrong_rel.CreateTable("zipf", VersionTable(1)).ok());
  ASSERT_TRUE(wrong_rel.DefineView("by_z", DefOf(ByZPlan)).ok());
  EXPECT_FALSE(wrong_rel.Start().ok());  // relation not registered
}

TEST_F(ServeTest, DefinitionFrozenAfterStart) {
  EXPECT_FALSE(core_->CreateTable("t2", VersionTable(1)).ok());
  EXPECT_FALSE(core_->DefineView("v2", DefOf(ByZPlan)).ok());
  EXPECT_FALSE(core_->Start().ok());  // twice

  std::shared_ptr<ServeSession> a, b;
  ASSERT_TRUE(core_->OpenSession("alice", &a).ok());
  EXPECT_FALSE(core_->OpenSession("alice", &b).ok());  // duplicate id
  EXPECT_TRUE(core_->CloseSession("alice").ok());
  EXPECT_FALSE(core_->CloseSession("alice").ok());  // already closed
}

TEST_F(ServeTest, BrushMatchesSerialCrossfilter) {
  std::shared_ptr<ServeSession> s;
  ASSERT_TRUE(core_->OpenSession("s0", &s).ok());
  const Table data = VersionTable(1);
  for (rid_t bar = 0; bar < 4; ++bar) {
    for (const std::string view : {"by_z", "hot_z"}) {
      ServeSession::BrushResult got;
      ASSERT_TRUE(s->Brush(view, bar, &got).ok());
      EXPECT_EQ(got.snapshot_version, 1u);
      EXPECT_EQ(Fingerprint(got.views), Fingerprint(SerialBrush(data, view, bar)));
    }
  }
  const auto stats = s->GetStats();
  EXPECT_EQ(stats.brushes, 8u);
  EXPECT_EQ(stats.last_snapshot_version, 1u);
  EXPECT_GT(stats.total_brush_ms, 0.0);
  ASSERT_TRUE(core_->CloseSession("s0").ok());
}

// The linearizability check: sessions brush while a writer replaces the
// base table; every observed result must be bit-identical to the serial
// schedule of the version it reports, versions must be monotone per
// session, and no brush may mix two versions.
TEST_F(ServeTest, ConcurrentBrushesSeeExactlyOneVersion) {
  constexpr int kVersions = 4;
  constexpr int kReaders = 4;
  constexpr rid_t kBars = 4;

  // Serial reference per (version, bar), precomputed single-threaded.
  std::vector<std::vector<std::string>> expected(kVersions + 1);
  for (int v = 1; v <= kVersions; ++v) {
    const Table data = VersionTable(v);
    for (rid_t bar = 0; bar < kBars; ++bar) {
      expected[v].push_back(Fingerprint(SerialBrush(data, "by_z", bar)));
    }
  }

  std::atomic<bool> writer_done{false};
  std::atomic<int> mismatches{0};
  std::atomic<uint64_t> total_brushes{0};
  std::mutex err_mu;
  std::string first_error;

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::shared_ptr<ServeSession> s;
      ASSERT_TRUE(core_->OpenSession("reader" + std::to_string(r), &s).ok());
      uint64_t last_version = 0;
      rid_t bar = static_cast<rid_t>(r) % kBars;
      do {
        ServeSession::BrushResult got;
        Status st = s->Brush("by_z", bar, &got);
        if (!st.ok()) {
          mismatches++;
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.empty()) first_error = st.message();
          break;
        }
        const uint64_t v = got.snapshot_version;
        if (v < 1 || v > static_cast<uint64_t>(kVersions) ||
            v < last_version ||
            Fingerprint(got.views) != expected[v][bar]) {
          mismatches++;
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.empty()) {
            first_error = "version " + std::to_string(v) + " bar " +
                          std::to_string(bar) + " mismatch (last " +
                          std::to_string(last_version) + ")";
          }
        }
        last_version = v;
        bar = (bar + 1) % kBars;
        total_brushes++;
      } while (!writer_done.load());
    });
  }

  std::thread writer([&] {
    for (int v = 2; v <= kVersions; ++v) {
      ASSERT_TRUE(core_->ReplaceTable("zipf", VersionTable(v)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    writer_done = true;
  });

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0) << first_error;
  EXPECT_GT(total_brushes.load(), 0u);
  EXPECT_EQ(core_->CurrentVersion(), static_cast<uint64_t>(kVersions));
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(core_->CloseSession("reader" + std::to_string(r)).ok());
  }
  // All readers drained: every superseded version reclaims.
  EXPECT_EQ(core_->LiveSnapshots(), 1);
  const auto admission = core_->AdmissionStats();
  EXPECT_GE(admission.interactive.jobs, total_brushes.load());
  EXPECT_GT(admission.batch.tasks, 0u);  // rebuild morsels went batch-class
}

TEST_F(ServeTest, EpochReclamationFreesRetiredVersions) {
  EXPECT_EQ(core_->LiveSnapshots(), 1);

  // A pinned reader holds version 1; two replacements stack up behind it
  // (version 2's retire epoch postdates the pin, so it must wait too).
  ServeCore::SnapshotRef ref = core_->AcquireSnapshot();
  EXPECT_EQ(ref.version(), 1u);
  ASSERT_TRUE(core_->ReplaceTable("zipf", VersionTable(2)).ok());
  ASSERT_TRUE(core_->ReplaceTable("zipf", VersionTable(3)).ok());
  EXPECT_EQ(core_->LiveSnapshots(), 3);
  EXPECT_EQ(core_->EpochStats().retired, 2u);

  // The pinned snapshot is still fully readable after both replacements.
  const Table* out = nullptr;
  ASSERT_TRUE(ref.snapshot->engine.GetResult("by_z", &out).ok());
  EXPECT_EQ(out->num_rows(), kGroups);

  // Last reader drains: both retired versions free (ASan watches the
  // deletes), only the published one stays.
  ref.guard.Release();
  EXPECT_EQ(core_->LiveSnapshots(), 1);
  EXPECT_EQ(core_->EpochStats().retired, 0u);
  EXPECT_EQ(core_->EpochStats().reclaimed, 2u);
  EXPECT_EQ(core_->CurrentVersion(), 3u);
}

TEST_F(ServeTest, RetainedTracePinsItsSnapshotVersion) {
  std::shared_ptr<ServeSession> s;
  ASSERT_TRUE(core_->OpenSession("s0", &s).ok());
  ASSERT_TRUE(s->RetainBackwardTrace("brush0", "by_z", {0}).ok());
  EXPECT_FALSE(s->RetainBackwardTrace("brush0", "by_z", {1}).ok());  // dup

  ASSERT_TRUE(core_->ReplaceTable("zipf", VersionTable(2)).ok());
  // The handle pins version 1 across the replacement.
  EXPECT_EQ(core_->LiveSnapshots(), 2);
  const TraceResult* trace = nullptr;
  uint64_t version = 0;
  ASSERT_TRUE(s->GetRetainedTrace("brush0", &trace, &version).ok());
  EXPECT_EQ(version, 1u);

  // Its rids match a serial backward trace over version 1's data.
  SmokeEngine ref;
  ASSERT_TRUE(ref.CreateTable("zipf", VersionTable(1)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(ref.GetTable("zipf", &t).ok());
  ASSERT_TRUE(ref.ExecutePlan("by_z", ByZPlan(t)).ok());
  TraceResult serial;
  ASSERT_TRUE(ref.TraceBackward("by_z", "zipf", {0}, &serial).ok());
  EXPECT_EQ(testing::Sorted(trace->rids), testing::Sorted(serial.rids));

  // Dropping the handle releases the pin; version 1 reclaims.
  ASSERT_TRUE(s->DropRetainedTrace("brush0").ok());
  EXPECT_FALSE(s->DropRetainedTrace("brush0").ok());
  EXPECT_EQ(core_->LiveSnapshots(), 1);
  ASSERT_TRUE(core_->CloseSession("s0").ok());
}

TEST_F(ServeTest, SessionBudgetSliceEvictsColdestOwnTrace) {
  // Measure one trace's accounted bytes through an unlimited session.
  std::shared_ptr<ServeSession> probe;
  ASSERT_TRUE(core_->OpenSession("probe", &probe).ok());
  ASSERT_TRUE(probe->RetainBackwardTrace("t", "by_z", {0}).ok());
  const size_t bytes = probe->retained_bytes();
  ASSERT_GT(bytes, 0u);

  // A slice that fits one trace but not two: the second retain evicts the
  // session's own coldest handle, never the neighbor's.
  std::shared_ptr<ServeSession> s;
  ASSERT_TRUE(core_->OpenSession("tight", &s, bytes + bytes / 2).ok());
  ASSERT_TRUE(s->RetainBackwardTrace("first", "by_z", {0}).ok());
  ASSERT_TRUE(s->RetainBackwardTrace("second", "by_z", {0}).ok());
  EXPECT_EQ(s->RetainedTraceNames(), std::vector<std::string>{"second"});
  EXPECT_EQ(s->GetStats().traces_evicted, 1u);
  EXPECT_LE(s->retained_bytes(), s->budget_bytes());
  const TraceResult* gone = nullptr;
  EXPECT_EQ(s->GetRetainedTrace("first", &gone).code(),
            Status::Code::kNotFound);

  // Isolation: the probe session's handle survived its neighbor's pressure.
  const TraceResult* kept = nullptr;
  EXPECT_TRUE(probe->GetRetainedTrace("t", &kept).ok());

  // A trace that alone exceeds the slice is refused outright.
  std::shared_ptr<ServeSession> tiny;
  ASSERT_TRUE(core_->OpenSession("tiny", &tiny, bytes / 4).ok());
  Status st = tiny->RetainBackwardTrace("too_big", "by_z", {0});
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("budget slice"), std::string::npos);
  EXPECT_EQ(tiny->retained_bytes(), 0u);

  for (const char* id : {"probe", "tight", "tiny"}) {
    EXPECT_TRUE(core_->CloseSession(id).ok());
  }
}

TEST_F(ServeTest, CloseReleasesAccountingToBaseline) {
  EXPECT_EQ(core_->SessionLineageBytes(), 0u);
  std::shared_ptr<ServeSession> a, b;
  ASSERT_TRUE(core_->OpenSession("a", &a).ok());
  ASSERT_TRUE(core_->OpenSession("b", &b).ok());
  ASSERT_TRUE(a->RetainBackwardTrace("t1", "by_z", {0}).ok());
  ASSERT_TRUE(a->RetainBackwardTrace("t2", "hot_z", {1}).ok());
  ASSERT_TRUE(b->RetainBackwardTrace("t1", "by_z", {2}).ok());
  const size_t both = core_->SessionLineageBytes();
  EXPECT_GT(both, 0u);
  EXPECT_EQ(core_->NumSessions(), 2u);

  ASSERT_TRUE(core_->ReplaceTable("zipf", VersionTable(2)).ok());
  EXPECT_EQ(core_->LiveSnapshots(), 2);  // retained traces pin version 1

  ASSERT_TRUE(core_->CloseSession("a").ok());
  EXPECT_LT(core_->SessionLineageBytes(), both);
  // The closed handle refuses further work.
  ServeSession::BrushResult r;
  EXPECT_FALSE(a->Brush("by_z", 0, &r).ok());
  EXPECT_FALSE(a->RetainBackwardTrace("t3", "by_z", {0}).ok());

  ASSERT_TRUE(core_->CloseSession("b").ok());
  EXPECT_EQ(core_->SessionLineageBytes(), 0u);
  EXPECT_EQ(core_->NumSessions(), 0u);
  EXPECT_EQ(core_->LiveSnapshots(), 1);  // the pins went with the sessions
}

TEST_F(ServeTest, AppendRowsPublishesNewVersion) {
  std::shared_ptr<ServeSession> s;
  ASSERT_TRUE(core_->OpenSession("s0", &s).ok());
  Table delta = MakeZipfTable(500, kGroups, 1.0, /*seed=*/999);
  ASSERT_TRUE(core_->AppendRows("zipf", delta).ok());
  EXPECT_EQ(core_->CurrentVersion(), 2u);

  // The appended version equals the serial reference over the concatenation.
  Table full = VersionTable(1);
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    full.AppendRowFrom(delta, static_cast<rid_t>(r));
  }
  ServeSession::BrushResult got;
  ASSERT_TRUE(s->Brush("by_z", 0, &got).ok());
  EXPECT_EQ(got.snapshot_version, 2u);
  EXPECT_EQ(Fingerprint(got.views), Fingerprint(SerialBrush(full, "by_z", 0)));

  EXPECT_FALSE(core_->AppendRows("nope", delta).ok());
  ASSERT_TRUE(core_->CloseSession("s0").ok());
}

}  // namespace
}  // namespace smoke
