// Property tests for the compressed lineage store codecs
// (lineage/store/rid_codec.h): every codec round-trips every rid
// distribution exactly, encoded indexes answer TraceInto/compose queries
// bit-identically to raw, and the adaptive policy never loses to raw.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "lineage/compose.h"
#include "lineage/partitioned_rid_index.h"
#include "lineage/rid_index.h"
#include "lineage/store/lineage_store.h"
#include "lineage/store/rid_codec.h"
#include "test_util.h"

namespace smoke {
namespace {

constexpr LineageCodec kAllCodecs[] = {
    LineageCodec::kRaw, LineageCodec::kRange, LineageCodec::kBitmap,
    LineageCodec::kAdaptive};

/// Named rid-list distributions the adaptive encoder must handle.
enum class Dist { kSorted, kClusteredRuns, kUniformSparse, kDense, kShuffled };

std::vector<rid_t> MakeList(Dist dist, size_t n, std::mt19937* rng) {
  std::vector<rid_t> v;
  v.reserve(n);
  switch (dist) {
    case Dist::kSorted: {  // ascending, random gaps
      rid_t cur = (*rng)() % 50;
      for (size_t i = 0; i < n; ++i) {
        cur += 1 + (*rng)() % 97;
        v.push_back(cur);
      }
      break;
    }
    case Dist::kClusteredRuns: {  // few contiguous runs (selection ranges)
      rid_t cur = (*rng)() % 100;
      size_t i = 0;
      while (i < n) {
        size_t run = std::min<size_t>(n - i, 1 + (*rng)() % 200);
        for (size_t k = 0; k < run; ++k) v.push_back(cur + k);
        cur += static_cast<rid_t>(run + 1 + (*rng)() % 1000);
        i += run;
      }
      break;
    }
    case Dist::kUniformSparse: {  // ascending over a huge universe
      rid_t cur = 0;
      for (size_t i = 0; i < n; ++i) {
        cur += 1 + (*rng)() % 5000;
        v.push_back(cur);
      }
      break;
    }
    case Dist::kDense: {  // >1/32 fill of a small universe (bitmap country)
      rid_t cur = 0;
      for (size_t i = 0; i < n; ++i) {
        cur += 1 + (*rng)() % 3;
        v.push_back(cur);
      }
      break;
    }
    case Dist::kShuffled: {  // unsorted with duplicates (witness lists)
      for (size_t i = 0; i < n; ++i) {
        v.push_back((*rng)() % (n * 2 + 1));
      }
      break;
    }
  }
  return v;
}

RidIndex MakeIndex(Dist dist, size_t lists, size_t per_list,
                   std::mt19937* rng) {
  RidIndex idx(lists);
  for (size_t i = 0; i < lists; ++i) {
    size_t n = per_list == 0 ? 0 : 1 + (*rng)() % per_list;
    if (i % 7 == 3) n = 0;  // sprinkle empty lists
    for (rid_t r : MakeList(dist, n, rng)) idx.Append(i, r);
  }
  return idx;
}

std::vector<rid_t> ListOf(const RidIndex& idx, size_t i) {
  std::vector<rid_t> v;
  const RidVec& l = idx.list(i);
  v.assign(l.begin(), l.end());
  return v;
}

std::vector<rid_t> ListOf(const EncodedPostings& p, size_t i) {
  std::vector<rid_t> v;
  p.AppendList(i, &v);
  return v;
}

TEST(RidCodecTest, PostingsRoundTripAllDistributionsAllCodecs) {
  std::mt19937 rng(20260730);
  for (Dist dist : {Dist::kSorted, Dist::kClusteredRuns, Dist::kUniformSparse,
                    Dist::kDense, Dist::kShuffled}) {
    RidIndex raw = MakeIndex(dist, 40, 300, &rng);
    for (LineageCodec codec : kAllCodecs) {
      EncodedPostings enc = EncodedPostings::Encode(raw, codec);
      ASSERT_EQ(enc.num_lists(), raw.size());
      ASSERT_EQ(enc.TotalEdges(), raw.TotalEdges());
      for (size_t i = 0; i < raw.size(); ++i) {
        EXPECT_EQ(ListOf(enc, i), ListOf(raw, i))
            << "dist=" << static_cast<int>(dist)
            << " codec=" << LineageCodecName(codec) << " list=" << i;
        EXPECT_EQ(enc.ListSize(i), raw.list(i).size());
      }
      // Full decode reproduces the index exactly.
      RidIndex back = enc.Decode();
      ASSERT_EQ(back.size(), raw.size());
      for (size_t i = 0; i < raw.size(); ++i) {
        EXPECT_EQ(ListOf(back, i), ListOf(raw, i));
      }
    }
  }
}

TEST(RidCodecTest, ArrayRoundTripAndRandomAccess) {
  std::mt19937 rng(7);
  // Shapes: contiguous selection (one run), clustered runs with invalid
  // gaps, and fully random with invalid sentinels.
  std::vector<std::vector<rid_t>> arrays;
  {
    std::vector<rid_t> a(5000);
    for (size_t i = 0; i < a.size(); ++i) a[i] = 1000 + static_cast<rid_t>(i);
    arrays.push_back(std::move(a));
  }
  {
    std::vector<rid_t> a;
    rid_t cur = 0;
    while (a.size() < 4000) {
      size_t run = 1 + rng() % 300;
      bool invalid = rng() % 3 == 0;
      for (size_t k = 0; k < run; ++k) {
        a.push_back(invalid ? kInvalidRid : cur + static_cast<rid_t>(k));
      }
      cur += static_cast<rid_t>(run + rng() % 50);
    }
    arrays.push_back(std::move(a));
  }
  {
    std::vector<rid_t> a(3000);
    for (auto& r : a) r = rng() % 5 == 0 ? kInvalidRid : rng() % 100000;
    arrays.push_back(std::move(a));
  }
  arrays.push_back({});  // empty

  for (const auto& raw : arrays) {
    for (LineageCodec codec : kAllCodecs) {
      EncodedRidArray enc = EncodedRidArray::Encode(raw, codec);
      ASSERT_EQ(enc.size(), raw.size());
      EXPECT_EQ(enc.Decode(), raw) << LineageCodecName(codec);
      for (size_t i = 0; i < raw.size(); ++i) {
        ASSERT_EQ(enc.At(i), raw[i])
            << "codec=" << LineageCodecName(codec) << " i=" << i;
      }
    }
  }
}

TEST(RidCodecTest, AdaptiveNeverLosesToRawAndCompressesStructure) {
  std::mt19937 rng(99);
  for (Dist dist : {Dist::kSorted, Dist::kClusteredRuns, Dist::kUniformSparse,
                    Dist::kDense, Dist::kShuffled}) {
    RidIndex raw = MakeIndex(dist, 30, 500, &rng);
    EncodedPostings enc_raw = EncodedPostings::Encode(raw, LineageCodec::kRaw);
    EncodedPostings enc_ad =
        EncodedPostings::Encode(raw, LineageCodec::kAdaptive);
    EXPECT_LE(enc_ad.MemoryBytes(), enc_raw.MemoryBytes())
        << "dist=" << static_cast<int>(dist);
  }
  // Clustered runs must compress by a wide margin (the fig-mem claim).
  RidIndex clustered = MakeIndex(Dist::kClusteredRuns, 30, 3000, &rng);
  EncodedPostings ad =
      EncodedPostings::Encode(clustered, LineageCodec::kAdaptive);
  EXPECT_LT(ad.MemoryBytes() * 4,
            EncodedPostings::Encode(clustered, LineageCodec::kRaw)
                .MemoryBytes());
}

/// Encoded LineageIndex forms answer TraceInto identically to raw.
TEST(RidCodecTest, EncodedLineageIndexEquivalence) {
  std::mt19937 rng(11);
  for (Dist dist : {Dist::kClusteredRuns, Dist::kShuffled, Dist::kDense}) {
    RidIndex idx = MakeIndex(dist, 25, 100, &rng);
    LineageIndex raw = LineageIndex::FromIndex(std::move(idx));
    for (LineageCodec codec :
         {LineageCodec::kRange, LineageCodec::kBitmap,
          LineageCodec::kAdaptive}) {
      LineageIndex enc = EncodeLineage(raw, codec);
      ASSERT_TRUE(enc.encoded());
      ASSERT_EQ(enc.size(), raw.size());
      EXPECT_EQ(enc.TotalEdges(), raw.TotalEdges());
      std::vector<rid_t> a, b;
      for (rid_t p = 0; p < raw.size(); ++p) {
        a.clear();
        b.clear();
        raw.TraceInto(p, &a);
        enc.TraceInto(p, &b);
        ASSERT_EQ(a, b) << "codec=" << LineageCodecName(codec) << " p=" << p;
      }
      // Decode restores the raw physical kind with identical content.
      LineageIndex dec = EncodeLineage(enc, LineageCodec::kRaw);
      EXPECT_EQ(dec.kind(), LineageIndex::Kind::kIndex);
      EXPECT_EQ(testing::Edges(dec), testing::Edges(raw));
    }
  }
}

/// Composition over encoded indexes is bit-identical to raw composition
/// (in-situ: compose never decompresses whole indexes).
TEST(RidCodecTest, ComposeOverEncodedMatchesRaw) {
  std::mt19937 rng(17);
  const size_t outs = 30, mids = 50, ins = 80;
  RidIndex outer_idx(outs);
  for (size_t o = 0; o < outs; ++o) {
    const size_t cnt = rng() % 6;
    for (size_t k = 0; k < cnt; ++k) outer_idx.Append(o, rng() % mids);
  }
  RidIndex inner_idx(mids);
  for (size_t m = 0; m < mids; ++m) {
    const size_t cnt = rng() % 5;
    for (size_t k = 0; k < cnt; ++k) inner_idx.Append(m, rng() % ins);
  }
  std::vector<rid_t> arr(mids);
  for (auto& r : arr) r = rng() % 4 == 0 ? kInvalidRid : rng() % ins;
  // Forward chain: fw1 maps inputs -> intermediates, fw2 intermediates ->
  // final outputs.
  RidIndex fw1_idx(ins);
  for (size_t i = 0; i < ins; ++i) {
    const size_t cnt = rng() % 4;
    for (size_t k = 0; k < cnt; ++k) fw1_idx.Append(i, rng() % mids);
  }
  RidIndex fw2_idx(mids);
  for (size_t m = 0; m < mids; ++m) {
    const size_t cnt = rng() % 4;
    for (size_t k = 0; k < cnt; ++k) fw2_idx.Append(m, rng() % outs);
  }

  LineageIndex outer = LineageIndex::FromIndex(std::move(outer_idx));
  LineageIndex inner = LineageIndex::FromIndex(std::move(inner_idx));
  LineageIndex inner_arr = LineageIndex::FromArray(RidArray(arr));
  LineageIndex fw1 = LineageIndex::FromIndex(std::move(fw1_idx));
  LineageIndex fw2 = LineageIndex::FromIndex(std::move(fw2_idx));

  LineageIndex ref_ii = ComposeBackward(outer, inner);
  LineageIndex ref_ia = ComposeBackward(outer, inner_arr);
  LineageIndex ref_fw = ComposeForward(fw1, fw2);

  for (LineageCodec codec :
       {LineageCodec::kRange, LineageCodec::kBitmap, LineageCodec::kAdaptive}) {
    LineageIndex eo = EncodeLineage(outer, codec);
    LineageIndex ei = EncodeLineage(inner, codec);
    LineageIndex ea = EncodeLineage(inner_arr, codec);
    EXPECT_EQ(testing::Edges(ComposeBackward(eo, ei)), testing::Edges(ref_ii))
        << LineageCodecName(codec);
    EXPECT_EQ(testing::Edges(ComposeBackward(eo, ea)), testing::Edges(ref_ia))
        << LineageCodecName(codec);
    EXPECT_EQ(testing::Edges(ComposeForward(EncodeLineage(fw1, codec),
                                            EncodeLineage(fw2, codec))),
              testing::Edges(ref_fw))
        << LineageCodecName(codec);
    // DAG-merge over an encoded destination promotes and merges exactly.
    LineageIndex dst_raw = ref_ii;
    MergeBackwardInto(&dst_raw, ref_ia);
    LineageIndex dst_enc = EncodeLineage(ref_ii, codec);
    MergeBackwardInto(&dst_enc, ref_ia);
    EXPECT_EQ(testing::Edges(dst_enc), testing::Edges(dst_raw));
  }
}

/// Frozen partitioned indexes stream partitions identically to raw.
TEST(RidCodecTest, PartitionedIndexFreezeEquivalence) {
  std::mt19937 rng(23);
  PartitionedRidIndex raw(12, 4);
  for (size_t o = 0; o < 12; ++o) {
    for (uint32_t c = 0; c < 4; ++c) {
      rid_t cur = rng() % 10;
      const size_t cnt = rng() % 20;
      for (size_t k = 0; k < cnt; ++k) {
        raw.Append(o, c, cur);
        cur += (rng() % 3 == 0) ? 7 : 1;  // mix runs and gaps
      }
    }
  }
  PartitionedRidIndex frozen = raw;  // copy, then freeze the copy
  frozen.Freeze(LineageCodec::kAdaptive);
  ASSERT_TRUE(frozen.frozen());
  EXPECT_EQ(frozen.num_outputs(), raw.num_outputs());
  EXPECT_EQ(frozen.TotalEdges(), raw.TotalEdges());
  for (size_t o = 0; o < 12; ++o) {
    for (uint32_t c = 0; c < 4; ++c) {
      std::vector<rid_t> a, b;
      for (rid_t r : raw.Partition(o, c)) a.push_back(r);
      frozen.ForEachInPartition(o, c, [&b](rid_t r) { b.push_back(r); });
      ASSERT_EQ(a, b) << "output=" << o << " code=" << c;
    }
    std::vector<rid_t> ta, tb;
    raw.TraceAllInto(o, &ta);
    frozen.TraceAllInto(o, &tb);
    EXPECT_EQ(ta, tb);
  }
}

}  // namespace
}  // namespace smoke
