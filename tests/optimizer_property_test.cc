// Property test for the plan rewriter: over randomly generated plan DAGs,
// executing with the optimizer on must produce bit-identical outputs AND
// bit-identical composed lineage to executing the same plan with the
// optimizer off, single-threaded and morsel-parallel alike.
//
// The generator tracks output schemas while it builds, so every generated
// plan is valid by construction (the schema-inference pass must accept it);
// plans mix selects, projections, derives, group-bys, hash joins, set ops,
// and DAG-shared subplans to give every rewrite rule something to chew on.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "plan/executor.h"
#include "plan/plan.h"

namespace smoke {
namespace {

/// Deterministic 64-bit LCG (MMIX constants) — no global RNG state, so a
/// failing seed reproduces exactly.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }
  /// Uniform in [0, n).
  size_t Below(size_t n) { return static_cast<size_t>(Next() % n); }
  int64_t IntIn(int64_t lo, int64_t hi) {  // inclusive bounds
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                 hi - lo + 1));
  }
  double DoubleIn(double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(Next() % 10000) / 10000.0);
  }
  bool Chance(uint32_t percent) { return Next() % 100 < percent; }

 private:
  uint64_t state_;
};

/// Base relation: key columns draw from a small domain so joins and
/// group-bys produce real fan-out.
Table MakeRandomTable(Lcg* rng, size_t rows) {
  Schema s;
  s.AddField("k1", DataType::kInt64);
  s.AddField("k2", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({rng->IntIn(0, 7), rng->IntIn(0, 3),
                 rng->DoubleIn(0.0, 100.0)});
  }
  return t;
}

/// A subplan under construction: its builder node id and output schema
/// (types only — names don't affect execution).
struct Sub {
  int id = -1;
  std::vector<DataType> types;
};

class PlanGen {
 public:
  PlanGen(Lcg* rng, const std::vector<Table>* tables)
      : rng_(rng), tables_(tables) {}

  /// Generates a full plan: a random subplan tree with a few growth steps.
  Sub Gen(int budget) {
    Sub s = Leaf();
    while (budget-- > 0) s = Grow(std::move(s), budget);
    return s;
  }

  PlanBuilder* builder() { return &b_; }

 private:
  Sub Leaf() {
    size_t t = rng_->Below(tables_->size());
    Sub s;
    s.id = b_.Scan(&(*tables_)[t], "t" + std::to_string(t) + "_s" +
                                       std::to_string(scan_seq_++));
    s.types = {DataType::kInt64, DataType::kInt64, DataType::kFloat64};
    return s;
  }

  std::vector<int> IntCols(const Sub& s) const {
    std::vector<int> cols;
    for (size_t i = 0; i < s.types.size(); ++i) {
      if (s.types[i] == DataType::kInt64) cols.push_back(static_cast<int>(i));
    }
    return cols;
  }

  Predicate RandomPredicate(const Sub& s) {
    int col = static_cast<int>(rng_->Below(s.types.size()));
    const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe,
                         CmpOp::kEq, CmpOp::kNe};
    CmpOp op = ops[rng_->Below(6)];
    if (s.types[static_cast<size_t>(col)] == DataType::kInt64) {
      return Predicate::Int(col, op, rng_->IntIn(0, 7));
    }
    return Predicate::Double(col, op, rng_->DoubleIn(0.0, 100.0));
  }

  /// A scalar aggregate input over a numeric column; sometimes with a
  /// foldable constant subtree so fold_constants has work.
  ScalarExpr RandomAggExpr(const Sub& s) {
    int col = static_cast<int>(rng_->Below(s.types.size()));
    if (rng_->Chance(30)) {
      return ScalarExpr::Mul(
          ScalarExpr::Col(col),
          ScalarExpr::Add(ScalarExpr::Const(1.5), ScalarExpr::Const(0.5)));
    }
    return ScalarExpr::Col(col);
  }

  Sub Grow(Sub s, int budget) {
    switch (rng_->Below(7)) {
      case 0: {  // select (sometimes stacked, sometimes predicate-free)
        std::vector<Predicate> preds;
        size_t n = rng_->Below(3);  // 0..2 predicates
        for (size_t i = 0; i < n; ++i) preds.push_back(RandomPredicate(s));
        s.id = b_.Select(s.id, std::move(preds));
        return s;
      }
      case 1: {  // project: random non-empty column selection
        std::vector<int> cols;
        size_t n = 1 + rng_->Below(s.types.size());
        std::vector<DataType> types;
        for (size_t i = 0; i < n; ++i) {
          int c = static_cast<int>(rng_->Below(s.types.size()));
          cols.push_back(c);
          types.push_back(s.types[static_cast<size_t>(c)]);
        }
        s.id = b_.Project(s.id, std::move(cols));
        s.types = std::move(types);
        return s;
      }
      case 2: {  // derive a raw int64 grouping key
        std::vector<int> ints = IntCols(s);
        if (ints.empty()) return s;
        int c = ints[rng_->Below(ints.size())];
        s.id = b_.Derive(
            s.id, {GroupExpr::Raw(c, "d" + std::to_string(derive_seq_++))});
        s.types.push_back(DataType::kInt64);
        return s;
      }
      case 3: {  // group-by on a random int64 key
        std::vector<int> ints = IntCols(s);
        if (ints.empty()) return s;
        GroupBySpec spec;
        spec.keys = {ints[rng_->Below(ints.size())]};
        spec.aggs = {AggSpec::Count("cnt"),
                     AggSpec::Sum(RandomAggExpr(s), "sum")};
        DataType key_type =
            s.types[static_cast<size_t>(spec.keys[0])];
        s.id = b_.GroupBy(s.id, std::move(spec));
        s.types = {key_type, DataType::kInt64, DataType::kFloat64};
        return s;
      }
      case 4: {  // hash join against a fresh subplan on int64 keys
        Sub other = Gen(budget > 1 ? 1 : 0);
        std::vector<int> li = IntCols(s), ri = IntCols(other);
        if (li.empty() || ri.empty()) return s;
        JoinSpec spec;
        spec.left_key = li[rng_->Below(li.size())];
        spec.right_key = ri[rng_->Below(ri.size())];
        s.id = b_.HashJoin(s.id, other.id, spec);
        std::vector<DataType> types = s.types;
        types.insert(types.end(), other.types.begin(), other.types.end());
        s.types = std::move(types);
        return s;
      }
      case 5: {  // set op over two scans of the same table
        size_t t = rng_->Below(tables_->size());
        auto scan = [&] {
          Sub x;
          x.id = b_.Scan(&(*tables_)[t], "t" + std::to_string(t) + "_s" +
                                             std::to_string(scan_seq_++));
          x.types = {DataType::kInt64, DataType::kInt64, DataType::kFloat64};
          if (rng_->Chance(50)) {
            x.id = b_.Select(x.id, {RandomPredicate(x)});
          }
          return x;
        };
        Sub left = scan(), right = scan();
        const SetOpKind kinds[] = {SetOpKind::kSetUnion, SetOpKind::kBagUnion,
                                   SetOpKind::kSetIntersect,
                                   SetOpKind::kBagIntersect,
                                   SetOpKind::kSetDifference};
        SetOpKind kind = kinds[rng_->Below(5)];
        if (kind == SetOpKind::kBagUnion) {
          s.types = left.types;
          s.id = b_.SetOp(kind, left.id, right.id, {});
        } else {
          std::vector<int> cols = {0, static_cast<int>(1 + rng_->Below(2))};
          std::vector<DataType> types;
          for (int c : cols) types.push_back(left.types[static_cast<size_t>(c)]);
          s.id = b_.SetOp(kind, left.id, right.id, std::move(cols));
          s.types = std::move(types);
        }
        return s;
      }
      default: {  // DAG sharing: join two group-bys over the same subplan
        std::vector<int> ints = IntCols(s);
        if (ints.empty()) return s;
        int key = ints[rng_->Below(ints.size())];
        GroupBySpec g1{{key}, {AggSpec::Count("c1")}};
        GroupBySpec g2{{key}, {AggSpec::Sum(RandomAggExpr(s), "s2")}};
        int a1 = b_.GroupBy(s.id, std::move(g1));
        int a2 = b_.GroupBy(s.id, std::move(g2));
        JoinSpec spec;
        spec.left_key = 0;
        spec.right_key = 0;
        s.id = b_.HashJoin(a1, a2, spec);
        s.types = {DataType::kInt64, DataType::kInt64, DataType::kInt64,
                   DataType::kFloat64};
        return s;
      }
    }
  }

  Lcg* rng_;
  const std::vector<Table>* tables_;
  PlanBuilder b_;
  int scan_seq_ = 0;
  int derive_seq_ = 0;
};

void ExpectBitIdentical(const PlanResult& a, const PlanResult& b,
                        const std::string& ctx) {
  ASSERT_EQ(a.output.num_columns(), b.output.num_columns()) << ctx;
  ASSERT_EQ(a.output.num_rows(), b.output.num_rows()) << ctx;
  for (size_t c = 0; c < a.output.num_columns(); ++c) {
    const Column& x = a.output.column(c);
    const Column& y = b.output.column(c);
    ASSERT_EQ(x.type(), y.type()) << ctx << " col " << c;
    switch (x.type()) {
      case DataType::kInt64:
        ASSERT_EQ(x.ints(), y.ints()) << ctx << " col " << c;
        break;
      case DataType::kFloat64:
        ASSERT_EQ(x.doubles().size(), y.doubles().size()) << ctx << " col "
                                                          << c;
        if (!x.doubles().empty()) {
          ASSERT_EQ(0, std::memcmp(x.doubles().data(), y.doubles().data(),
                                   x.doubles().size() * sizeof(double)))
              << ctx << " col " << c;
        }
        break;
      case DataType::kString:
        ASSERT_EQ(x.strings(), y.strings()) << ctx << " col " << c;
        break;
    }
  }
  ASSERT_EQ(a.lineage.num_inputs(), b.lineage.num_inputs()) << ctx;
  ASSERT_EQ(a.lineage.output_cardinality(), b.lineage.output_cardinality())
      << ctx;
  for (size_t i = 0; i < a.lineage.num_inputs(); ++i) {
    const TableLineage& x = a.lineage.input(i);
    const TableLineage& y = b.lineage.input(i);
    ASSERT_EQ(x.table_name, y.table_name) << ctx;
    ASSERT_EQ(x.backward.kind(), y.backward.kind()) << ctx << " "
                                                    << x.table_name;
    ASSERT_EQ(x.forward.kind(), y.forward.kind()) << ctx << " "
                                                  << x.table_name;
    for (auto dir : {&TableLineage::backward, &TableLineage::forward}) {
      const LineageIndex& ix = x.*dir;
      const LineageIndex& iy = y.*dir;
      ASSERT_EQ(ix.size(), iy.size()) << ctx << " " << x.table_name;
      std::vector<rid_t> lx, ly;
      for (size_t p = 0; p < ix.size(); ++p) {
        lx.clear();
        ly.clear();
        ix.TraceInto(static_cast<rid_t>(p), &lx);
        iy.TraceInto(static_cast<rid_t>(p), &ly);
        ASSERT_EQ(lx, ly) << ctx << " " << x.table_name << " pos " << p;
      }
    }
  }
}

TEST(OptimizerProperty, RandomPlansBitIdenticalOnAndOff) {
  Lcg table_rng(2018);
  std::vector<Table> tables;
  tables.push_back(MakeRandomTable(&table_rng, 200));
  tables.push_back(MakeRandomTable(&table_rng, 120));

  int optimized_plans = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Lcg rng(seed * 7919);
    PlanGen gen(&rng, &tables);
    Sub root = gen.Gen(2 + static_cast<int>(rng.Below(5)));
    LogicalPlan plan;
    ASSERT_TRUE(gen.builder()->Build(root.id, &plan).ok())
        << "seed " << seed << "\n"
        << plan.ToString();

    // The generator builds only well-typed plans: validation must agree.
    LogicalPlan rewritten;
    PlanExplain explain;
    ASSERT_TRUE(OptimizePlan(plan, &rewritten, &explain).ok())
        << "seed " << seed << "\n"
        << plan.ToString();
    if (!explain.rules.empty()) ++optimized_plans;

    for (int threads : {1, 7}) {
      CaptureOptions on = CaptureOptions::Inject();
      on.num_threads = threads;
      CaptureOptions off = on;
      off.optimize = false;

      PlanResult ron, roff;
      ASSERT_TRUE(ExecutePlan(plan, on, &ron).ok()) << "seed " << seed;
      ASSERT_TRUE(ExecutePlan(plan, off, &roff).ok()) << "seed " << seed;
      ExpectBitIdentical(
          ron, roff,
          "seed " + std::to_string(seed) + " threads " +
              std::to_string(threads) + "\n" + plan.ToString());
    }
  }
  // The run is only meaningful if a healthy share of plans got rewritten.
  EXPECT_GE(optimized_plans, 10);
}

}  // namespace
}  // namespace smoke
