#include "engine/aggregates.h"

#include <gtest/gtest.h>

#include "workloads/zipf_table.h"

namespace smoke {
namespace {

Table TwoColTable() {
  Schema s;
  s.AddField("i", DataType::kInt64);
  s.AddField("d", DataType::kFloat64);
  Table t(s);
  t.AppendRow({int64_t{1}, 2.0});
  t.AppendRow({int64_t{3}, 4.0});
  t.AppendRow({int64_t{5}, 6.0});
  return t;
}

TEST(AggLayoutTest, StrideAccounting) {
  Table t = TwoColTable();
  AggLayout layout(t, {AggSpec::Count("c"), AggSpec::Sum(ScalarExpr::Col(1), "s"),
                       AggSpec::Avg(ScalarExpr::Col(1), "a")});
  EXPECT_EQ(layout.stride(), 4u);  // 1 + 1 + 2
  EXPECT_EQ(layout.num_aggs(), 3u);
}

TEST(AggLayoutTest, InitUpdateFinalize) {
  Table t = TwoColTable();
  AggLayout layout(t, {AggSpec::Count("c"),
                       AggSpec::Sum(ScalarExpr::Col(1), "s"),
                       AggSpec::Min(ScalarExpr::Col(1), "mn"),
                       AggSpec::Max(ScalarExpr::Col(1), "mx"),
                       AggSpec::Avg(ScalarExpr::Col(1), "av")});
  std::vector<double> state(layout.stride());
  layout.Init(state.data());
  for (rid_t r = 0; r < 3; ++r) layout.Update(state.data(), r);
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 0), 3);     // count
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 1), 12.0);  // sum
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 2), 2.0);   // min
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 3), 6.0);   // max
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 4), 4.0);   // avg
}

TEST(AggLayoutTest, MergePartialStates) {
  Table t = TwoColTable();
  AggLayout layout(t, {AggSpec::Count("c"),
                       AggSpec::Sum(ScalarExpr::Col(1), "s"),
                       AggSpec::Min(ScalarExpr::Col(1), "mn"),
                       AggSpec::Avg(ScalarExpr::Col(1), "av")});
  std::vector<double> a(layout.stride()), b(layout.stride());
  layout.Init(a.data());
  layout.Init(b.data());
  layout.Update(a.data(), 0);
  layout.Update(b.data(), 1);
  layout.Update(b.data(), 2);
  layout.Merge(a.data(), b.data());
  EXPECT_DOUBLE_EQ(layout.FinalValue(a.data(), 0), 3);
  EXPECT_DOUBLE_EQ(layout.FinalValue(a.data(), 1), 12.0);
  EXPECT_DOUBLE_EQ(layout.FinalValue(a.data(), 2), 2.0);
  EXPECT_DOUBLE_EQ(layout.FinalValue(a.data(), 3), 4.0);
}

TEST(AggLayoutTest, EmptyGroupFinalValues) {
  Table t = TwoColTable();
  AggLayout layout(t, {AggSpec::Count("c"), AggSpec::Avg(ScalarExpr::Col(1), "a")});
  std::vector<double> state(layout.stride());
  layout.Init(state.data());
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 0), 0);
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 1), 0);  // avg of none
}

TEST(AggLayoutTest, MultiTableBinding) {
  Table t1 = TwoColTable();
  Table t2 = TwoColTable();
  AggSpec from_t1 = AggSpec::Sum(ScalarExpr::Col(0), "s1");
  from_t1.src = 0;
  AggSpec from_t2 = AggSpec::Sum(ScalarExpr::Col(1), "s2");
  from_t2.src = 1;
  AggLayout layout({&t1, &t2}, {from_t1, from_t2});
  std::vector<double> state(layout.stride());
  layout.Init(state.data());
  rid_t rids[2] = {0, 2};  // t1 row 0 (i=1), t2 row 2 (d=6.0)
  layout.UpdateMulti(state.data(), rids);
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 0), 1.0);
  EXPECT_DOUBLE_EQ(layout.FinalValue(state.data(), 1), 6.0);
}

TEST(AggLayoutTest, OutputFieldTypes) {
  Table t = TwoColTable();
  AggLayout layout(t, {AggSpec::Count("c"), AggSpec::Sum(ScalarExpr::Col(1), "s")});
  EXPECT_EQ(layout.OutputField(0).type, DataType::kInt64);
  EXPECT_EQ(layout.OutputField(1).type, DataType::kFloat64);
  EXPECT_EQ(layout.OutputField(0).name, "c");
}

TEST(AggLayoutTest, FinalizeAppendsToColumns) {
  Table t = TwoColTable();
  AggLayout layout(t, {AggSpec::Count("c"), AggSpec::Sum(ScalarExpr::Col(1), "s")});
  std::vector<double> state(layout.stride());
  layout.Init(state.data());
  layout.Update(state.data(), 0);
  Column ic(DataType::kInt64), dc(DataType::kFloat64);
  std::vector<Column*> cols = {&ic, &dc};
  layout.Finalize(state.data(), &cols);
  EXPECT_EQ(ic.ints()[0], 1);
  EXPECT_DOUBLE_EQ(dc.doubles()[0], 2.0);
}

}  // namespace
}  // namespace smoke
