#include "workloads/tpch.h"

#include <set>

#include <gtest/gtest.h>

#include "workloads/ontime.h"
#include "workloads/physician.h"

namespace smoke {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new tpch::Database(tpch::Generate(0.01));
  }
  static void TearDownTestSuite() { delete db_; }
  static tpch::Database* db_;
};
tpch::Database* TpchGenTest::db_ = nullptr;

TEST_F(TpchGenTest, RowCountsScale) {
  EXPECT_EQ(db_->nation.num_rows(), 25u);
  EXPECT_NEAR(static_cast<double>(db_->customer.num_rows()), 1500, 2);
  EXPECT_EQ(db_->orders.num_rows(), db_->customer.num_rows() * 10);
  // ~4 lineitems per order.
  double ratio = static_cast<double>(db_->lineitem.num_rows()) /
                 static_cast<double>(db_->orders.num_rows());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST_F(TpchGenTest, DatesWellFormed) {
  for (int64_t d : db_->orders.column(tpch::kOOrderdate).ints()) {
    ASSERT_GE(d, 19920101);
    ASSERT_LE(d, 19980802);
    int64_t m = (d / 100) % 100, day = d % 100;
    ASSERT_GE(m, 1);
    ASSERT_LE(m, 12);
    ASSERT_GE(day, 1);
    ASSERT_LE(day, 31);
  }
}

TEST_F(TpchGenTest, LineitemDateOrdering) {
  const auto& ship = db_->lineitem.column(tpch::kLShipdate).ints();
  const auto& receipt = db_->lineitem.column(tpch::kLReceiptdate).ints();
  for (size_t i = 0; i < ship.size(); ++i) {
    ASSERT_LT(ship[i], receipt[i]);  // receipt strictly after ship
  }
}

TEST_F(TpchGenTest, ReturnflagLinestatusGroups) {
  std::set<std::string> groups;
  const auto& rf = db_->lineitem.column(tpch::kLReturnflag).strings();
  const auto& ls = db_->lineitem.column(tpch::kLLinestatus).strings();
  size_t nf = 0;
  for (size_t i = 0; i < rf.size(); ++i) {
    groups.insert(rf[i] + ls[i]);
    nf += rf[i] == "N" && ls[i] == "F";
  }
  // The four Q1 groups, with (N, F) rare.
  EXPECT_EQ(groups, (std::set<std::string>{"AF", "NF", "NO", "RF"}));
  EXPECT_LT(static_cast<double>(nf) / static_cast<double>(rf.size()), 0.02);
}

TEST_F(TpchGenTest, CategoricalDomains) {
  std::set<std::string> modes, instrs, prios, segs;
  for (const auto& v : db_->lineitem.column(tpch::kLShipmode).strings()) {
    modes.insert(v);
  }
  for (const auto& v : db_->lineitem.column(tpch::kLShipinstruct).strings()) {
    instrs.insert(v);
  }
  for (const auto& v : db_->orders.column(tpch::kOOrderpriority).strings()) {
    prios.insert(v);
  }
  for (const auto& v : db_->customer.column(tpch::kCMktsegment).strings()) {
    segs.insert(v);
  }
  EXPECT_EQ(modes.size(), 7u);
  EXPECT_EQ(instrs.size(), 4u);
  EXPECT_EQ(prios.size(), 5u);
  EXPECT_EQ(segs.size(), 5u);
}

TEST_F(TpchGenTest, ForeignKeysResolve) {
  std::set<int64_t> custkeys(db_->customer.column(tpch::kCCustkey).ints().begin(),
                             db_->customer.column(tpch::kCCustkey).ints().end());
  for (int64_t ck : db_->orders.column(tpch::kOCustkey).ints()) {
    ASSERT_TRUE(custkeys.count(ck));
  }
  std::set<int64_t> orderkeys(db_->orders.column(tpch::kOOrderkey).ints().begin(),
                              db_->orders.column(tpch::kOOrderkey).ints().end());
  for (int64_t ok : db_->lineitem.column(tpch::kLOrderkey).ints()) {
    ASSERT_TRUE(orderkeys.count(ok));
  }
}

TEST_F(TpchGenTest, Deterministic) {
  tpch::Database db2 = tpch::Generate(0.01);
  ASSERT_EQ(db2.lineitem.num_rows(), db_->lineitem.num_rows());
  EXPECT_EQ(db2.lineitem.column(tpch::kLExtendedprice).doubles()[5],
            db_->lineitem.column(tpch::kLExtendedprice).doubles()[5]);
}

TEST(OntimeGenTest, BinDomains) {
  Table t = ontime::Generate(10000, 3);
  std::set<int64_t> latlon, dates, delays, carriers;
  for (int64_t v : t.column(ontime::kLatLonBin).ints()) latlon.insert(v);
  for (int64_t v : t.column(ontime::kDateBin).ints()) dates.insert(v);
  for (int64_t v : t.column(ontime::kDelayBin).ints()) delays.insert(v);
  for (int64_t v : t.column(ontime::kCarrier).ints()) carriers.insert(v);
  EXPECT_LE(latlon.size(), static_cast<size_t>(ontime::kNumAirports));
  EXPECT_LE(dates.size(), static_cast<size_t>(ontime::kNumDateBins));
  EXPECT_LE(delays.size(), 8u);
  EXPECT_LE(carriers.size(), 29u);
  for (int64_t v : latlon) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, ontime::kNumLatLonBins);
  }
}

TEST(OntimeGenTest, SkewedAirports) {
  Table t = ontime::Generate(50000, 4);
  std::map<int64_t, int> counts;
  for (int64_t v : t.column(ontime::kLatLonBin).ints()) ++counts[v];
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  // Zipf(1.0): the most popular airport dominates the mean.
  EXPECT_GT(max_count, 50000 / 300 * 10);
}

TEST(PhysicianGenTest, SchemaAndNpiType) {
  Table t = physician::Generate(1000, 5);
  EXPECT_EQ(t.num_rows(), 1000u);
  EXPECT_EQ(t.column(physician::kNpi).type(), DataType::kInt64);
  EXPECT_EQ(t.column(physician::kZip).type(), DataType::kString);
  for (int64_t npi : t.column(physician::kNpi).ints()) {
    EXPECT_GE(npi, 1000000000);
  }
}

}  // namespace
}  // namespace smoke
