#include "engine/spja.h"

#include <map>

#include <gtest/gtest.h>

#include "engine/group_by.h"
#include "test_util.h"
#include "workloads/tpch.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

using testing::Edges;
using testing::GroupedRows;

class SpjaTpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = new tpch::Database(tpch::Generate(0.01)); }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static tpch::Database* db_;
};
tpch::Database* SpjaTpchTest::db_ = nullptr;

/// Independent Q1 evaluator: straightforward row-at-a-time over Values.
std::map<std::string, std::pair<int64_t, double>> ReferenceQ1(
    const tpch::Database& db) {
  std::map<std::string, std::pair<int64_t, double>> ref;  // key -> (count, sum_qty)
  const Table& l = db.lineitem;
  for (rid_t r = 0; r < l.num_rows(); ++r) {
    if (std::get<int64_t>(l.GetValue(r, tpch::kLShipdate)) > 19980902) continue;
    std::string key =
        std::get<std::string>(l.GetValue(r, tpch::kLReturnflag)) + "|" +
        std::get<std::string>(l.GetValue(r, tpch::kLLinestatus));
    auto& slot = ref[key];
    slot.first += 1;
    slot.second += std::get<double>(l.GetValue(r, tpch::kLQuantity));
  }
  return ref;
}

TEST_F(SpjaTpchTest, Q1MatchesReference) {
  auto q = tpch::MakeQ1(*db_);
  auto res = SPJAExec(q, CaptureOptions::None());
  auto ref = ReferenceQ1(*db_);
  ASSERT_EQ(res.output.num_rows(), ref.size());
  EXPECT_EQ(ref.size(), 4u);  // the four Q1 groups
  const auto& counts = res.output.column("count_order").ints();
  const auto& sum_qty = res.output.column("sum_qty").doubles();
  for (size_t g = 0; g < res.output.num_rows(); ++g) {
    std::string key =
        std::get<std::string>(res.output.GetValue(g, 0)) + "|" +
        std::get<std::string>(res.output.GetValue(g, 1));
    ASSERT_TRUE(ref.count(key)) << key;
    EXPECT_EQ(counts[g], ref[key].first);
    EXPECT_NEAR(sum_qty[g], ref[key].second, 1e-4);
  }
}

TEST_F(SpjaTpchTest, Q1InjectLineagePartitionsPassingRows) {
  auto q = tpch::MakeQ1(*db_);
  auto res = SPJAExec(q, CaptureOptions::Inject());
  const auto& bw = res.lineage.input(0).backward.index();
  const auto& ship = db_->lineitem.column(tpch::kLShipdate).ints();
  size_t total = 0;
  std::vector<int> seen(db_->lineitem.num_rows(), 0);
  for (size_t g = 0; g < bw.size(); ++g) {
    total += bw.list(g).size();
    for (rid_t r : bw.list(g)) {
      ASSERT_LE(ship[r], 19980902);  // only passing rows captured
      ++seen[r];
    }
  }
  for (rid_t r = 0; r < seen.size(); ++r) {
    ASSERT_EQ(seen[r], ship[r] <= 19980902 ? 1 : 0);
  }
  EXPECT_EQ(res.lineage.output_cardinality(), res.output.num_rows());
  EXPECT_TRUE(testing::AreInverse(res.lineage.input(0).backward,
                                  res.lineage.input(0).forward));
  (void)total;
}

TEST_F(SpjaTpchTest, Q1DeferMatchesInject) {
  auto q = tpch::MakeQ1(*db_);
  auto inj = SPJAExec(q, CaptureOptions::Inject());
  auto def = SPJAExec(q, CaptureOptions::Defer());
  EXPECT_EQ(GroupedRows(inj.output, 2), GroupedRows(def.output, 2));
  EXPECT_EQ(Edges(inj.lineage.input(0).backward),
            Edges(def.lineage.input(0).backward));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward),
            Edges(def.lineage.input(0).forward));
}

TEST_F(SpjaTpchTest, Q1LogicIdxMatchesInject) {
  auto q = tpch::MakeQ1(*db_);
  auto inj = SPJAExec(q, CaptureOptions::Inject());
  auto idx = SPJAExec(q, CaptureOptions::Mode(CaptureMode::kLogicIdx));
  EXPECT_EQ(Edges(inj.lineage.input(0).backward),
            Edges(idx.lineage.input(0).backward));
  // Annotated relation is denormalized: one row per passing lineitem row.
  size_t passing = 0;
  for (int64_t d : db_->lineitem.column(tpch::kLShipdate).ints()) {
    passing += d <= 19980902;
  }
  EXPECT_EQ(idx.annotated.num_rows(), passing);
}

TEST_F(SpjaTpchTest, Q3JoinsAndGroups) {
  auto q = tpch::MakeQ3(*db_);
  auto res = SPJAExec(q, CaptureOptions::Inject());
  ASSERT_EQ(res.lineage.num_inputs(), 3u);
  EXPECT_GT(res.output.num_rows(), 0u);

  // Reference: every output group's backward lineage satisfies all filters
  // and join conditions, and the per-table lists are aligned.
  const auto& l_bw = res.lineage.input(0).backward.index();
  const auto& o_bw = res.lineage.input(1).backward.index();
  const auto& c_bw = res.lineage.input(2).backward.index();
  const auto& l_ok = db_->lineitem.column(tpch::kLOrderkey).ints();
  const auto& l_sd = db_->lineitem.column(tpch::kLShipdate).ints();
  const auto& o_ok = db_->orders.column(tpch::kOOrderkey).ints();
  const auto& o_od = db_->orders.column(tpch::kOOrderdate).ints();
  const auto& o_ck = db_->orders.column(tpch::kOCustkey).ints();
  const auto& c_ck = db_->customer.column(tpch::kCCustkey).ints();
  const auto& c_seg = db_->customer.column(tpch::kCMktsegment).strings();
  for (size_t g = 0; g < res.output.num_rows(); ++g) {
    ASSERT_EQ(l_bw.list(g).size(), o_bw.list(g).size());
    ASSERT_EQ(l_bw.list(g).size(), c_bw.list(g).size());
    for (size_t j = 0; j < l_bw.list(g).size(); ++j) {
      rid_t lr = l_bw.list(g)[j], orr = o_bw.list(g)[j], cr = c_bw.list(g)[j];
      ASSERT_EQ(l_ok[lr], o_ok[orr]);          // join witness
      ASSERT_EQ(o_ck[orr], c_ck[cr]);          // join witness
      ASSERT_GT(l_sd[lr], 19950315);           // fact filter
      ASSERT_LT(o_od[orr], 19950315);          // dim filter
      ASSERT_EQ(c_seg[cr], "BUILDING");        // dim filter
    }
  }
}

TEST_F(SpjaTpchTest, Q3AggregatesMatchBruteForce) {
  auto q = tpch::MakeQ3(*db_);
  auto res = SPJAExec(q, CaptureOptions::None());
  // Brute-force revenue per l_orderkey.
  std::map<int64_t, double> ref;
  const Table& l = db_->lineitem;
  const Table& o = db_->orders;
  const Table& c = db_->customer;
  std::map<int64_t, rid_t> orders_by_key, cust_by_key;
  for (rid_t r = 0; r < o.num_rows(); ++r) {
    orders_by_key[o.column(tpch::kOOrderkey).ints()[r]] = r;
  }
  for (rid_t r = 0; r < c.num_rows(); ++r) {
    cust_by_key[c.column(tpch::kCCustkey).ints()[r]] = r;
  }
  for (rid_t r = 0; r < l.num_rows(); ++r) {
    if (l.column(tpch::kLShipdate).ints()[r] <= 19950315) continue;
    auto oit = orders_by_key.find(l.column(tpch::kLOrderkey).ints()[r]);
    if (oit == orders_by_key.end()) continue;
    if (o.column(tpch::kOOrderdate).ints()[oit->second] >= 19950315) continue;
    auto cit = cust_by_key.find(o.column(tpch::kOCustkey).ints()[oit->second]);
    if (cit == cust_by_key.end()) continue;
    if (c.column(tpch::kCMktsegment).strings()[cit->second] != "BUILDING") {
      continue;
    }
    double rev = l.column(tpch::kLExtendedprice).doubles()[r] *
                 (1 - l.column(tpch::kLDiscount).doubles()[r]);
    ref[l.column(tpch::kLOrderkey).ints()[r]] += rev;
  }
  ASSERT_EQ(res.output.num_rows(), ref.size());
  const auto& keys = res.output.column(0).ints();
  const auto& revs = res.output.column("revenue").doubles();
  for (size_t g = 0; g < keys.size(); ++g) {
    ASSERT_NEAR(revs[g], ref.at(keys[g]), 1e-4);
  }
}

TEST_F(SpjaTpchTest, Q10FourTableLineage) {
  auto q = tpch::MakeQ10(*db_);
  auto res = SPJAExec(q, CaptureOptions::Inject());
  ASSERT_EQ(res.lineage.num_inputs(), 4u);
  EXPECT_GT(res.output.num_rows(), 0u);
  // Nation lineage: every witness's nation matches the group's n_name.
  const auto& n_bw = res.lineage.input(3).backward.index();
  const auto& n_name = db_->nation.column(tpch::kNName).strings();
  const auto& out_nation = res.output.column("n_name").strings();
  for (size_t g = 0; g < res.output.num_rows(); ++g) {
    for (rid_t nr : n_bw.list(g)) {
      ASSERT_EQ(n_name[nr], out_nation[g]);
    }
  }
}

TEST_F(SpjaTpchTest, Q12CaseAggregatesOverDimension) {
  auto q = tpch::MakeQ12(*db_);
  auto res = SPJAExec(q, CaptureOptions::None());
  // Groups: MAIL and SHIP.
  ASSERT_EQ(res.output.num_rows(), 2u);
  const auto& counts_hi = res.output.column("high_line_count").doubles();
  const auto& counts_lo = res.output.column("low_line_count").doubles();
  // Brute force.
  const Table& l = db_->lineitem;
  const Table& o = db_->orders;
  std::map<int64_t, rid_t> orders_by_key;
  for (rid_t r = 0; r < o.num_rows(); ++r) {
    orders_by_key[o.column(tpch::kOOrderkey).ints()[r]] = r;
  }
  std::map<std::string, std::pair<int64_t, int64_t>> ref;
  for (rid_t r = 0; r < l.num_rows(); ++r) {
    const std::string& mode = l.column(tpch::kLShipmode).strings()[r];
    if (mode != "MAIL" && mode != "SHIP") continue;
    int64_t cd = l.column(tpch::kLCommitdate).ints()[r];
    int64_t rd = l.column(tpch::kLReceiptdate).ints()[r];
    int64_t sd = l.column(tpch::kLShipdate).ints()[r];
    if (!(cd < rd && sd < cd && rd >= 19940101 && rd < 19950101)) continue;
    rid_t orr = orders_by_key.at(l.column(tpch::kLOrderkey).ints()[r]);
    const std::string& pri = o.column(tpch::kOOrderpriority).strings()[orr];
    bool high = pri == "1-URGENT" || pri == "2-HIGH";
    if (high) ++ref[mode].first;
    else ++ref[mode].second;
  }
  for (size_t g = 0; g < 2; ++g) {
    std::string mode = std::get<std::string>(res.output.GetValue(g, 0));
    EXPECT_EQ(static_cast<int64_t>(counts_hi[g]), ref[mode].first) << mode;
    EXPECT_EQ(static_cast<int64_t>(counts_lo[g]), ref[mode].second) << mode;
  }
}

TEST_F(SpjaTpchTest, RelationPruningSkipsTables) {
  auto q = tpch::MakeQ3(*db_);
  CaptureOptions opts = CaptureOptions::Inject();
  opts.only_relations = {"lineitem"};
  auto res = SPJAExec(q, opts);
  EXPECT_FALSE(res.lineage.input(0).backward.empty());
  EXPECT_TRUE(res.lineage.input(1).backward.empty());
  EXPECT_TRUE(res.lineage.input(2).backward.empty());
}

TEST_F(SpjaTpchTest, DirectionPruningSkipsForward) {
  auto q = tpch::MakeQ1(*db_);
  CaptureOptions opts = CaptureOptions::Inject();
  opts.capture_forward = false;
  auto res = SPJAExec(q, opts);
  EXPECT_FALSE(res.lineage.input(0).backward.empty());
  EXPECT_TRUE(res.lineage.input(0).forward.empty());
}

TEST(SpjaMicroTest, NoDimsMatchesGroupByExec) {
  Table t = MakeZipfTable(2000, 16, 1.0);
  SPJAQuery q;
  q.fact = &t;
  q.fact_name = "zipf";
  q.group_by = {ColRef::Fact(zipf_table::kZ)};
  q.aggs = {AggSpec::Count("cnt"),
            AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
  auto res = SPJAExec(q, CaptureOptions::Inject());
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = q.aggs;
  auto gb = GroupByExec(t, "zipf", spec, CaptureOptions::Inject());
  EXPECT_EQ(GroupedRows(res.output, 1), GroupedRows(gb.output, 1));
  EXPECT_EQ(Edges(res.lineage.input(0).backward),
            Edges(gb.lineage.input(0).backward));
}

}  // namespace
}  // namespace smoke
