// Edge cases and cross-module integration checks that don't fit the
// per-module suites.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/smoke_engine.h"
#include "engine/group_by.h"
#include "engine/nested_loop_join.h"
#include "engine/select.h"
#include "engine/set_ops.h"
#include "query/provenance.h"
#include "test_util.h"
#include "workloads/tpch.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

// ---- selection with IN predicates and empty tables ----

TEST(SelectEdgeTest, InPredicateThroughOperator) {
  Table t = MakeZipfTable(200, 10, 1.0);
  auto res = SelectExec(t, "zipf", {Predicate::IntIn(zipf_table::kZ, {1, 3})},
                        CaptureOptions::Inject());
  const auto& zs = t.column(zipf_table::kZ).ints();
  for (rid_t o = 0; o < res.output.num_rows(); ++o) {
    int64_t z = res.output.column(zipf_table::kZ).ints()[o];
    EXPECT_TRUE(z == 1 || z == 3);
  }
  size_t expect = 0;
  for (int64_t z : zs) expect += z == 1 || z == 3;
  EXPECT_EQ(res.output.num_rows(), expect);
}

TEST(SelectEdgeTest, EmptyInputAllModes) {
  Schema s;
  s.AddField("x", DataType::kInt64);
  Table t(s);
  for (CaptureMode m :
       {CaptureMode::kNone, CaptureMode::kInject, CaptureMode::kLogicIdx}) {
    auto res = SelectExec(t, "t", {Predicate::Int(0, CmpOp::kGt, 0)},
                          CaptureOptions::Mode(m));
    EXPECT_EQ(res.output.num_rows(), 0u) << CaptureModeName(m);
  }
}

// ---- group-by over every column type combination ----

TEST(GroupByEdgeTest, DoubleKeyColumn) {
  Schema s;
  s.AddField("k", DataType::kFloat64);
  Table t(s);
  t.AppendRow({1.5});
  t.AppendRow({2.5});
  t.AppendRow({1.5});
  GroupBySpec spec;
  spec.keys = {0};
  spec.aggs = {AggSpec::Count("cnt")};
  auto res = GroupByExec(t, "t", spec, CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 2u);
}

TEST(GroupByEdgeTest, EmptyInput) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  Table t(s);
  GroupBySpec spec;
  spec.keys = {0};
  spec.aggs = {AggSpec::Count("cnt")};
  auto res = GroupByExec(t, "t", spec, CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 0u);
  auto def = GroupByExec(t, "t", spec, CaptureOptions::Defer());
  FinalizeDeferredGroupBy(&def, t, CaptureOptions::Defer());
  EXPECT_EQ(def.output.num_rows(), 0u);
}

// ---- SPJA edge cases ----

TEST(SpjaEdgeTest, AllRowsFiltered) {
  Table t = MakeZipfTable(100, 4, 1.0);
  SPJAQuery q;
  q.fact = &t;
  q.fact_name = "zipf";
  q.fact_filters = {Predicate::Double(zipf_table::kV, CmpOp::kLt, -1.0)};
  q.group_by = {ColRef::Fact(zipf_table::kZ)};
  q.aggs = {AggSpec::Count("cnt")};
  auto res = SPJAExec(q, CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 0u);
  EXPECT_EQ(res.lineage.output_cardinality(), 0u);
}

TEST(SpjaEdgeTest, DimFilterDropsAllJoinPartners) {
  tpch::Database db = tpch::Generate(0.002);
  SPJAQuery q = tpch::MakeQ3(db);
  // Impossible dim filter: no order qualifies.
  q.dims[0].filters = {Predicate::Int(tpch::kOOrderdate, CmpOp::kLt, 0)};
  auto res = SPJAExec(q, CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 0u);
}

TEST(SpjaEdgeTest, GroupCountsMatchBackwardListLengths) {
  tpch::Database db = tpch::Generate(0.005);
  auto q = tpch::MakeQ1(db);
  auto res = SPJAExec(q, CaptureOptions::Inject());
  const auto& bw = res.lineage.input(0).backward.index();
  ASSERT_EQ(res.group_counts.size(), bw.size());
  for (size_t g = 0; g < bw.size(); ++g) {
    EXPECT_EQ(res.group_counts[g], bw.list(g).size());
  }
}

TEST(SpjaEdgeTest, LogicTupAnnotatedWidth) {
  tpch::Database db = tpch::Generate(0.002);
  auto q = tpch::MakeQ12(db);
  auto res = SPJAExec(q, CaptureOptions::Mode(CaptureMode::kLogicTup));
  // Denormalized width: output cols + all fact cols + all dim cols.
  EXPECT_EQ(res.annotated.num_columns(),
            res.output.num_columns() + db.lineitem.num_columns() +
                db.orders.num_columns());
}

// ---- nested-loop joins over strings ----

TEST(NljEdgeTest, StringThetaCondition) {
  Schema s;
  s.AddField("name", DataType::kString);
  Table a(s), b(s);
  for (const char* v : {"apple", "mango"}) a.AppendRow({std::string(v)});
  for (const char* v : {"banana", "kiwi", "apple"}) b.AppendRow({std::string(v)});
  NljSpec spec;
  spec.conds = {{0, CmpOp::kLt, 0}};  // a.name < b.name lexicographically
  auto res = NestedLoopJoinExec(a, "a", b, "b", spec,
                                CaptureOptions::Inject());
  // apple < banana, apple < kiwi; mango < nothing except none.
  EXPECT_EQ(res.output_cardinality, 2u);
}

// ---- provenance over three inputs ----

TEST(ProvenanceEdgeTest, ThreeTableMonomials) {
  tpch::Database db = tpch::Generate(0.002);
  auto q = tpch::MakeQ3(db);
  auto res = SPJAExec(q, CaptureOptions::Inject());
  ASSERT_GT(res.output.num_rows(), 0u);
  auto why = WhyProvenance(res.lineage, 0);
  ASSERT_GT(why.size(), 0u);
  EXPECT_EQ(why[0].rids.size(), 3u);  // lineitem, orders, customer
  std::string how = HowProvenance(res.lineage, 0);
  EXPECT_NE(how.find("lineitem["), std::string::npos);
  EXPECT_NE(how.find("*orders["), std::string::npos);
  EXPECT_NE(how.find("*customer["), std::string::npos);
}

// ---- dictionary fast path equivalence ----

TEST(DictionaryEdgeTest, IntFastPathMatchesGenericPath) {
  Table t = MakeZipfTable(500, 20, 1.0);
  Dictionary fast = BuildDictionary(t, {zipf_table::kZ});
  // Force the generic path by using two columns where the second is
  // constant — partitions must coincide.
  Schema s = t.schema();
  s.AddField("konst", DataType::kString);
  Table t2(s);
  for (rid_t r = 0; r < t.num_rows(); ++r) {
    t2.AppendRowFrom(t, r);
    t2.mutable_column(3).AppendString("c");
  }
  Dictionary slow = BuildDictionary(t2, {zipf_table::kZ, 3});
  ASSERT_EQ(fast.num_codes, slow.num_codes);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t r2 = 0; r2 < r; ++r2) {
      ASSERT_EQ(fast.codes[r] == fast.codes[r2],
                slow.codes[r] == slow.codes[r2]);
    }
    if (r > 50) break;  // pairwise check on a prefix is enough
  }
}

// ---- zipf generator invariants used by TC hints ----

TEST(TcHintsEdgeTest, CountPerKeySumsToTableSize) {
  Table t = MakeZipfTable(3000, 17, 1.3);
  auto counts = CountPerKey(t, zipf_table::kZ);
  size_t total = 0;
  for (const auto& [k, c] : counts) total += c;
  EXPECT_EQ(total, t.num_rows());
  EXPECT_LE(counts.size(), 17u);
}

// ---- engine facade: result object access & workload pruning by table ----

TEST(EngineEdgeTest, ResultObjectExposesPushdownArtifacts) {
  SmokeEngine eng;
  ASSERT_TRUE(eng.CreateTable("zipf", MakeZipfTable(1000, 5, 1.0)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(eng.GetTable("zipf", &t).ok());
  SPJAQuery q;
  q.fact = t;
  q.fact_name = "zipf";
  q.group_by = {ColRef::Fact(zipf_table::kZ)};
  q.aggs = {AggSpec::Count("cnt")};
  Workload w;
  w.pushdown.skip_cols = {zipf_table::kZ};
  ASSERT_TRUE(eng.ExecuteQuery("v", q, CaptureMode::kInject, &w).ok());
  const SPJAResult* res = nullptr;
  ASSERT_TRUE(eng.GetResultObject("v", &res).ok());
  EXPECT_GT(res->skip_dict.num_codes, 0u);
  EXPECT_EQ(res->skip_index.num_outputs(), res->output.num_rows());
}

TEST(EngineEdgeTest, RelationPruningViaWorkload) {
  tpch::Database db = tpch::Generate(0.002);
  SmokeEngine eng;
  SPJAQuery q3 = tpch::MakeQ3(db);
  Workload w;
  w.traced_relations = {"lineitem"};
  ASSERT_TRUE(eng.ExecuteQuery("q3", q3, CaptureMode::kInject, &w).ok());
  std::vector<rid_t> rids;
  EXPECT_TRUE(eng.Backward("q3", "lineitem", {0}, &rids).ok());
  EXPECT_FALSE(eng.Backward("q3", "orders", {0}, &rids).ok());
}

// ---- set-op output schemas follow the projection ----

TEST(SetOpsEdgeTest, ProjectionColumnsOnly) {
  Table a = MakeZipfTable(50, 5, 1.0, 61);
  Table b = MakeZipfTable(50, 5, 1.0, 62);
  auto res = SetUnionExec(a, "a", b, "b", {zipf_table::kZ},
                          CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_columns(), 1u);
  EXPECT_EQ(res.output.schema().field(0).name, "z");
}

// ---- TPC-H consuming-spec helpers ----

TEST(TpchSpecsTest, Q1VariantsShape) {
  tpch::Database db = tpch::Generate(0.002);
  ConsumingSpec q1a = tpch::MakeQ1a(db);
  EXPECT_EQ(q1a.group_by.size(), 2u);
  EXPECT_TRUE(q1a.filters.empty());
  EXPECT_EQ(q1a.aggs.size(), 8u);
  ConsumingSpec q1b = tpch::MakeQ1b(db, "MAIL", "NONE");
  EXPECT_EQ(q1b.filters.size(), 2u);
  ConsumingSpec q1c = tpch::MakeQ1c(db, "MAIL", "NONE");
  EXPECT_EQ(q1c.group_by.size(), 3u);
  EXPECT_EQ(tpch::ShipModes().size(), 7u);
  EXPECT_EQ(tpch::ShipInstructs().size(), 4u);
}

// ---- cross product lineage totals ----

TEST(CrossEdgeTest, ForwardCoversAllOutputs) {
  Table a = MakeZipfTable(5, 2, 0.0, 63);
  Table b = MakeZipfTable(3, 2, 0.0, 64);
  auto res = CrossProductExec(a, b, false);
  std::set<rid_t> all;
  std::vector<rid_t> buf;
  for (rid_t r = 0; r < 5; ++r) {
    buf.clear();
    res.lineage.ForwardLeftInto(r, &buf);
    all.insert(buf.begin(), buf.end());
  }
  EXPECT_EQ(all.size(), 15u);
  all.clear();
  for (rid_t r = 0; r < 3; ++r) {
    buf.clear();
    res.lineage.ForwardRightInto(r, &buf);
    all.insert(buf.begin(), buf.end());
  }
  EXPECT_EQ(all.size(), 15u);
}

}  // namespace
}  // namespace smoke
