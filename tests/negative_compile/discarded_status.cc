// MUST NOT COMPILE under -Werror=unused-result: Status is [[nodiscard]],
// and this translation unit drops one on the floor. The configure-time
// harness (CMakeLists.txt, SMOKE_NEGATIVE_COMPILE_TESTS) asserts this
// fails — if it ever starts compiling, the dropped-error gate has silently
// rotted.
#include "common/status.h"

namespace {

smoke::Status MightFail(int v) {
  if (v < 0) return smoke::Status::InvalidArgument("negative");
  return smoke::Status::OK();
}

}  // namespace

int main() {
  MightFail(42);  // dropped Status: the build error under test
  return 0;
}
