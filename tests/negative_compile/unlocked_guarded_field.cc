// MUST NOT COMPILE under Clang with -Werror=thread-safety: reads and
// writes a SMOKE_GUARDED_BY field without holding its mutex. The
// configure-time harness (CMakeLists.txt, SMOKE_NEGATIVE_COMPILE_TESTS)
// asserts this fails when the compiler is Clang — regression-testing the
// annotation gate itself, not any particular annotation.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Add(int d) { value_ += d; }      // write without mu_: build error
  int Get() const { return value_; }    // read without mu_: build error

 private:
  mutable smoke::Mutex mu_;
  int value_ SMOKE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Get();
}
