// Positive control for the negative-compile harness (CMakeLists.txt,
// SMOKE_NEGATIVE_COMPILE_TESTS): correct code — guarded access under the
// lock, Status consumed — must compile under the exact flags the must-fail
// cases use. If this breaks, the harness is rejecting everything and the
// must-fail results are meaningless.
#include "common/mutex.h"
#include "common/status.h"

namespace {

class Counter {
 public:
  void Add(int d) SMOKE_EXCLUDES(mu_) {
    smoke::MutexLock lock(mu_);
    value_ += d;
  }
  int Get() const SMOKE_EXCLUDES(mu_) {
    smoke::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable smoke::Mutex mu_;
  int value_ SMOKE_GUARDED_BY(mu_) = 0;
};

smoke::Status Check(int v) {
  if (v < 0) return smoke::Status::InvalidArgument("negative");
  return smoke::Status::OK();
}

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  smoke::Status st = Check(c.Get());
  Check(-1).IgnoreError();  // the sanctioned explicit drop
  return st.ok() ? 0 : 1;
}
