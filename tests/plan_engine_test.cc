// SmokeEngine facade over composable plans: ExecutePlan retention, lineage
// queries, TraceAcross across plan/SPJA retained queries, consuming queries
// over plan lineage, and the table replace/drop lifetime guard.
#include "core/smoke_engine.h"

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace smoke {
namespace {

Table MakeSales() {
  Schema s;
  s.AddField("region_id", DataType::kInt64);
  s.AddField("amount", DataType::kFloat64);
  s.AddField("day", DataType::kInt64);
  Table t(s);
  const int64_t regions[] = {0, 1, 2, 0, 1, 2, 3, 0, 1, 0, 3, 2};
  for (size_t i = 0; i < 12; ++i) {
    t.AppendRow({regions[i], static_cast<double>(i + 1),
                 static_cast<int64_t>(20240101 + (i % 3))});
  }
  return t;
}

GroupBySpec PerRegionAgg() {
  GroupBySpec spec;
  spec.keys = {0};
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(1), "sum")};
  return spec;
}

class PlanEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.CreateTable("sales", MakeSales()).ok());
    ASSERT_TRUE(engine_.GetTable("sales", &sales_).ok());
  }

  LogicalPlan RegionPlan() {
    PlanBuilder b;
    int gb = b.GroupBy(b.Scan(sales_, "sales"), PerRegionAgg());
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(gb, &plan).ok());
    return plan;
  }

  SmokeEngine engine_;
  const Table* sales_ = nullptr;
};

TEST_F(PlanEngineTest, ExecutePlanRetainsResultAndLineage) {
  ASSERT_TRUE(engine_.ExecutePlan("by_region", RegionPlan()).ok());

  const Table* out = nullptr;
  ASSERT_TRUE(engine_.GetResult("by_region", &out).ok());
  EXPECT_EQ(out->num_rows(), 4u);

  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine_.GetPlanResult("by_region", &pr).ok());
  EXPECT_EQ(pr->lineage.num_inputs(), 1u);

  // Backward from the region-0 output: rids 0, 3, 7, 9.
  rid_t region0_out = kInvalidRid;
  for (rid_t g = 0; g < out->num_rows(); ++g) {
    if (out->column(0).ints()[g] == 0) region0_out = g;
  }
  ASSERT_NE(region0_out, kInvalidRid);
  std::vector<rid_t> rids;
  ASSERT_TRUE(engine_.Backward("by_region", "sales", {region0_out}, &rids).ok());
  EXPECT_EQ(testing::Sorted(rids), (std::vector<rid_t>{0, 3, 7, 9}));

  // Forward from rid 1 (region 1) reaches exactly the region-1 output.
  std::vector<rid_t> outs;
  ASSERT_TRUE(engine_.Forward("by_region", "sales", {1}, &outs).ok());
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(out->column(0).ints()[outs[0]], 1);

  // BackwardRows materializes the traced base rows.
  Table rows;
  ASSERT_TRUE(
      engine_.BackwardRows("by_region", "sales", {region0_out}, &rows).ok());
  EXPECT_EQ(rows.num_rows(), 4u);

  // Duplicate names are refused across namespaces.
  EXPECT_FALSE(engine_.ExecutePlan("by_region", RegionPlan()).ok());
  SPJAQuery q;
  q.fact = sales_;
  q.fact_name = "sales";
  q.group_by = {ColRef::Fact(0)};
  q.aggs = {AggSpec::Count("cnt")};
  EXPECT_FALSE(engine_.ExecuteQuery("by_region", q).ok());
}

TEST_F(PlanEngineTest, TraceAcrossPlanAndSpjaQueries) {
  // View 1: a plan (HAVING-style rollup); view 2: a legacy SPJA query over
  // the same base relation — linked brushing must work across the mix.
  PlanBuilder b;
  int gb = b.GroupBy(b.Scan(sales_, "sales"), PerRegionAgg());
  int root = b.Select(gb, {Predicate::Int(1, CmpOp::kGe, 3)});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());
  ASSERT_TRUE(engine_.ExecutePlan("big_regions", plan).ok());

  SPJAQuery by_day;
  by_day.fact = sales_;
  by_day.fact_name = "sales";
  by_day.group_by = {ColRef::Fact(2)};
  by_day.aggs = {AggSpec::Count("cnt")};
  ASSERT_TRUE(engine_.ExecuteQuery("by_day", by_day).ok());

  const Table* big = nullptr;
  ASSERT_TRUE(engine_.GetResult("big_regions", &big).ok());
  ASSERT_GT(big->num_rows(), 0u);

  std::vector<rid_t> linked;
  ASSERT_TRUE(
      engine_.TraceAcross("big_regions", {0}, "sales", "by_day", &linked).ok());
  // Region 0 has sales on days spanning the whole cycle; brute-force check.
  std::vector<rid_t> base;
  ASSERT_TRUE(engine_.Backward("big_regions", "sales", {0}, &base).ok());
  std::set<int64_t> days;
  for (rid_t r : base) days.insert(sales_->column(2).ints()[r]);
  const Table* day_out = nullptr;
  ASSERT_TRUE(engine_.GetResult("by_day", &day_out).ok());
  std::set<rid_t> expect;
  for (rid_t g = 0; g < day_out->num_rows(); ++g) {
    if (days.count(day_out->column(0).ints()[g])) expect.insert(g);
  }
  EXPECT_EQ(std::set<rid_t>(linked.begin(), linked.end()), expect);
}

TEST_F(PlanEngineTest, ConsumingQueryOverPlanLineage) {
  ASSERT_TRUE(engine_.ExecutePlan("by_region", RegionPlan()).ok());
  const Table* out = nullptr;
  ASSERT_TRUE(engine_.GetResult("by_region", &out).ok());
  rid_t region0_out = kInvalidRid;
  for (rid_t g = 0; g < out->num_rows(); ++g) {
    if (out->column(0).ints()[g] == 0) region0_out = g;
  }
  ASSERT_NE(region0_out, kInvalidRid);

  // Drill down into region 0's lineage, regrouping by day — through the
  // unified consumption API (the ExecuteConsuming shims are retired).
  ConsumingSpec spec;
  spec.group_by = {GroupExpr::Raw(2, "day")};
  spec.aggs = {AggSpec::Count("cnt")};
  TraceSource src;
  ASSERT_TRUE(engine_.MakeTraceSource("by_region", &src).ok());
  TraceBuilder drill_query =
      TraceBuilder::Backward(std::move(src), "sales", {region0_out});
  drill_query.Consuming(spec);
  ASSERT_TRUE(engine_.ExecuteTraceQuery("region0_by_day", drill_query).ok());
  const Table* drill = nullptr;
  ASSERT_TRUE(engine_.GetResult("region0_by_day", &drill).ok());
  // Region-0 rids {0,3,7,9} fall on days 20240101 (0,3,9) and 20240102 (7).
  EXPECT_EQ(drill->num_rows(), 2u);
  int64_t total = 0;
  for (rid_t g = 0; g < drill->num_rows(); ++g) {
    total += drill->column("cnt").ints()[g];
  }
  EXPECT_EQ(total, 4);
}

TEST_F(PlanEngineTest, ReplaceAndDropGuardedByRetainedQueries) {
  // Regression for the dangling-pointer hazard: retained lineage stores
  // rids into the registered table, so re-registering or dropping it while
  // referenced must be refused.
  EXPECT_FALSE(engine_.CreateTable("sales", MakeSales()).ok());  // duplicate

  ASSERT_TRUE(engine_.ExecutePlan("by_region", RegionPlan()).ok());
  EXPECT_FALSE(engine_.ReplaceTable("sales", MakeSales()).ok());
  EXPECT_FALSE(engine_.DropTable("sales").ok());

  // Consuming results borrow the base table too.
  const Table* out = nullptr;
  ASSERT_TRUE(engine_.GetResult("by_region", &out).ok());
  ConsumingSpec spec;
  spec.group_by = {GroupExpr::Raw(2, "day")};
  spec.aggs = {AggSpec::Count("cnt")};
  TraceSource src;
  ASSERT_TRUE(engine_.MakeTraceSource("by_region", &src).ok());
  TraceBuilder drill_query = TraceBuilder::Backward(std::move(src), "sales", {0});
  drill_query.Consuming(spec);
  ASSERT_TRUE(engine_.ExecuteTraceQuery("drill", drill_query).ok());
  ASSERT_TRUE(engine_.DropResult("by_region").ok());
  EXPECT_FALSE(engine_.ReplaceTable("sales", MakeSales()).ok());

  // Once nothing references the table, replace and drop succeed.
  ASSERT_TRUE(engine_.DropResult("drill").ok());
  EXPECT_TRUE(engine_.ReplaceTable("sales", MakeSales()).ok());
  EXPECT_TRUE(engine_.DropTable("sales").ok());
  EXPECT_FALSE(engine_.DropTable("sales").ok());  // already gone
}

TEST_F(PlanEngineTest, WorkloadPushdownRejectedForPlans) {
  Workload w;
  w.pushdown.skip_cols = {2};
  EXPECT_FALSE(engine_.ExecutePlan("p", RegionPlan(), CaptureMode::kInject, &w)
                   .ok());
}

TEST_F(PlanEngineTest, WorkloadPruningOnPlans) {
  Workload w;
  w.needs_forward = false;
  ASSERT_TRUE(engine_.ExecutePlan("bw_only", RegionPlan(),
                                  CaptureMode::kInject, &w)
                  .ok());
  std::vector<rid_t> rids;
  EXPECT_TRUE(engine_.Backward("bw_only", "sales", {0}, &rids).ok());
  std::vector<rid_t> outs;
  EXPECT_FALSE(engine_.Forward("bw_only", "sales", {0}, &outs).ok());
}

}  // namespace
}  // namespace smoke
