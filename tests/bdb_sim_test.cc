#include "baselines/bdb_sim.h"

#include <atomic>
#include <map>
#include <random>
#include <thread>

#include <gtest/gtest.h>

namespace smoke {
namespace {

void Put32(BdbSim* db, uint32_t k, uint32_t v) {
  db->Put(&k, 4, &v, 4);
}

std::vector<uint32_t> GetAll(const BdbSim& db, uint32_t k) {
  BdbSim::Cursor cur(&db);
  std::vector<uint32_t> out;
  if (!cur.Seek(k)) return out;
  uint32_t v;
  while (cur.Next(&v)) out.push_back(v);
  return out;
}

TEST(BdbSimTest, EmptySeekFails) {
  BdbSim db;
  EXPECT_TRUE(GetAll(db, 1).empty());
}

TEST(BdbSimTest, SingleKeyValue) {
  BdbSim db;
  Put32(&db, 5, 42);
  EXPECT_EQ(GetAll(db, 5), (std::vector<uint32_t>{42}));
  EXPECT_TRUE(GetAll(db, 4).empty());
  EXPECT_EQ(db.size(), 1u);
}

TEST(BdbSimTest, DuplicatesPreserveInsertionOrder) {
  BdbSim db;
  Put32(&db, 7, 1);
  Put32(&db, 7, 2);
  Put32(&db, 7, 3);
  EXPECT_EQ(GetAll(db, 7), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(BdbSimTest, ManyKeysForceSplits) {
  BdbSim db;
  const uint32_t n = 10000;
  for (uint32_t k = 0; k < n; ++k) Put32(&db, k, k * 2);
  EXPECT_GT(db.num_nodes(), 100u);  // the tree actually split
  for (uint32_t k = 0; k < n; k += 97) {
    ASSERT_EQ(GetAll(db, k), (std::vector<uint32_t>{k * 2}));
  }
}

TEST(BdbSimTest, InterleavedDuplicatesAcrossLeaves) {
  BdbSim db;
  // Interleave inserts so one key's duplicates span leaf boundaries.
  for (uint32_t round = 0; round < 200; ++round) {
    for (uint32_t k = 0; k < 50; ++k) Put32(&db, k, round);
  }
  for (uint32_t k = 0; k < 50; ++k) {
    std::vector<uint32_t> vals = GetAll(db, k);
    ASSERT_EQ(vals.size(), 200u);
    for (uint32_t round = 0; round < 200; ++round) {
      ASSERT_EQ(vals[round], round);  // insertion order preserved
    }
  }
}

class BdbRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BdbRandomSweep, MatchesMultimap) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<uint32_t> keys(0, 500);
  BdbSim db;
  std::multimap<uint32_t, uint32_t> ref;
  for (int i = 0; i < 30000; ++i) {
    uint32_t k = keys(rng);
    uint32_t v = static_cast<uint32_t>(i);
    Put32(&db, k, v);
    ref.emplace(k, v);
  }
  for (uint32_t k = 0; k <= 500; ++k) {
    auto [lo, hi] = ref.equal_range(k);
    std::vector<uint32_t> expect;
    for (auto it = lo; it != hi; ++it) expect.push_back(it->second);
    ASSERT_EQ(GetAll(db, k), expect) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdbRandomSweep,
                         ::testing::Values(11, 22, 33));

// Regression for the race the thread-safety annotations surfaced:
// size()/num_nodes() used to read count_/num_nodes_ without taking latch_,
// so a stats poll concurrent with Put was a data race (bdb_sim.h). Run
// under TSan (-DSMOKE_TSAN=ON) this test fails on the unguarded version.
TEST(BdbSimTest, ConcurrentPutsAndStatsReads) {
  BdbSim db;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint32_t k = 0; k < 20000; ++k) Put32(&db, k, k);
    done.store(true, std::memory_order_release);
  });
  size_t last_size = 0, last_nodes = 0;
  while (!done.load(std::memory_order_acquire)) {
    size_t s = db.size();
    size_t n = db.num_nodes();
    // Both counters are monotone under insert-only load.
    EXPECT_GE(s, last_size);
    EXPECT_GE(n, last_nodes);
    last_size = s;
    last_nodes = n;
  }
  writer.join();
  EXPECT_EQ(db.size(), 20000u);
  EXPECT_GT(db.num_nodes(), 100u);
}

TEST(BdbWriterTest, EmitRoundTrip) {
  BdbWriter w;
  w.BeginCapture(10);
  w.Emit(0, 3);
  w.Emit(0, 4);
  w.Emit(1, 5);
  w.FinishCapture(2);
  std::vector<rid_t> rids;
  w.FetchBackward(0, &rids);
  EXPECT_EQ(rids, (std::vector<rid_t>{3, 4}));
  rids.clear();
  w.FetchBackward(1, &rids);
  EXPECT_EQ(rids, (std::vector<rid_t>{5}));
}

TEST(BdbWriterTest, DirectionPruning) {
  BdbWriter w(/*backward=*/true, /*forward=*/false);
  w.Emit(0, 3);
  EXPECT_NE(w.backward_db(), nullptr);
  EXPECT_EQ(w.forward_db(), nullptr);
}

}  // namespace
}  // namespace smoke
