// Status / Result<T> hygiene: the [[nodiscard]] error-handling contract
// (common/status.h). The can't-compile side of the contract (a dropped
// Status failing the build) is regression-tested at configure time by
// tests/negative_compile/ — this suite covers the runtime semantics.
#include "common/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace smoke {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table t");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
  EXPECT_EQ(st.message(), "table t");
  EXPECT_EQ(st.ToString(), "Not found: table t");
}

TEST(StatusTest, IgnoreErrorIsTheSanctionedDrop) {
  // The call compiles without binding the Status — the only way to do
  // that under -Werror=unused-result.
  Status::InvalidArgument("intentionally dropped").IgnoreError();
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagate(int v) {
  SMOKE_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagate(1).ok());
  Status st = Propagate(-1);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, OkCarriesValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, ErrorCarriesStatus) {
  Result<int> r = ParsePositive(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(ResultTest, RvalueValueMoves) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

Status Sum(int a, int b, int* out) {
  SMOKE_ASSIGN_OR_RETURN(int x, ParsePositive(a));
  SMOKE_ASSIGN_OR_RETURN(int y, ParsePositive(b));
  *out = x + y;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  int out = 0;
  ASSERT_TRUE(Sum(2, 3, &out).ok());
  EXPECT_EQ(out, 5);

  Status st = Sum(2, -1, &out);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(out, 5);  // untouched on the error path
}

TEST(ResultTest, AssignOrReturnToExistingVariable) {
  // lhs may also be a pre-declared variable, not just a declaration.
  auto f = [](int v, int* out) -> Status {
    int unwrapped = 0;
    SMOKE_ASSIGN_OR_RETURN(unwrapped, ParsePositive(v));
    *out = unwrapped;
    return Status::OK();
  };
  int out = 0;
  ASSERT_TRUE(f(9, &out).ok());
  EXPECT_EQ(out, 9);
}

}  // namespace
}  // namespace smoke
