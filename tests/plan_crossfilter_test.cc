// Linked brushing over retained plans: any view shape with lineage on the
// shared relation participates (ROADMAP "Crossfilter on plans"), and for
// plain group-by views the witness counts equal the classic crossfilter's
// BT strategy.
#include "apps/plan_crossfilter.h"

#include <random>

#include <gtest/gtest.h>

#include "apps/crossfilter.h"
#include "test_util.h"

namespace smoke {
namespace {

constexpr int kA = 0;
constexpr int kB = 1;
constexpr int kV = 2;

Table MakeData(size_t n) {
  Schema s;
  s.AddField("a", DataType::kInt64);
  s.AddField("b", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  std::mt19937 rng(7);
  std::uniform_int_distribution<int64_t> da(0, 4), db(0, 9);
  std::uniform_real_distribution<double> dv(0.0, 10.0);
  for (size_t i = 0; i < n; ++i) t.AppendRow({da(rng), db(rng), dv(rng)});
  return t;
}

LogicalPlan HistogramPlan(const Table* t, int col) {
  PlanBuilder b;
  GroupBySpec spec;
  spec.keys = {col};
  spec.aggs = {AggSpec::Count("cnt")};
  int root = b.GroupBy(b.Scan(t, "base"), spec);
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(root, &plan).ok());
  return plan;
}

/// Aggregate-over-aggregate: COUNT(*) per a, then COUNT(*) per cnt.
LogicalPlan RollupPlan(const Table* t) {
  PlanBuilder b;
  GroupBySpec per_a;
  per_a.keys = {kA};
  per_a.aggs = {AggSpec::Count("cnt")};
  int gb = b.GroupBy(b.Scan(t, "base"), per_a);
  GroupBySpec by_cnt;
  by_cnt.keys = {1};  // (a, cnt) -> cnt
  by_cnt.aggs = {AggSpec::Count("n_bins")};
  int root = b.GroupBy(gb, by_cnt);
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(root, &plan).ok());
  return plan;
}

/// Join of two aggregates over a *shared* scan (a DAG): COUNT per a joined
/// with SUM(v) per a.
LogicalPlan JoinOfAggregatesPlan(const Table* t) {
  PlanBuilder b;
  int scan = b.Scan(t, "base");
  GroupBySpec counts;
  counts.keys = {kA};
  counts.aggs = {AggSpec::Count("cnt")};
  int gb1 = b.GroupBy(scan, counts);
  GroupBySpec sums;
  sums.keys = {kA};
  sums.aggs = {AggSpec::Sum(ScalarExpr::Col(kV), "sum_v")};
  int gb2 = b.GroupBy(scan, sums);
  JoinSpec join;
  join.left_key = 0;
  join.right_key = 0;
  join.pk_build = true;
  int root = b.HashJoin(gb1, gb2, join);
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(root, &plan).ok());
  return plan;
}

class PlanCrossfilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeData(5000);
    session_ = std::make_unique<PlanCrossfilter>("base");
    ASSERT_TRUE(session_->AddView("va", HistogramPlan(&data_, kA)).ok());
    ASSERT_TRUE(session_->AddView("vb", HistogramPlan(&data_, kB)).ok());
    ASSERT_TRUE(session_->AddView("rollup", RollupPlan(&data_)).ok());
    ASSERT_TRUE(session_->AddView("joinagg", JoinOfAggregatesPlan(&data_)).ok());
  }

  Table data_;
  std::unique_ptr<PlanCrossfilter> session_;
};

TEST_F(PlanCrossfilterTest, GroupByViewsMatchClassicCrossfilterBT) {
  // The classic per-view implementation with the BT strategy is the
  // reference for simple histogram views.
  Crossfilter classic(data_, {kA, kB});
  classic.Initialize(Crossfilter::Strategy::kBT);

  const Table* va = nullptr;
  ASSERT_TRUE(session_->ViewOutput("va", &va).ok());
  ASSERT_EQ(va->num_rows(), classic.NumBars(0));

  for (size_t bar = 0; bar < classic.NumBars(0); ++bar) {
    // Group-by plans emit bins in first-encounter order, like the classic
    // session — row `bar` of the plan view is bar `bar` of the classic one.
    ASSERT_EQ(va->column(0).ints()[bar], classic.BarValue(0, bar));

    std::map<std::string, PlanCrossfilter::Linked> brush;
    ASSERT_TRUE(session_->Brush("va", static_cast<rid_t>(bar), &brush).ok());
    auto classic_counts = classic.Brush(0, bar);

    const auto& linked = brush.at("vb");
    ASSERT_EQ(linked.rids.size(), linked.counts.size());
    int64_t total = 0;
    for (size_t i = 0; i < linked.rids.size(); ++i) {
      EXPECT_EQ(linked.counts[i], classic_counts[1][linked.rids[i]])
          << "bar " << bar << " linked row " << i;
      total += linked.counts[i];
    }
    // Every nonzero classic bar is linked, so totals agree with the brushed
    // bar's cardinality.
    EXPECT_EQ(total, classic.BarCount(0, bar));
    int64_t classic_total = 0;
    for (int64_t c : classic_counts[1]) classic_total += c;
    EXPECT_EQ(total, classic_total);
  }
}

TEST_F(PlanCrossfilterTest, NonSpjaViewsParticipateInBrushing) {
  const Table* va = nullptr;
  ASSERT_TRUE(session_->ViewOutput("va", &va).ok());

  std::map<std::string, PlanCrossfilter::Linked> brush;
  ASSERT_TRUE(session_->Brush("va", 0, &brush).ok());
  const int64_t bar_count = va->column(1).ints()[0];

  // Rollup: every base row of the brushed bar reaches exactly one rollup
  // output, so witness counts sum to the bar cardinality.
  const auto& rollup = brush.at("rollup");
  EXPECT_GT(rollup.rids.size(), 0u);
  int64_t rollup_total = 0;
  for (int64_t c : rollup.counts) rollup_total += c;
  EXPECT_EQ(rollup_total, bar_count);

  // Join of aggregates: the brushed bar's rows share one `a` value, so they
  // link to exactly one join output row, with full multiplicity.
  const auto& joined = brush.at("joinagg");
  ASSERT_EQ(joined.rids.size(), 1u);
  EXPECT_EQ(joined.counts[0], bar_count);
  EXPECT_EQ(joined.rows.num_rows(), 1u);

  // Brushing *from* the rollup (a retained non-SPJA plan) works too: the
  // rollup bin covering bar 0's count links back to histogram bars.
  std::map<std::string, PlanCrossfilter::Linked> back;
  ASSERT_TRUE(session_->Brush("rollup", 0, &back).ok());
  const auto& va_linked = back.at("va");
  EXPECT_GT(va_linked.rids.size(), 0u);
  const Table* rollup_out = nullptr;
  ASSERT_TRUE(session_->ViewOutput("rollup", &rollup_out).ok());
  // Each linked va bar is one of the bins aggregated into this rollup row:
  // its count must equal the rollup row's bin cardinality (the key).
  const int64_t bin_size = rollup_out->column(0).ints()[0];
  for (size_t i = 0; i < va_linked.rids.size(); ++i) {
    EXPECT_EQ(va_linked.counts[i], bin_size);
  }
}

TEST_F(PlanCrossfilterTest, RejectsViewsWithoutSharedLineage) {
  PlanCrossfilter other("elsewhere");
  EXPECT_FALSE(other.AddView("va", HistogramPlan(&data_, kA)).ok());

  // Pruned capture (no forward) is rejected up front, not at brush time.
  CaptureOptions no_fwd = CaptureOptions::Inject();
  no_fwd.capture_forward = false;
  PlanCrossfilter session("base");
  EXPECT_FALSE(session.AddView("va", HistogramPlan(&data_, kA), no_fwd).ok());

  EXPECT_FALSE(session_->Brush("nope", 0, nullptr).ok());
}

}  // namespace
}  // namespace smoke
