#include "engine/expr.h"

#include <cmath>

#include <gtest/gtest.h>

namespace smoke {
namespace {

Table MakeTable() {
  Schema s;
  s.AddField("i", DataType::kInt64);
  s.AddField("d", DataType::kFloat64);
  s.AddField("s", DataType::kString);
  s.AddField("i2", DataType::kInt64);
  Table t(s);
  t.AppendRow({int64_t{1}, 0.5, std::string("apple"), int64_t{10}});
  t.AppendRow({int64_t{5}, 2.0, std::string("banana"), int64_t{5}});
  t.AppendRow({int64_t{9}, -1.0, std::string("cherry"), int64_t{1}});
  return t;
}

TEST(PredicateTest, IntComparisons) {
  Table t = MakeTable();
  auto eval = [&](Predicate p, rid_t r) {
    return PredicateList(t, {std::move(p)}).Eval(r);
  };
  EXPECT_TRUE(eval(Predicate::Int(0, CmpOp::kLt, 5), 0));
  EXPECT_FALSE(eval(Predicate::Int(0, CmpOp::kLt, 5), 1));
  EXPECT_TRUE(eval(Predicate::Int(0, CmpOp::kLe, 5), 1));
  EXPECT_TRUE(eval(Predicate::Int(0, CmpOp::kGt, 5), 2));
  EXPECT_TRUE(eval(Predicate::Int(0, CmpOp::kGe, 9), 2));
  EXPECT_TRUE(eval(Predicate::Int(0, CmpOp::kEq, 5), 1));
  EXPECT_TRUE(eval(Predicate::Int(0, CmpOp::kNe, 5), 0));
}

TEST(PredicateTest, DoubleAndStringComparisons) {
  Table t = MakeTable();
  auto eval = [&](Predicate p, rid_t r) {
    return PredicateList(t, {std::move(p)}).Eval(r);
  };
  EXPECT_TRUE(eval(Predicate::Double(1, CmpOp::kLt, 1.0), 0));
  EXPECT_FALSE(eval(Predicate::Double(1, CmpOp::kGt, 1.0), 2));
  EXPECT_TRUE(eval(Predicate::Str(2, CmpOp::kEq, "banana"), 1));
  EXPECT_TRUE(eval(Predicate::Str(2, CmpOp::kLt, "b"), 0));
}

TEST(PredicateTest, InSets) {
  Table t = MakeTable();
  PredicateList pi(t, {Predicate::IntIn(0, {1, 9})});
  EXPECT_TRUE(pi.Eval(0));
  EXPECT_FALSE(pi.Eval(1));
  EXPECT_TRUE(pi.Eval(2));
  PredicateList ps(t, {Predicate::StrIn(2, {"banana", "cherry"})});
  EXPECT_FALSE(ps.Eval(0));
  EXPECT_TRUE(ps.Eval(1));
}

TEST(PredicateTest, ColumnToColumn) {
  Table t = MakeTable();
  PredicateList p(
      t, {Predicate::ColCmp(0, CmpOp::kLt, 3, DataType::kInt64)});
  EXPECT_TRUE(p.Eval(0));   // 1 < 10
  EXPECT_FALSE(p.Eval(1));  // 5 < 5
  EXPECT_FALSE(p.Eval(2));  // 9 < 1
}

TEST(PredicateTest, ConjunctionShortCircuits) {
  Table t = MakeTable();
  PredicateList p(t, {Predicate::Int(0, CmpOp::kGt, 0),
                      Predicate::Str(2, CmpOp::kEq, "banana")});
  EXPECT_FALSE(p.Eval(0));
  EXPECT_TRUE(p.Eval(1));
}

TEST(PredicateTest, EmptyListAcceptsAll) {
  Table t = MakeTable();
  PredicateList p(t, {});
  EXPECT_TRUE(p.Eval(0));
  EXPECT_TRUE(p.empty());
}

TEST(CompiledExprTest, ColumnAndConst) {
  Table t = MakeTable();
  CompiledExpr ci(t, ScalarExpr::Col(0));
  EXPECT_DOUBLE_EQ(ci.Eval(1), 5.0);  // int col promoted to double
  CompiledExpr cd(t, ScalarExpr::Col(1));
  EXPECT_DOUBLE_EQ(cd.Eval(0), 0.5);
  CompiledExpr cc(t, ScalarExpr::Const(3.25));
  EXPECT_DOUBLE_EQ(cc.Eval(2), 3.25);
}

TEST(CompiledExprTest, Arithmetic) {
  Table t = MakeTable();
  using E = ScalarExpr;
  // (i + d) * 2 - i2 / 10
  CompiledExpr e(
      t, E::Sub(E::Mul(E::Add(E::Col(0), E::Col(1)), E::Const(2.0)),
                E::Div(E::Col(3), E::Const(10.0))));
  EXPECT_DOUBLE_EQ(e.Eval(0), (1 + 0.5) * 2 - 10 / 10.0);
  EXPECT_DOUBLE_EQ(e.Eval(1), (5 + 2.0) * 2 - 5 / 10.0);
}

TEST(CompiledExprTest, Sqrt) {
  Table t = MakeTable();
  CompiledExpr e(t, ScalarExpr::Sqrt(ScalarExpr::Col(3)));
  EXPECT_DOUBLE_EQ(e.Eval(1), std::sqrt(5.0));
}

TEST(CompiledExprTest, IndicatorEvaluatesPredicate) {
  Table t = MakeTable();
  CompiledExpr e(
      t, ScalarExpr::Indicator(Predicate::StrIn(2, {"apple", "cherry"})));
  EXPECT_DOUBLE_EQ(e.Eval(0), 1.0);
  EXPECT_DOUBLE_EQ(e.Eval(1), 0.0);
  EXPECT_DOUBLE_EQ(e.Eval(2), 1.0);
}

TEST(CompiledExprTest, TpchRevenueShape) {
  Table t = MakeTable();
  using E = ScalarExpr;
  // d * (1 - d) * (1 + d): nested like sum_charge.
  CompiledExpr e(t, E::Mul(E::Mul(E::Col(1), E::Sub(E::Const(1), E::Col(1))),
                           E::Add(E::Const(1), E::Col(1))));
  double d = 2.0;
  EXPECT_DOUBLE_EQ(e.Eval(1), d * (1 - d) * (1 + d));
}

TEST(ScalarExprTest, CopyIsDeep) {
  using E = ScalarExpr;
  ScalarExpr a = E::Add(E::Col(0), E::Const(1.0));
  ScalarExpr b = a;  // copy
  b.left->col = 3;
  EXPECT_EQ(a.left->col, 0);
  EXPECT_EQ(b.left->col, 3);
}

}  // namespace
}  // namespace smoke
