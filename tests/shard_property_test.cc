// Property test for sharded execution: over randomly generated plan DAGs,
// ExecuteShardedPlan must produce bit-identical outputs AND bit-identical
// composed lineage to the unsharded executor, for every shard count and
// thread count, and the shard fan-out trace must return exactly the
// composed index's answer while probing only the touched shards.
//
// The generator is the optimizer property test's, with one twist: the value
// column is integer-valued, so partial-aggregate SUMs are exact under any
// association and the sharded exchange cannot drift in the last FP bit.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "plan/executor.h"
#include "plan/plan.h"
#include "query/lineage_query.h"
#include "shard/coordinator.h"
#include "shard/shard_map.h"
#include "shard/sharded_table.h"

namespace smoke {
namespace {

/// Deterministic 64-bit LCG (MMIX constants) — a failing seed reproduces
/// exactly.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }
  size_t Below(size_t n) { return static_cast<size_t>(Next() % n); }
  int64_t IntIn(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                 hi - lo + 1));
  }
  bool Chance(uint32_t percent) { return Next() % 100 < percent; }

 private:
  uint64_t state_;
};

/// Key columns draw from a small domain so joins and group-bys fan out;
/// `v` is an integer-valued double so sums are exactly representable.
Table MakeRandomTable(Lcg* rng, size_t rows) {
  Schema s;
  s.AddField("k1", DataType::kInt64);
  s.AddField("k2", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({rng->IntIn(0, 7), rng->IntIn(0, 3),
                 static_cast<double>(rng->IntIn(0, 100))});
  }
  return t;
}

struct Sub {
  int id = -1;
  std::vector<DataType> types;
};

class PlanGen {
 public:
  PlanGen(Lcg* rng, const std::vector<Table>* tables)
      : rng_(rng), tables_(tables) {}

  Sub Gen(int budget) {
    Sub s = Leaf();
    while (budget-- > 0) s = Grow(std::move(s), budget);
    return s;
  }

  PlanBuilder* builder() { return &b_; }

 private:
  Sub Leaf() {
    size_t t = rng_->Below(tables_->size());
    Sub s;
    s.id = b_.Scan(&(*tables_)[t], "t" + std::to_string(t) + "_s" +
                                       std::to_string(scan_seq_++));
    s.types = {DataType::kInt64, DataType::kInt64, DataType::kFloat64};
    return s;
  }

  std::vector<int> IntCols(const Sub& s) const {
    std::vector<int> cols;
    for (size_t i = 0; i < s.types.size(); ++i) {
      if (s.types[i] == DataType::kInt64) cols.push_back(static_cast<int>(i));
    }
    return cols;
  }

  Predicate RandomPredicate(const Sub& s) {
    int col = static_cast<int>(rng_->Below(s.types.size()));
    const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe,
                         CmpOp::kEq, CmpOp::kNe};
    CmpOp op = ops[rng_->Below(6)];
    if (s.types[static_cast<size_t>(col)] == DataType::kInt64) {
      return Predicate::Int(col, op, rng_->IntIn(0, 7));
    }
    return Predicate::Double(col, op,
                             static_cast<double>(rng_->IntIn(0, 100)));
  }

  ScalarExpr RandomAggExpr(const Sub& s) {
    int col = static_cast<int>(rng_->Below(s.types.size()));
    if (rng_->Chance(30)) {
      // Folds to *2.0 — exact on integer-valued inputs.
      return ScalarExpr::Mul(
          ScalarExpr::Col(col),
          ScalarExpr::Add(ScalarExpr::Const(1.5), ScalarExpr::Const(0.5)));
    }
    return ScalarExpr::Col(col);
  }

  Sub Grow(Sub s, int budget) {
    switch (rng_->Below(7)) {
      case 0: {  // select
        std::vector<Predicate> preds;
        size_t n = rng_->Below(3);
        for (size_t i = 0; i < n; ++i) preds.push_back(RandomPredicate(s));
        s.id = b_.Select(s.id, std::move(preds));
        return s;
      }
      case 1: {  // project
        std::vector<int> cols;
        size_t n = 1 + rng_->Below(s.types.size());
        std::vector<DataType> types;
        for (size_t i = 0; i < n; ++i) {
          int c = static_cast<int>(rng_->Below(s.types.size()));
          cols.push_back(c);
          types.push_back(s.types[static_cast<size_t>(c)]);
        }
        s.id = b_.Project(s.id, std::move(cols));
        s.types = std::move(types);
        return s;
      }
      case 2: {  // derive a raw int64 grouping key
        std::vector<int> ints = IntCols(s);
        if (ints.empty()) return s;
        int c = ints[rng_->Below(ints.size())];
        s.id = b_.Derive(
            s.id, {GroupExpr::Raw(c, "d" + std::to_string(derive_seq_++))});
        s.types.push_back(DataType::kInt64);
        return s;
      }
      case 3: {  // group-by (exercises the partial-aggregate exchange)
        std::vector<int> ints = IntCols(s);
        if (ints.empty()) return s;
        GroupBySpec spec;
        spec.keys = {ints[rng_->Below(ints.size())]};
        spec.aggs = {AggSpec::Count("cnt"),
                     AggSpec::Sum(RandomAggExpr(s), "sum")};
        DataType key_type = s.types[static_cast<size_t>(spec.keys[0])];
        s.id = b_.GroupBy(s.id, std::move(spec));
        s.types = {key_type, DataType::kInt64, DataType::kFloat64};
        return s;
      }
      case 4: {  // hash join (broadcast or co-located build)
        Sub other = Gen(budget > 1 ? 1 : 0);
        std::vector<int> li = IntCols(s), ri = IntCols(other);
        if (li.empty() || ri.empty()) return s;
        JoinSpec spec;
        spec.left_key = li[rng_->Below(li.size())];
        spec.right_key = ri[rng_->Below(ri.size())];
        s.id = b_.HashJoin(s.id, other.id, spec);
        std::vector<DataType> types = s.types;
        types.insert(types.end(), other.types.begin(), other.types.end());
        s.types = std::move(types);
        return s;
      }
      case 5: {  // set op over two scans of the same table
        size_t t = rng_->Below(tables_->size());
        auto scan = [&] {
          Sub x;
          x.id = b_.Scan(&(*tables_)[t], "t" + std::to_string(t) + "_s" +
                                             std::to_string(scan_seq_++));
          x.types = {DataType::kInt64, DataType::kInt64, DataType::kFloat64};
          if (rng_->Chance(50)) {
            x.id = b_.Select(x.id, {RandomPredicate(x)});
          }
          return x;
        };
        Sub left = scan(), right = scan();
        const SetOpKind kinds[] = {SetOpKind::kSetUnion, SetOpKind::kBagUnion,
                                   SetOpKind::kSetIntersect,
                                   SetOpKind::kBagIntersect,
                                   SetOpKind::kSetDifference};
        SetOpKind kind = kinds[rng_->Below(5)];
        if (kind == SetOpKind::kBagUnion) {
          s.types = left.types;
          s.id = b_.SetOp(kind, left.id, right.id, std::vector<int>{});
        } else {
          std::vector<int> cols = {0, static_cast<int>(1 + rng_->Below(2))};
          std::vector<DataType> types;
          for (int c : cols) {
            types.push_back(left.types[static_cast<size_t>(c)]);
          }
          s.id = b_.SetOp(kind, left.id, right.id, std::move(cols));
          s.types = std::move(types);
        }
        return s;
      }
      default: {  // DAG sharing: join two group-bys over the same subplan
        std::vector<int> ints = IntCols(s);
        if (ints.empty()) return s;
        int key = ints[rng_->Below(ints.size())];
        GroupBySpec g1;
        g1.keys = {key};
        g1.aggs = {AggSpec::Count("c1")};
        GroupBySpec g2;
        g2.keys = {key};
        g2.aggs = {AggSpec::Sum(RandomAggExpr(s), "s2")};
        int a1 = b_.GroupBy(s.id, std::move(g1));
        int a2 = b_.GroupBy(s.id, std::move(g2));
        JoinSpec spec;
        spec.left_key = 0;
        spec.right_key = 0;
        s.id = b_.HashJoin(a1, a2, spec);
        s.types = {DataType::kInt64, DataType::kInt64, DataType::kInt64,
                   DataType::kFloat64};
        return s;
      }
    }
  }

  Lcg* rng_;
  const std::vector<Table>* tables_;
  PlanBuilder b_;
  int scan_seq_ = 0;
  int derive_seq_ = 0;
};

void ExpectBitIdentical(const PlanResult& a, const PlanResult& b,
                        const std::string& ctx) {
  ASSERT_EQ(a.output.num_columns(), b.output.num_columns()) << ctx;
  ASSERT_EQ(a.output.num_rows(), b.output.num_rows()) << ctx;
  for (size_t c = 0; c < a.output.num_columns(); ++c) {
    const Column& x = a.output.column(c);
    const Column& y = b.output.column(c);
    ASSERT_EQ(x.type(), y.type()) << ctx << " col " << c;
    switch (x.type()) {
      case DataType::kInt64:
        ASSERT_EQ(x.ints(), y.ints()) << ctx << " col " << c;
        break;
      case DataType::kFloat64:
        ASSERT_EQ(x.doubles().size(), y.doubles().size()) << ctx << " col "
                                                          << c;
        if (!x.doubles().empty()) {
          ASSERT_EQ(0, std::memcmp(x.doubles().data(), y.doubles().data(),
                                   x.doubles().size() * sizeof(double)))
              << ctx << " col " << c;
        }
        break;
      case DataType::kString:
        ASSERT_EQ(x.strings(), y.strings()) << ctx << " col " << c;
        break;
    }
  }
  ASSERT_EQ(a.lineage.num_inputs(), b.lineage.num_inputs()) << ctx;
  ASSERT_EQ(a.lineage.output_cardinality(), b.lineage.output_cardinality())
      << ctx;
  for (size_t i = 0; i < a.lineage.num_inputs(); ++i) {
    const TableLineage& x = a.lineage.input(i);
    const TableLineage& y = b.lineage.input(i);
    ASSERT_EQ(x.table_name, y.table_name) << ctx;
    for (auto dir : {&TableLineage::backward, &TableLineage::forward}) {
      const LineageIndex& ix = x.*dir;
      const LineageIndex& iy = y.*dir;
      ASSERT_EQ(ix.size(), iy.size()) << ctx << " " << x.table_name;
      std::vector<rid_t> lx, ly;
      for (size_t p = 0; p < ix.size(); ++p) {
        lx.clear();
        ly.clear();
        ix.TraceInto(static_cast<rid_t>(p), &lx);
        iy.TraceInto(static_cast<rid_t>(p), &ly);
        ASSERT_EQ(lx, ly) << ctx << " " << x.table_name << " pos " << p;
      }
    }
  }
}

TEST(ShardProperty, RandomPlansBitIdenticalShardedAndUnsharded) {
  Lcg table_rng(2018);
  std::vector<Table> tables;
  tables.push_back(MakeRandomTable(&table_rng, 200));
  tables.push_back(MakeRandomTable(&table_rng, 120));

  // One ShardedTable per (table, shard count); hash on k1 for the first
  // table, range on k2 for the second so both partitioners see traffic.
  const uint32_t kShardCounts[] = {1, 2, 5};
  std::vector<std::vector<ShardedTable>> sharded(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    for (uint32_t n : kShardCounts) {
      ShardingSpec spec =
          t == 0 ? ShardingSpec::Hash(0, n) : ShardingSpec::Range(1, n);
      ShardedTable st;
      ASSERT_TRUE(ShardedTable::Create(&tables[t], spec, &st).ok());
      sharded[t].push_back(std::move(st));
    }
  }

  int fan_out_checked = 0;
  int selective_traces = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Lcg rng(seed * 7919);
    PlanGen gen(&rng, &tables);
    Sub root = gen.Gen(2 + static_cast<int>(rng.Below(5)));
    LogicalPlan plan;
    ASSERT_TRUE(gen.builder()->Build(root.id, &plan).ok())
        << "seed " << seed << "\n"
        << plan.ToString();

    for (int threads : {1, 7}) {
      CaptureOptions opts = CaptureOptions::Inject();
      opts.num_threads = threads;
      PlanResult ref;
      ASSERT_TRUE(ExecutePlan(plan, opts, &ref).ok()) << "seed " << seed;

      for (size_t si = 0; si < 3; ++si) {
        const uint32_t n = kShardCounts[si];
        std::string ctx = "seed " + std::to_string(seed) + " threads " +
                          std::to_string(threads) + " shards " +
                          std::to_string(n) + "\n" + plan.ToString();
        ShardResolver resolver;
        for (size_t t = 0; t < tables.size(); ++t) {
          resolver[&tables[t]] = &sharded[t][si];
        }
        ShardedPlanResult sp;
        ASSERT_TRUE(ExecuteShardedPlan(plan, resolver, opts, &sp).ok())
            << ctx;
        ExpectBitIdentical(sp.plan, ref, ctx);
        if (sp.shard == nullptr) continue;

        // Fan-out trace == composed-index trace, rid for rid, for a
        // duplicate-bearing seed set and both dedup modes.
        const size_t rows = sp.plan.output.num_rows();
        if (rows == 0) continue;
        std::vector<rid_t> seeds = {0, static_cast<rid_t>(rng.Below(rows)),
                                    static_cast<rid_t>(rng.Below(rows)), 0};
        for (bool dedup : {true, false}) {
          std::vector<rid_t> expect, got;
          ASSERT_TRUE(BackwardRidsChecked(sp.plan.lineage,
                                          sp.shard->driver_relation, seeds,
                                          dedup, &expect)
                          .ok())
              << ctx;
          ShardTraceStats stats;
          ASSERT_TRUE(sp.shard->TraceBackward(seeds, dedup, &got, &stats).ok())
              << ctx;
          ASSERT_EQ(got, expect) << ctx << " dedup=" << dedup;
          EXPECT_EQ(stats.shards_total, n) << ctx;
          EXPECT_LE(stats.shards_visited, stats.shards_total) << ctx;
          ++fan_out_checked;
          if (n > 1 && stats.shards_visited < stats.shards_total) {
            ++selective_traces;
          }
        }
      }
    }
  }
  // The run is only meaningful if the fan-out path got real coverage, and
  // selective traces must actually skip shards some of the time.
  EXPECT_GE(fan_out_checked, 50);
  EXPECT_GE(selective_traces, 5);
}

}  // namespace
}  // namespace smoke
