// Sharded execution (shard/coordinator.h): ShardMap codec round-trips,
// range/hash slicing, bit-identical sharded vs unsharded results and lineage
// for the gather, exchange, broadcast and co-located join paths, selective
// backward-trace fan-out, and the engine's shard lifecycle guards.
#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/smoke_engine.h"
#include "optimizer/cost.h"
#include "shard/coordinator.h"
#include "shard/shard_map.h"
#include "shard/sharded_table.h"
#include "test_util.h"

namespace smoke {
namespace {

TEST(ShardMapTest, RoundTripAndLocalOrder) {
  // Assignment: rids 0..9 over 3 shards, interleaved.
  std::vector<uint32_t> shard_of = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0};
  ShardMap m = ShardMap::FromAssignment(shard_of, 3);
  ASSERT_EQ(m.num_shards(), 3u);
  ASSERT_EQ(m.num_rows(), 10u);
  EXPECT_EQ(m.shard_rows(0), 4u);
  EXPECT_EQ(m.shard_rows(1), 3u);
  EXPECT_EQ(m.shard_rows(2), 3u);
  for (rid_t g = 0; g < 10; ++g) {
    ShardLoc loc = m.ToLocal(g);
    EXPECT_EQ(loc.shard, shard_of[g]);
    EXPECT_EQ(m.ToGlobal(loc.shard, loc.local), g);
  }
  // Locals preserve ascending global order within each shard.
  for (uint32_t s = 0; s < 3; ++s) {
    const std::vector<rid_t>& globals = m.globals_of(s);
    for (size_t i = 1; i < globals.size(); ++i) {
      EXPECT_LT(globals[i - 1], globals[i]);
    }
  }
}

Table MakeKv(const std::vector<int64_t>& keys) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  for (size_t i = 0; i < keys.size(); ++i) {
    t.AppendRow({keys[i], static_cast<double>(i)});
  }
  return t;
}

TEST(ShardedTableTest, RangeSlicingIsOrderStable) {
  Table base = MakeKv({5, 0, 9, 2, 7, 4, 1, 8, 3, 6});
  ShardedTable st;
  ASSERT_TRUE(ShardedTable::Create(&base, ShardingSpec::Range(0, 2), &st).ok());
  ASSERT_EQ(st.num_shards(), 2u);
  // Equal-width over [0, 9]: shard 0 gets k in [0, 5), shard 1 the rest.
  size_t total = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    const Table& slice = st.shard(s);
    total += slice.num_rows();
    rid_t prev_global = 0;
    for (rid_t l = 0; l < slice.num_rows(); ++l) {
      rid_t g = st.map().ToGlobal(s, l);
      int64_t k = base.column(0).ints()[g];
      EXPECT_EQ(s == 0, k < 5) << "k=" << k;
      // Slice rows are copies of the base rows, in ascending global order.
      EXPECT_EQ(slice.column(0).ints()[l], k);
      EXPECT_EQ(slice.column(1).doubles()[l], base.column(1).doubles()[g]);
      if (l > 0) {
        EXPECT_LT(prev_global, g);
      }
      prev_global = g;
    }
  }
  EXPECT_EQ(total, base.num_rows());
}

TEST(ShardedTableTest, HashSlicingUsesSharedHash) {
  Table base = MakeKv({0, 1, 2, 3, 4, 5, 6, 7, 0, 1});
  ShardedTable st;
  ASSERT_TRUE(ShardedTable::Create(&base, ShardingSpec::Hash(0, 3), &st).ok());
  for (rid_t g = 0; g < base.num_rows(); ++g) {
    EXPECT_EQ(st.map().ToLocal(g).shard,
              ShardOfHash(base.column(0).ints()[g], 3));
  }
}

TEST(ShardedTableTest, RejectsNonInt64PartitionColumn) {
  Table base = MakeKv({1, 2, 3});
  ShardedTable st;
  EXPECT_FALSE(ShardedTable::Create(&base, ShardingSpec::Hash(1, 2), &st).ok());
  EXPECT_FALSE(ShardedTable::Create(&base, ShardingSpec::Hash(9, 2), &st).ok());
}

TEST(CostShardTraceTest, FewSeedsFanOutManySeedsComposed) {
  // One seed against many shards: fan-out probes ~1 shard, composed pays
  // all of them.
  ShardTraceCostReport few = CostShardTrace(1, 16, 100000);
  EXPECT_TRUE(few.use_fan_out);
  EXPECT_LT(few.expected_shards, 2.0);
  // Seeds >> shards: every shard is expected to be touched anyway, and the
  // fan-out's per-seed decode overhead loses.
  ShardTraceCostReport many = CostShardTrace(50000, 4, 100000);
  EXPECT_FALSE(many.use_fan_out);
  EXPECT_GT(many.expected_shards, 3.9);
}

// ---------------------------------------------------------------------------
// Engine-level sharded execution vs an identical unsharded engine.
// ---------------------------------------------------------------------------

/// events(g, k, v): 100 rows, g = i / 20 (5 contiguous blocks), k = i % 8,
/// v integer-valued so SUM is exact under any association.
Table MakeEvents() {
  Schema s;
  s.AddField("g", DataType::kInt64);
  s.AddField("k", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  for (int64_t i = 0; i < 100; ++i) {
    t.AppendRow({i / 20, i % 8, static_cast<double>((i * 7) % 50)});
  }
  return t;
}

class ShardEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sharded_.CreateTable("events", MakeEvents()).ok());
    ASSERT_TRUE(plain_.CreateTable("events", MakeEvents()).ok());
    ASSERT_TRUE(sharded_.ShardTable("events", ShardingSpec::Hash(0, 5)).ok());
  }

  /// Runs `build` against both engines and checks outputs match bit-exactly.
  void RunBoth(const std::string& name,
               const std::function<LogicalPlan(const Table*)>& build) {
    const Table *ts = nullptr, *tp = nullptr;
    ASSERT_TRUE(sharded_.GetTable("events", &ts).ok());
    ASSERT_TRUE(plain_.GetTable("events", &tp).ok());
    ASSERT_TRUE(sharded_.ExecutePlan(name, build(ts)).ok());
    ASSERT_TRUE(plain_.ExecutePlan(name, build(tp)).ok());
    const Table *os = nullptr, *op = nullptr;
    ASSERT_TRUE(sharded_.GetResult(name, &os).ok());
    ASSERT_TRUE(plain_.GetResult(name, &op).ok());
    ExpectSameTable(*os, *op);
    // Lineage agrees in both directions for every position.
    for (rid_t r = 0; r < os->num_rows(); ++r) {
      std::vector<rid_t> bs, bp;
      ASSERT_TRUE(sharded_.Backward(name, "events", {r}, &bs, false).ok());
      ASSERT_TRUE(plain_.Backward(name, "events", {r}, &bp, false).ok());
      EXPECT_EQ(bs, bp) << name << " backward of output " << r;
    }
    const Table* base = nullptr;
    ASSERT_TRUE(plain_.GetTable("events", &base).ok());
    for (rid_t r = 0; r < base->num_rows(); ++r) {
      std::vector<rid_t> fs, fp;
      ASSERT_TRUE(sharded_.Forward(name, "events", {r}, &fs).ok());
      ASSERT_TRUE(plain_.Forward(name, "events", {r}, &fp).ok());
      EXPECT_EQ(fs, fp) << name << " forward of input " << r;
    }
  }

  static void ExpectSameTable(const Table& a, const Table& b) {
    ASSERT_EQ(a.num_columns(), b.num_columns());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.column(c).type(), b.column(c).type());
      switch (a.column(c).type()) {
        case DataType::kInt64:
          EXPECT_EQ(a.column(c).ints(), b.column(c).ints()) << "col " << c;
          break;
        case DataType::kFloat64:
          EXPECT_EQ(a.column(c).doubles(), b.column(c).doubles())
              << "col " << c;
          break;
        case DataType::kString:
          EXPECT_EQ(a.column(c).strings(), b.column(c).strings())
              << "col " << c;
          break;
      }
    }
  }

  SmokeEngine sharded_;
  SmokeEngine plain_;
};

TEST_F(ShardEngineTest, GroupByExchangeBitIdentical) {
  RunBoth("by_g", [](const Table* t) {
    PlanBuilder b;
    GroupBySpec spec;
    spec.key_names = {"g"};
    spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col("v"), "sum_v")};
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(b.GroupBy(b.Scan(t, "events"), spec), &plan).ok());
    return plan;
  });
}

TEST_F(ShardEngineTest, SelectProjectDeriveGatherBitIdentical) {
  RunBoth("hot", [](const Table* t) {
    PlanBuilder b;
    int sel = b.Select(b.Scan(t, "events"),
                       {Predicate::Double("v", CmpOp::kGe, 10.0)});
    int der = b.Derive(sel, {GroupExpr::Raw("k", "k2")});
    int proj = b.Project(der, std::vector<std::string>{"g", "v", "k2"});
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(proj, &plan).ok());
    return plan;
  });
}

TEST_F(ShardEngineTest, BackwardShardedVisitsOnlyTouchedShards) {
  const Table* t = nullptr;
  ASSERT_TRUE(sharded_.GetTable("events", &t).ok());
  PlanBuilder b;
  GroupBySpec spec;
  spec.key_names = {"g"};
  spec.aggs = {AggSpec::Count("cnt")};
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(b.GroupBy(b.Scan(t, "events"), spec), &plan).ok());
  ASSERT_TRUE(sharded_.ExecutePlan("by_g", plan).ok());
  const Table* out = nullptr;
  ASSERT_TRUE(sharded_.GetResult("by_g", &out).ok());
  ASSERT_EQ(out->num_rows(), 5u);  // g in 0..4

  // All rows of one g block share the sharding key, so tracing one group
  // must probe exactly one of the 5 shards.
  ShardTraceStats one;
  std::vector<rid_t> rids, composed;
  ASSERT_TRUE(
      sharded_.BackwardSharded("by_g", "events", {0}, &rids, &one).ok());
  EXPECT_EQ(one.shards_total, 5u);
  EXPECT_EQ(one.shards_visited, 1u);
  EXPECT_EQ(one.rids_traced, 20u);
  ASSERT_TRUE(sharded_.Backward("by_g", "events", {0}, &composed).ok());
  EXPECT_EQ(rids, composed);

  // Tracing every group touches exactly the shards hosting the 5 g values.
  std::set<uint32_t> expect;
  for (int64_t g = 0; g < 5; ++g) expect.insert(ShardOfHash(g, 5));
  ShardTraceStats all;
  ASSERT_TRUE(
      sharded_.BackwardSharded("by_g", "events", {0, 1, 2, 3, 4}, &rids, &all)
          .ok());
  EXPECT_EQ(all.shards_visited, expect.size());
  ASSERT_TRUE(
      sharded_.Backward("by_g", "events", {0, 1, 2, 3, 4}, &composed).ok());
  EXPECT_EQ(rids, composed);

  // Duplicate-preserving traces agree too.
  ASSERT_TRUE(sharded_
                  .BackwardSharded("by_g", "events", {2, 2, 0}, &rids,
                                   nullptr, /*dedup=*/false)
                  .ok());
  ASSERT_TRUE(
      sharded_.Backward("by_g", "events", {2, 2, 0}, &composed, false).ok());
  EXPECT_EQ(rids, composed);

  // Wrong relation / unknown query are clear errors, not aborts.
  EXPECT_FALSE(
      sharded_.BackwardSharded("by_g", "nope", {0}, &rids, nullptr).ok());
  EXPECT_FALSE(
      sharded_.BackwardSharded("nope", "events", {0}, &rids, nullptr).ok());
}

TEST_F(ShardEngineTest, BroadcastJoinBitIdentical) {
  // dims(k, w) stays unsharded: the join build side is executed once and
  // broadcast, while the probe side runs per shard.
  Schema ds;
  ds.AddField("k", DataType::kInt64);
  ds.AddField("w", DataType::kFloat64);
  auto make_dims = [&ds] {
    Table d(ds);
    for (int64_t k = 0; k < 8; ++k) d.AppendRow({k, static_cast<double>(100 + k)});
    return d;
  };
  ASSERT_TRUE(sharded_.CreateTable("dims", make_dims()).ok());
  ASSERT_TRUE(plain_.CreateTable("dims", make_dims()).ok());

  auto build = [](const Table* events, const Table* dims) {
    PlanBuilder b;
    JoinSpec spec;
    spec.left_key_name = "k";
    spec.right_key_name = "k";
    spec.pk_build = true;
    int join = b.HashJoin(b.Scan(dims, "dims"), b.Scan(events, "events"), spec);
    GroupBySpec g;
    g.key_names = {"g"};
    g.aggs = {AggSpec::Sum(ScalarExpr::Col("w"), "sum_w")};
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(b.GroupBy(join, g), &plan).ok());
    return plan;
  };
  const Table *es = nullptr, *ep = nullptr, *dsh = nullptr, *dpl = nullptr;
  ASSERT_TRUE(sharded_.GetTable("events", &es).ok());
  ASSERT_TRUE(plain_.GetTable("events", &ep).ok());
  ASSERT_TRUE(sharded_.GetTable("dims", &dsh).ok());
  ASSERT_TRUE(plain_.GetTable("dims", &dpl).ok());
  ASSERT_TRUE(sharded_.ExecutePlan("j", build(es, dsh)).ok());
  ASSERT_TRUE(plain_.ExecutePlan("j", build(ep, dpl)).ok());
  const Table *os = nullptr, *op = nullptr;
  ASSERT_TRUE(sharded_.GetResult("j", &os).ok());
  ASSERT_TRUE(plain_.GetResult("j", &op).ok());
  ExpectSameTable(*os, *op);
  for (const char* rel : {"events", "dims"}) {
    for (rid_t r = 0; r < os->num_rows(); ++r) {
      std::vector<rid_t> bs, bp;
      ASSERT_TRUE(sharded_.Backward("j", rel, {r}, &bs, false).ok());
      ASSERT_TRUE(plain_.Backward("j", rel, {r}, &bp, false).ok());
      EXPECT_EQ(bs, bp) << rel << " backward of output " << r;
    }
  }
}

TEST_F(ShardEngineTest, ColocatedJoinBitIdentical) {
  // Both tables hash-sharded on the join key with equal shard counts:
  // matching keys land in the same shard, so the build side reads its own
  // slice instead of a broadcast.
  Schema ds;
  ds.AddField("k", DataType::kInt64);
  ds.AddField("w", DataType::kFloat64);
  auto make_dims = [&ds] {
    Table d(ds);
    for (int64_t k = 0; k < 8; ++k) d.AppendRow({k, static_cast<double>(k * 3)});
    return d;
  };
  ASSERT_TRUE(sharded_.CreateTable("dims", make_dims()).ok());
  ASSERT_TRUE(plain_.CreateTable("dims", make_dims()).ok());
  // Re-shard events on the join key k (col 1) so the join is co-located.
  ASSERT_TRUE(sharded_.ShardTable("events", ShardingSpec::Hash(1, 3)).ok());
  ASSERT_TRUE(sharded_.ShardTable("dims", ShardingSpec::Hash(0, 3)).ok());

  auto build = [](const Table* events, const Table* dims) {
    PlanBuilder b;
    JoinSpec spec;
    spec.left_key_name = "k";
    spec.right_key_name = "k";
    spec.pk_build = true;
    int join = b.HashJoin(b.Scan(dims, "dims"), b.Scan(events, "events"), spec);
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(join, &plan).ok());
    return plan;
  };
  const Table *es = nullptr, *ep = nullptr, *dsh = nullptr, *dpl = nullptr;
  ASSERT_TRUE(sharded_.GetTable("events", &es).ok());
  ASSERT_TRUE(plain_.GetTable("events", &ep).ok());
  ASSERT_TRUE(sharded_.GetTable("dims", &dsh).ok());
  ASSERT_TRUE(plain_.GetTable("dims", &dpl).ok());
  ASSERT_TRUE(sharded_.ExecutePlan("cj", build(es, dsh)).ok());
  ASSERT_TRUE(plain_.ExecutePlan("cj", build(ep, dpl)).ok());
  const Table *os = nullptr, *op = nullptr;
  ASSERT_TRUE(sharded_.GetResult("cj", &os).ok());
  ASSERT_TRUE(plain_.GetResult("cj", &op).ok());
  ExpectSameTable(*os, *op);
  for (const char* rel : {"events", "dims"}) {
    for (rid_t r = 0; r < os->num_rows(); ++r) {
      std::vector<rid_t> bs, bp;
      ASSERT_TRUE(sharded_.Backward("cj", rel, {r}, &bs, false).ok());
      ASSERT_TRUE(plain_.Backward("cj", rel, {r}, &bp, false).ok());
      EXPECT_EQ(bs, bp) << rel << " backward of output " << r;
    }
  }
}

TEST_F(ShardEngineTest, ShardLifecycleGuards) {
  EXPECT_FALSE(sharded_.ShardTable("nope", ShardingSpec::Hash(0, 2)).ok());
  // String column refused.
  EXPECT_EQ(sharded_.ShardTable("events", ShardingSpec::Hash(2, 2)).code(),
            Status::Code::kInvalidArgument);

  const Table* t = nullptr;
  ASSERT_TRUE(sharded_.GetTable("events", &t).ok());
  PlanBuilder b;
  GroupBySpec spec;
  spec.key_names = {"g"};
  spec.aggs = {AggSpec::Count("cnt")};
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(b.GroupBy(b.Scan(t, "events"), spec), &plan).ok());
  ASSERT_TRUE(sharded_.ExecutePlan("by_g", plan).ok());

  // The retained result borrows the current ShardMap: re-shard and unshard
  // are refused until it is dropped.
  Status st = sharded_.ShardTable("events", ShardingSpec::Hash(1, 3));
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("by_g"), std::string::npos) << st.message();
  EXPECT_FALSE(sharded_.UnshardTable("events").ok());

  ASSERT_TRUE(sharded_.DropResult("by_g").ok());
  EXPECT_TRUE(sharded_.ShardTable("events", ShardingSpec::Range(1, 3)).ok());
  EXPECT_TRUE(sharded_.UnshardTable("events").ok());
  EXPECT_FALSE(sharded_.UnshardTable("events").ok());  // already unsharded

  // Unsharded again: plans execute and trace normally.
  ASSERT_TRUE(sharded_.ExecutePlan("again", plan).ok());
  std::vector<rid_t> rids;
  EXPECT_TRUE(sharded_.Backward("again", "events", {0}, &rids).ok());
  // ...but the fan-out entry point now has no shard state to pin.
  EXPECT_FALSE(
      sharded_.BackwardSharded("again", "events", {0}, &rids, nullptr).ok());
}

}  // namespace
}  // namespace smoke
