// Property-style tests for lineage composition (lineage/compose.h): the
// composed index of a chain of operators must equal the brute-force
// relational join of the per-operator edge sets, and composed
// backward/forward pairs must stay mutual inverses.
#include "lineage/compose.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "engine/group_by.h"
#include "engine/select.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "test_util.h"

namespace smoke {
namespace {

using testing::AreInverse;
using testing::Edges;

/// Deterministic LCG so the property tests are reproducible.
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint32_t Next(uint32_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((state >> 33) % bound);
  }
};

/// Random 1-to-N index: `n_src` entries over targets < n_dst.
LineageIndex RandomIndex(Lcg* rng, size_t n_src, size_t n_dst,
                         uint32_t max_fanout) {
  RidIndex idx(n_src);
  for (size_t i = 0; i < n_src; ++i) {
    uint32_t fanout = rng->Next(max_fanout + 1);
    for (uint32_t k = 0; k < fanout; ++k) {
      idx.Append(i, rng->Next(static_cast<uint32_t>(n_dst)));
    }
  }
  return LineageIndex::FromIndex(std::move(idx));
}

/// Random 1-to-1 array: `n_src` entries, ~1/5 unmapped.
LineageIndex RandomArray(Lcg* rng, size_t n_src, size_t n_dst) {
  RidArray arr(n_src, kInvalidRid);
  for (size_t i = 0; i < n_src; ++i) {
    if (rng->Next(5) != 0) arr[i] = rng->Next(static_cast<uint32_t>(n_dst));
  }
  return LineageIndex::FromArray(std::move(arr));
}

/// Brute-force composition: for each (s, m) edge of `outer` and (m, t) edge
/// of `inner`, one (s, t) edge — multiset semantics.
std::multiset<std::pair<rid_t, rid_t>> JoinEdges(const LineageIndex& outer,
                                                 const LineageIndex& inner) {
  std::multimap<rid_t, rid_t> inner_edges;
  for (auto [m, t] : Edges(inner)) inner_edges.emplace(m, t);
  std::multiset<std::pair<rid_t, rid_t>> out;
  for (auto [s, m] : Edges(outer)) {
    auto [lo, hi] = inner_edges.equal_range(m);
    for (auto it = lo; it != hi; ++it) out.emplace(s, it->second);
  }
  return out;
}

TEST(ComposePropertyTest, BackwardEqualsBruteForceJoin) {
  Lcg rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n_out = 1 + rng.Next(20);
    size_t n_mid = 1 + rng.Next(30);
    size_t n_in = 1 + rng.Next(40);
    LineageIndex outer = trial % 2 == 0 ? RandomIndex(&rng, n_out, n_mid, 4)
                                        : RandomArray(&rng, n_out, n_mid);
    LineageIndex inner = trial % 3 == 0 ? RandomArray(&rng, n_mid, n_in)
                                        : RandomIndex(&rng, n_mid, n_in, 3);
    LineageIndex composed = ComposeBackward(outer, inner);
    auto got = Edges(composed);
    std::multiset<std::pair<rid_t, rid_t>> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, JoinEdges(outer, inner)) << "trial " << trial;
    EXPECT_EQ(composed.size(), n_out);
  }
}

TEST(ComposePropertyTest, ForwardEqualsDeduplicatedJoin) {
  Lcg rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n_in = 1 + rng.Next(30);
    size_t n_mid = 1 + rng.Next(20);
    size_t n_out = 1 + rng.Next(25);
    LineageIndex inner = trial % 2 == 0 ? RandomIndex(&rng, n_in, n_mid, 3)
                                        : RandomArray(&rng, n_in, n_mid);
    LineageIndex outer = trial % 3 == 0 ? RandomArray(&rng, n_mid, n_out)
                                        : RandomIndex(&rng, n_mid, n_out, 4);
    LineageIndex composed = ComposeForward(inner, outer);
    // Forward is set-valued: compare deduplicated edge sets.
    auto got = Edges(composed);
    std::set<std::pair<rid_t, rid_t>> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicate forward edges";
    auto joined = JoinEdges(inner, outer);
    std::set<std::pair<rid_t, rid_t>> want(joined.begin(), joined.end());
    EXPECT_EQ(got_set, want) << "trial " << trial;
    EXPECT_EQ(composed.size(), n_in);
  }
}

TEST(ComposePropertyTest, ComposedPairsStayInverse) {
  // When outer/forward pairs are themselves inverses (as operator capture
  // guarantees), the composed pair must be too.
  Lcg rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n_out = 1 + rng.Next(10);
    size_t n_mid = 1 + rng.Next(15);
    size_t n_in = 1 + rng.Next(20);
    LineageIndex outer_b = RandomIndex(&rng, n_out, n_mid, 3);
    LineageIndex inner_b = RandomIndex(&rng, n_mid, n_in, 3);
    // Build the forward inverses by transposing.
    auto transpose = [](const LineageIndex& b, size_t n_targets) {
      RidIndex f(n_targets);
      for (auto [s, t] : Edges(b)) f.Append(t, s);
      return LineageIndex::FromIndex(std::move(f));
    };
    LineageIndex outer_f = transpose(outer_b, n_mid);
    LineageIndex inner_f = transpose(inner_b, n_in);

    LineageIndex comp_b = ComposeBackward(outer_b, inner_b);
    LineageIndex comp_f = ComposeForward(inner_f, outer_f);
    EXPECT_TRUE(AreInverse(comp_b, comp_f)) << "trial " << trial;
  }
}

TEST(ComposeTest, EmptySidesYieldEmpty) {
  Lcg rng(1);
  LineageIndex some = RandomIndex(&rng, 5, 5, 2);
  EXPECT_TRUE(ComposeBackward(LineageIndex(), some).empty());
  EXPECT_TRUE(ComposeBackward(some, LineageIndex()).empty());
  EXPECT_TRUE(ComposeForward(LineageIndex(), some).empty());
  EXPECT_TRUE(ComposeForward(some, LineageIndex()).empty());
}

TEST(ComposeTest, ArrayArrayStaysArray) {
  RidArray outer = {2, kInvalidRid, 0};
  RidArray inner = {7, 8, 9};
  LineageIndex composed = ComposeBackward(LineageIndex::FromArray(outer),
                                          LineageIndex::FromArray(inner));
  ASSERT_EQ(composed.kind(), LineageIndex::Kind::kArray);
  EXPECT_EQ(composed.array()[0], 9u);
  EXPECT_EQ(composed.array()[1], kInvalidRid);
  EXPECT_EQ(composed.array()[2], 7u);
}

TEST(ComposeTest, MergePreservesBackwardMultiplicity) {
  RidIndex a(2), b(2);
  a.Append(0, 5);
  b.Append(0, 5);  // same edge through a second derivation path
  b.Append(1, 6);
  LineageIndex dst = LineageIndex::FromIndex(std::move(a));
  MergeBackwardInto(&dst, LineageIndex::FromIndex(std::move(b)));
  EXPECT_EQ(dst.index().list(0).size(), 2u);  // duplicates kept
  EXPECT_EQ(dst.index().list(1).size(), 1u);

  RidIndex c(2), d(2);
  c.Append(0, 3);
  d.Append(0, 3);
  d.Append(0, 4);
  LineageIndex fdst = LineageIndex::FromIndex(std::move(c));
  MergeForwardInto(&fdst, LineageIndex::FromIndex(std::move(d)));
  EXPECT_EQ(fdst.index().list(0).size(), 2u);  // {3, 4}: deduplicated
}

// ---------------------------------------------------------------------------
// End-to-end property over a real 3-operator chain: the plan executor's
// composed indexes equal the brute-force join of independently captured
// per-operator fragments.
// ---------------------------------------------------------------------------

TEST(ComposeChainTest, ThreeOperatorChainMatchesPerOperatorJoin) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  s.AddField("v", DataType::kInt64);
  Table t(s);
  Lcg rng(1234);
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({static_cast<int64_t>(rng.Next(12)),
                 static_cast<int64_t>(rng.Next(100))});
  }

  // Chain: select(v < 60) -> group_by(k; count, sum v) -> select(count >= 5).
  std::vector<Predicate> pre = {Predicate::Int(1, CmpOp::kLt, 60)};
  GroupBySpec agg;
  agg.keys = {0};
  agg.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(1), "sum")};
  std::vector<Predicate> post = {Predicate::Int(1, CmpOp::kGe, 5)};

  PlanBuilder b;
  int sel = b.Select(b.Scan(&t, "t"), pre);
  int gb = b.GroupBy(sel, agg);
  int root = b.Select(gb, post);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());
  PlanResult res;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &res).ok());

  // Independent per-operator execution with capture.
  SelectResult r1 = SelectExec(t, "t", pre, CaptureOptions::Inject());
  GroupByResult r2 =
      GroupByExec(r1.output, "mid", agg, CaptureOptions::Inject());
  SelectResult r3 =
      SelectExec(r2.output, "mid2", post, CaptureOptions::Inject());

  // Brute-force join of the three backward fragments.
  auto composed_bw =
      ComposeBackward(r3.lineage.input(0).backward,
                      ComposeBackward(r2.lineage.input(0).backward,
                                      r1.lineage.input(0).backward));
  EXPECT_EQ(Edges(res.lineage.input(0).backward), Edges(composed_bw));

  auto composed_fw =
      ComposeForward(r1.lineage.input(0).forward,
                     ComposeForward(r2.lineage.input(0).forward,
                                    r3.lineage.input(0).forward));
  EXPECT_EQ(Edges(res.lineage.input(0).forward), Edges(composed_fw));

  // Round trip: the plan's composed pair must be mutual inverses.
  EXPECT_TRUE(AreInverse(res.lineage.input(0).backward,
                         res.lineage.input(0).forward));

  // And composition must be associative: (r3 ∘ r2) ∘ r1 == r3 ∘ (r2 ∘ r1).
  auto left_assoc =
      ComposeBackward(ComposeBackward(r3.lineage.input(0).backward,
                                      r2.lineage.input(0).backward),
                      r1.lineage.input(0).backward);
  EXPECT_EQ(Edges(left_assoc), Edges(composed_bw));
}

}  // namespace
}  // namespace smoke
