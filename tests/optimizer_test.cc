// The optimizer layer: rule-based plan rewriting (bit-identical results AND
// lineage, checked optimize-on vs optimize-off), cost-based trace strategy
// selection, schema inference / plan validation, group-by capture
// push-downs, and the EXPLAIN record.
#include "optimizer/optimizer.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/spja.h"
#include "lineage/store/lineage_store.h"
#include "plan/executor.h"
#include "query/trace_builder.h"
#include "test_util.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

// ---------------------------------------------------------------------------
// Helpers: bit-exact comparison of plan results (outputs and lineage)
// ---------------------------------------------------------------------------

void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.column(c).type(), b.column(c).type()) << "column " << c;
    switch (a.column(c).type()) {
      case DataType::kInt64:
        ASSERT_EQ(a.column(c).ints(), b.column(c).ints()) << "column " << c;
        break;
      case DataType::kFloat64: {
        const auto& x = a.column(c).doubles();
        const auto& y = b.column(c).doubles();
        ASSERT_EQ(x.size(), y.size());
        // Bitwise, not epsilon: optimized plans must run the identical
        // arithmetic.
        if (!x.empty()) {
          ASSERT_EQ(0, std::memcmp(x.data(), y.data(),
                                   x.size() * sizeof(double)))
              << "column " << c;
        }
        break;
      }
      case DataType::kString:
        ASSERT_EQ(a.column(c).strings(), b.column(c).strings())
            << "column " << c;
        break;
    }
  }
}

/// Per-position expansion of a lineage index, preserving stored list order
/// and duplicates — the "bits" of the lineage, independent of encoding.
std::vector<std::vector<rid_t>> ExpandIndex(const LineageIndex& idx) {
  std::vector<std::vector<rid_t>> lists(idx.size());
  for (size_t s = 0; s < idx.size(); ++s) {
    idx.TraceInto(static_cast<rid_t>(s), &lists[s]);
  }
  return lists;
}

void ExpectLineageBitIdentical(const QueryLineage& a, const QueryLineage& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.output_cardinality(), b.output_cardinality());
  for (size_t i = 0; i < a.num_inputs(); ++i) {
    const TableLineage& x = a.input(i);
    const TableLineage& y = b.input(i);
    ASSERT_EQ(x.table_name, y.table_name) << "input " << i;
    ASSERT_EQ(x.backward.kind(), y.backward.kind()) << x.table_name;
    ASSERT_EQ(x.forward.kind(), y.forward.kind()) << x.table_name;
    ASSERT_EQ(ExpandIndex(x.backward), ExpandIndex(y.backward))
        << x.table_name << " backward";
    ASSERT_EQ(ExpandIndex(x.forward), ExpandIndex(y.forward))
        << x.table_name << " forward";
  }
}

/// Runs `plan` with the rewriter on and off (same capture options
/// otherwise) and checks output + lineage are bit-identical. Returns the
/// optimized run's result for EXPLAIN assertions.
PlanResult ExpectOptimizeInvariant(const LogicalPlan& plan,
                                   int num_threads = 1) {
  CaptureOptions opts = CaptureOptions::Inject();
  opts.num_threads = num_threads;
  PlanResult with;
  EXPECT_TRUE(ExecutePlan(plan, opts, &with).ok());
  EXPECT_TRUE(with.explain.optimized);

  CaptureOptions raw = opts;
  raw.optimize = false;
  PlanResult without;
  EXPECT_TRUE(ExecutePlan(plan, raw, &without).ok());
  EXPECT_FALSE(without.explain.optimized);

  ExpectTablesBitIdentical(with.output, without.output);
  ExpectLineageBitIdentical(with.lineage, without.lineage);
  return with;
}

/// sales(region_id, amount): 12 rows over 4 regions.
Table MakeSales() {
  Schema s;
  s.AddField("region_id", DataType::kInt64);
  s.AddField("amount", DataType::kFloat64);
  Table t(s);
  const int64_t regions[] = {0, 1, 2, 0, 1, 2, 3, 0, 1, 0, 3, 2};
  for (size_t i = 0; i < 12; ++i) {
    t.AppendRow({regions[i], static_cast<double>(i + 1)});
  }
  return t;
}

Table MakeReturns() {
  Schema s;
  s.AddField("region_id", DataType::kInt64);
  s.AddField("amount", DataType::kFloat64);
  Table t(s);
  const int64_t regions[] = {0, 1, 2, 0, 1, 0, 2, 1};
  for (size_t i = 0; i < 8; ++i) {
    t.AppendRow({regions[i], static_cast<double>(10 * (i + 1))});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Rewrite rules: bit-identity and EXPLAIN records
// ---------------------------------------------------------------------------

TEST(OptimizerRules, PushSelectThroughProject) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int proj = b.Project(scan, std::vector<int>{1, 0});  // amount, region_id
  int sel = b.Select(proj, {Predicate::Int(1, CmpOp::kEq, 0)});
  int agg = b.GroupBy(sel, {{1}, {AggSpec::Sum(ScalarExpr::Col(0), "amt")}});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(agg, &plan).ok());

  PlanResult r = ExpectOptimizeInvariant(plan);
  EXPECT_TRUE(r.explain.HasRule("push_select_through_project"));
  EXPECT_FALSE(r.explain.plan_text.empty());
}

TEST(OptimizerRules, MergeSelectsAndElisions) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int sel1 = b.Select(scan, {Predicate::Int(0, CmpOp::kLe, 2)});
  int proj = b.Project(sel1, std::vector<int>{0, 1});  // identity
  int sel2 = b.Select(proj, {Predicate::Double(1, CmpOp::kGt, 2.0)});
  int sel3 = b.Select(sel2, {});  // predicate-free, absorbed by merge
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(sel3, &plan).ok());

  PlanResult r = ExpectOptimizeInvariant(plan);
  EXPECT_TRUE(r.explain.HasRule("elide_identity_project"));
  EXPECT_TRUE(r.explain.HasRule("merge_selects"));
  // Everything collapses into a single select over the scan: two plan
  // lines, no projection node left.
  EXPECT_EQ(std::count(r.explain.plan_text.begin(), r.explain.plan_text.end(),
                       '\n'),
            2);
  EXPECT_EQ(r.explain.plan_text.find("project ["), std::string::npos);
}

TEST(OptimizerRules, ElideEmptySelect) {
  // The predicate-free select sits over a group-by (not another select, or
  // merge_selects would absorb it first).
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int agg = b.GroupBy(scan, {{0}, {AggSpec::Count("cnt")}});
  int sel = b.Select(agg, {});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(sel, &plan).ok());

  PlanResult r = ExpectOptimizeInvariant(plan);
  EXPECT_TRUE(r.explain.HasRule("elide_empty_select"));
  EXPECT_EQ(r.explain.plan_text.find("select ["), std::string::npos);
}

TEST(OptimizerRules, MergeProjects) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int p1 = b.Project(scan, std::vector<int>{1, 0});
  int p2 = b.Project(p1, std::vector<int>{1});  // region_id only
  int agg = b.GroupBy(p2, {{0}, {AggSpec::Count("cnt")}});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(agg, &plan).ok());

  PlanResult r = ExpectOptimizeInvariant(plan);
  EXPECT_TRUE(r.explain.HasRule("merge_projects"));
}

TEST(OptimizerRules, PushSelectThroughDerive) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int der = b.Derive(scan, {GroupExpr::Raw(0, "rid_key")});
  int sel = b.Select(der, {Predicate::Int(0, CmpOp::kNe, 3)});
  int agg = b.GroupBy(sel, {{2}, {AggSpec::Count("cnt")}});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(agg, &plan).ok());

  PlanResult r = ExpectOptimizeInvariant(plan);
  EXPECT_TRUE(r.explain.HasRule("push_select_through_derive"));
}

TEST(OptimizerRules, PushSelectThroughSetOpAllKinds) {
  Table sales = MakeSales();
  Table returns = MakeReturns();
  const SetOpKind kinds[] = {SetOpKind::kSetUnion, SetOpKind::kBagUnion,
                             SetOpKind::kSetIntersect,
                             SetOpKind::kBagIntersect,
                             SetOpKind::kSetDifference};
  for (SetOpKind kind : kinds) {
    PlanBuilder b;
    int a = b.Scan(&sales, "sales");
    int r = b.Scan(&returns, "returns");
    int so = b.SetOp(kind, a, r, std::vector<int>{0});
    int sel = b.Select(so, {Predicate::Int(0, CmpOp::kLe, 1)});
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(sel, &plan).ok());

    PlanResult res = ExpectOptimizeInvariant(plan);
    EXPECT_TRUE(res.explain.HasRule("push_select_through_set_op"))
        << "kind " << static_cast<int>(kind);
  }
}

TEST(OptimizerRules, ConstantFolding) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  // amount * (2 + 3): the constant subtree folds to 5.0.
  ScalarExpr e = ScalarExpr::Mul(
      ScalarExpr::Col(1),
      ScalarExpr::Add(ScalarExpr::Const(2.0), ScalarExpr::Const(3.0)));
  int agg = b.GroupBy(scan, {{0}, {AggSpec::Sum(std::move(e), "amt5")}});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(agg, &plan).ok());

  PlanResult r = ExpectOptimizeInvariant(plan);
  EXPECT_TRUE(r.explain.HasRule("fold_constants"));
}

TEST(OptimizerRules, SharedIdentityProjectElidedInPlace) {
  // A DAG-shared identity projection is elided by overwriting the node in
  // place, so *both* consumers see the scan directly and the converge point
  // of the lineage merge keeps its node id — results and lineage must stay
  // bit-identical.
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int proj = b.Project(scan, std::vector<int>{0, 1});  // identity, shared
  int agg1 = b.GroupBy(proj, {{0}, {AggSpec::Count("cnt")}});
  int agg2 = b.GroupBy(proj, {{0}, {AggSpec::Sum(ScalarExpr::Col(1), "amt")}});
  int join = b.HashJoin(agg1, agg2, JoinSpec{0, 0});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(join, &plan).ok());

  PlanResult r = ExpectOptimizeInvariant(plan);
  EXPECT_TRUE(r.explain.HasRule("elide_identity_project"));
  EXPECT_EQ(r.explain.plan_text.find("project ["), std::string::npos);
}

TEST(OptimizerRules, ParallelExecutionStaysInvariant) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int proj = b.Project(scan, std::vector<int>{0, 1});
  int sel = b.Select(proj, {Predicate::Int(0, CmpOp::kLe, 2)});
  int agg = b.GroupBy(sel, {{0}, {AggSpec::Sum(ScalarExpr::Col(1), "amt")}});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(agg, &plan).ok());
  ExpectOptimizeInvariant(plan, /*num_threads=*/7);
}

// ---------------------------------------------------------------------------
// Schema inference: malformed plans fail at optimize time with a Status
// ---------------------------------------------------------------------------

TEST(OptimizerValidation, RejectsOutOfRangePredicate) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int sel = b.Select(scan, {Predicate::Int(99, CmpOp::kEq, 0)});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(sel, &plan).ok());

  LogicalPlan out;
  Status st = OptimizePlan(plan, &out, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("out of range"), std::string::npos);

  PlanResult r;
  EXPECT_FALSE(ExecutePlan(plan, CaptureOptions::Inject(), &r).ok());
}

TEST(OptimizerValidation, RejectsPredicateTypeMismatch) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  // Column 1 is float64; an int-typed predicate would abort inside the
  // selection kernel. The optimizer rejects it up front instead.
  int sel = b.Select(scan, {Predicate::Int(1, CmpOp::kEq, 0)});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(sel, &plan).ok());
  LogicalPlan out;
  EXPECT_FALSE(OptimizePlan(plan, &out, nullptr).ok());
}

TEST(OptimizerValidation, RejectsNonIntJoinKey) {
  Table sales = MakeSales();
  PlanBuilder b;
  int a = b.Scan(&sales, "a");
  int c = b.Scan(&sales, "b");
  int join = b.HashJoin(a, c, JoinSpec{1, 1});  // float keys
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(join, &plan).ok());
  LogicalPlan out;
  Status st = OptimizePlan(plan, &out, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("int64"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Group-by capture push-downs (lifted from the SPJA block)
// ---------------------------------------------------------------------------

TEST(GroupByPushdown, SelectionFiltersBackwardLists) {
  Table sales = MakeSales();
  SPJAPushdown push;
  push.sel_fact = {Predicate::Double(1, CmpOp::kGt, 5.0)};

  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int agg = b.GroupBy(scan, {{0}, {AggSpec::Count("cnt")}}, push);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(agg, &plan).ok());

  PlanResult r;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &r).ok());
  ASSERT_NE(r.spja_artifacts, nullptr);
  EXPECT_EQ(r.spja_artifacts->applied_pushdown.sel_fact.size(), 1u);

  // Aggregates still cover every row; backward lists only qualifying rows.
  const auto& amount = sales.column(1).doubles();
  const LineageIndex& bw = r.lineage.input(0).backward;
  size_t listed = 0;
  for (rid_t g = 0; g < bw.size(); ++g) {
    std::vector<rid_t> rids;
    bw.TraceInto(g, &rids);
    for (rid_t rid : rids) {
      EXPECT_GT(amount[rid], 5.0);
      ++listed;
    }
  }
  size_t expect = 0;
  for (double v : amount) expect += v > 5.0 ? 1 : 0;
  EXPECT_EQ(listed, expect);
}

TEST(GroupByPushdown, SkippingReplacesBackwardIndexAndServesTraces) {
  Table sales = MakeSales();
  GroupBySpec spec{{0}, {AggSpec::Sum(ScalarExpr::Col(1), "amt")}};

  // Reference: no push-down, plain indexed backward trace with a filter.
  PlanBuilder rb;
  int rscan = rb.Scan(&sales, "sales");
  int ragg = rb.GroupBy(rscan, spec);
  LogicalPlan rplan;
  ASSERT_TRUE(rb.Build(ragg, &rplan).ok());
  PlanResult ref;
  ASSERT_TRUE(ExecutePlan(rplan, CaptureOptions::Inject(), &ref).ok());

  // Push-down run: partitioned by region_id.
  SPJAPushdown push;
  push.skip_cols = {0};
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int agg = b.GroupBy(scan, spec, push);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(agg, &plan).ok());
  PlanResult r;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &r).ok());

  ExpectTablesBitIdentical(r.output, ref.output);
  ASSERT_NE(r.spja_artifacts, nullptr);
  EXPECT_GT(r.spja_artifacts->skip_index.num_codes(), 0u);
  EXPECT_EQ(r.spja_artifacts->skip_index.num_outputs(), r.output.num_rows());
  // The partitioned index replaces the plain backward index.
  EXPECT_TRUE(r.lineage.input(0).backward.empty());

  // A backward trace with the matching equality predicate resolves to the
  // skipping strategy (indexed is infeasible — the plain index is gone) and
  // returns exactly the reference rows of that partition.
  const int64_t region = sales.column(0).ints()[0];
  for (rid_t oid = 0; oid < r.output.num_rows(); ++oid) {
    LineageQuery q;
    TraceBuilder tb =
        TraceBuilder::Backward(TraceSource::FromPlan(r, "view"), "sales",
                               {oid});
    tb.Filter(Predicate::Int(0, CmpOp::kEq, region));
    ASSERT_TRUE(tb.Compile(&q).ok());
    EXPECT_EQ(q.strategy(), TraceStrategy::kSkipping);
    EXPECT_EQ(q.explain().strategy, "skipping");
    PlanResult traced;
    ASSERT_TRUE(q.Execute(CaptureOptions::Inject(), &traced).ok());

    // Reference: indexed trace over the no-push-down run, same filter.
    LineageQuery rq;
    TraceBuilder rtb = TraceBuilder::Backward(
        TraceSource::FromPlan(ref, "view"), "sales", {oid});
    rtb.Filter(Predicate::Int(0, CmpOp::kEq, region));
    ASSERT_TRUE(rtb.Compile(&rq).ok());
    EXPECT_EQ(rq.strategy(), TraceStrategy::kIndexed);
    PlanResult rtraced;
    ASSERT_TRUE(rq.Execute(CaptureOptions::Inject(), &rtraced).ok());
    ExpectTablesBitIdentical(traced.output, rtraced.output);
  }
}

TEST(GroupByPushdown, RequiresScanChild) {
  Table sales = MakeSales();
  SPJAPushdown push;
  push.skip_cols = {0};
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  int sel = b.Select(scan, {Predicate::Int(0, CmpOp::kLe, 2)});
  int agg = b.GroupBy(sel, {{0}, {AggSpec::Count("cnt")}}, push);
  LogicalPlan plan;
  EXPECT_FALSE(b.Build(agg, &plan).ok());
}

// ---------------------------------------------------------------------------
// Cost-based strategy selection + trace rewrites (TPC-H sources)
// ---------------------------------------------------------------------------

class OptimizerTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new tpch::Database(tpch::Generate(0.01));
    q1_ = new SPJAQuery(tpch::MakeQ1(*db_));
    base_ = new SPJAResult(SPJAExec(*q1_, CaptureOptions::Inject()));

    SPJAPushdown skip;
    skip.skip_cols = {tpch::kLShipmode, tpch::kLShipinstruct};
    skip_base_ =
        new SPJAResult(SPJAExec(*q1_, CaptureOptions::Inject(), &skip));
  }
  static void TearDownTestSuite() {
    delete skip_base_;
    delete base_;
    delete q1_;
    delete db_;
  }

  static TraceSource BaseSource() {
    return TraceSource::FromSpja(*q1_, *base_, "q1");
  }

  static tpch::Database* db_;
  static SPJAQuery* q1_;
  static SPJAResult* base_;
  static SPJAResult* skip_base_;
};
tpch::Database* OptimizerTraceTest::db_ = nullptr;
SPJAQuery* OptimizerTraceTest::q1_ = nullptr;
SPJAResult* OptimizerTraceTest::base_ = nullptr;
SPJAResult* OptimizerTraceTest::skip_base_ = nullptr;

TEST_F(OptimizerTraceTest, AutoPicksIndexedOnPlainSource) {
  LineageQuery q;
  TraceBuilder b = TraceBuilder::Backward(BaseSource(), "lineitem", {0});
  ASSERT_TRUE(b.Compile(&q).ok());
  EXPECT_EQ(q.strategy(), TraceStrategy::kIndexed);
  EXPECT_EQ(q.explain().strategy, "indexed");
  EXPECT_NE(q.explain().strategy_detail.find("indexed:"), std::string::npos);
  EXPECT_NE(q.explain().strategy_detail.find("<- chosen"), std::string::npos);
  // Full EXPLAIN dump renders strategy, rules, and the plan.
  std::string dump = q.explain().ToString();
  EXPECT_NE(dump.find("strategy: indexed"), std::string::npos);
  EXPECT_NE(dump.find("plan:"), std::string::npos);
  EXPECT_NE(dump.find("trace"), std::string::npos);
}

TEST_F(OptimizerTraceTest, AutoPicksSkippingWithCoveringPartitionIndex) {
  LineageQuery q;
  TraceBuilder b = TraceBuilder::Backward(
      TraceSource::FromSpja(*q1_, *skip_base_, "q1skip"), "lineitem", {0});
  b.Filter(Predicate::Str(tpch::kLShipmode, CmpOp::kEq, "MAIL"));
  b.Filter(Predicate::Str(tpch::kLShipinstruct, CmpOp::kEq, "NONE"));
  ASSERT_TRUE(b.Compile(&q).ok());
  EXPECT_EQ(q.strategy(), TraceStrategy::kSkipping);
  EXPECT_NE(q.explain().strategy_detail.find("skipping:"), std::string::npos);
}

TEST_F(OptimizerTraceTest, AutoFallsBackToIndexedWhenSkipIndexNotResident) {
  // Same artifacts, but the partitioned index itself was dropped (budget
  // eviction keeps the dictionary): the cost model must not choose
  // skipping over empty partitions.
  SPJAResult hollow = SPJAExec(*q1_, CaptureOptions::Inject());
  hollow.skip_dict = skip_base_->skip_dict;
  hollow.applied_pushdown = skip_base_->applied_pushdown;
  ASSERT_EQ(hollow.skip_index.num_codes(), 0u);

  LineageQuery q;
  TraceBuilder b = TraceBuilder::Backward(
      TraceSource::FromSpja(*q1_, hollow, "q1hollow"), "lineitem", {0});
  b.Filter(Predicate::Str(tpch::kLShipmode, CmpOp::kEq, "MAIL"));
  b.Filter(Predicate::Str(tpch::kLShipinstruct, CmpOp::kEq, "NONE"));
  ASSERT_TRUE(b.Compile(&q).ok());
  EXPECT_EQ(q.strategy(), TraceStrategy::kIndexed);
  EXPECT_NE(q.explain().strategy_detail.find("skipping: infeasible"),
            std::string::npos);
}

TEST_F(OptimizerTraceTest, AutoPicksLazyOnEvictedSource) {
  SPJAResult evicted = SPJAExec(*q1_, CaptureOptions::Inject());
  EvictQueryLineage(&evicted.lineage);

  LineageQuery q;
  TraceBuilder b = TraceBuilder::Backward(
      TraceSource::FromSpja(*q1_, evicted, "q1evicted"), "lineitem", {0});
  ASSERT_TRUE(b.Compile(&q).ok());
  EXPECT_EQ(q.strategy(), TraceStrategy::kLazy);
  EXPECT_EQ(q.explain().strategy, "lazy");
  EXPECT_NE(q.explain().strategy_detail.find("indexed: infeasible"),
            std::string::npos);
  EXPECT_NE(q.explain().strategy_detail.find("lazy:"), std::string::npos);
}

TEST_F(OptimizerTraceTest, PushSelectIntoTraceBitIdentical) {
  for (rid_t oid = 0; oid < 3 && oid < base_->output.num_rows(); ++oid) {
    TraceBuilder on = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    on.Filter(Predicate::Str(tpch::kLShipmode, CmpOp::kEq, "MAIL"));
    LineageQuery qon;
    ASSERT_TRUE(on.Compile(&qon).ok());
    EXPECT_TRUE(qon.explain().HasRule("push_select_into_trace"));

    TraceBuilder off = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    off.Filter(Predicate::Str(tpch::kLShipmode, CmpOp::kEq, "MAIL"));
    off.Optimize(false);
    LineageQuery qoff;
    ASSERT_TRUE(off.Compile(&qoff).ok());
    EXPECT_TRUE(qoff.explain().rules.empty());

    PlanResult a, c;
    ASSERT_TRUE(qon.Execute(CaptureOptions::Inject(), &a).ok());
    ASSERT_TRUE(qoff.Execute(CaptureOptions::Inject(), &c).ok());
    ExpectTablesBitIdentical(a.output, c.output);
    ExpectLineageBitIdentical(a.lineage, c.lineage);
  }
}

TEST_F(OptimizerTraceTest, TraceHopFusionBitIdentical) {
  // Drill-down chain: backward out of q1, forward back into q1 (linked
  // brushing within one view exercises Trace∘Trace).
  for (rid_t oid = 0; oid < 3 && oid < base_->output.num_rows(); ++oid) {
    TraceBuilder on = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    on.ThenForward(BaseSource());
    LineageQuery qon;
    ASSERT_TRUE(on.Compile(&qon).ok());
    EXPECT_TRUE(qon.explain().HasRule("fuse_trace_hops"));

    TraceBuilder off = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    off.ThenForward(BaseSource());
    off.Optimize(false);
    LineageQuery qoff;
    ASSERT_TRUE(off.Compile(&qoff).ok());

    PlanResult a, c;
    ASSERT_TRUE(qon.Execute(CaptureOptions::Inject(), &a).ok());
    ASSERT_TRUE(qoff.Execute(CaptureOptions::Inject(), &c).ok());
    ExpectTablesBitIdentical(a.output, c.output);
    ExpectLineageBitIdentical(a.lineage, c.lineage);

    // And under kNone capture (results only, the crossfilter path).
    PlanResult an, cn;
    ASSERT_TRUE(qon.Execute(CaptureOptions::None(), &an).ok());
    ASSERT_TRUE(qoff.Execute(CaptureOptions::None(), &cn).ok());
    ExpectTablesBitIdentical(an.output, cn.output);
  }
}

TEST_F(OptimizerTraceTest, FusedChainWithFilterBitIdentical) {
  // Filter over the final endpoint (q1's output): col 2 is the first
  // aggregate (float64). The predicate lands inside the fused trace node.
  for (rid_t oid = 0; oid < 3 && oid < base_->output.num_rows(); ++oid) {
    TraceBuilder on = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    on.ThenForward(BaseSource());
    on.Filter(Predicate::Double(2, CmpOp::kGe, 0.0));
    LineageQuery qon;
    ASSERT_TRUE(on.Compile(&qon).ok());

    TraceBuilder off = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    off.ThenForward(BaseSource());
    off.Filter(Predicate::Double(2, CmpOp::kGe, 0.0));
    off.Optimize(false);
    LineageQuery qoff;
    ASSERT_TRUE(off.Compile(&qoff).ok());

    PlanResult a, c;
    ASSERT_TRUE(qon.Execute(CaptureOptions::Inject(), &a).ok());
    ASSERT_TRUE(qoff.Execute(CaptureOptions::Inject(), &c).ok());
    ExpectTablesBitIdentical(a.output, c.output);
    ExpectLineageBitIdentical(a.lineage, c.lineage);
  }
}

}  // namespace
}  // namespace smoke
