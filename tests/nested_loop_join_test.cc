#include "engine/nested_loop_join.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

TEST(NljTest, ThetaLessThanMatchesOracle) {
  Table a = MakeZipfTable(20, 5, 1.0, 1);
  Table b = MakeZipfTable(30, 5, 1.0, 2);
  NljSpec spec;
  spec.conds = {{zipf_table::kZ, CmpOp::kLt, zipf_table::kZ}};
  auto res = NestedLoopJoinExec(a, "a", b, "b", spec,
                                CaptureOptions::Inject());
  const auto& az = a.column(zipf_table::kZ).ints();
  const auto& bz = b.column(zipf_table::kZ).ints();
  size_t expect = 0;
  for (rid_t i = 0; i < 20; ++i) {
    for (rid_t j = 0; j < 30; ++j) expect += az[i] < bz[j];
  }
  EXPECT_EQ(res.output_cardinality, expect);
  // Backward arrays hold consistent witnesses.
  const auto& a_bw = res.lineage.input(0).backward.array();
  const auto& b_bw = res.lineage.input(1).backward.array();
  for (size_t o = 0; o < a_bw.size(); ++o) {
    ASSERT_LT(az[a_bw[o]], bz[b_bw[o]]);
  }
  EXPECT_TRUE(testing::AreInverse(res.lineage.input(0).backward,
                                  res.lineage.input(0).forward));
}

TEST(NljTest, EqualityThetaMatchesHashJoinCardinality) {
  Table a = MakeZipfTable(25, 4, 1.0, 3);
  Table b = MakeZipfTable(40, 4, 1.0, 4);
  NljSpec spec;
  spec.conds = {{zipf_table::kZ, CmpOp::kEq, zipf_table::kZ}};
  auto res = NestedLoopJoinExec(a, "a", b, "b", spec,
                                CaptureOptions::Inject());
  const auto& az = a.column(zipf_table::kZ).ints();
  const auto& bz = b.column(zipf_table::kZ).ints();
  size_t expect = 0;
  for (rid_t i = 0; i < 25; ++i) {
    for (rid_t j = 0; j < 40; ++j) expect += az[i] == bz[j];
  }
  EXPECT_EQ(res.output_cardinality, expect);
}

TEST(NljTest, ConjunctionOfConditions) {
  Table a = MakeZipfTable(15, 5, 1.0, 5);
  Table b = MakeZipfTable(15, 5, 1.0, 6);
  NljSpec spec;
  spec.conds = {{zipf_table::kZ, CmpOp::kLe, zipf_table::kZ},
                {zipf_table::kV, CmpOp::kGt, zipf_table::kV}};
  auto res = NestedLoopJoinExec(a, "a", b, "b", spec,
                                CaptureOptions::Inject());
  const auto& az = a.column(zipf_table::kZ).ints();
  const auto& bz = b.column(zipf_table::kZ).ints();
  const auto& av = a.column(zipf_table::kV).doubles();
  const auto& bv = b.column(zipf_table::kV).doubles();
  size_t expect = 0;
  for (rid_t i = 0; i < 15; ++i) {
    for (rid_t j = 0; j < 15; ++j) {
      expect += az[i] <= bz[j] && av[i] > bv[j];
    }
  }
  EXPECT_EQ(res.output_cardinality, expect);
}

TEST(NljTest, CondensedLeftForwardRunEncoding) {
  Table a = MakeZipfTable(10, 3, 1.0, 7);
  Table b = MakeZipfTable(25, 3, 1.0, 8);
  NljSpec full_spec;
  full_spec.conds = {{zipf_table::kZ, CmpOp::kEq, zipf_table::kZ}};
  auto full = NestedLoopJoinExec(a, "a", b, "b", full_spec,
                                 CaptureOptions::Inject());
  NljSpec cond_spec = full_spec;
  cond_spec.condense_left_forward = true;
  auto cond = NestedLoopJoinExec(a, "a", b, "b", cond_spec,
                                 CaptureOptions::Inject());
  // The (run_start, run_len) encoding expands to the full forward lists.
  const RidIndex& fw = full.lineage.input(0).forward.index();
  for (rid_t i = 0; i < 10; ++i) {
    std::vector<rid_t> expanded;
    if (cond.left_run_start[i] != kInvalidRid) {
      for (uint32_t k = 0; k < cond.left_run_len[i]; ++k) {
        expanded.push_back(cond.left_run_start[i] + k);
      }
    }
    ASSERT_EQ(expanded, testing::Sorted(fw.list(i)));
  }
}

TEST(NljTest, EmptyConditionIsCrossProduct) {
  Table a = MakeZipfTable(7, 2, 0.0, 9);
  Table b = MakeZipfTable(11, 2, 0.0, 10);
  NljSpec spec;  // no conditions
  auto res = NestedLoopJoinExec(a, "a", b, "b", spec,
                                CaptureOptions::Inject());
  EXPECT_EQ(res.output_cardinality, 77u);
}

TEST(CrossProductTest, ComputedLineageArithmetic) {
  Table a = MakeZipfTable(6, 2, 0.0, 11);
  Table b = MakeZipfTable(4, 2, 0.0, 12);
  auto res = CrossProductExec(a, b, /*materialize_output=*/true);
  EXPECT_EQ(res.output.num_rows(), 24u);
  // Backward arithmetic matches materialization order.
  const auto& az = a.column(zipf_table::kZ).ints();
  const auto& out_z = res.output.column(zipf_table::kZ).ints();
  for (size_t o = 0; o < 24; ++o) {
    EXPECT_EQ(out_z[o], az[res.lineage.BackwardLeft(o)]);
  }
  // Forward left of rid 1: outputs 4..7.
  std::vector<rid_t> f;
  res.lineage.ForwardLeftInto(1, &f);
  EXPECT_EQ(f, (std::vector<rid_t>{4, 5, 6, 7}));
  // Forward right of rid 2: outputs 2, 6, 10, ...
  f.clear();
  res.lineage.ForwardRightInto(2, &f);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_EQ(f[0], 2u);
  EXPECT_EQ(f[1], 6u);
}

TEST(CrossProductTest, NoMaterialize) {
  Table a = MakeZipfTable(1000, 2, 0.0, 13);
  Table b = MakeZipfTable(1000, 2, 0.0, 14);
  auto res = CrossProductExec(a, b, /*materialize_output=*/false);
  EXPECT_EQ(res.output.num_rows(), 0u);
  EXPECT_EQ(res.lineage.BackwardLeft(1000 * 999 + 5), 999u);
  EXPECT_EQ(res.lineage.BackwardRight(1000 * 999 + 5), 5u);
}

}  // namespace
}  // namespace smoke
