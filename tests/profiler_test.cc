#include "apps/profiler.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/physician.h"

namespace smoke {
namespace {

/// Normalizes a report into value -> sorted rid list for comparison.
std::map<std::string, std::vector<rid_t>> Normalize(const FdReport& r) {
  std::map<std::string, std::vector<rid_t>> m;
  for (size_t i = 0; i < r.violating_values.size(); ++i) {
    m[r.violating_values[i]] = testing::SortedList(r.bipartite, i);
  }
  return m;
}

TEST(ProfilerTest, KnownViolations) {
  Schema s;
  s.AddField("a", DataType::kString);
  s.AddField("b", DataType::kString);
  Table t(s);
  t.AppendRow({std::string("x"), std::string("1")});
  t.AppendRow({std::string("x"), std::string("1")});
  t.AppendRow({std::string("y"), std::string("2")});
  t.AppendRow({std::string("y"), std::string("3")});  // y violates
  t.AppendRow({std::string("z"), std::string("4")});
  FdSpec fd{0, 1, "a->b"};
  FdReport r = ProfileCD(t, fd);
  ASSERT_EQ(r.violating_values.size(), 1u);
  EXPECT_EQ(r.violating_values[0], "y");
  EXPECT_EQ(testing::SortedList(r.bipartite, 0), (std::vector<rid_t>{2, 3}));
  EXPECT_EQ(r.num_groups, 3u);
}

TEST(ProfilerTest, NoViolations) {
  Schema s;
  s.AddField("a", DataType::kInt64);
  s.AddField("b", DataType::kString);
  Table t(s);
  t.AppendRow({int64_t{1}, std::string("p")});
  t.AppendRow({int64_t{1}, std::string("p")});
  t.AppendRow({int64_t{2}, std::string("q")});
  FdSpec fd{0, 1, "a->b"};
  EXPECT_TRUE(ProfileCD(t, fd).violating_values.empty());
  EXPECT_TRUE(ProfileUG(t, fd).violating_values.empty());
  EXPECT_TRUE(ProfileMetanomeUG(t, fd).violating_values.empty());
}

TEST(ProfilerTest, IntRhsColumn) {
  Schema s;
  s.AddField("a", DataType::kString);
  s.AddField("b", DataType::kInt64);
  Table t(s);
  t.AppendRow({std::string("x"), int64_t{1}});
  t.AppendRow({std::string("x"), int64_t{2}});
  FdSpec fd{0, 1, "a->b"};
  FdReport r = ProfileCD(t, fd);
  ASSERT_EQ(r.violating_values.size(), 1u);
  EXPECT_EQ(r.violating_values[0], "x");
}

class ProfilerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ProfilerEquivalence, ThreeTechniquesAgreeOnPhysicianFds) {
  Table t = physician::Generate(20000, 42);
  const FdSpec fds[] = {
      {physician::kNpi, physician::kPacId, "NPI->PAC_ID"},
      {physician::kZip, physician::kState, "Zip->State"},
      {physician::kZip, physician::kCity, "Zip->City"},
      {physician::kLbn1, physician::kCcn1, "LBN1->CCN1"},
  };
  const FdSpec& fd = fds[GetParam()];
  FdReport cd = ProfileCD(t, fd);
  FdReport ug = ProfileUG(t, fd);
  FdReport mg = ProfileMetanomeUG(t, fd);
  EXPECT_EQ(Normalize(cd), Normalize(ug)) << fd.name;
  EXPECT_EQ(Normalize(cd), Normalize(mg)) << fd.name;
  EXPECT_EQ(cd.num_groups, ug.num_groups);
}

INSTANTIATE_TEST_SUITE_P(Fds, ProfilerEquivalence,
                         ::testing::Values(0, 1, 2, 3));

TEST(ProfilerTest, PhysicianDataHasInjectedViolations) {
  Table t = physician::Generate(50000, 7);
  FdSpec zip_city{physician::kZip, physician::kCity, "Zip->City"};
  FdReport r = ProfileCD(t, zip_city);
  // 2% violation rate: plenty of violating zips.
  EXPECT_GT(r.violating_values.size(), 50u);
  // Each bipartite list contains every tuple of that zip.
  const auto& zips = t.column(physician::kZip).strings();
  for (size_t i = 0; i < std::min<size_t>(r.violating_values.size(), 10); ++i) {
    for (rid_t rid : r.bipartite.list(i)) {
      ASSERT_EQ(zips[rid], r.violating_values[i]);
    }
  }
}

}  // namespace
}  // namespace smoke
