#include "engine/group_by.h"

#include <map>

#include <gtest/gtest.h>

#include "baselines/bdb_sim.h"
#include "baselines/phys_mem.h"
#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

using testing::AreInverse;
using testing::Edges;
using testing::GroupedRows;

GroupBySpec MicrobenchSpec() {
  // The paper's microbenchmark query: z, COUNT(*), SUM(v), SUM(v*v),
  // SUM(sqrt(v)), MIN(v), MAX(v) FROM zipf GROUP BY z.
  using E = ScalarExpr;
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {
      AggSpec::Count("cnt"),
      AggSpec::Sum(E::Col(zipf_table::kV), "sum_v"),
      AggSpec::Sum(E::Mul(E::Col(zipf_table::kV), E::Col(zipf_table::kV)),
                   "sum_v2"),
      AggSpec::Sum(E::Sqrt(E::Col(zipf_table::kV)), "sum_sqrt_v"),
      AggSpec::Min(E::Col(zipf_table::kV), "min_v"),
      AggSpec::Max(E::Col(zipf_table::kV), "max_v"),
  };
  return spec;
}

/// Brute-force reference: group -> (count, sum, rids).
struct RefGroup {
  int64_t count = 0;
  double sum = 0;
  std::vector<rid_t> rids;
};
std::map<int64_t, RefGroup> Reference(const Table& t) {
  std::map<int64_t, RefGroup> ref;
  const auto& zs = t.column(zipf_table::kZ).ints();
  const auto& vs = t.column(zipf_table::kV).doubles();
  for (rid_t r = 0; r < t.num_rows(); ++r) {
    RefGroup& g = ref[zs[r]];
    ++g.count;
    g.sum += vs[r];
    g.rids.push_back(r);
  }
  return ref;
}

TEST(GroupByTest, AggregatesMatchReference) {
  Table t = MakeZipfTable(5000, 40, 1.0);
  auto res = GroupByExec(t, "zipf", MicrobenchSpec(), CaptureOptions::None());
  auto ref = Reference(t);
  ASSERT_EQ(res.output.num_rows(), ref.size());
  const auto& keys = res.output.column(0).ints();
  const auto& counts = res.output.column(1).ints();
  const auto& sums = res.output.column(2).doubles();
  for (size_t g = 0; g < keys.size(); ++g) {
    const RefGroup& rg = ref.at(keys[g]);
    ASSERT_EQ(counts[g], rg.count);
    ASSERT_NEAR(sums[g], rg.sum, 1e-6);
  }
}

TEST(GroupByTest, InjectBackwardListsMatchReference) {
  Table t = MakeZipfTable(2000, 25, 1.2);
  auto res = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Inject());
  auto ref = Reference(t);
  const auto& keys = res.output.column(0).ints();
  const auto& bw = res.lineage.input(0).backward.index();
  ASSERT_EQ(bw.size(), ref.size());
  for (size_t g = 0; g < keys.size(); ++g) {
    ASSERT_EQ(testing::SortedList(bw, g),
              testing::Sorted(ref.at(keys[g]).rids));
  }
  EXPECT_TRUE(AreInverse(res.lineage.input(0).backward,
                         res.lineage.input(0).forward));
}

TEST(GroupByTest, DeferMatchesInject) {
  Table t = MakeZipfTable(3000, 30, 0.8);
  auto inj = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Inject());
  auto def = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Defer());
  // Before finalization, Defer has no indexes.
  EXPECT_TRUE(def.lineage.input(0).backward.empty());
  FinalizeDeferredGroupBy(&def, t, CaptureOptions::Defer());
  EXPECT_EQ(GroupedRows(inj.output, 1), GroupedRows(def.output, 1));
  EXPECT_EQ(Edges(inj.lineage.input(0).backward),
            Edges(def.lineage.input(0).backward));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward),
            Edges(def.lineage.input(0).forward));
}

TEST(GroupByTest, DeferPreallocatesExactly) {
  Table t = MakeZipfTable(3000, 30, 0.8);
  auto def = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Defer());
  FinalizeDeferredGroupBy(&def, t, CaptureOptions::Defer());
  const auto& bw = def.lineage.input(0).backward.index();
  // Exactly-sized lists: zero growth reallocations beyond the initial
  // reservation.
  EXPECT_EQ(bw.TotalReallocs(), bw.size());
}

TEST(GroupByTest, TrueCardinalitiesMatchInject) {
  Table t = MakeZipfTable(3000, 20, 1.0);
  auto plain = GroupByExec(t, "zipf", MicrobenchSpec(),
                           CaptureOptions::Inject());
  CardinalityHints hints;
  hints.per_key_counts = CountPerKey(t, zipf_table::kZ);
  hints.have_per_key_counts = true;
  hints.expected_groups = 20;
  CaptureOptions opts = CaptureOptions::Inject();
  opts.hints = &hints;
  auto tc = GroupByExec(t, "zipf", MicrobenchSpec(), opts);
  EXPECT_EQ(Edges(plain.lineage.input(0).backward),
            Edges(tc.lineage.input(0).backward));
  // With exact per-key counts, each list is allocated once.
  EXPECT_EQ(tc.lineage.input(0).backward.index().TotalReallocs(),
            tc.lineage.input(0).backward.index().size());
}

TEST(GroupByTest, LogicRidAnnotatedRelation) {
  Table t = MakeZipfTable(500, 10, 1.0);
  auto res = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Mode(CaptureMode::kLogicRid));
  // Denormalized: one row per input row.
  ASSERT_EQ(res.annotated.num_rows(), t.num_rows());
  int ann = res.annotated.ColumnIndex("prov_rid");
  ASSERT_GE(ann, 0);
  const auto& rids = res.annotated.column(static_cast<size_t>(ann)).ints();
  const auto& zs = t.column(zipf_table::kZ).ints();
  const auto& out_z = res.annotated.column(0).ints();
  for (size_t i = 0; i < rids.size(); ++i) {
    // Each annotated row carries its input's group key.
    ASSERT_EQ(out_z[i], zs[static_cast<size_t>(rids[i])]);
  }
}

TEST(GroupByTest, LogicTupAnnotatedRelationIsWider) {
  Table t = MakeZipfTable(100, 5, 1.0);
  auto rid_res = GroupByExec(t, "zipf", MicrobenchSpec(),
                             CaptureOptions::Mode(CaptureMode::kLogicRid));
  auto tup_res = GroupByExec(t, "zipf", MicrobenchSpec(),
                             CaptureOptions::Mode(CaptureMode::kLogicTup));
  EXPECT_GT(tup_res.annotated.num_columns(), rid_res.annotated.num_columns());
  EXPECT_EQ(tup_res.annotated.num_rows(), t.num_rows());
}

TEST(GroupByTest, LogicIdxMatchesInject) {
  Table t = MakeZipfTable(1000, 15, 1.0);
  auto inj = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Inject());
  auto idx = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Mode(CaptureMode::kLogicIdx));
  EXPECT_EQ(Edges(inj.lineage.input(0).backward),
            Edges(idx.lineage.input(0).backward));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward),
            Edges(idx.lineage.input(0).forward));
}

TEST(GroupByTest, PhysMemMatchesInject) {
  Table t = MakeZipfTable(1000, 15, 1.0);
  auto inj = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Inject());
  PhysMemWriter writer;
  CaptureOptions opts = CaptureOptions::Mode(CaptureMode::kPhysMem);
  opts.writer = &writer;
  auto phys = GroupByExec(t, "zipf", MicrobenchSpec(), opts);
  EXPECT_EQ(GroupedRows(inj.output, 1), GroupedRows(phys.output, 1));
  LineageIndex bw = LineageIndex::FromIndex(writer.ExportBackward());
  EXPECT_EQ(Edges(inj.lineage.input(0).backward), Edges(bw));
  LineageIndex fw =
      LineageIndex::FromIndex(writer.ExportForward(t.num_rows()));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward), Edges(fw));
}

TEST(GroupByTest, PhysBdbMatchesInject) {
  Table t = MakeZipfTable(800, 12, 1.0);
  auto inj = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Inject());
  BdbWriter writer;
  CaptureOptions opts = CaptureOptions::Mode(CaptureMode::kPhysBdb);
  opts.writer = &writer;
  GroupByExec(t, "zipf", MicrobenchSpec(), opts);
  const auto& bw = inj.lineage.input(0).backward.index();
  for (size_t g = 0; g < bw.size(); ++g) {
    std::vector<rid_t> got;
    writer.FetchBackward(static_cast<rid_t>(g), &got);
    ASSERT_EQ(testing::Sorted(got), testing::SortedList(bw, g));
  }
}

TEST(GroupByTest, CompositeStringKeys) {
  Schema s;
  s.AddField("a", DataType::kString);
  s.AddField("b", DataType::kString);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  t.AppendRow({std::string("x"), std::string("p"), 1.0});
  t.AppendRow({std::string("x"), std::string("q"), 2.0});
  t.AppendRow({std::string("x"), std::string("p"), 3.0});
  t.AppendRow({std::string("y"), std::string("p"), 4.0});
  GroupBySpec spec;
  spec.keys = {0, 1};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(2), "sum_v")};
  auto res = GroupByExec(t, "t", spec, CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 3u);
  auto rows = GroupedRows(res.output, 2);
  EXPECT_EQ(rows.at("x|p|"), "2|4.000000|");
  EXPECT_EQ(rows.at("x|q|"), "1|2.000000|");
  EXPECT_EQ(rows.at("y|p|"), "1|4.000000|");
  const auto& bw = res.lineage.input(0).backward.index();
  size_t total = 0;
  for (size_t g = 0; g < bw.size(); ++g) total += bw.list(g).size();
  EXPECT_EQ(total, 4u);
}

TEST(GroupByTest, AvgAggregate) {
  Table t = MakeZipfTable(100, 4, 0.0);
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Avg(ScalarExpr::Col(zipf_table::kV), "avg_v"),
               AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
  auto res = GroupByExec(t, "zipf", spec, CaptureOptions::None());
  const auto& avgs = res.output.column(1).doubles();
  const auto& counts = res.output.column(2).ints();
  const auto& sums = res.output.column(3).doubles();
  for (size_t g = 0; g < res.output.num_rows(); ++g) {
    ASSERT_NEAR(avgs[g], sums[g] / static_cast<double>(counts[g]), 1e-9);
  }
}

TEST(GroupByTest, SingleGroup) {
  Table t = MakeZipfTable(100, 1, 0.0);
  auto res = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Inject());
  ASSERT_EQ(res.output.num_rows(), 1u);
  EXPECT_EQ(res.lineage.input(0).backward.index().list(0).size(), 100u);
}

TEST(GroupByTest, ForwardOnlyPruning) {
  Table t = MakeZipfTable(200, 8, 1.0);
  CaptureOptions opts = CaptureOptions::Inject();
  opts.capture_backward = false;
  auto res = GroupByExec(t, "zipf", MicrobenchSpec(), opts);
  EXPECT_TRUE(res.lineage.input(0).backward.empty());
  ASSERT_FALSE(res.lineage.input(0).forward.empty());
  // Forward array still maps every row to its group.
  const auto& fw = res.lineage.input(0).forward.array();
  const auto& zs = t.column(zipf_table::kZ).ints();
  const auto& out_z = res.output.column(0).ints();
  for (rid_t r = 0; r < 200; ++r) {
    ASSERT_EQ(out_z[fw[r]], zs[r]);
  }
}

class GroupByPropertySweep
    : public ::testing::TestWithParam<std::tuple<size_t, int, double>> {};

TEST_P(GroupByPropertySweep, InverseAndPartitionProperties) {
  auto [n, groups, theta] = GetParam();
  Table t = MakeZipfTable(n, static_cast<uint64_t>(groups), theta);
  auto res = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Inject());
  const auto& bw = res.lineage.input(0).backward.index();
  // Backward lists partition the input: every rid appears exactly once.
  std::vector<int> seen(n, 0);
  for (size_t g = 0; g < bw.size(); ++g) {
    for (rid_t r : bw.list(g)) ++seen[r];
  }
  for (size_t r = 0; r < n; ++r) ASSERT_EQ(seen[r], 1);
  ASSERT_TRUE(AreInverse(res.lineage.input(0).backward,
                         res.lineage.input(0).forward));
  // Defer agrees.
  auto def = GroupByExec(t, "zipf", MicrobenchSpec(),
                         CaptureOptions::Defer());
  FinalizeDeferredGroupBy(&def, t, CaptureOptions::Defer());
  ASSERT_EQ(Edges(res.lineage.input(0).backward),
            Edges(def.lineage.input(0).backward));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupByPropertySweep,
    ::testing::Combine(::testing::Values(100, 1000, 5000),
                       ::testing::Values(1, 10, 100),
                       ::testing::Values(0.0, 1.0, 1.6)));

}  // namespace
}  // namespace smoke
