// Randomized property sweeps for the Appendix F operators: outputs match
// std::multiset reference semantics and lineage indexes are consistent,
// across seeds and capture modes.
#include <map>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "engine/set_ops.h"
#include "test_util.h"

namespace smoke {
namespace {

Table RandomIntTable(size_t n, int64_t domain, uint64_t seed) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  Table t(s);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> d(0, domain - 1);
  for (size_t i = 0; i < n; ++i) t.AppendRow({d(rng)});
  return t;
}

std::multiset<int64_t> Bag(const Table& t) {
  return {t.column(0).ints().begin(), t.column(0).ints().end()};
}
std::set<int64_t> Set(const Table& t) {
  return {t.column(0).ints().begin(), t.column(0).ints().end()};
}

class SetOpsRandomSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t>> {};

TEST_P(SetOpsRandomSweep, SetUnionSemanticsAndLineage) {
  auto [seed, domain] = GetParam();
  Table a = RandomIntTable(200, domain, seed);
  Table b = RandomIntTable(300, domain, seed + 1);
  for (CaptureMode m : {CaptureMode::kInject, CaptureMode::kDefer}) {
    auto res = SetUnionExec(a, "a", b, "b", {0}, CaptureOptions::Mode(m));
    std::set<int64_t> expect = Set(a);
    for (int64_t v : b.column(0).ints()) expect.insert(v);
    ASSERT_EQ(Set(res.output), expect);
    ASSERT_EQ(res.output.num_rows(), expect.size());
    // Lineage: every output's backward rids carry the output's value.
    const auto& keys = res.output.column(0).ints();
    for (size_t o = 0; o < keys.size(); ++o) {
      for (rid_t r : res.lineage.input(0).backward.index().list(o)) {
        ASSERT_EQ(a.column(0).ints()[r], keys[o]);
      }
      for (rid_t r : res.lineage.input(1).backward.index().list(o)) {
        ASSERT_EQ(b.column(0).ints()[r], keys[o]);
      }
    }
  }
}

TEST_P(SetOpsRandomSweep, SetIntersectionSemantics) {
  auto [seed, domain] = GetParam();
  Table a = RandomIntTable(200, domain, seed + 2);
  Table b = RandomIntTable(300, domain, seed + 3);
  std::set<int64_t> sa = Set(a), sb = Set(b), expect;
  for (int64_t v : sa) {
    if (sb.count(v)) expect.insert(v);
  }
  for (CaptureMode m : {CaptureMode::kInject, CaptureMode::kDefer}) {
    auto res = SetIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Mode(m));
    ASSERT_EQ(Set(res.output), expect);
    ASSERT_EQ(res.output.num_rows(), expect.size());
  }
}

TEST_P(SetOpsRandomSweep, BagIntersectionMultiplicities) {
  auto [seed, domain] = GetParam();
  Table a = RandomIntTable(100, domain, seed + 4);
  Table b = RandomIntTable(150, domain, seed + 5);
  std::map<int64_t, size_t> ca, cb;
  for (int64_t v : a.column(0).ints()) ++ca[v];
  for (int64_t v : b.column(0).ints()) ++cb[v];
  std::multiset<int64_t> expect;
  for (const auto& [v, n] : ca) {
    auto it = cb.find(v);
    if (it == cb.end()) continue;
    for (size_t i = 0; i < n * it->second; ++i) expect.insert(v);
  }
  for (CaptureMode m : {CaptureMode::kInject, CaptureMode::kDefer}) {
    auto res = BagIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Mode(m));
    ASSERT_EQ(Bag(res.output), expect) << CaptureModeName(m);
    // Forward/backward inverse property.
    ASSERT_TRUE(testing::AreInverse(res.lineage.input(0).backward,
                                    res.lineage.input(0).forward));
    ASSERT_TRUE(testing::AreInverse(res.lineage.input(1).backward,
                                    res.lineage.input(1).forward));
  }
}

TEST_P(SetOpsRandomSweep, SetDifferenceSemantics) {
  auto [seed, domain] = GetParam();
  Table a = RandomIntTable(200, domain, seed + 6);
  Table b = RandomIntTable(100, domain, seed + 7);
  std::set<int64_t> expect = Set(a);
  for (int64_t v : b.column(0).ints()) expect.erase(v);
  auto res = SetDifferenceExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  ASSERT_EQ(Set(res.output), expect);
  ASSERT_EQ(res.output.num_rows(), expect.size());
  // Every A row whose value survives appears in exactly one backward list.
  const auto& av = a.column(0).ints();
  std::vector<int> seen(a.num_rows(), 0);
  const auto& bw = res.lineage.input(0).backward.index();
  for (size_t o = 0; o < bw.size(); ++o) {
    for (rid_t r : bw.list(o)) ++seen[r];
  }
  for (rid_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(seen[r], expect.count(av[r]) ? 1 : 0);
  }
}

TEST_P(SetOpsRandomSweep, BagUnionRoundTrip) {
  auto [seed, domain] = GetParam();
  Table a = RandomIntTable(120, domain, seed + 8);
  Table b = RandomIntTable(80, domain, seed + 9);
  auto res = BagUnionExec(a, "a", b, "b", CaptureOptions::Inject());
  std::multiset<int64_t> expect = Bag(a);
  for (int64_t v : b.column(0).ints()) expect.insert(v);
  ASSERT_EQ(Bag(res.output), expect);
  ASSERT_TRUE(testing::AreInverse(res.lineage.input(0).backward,
                                  res.lineage.input(0).forward));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetOpsRandomSweep,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(int64_t{4}, int64_t{50},
                                         int64_t{1000})));

}  // namespace
}  // namespace smoke
