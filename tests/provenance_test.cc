#include "query/provenance.h"

#include <gtest/gtest.h>

#include "engine/spja.h"
#include "test_util.h"

namespace smoke {
namespace {

/// The paper's Appendix E example: SELECT COUNT(*), A.cname, B.pname FROM
/// A, B WHERE A.cid = B.cid GROUP BY A.cname, B.pname with
///   A = {(1, Bob), (2, Alice)}
///   B = {(1, 1, iPhone), (2, 1, iPhone), (3, 2, XBox)}   (oid, cid, pname)
class ProvenanceExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema sa;
    sa.AddField("cid", DataType::kInt64);
    sa.AddField("cname", DataType::kString);
    a_ = Table(sa);
    a_.AppendRow({int64_t{1}, std::string("Bob")});
    a_.AppendRow({int64_t{2}, std::string("Alice")});

    Schema sb;
    sb.AddField("oid", DataType::kInt64);
    sb.AddField("cid", DataType::kInt64);
    sb.AddField("pname", DataType::kString);
    b_ = Table(sb);
    b_.AppendRow({int64_t{1}, int64_t{1}, std::string("iPhone")});
    b_.AppendRow({int64_t{2}, int64_t{1}, std::string("iPhone")});
    b_.AppendRow({int64_t{3}, int64_t{2}, std::string("XBox")});

    // Plan: B is the fact (fk cid), A the pk dimension.
    q_.fact = &b_;
    q_.fact_name = "B";
    SPJADim dim;
    dim.table = &a_;
    dim.name = "A";
    dim.pk_col = 0;
    dim.fk = ColRef::Fact(1);
    q_.dims.push_back(dim);
    q_.group_by = {ColRef::Dim(0, 1), ColRef::Fact(2)};
    q_.aggs = {AggSpec::Count("cnt")};
  }

  Table a_, b_;
  SPJAQuery q_;
};

TEST_F(ProvenanceExampleTest, BackwardIndexKeepsDuplicates) {
  auto res = SPJAExec(q_, CaptureOptions::Inject());
  ASSERT_EQ(res.output.num_rows(), 2u);
  // o1 = (Bob, iPhone): backward to A contains a1 twice (paper's point).
  int bob = -1;
  for (size_t g = 0; g < 2; ++g) {
    if (std::get<std::string>(res.output.GetValue(g, 0)) == "Bob") {
      bob = static_cast<int>(g);
    }
  }
  ASSERT_GE(bob, 0);
  int a_idx = res.lineage.FindInput("A");
  ASSERT_GE(a_idx, 0);
  const auto& a_bw = res.lineage.input(static_cast<size_t>(a_idx)).backward.index();
  ASSERT_EQ(a_bw.list(static_cast<size_t>(bob)).size(), 2u);
  EXPECT_EQ(a_bw.list(static_cast<size_t>(bob))[0], 0u);
  EXPECT_EQ(a_bw.list(static_cast<size_t>(bob))[1], 0u);
}

TEST_F(ProvenanceExampleTest, WhyProvenance) {
  auto res = SPJAExec(q_, CaptureOptions::Inject());
  // Output 0 is (Bob, iPhone): why = {(b1, a1), (b2, a1)} (fact first).
  auto why = WhyProvenance(res.lineage, 0);
  ASSERT_EQ(why.size(), 2u);
  EXPECT_EQ(why[0].rids, (std::vector<rid_t>{0, 0}));
  EXPECT_EQ(why[1].rids, (std::vector<rid_t>{1, 0}));
  // Output 1 is (Alice, XBox): one witness.
  auto why2 = WhyProvenance(res.lineage, 1);
  ASSERT_EQ(why2.size(), 1u);
  EXPECT_EQ(why2[0].rids, (std::vector<rid_t>{2, 1}));
}

TEST_F(ProvenanceExampleTest, WhichProvenance) {
  auto res = SPJAExec(q_, CaptureOptions::Inject());
  auto which = WhichProvenance(res.lineage, 0);
  ASSERT_EQ(which.size(), 2u);
  EXPECT_EQ(which[0], (std::vector<rid_t>{0, 1}));  // B rids b1, b2
  EXPECT_EQ(which[1], (std::vector<rid_t>{0}));     // A rid a1 deduplicated
}

TEST_F(ProvenanceExampleTest, HowProvenance) {
  auto res = SPJAExec(q_, CaptureOptions::Inject());
  // Factored on the fact relation: B[0]*(A[0]) + B[1]*(A[0]) — i.e., the
  // paper's a1*(b1+b2) with roles swapped to our input order.
  std::string how = HowProvenance(res.lineage, 0);
  EXPECT_NE(how.find("B[0]"), std::string::npos);
  EXPECT_NE(how.find("B[1]"), std::string::npos);
  EXPECT_NE(how.find("A[0]"), std::string::npos);
  std::string how2 = HowProvenance(res.lineage, 1);
  EXPECT_EQ(how2, "B[2]*(A[1])");
}

TEST(ProvenanceSingleInputTest, GroupByWitnesses) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  Table t(s);
  t.AppendRow({int64_t{1}});
  t.AppendRow({int64_t{2}});
  t.AppendRow({int64_t{1}});
  SPJAQuery q;
  q.fact = &t;
  q.fact_name = "T";
  q.group_by = {ColRef::Fact(0)};
  q.aggs = {AggSpec::Count("cnt")};
  auto res = SPJAExec(q, CaptureOptions::Inject());
  auto why = WhyProvenance(res.lineage, 0);  // group k=1
  ASSERT_EQ(why.size(), 2u);
  EXPECT_EQ(why[0].rids, (std::vector<rid_t>{0}));
  EXPECT_EQ(why[1].rids, (std::vector<rid_t>{2}));
  EXPECT_EQ(HowProvenance(res.lineage, 0), "T[0] + T[2]");
}

}  // namespace
}  // namespace smoke
