// Shared helpers for the Smoke test suite.
#ifndef SMOKE_TESTS_TEST_UTIL_H_
#define SMOKE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lineage/query_lineage.h"
#include "lineage/rid_index.h"
#include "storage/table.h"

namespace smoke {
namespace testing {

/// Sorted copy of a rid container.
template <typename C>
std::vector<rid_t> Sorted(const C& c) {
  std::vector<rid_t> v(c.begin(), c.end());
  std::sort(v.begin(), v.end());
  return v;
}

inline std::vector<rid_t> SortedList(const RidIndex& idx, size_t i) {
  return Sorted(idx.list(i));
}

/// All (source, target) edges of a LineageIndex as a sorted pair list.
inline std::vector<std::pair<rid_t, rid_t>> Edges(const LineageIndex& idx) {
  std::vector<std::pair<rid_t, rid_t>> edges;
  std::vector<rid_t> tmp;
  for (rid_t s = 0; s < idx.size(); ++s) {
    tmp.clear();
    idx.TraceInto(s, &tmp);
    for (rid_t t : tmp) edges.emplace_back(s, t);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Checks that backward (out -> in) and forward (in -> out) indexes of a
/// table's lineage are mutual inverses (same edge set, flipped).
inline bool AreInverse(const LineageIndex& backward,
                       const LineageIndex& forward) {
  auto b = Edges(backward);
  auto f = Edges(forward);
  for (auto& e : f) std::swap(e.first, e.second);
  std::sort(f.begin(), f.end());
  // Forward edges may be deduplicated; compare as sets.
  std::set<std::pair<rid_t, rid_t>> bs(b.begin(), b.end());
  std::set<std::pair<rid_t, rid_t>> fs(f.begin(), f.end());
  return bs == fs;
}

/// Renders a table row as a comparable string.
inline std::string RowKey(const Table& t, rid_t r) {
  std::string s;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    s += ValueToString(t.GetValue(r, c));
    s += "|";
  }
  return s;
}

/// Multiset of rendered rows — order-insensitive table comparison.
inline std::multiset<std::string> RowSet(const Table& t) {
  std::multiset<std::string> rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    rows.insert(RowKey(t, static_cast<rid_t>(r)));
  }
  return rows;
}

/// Map from a table's grouped key prefix (first `key_cols` columns) to the
/// rendered rest of the row — for comparing group-by outputs that may
/// differ in row order.
inline std::map<std::string, std::string> GroupedRows(const Table& t,
                                                      size_t key_cols) {
  std::map<std::string, std::string> rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string k, v;
    for (size_t c = 0; c < key_cols; ++c) {
      k += ValueToString(t.GetValue(static_cast<rid_t>(r), c)) + "|";
    }
    for (size_t c = key_cols; c < t.num_columns(); ++c) {
      v += ValueToString(t.GetValue(static_cast<rid_t>(r), c)) + "|";
    }
    rows[k] = v;
  }
  return rows;
}

}  // namespace testing
}  // namespace smoke

#endif  // SMOKE_TESTS_TEST_UTIL_H_
