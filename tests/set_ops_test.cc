#include "engine/set_ops.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace smoke {
namespace {

using testing::Edges;
using testing::RowSet;

Table IntTable(std::vector<int64_t> vals) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  Table t(s);
  for (int64_t v : vals) t.AppendRow({v});
  return t;
}

TEST(SetUnionTest, DistinctValues) {
  Table a = IntTable({1, 2, 2, 3});
  Table b = IntTable({3, 4, 4});
  auto res = SetUnionExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  std::set<int64_t> got(res.output.column(0).ints().begin(),
                        res.output.column(0).ints().end());
  EXPECT_EQ(got, (std::set<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(res.output.num_rows(), 4u);
}

TEST(SetUnionTest, LineageCoversAllInputs) {
  Table a = IntTable({1, 2, 2, 3});
  Table b = IntTable({3, 4, 4});
  auto res = SetUnionExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  // Every a rid appears in exactly one output's backward list.
  const auto& a_bw = res.lineage.input(0).backward.index();
  std::vector<int> seen(a.num_rows(), 0);
  for (size_t o = 0; o < a_bw.size(); ++o) {
    for (rid_t r : a_bw.list(o)) ++seen[r];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_TRUE(testing::AreInverse(res.lineage.input(0).backward,
                                  res.lineage.input(0).forward));
  EXPECT_TRUE(testing::AreInverse(res.lineage.input(1).backward,
                                  res.lineage.input(1).forward));
}

TEST(SetUnionTest, DeferMatchesInject) {
  Table a = IntTable({5, 1, 5, 2, 9});
  Table b = IntTable({2, 2, 7, 9});
  auto inj = SetUnionExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  auto def = SetUnionExec(a, "a", b, "b", {0}, CaptureOptions::Defer());
  EXPECT_EQ(RowSet(inj.output), RowSet(def.output));
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(Edges(inj.lineage.input(t).backward),
              Edges(def.lineage.input(t).backward));
    EXPECT_EQ(Edges(inj.lineage.input(t).forward),
              Edges(def.lineage.input(t).forward));
  }
}

TEST(BagUnionTest, ConcatenatesWithOffsetLineage) {
  Table a = IntTable({1, 2});
  Table b = IntTable({3});
  auto res = BagUnionExec(a, "a", b, "b", CaptureOptions::Inject());
  ASSERT_EQ(res.output.num_rows(), 3u);
  EXPECT_EQ(res.output.column(0).ints(), (std::vector<int64_t>{1, 2, 3}));
  const auto& b_bw = res.lineage.input(1).backward.index();
  EXPECT_EQ(b_bw.list(2)[0], 0u);  // output 2 came from b rid 0
  EXPECT_EQ(res.lineage.input(0).forward.array()[1], 1u);
  EXPECT_EQ(res.lineage.input(1).forward.array()[0], 2u);
}

TEST(SetIntersectTest, Values) {
  Table a = IntTable({1, 2, 2, 3, 5});
  Table b = IntTable({2, 3, 3, 9});
  auto res = SetIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  std::set<int64_t> got(res.output.column(0).ints().begin(),
                        res.output.column(0).ints().end());
  EXPECT_EQ(got, (std::set<int64_t>{2, 3}));
}

TEST(SetIntersectTest, LineageBothSides) {
  Table a = IntTable({1, 2, 2, 3, 5});
  Table b = IntTable({2, 3, 3, 9});
  auto res = SetIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  const auto& keys = res.output.column(0).ints();
  const auto& a_vals = a.column(0).ints();
  const auto& b_vals = b.column(0).ints();
  const auto& a_bw = res.lineage.input(0).backward.index();
  const auto& b_bw = res.lineage.input(1).backward.index();
  for (size_t o = 0; o < keys.size(); ++o) {
    for (rid_t r : a_bw.list(o)) ASSERT_EQ(a_vals[r], keys[o]);
    for (rid_t r : b_bw.list(o)) ASSERT_EQ(b_vals[r], keys[o]);
    ASSERT_GT(a_bw.list(o).size(), 0u);
    ASSERT_GT(b_bw.list(o).size(), 0u);
  }
}

TEST(SetIntersectTest, DeferMatchesInject) {
  Table a = IntTable({1, 2, 2, 3, 5, 5, 5});
  Table b = IntTable({2, 3, 3, 9, 5});
  auto inj = SetIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  auto def = SetIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Defer());
  EXPECT_EQ(RowSet(inj.output), RowSet(def.output));
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(Edges(inj.lineage.input(t).backward),
              Edges(def.lineage.input(t).backward));
  }
}

TEST(BagIntersectTest, MultiplicitiesMultiply) {
  Table a = IntTable({2, 2, 3});
  Table b = IntTable({2, 2, 2, 3});
  auto res = BagIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  // value 2: 2*3 = 6 rows; value 3: 1*1 = 1 row.
  std::map<int64_t, int> counts;
  for (int64_t v : res.output.column(0).ints()) ++counts[v];
  EXPECT_EQ(counts[2], 6);
  EXPECT_EQ(counts[3], 1);
}

TEST(BagIntersectTest, BackwardIsOneToOne) {
  Table a = IntTable({2, 2, 3});
  Table b = IntTable({2, 2, 2, 3});
  auto res = BagIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  ASSERT_EQ(res.lineage.input(0).backward.kind(),
            LineageIndex::Kind::kArray);
  const auto& a_bw = res.lineage.input(0).backward.array();
  const auto& b_bw = res.lineage.input(1).backward.array();
  const auto& a_vals = a.column(0).ints();
  const auto& b_vals = b.column(0).ints();
  for (size_t o = 0; o < a_bw.size(); ++o) {
    ASSERT_EQ(a_vals[a_bw[o]], b_vals[b_bw[o]]);
  }
  // Witness pairs are unique: each (a dup, b dup) combination once.
  std::set<std::pair<rid_t, rid_t>> pairs;
  for (size_t o = 0; o < a_bw.size(); ++o) {
    ASSERT_TRUE(pairs.emplace(a_bw[o], b_bw[o]).second);
  }
}

TEST(BagIntersectTest, DeferMatchesInject) {
  Table a = IntTable({2, 2, 3, 7, 7});
  Table b = IntTable({2, 2, 2, 3, 7});
  auto inj = BagIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  auto def = BagIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Defer());
  EXPECT_EQ(RowSet(inj.output), RowSet(def.output));
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(Edges(inj.lineage.input(t).backward),
              Edges(def.lineage.input(t).backward));
    EXPECT_EQ(Edges(inj.lineage.input(t).forward),
              Edges(def.lineage.input(t).forward));
  }
}

TEST(SetDifferenceTest, Values) {
  Table a = IntTable({1, 2, 2, 3, 5});
  Table b = IntTable({2, 9});
  auto res = SetDifferenceExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  std::set<int64_t> got(res.output.column(0).ints().begin(),
                        res.output.column(0).ints().end());
  EXPECT_EQ(got, (std::set<int64_t>{1, 3, 5}));
}

TEST(SetDifferenceTest, LineageOnlyForOuterRelation) {
  Table a = IntTable({1, 2, 2, 3, 5});
  Table b = IntTable({2, 9});
  auto res = SetDifferenceExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  ASSERT_EQ(res.lineage.num_inputs(), 1u);  // B is not captured
  EXPECT_EQ(res.lineage.input(0).table_name, "a");
  const auto& bw = res.lineage.input(0).backward.index();
  const auto& keys = res.output.column(0).ints();
  const auto& a_vals = a.column(0).ints();
  for (size_t o = 0; o < keys.size(); ++o) {
    for (rid_t r : bw.list(o)) ASSERT_EQ(a_vals[r], keys[o]);
  }
}

TEST(SetOpsTest, StringColumns) {
  Schema s;
  s.AddField("name", DataType::kString);
  Table a(s), b(s);
  for (const char* v : {"x", "y", "x"}) a.AppendRow({std::string(v)});
  for (const char* v : {"y", "z"}) b.AppendRow({std::string(v)});
  auto uni = SetUnionExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  EXPECT_EQ(uni.output.num_rows(), 3u);
  auto inter = SetIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  EXPECT_EQ(inter.output.num_rows(), 1u);
  EXPECT_EQ(inter.output.column(0).strings()[0], "y");
  auto diff = SetDifferenceExec(a, "a", b, "b", {0}, CaptureOptions::Inject());
  EXPECT_EQ(diff.output.num_rows(), 1u);
  EXPECT_EQ(diff.output.column(0).strings()[0], "x");
}

TEST(SetOpsTest, EmptyInputs) {
  Table a = IntTable({});
  Table b = IntTable({1});
  EXPECT_EQ(SetUnionExec(a, "a", b, "b", {0}, CaptureOptions::Inject())
                .output.num_rows(),
            1u);
  EXPECT_EQ(SetIntersectExec(a, "a", b, "b", {0}, CaptureOptions::Inject())
                .output.num_rows(),
            0u);
  EXPECT_EQ(SetDifferenceExec(b, "b", a, "a", {0}, CaptureOptions::Inject())
                .output.num_rows(),
            1u);
}

}  // namespace
}  // namespace smoke
