#include "core/smoke_engine.h"

#include <gtest/gtest.h>

#include "workloads/tpch.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

class SmokeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.CreateTable("zipf", MakeZipfTable(5000, 10, 1.0)).ok());
    ASSERT_TRUE(engine_.GetTable("zipf", &zipf_).ok());
    query_.fact = zipf_;
    query_.fact_name = "zipf";
    query_.group_by = {ColRef::Fact(zipf_table::kZ)};
    query_.aggs = {AggSpec::Count("cnt"),
                   AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
  }

  SmokeEngine engine_;
  const Table* zipf_ = nullptr;
  SPJAQuery query_;
};

TEST_F(SmokeEngineTest, CreateTableRejectsDuplicates) {
  EXPECT_FALSE(engine_.CreateTable("zipf", MakeZipfTable(10, 2, 0.0)).ok());
}

TEST_F(SmokeEngineTest, ExecuteAndFetch) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());
  const Table* out = nullptr;
  ASSERT_TRUE(engine_.GetResult("v1", &out).ok());
  EXPECT_EQ(out->num_rows(), 10u);
  EXPECT_FALSE(engine_.ExecuteQuery("v1", query_).ok());  // duplicate name
  EXPECT_FALSE(engine_.GetResult("nope", &out).ok());
}

TEST_F(SmokeEngineTest, BackwardForwardRoundTrip) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());
  std::vector<rid_t> back;
  ASSERT_TRUE(engine_.Backward("v1", "zipf", {0}, &back).ok());
  EXPECT_GT(back.size(), 0u);
  // Every backward rid forward-traces to output 0.
  std::vector<rid_t> fwd;
  ASSERT_TRUE(engine_.Forward("v1", "zipf", {back[0]}, &fwd).ok());
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0], 0u);
}

TEST_F(SmokeEngineTest, BackwardRowsMaterializes) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());
  Table rows;
  ASSERT_TRUE(engine_.BackwardRows("v1", "zipf", {1}, &rows).ok());
  EXPECT_GT(rows.num_rows(), 0u);
  EXPECT_EQ(rows.num_columns(), zipf_->num_columns());
  // All rows carry the group's key.
  const Table* out = nullptr;
  ASSERT_TRUE(engine_.GetResult("v1", &out).ok());
  int64_t key = out->column(0).ints()[1];
  for (int64_t z : rows.column(1).ints()) EXPECT_EQ(z, key);
}

TEST_F(SmokeEngineTest, ErrorsOnOutOfRange) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());
  std::vector<rid_t> rids;
  EXPECT_FALSE(engine_.Backward("v1", "zipf", {99999}, &rids).ok());
  EXPECT_FALSE(engine_.Forward("v1", "zipf", {99999999}, &rids).ok());
  EXPECT_FALSE(engine_.Backward("v1", "unknown_rel", {0}, &rids).ok());
  EXPECT_FALSE(engine_.Backward("unknown_query", "zipf", {0}, &rids).ok());
}

TEST_F(SmokeEngineTest, WorkloadPruningIsEnforced) {
  Workload w;
  w.needs_forward = false;  // only backward queries declared
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_, CaptureMode::kInject, &w).ok());
  std::vector<rid_t> rids;
  EXPECT_TRUE(engine_.Backward("v1", "zipf", {0}, &rids).ok());
  EXPECT_FALSE(engine_.Forward("v1", "zipf", {0}, &rids).ok());
}

TEST_F(SmokeEngineTest, PhysicalModesRejected) {
  EXPECT_EQ(engine_.ExecuteQuery("v1", query_, CaptureMode::kPhysBdb).code(),
            Status::Code::kUnsupported);
}

TEST_F(SmokeEngineTest, ConsumingQueryAndChain) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());
  // Drill into group 0 by the id column (raw int key).
  ConsumingSpec spec;
  spec.group_by = {GroupExpr::Raw(zipf_table::kZ, "z")};
  spec.aggs = {AggSpec::Count("cnt")};
  TraceSource v1_src;
  ASSERT_TRUE(engine_.MakeTraceSource("v1", &v1_src).ok());
  TraceBuilder drill_query =
      TraceBuilder::Backward(std::move(v1_src), "zipf", {0});
  drill_query.Consuming(spec);
  ASSERT_TRUE(engine_.ExecuteTraceQuery("drill", drill_query).ok());
  const Table* drill = nullptr;
  ASSERT_TRUE(engine_.GetResult("drill", &drill).ok());
  ASSERT_EQ(drill->num_rows(), 1u);  // group 0 has a single z value
  // Chain one more level: the retained consuming result traces like any
  // other plan, so the chained drill is just another TraceBuilder query.
  ConsumingSpec spec2;
  spec2.group_by = {GroupExpr::Raw(zipf_table::kId, "id")};
  spec2.aggs = {AggSpec::Count("cnt")};
  TraceSource drill_src;
  ASSERT_TRUE(engine_.MakeTraceSource("drill", &drill_src).ok());
  TraceBuilder drill2_query =
      TraceBuilder::Backward(std::move(drill_src), "zipf", {0});
  drill2_query.Consuming(spec2);
  ASSERT_TRUE(engine_.ExecuteTraceQuery("drill2", drill2_query).ok());
  const Table* drill2 = nullptr;
  ASSERT_TRUE(engine_.GetResult("drill2", &drill2).ok());
  // One output row per input row of group 0 (id is unique).
  EXPECT_EQ(drill2->num_rows(),
            static_cast<size_t>(drill->column(1).ints()[0]));
}

TEST_F(SmokeEngineTest, DropResult) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());
  EXPECT_EQ(engine_.QueryNames().size(), 1u);
  ASSERT_TRUE(engine_.DropResult("v1").ok());
  EXPECT_TRUE(engine_.QueryNames().empty());
  EXPECT_FALSE(engine_.DropResult("v1").ok());
}

TEST_F(SmokeEngineTest, ReplaceAndDropTableRefusalsNameBorrower) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());

  Status st = engine_.ReplaceTable("zipf", MakeZipfTable(10, 2, 0.0));
  ASSERT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("'v1'"), std::string::npos) << st.message();

  st = engine_.DropTable("zipf");
  ASSERT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("'v1'"), std::string::npos) << st.message();

  // Dropping the named borrower unblocks both paths.
  ASSERT_TRUE(engine_.DropResult("v1").ok());
  EXPECT_TRUE(engine_.ReplaceTable("zipf", MakeZipfTable(10, 2, 0.0)).ok());
  EXPECT_TRUE(engine_.DropTable("zipf").ok());
}

TEST_F(SmokeEngineTest, DropResultRefusalNamesBorrowingTrace) {
  ASSERT_TRUE(engine_.ExecuteQuery("v1", query_).ok());
  TraceSource src;
  ASSERT_TRUE(engine_.MakeTraceSource("v1", &src).ok());
  ASSERT_TRUE(engine_
                  .ExecuteTraceQuery("fwd",
                                     TraceBuilder::Forward(src, "zipf", {0}))
                  .ok());

  Status st = engine_.DropResult("v1");
  ASSERT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("'fwd'"), std::string::npos) << st.message();

  ASSERT_TRUE(engine_.DropResult("fwd").ok());
  EXPECT_TRUE(engine_.DropResult("v1").ok());
}

TEST_F(SmokeEngineTest, TpchEndToEnd) {
  tpch::Database db = tpch::Generate(0.005);
  SmokeEngine eng;
  ASSERT_TRUE(eng.CreateTable("lineitem", std::move(db.lineitem)).ok());
  const Table* lineitem = nullptr;
  ASSERT_TRUE(eng.GetTable("lineitem", &lineitem).ok());
  tpch::Database view;  // only lineitem needed for Q1
  SPJAQuery q1;
  q1.fact = lineitem;
  q1.fact_name = "lineitem";
  q1.fact_filters = {Predicate::Int(tpch::kLShipdate, CmpOp::kLe, 19980902)};
  q1.group_by = {ColRef::Fact(tpch::kLReturnflag),
                 ColRef::Fact(tpch::kLLinestatus)};
  q1.aggs = {AggSpec::Count("count_order")};
  ASSERT_TRUE(eng.ExecuteQuery("q1", q1).ok());
  const Table* out = nullptr;
  ASSERT_TRUE(eng.GetResult("q1", &out).ok());
  EXPECT_EQ(out->num_rows(), 4u);
}

}  // namespace
}  // namespace smoke

namespace smoke {
namespace {

class LinkedBrushingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        engine_.CreateTable("x", MakeZipfTable(2000, 6, 1.0, 71)).ok());
    const Table* x = nullptr;
    ASSERT_TRUE(engine_.GetTable("x", &x).ok());
    // V1 groups by z; V2 groups by id % — approximate with z as well but
    // different aggregation so outputs differ in shape.
    SPJAQuery v1;
    v1.fact = x;
    v1.fact_name = "x";
    v1.group_by = {ColRef::Fact(zipf_table::kZ)};
    v1.aggs = {AggSpec::Count("n")};
    ASSERT_TRUE(engine_.ExecuteQuery("v1", v1).ok());
    SPJAQuery v2;
    v2.fact = x;
    v2.fact_name = "x";
    v2.group_by = {ColRef::Fact(zipf_table::kId)};  // one bar per row
    v2.aggs = {AggSpec::Count("n")};
    ASSERT_TRUE(engine_.ExecuteQuery("v2", v2).ok());
  }
  SmokeEngine engine_;
};

TEST_F(LinkedBrushingTest, TraceAcrossMatchesManualComposition) {
  std::vector<rid_t> linked;
  ASSERT_TRUE(engine_.TraceAcross("v1", {0, 1}, "x", "v2", &linked).ok());
  std::vector<rid_t> shared;
  ASSERT_TRUE(engine_.Backward("v1", "x", {0, 1}, &shared).ok());
  std::vector<rid_t> manual;
  ASSERT_TRUE(engine_.Forward("v2", "x", shared, &manual).ok());
  EXPECT_EQ(linked, manual);
  EXPECT_EQ(linked.size(), shared.size());  // v2 has one bar per input row
}

TEST_F(LinkedBrushingTest, UnknownQueryFails) {
  std::vector<rid_t> linked;
  EXPECT_FALSE(engine_.TraceAcross("v1", {0}, "x", "nope", &linked).ok());
  EXPECT_FALSE(engine_.TraceAcross("nope", {0}, "x", "v2", &linked).ok());
}

TEST_F(LinkedBrushingTest, BrushAllBarsCoversAllOfV2) {
  const Table* v1 = nullptr;
  ASSERT_TRUE(engine_.GetResult("v1", &v1).ok());
  std::vector<rid_t> all_bars;
  for (rid_t g = 0; g < v1->num_rows(); ++g) all_bars.push_back(g);
  std::vector<rid_t> linked;
  ASSERT_TRUE(engine_.TraceAcross("v1", all_bars, "x", "v2", &linked).ok());
  EXPECT_EQ(linked.size(), 2000u);
}

}  // namespace
}  // namespace smoke
