#include "engine/refresh.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

using testing::GroupedRows;

GroupBySpec Spec() {
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v"),
               AggSpec::Min(ScalarExpr::Col(zipf_table::kV), "min_v"),
               AggSpec::Avg(ScalarExpr::Col(zipf_table::kV), "avg_v")};
  return spec;
}

TEST(RefreshAppendTest, MatchesFullRecompute) {
  Table t = MakeZipfTable(1000, 8, 1.0, 31);
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());

  // Append 200 more rows (some in new groups).
  Table extra = MakeZipfTable(200, 12, 0.5, 32);
  rid_t first_new = static_cast<rid_t>(t.num_rows());
  for (rid_t r = 0; r < extra.num_rows(); ++r) t.AppendRowFrom(extra, r);

  auto affected = RefreshAppend(&res, t, first_new);
  EXPECT_GT(affected.size(), 0u);

  auto full = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  EXPECT_EQ(GroupedRows(res.output, 1), GroupedRows(full.output, 1));
  // Lineage extended identically (as sets of edges).
  EXPECT_EQ(testing::Edges(res.lineage.input(0).backward),
            testing::Edges(full.lineage.input(0).backward));
  EXPECT_EQ(testing::Edges(res.lineage.input(0).forward),
            testing::Edges(full.lineage.input(0).forward));
}

TEST(RefreshAppendTest, NewGroupsAppendedToOutput) {
  Schema s;
  s.AddField("id", DataType::kInt64);
  s.AddField("z", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  t.AppendRow({int64_t{0}, int64_t{1}, 10.0});
  auto res = GroupByExec(t, "t", Spec(), CaptureOptions::Inject());
  ASSERT_EQ(res.output.num_rows(), 1u);

  t.AppendRow({int64_t{1}, int64_t{2}, 20.0});  // brand-new group
  t.AppendRow({int64_t{2}, int64_t{1}, 5.0});   // existing group
  auto affected = RefreshAppend(&res, t, 1);
  EXPECT_EQ(affected.size(), 2u);
  ASSERT_EQ(res.output.num_rows(), 2u);
  auto rows = GroupedRows(res.output, 1);
  EXPECT_EQ(rows.at("1|"), "2|15.000000|5.000000|7.500000|");
  EXPECT_EQ(rows.at("2|"), "1|20.000000|20.000000|20.000000|");
}

TEST(RefreshAppendTest, NoNewRowsNoChange) {
  Table t = MakeZipfTable(100, 4, 1.0, 33);
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  auto before = GroupedRows(res.output, 1);
  auto affected = RefreshAppend(&res, t, static_cast<rid_t>(t.num_rows()));
  EXPECT_TRUE(affected.empty());
  EXPECT_EQ(GroupedRows(res.output, 1), before);
}

TEST(ForwardPropagateTest, RecomputesOnlyAffectedGroups) {
  Table t = MakeZipfTable(500, 6, 1.0, 34);
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  auto before = GroupedRows(res.output, 1);

  // Mutate the v column of a few rows in place (keys unchanged).
  std::vector<rid_t> updated = {3, 77, 240};
  for (rid_t r : updated) {
    t.mutable_column(zipf_table::kV).mutable_doubles()[r] += 1000.0;
  }
  auto affected = ForwardPropagate(&res, t, updated);
  EXPECT_GE(affected.size(), 1u);
  EXPECT_LE(affected.size(), 3u);

  auto full = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  EXPECT_EQ(GroupedRows(res.output, 1), GroupedRows(full.output, 1));
  EXPECT_NE(GroupedRows(res.output, 1), before);
}

TEST(ForwardPropagateTest, MinRecomputedCorrectlyOnDecrease) {
  // MIN cannot be delta-maintained; ForwardPropagate recomputes from the
  // backward index, so decreases are handled too.
  Schema s;
  s.AddField("id", DataType::kInt64);
  s.AddField("z", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  t.AppendRow({int64_t{0}, int64_t{1}, 10.0});
  t.AppendRow({int64_t{1}, int64_t{1}, 20.0});
  auto res = GroupByExec(t, "t", Spec(), CaptureOptions::Inject());
  t.mutable_column(2).mutable_doubles()[1] = 1.0;  // new minimum
  ForwardPropagate(&res, t, {1});
  auto rows = GroupedRows(res.output, 1);
  EXPECT_EQ(rows.at("1|"), "2|11.000000|1.000000|5.500000|");
}

TEST(ForwardPropagateTest, DuplicateUpdatesDeduplicated) {
  Table t = MakeZipfTable(100, 2, 0.0, 35);
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  auto affected = ForwardPropagate(&res, t, {5, 5, 5});
  EXPECT_EQ(affected.size(), 1u);
}

class RefreshPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefreshPropertySweep, InterleavedAppendsMatchRecompute) {
  Table t = MakeZipfTable(300, 5, 1.0, GetParam());
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  for (int round = 0; round < 4; ++round) {
    Table extra = MakeZipfTable(100, 5 + static_cast<uint64_t>(round) * 3,
                                0.7, GetParam() + static_cast<uint64_t>(round));
    rid_t first_new = static_cast<rid_t>(t.num_rows());
    for (rid_t r = 0; r < extra.num_rows(); ++r) t.AppendRowFrom(extra, r);
    RefreshAppend(&res, t, first_new);
    auto full = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
    ASSERT_EQ(GroupedRows(res.output, 1), GroupedRows(full.output, 1))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefreshPropertySweep,
                         ::testing::Values(51, 52, 53));

}  // namespace
}  // namespace smoke
