// The incremental capture & live refresh subsystem (src/refresh/): plan
// delta passes vs. full recompute, new-group vs. updated-group maintenance,
// dim-side append fallback with scoped rebuild, encoded-index append, the
// engine AppendRows refusal/maintenance contract, and serve-layer version
// reuse — plus the re-homed single-kernel RefreshAppend/ForwardPropagate.
#include "refresh/refresh.h"

#include <gtest/gtest.h>

#include "core/smoke_engine.h"
#include "serve/serve_core.h"
#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

using testing::Edges;
using testing::GroupedRows;
using testing::RowSet;

GroupBySpec Spec() {
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v"),
               AggSpec::Min(ScalarExpr::Col(zipf_table::kV), "min_v"),
               AggSpec::Avg(ScalarExpr::Col(zipf_table::kV), "avg_v")};
  return spec;
}

CaptureOptions RetainOpts(LineageCodec codec = LineageCodec::kRaw) {
  CaptureOptions opts = CaptureOptions::Inject();
  opts.retain_refresh_state = true;
  opts.lineage_codec = codec;
  return opts;
}

/// Expected state after all appends: the same plan executed from scratch
/// over the full table in a throwaway engine.
PlanResult Reference(const Table& full, LogicalPlan (*maker)(const Table*)) {
  PlanResult pr;
  SMOKE_CHECK(ExecutePlan(maker(&full), CaptureOptions::Inject(), &pr).ok());
  return pr;
}

LogicalPlan GroupPlan(const Table* t) {
  PlanBuilder b;
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(b.Scan(t, "zipf"), Spec()), &plan).ok());
  return plan;
}

LogicalPlan SelectProjectPlan(const Table* t) {
  PlanBuilder b;
  int sel = b.Select(b.Scan(t, "zipf"),
                     {Predicate::Double(zipf_table::kV, CmpOp::kLt, 60.0)});
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.Project(sel, {zipf_table::kZ, zipf_table::kV}),
                      &plan)
                  .ok());
  return plan;
}

void ExpectSameLineage(const PlanResult& got, const PlanResult& want) {
  ASSERT_EQ(got.lineage.num_inputs(), want.lineage.num_inputs());
  for (size_t i = 0; i < want.lineage.num_inputs(); ++i) {
    const TableLineage& g = got.lineage.input(i);
    const TableLineage& w = want.lineage.input(i);
    EXPECT_EQ(g.table_name, w.table_name);
    EXPECT_EQ(Edges(g.backward), Edges(w.backward)) << g.table_name;
    EXPECT_EQ(Edges(g.forward), Edges(w.forward)) << g.table_name;
  }
}

TEST(RefreshPlanTest, GroupByNewAndUpdatedGroups) {
  SmokeEngine engine;
  // Base data covers groups [1, 4]; the delta hits existing groups AND
  // introduces [5, 8] — both maintenance paths in one batch.
  Table full = MakeZipfTable(600, 4, 1.0, 11);
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(600, 4, 1.0, 11)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  ASSERT_TRUE(engine.ExecutePlan("by_z", GroupPlan(t), RetainOpts()).ok());

  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("by_z", &pr).ok());
  EXPECT_TRUE(pr->refreshable());
  const size_t old_groups = pr->output.num_rows();

  Table delta = MakeZipfTable(250, 8, 0.6, 12);
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    full.AppendRowFrom(delta, static_cast<rid_t>(r));
  }
  std::vector<RefreshStats> stats;
  ASSERT_TRUE(engine.AppendRows("zipf", delta, &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].incremental);
  EXPECT_EQ(stats[0].target, "by_z");
  EXPECT_EQ(stats[0].delta_rows, 250u);
  EXPECT_GT(stats[0].new_groups, 0u);
  EXPECT_GT(stats[0].groups_touched, stats[0].new_groups);
  EXPECT_EQ(stats[0].output_rows_appended, stats[0].new_groups);
  EXPECT_GT(stats[0].index_bytes_appended, 0u);

  PlanResult want = Reference(full, GroupPlan);
  EXPECT_EQ(pr->output.num_rows(), old_groups + stats[0].new_groups);
  EXPECT_EQ(GroupedRows(pr->output, 1), GroupedRows(want.output, 1));
  // Bit-identical, not just equal as sets of rows: new groups must land at
  // the same output rids a from-scratch run assigns.
  EXPECT_EQ(RowSet(pr->output), RowSet(want.output));
  for (size_t r = 0; r < want.output.num_rows(); ++r) {
    EXPECT_EQ(testing::RowKey(pr->output, static_cast<rid_t>(r)),
              testing::RowKey(want.output, static_cast<rid_t>(r)));
  }
  ExpectSameLineage(*pr, want);
}

TEST(RefreshPlanTest, SelectProjectChainAppendsInPlace) {
  SmokeEngine engine;
  Table full = MakeZipfTable(400, 6, 1.0, 21);
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(400, 6, 1.0, 21)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  ASSERT_TRUE(
      engine.ExecutePlan("hot", SelectProjectPlan(t), RetainOpts()).ok());

  // Two batches: the second verifies watermarks advance correctly.
  for (uint64_t round = 0; round < 2; ++round) {
    Table delta = MakeZipfTable(150, 6, 0.8, 22 + round);
    for (size_t r = 0; r < delta.num_rows(); ++r) {
      full.AppendRowFrom(delta, static_cast<rid_t>(r));
    }
    std::vector<RefreshStats> stats;
    ASSERT_TRUE(engine.AppendRows("zipf", delta, &stats).ok());
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_TRUE(stats[0].incremental);
    // The delta pass scans only appended ranges (the 150 base rows plus
    // each node's delta output), never the accumulated table.
    EXPECT_GE(stats[0].rows_scanned, 150u);
    EXPECT_LE(stats[0].rows_scanned, 300u);
  }

  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("hot", &pr).ok());
  PlanResult want = Reference(full, SelectProjectPlan);
  for (size_t r = 0; r < want.output.num_rows(); ++r) {
    ASSERT_EQ(testing::RowKey(pr->output, static_cast<rid_t>(r)),
              testing::RowKey(want.output, static_cast<rid_t>(r)));
  }
  ExpectSameLineage(*pr, want);
  // Row-level select keeps 1:1 lineage; sanity-check inversion too.
  const TableLineage& tl = pr->lineage.input(0);
  EXPECT_TRUE(testing::AreInverse(tl.backward, tl.forward));
}

struct JoinTables {
  Table fact;
  Table dim;
};

LogicalPlan JoinGroupPlan(const Table* fact, const Table* dim) {
  PlanBuilder b;
  JoinSpec js;
  js.left_key = 0;             // gids.id
  js.right_key = zipf_table::kZ;
  js.pk_build = true;
  int join = b.HashJoin(b.Scan(dim, "gids"), b.Scan(fact, "zipf"), js);
  GroupBySpec spec;
  spec.keys = {0};  // gids.id — group by the dim key
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(4), "sum_v")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(join, spec), &plan).ok());
  return plan;
}

TEST(RefreshPlanTest, ProbeSideDeltaRefreshesJoin) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(500, 8, 1.0, 31)).ok());
  ASSERT_TRUE(engine.CreateTable("gids", MakeGidsTable(8, 31)).ok());
  const Table* fact = nullptr;
  const Table* dim = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &fact).ok());
  ASSERT_TRUE(engine.GetTable("gids", &dim).ok());
  ASSERT_TRUE(engine
                  .ExecutePlan("per_gid", JoinGroupPlan(fact, dim),
                               RetainOpts())
                  .ok());
  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("per_gid", &pr).ok());
  EXPECT_TRUE(pr->refreshable());

  Table full_fact = *fact;
  Table delta = MakeZipfTable(200, 8, 0.5, 32);
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    full_fact.AppendRowFrom(delta, static_cast<rid_t>(r));
  }
  std::vector<RefreshStats> stats;
  ASSERT_TRUE(engine.AppendRows("zipf", delta, &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].incremental);

  Table full_dim = *dim;
  PlanResult want;
  ASSERT_TRUE(ExecutePlan(JoinGroupPlan(&full_fact, &full_dim),
                          CaptureOptions::Inject(), &want)
                  .ok());
  for (size_t r = 0; r < want.output.num_rows(); ++r) {
    ASSERT_EQ(testing::RowKey(pr->output, static_cast<rid_t>(r)),
              testing::RowKey(want.output, static_cast<rid_t>(r)));
  }
  ExpectSameLineage(*pr, want);
}

TEST(RefreshPlanTest, DimSideAppendFallsBackToScopedRebuild) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(300, 4, 1.0, 41)).ok());
  ASSERT_TRUE(engine.CreateTable("gids", MakeGidsTable(8, 41)).ok());
  const Table* fact = nullptr;
  const Table* dim = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &fact).ok());
  ASSERT_TRUE(engine.GetTable("gids", &dim).ok());
  ASSERT_TRUE(engine
                  .ExecutePlan("per_gid", JoinGroupPlan(fact, dim),
                               RetainOpts())
                  .ok());

  // Appending to the BUILD side cannot be folded through the cached probe
  // map: the refresh must fall back, say precisely why, and rebuild.
  Table extra(dim->schema());
  extra.AppendRow({int64_t{9}, 900.0});
  Table full_dim = *dim;
  full_dim.AppendRow({int64_t{9}, 900.0});
  std::vector<RefreshStats> stats;
  ASSERT_TRUE(engine.AppendRows("gids", extra, &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].incremental);
  EXPECT_NE(stats[0].fallback_reason.find("build side"), std::string::npos)
      << stats[0].fallback_reason;

  // The scoped rebuild still leaves the view exactly right, and the NEXT
  // probe-side delta is maintained incrementally again (re-analysis rebuilt
  // the watermarks and join cache).
  Table full_fact = *fact;
  Table delta = MakeZipfTable(100, 4, 0.5, 42);
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    full_fact.AppendRowFrom(delta, static_cast<rid_t>(r));
  }
  stats.clear();
  ASSERT_TRUE(engine.AppendRows("zipf", delta, &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].incremental);

  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("per_gid", &pr).ok());
  PlanResult want;
  ASSERT_TRUE(ExecutePlan(JoinGroupPlan(&full_fact, &full_dim),
                          CaptureOptions::Inject(), &want)
                  .ok());
  EXPECT_EQ(RowSet(pr->output), RowSet(want.output));
  ExpectSameLineage(*pr, want);
}

TEST(RefreshPlanTest, EncodedIndexesAppendThroughBuilders) {
  // Retained under the adaptive store codec: the composed indexes are
  // encoded at retention, and the delta pass appends THROUGH the encoded
  // forms (PostingsBuilder/overlay paths) — traces must stay bit-identical
  // to both a raw-codec twin and a from-scratch run.
  SmokeEngine engine;
  Table full = MakeZipfTable(500, 6, 1.0, 51);
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(500, 6, 1.0, 51)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  ASSERT_TRUE(engine
                  .ExecutePlan("by_z", GroupPlan(t),
                               RetainOpts(LineageCodec::kAdaptive))
                  .ok());
  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("by_z", &pr).ok());
  ASSERT_TRUE(pr->refreshable());
  // The retention encode actually produced store-encoded indexes.
  const LineageIndex& bw0 = pr->lineage.input(0).backward;
  EXPECT_TRUE(bw0.kind() == LineageIndex::Kind::kEncodedIndex ||
              bw0.kind() == LineageIndex::Kind::kEncodedArray);

  for (uint64_t round = 0; round < 3; ++round) {
    Table delta = MakeZipfTable(120, 6 + round, 0.7, 52 + round);
    for (size_t r = 0; r < delta.num_rows(); ++r) {
      full.AppendRowFrom(delta, static_cast<rid_t>(r));
    }
    std::vector<RefreshStats> stats;
    ASSERT_TRUE(engine.AppendRows("zipf", delta, &stats).ok());
    ASSERT_TRUE(stats[0].incremental) << stats[0].fallback_reason;
  }

  PlanResult want = Reference(full, GroupPlan);
  EXPECT_EQ(GroupedRows(pr->output, 1), GroupedRows(want.output, 1));
  ExpectSameLineage(*pr, want);

  // Engine-level traces answer over the refreshed encoded indexes.
  std::vector<rid_t> rids;
  ASSERT_TRUE(engine.Backward("by_z", "zipf", {0}, &rids).ok());
  std::vector<rid_t> want_rids;
  want.lineage.input(0).backward.TraceInto(0, &want_rids);
  std::sort(want_rids.begin(), want_rids.end());
  want_rids.erase(std::unique(want_rids.begin(), want_rids.end()),
                  want_rids.end());
  EXPECT_EQ(testing::Sorted(rids), want_rids);
}

TEST(RefreshPlanTest, AppendRefusedWhileUnmaintainableBorrowerLive) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(200, 4, 1.0, 61)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());

  // A retained plan WITHOUT refresh state blocks appends, by name.
  ASSERT_TRUE(engine.ExecutePlan("frozen", GroupPlan(t)).ok());
  Table delta = MakeZipfTable(10, 4, 1.0, 62);
  Status st = engine.AppendRows("zipf", delta);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
  EXPECT_NE(st.message().find("frozen"), std::string::npos) << st.message();
  ASSERT_TRUE(engine.DropResult("frozen").ok());

  // A retained SPJA query blocks appends too (no plan to re-execute).
  SPJAQuery q;
  q.fact = t;
  q.fact_name = "zipf";
  q.group_by = {ColRef::Fact(zipf_table::kZ)};
  q.aggs = {AggSpec::Count("cnt")};
  ASSERT_TRUE(engine.ExecuteQuery("spja_view", q).ok());
  st = engine.AppendRows("zipf", delta);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
  EXPECT_NE(st.message().find("spja_view"), std::string::npos);
  ASSERT_TRUE(engine.DropResult("spja_view").ok());

  // With only a refresh-retained view left, the same append succeeds
  // incrementally.
  ASSERT_TRUE(engine.ExecutePlan("live", GroupPlan(t), RetainOpts()).ok());
  std::vector<RefreshStats> stats;
  ASSERT_TRUE(engine.AppendRows("zipf", delta, &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].incremental);
}

TEST(RefreshPlanTest, NonRefreshableShapeRebuildsWithReason) {
  // A group-by below the root is outside the refreshability matrix: the
  // engine keeps the view correct via scoped rebuilds and reports why.
  SmokeEngine engine;
  Table full = MakeZipfTable(300, 5, 1.0, 71);
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(300, 5, 1.0, 71)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());

  PlanBuilder b;
  int gb = b.GroupBy(b.Scan(t, "zipf"), Spec());
  int root = b.Select(gb, {Predicate::Int(0, CmpOp::kGe, 1)});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());
  ASSERT_TRUE(engine.ExecutePlan("having", plan, RetainOpts()).ok());
  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("having", &pr).ok());
  EXPECT_FALSE(pr->refreshable());

  Table delta = MakeZipfTable(100, 7, 0.6, 72);
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    full.AppendRowFrom(delta, static_cast<rid_t>(r));
  }
  std::vector<RefreshStats> stats;
  ASSERT_TRUE(engine.AppendRows("zipf", delta, &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].incremental);
  EXPECT_NE(stats[0].fallback_reason.find("group-by below the plan root"),
            std::string::npos)
      << stats[0].fallback_reason;

  PlanResult want;
  {
    PlanBuilder rb;
    int rgb = rb.GroupBy(rb.Scan(&full, "zipf"), Spec());
    LogicalPlan rplan;
    ASSERT_TRUE(
        rb.Build(rb.Select(rgb, {Predicate::Int(0, CmpOp::kGe, 1)}), &rplan)
            .ok());
    ASSERT_TRUE(ExecutePlan(rplan, CaptureOptions::Inject(), &want).ok());
  }
  EXPECT_EQ(RowSet(pr->output), RowSet(want.output));
  ExpectSameLineage(*pr, want);
}

// ---- serving layer: incremental snapshot builds ----

LogicalPlan ServeByZ(const Table* t) {
  PlanBuilder b;
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(b.Scan(t, "zipf"), spec), &plan).ok());
  return plan;
}

LogicalPlan ServeHotZ(const Table* t) {
  PlanBuilder b;
  int sel = b.Select(b.Scan(t, "zipf"),
                     {Predicate::Double(zipf_table::kV, CmpOp::kLt, 50.0)});
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(sel, spec), &plan).ok());
  return plan;
}

ServeCore::ViewDef ServeDef(LogicalPlan (*maker)(const Table*)) {
  return [maker](const SmokeEngine& engine, LogicalPlan* plan) {
    const Table* t = nullptr;
    SMOKE_RETURN_NOT_OK(engine.GetTable("zipf", &t));
    *plan = maker(t);
    return Status::OK();
  };
}

TEST(ServeRefreshTest, IncrementalSnapshotsReuseRefreshedViews) {
  ServeCore core("zipf");
  Table full = MakeZipfTable(1000, 8, 1.0, 81);
  ASSERT_TRUE(core.CreateTable("zipf", MakeZipfTable(1000, 8, 1.0, 81)).ok());
  ASSERT_TRUE(core.DefineView("by_z", ServeDef(ServeByZ)).ok());
  ASSERT_TRUE(core.DefineView("hot_z", ServeDef(ServeHotZ)).ok());
  ASSERT_TRUE(core.Start().ok());
  EXPECT_EQ(core.CurrentVersion(), 1u);
  EXPECT_TRUE(core.LastRefreshStats().empty());

  // Hold version 1 pinned across the appends: published snapshots must be
  // independent copies, not aliases of the builder's mutating state.
  auto v1 = core.AcquireSnapshot();
  const Table* v1_out = nullptr;
  ASSERT_TRUE(v1.snapshot->engine.GetResult("by_z", &v1_out).ok());
  const auto v1_rows = RowSet(*v1_out);

  for (uint64_t round = 0; round < 3; ++round) {
    Table delta = MakeZipfTable(200, 8 + round, 0.7, 82 + round);
    for (size_t r = 0; r < delta.num_rows(); ++r) {
      full.AppendRowFrom(delta, static_cast<rid_t>(r));
    }
    ASSERT_TRUE(core.AppendRows("zipf", delta).ok());

    // Every view was maintained incrementally — version reuse, no
    // re-execution.
    auto stats = core.LastRefreshStats();
    ASSERT_EQ(stats.size(), 2u);
    for (const RefreshStats& s : stats) {
      EXPECT_TRUE(s.incremental) << s.target << ": " << s.fallback_reason;
      EXPECT_EQ(s.delta_rows, 200u);
    }
  }
  EXPECT_EQ(core.CurrentVersion(), 4u);

  // The published current snapshot answers exactly like a from-scratch run
  // over the accumulated table — output rows AND lineage.
  auto cur = core.AcquireSnapshot();
  for (auto maker : {ServeByZ, ServeHotZ}) {
    const char* name = maker == ServeByZ ? "by_z" : "hot_z";
    const PlanResult* pr = nullptr;
    ASSERT_TRUE(cur.snapshot->engine.GetPlanResult(name, &pr).ok());
    PlanResult want = Reference(full, maker);
    EXPECT_EQ(GroupedRows(pr->output, 1), GroupedRows(want.output, 1))
        << name;
    ExpectSameLineage(*pr, want);
  }
  // The pinned v1 never moved.
  EXPECT_EQ(RowSet(*v1_out), v1_rows);

  // ReplaceTable invalidates the builder; the next append falls back to a
  // full rebuild once, then the re-seeded builder resumes incrementally.
  Table replacement = MakeZipfTable(500, 8, 1.0, 91);
  full = replacement;
  ASSERT_TRUE(core.ReplaceTable("zipf", std::move(replacement)).ok());
  Table delta = MakeZipfTable(100, 8, 0.7, 92);
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    full.AppendRowFrom(delta, static_cast<rid_t>(r));
  }
  ASSERT_TRUE(core.AppendRows("zipf", delta).ok());
  auto stats = core.LastRefreshStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].incremental && stats[1].incremental)
      << stats[0].fallback_reason;
  auto after = core.AcquireSnapshot();
  const PlanResult* pr = nullptr;
  ASSERT_TRUE(after.snapshot->engine.GetPlanResult("by_z", &pr).ok());
  PlanResult want = Reference(full, ServeByZ);
  EXPECT_EQ(GroupedRows(pr->output, 1), GroupedRows(want.output, 1));
}

// ---- the re-homed single-kernel refresh API ----

TEST(RefreshAppendTest, MatchesFullRecompute) {
  Table t = MakeZipfTable(1000, 8, 1.0, 31);
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());

  Table extra = MakeZipfTable(200, 12, 0.5, 32);
  rid_t first_new = static_cast<rid_t>(t.num_rows());
  for (rid_t r = 0; r < extra.num_rows(); ++r) t.AppendRowFrom(extra, r);

  auto affected = RefreshAppend(&res, t, first_new);
  EXPECT_GT(affected.size(), 0u);

  auto full = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  EXPECT_EQ(GroupedRows(res.output, 1), GroupedRows(full.output, 1));
  EXPECT_EQ(Edges(res.lineage.input(0).backward),
            Edges(full.lineage.input(0).backward));
  EXPECT_EQ(Edges(res.lineage.input(0).forward),
            Edges(full.lineage.input(0).forward));
}

TEST(RefreshAppendTest, NoNewRowsNoChange) {
  Table t = MakeZipfTable(100, 4, 1.0, 33);
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  auto before = GroupedRows(res.output, 1);
  auto affected = RefreshAppend(&res, t, static_cast<rid_t>(t.num_rows()));
  EXPECT_TRUE(affected.empty());
  EXPECT_EQ(GroupedRows(res.output, 1), before);
}

TEST(ForwardPropagateTest, RecomputesOnlyAffectedGroups) {
  Table t = MakeZipfTable(500, 6, 1.0, 34);
  auto res = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  auto before = GroupedRows(res.output, 1);

  std::vector<rid_t> updated = {3, 77, 240};
  for (rid_t r : updated) {
    t.mutable_column(zipf_table::kV).mutable_doubles()[r] += 1000.0;
  }
  auto affected = ForwardPropagate(&res, t, updated);
  EXPECT_GE(affected.size(), 1u);
  EXPECT_LE(affected.size(), 3u);

  auto full = GroupByExec(t, "zipf", Spec(), CaptureOptions::Inject());
  EXPECT_EQ(GroupedRows(res.output, 1), GroupedRows(full.output, 1));
  EXPECT_NE(GroupedRows(res.output, 1), before);
}

TEST(ForwardPropagateTest, MinRecomputedCorrectlyOnDecrease) {
  Schema s;
  s.AddField("id", DataType::kInt64);
  s.AddField("z", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  t.AppendRow({int64_t{0}, int64_t{1}, 10.0});
  t.AppendRow({int64_t{1}, int64_t{1}, 20.0});
  auto res = GroupByExec(t, "t", Spec(), CaptureOptions::Inject());
  t.mutable_column(2).mutable_doubles()[1] = 1.0;  // new minimum
  ForwardPropagate(&res, t, {1});
  auto rows = GroupedRows(res.output, 1);
  EXPECT_EQ(rows.at("1|"), "2|11.000000|1.000000|5.500000|");
}

}  // namespace
}  // namespace smoke
