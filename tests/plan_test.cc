// Tests for the composable plan API: plan shapes the monolithic SPJA block
// cannot express (aggregate-over-aggregate rollups, joins of aggregated
// subplans, select-over-aggregate), executed under both kInject and kDefer,
// with composed end-to-end lineage checked against brute-force references.
#include "plan/plan.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "engine/spja.h"
#include "plan/executor.h"
#include "test_util.h"

namespace smoke {
namespace {

using testing::AreInverse;
using testing::Edges;
using testing::GroupedRows;
using testing::Sorted;

/// sales(region_id, amount): 12 rows over 4 regions.
Table MakeSales() {
  Schema s;
  s.AddField("region_id", DataType::kInt64);
  s.AddField("amount", DataType::kFloat64);
  Table t(s);
  const int64_t regions[] = {0, 1, 2, 0, 1, 2, 3, 0, 1, 0, 3, 2};
  for (size_t i = 0; i < 12; ++i) {
    t.AppendRow({regions[i], static_cast<double>(i + 1)});
  }
  return t;
}

/// returns(region_id, amount): 8 rows over 3 regions (region 3 absent).
Table MakeReturns() {
  Schema s;
  s.AddField("region_id", DataType::kInt64);
  s.AddField("amount", DataType::kFloat64);
  Table t(s);
  const int64_t regions[] = {0, 1, 2, 0, 1, 0, 2, 1};
  for (size_t i = 0; i < 8; ++i) {
    t.AppendRow({regions[i], static_cast<double>(10 * (i + 1))});
  }
  return t;
}

/// Brute-force backward lineage of the rollup: final output row (keyed by
/// per-region count) -> base sales rids whose region has that count.
std::map<int64_t, std::multiset<rid_t>> RollupReference(const Table& sales) {
  std::map<int64_t, std::vector<rid_t>> by_region;
  const auto& region = sales.column(0).ints();
  for (rid_t r = 0; r < sales.num_rows(); ++r) {
    by_region[region[r]].push_back(r);
  }
  std::map<int64_t, std::multiset<rid_t>> by_count;
  for (const auto& [reg, rids] : by_region) {
    (void)reg;
    auto& dst = by_count[static_cast<int64_t>(rids.size())];
    dst.insert(rids.begin(), rids.end());
  }
  return by_count;
}

LogicalPlan BuildRollup(const Table* sales) {
  PlanBuilder b;
  int scan = b.Scan(sales, "sales");
  GroupBySpec per_region;
  per_region.keys = {0};
  per_region.aggs = {AggSpec::Count("cnt"),
                     AggSpec::Sum(ScalarExpr::Col(1), "sum_amount")};
  int gb1 = b.GroupBy(scan, per_region);
  // Roll up the per-region aggregate by its count column (index 1 of the
  // intermediate schema [region_id, cnt, sum_amount]).
  GroupBySpec by_count;
  by_count.keys = {1};
  by_count.aggs = {AggSpec::Count("regions"),
                   AggSpec::Sum(ScalarExpr::Col(2), "total")};
  int gb2 = b.GroupBy(gb1, by_count);
  LogicalPlan plan;
  EXPECT_TRUE(b.Build(gb2, &plan).ok());
  return plan;
}

TEST(PlanRollupTest, AggregateOverAggregateMatchesBruteForce) {
  Table sales = MakeSales();
  LogicalPlan plan = BuildRollup(&sales);

  for (CaptureMode mode : {CaptureMode::kInject, CaptureMode::kDefer}) {
    PlanResult res;
    ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Mode(mode), &res).ok());

    auto ref = RollupReference(sales);
    ASSERT_EQ(res.output.num_rows(), ref.size());
    ASSERT_EQ(res.lineage.num_inputs(), 1u);
    EXPECT_EQ(res.lineage.input(0).table_name, "sales");
    EXPECT_EQ(res.lineage.output_cardinality(), res.output.num_rows());

    const auto& cnt_key = res.output.column(0).ints();
    const auto& totals = res.output.column("total").doubles();
    ASSERT_EQ(res.lineage.input(0).backward.kind(),
              LineageIndex::Kind::kIndex);
    const RidIndex& bw = res.lineage.input(0).backward.index();
    const auto& amounts = sales.column(1).doubles();
    for (rid_t o = 0; o < res.output.num_rows(); ++o) {
      ASSERT_TRUE(ref.count(cnt_key[o])) << cnt_key[o];
      std::multiset<rid_t> got(bw.list(o).begin(), bw.list(o).end());
      EXPECT_EQ(got, ref[cnt_key[o]]) << "count bucket " << cnt_key[o];
      double sum = 0;
      for (rid_t r : bw.list(o)) sum += amounts[r];
      EXPECT_NEAR(sum, totals[o], 1e-9);
    }
    EXPECT_TRUE(AreInverse(res.lineage.input(0).backward,
                           res.lineage.input(0).forward));
  }
}

TEST(PlanRollupTest, InjectAndDeferAgree) {
  Table sales = MakeSales();
  LogicalPlan plan = BuildRollup(&sales);
  PlanResult inj, def;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &inj).ok());
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Defer(), &def).ok());
  EXPECT_EQ(GroupedRows(inj.output, 1), GroupedRows(def.output, 1));
  EXPECT_EQ(Edges(inj.lineage.input(0).backward),
            Edges(def.lineage.input(0).backward));
  EXPECT_EQ(Edges(inj.lineage.input(0).forward),
            Edges(def.lineage.input(0).forward));
}

/// Join of two aggregated subplans: per-region sales joined with per-region
/// returns — a bushy shape with two group-by pipeline breakers feeding a
/// join, inexpressible as a single SPJA block.
LogicalPlan BuildJoinOfAggregates(const Table* sales, const Table* returns) {
  PlanBuilder b;
  GroupBySpec agg;
  agg.keys = {0};
  agg.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(1), "sum")};
  int left = b.GroupBy(b.Scan(sales, "sales"), agg);
  int right = b.GroupBy(b.Scan(returns, "returns"), agg);
  JoinSpec join;
  join.left_key = 0;
  join.right_key = 0;
  join.pk_build = true;  // group-by outputs are keyed by region: unique
  int root = b.HashJoin(left, right, join);
  LogicalPlan plan;
  EXPECT_TRUE(b.Build(root, &plan).ok());
  return plan;
}

TEST(PlanJoinOfAggregatesTest, LineageToBothBaseTables) {
  Table sales = MakeSales();
  Table returns = MakeReturns();
  LogicalPlan plan = BuildJoinOfAggregates(&sales, &returns);

  for (CaptureMode mode : {CaptureMode::kInject, CaptureMode::kDefer}) {
    PlanResult res;
    ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Mode(mode), &res).ok());
    ASSERT_EQ(res.lineage.num_inputs(), 2u);
    EXPECT_EQ(res.lineage.input(0).table_name, "sales");
    EXPECT_EQ(res.lineage.input(1).table_name, "returns");

    // Output: one row per region present in both tables (regions 0, 1, 2).
    ASSERT_EQ(res.output.num_rows(), 3u);
    const auto& out_region = res.output.column(0).ints();
    const auto& s_region = sales.column(0).ints();
    const auto& r_region = returns.column(0).ints();

    for (size_t side = 0; side < 2; ++side) {
      const Table& base = side == 0 ? sales : returns;
      const auto& base_region = side == 0 ? s_region : r_region;
      const LineageIndex& bw = res.lineage.input(side).backward;
      ASSERT_EQ(bw.kind(), LineageIndex::Kind::kIndex);
      for (rid_t o = 0; o < res.output.num_rows(); ++o) {
        // Brute force: all base rids of the output's region, exactly once.
        std::multiset<rid_t> want;
        for (rid_t r = 0; r < base.num_rows(); ++r) {
          if (base_region[r] == out_region[o]) want.insert(r);
        }
        std::multiset<rid_t> got(bw.index().list(o).begin(),
                                 bw.index().list(o).end());
        EXPECT_EQ(got, want) << "side " << side << " output " << o;
      }
      EXPECT_TRUE(AreInverse(bw, res.lineage.input(side).forward));
    }
  }
}

TEST(PlanSelectOverAggregateTest, HavingClauseLineage) {
  Table sales = MakeSales();
  PlanBuilder b;
  GroupBySpec agg;
  agg.keys = {0};
  agg.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(1), "sum")};
  int gb = b.GroupBy(b.Scan(&sales, "sales"), agg);
  // HAVING COUNT(*) >= 3 — a selection over aggregate output, which SPJA
  // blocks (filters before aggregation only) cannot express.
  int root = b.Select(gb, {Predicate::Int(1, CmpOp::kGe, 3)});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());

  PlanResult res;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &res).ok());

  // Brute force: regions with >= 3 sales rows.
  std::map<int64_t, std::multiset<rid_t>> ref;
  const auto& region = sales.column(0).ints();
  for (rid_t r = 0; r < sales.num_rows(); ++r) ref[region[r]].insert(r);
  for (auto it = ref.begin(); it != ref.end();) {
    it = it->second.size() >= 3 ? std::next(it) : ref.erase(it);
  }

  ASSERT_EQ(res.output.num_rows(), ref.size());
  const auto& out_region = res.output.column(0).ints();
  const RidIndex& bw = res.lineage.input(0).backward.index();
  for (rid_t o = 0; o < res.output.num_rows(); ++o) {
    std::multiset<rid_t> got(bw.list(o).begin(), bw.list(o).end());
    EXPECT_EQ(got, ref.at(out_region[o]));
  }
  EXPECT_TRUE(AreInverse(res.lineage.input(0).backward,
                         res.lineage.input(0).forward));

  // Forward through the HAVING filter: rows of a filtered-out region reach
  // no output.
  const LineageIndex& fw = res.lineage.input(0).forward;
  std::set<int64_t> surviving;
  for (rid_t o = 0; o < res.output.num_rows(); ++o) {
    surviving.insert(out_region[o]);
  }
  std::vector<rid_t> outs;
  for (rid_t r = 0; r < sales.num_rows(); ++r) {
    outs.clear();
    fw.TraceInto(r, &outs);
    EXPECT_EQ(outs.empty(), surviving.count(region[r]) == 0) << "rid " << r;
  }
}

TEST(PlanProjectTest, IdentityLineagePassesThrough) {
  Table sales = MakeSales();
  PlanBuilder b;
  GroupBySpec agg;
  agg.keys = {0};
  agg.aggs = {AggSpec::Count("cnt")};
  int gb = b.GroupBy(b.Scan(&sales, "sales"), agg);
  int root = b.Project(gb, std::vector<int>{1});  // keep only the count column
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());

  PlanResult res;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &res).ok());
  ASSERT_EQ(res.output.num_columns(), 1u);
  EXPECT_EQ(res.output.schema().field(0).name, "cnt");

  // Projection must not disturb the group-by lineage.
  PlanBuilder b2;
  int gb2 = b2.GroupBy(b2.Scan(&sales, "sales"), agg);
  LogicalPlan bare;
  ASSERT_TRUE(b2.Build(gb2, &bare).ok());
  PlanResult ref;
  ASSERT_TRUE(ExecutePlan(bare, CaptureOptions::Inject(), &ref).ok());
  EXPECT_EQ(Edges(res.lineage.input(0).backward),
            Edges(ref.lineage.input(0).backward));
  EXPECT_EQ(Edges(res.lineage.input(0).forward),
            Edges(ref.lineage.input(0).forward));
}

TEST(PlanSetOpTest, UnionOfFilteredScans) {
  Table sales = MakeSales();
  PlanBuilder b;
  int cheap = b.Select(b.Scan(&sales, "sales_a"),
                       {Predicate::Double(1, CmpOp::kLt, 4.0)});
  int dear = b.Select(b.Scan(&sales, "sales_b"),
                      {Predicate::Double(1, CmpOp::kGt, 10.0)});
  int root = b.SetOp(SetOpKind::kBagUnion, cheap, dear, std::vector<int>{});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());

  PlanResult res;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &res).ok());
  ASSERT_EQ(res.lineage.num_inputs(), 2u);
  const auto& amounts = sales.column(1).doubles();
  // Every output row traces to exactly one base row on exactly one side,
  // and that row satisfies the side's predicate.
  size_t traced = 0;
  for (size_t side = 0; side < 2; ++side) {
    const LineageIndex& bw = res.lineage.input(side).backward;
    std::vector<rid_t> rids;
    for (rid_t o = 0; o < res.output.num_rows(); ++o) {
      rids.clear();
      bw.TraceInto(o, &rids);
      ASSERT_LE(rids.size(), 1u);
      if (rids.empty()) continue;
      ++traced;
      if (side == 0) EXPECT_LT(amounts[rids[0]], 4.0);
      else EXPECT_GT(amounts[rids[0]], 10.0);
    }
  }
  EXPECT_EQ(traced, res.output.num_rows());
}

// ---------------------------------------------------------------------------
// SPJA equivalence: the canonical primitive-composed plan (select under a
// pk-fk join under a group-by) produces the same output and the same
// end-to-end lineage edge sets as the fused SPJA block.
// ---------------------------------------------------------------------------

struct StarSchema {
  Table fact;  // (fk, v)
  Table dim;   // (pk, attr)
};

StarSchema MakeStar() {
  StarSchema db;
  Schema fs;
  fs.AddField("fk", DataType::kInt64);
  fs.AddField("v", DataType::kFloat64);
  db.fact = Table(fs);
  const int64_t fks[] = {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 4, 4, 2, 0, 3, 1};
  for (size_t i = 0; i < 16; ++i) {
    db.fact.AppendRow({fks[i], static_cast<double>(i)});
  }
  Schema ds;
  ds.AddField("pk", DataType::kInt64);
  ds.AddField("attr", DataType::kInt64);
  db.dim = Table(ds);
  for (int64_t pk = 0; pk < 5; ++pk) {
    db.dim.AppendRow({pk, pk % 2});
  }
  return db;
}

TEST(PlanSpjaEquivalenceTest, PrimitivePlanMatchesFusedBlock) {
  StarSchema db = MakeStar();

  // Fused block: SELECT attr, COUNT(*), SUM(v) FROM fact JOIN dim
  // WHERE v >= 2 AND pk <= 3 GROUP BY attr.
  SPJAQuery q;
  q.fact = &db.fact;
  q.fact_name = "fact";
  q.fact_filters = {Predicate::Double(1, CmpOp::kGe, 2.0)};
  SPJADim dim;
  dim.table = &db.dim;
  dim.name = "dim";
  dim.pk_col = 0;
  dim.fk = ColRef::Fact(0);
  dim.filters = {Predicate::Int(0, CmpOp::kLe, 3)};
  q.dims = {dim};
  q.group_by = {ColRef::Dim(0, 1)};
  q.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(1), "sum_v")};
  SPJAResult fused = SPJAExec(q, CaptureOptions::Inject());

  // Primitive composition of the same query. Join output schema is
  // [pk, attr, fk, v]; group by attr (col 1), aggregate v (col 3).
  PlanBuilder b;
  int dim_sel = b.Select(b.Scan(&db.dim, "dim"),
                         {Predicate::Int(0, CmpOp::kLe, 3)});
  int fact_sel = b.Select(b.Scan(&db.fact, "fact"),
                          {Predicate::Double(1, CmpOp::kGe, 2.0)});
  JoinSpec join;
  join.left_key = 0;   // dim pk (build side)
  join.right_key = 0;  // fact fk (probe side)
  join.pk_build = true;
  int joined = b.HashJoin(dim_sel, fact_sel, join);
  GroupBySpec agg;
  agg.keys = {1};
  agg.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(3), "sum_v")};
  int root = b.GroupBy(joined, agg);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());

  for (CaptureMode mode : {CaptureMode::kInject, CaptureMode::kDefer}) {
    PlanResult composed;
    ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Mode(mode), &composed).ok());

    EXPECT_EQ(GroupedRows(composed.output, 1), GroupedRows(fused.output, 1));

    // Outputs may be emitted in different group orders; align by key value.
    std::map<int64_t, rid_t> fused_by_key, composed_by_key;
    for (rid_t g = 0; g < fused.output.num_rows(); ++g) {
      fused_by_key[fused.output.column(0).ints()[g]] = g;
    }
    for (rid_t g = 0; g < composed.output.num_rows(); ++g) {
      composed_by_key[composed.output.column(0).ints()[g]] = g;
    }
    ASSERT_EQ(fused_by_key.size(), composed_by_key.size());

    // input 0 of the composed plan is "dim" (scan creation order); the
    // fused block lists fact first.
    ASSERT_EQ(composed.lineage.input(0).table_name, "dim");
    ASSERT_EQ(composed.lineage.input(1).table_name, "fact");
    for (const auto& [key, fg] : fused_by_key) {
      rid_t cg = composed_by_key.at(key);
      for (size_t t = 0; t < 2; ++t) {
        const LineageIndex& fbw = fused.lineage.input(t).backward;
        const LineageIndex& cbw =
            composed.lineage.input(t == 0 ? 1 : 0).backward;
        std::vector<rid_t> fr, cr;
        fbw.TraceInto(fg, &fr);
        cbw.TraceInto(cg, &cr);
        EXPECT_EQ(Sorted(fr), Sorted(cr)) << "table " << t << " key " << key;
      }
    }
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_TRUE(AreInverse(composed.lineage.input(i).backward,
                             composed.lineage.input(i).forward));
    }
  }
}

TEST(PlanValidationTest, RejectsMalformedPlans) {
  Table sales = MakeSales();
  {
    PlanBuilder b;
    LogicalPlan plan;
    EXPECT_FALSE(b.Build(0, &plan).ok());  // no nodes
  }
  {
    PlanBuilder b;
    int scan = b.Scan(&sales, "sales");
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(scan, &plan).ok());
    PlanResult res;
    EXPECT_FALSE(ExecutePlan(plan, CaptureOptions::Inject(), &res).ok());
  }
  {
    PlanBuilder b;
    int scan = b.Scan(nullptr, "ghost");
    int root = b.Select(scan, {});
    LogicalPlan plan;
    EXPECT_FALSE(b.Build(root, &plan).ok());
  }
  {
    // Empty projections are rejected at Build.
    PlanBuilder b;
    int root = b.Project(b.Scan(&sales, "sales"), std::vector<int>{});
    LogicalPlan plan;
    EXPECT_FALSE(b.Build(root, &plan).ok());
  }
  {
    // Out-of-range join keys surface as a Status, not UB.
    PlanBuilder b;
    JoinSpec join;  // left_key/right_key left at -1
    int root =
        b.HashJoin(b.Scan(&sales, "a"), b.Scan(&sales, "b"), join);
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(root, &plan).ok());
    PlanResult res;
    EXPECT_FALSE(ExecutePlan(plan, CaptureOptions::Inject(), &res).ok());
  }
  {
    // Logic modes are single-block only.
    Table sales2 = MakeSales();
    PlanBuilder b;
    GroupBySpec agg;
    agg.keys = {0};
    agg.aggs = {AggSpec::Count("cnt")};
    int gb = b.GroupBy(b.Scan(&sales2, "sales"), agg);
    int root = b.Select(gb, {Predicate::Int(1, CmpOp::kGe, 1)});
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(root, &plan).ok());
    PlanResult res;
    EXPECT_FALSE(
        ExecutePlan(plan, CaptureOptions::Mode(CaptureMode::kLogicRid), &res)
            .ok());
  }
}

TEST(PlanPruningTest, RelationAndDirectionPruning) {
  Table sales = MakeSales();
  Table returns = MakeReturns();
  LogicalPlan plan = BuildJoinOfAggregates(&sales, &returns);

  CaptureOptions opts = CaptureOptions::Inject();
  opts.only_relations = {"sales"};
  PlanResult res;
  ASSERT_TRUE(ExecutePlan(plan, opts, &res).ok());
  ASSERT_EQ(res.lineage.num_inputs(), 2u);
  EXPECT_FALSE(res.lineage.input(0).backward.empty());
  EXPECT_TRUE(res.lineage.input(1).backward.empty());
  EXPECT_TRUE(res.lineage.input(1).forward.empty());

  CaptureOptions bw_only = CaptureOptions::Inject();
  bw_only.capture_forward = false;
  PlanResult res2;
  ASSERT_TRUE(ExecutePlan(plan, bw_only, &res2).ok());
  EXPECT_FALSE(res2.lineage.input(0).backward.empty());
  EXPECT_TRUE(res2.lineage.input(0).forward.empty());
}

TEST(PlanDagTest, SharedSubplanMergesLineage) {
  Table sales = MakeSales();
  PlanBuilder b;
  int scan = b.Scan(&sales, "sales");
  // Both set-op sides filter the SAME scan node: the DAG reaches the scan
  // through two paths, whose lineage must merge.
  int low = b.Select(scan, {Predicate::Double(1, CmpOp::kLt, 3.0)});
  int high = b.Select(scan, {Predicate::Double(1, CmpOp::kGt, 11.0)});
  int root = b.SetOp(SetOpKind::kBagUnion, low, high, std::vector<int>{});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());

  PlanResult res;
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &res).ok());
  ASSERT_EQ(res.lineage.num_inputs(), 1u);
  const auto& amounts = sales.column(1).doubles();
  // Each output row traces to exactly one base row, across both paths.
  std::vector<rid_t> rids;
  size_t matched = 0;
  for (rid_t o = 0; o < res.output.num_rows(); ++o) {
    rids.clear();
    res.lineage.input(0).backward.TraceInto(o, &rids);
    ASSERT_EQ(rids.size(), 1u) << "output " << o;
    EXPECT_TRUE(amounts[rids[0]] < 3.0 || amounts[rids[0]] > 11.0);
    ++matched;
  }
  EXPECT_EQ(matched, res.output.num_rows());
  EXPECT_TRUE(AreInverse(res.lineage.input(0).backward,
                         res.lineage.input(0).forward));
}

}  // namespace
}  // namespace smoke
