// Property sweep for the live-refresh subsystem: random plan chains ×
// randomized append-batch schedules × thread counts × store codecs. After
// every batch, the incrementally maintained view must be bit-identical —
// output rows in rid order AND all lineage directions per relation — to
// dropping the view and re-executing the plan over the accumulated table.
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/smoke_engine.h"
#include "refresh/refresh.h"
#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

using testing::Edges;

struct SweepParam {
  uint64_t seed;
  int threads;
  LineageCodec codec;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_t" +
         std::to_string(info.param.threads) +
         (info.param.codec == LineageCodec::kRaw ? "_raw" : "_adaptive");
}

/// One randomly drawn chain shape. The generator owns the shape choice and
/// every knob in it (predicate threshold, join multiplicity, aggregate mix)
/// so each seed exercises a different plan.
struct ChainShape {
  bool join = false;        // dim ⋈ fact probe chain
  bool pk_dim = true;       // unique vs duplicated dim keys
  bool select = false;      // predicate on v below everything
  bool derive = false;      // Scale100(v) derived key column
  bool group_root = false;  // group-by at the root (else select/project root)
  double sel_threshold = 50.0;
};

ChainShape DrawShape(std::mt19937_64* rng) {
  ChainShape s;
  s.join = (*rng)() % 3 == 0;
  s.pk_dim = (*rng)() % 2 == 0;
  s.select = (*rng)() % 2 == 0;
  s.derive = !s.join && (*rng)() % 3 == 0;
  s.group_root = s.join || (*rng)() % 4 != 0;
  s.sel_threshold = 20.0 + static_cast<double>((*rng)() % 60);
  return s;
}

/// Dim table with each gid duplicated `dup` times (dup=1 → pk side).
Table MakeDimTable(uint64_t groups, int dup, uint64_t seed) {
  Table base = MakeGidsTable(groups, seed);
  if (dup <= 1) return base;
  Table t(base.schema());
  for (int d = 0; d < dup; ++d) {
    for (size_t r = 0; r < base.num_rows(); ++r) {
      t.AppendRowFrom(base, static_cast<rid_t>(r));
    }
  }
  return t;
}

LogicalPlan BuildChain(const ChainShape& s, const Table* fact,
                       const Table* dim) {
  PlanBuilder b;
  int cur = b.Scan(fact, "fact");
  if (s.select) {
    cur = b.Select(cur, {Predicate::Double(zipf_table::kV, CmpOp::kLt,
                                           s.sel_threshold)});
  }
  int key_col = zipf_table::kZ;
  int val_col = zipf_table::kV;
  if (s.derive) {
    cur = b.Derive(cur, {GroupExpr::Scale100(zipf_table::kV, "v100")});
    key_col = 3;  // id, z, v, v100
  }
  if (s.join) {
    JoinSpec js;
    js.left_key = 0;  // dim.id
    js.right_key = zipf_table::kZ;
    js.pk_build = s.pk_dim;
    cur = b.HashJoin(b.Scan(dim, "dim"), b.Scan(fact, "fact"), js);
    // dim(id, payload) ++ fact(id, z, v)
    key_col = 0;
    val_col = 4;
  }
  LogicalPlan plan;
  if (s.group_root) {
    GroupBySpec spec;
    spec.keys = {key_col};
    spec.aggs = {AggSpec::Count("cnt"),
                 AggSpec::Sum(ScalarExpr::Col(val_col), "sum_v"),
                 AggSpec::Min(ScalarExpr::Col(val_col), "min_v")};
    cur = b.GroupBy(cur, spec);
    SMOKE_CHECK(b.Build(cur, &plan).ok());
    return plan;
  }
  if (!s.select) {
    // Guarantee a non-scan root for the non-grouped case.
    cur = b.Select(cur, {Predicate::Double(zipf_table::kV, CmpOp::kGe, 0.0)});
  }
  cur = b.Project(cur, {zipf_table::kZ, zipf_table::kV});
  SMOKE_CHECK(b.Build(cur, &plan).ok());
  return plan;
}

/// Joins rebuild their plan against the *mirror* tables for the reference
/// run; the shape decides which tables the plan borrows.
void ExpectMatchesReference(const ChainShape& shape, const PlanResult& got,
                            const Table& fact, const Table& dim,
                            const std::string& label) {
  PlanResult want;
  ASSERT_TRUE(
      ExecutePlan(BuildChain(shape, &fact, &dim), CaptureOptions::Inject(),
                  &want)
          .ok())
      << label;
  ASSERT_EQ(got.output.num_rows(), want.output.num_rows()) << label;
  for (size_t r = 0; r < want.output.num_rows(); ++r) {
    ASSERT_EQ(testing::RowKey(got.output, static_cast<rid_t>(r)),
              testing::RowKey(want.output, static_cast<rid_t>(r)))
        << label << " row " << r;
  }
  ASSERT_EQ(got.lineage.num_inputs(), want.lineage.num_inputs()) << label;
  for (size_t i = 0; i < want.lineage.num_inputs(); ++i) {
    const TableLineage& g = got.lineage.input(i);
    const TableLineage& w = want.lineage.input(i);
    ASSERT_EQ(g.table_name, w.table_name) << label;
    ASSERT_EQ(Edges(g.backward), Edges(w.backward))
        << label << " backward " << g.table_name;
    ASSERT_EQ(Edges(g.forward), Edges(w.forward))
        << label << " forward " << g.table_name;
    ASSERT_TRUE(testing::AreInverse(g.backward, g.forward))
        << label << " " << g.table_name;
  }
}

class RefreshPropertySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RefreshPropertySweep, RefreshedViewsMatchFullReexecution) {
  const SweepParam p = GetParam();
  std::mt19937_64 rng(p.seed * 7919 + 17);

  for (int trial = 0; trial < 4; ++trial) {
    const ChainShape shape = DrawShape(&rng);
    const uint64_t groups = 4 + rng() % 8;
    const size_t base_rows = 200 + rng() % 400;
    const std::string label = "seed=" + std::to_string(p.seed) + " trial=" +
                              std::to_string(trial);

    SmokeEngine engine;
    Table fact = MakeZipfTable(base_rows, groups, 1.0, p.seed + trial);
    Table dim = MakeDimTable(groups, shape.pk_dim ? 1 : 3,
                             p.seed + trial + 100);
    ASSERT_TRUE(
        engine.CreateTable("fact", MakeZipfTable(base_rows, groups, 1.0,
                                                 p.seed + trial))
            .ok());
    ASSERT_TRUE(engine
                    .CreateTable("dim",
                                 MakeDimTable(groups, shape.pk_dim ? 1 : 3,
                                              p.seed + trial + 100))
                    .ok());
    const Table* efact = nullptr;
    const Table* edim = nullptr;
    ASSERT_TRUE(engine.GetTable("fact", &efact).ok());
    ASSERT_TRUE(engine.GetTable("dim", &edim).ok());

    CaptureOptions opts = CaptureOptions::Inject();
    opts.retain_refresh_state = true;
    opts.lineage_codec = p.codec;
    opts.num_threads = p.threads;
    ASSERT_TRUE(engine
                    .ExecutePlan("view", BuildChain(shape, efact, edim),
                                 opts)
                    .ok())
        << label;
    const PlanResult* pr = nullptr;
    ASSERT_TRUE(engine.GetPlanResult("view", &pr).ok());
    ASSERT_TRUE(pr->refreshable()) << label;

    // Randomized schedule: 3 append batches of varying size (possibly
    // empty); join shapes sneak in one dim-side append mid-schedule to
    // force the scoped-rebuild path before resuming incrementally.
    for (int round = 0; round < 3; ++round) {
      const size_t batch = rng() % 3 == 0 ? 0 : 50 + rng() % 200;
      Table delta = MakeZipfTable(batch, groups + rng() % 4, 0.7,
                                  p.seed * 31 + trial * 7 +
                                      static_cast<uint64_t>(round));
      for (size_t r = 0; r < delta.num_rows(); ++r) {
        fact.AppendRowFrom(delta, static_cast<rid_t>(r));
      }
      std::vector<RefreshStats> stats;
      ASSERT_TRUE(engine.AppendRows("fact", delta, &stats).ok()) << label;
      ASSERT_EQ(stats.size(), 1u);
      EXPECT_TRUE(stats[0].incremental) << label << ": "
                                        << stats[0].fallback_reason;

      if (shape.join && round == 1) {
        Table extra(dim.schema());
        const int64_t new_key = static_cast<int64_t>(groups + 50);
        extra.AppendRow({new_key, 0.5});
        dim.AppendRowFrom(extra, 0);
        stats.clear();
        ASSERT_TRUE(engine.AppendRows("dim", extra, &stats).ok()) << label;
        ASSERT_EQ(stats.size(), 1u);
        EXPECT_FALSE(stats[0].incremental) << label;
      }

      ExpectMatchesReference(shape, *pr, fact, dim,
                             label + " round=" + std::to_string(round));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RefreshPropertySweep,
    ::testing::Values(SweepParam{1, 1, LineageCodec::kRaw},
                      SweepParam{2, 1, LineageCodec::kAdaptive},
                      SweepParam{3, 7, LineageCodec::kRaw},
                      SweepParam{4, 7, LineageCodec::kAdaptive},
                      SweepParam{5, 1, LineageCodec::kRaw},
                      SweepParam{6, 7, LineageCodec::kAdaptive}),
    ParamName);

}  // namespace
}  // namespace smoke
