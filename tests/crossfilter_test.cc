#include "apps/crossfilter.h"

#include <gtest/gtest.h>

#include "workloads/ontime.h"

namespace smoke {
namespace {

class CrossfilterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Table(ontime::Generate(20000, 5));
  }
  static void TearDownTestSuite() { delete data_; }
  static Table* data_;
  static std::vector<int> Dims() {
    return {ontime::kLatLonBin, ontime::kDateBin, ontime::kDelayBin,
            ontime::kCarrier};
  }
};
Table* CrossfilterTest::data_ = nullptr;

TEST_F(CrossfilterTest, InitialCountsSumToRows) {
  Crossfilter cf(*data_, Dims());
  cf.Initialize(Crossfilter::Strategy::kLazy);
  for (size_t v = 0; v < cf.num_views(); ++v) {
    int64_t total = 0;
    for (size_t b = 0; b < cf.NumBars(v); ++b) total += cf.BarCount(v, b);
    EXPECT_EQ(total, static_cast<int64_t>(data_->num_rows()));
  }
}

TEST_F(CrossfilterTest, ViewCardinalitiesMatchGenerator) {
  Crossfilter cf(*data_, Dims());
  cf.Initialize(Crossfilter::Strategy::kLazy);
  EXPECT_LE(cf.NumBars(0), static_cast<size_t>(ontime::kNumAirports));
  EXPECT_LE(cf.NumBars(1), static_cast<size_t>(ontime::kNumDateBins));
  EXPECT_LE(cf.NumBars(2), static_cast<size_t>(ontime::kNumDelayBins));
  EXPECT_LE(cf.NumBars(3), static_cast<size_t>(ontime::kNumCarriers));
  EXPECT_GT(cf.NumBars(0), 100u);  // most airports appear
}

TEST_F(CrossfilterTest, AllStrategiesAgree) {
  Crossfilter lazy(*data_, Dims());
  lazy.Initialize(Crossfilter::Strategy::kLazy);
  Crossfilter bt(*data_, Dims());
  bt.Initialize(Crossfilter::Strategy::kBT);
  Crossfilter btft(*data_, Dims());
  btft.Initialize(Crossfilter::Strategy::kBTFT);
  Crossfilter cube(*data_, Dims());
  cube.Initialize(Crossfilter::Strategy::kCube);

  // Brush a sample of bars in every view; all four strategies must agree.
  for (size_t v = 0; v < lazy.num_views(); ++v) {
    const size_t step = std::max<size_t>(1, lazy.NumBars(v) / 7);
    for (size_t bar = 0; bar < lazy.NumBars(v); bar += step) {
      auto r_lazy = lazy.Brush(v, bar);
      auto r_bt = bt.Brush(v, bar);
      auto r_btft = btft.Brush(v, bar);
      auto r_cube = cube.Brush(v, bar);
      for (size_t w = 0; w < lazy.num_views(); ++w) {
        ASSERT_EQ(r_lazy[w], r_bt[w]) << "view " << v << " bar " << bar;
        ASSERT_EQ(r_lazy[w], r_btft[w]) << "view " << v << " bar " << bar;
        ASSERT_EQ(r_lazy[w], r_cube[w]) << "view " << v << " bar " << bar;
      }
    }
  }
}

TEST_F(CrossfilterTest, BrushedViewKeepsInitialCounts) {
  Crossfilter cf(*data_, Dims());
  cf.Initialize(Crossfilter::Strategy::kBTFT);
  auto r = cf.Brush(2, 0);
  for (size_t b = 0; b < cf.NumBars(2); ++b) {
    EXPECT_EQ(r[2][b], cf.BarCount(2, b));
  }
}

TEST_F(CrossfilterTest, BrushCountsSumToBarCount) {
  Crossfilter cf(*data_, Dims());
  cf.Initialize(Crossfilter::Strategy::kBTFT);
  for (size_t bar = 0; bar < cf.NumBars(3); ++bar) {
    auto r = cf.Brush(3, bar);
    const int64_t expect = cf.BarCount(3, bar);
    for (size_t w = 0; w < cf.num_views(); ++w) {
      if (w == 3) continue;
      int64_t total = 0;
      for (int64_t c : r[w]) total += c;
      ASSERT_EQ(total, expect);
    }
  }
}

TEST_F(CrossfilterTest, IndexMemoryReported) {
  Crossfilter bt(*data_, Dims());
  bt.Initialize(Crossfilter::Strategy::kBT);
  EXPECT_GT(bt.IndexMemoryBytes(), 0u);
  Crossfilter lazy(*data_, Dims());
  lazy.Initialize(Crossfilter::Strategy::kLazy);
  EXPECT_EQ(lazy.IndexMemoryBytes(), 0u);
}

}  // namespace
}  // namespace smoke
