// Name-based column references in PlanBuilder: every node kind accepts
// column names resolved against its input schema at Build() time, unknown
// names come back as clear InvalidArgument Statuses (not aborts), and the
// index overloads keep working unchanged next to the named forms.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "plan/executor.h"
#include "plan/plan.h"

namespace smoke {
namespace {

/// sales(region_id, amount, bonus, day, mode): 10 rows.
Table MakeSales() {
  Schema s;
  s.AddField("region_id", DataType::kInt64);
  s.AddField("amount", DataType::kFloat64);
  s.AddField("bonus", DataType::kFloat64);
  s.AddField("day", DataType::kInt64);
  s.AddField("mode", DataType::kString);
  Table t(s);
  const char* modes[] = {"air", "rail", "ship"};
  for (int64_t i = 0; i < 10; ++i) {
    t.AppendRow({i % 4, static_cast<double>(i + 1),
                 static_cast<double>((i * 3) % 7), 20240101 + (i % 3),
                 std::string(modes[i % 3])});
  }
  return t;
}

/// dims(region_id, weight): one row per region.
Table MakeDims() {
  Schema s;
  s.AddField("region_id", DataType::kInt64);
  s.AddField("weight", DataType::kFloat64);
  Table t(s);
  for (int64_t r = 0; r < 4; ++r) {
    t.AppendRow({r, static_cast<double>(r * 10)});
  }
  return t;
}

void ExpectSameOutput(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.column(c).type(), b.column(c).type()) << "col " << c;
    switch (a.column(c).type()) {
      case DataType::kInt64:
        EXPECT_EQ(a.column(c).ints(), b.column(c).ints()) << "col " << c;
        break;
      case DataType::kFloat64:
        EXPECT_EQ(a.column(c).doubles(), b.column(c).doubles())
            << "col " << c;
        break;
      case DataType::kString:
        EXPECT_EQ(a.column(c).strings(), b.column(c).strings())
            << "col " << c;
        break;
    }
  }
}

/// The full pipeline — select, derive, join, group-by, select-on-agg,
/// project — written once with names, once with indexes; outputs must
/// match exactly. `named` toggles the two spellings.
LogicalPlan BuildPipeline(const Table* sales, const Table* dims, bool named) {
  PlanBuilder b;
  int chain = b.Scan(sales, "sales");
  if (named) {
    chain = b.Select(chain,
                     {Predicate::Double("amount", CmpOp::kGe, 2.0),
                      Predicate::ColCmp("amount", CmpOp::kGt, "bonus"),
                      Predicate::IntIn("day", {20240101, 20240102}),
                      Predicate::Str("mode", CmpOp::kNe, "ship")});
    chain = b.Derive(chain, {GroupExpr::Raw("day", "d")});
  } else {
    chain = b.Select(chain,
                     {Predicate::Double(1, CmpOp::kGe, 2.0),
                      Predicate::ColCmp(1, CmpOp::kGt, 2, DataType::kFloat64),
                      Predicate::IntIn(3, {20240101, 20240102}),
                      Predicate::Str(4, CmpOp::kNe, "ship")});
    chain = b.Derive(chain, {GroupExpr::Raw(3, "d")});
  }

  JoinSpec join;
  if (named) {
    join.left_key_name = "region_id";
    join.right_key_name = "region_id";
  } else {
    join.left_key = 0;
    join.right_key = 0;
  }
  join.pk_build = true;
  int joined = b.HashJoin(b.Scan(dims, "dims"), chain, join);

  // Join output: dims(region_id, weight) ++ sales chain at offset 2;
  // the derived key "d" lands at index 7, "amount" at 3.
  GroupBySpec g;
  if (named) {
    g.key_names = {"d"};
    g.aggs = {AggSpec::Count("cnt"),
              AggSpec::Sum(ScalarExpr::Col("amount"), "sum_amount")};
  } else {
    g.keys = {7};
    g.aggs = {AggSpec::Count("cnt"),
              AggSpec::Sum(ScalarExpr::Col(3), "sum_amount")};
  }
  int agg = b.GroupBy(joined, g);

  // Resolution against a *derived* schema: the group-by's output columns.
  int have = named ? b.Select(agg, {Predicate::Int("cnt", CmpOp::kGe, 1)})
                   : b.Select(agg, {Predicate::Int(1, CmpOp::kGe, 1)});
  int proj = named ? b.Project(have, std::vector<std::string>{"d", "cnt"})
                   : b.Project(have, std::vector<int>{0, 1});

  LogicalPlan plan;
  EXPECT_TRUE(b.Build(proj, &plan).ok());
  return plan;
}

TEST(PlanNamesTest, NamedPipelineMatchesIndexedPipeline) {
  Table sales = MakeSales();
  Table dims = MakeDims();
  PlanResult named, indexed;
  ASSERT_TRUE(ExecutePlan(BuildPipeline(&sales, &dims, true),
                          CaptureOptions::Inject(), &named)
                  .ok());
  ASSERT_TRUE(ExecutePlan(BuildPipeline(&sales, &dims, false),
                          CaptureOptions::Inject(), &indexed)
                  .ok());
  ASSERT_GT(named.output.num_rows(), 0u);
  ExpectSameOutput(named.output, indexed.output);
}

TEST(PlanNamesTest, SetOpAndPushdownNamesMatchIndexed) {
  Table sales = MakeSales();
  auto build = [&sales](bool named) {
    PlanBuilder b;
    int lo = b.Select(b.Scan(&sales, "sales"),
                      {Predicate::Double(1, CmpOp::kLe, 7.0)});
    int hi = b.Select(b.Scan(&sales, "sales"),
                      {Predicate::Double(1, CmpOp::kGe, 4.0)});
    // Set-op columns resolve against the left child's schema.
    int is = named ? b.SetOp(SetOpKind::kSetIntersect, lo, hi,
                             std::vector<std::string>{"region_id", "day"})
                   : b.SetOp(SetOpKind::kSetIntersect, lo, hi,
                             std::vector<int>{0, 3});
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(is, &plan).ok());
    return plan;
  };
  PlanResult named, indexed;
  ASSERT_TRUE(ExecutePlan(build(true), CaptureOptions::Inject(), &named).ok());
  ASSERT_TRUE(
      ExecutePlan(build(false), CaptureOptions::Inject(), &indexed).ok());
  ASSERT_GT(named.output.num_rows(), 0u);
  ExpectSameOutput(named.output, indexed.output);

  // Capture push-down predicates attached to a group-by node resolve too.
  auto build_push = [&sales](bool named) {
    PlanBuilder b;
    GroupBySpec g;
    g.keys = {0};
    g.aggs = {AggSpec::Count("cnt")};
    SPJAPushdown push;
    push.sel_fact = {named ? Predicate::Double("amount", CmpOp::kGe, 5.0)
                           : Predicate::Double(1, CmpOp::kGe, 5.0)};
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(b.GroupBy(b.Scan(&sales, "sales"), g, push), &plan)
                    .ok());
    return plan;
  };
  PlanResult pn, pi;
  ASSERT_TRUE(
      ExecutePlan(build_push(true), CaptureOptions::Inject(), &pn).ok());
  ASSERT_TRUE(
      ExecutePlan(build_push(false), CaptureOptions::Inject(), &pi).ok());
  ExpectSameOutput(pn.output, pi.output);
  // The push-down restricted the captured backward lists identically.
  std::vector<rid_t> ln, li;
  pn.lineage.input(0).backward.TraceInto(0, &ln);
  pi.lineage.input(0).backward.TraceInto(0, &li);
  EXPECT_EQ(ln, li);
}

TEST(PlanNamesTest, TraceFiltersResolveAgainstEndpoint) {
  Table sales = MakeSales();
  PlanBuilder b;
  GroupBySpec g;
  g.key_names = {"region_id"};
  g.aggs = {AggSpec::Count("cnt")};
  LogicalPlan agg_plan;
  ASSERT_TRUE(b.Build(b.GroupBy(b.Scan(&sales, "sales"), g), &agg_plan).ok());
  PlanResult agg;
  ASSERT_TRUE(ExecutePlan(agg_plan, CaptureOptions::Inject(), &agg).ok());

  auto trace_rows = [&](std::vector<Predicate> filters, size_t* rows) {
    PlanBuilder tb;
    TraceSpec spec;
    spec.lineage = &agg.lineage;
    spec.relation = "sales";
    spec.direction = TraceDirection::kBackward;
    spec.seeds = {0};  // region 0: sales rids 0, 4, 8
    spec.filters = std::move(filters);
    LogicalPlan plan;
    SMOKE_RETURN_NOT_OK(
        tb.Build(tb.Trace(tb.Scan(&sales, "sales"), spec), &plan));
    PlanResult r;
    SMOKE_RETURN_NOT_OK(ExecutePlan(plan, CaptureOptions::Inject(), &r));
    *rows = r.output.num_rows();
    return Status::OK();
  };

  size_t unfiltered = 0, named = 0, indexed = 0;
  ASSERT_TRUE(trace_rows({}, &unfiltered).ok());
  ASSERT_EQ(unfiltered, 3u);
  ASSERT_TRUE(
      trace_rows({Predicate::Double("amount", CmpOp::kGe, 5.0)}, &named).ok());
  ASSERT_TRUE(
      trace_rows({Predicate::Double(1, CmpOp::kGe, 5.0)}, &indexed).ok());
  EXPECT_EQ(named, indexed);
  EXPECT_LT(named, unfiltered);
  EXPECT_GT(named, 0u);
}

TEST(PlanNamesTest, UnknownNamesAreClearStatuses) {
  Table sales = MakeSales();
  Table dims = MakeDims();
  auto expect_unknown = [](PlanBuilder* b, int root, const char* what) {
    LogicalPlan plan;
    Status st = b->Build(root, &plan);
    ASSERT_FALSE(st.ok()) << what;
    EXPECT_EQ(st.code(), Status::Code::kInvalidArgument) << what;
    EXPECT_NE(st.message().find("unknown column 'nope'"), std::string::npos)
        << what << ": " << st.message();
    // The error names the input schema so the fix is obvious.
    EXPECT_NE(st.message().find("region_id"), std::string::npos)
        << what << ": " << st.message();
  };

  {
    PlanBuilder b;
    expect_unknown(&b,
                   b.Select(b.Scan(&sales, "sales"),
                            {Predicate::Int("nope", CmpOp::kEq, 1)}),
                   "select");
  }
  {
    PlanBuilder b;
    expect_unknown(&b,
                   b.Select(b.Scan(&sales, "sales"),
                            {Predicate::ColCmp("amount", CmpOp::kGt, "nope")}),
                   "select rhs");
  }
  {
    PlanBuilder b;
    expect_unknown(&b,
                   b.Project(b.Scan(&sales, "sales"),
                             std::vector<std::string>{"nope"}),
                   "project");
  }
  {
    PlanBuilder b;
    expect_unknown(
        &b, b.Derive(b.Scan(&sales, "sales"), {GroupExpr::Raw("nope", "x")}),
        "derive");
  }
  {
    PlanBuilder b;
    GroupBySpec g;
    g.key_names = {"nope"};
    g.aggs = {AggSpec::Count("cnt")};
    expect_unknown(&b, b.GroupBy(b.Scan(&sales, "sales"), g), "group-by key");
  }
  {
    PlanBuilder b;
    GroupBySpec g;
    g.keys = {0};
    g.aggs = {AggSpec::Sum(ScalarExpr::Col("nope"), "s")};
    expect_unknown(&b, b.GroupBy(b.Scan(&sales, "sales"), g), "agg expr");
  }
  {
    PlanBuilder b;
    JoinSpec j;
    j.left_key_name = "nope";
    j.right_key_name = "region_id";
    expect_unknown(
        &b, b.HashJoin(b.Scan(&dims, "dims"), b.Scan(&sales, "sales"), j),
        "join left key");
  }
  {
    PlanBuilder b;
    JoinSpec j;
    j.left_key_name = "region_id";
    j.right_key_name = "nope";
    expect_unknown(
        &b, b.HashJoin(b.Scan(&dims, "dims"), b.Scan(&sales, "sales"), j),
        "join right key");
  }
  {
    PlanBuilder b;
    expect_unknown(&b,
                   b.SetOp(SetOpKind::kSetIntersect, b.Scan(&sales, "sales"),
                           b.Scan(&sales, "sales"),
                           std::vector<std::string>{"nope"}),
                   "set op");
  }
  {
    // Trace filters resolve against the endpoint; unknown names fail the
    // same way.
    PlanBuilder b;
    GroupBySpec g;
    g.keys = {0};
    g.aggs = {AggSpec::Count("cnt")};
    LogicalPlan agg_plan;
    ASSERT_TRUE(
        b.Build(b.GroupBy(b.Scan(&sales, "sales"), g), &agg_plan).ok());
    PlanResult agg;
    ASSERT_TRUE(ExecutePlan(agg_plan, CaptureOptions::Inject(), &agg).ok());
    PlanBuilder tb;
    TraceSpec spec;
    spec.lineage = &agg.lineage;
    spec.relation = "sales";
    spec.seeds = {0};
    spec.filters = {Predicate::Int("nope", CmpOp::kEq, 1)};
    expect_unknown(&tb, tb.Trace(tb.Scan(&sales, "sales"), spec), "trace");
  }
}

}  // namespace
}  // namespace smoke
