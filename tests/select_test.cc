#include "engine/select.h"

#include <gtest/gtest.h>

#include "baselines/bdb_sim.h"
#include "baselines/phys_mem.h"
#include "test_util.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

using testing::AreInverse;
using testing::RowSet;

std::vector<Predicate> VLess(double cut) {
  return {Predicate::Double(zipf_table::kV, CmpOp::kLt, cut)};
}

TEST(SelectTest, FiltersRows) {
  Table t = MakeZipfTable(1000, 10, 1.0);
  auto res = SelectExec(t, "zipf", VLess(50.0), CaptureOptions::None());
  const auto& vs = t.column(zipf_table::kV).doubles();
  size_t expect = 0;
  for (double v : vs) expect += v < 50.0;
  EXPECT_EQ(res.output.num_rows(), expect);
  EXPECT_EQ(res.lineage.num_inputs(), 0u);  // Baseline captures nothing
}

TEST(SelectTest, InjectLineageMatchesOracle) {
  Table t = MakeZipfTable(500, 10, 1.0);
  auto res = SelectExec(t, "zipf", VLess(30.0), CaptureOptions::Inject());
  const auto& vs = t.column(zipf_table::kV).doubles();
  const auto& bw = res.lineage.input(0).backward.array();
  const auto& fw = res.lineage.input(0).forward.array();
  ASSERT_EQ(fw.size(), 500u);
  rid_t o = 0;
  for (rid_t r = 0; r < 500; ++r) {
    if (vs[r] < 30.0) {
      ASSERT_EQ(bw[o], r);
      ASSERT_EQ(fw[r], o);
      ++o;
    } else {
      ASSERT_EQ(fw[r], kInvalidRid);
    }
  }
  EXPECT_EQ(bw.size(), o);
  EXPECT_TRUE(AreInverse(res.lineage.input(0).backward,
                         res.lineage.input(0).forward));
}

TEST(SelectTest, SelectivityEstimatePreallocates) {
  Table t = MakeZipfTable(2000, 10, 1.0);
  CardinalityHints hints;
  hints.selection_selectivity = 0.4;
  CaptureOptions opts = CaptureOptions::Inject();
  opts.hints = &hints;
  auto with = SelectExec(t, "zipf", VLess(30.0), opts);
  auto without = SelectExec(t, "zipf", VLess(30.0), CaptureOptions::Inject());
  EXPECT_EQ(RowSet(with.output), RowSet(without.output));
  EXPECT_EQ(testing::Edges(with.lineage.input(0).backward),
            testing::Edges(without.lineage.input(0).backward));
}

TEST(SelectTest, LogicRidAnnotatesOutput) {
  Table t = MakeZipfTable(100, 5, 0.5);
  auto res = SelectExec(t, "zipf", VLess(50.0),
                        CaptureOptions::Mode(CaptureMode::kLogicRid));
  int ann = res.output.ColumnIndex("prov_rid");
  ASSERT_GE(ann, 0);
  const auto& rids = res.output.column(static_cast<size_t>(ann)).ints();
  const auto& vs = t.column(zipf_table::kV).doubles();
  for (size_t i = 0; i < rids.size(); ++i) {
    ASSERT_LT(vs[static_cast<size_t>(rids[i])], 50.0);
  }
}

TEST(SelectTest, LogicTupDuplicatesInputColumns) {
  Table t = MakeZipfTable(50, 5, 0.5);
  auto res = SelectExec(t, "zipf", VLess(50.0),
                        CaptureOptions::Mode(CaptureMode::kLogicTup));
  EXPECT_EQ(res.output.num_columns(), 6u);  // 3 data + 3 annotation
  EXPECT_GE(res.output.ColumnIndex("prov_v"), 0);
}

TEST(SelectTest, LogicIdxBuildsSameIndexesAsInject) {
  Table t = MakeZipfTable(300, 8, 1.0);
  auto inj = SelectExec(t, "zipf", VLess(42.0), CaptureOptions::Inject());
  auto idx = SelectExec(t, "zipf", VLess(42.0),
                        CaptureOptions::Mode(CaptureMode::kLogicIdx));
  EXPECT_EQ(testing::Edges(inj.lineage.input(0).backward),
            testing::Edges(idx.lineage.input(0).backward));
  EXPECT_EQ(testing::Edges(inj.lineage.input(0).forward),
            testing::Edges(idx.lineage.input(0).forward));
}

TEST(SelectTest, PhysMemCapturesSameEdges) {
  Table t = MakeZipfTable(300, 8, 1.0);
  auto inj = SelectExec(t, "zipf", VLess(42.0), CaptureOptions::Inject());
  PhysMemWriter writer;
  CaptureOptions opts = CaptureOptions::Mode(CaptureMode::kPhysMem);
  opts.writer = &writer;
  auto phys = SelectExec(t, "zipf", VLess(42.0), opts);
  EXPECT_EQ(RowSet(inj.output), RowSet(phys.output));
  RidIndex bw = writer.ExportBackward();
  LineageIndex bw_idx = LineageIndex::FromIndex(std::move(bw));
  EXPECT_EQ(testing::Edges(inj.lineage.input(0).backward),
            testing::Edges(bw_idx));
}

TEST(SelectTest, PhysBdbCapturesSameEdges) {
  Table t = MakeZipfTable(300, 8, 1.0);
  auto inj = SelectExec(t, "zipf", VLess(42.0), CaptureOptions::Inject());
  BdbWriter writer;
  CaptureOptions opts = CaptureOptions::Mode(CaptureMode::kPhysBdb);
  opts.writer = &writer;
  SelectExec(t, "zipf", VLess(42.0), opts);
  const auto& bw = inj.lineage.input(0).backward.array();
  for (rid_t o = 0; o < bw.size(); ++o) {
    std::vector<rid_t> got;
    writer.FetchBackward(o, &got);
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(got[0], bw[o]);
  }
}

TEST(SelectTest, DirectionPruning) {
  Table t = MakeZipfTable(100, 5, 0.5);
  CaptureOptions opts = CaptureOptions::Inject();
  opts.capture_forward = false;
  auto res = SelectExec(t, "zipf", VLess(50.0), opts);
  EXPECT_FALSE(res.lineage.input(0).backward.empty());
  EXPECT_TRUE(res.lineage.input(0).forward.empty());
}

TEST(SelectTest, EmptyResult) {
  Table t = MakeZipfTable(100, 5, 0.5);
  auto res = SelectExec(t, "zipf", VLess(-1.0), CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 0u);
  EXPECT_EQ(res.lineage.input(0).backward.array().size(), 0u);
}

TEST(SelectTest, AllPass) {
  Table t = MakeZipfTable(100, 5, 0.5);
  auto res = SelectExec(t, "zipf", VLess(1000.0), CaptureOptions::Inject());
  EXPECT_EQ(res.output.num_rows(), 100u);
  const auto& fw = res.lineage.input(0).forward.array();
  for (rid_t r = 0; r < 100; ++r) ASSERT_EQ(fw[r], r);
}

struct SelectSweepParam {
  size_t n;
  double cut;
  CaptureMode mode;
};

class SelectModeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(SelectModeSweep, AllModesAgreeOnOutput) {
  auto [n, cut] = GetParam();
  Table t = MakeZipfTable(n, 16, 1.0);
  auto base = SelectExec(t, "zipf", VLess(cut), CaptureOptions::None());
  // Logic modes append annotation columns; compare only the data columns.
  auto data_rows = [&](const Table& out) {
    std::multiset<std::string> rows;
    for (size_t r = 0; r < out.num_rows(); ++r) {
      std::string s;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        s += ValueToString(out.GetValue(static_cast<rid_t>(r), c)) + "|";
      }
      rows.insert(std::move(s));
    }
    return rows;
  };
  for (CaptureMode m : {CaptureMode::kInject, CaptureMode::kDefer,
                        CaptureMode::kLogicIdx}) {
    auto res = SelectExec(t, "zipf", VLess(cut), CaptureOptions::Mode(m));
    ASSERT_EQ(data_rows(base.output), data_rows(res.output))
        << CaptureModeName(m);
    ASSERT_TRUE(AreInverse(res.lineage.input(0).backward,
                           res.lineage.input(0).forward))
        << CaptureModeName(m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectModeSweep,
    ::testing::Combine(::testing::Values(1, 10, 1000),
                       ::testing::Values(0.0, 25.0, 100.0)));

}  // namespace
}  // namespace smoke
