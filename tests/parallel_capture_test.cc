// Determinism tests for morsel-driven parallel capture: composed
// backward/forward lineage and query results must be IDENTICAL (element by
// element, including duplicate and ordering behavior) for num_threads ∈
// {1, 2, 7} across select, group-by, join, and rollup plans. 7 is
// deliberately odd and coprime with the morsel size to exercise
// remainder-morsel paths. Also covers the morsel-view Operator contract,
// the MorselScheduler itself, and plan-level deferred finalization.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/smoke_engine.h"
#include "engine/group_by.h"
#include "engine/hash_join.h"
#include "engine/select.h"
#include "lineage/fragment_merge.h"
#include "plan/executor.h"
#include "plan/operator.h"
#include "plan/plan.h"
#include "plan/scheduler.h"
#include "test_util.h"

namespace smoke {
namespace {

constexpr int kThreadCounts[] = {2, 7};
constexpr size_t kMorselRows = 113;  // force many morsels + a remainder

/// events(k, grp, v): n rows, keys in [0, num_keys), deterministic LCG.
Table MakeEvents(size_t n, int64_t num_keys) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  s.AddField("grp", DataType::kString);
  s.AddField("v", DataType::kInt64);
  Table t(s);
  uint64_t x = 88172645463325252ULL;
  for (size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t k = static_cast<int64_t>(x % static_cast<uint64_t>(num_keys));
    t.AppendRow({k, std::string(k % 3 == 0 ? "fizz" : "buzz"),
                 static_cast<int64_t>((x >> 32) % 1000)});
  }
  return t;
}

/// dim(k, w): one row per key (pk side of pk-fk joins).
Table MakeDim(int64_t num_keys) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  s.AddField("w", DataType::kInt64);
  Table t(s);
  for (int64_t k = 0; k < num_keys; ++k) t.AppendRow({k, k * 10});
  return t;
}

/// Exact (not set-based) index equality: same physical kind, same entry
/// count, same rids in the same order — the test's notion of "byte-equal".
::testing::AssertionResult SameIndex(const LineageIndex& a,
                                     const LineageIndex& b) {
  if (a.kind() != b.kind()) {
    return ::testing::AssertionFailure()
           << "kind " << static_cast<int>(a.kind()) << " vs "
           << static_cast<int>(b.kind());
  }
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  switch (a.kind()) {
    case LineageIndex::Kind::kNone:
      break;
    case LineageIndex::Kind::kArray:
      for (size_t i = 0; i < a.array().size(); ++i) {
        if (a.array()[i] != b.array()[i]) {
          return ::testing::AssertionFailure()
                 << "array[" << i << "]: " << a.array()[i] << " vs "
                 << b.array()[i];
        }
      }
      break;
    case LineageIndex::Kind::kIndex:
      for (size_t i = 0; i < a.index().size(); ++i) {
        const RidVec& la = a.index().list(i);
        const RidVec& lb = b.index().list(i);
        if (la.size() != lb.size()) {
          return ::testing::AssertionFailure()
                 << "list[" << i << "] size " << la.size() << " vs "
                 << lb.size();
        }
        for (size_t j = 0; j < la.size(); ++j) {
          if (la[j] != lb[j]) {
            return ::testing::AssertionFailure()
                   << "list[" << i << "][" << j << "]: " << la[j] << " vs "
                   << lb[j];
          }
        }
      }
      break;
    case LineageIndex::Kind::kEncodedArray:
    case LineageIndex::Kind::kEncodedIndex: {
      // Encoded forms: compare the decoded per-position sequences.
      std::vector<rid_t> ra, rb;
      for (size_t i = 0; i < a.size(); ++i) {
        ra.clear();
        rb.clear();
        a.TraceInto(static_cast<rid_t>(i), &ra);
        b.TraceInto(static_cast<rid_t>(i), &rb);
        if (ra != rb) {
          return ::testing::AssertionFailure()
                 << "encoded list[" << i << "] differs";
        }
      }
      break;
    }
  }
  return ::testing::AssertionSuccess();
}

/// Exact table equality including row order.
::testing::AssertionResult SameTable(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "rows " << a.num_rows() << " vs " << b.num_rows();
  }
  for (rid_t r = 0; r < a.num_rows(); ++r) {
    if (testing::RowKey(a, r) != testing::RowKey(b, r)) {
      return ::testing::AssertionFailure()
             << "row " << r << ": " << testing::RowKey(a, r) << " vs "
             << testing::RowKey(b, r);
    }
  }
  return ::testing::AssertionSuccess();
}

/// Runs `plan` at the given thread count and asserts output + every
/// composed lineage input matches the single-threaded reference.
void ExpectIdenticalAcrossThreads(const LogicalPlan& plan, CaptureMode mode) {
  CaptureOptions ref_opts = CaptureOptions::Mode(mode);
  ref_opts.morsel_rows = kMorselRows;
  PlanResult ref;
  ASSERT_TRUE(ExecutePlan(plan, ref_opts, &ref).ok());

  for (int threads : kThreadCounts) {
    CaptureOptions opts = ref_opts;
    opts.num_threads = threads;
    PlanResult got;
    ASSERT_TRUE(ExecutePlan(plan, opts, &got).ok());
    EXPECT_TRUE(SameTable(ref.output, got.output)) << "threads=" << threads;
    EXPECT_EQ(ref.output_cardinality, got.output_cardinality);
    ASSERT_EQ(ref.lineage.num_inputs(), got.lineage.num_inputs());
    for (size_t i = 0; i < ref.lineage.num_inputs(); ++i) {
      EXPECT_EQ(ref.lineage.input(i).table_name,
                got.lineage.input(i).table_name);
      EXPECT_TRUE(SameIndex(ref.lineage.input(i).backward,
                            got.lineage.input(i).backward))
          << "backward input " << i << " threads=" << threads;
      EXPECT_TRUE(SameIndex(ref.lineage.input(i).forward,
                            got.lineage.input(i).forward))
          << "forward input " << i << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler unit tests
// ---------------------------------------------------------------------------

TEST(MorselSchedulerTest, MorselAndPartitionSpansCoverInput) {
  auto morsels = MakeMorsels(1000, 113);
  ASSERT_EQ(morsels.size(), 9u);
  EXPECT_EQ(morsels.front().begin, 0u);
  EXPECT_EQ(morsels.back().end, 1000u);
  for (size_t m = 1; m < morsels.size(); ++m) {
    EXPECT_EQ(morsels[m].begin, morsels[m - 1].end);
  }
  EXPECT_EQ(morsels.back().rows(), 1000u - 8 * 113u);

  auto parts = MakePartitions(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].rows(), 4u);  // remainder goes to the first partitions
  EXPECT_EQ(parts[1].rows(), 3u);
  EXPECT_EQ(parts[2].rows(), 3u);
  EXPECT_TRUE(MakeMorsels(0, 64).empty());
  // More partitions than rows collapse to one per row at most.
  EXPECT_EQ(MakePartitions(2, 7).size(), 2u);
  EXPECT_EQ(MakePartitions(0, 7).size(), 1u);
}

TEST(MorselSchedulerTest, ParallelForRunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    MorselScheduler sched(threads);
    EXPECT_EQ(sched.num_threads(), threads);
    constexpr size_t kTasks = 501;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    // Repeated batches reuse the pool (one batch per plan operator).
    for (int round = 0; round < 3; ++round) {
      sched.ParallelFor(kTasks, [&](size_t task, size_t worker) {
        EXPECT_LT(worker, static_cast<size_t>(threads));
        hits[task].fetch_add(1);
      });
    }
    for (size_t t = 0; t < kTasks; ++t) EXPECT_EQ(hits[t].load(), 3);
  }
}

// ---------------------------------------------------------------------------
// Fragment-merge unit tests
// ---------------------------------------------------------------------------

TEST(FragmentMergeTest, OffsetsConcatScatterInvert) {
  std::vector<size_t> counts = {3, 0, 2};
  auto offsets = ExclusiveOffsets(counts);
  EXPECT_EQ(offsets, (std::vector<rid_t>{0, 3, 3, 5}));

  RidArray merged = ConcatBackwardArrays({{5, 7, 9}, {}, {1, 2}});
  EXPECT_EQ(merged, (RidArray{5, 7, 9, 1, 2}));

  // Two morsels over input rows [0,3) and [3,6).
  std::vector<RidArray> fw_parts = {{0, kInvalidRid, 1},
                                    {kInvalidRid, 0, 1}};
  RidArray fw = ScatterForwardArrays(6, fw_parts, {0, 3}, {0, 2});
  EXPECT_EQ(fw, (RidArray{0, kInvalidRid, 1, kInvalidRid, 2, 3}));

  RidIndex part0(2), part1(1);
  part0.Append(0, 0);
  part0.Append(0, 1);
  part0.Append(1, 1);
  part1.Append(0, 0);
  RidIndex cat = ConcatIndexParts({std::move(part0), std::move(part1)},
                                  {0, 2});
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_EQ(testing::Sorted(cat.list(0)), (std::vector<rid_t>{0, 1}));
  EXPECT_EQ(testing::Sorted(cat.list(1)), (std::vector<rid_t>{1}));
  EXPECT_EQ(testing::Sorted(cat.list(2)), (std::vector<rid_t>{2}));

  RidIndex inv = InvertBackwardArray({2, 0, 2, kInvalidRid}, 3);
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(testing::Sorted(inv.list(0)), (std::vector<rid_t>{1}));
  EXPECT_TRUE(inv.list(1).empty());
  EXPECT_EQ(testing::Sorted(inv.list(2)), (std::vector<rid_t>{0, 2}));
}

// ---------------------------------------------------------------------------
// Determinism across thread counts, per plan shape
// ---------------------------------------------------------------------------

TEST(ParallelCaptureTest, SelectIdenticalAcrossThreads) {
  Table events = MakeEvents(5000, 40);
  for (CaptureMode mode : {CaptureMode::kInject, CaptureMode::kDefer}) {
    PlanBuilder b;
    int scan = b.Scan(&events, "events");
    int sel = b.Select(
        scan, {Predicate::Int(0, CmpOp::kLt, 11),
               Predicate::Int(2, CmpOp::kGe, 100)});
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(sel, &plan).ok());
    ExpectIdenticalAcrossThreads(plan, mode);
  }
}

TEST(ParallelCaptureTest, GroupByIdenticalAcrossThreads) {
  Table events = MakeEvents(5000, 97);
  for (CaptureMode mode : {CaptureMode::kInject, CaptureMode::kDefer}) {
    // Int-key path.
    {
      PlanBuilder b;
      int scan = b.Scan(&events, "events");
      GroupBySpec spec;
      spec.keys = {0};
      spec.aggs = {AggSpec::Count("cnt"),
                   AggSpec::Sum(ScalarExpr::Col(2), "sum_v"),
                   AggSpec::Max(ScalarExpr::Col(2), "max_v")};
      int gb = b.GroupBy(scan, spec);
      LogicalPlan plan;
      ASSERT_TRUE(b.Build(gb, &plan).ok());
      ExpectIdenticalAcrossThreads(plan, mode);
    }
    // Composite (string-encoded) key path.
    {
      PlanBuilder b;
      int scan = b.Scan(&events, "events");
      GroupBySpec spec;
      spec.keys = {1, 0};
      spec.aggs = {AggSpec::Count("cnt"),
                   AggSpec::Min(ScalarExpr::Col(2), "min_v")};
      int gb = b.GroupBy(scan, spec);
      LogicalPlan plan;
      ASSERT_TRUE(b.Build(gb, &plan).ok());
      ExpectIdenticalAcrossThreads(plan, mode);
    }
  }
}

TEST(ParallelCaptureTest, JoinIdenticalAcrossThreads) {
  Table events = MakeEvents(4000, 50);
  Table dim = MakeDim(50);
  // Pk-fk probe (dim is the unique build side).
  {
    PlanBuilder b;
    int d = b.Scan(&dim, "dim");
    int e = b.Scan(&events, "events");
    JoinSpec spec;
    spec.left_key = 0;
    spec.right_key = 0;
    spec.pk_build = true;
    int j = b.HashJoin(d, e, spec);
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(j, &plan).ok());
    ExpectIdenticalAcrossThreads(plan, CaptureMode::kInject);
    // Pk-fk defer ≡ inject: the parallel path must hold there too.
    ExpectIdenticalAcrossThreads(plan, CaptureMode::kDefer);
  }
  // M:N probe: both sides are fact-like.
  {
    Table other = MakeEvents(700, 50);
    PlanBuilder b;
    int l = b.Scan(&other, "left_events");
    int r = b.Scan(&events, "right_events");
    JoinSpec spec;
    spec.left_key = 0;
    spec.right_key = 0;
    int j = b.HashJoin(l, r, spec);
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(j, &plan).ok());
    ExpectIdenticalAcrossThreads(plan, CaptureMode::kInject);
  }
}

TEST(ParallelCaptureTest, RollupPlanIdenticalAcrossThreads) {
  Table events = MakeEvents(5000, 61);
  Table dim = MakeDim(61);
  for (CaptureMode mode : {CaptureMode::kInject, CaptureMode::kDefer}) {
    // select -> pk-fk join -> group-by -> group-by rollup: every parallel
    // kernel composes through the full stack.
    PlanBuilder b;
    int d = b.Scan(&dim, "dim");
    int e = b.Scan(&events, "events");
    int sel = b.Select(e, {Predicate::Int(2, CmpOp::kLt, 900)});
    JoinSpec jspec;
    jspec.left_key = 0;
    jspec.right_key = 0;
    jspec.pk_build = true;
    int j = b.HashJoin(d, sel, jspec);
    GroupBySpec g1;
    g1.keys = {0};
    g1.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(1), "w")};
    int gb1 = b.GroupBy(j, g1);
    GroupBySpec g2;
    g2.keys = {1};  // roll up by per-key count
    g2.aggs = {AggSpec::Count("keys")};
    int gb2 = b.GroupBy(gb1, g2);
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(gb2, &plan).ok());
    ExpectIdenticalAcrossThreads(plan, mode);
  }
}

TEST(ParallelCaptureTest, SharedSubplanDagIdenticalAcrossThreads) {
  // A shared select subplan consumed by two parents whose outputs re-merge
  // through a bag union: the composition layer's DAG path-merge runs on top
  // of morsel-parallel fragments.
  Table events = MakeEvents(3000, 17);
  PlanBuilder b;
  int scan = b.Scan(&events, "events");
  int shared = b.Select(scan, {Predicate::Int(2, CmpOp::kLt, 800)});
  int low = b.Select(shared, {Predicate::Int(0, CmpOp::kLt, 9)});
  int high = b.Select(shared, {Predicate::Int(0, CmpOp::kGe, 9)});
  int root = b.SetOp(SetOpKind::kBagUnion, low, high, std::vector<int>{});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());
  ExpectIdenticalAcrossThreads(plan, CaptureMode::kInject);
}

TEST(ParallelCaptureTest, DirectionPruningRespectedInParallel) {
  Table events = MakeEvents(3000, 30);
  PlanBuilder b;
  int scan = b.Scan(&events, "events");
  GroupBySpec spec;
  spec.keys = {0};
  spec.aggs = {AggSpec::Count("cnt")};
  int gb = b.GroupBy(scan, spec);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(gb, &plan).ok());

  CaptureOptions opts = CaptureOptions::Inject();
  opts.num_threads = 7;
  opts.capture_forward = false;
  PlanResult res;
  ASSERT_TRUE(ExecutePlan(plan, opts, &res).ok());
  EXPECT_FALSE(res.lineage.input(0).backward.empty());
  EXPECT_TRUE(res.lineage.input(0).forward.empty());
}

// ---------------------------------------------------------------------------
// Morsel-view Operator contract
// ---------------------------------------------------------------------------

TEST(MorselViewTest, SelectFragmentsOverViewsMergeToFullRun) {
  Table events = MakeEvents(1000, 20);
  PlanBuilder b;
  int scan = b.Scan(&events, "events");
  int sel = b.Select(scan, {Predicate::Int(0, CmpOp::kLt, 7)});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(sel, &plan).ok());
  std::unique_ptr<Operator> op = MakeOperator(plan.node(plan.root()));

  CaptureOptions opts = CaptureOptions::Inject();
  OperatorInput full;
  full.table = &events;
  full.name = "events";
  OperatorResult whole;
  ASSERT_TRUE(op->Execute({full}, opts, &whole).ok());

  // Split 1000 rows into views [0,400) and [400,1000); per-view fragments
  // carry absolute input rids + view-local output rids, merged with the
  // fragment-merge layer.
  std::vector<Morsel> views(2);
  views[0].begin = 0;
  views[0].end = 400;
  views[1].begin = 400;
  views[1].end = 1000;
  std::vector<OperatorResult> parts(2);
  for (size_t v = 0; v < views.size(); ++v) {
    OperatorInput in = full;
    in.view = views[v];
    in.has_view = true;
    ASSERT_TRUE(op->Execute({in}, opts, &parts[v]).ok());
  }
  std::vector<size_t> counts = {parts[0].output.num_rows(),
                                parts[1].output.num_rows()};
  auto offsets = ExclusiveOffsets(counts);

  Table merged_out(events.schema());
  std::vector<RidArray> bw_parts, fw_parts;
  std::vector<rid_t> in_begins;
  for (size_t v = 0; v < parts.size(); ++v) {
    merged_out.AppendAllRows(std::move(parts[v].output));
    bw_parts.push_back(parts[v].fragments[0].backward.array());
    // The per-view forward array spans the full input; slice the view.
    const RidArray& f = parts[v].fragments[0].forward.array();
    fw_parts.emplace_back(f.begin() + views[v].begin,
                          f.begin() + views[v].end);
    in_begins.push_back(views[v].begin);
  }
  EXPECT_TRUE(SameTable(whole.output, merged_out));
  EXPECT_TRUE(SameIndex(
      whole.fragments[0].backward,
      LineageIndex::FromArray(ConcatBackwardArrays(std::move(bw_parts)))));
  EXPECT_TRUE(SameIndex(
      whole.fragments[0].forward,
      LineageIndex::FromArray(ScatterForwardArrays(
          events.num_rows(), fw_parts, in_begins, offsets))));
}

TEST(MorselViewTest, PartitionIgnorantOperatorsRejectPartialViews) {
  Table events = MakeEvents(100, 5);
  PlanBuilder b;
  int scan = b.Scan(&events, "events");
  GroupBySpec spec;
  spec.keys = {0};
  spec.aggs = {AggSpec::Count("cnt")};
  int gb = b.GroupBy(scan, spec);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(gb, &plan).ok());
  std::unique_ptr<Operator> op = MakeOperator(plan.node(plan.root()));

  OperatorInput in;
  in.table = &events;
  in.name = "events";
  in.view.begin = 0;
  in.view.end = 50;
  in.has_view = true;
  OperatorResult out;
  Status s = op->Execute({in}, CaptureOptions::Inject(), &out);
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------------
// Plan-level deferred finalization (think-time Zγ)
// ---------------------------------------------------------------------------

TEST(PlanDeferTest, FinalizeDeferredMatchesEagerDefer) {
  Table events = MakeEvents(4000, 53);
  for (int threads : {1, 7}) {
    PlanBuilder b;
    int scan = b.Scan(&events, "events");
    int sel = b.Select(scan, {Predicate::Int(2, CmpOp::kGe, 50)});
    GroupBySpec spec;
    spec.keys = {0};
    spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(2), "s")};
    int gb = b.GroupBy(sel, spec);
    LogicalPlan plan;
    ASSERT_TRUE(b.Build(gb, &plan).ok());

    CaptureOptions eager = CaptureOptions::Defer();
    eager.num_threads = threads;
    eager.morsel_rows = kMorselRows;
    PlanResult ref;
    ASSERT_TRUE(ExecutePlan(plan, eager, &ref).ok());
    ASSERT_FALSE(ref.HasDeferred());

    CaptureOptions lazy = eager;
    lazy.defer_plan_finalize = true;
    PlanResult res;
    ASSERT_TRUE(ExecutePlan(plan, lazy, &res).ok());
    EXPECT_TRUE(res.HasDeferred());
    EXPECT_TRUE(SameTable(ref.output, res.output));
    EXPECT_EQ(res.lineage.num_inputs(), 0u);  // nothing composed yet

    ASSERT_TRUE(res.FinalizeDeferred().ok());  // think-time Zγ
    EXPECT_FALSE(res.HasDeferred());
    ASSERT_EQ(res.lineage.num_inputs(), ref.lineage.num_inputs());
    EXPECT_TRUE(SameIndex(ref.lineage.input(0).backward,
                          res.lineage.input(0).backward));
    EXPECT_TRUE(SameIndex(ref.lineage.input(0).forward,
                          res.lineage.input(0).forward));
    // Idempotent.
    ASSERT_TRUE(res.FinalizeDeferred().ok());
  }
}

TEST(PlanDeferTest, EngineFinalizePlanGatesLineageQueries) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("events", MakeEvents(2000, 31)).ok());
  const Table* events = nullptr;
  ASSERT_TRUE(engine.GetTable("events", &events).ok());

  PlanBuilder b;
  int scan = b.Scan(events, "events");
  GroupBySpec spec;
  spec.keys = {0};
  spec.aggs = {AggSpec::Count("cnt")};
  int gb = b.GroupBy(scan, spec);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(gb, &plan).ok());

  CaptureOptions opts = CaptureOptions::Defer();
  opts.defer_plan_finalize = true;
  opts.num_threads = 2;
  ASSERT_TRUE(engine.ExecutePlan("per_key", plan, opts).ok());

  std::vector<rid_t> rids;
  EXPECT_FALSE(engine.Backward("per_key", "events", {0}, &rids).ok());
  ASSERT_TRUE(engine.FinalizePlan("per_key").ok());
  ASSERT_TRUE(engine.Backward("per_key", "events", {0}, &rids).ok());
  EXPECT_FALSE(rids.empty());
  // Every traced rid really carries the first output's group key.
  const auto& keys = events->column(0).ints();
  const Table* out = nullptr;
  ASSERT_TRUE(engine.GetResult("per_key", &out).ok());
  for (rid_t r : rids) EXPECT_EQ(keys[r], out->column(0).ints()[0]);

  EXPECT_FALSE(engine.FinalizePlan("nope").ok());
}

// ---------------------------------------------------------------------------
// Engine facade: parallel execution end to end
// ---------------------------------------------------------------------------

TEST(ParallelCaptureTest, EngineParallelPlanMatchesSequential) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("events", MakeEvents(3000, 23)).ok());
  const Table* events = nullptr;
  ASSERT_TRUE(engine.GetTable("events", &events).ok());

  auto build = [&] {
    PlanBuilder b;
    int scan = b.Scan(events, "events");
    GroupBySpec spec;
    spec.keys = {0};
    spec.aggs = {AggSpec::Sum(ScalarExpr::Col(2), "sum_v")};
    int gb = b.GroupBy(scan, spec);
    LogicalPlan plan;
    EXPECT_TRUE(b.Build(gb, &plan).ok());
    return plan;
  };
  LogicalPlan p1 = build();
  LogicalPlan p7 = build();
  CaptureOptions seq = CaptureOptions::Inject();
  CaptureOptions par = CaptureOptions::Inject();
  par.num_threads = 7;
  par.morsel_rows = kMorselRows;
  ASSERT_TRUE(engine.ExecutePlan("q1", p1, seq).ok());
  ASSERT_TRUE(engine.ExecutePlan("q7", p7, par).ok());

  const PlanResult* r1 = nullptr;
  const PlanResult* r7 = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("q1", &r1).ok());
  ASSERT_TRUE(engine.GetPlanResult("q7", &r7).ok());
  EXPECT_TRUE(SameTable(r1->output, r7->output));
  EXPECT_TRUE(SameIndex(r1->lineage.input(0).backward,
                        r7->lineage.input(0).backward));
  EXPECT_TRUE(SameIndex(r1->lineage.input(0).forward,
                        r7->lineage.input(0).forward));

  // Linked brushing across a sequential and a parallel query.
  std::vector<rid_t> linked;
  ASSERT_TRUE(engine.TraceAcross("q1", {0}, "events", "q7", &linked).ok());
  EXPECT_EQ(linked, (std::vector<rid_t>{0}));
}

TEST(PlanDeferTest, ParallelFinalizeDeferredGroupByBitIdentical) {
  // The think-time Zγ probe runs morsel-parallel (per-partition backward
  // lists concatenated in partition order): indexes must be bit-identical
  // to the sequential probe for any thread count, for both key paths.
  Table events = MakeEvents(5000, 97);
  struct KeyCase {
    std::vector<int> keys;
  };
  for (const KeyCase& kc : {KeyCase{{0}}, KeyCase{{1, 0}}}) {
    GroupBySpec spec;
    spec.keys = kc.keys;
    spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(2), "s")};

    auto ref = GroupByExec(events, "events", spec, CaptureOptions::Defer());
    FinalizeDeferredGroupBy(&ref, events, CaptureOptions::Defer());

    for (int threads : kThreadCounts) {
      CaptureOptions opts = CaptureOptions::Defer();
      opts.num_threads = threads;
      auto got = GroupByExec(events, "events", spec, opts);
      FinalizeDeferredGroupBy(&got, events, opts);
      EXPECT_TRUE(SameTable(ref.output, got.output)) << "threads=" << threads;
      EXPECT_TRUE(SameIndex(ref.lineage.input(0).backward,
                            got.lineage.input(0).backward))
          << "threads=" << threads;
      EXPECT_TRUE(SameIndex(ref.lineage.input(0).forward,
                            got.lineage.input(0).forward))
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace smoke
