#include <gtest/gtest.h>

#include "common/date.h"
#include "common/zipf.h"
#include "storage/catalog.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace smoke {
namespace {

Table SmallTable() {
  Schema s;
  s.AddField("a", DataType::kInt64);
  s.AddField("b", DataType::kFloat64);
  s.AddField("c", DataType::kString);
  Table t(s);
  t.AppendRow({int64_t{1}, 1.5, std::string("x")});
  t.AppendRow({int64_t{2}, 2.5, std::string("y")});
  t.AppendRow({int64_t{1}, 3.5, std::string("x")});
  return t;
}

TEST(SchemaTest, IndexOf) {
  Schema s;
  s.AddField("a", DataType::kInt64);
  s.AddField("b", DataType::kString);
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("nope"), -1);
  EXPECT_EQ(s.num_fields(), 2u);
}

TEST(TableTest, AppendAndGet) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(std::get<int64_t>(t.GetValue(0, 0)), 1);
  EXPECT_EQ(std::get<double>(t.GetValue(1, 1)), 2.5);
  EXPECT_EQ(std::get<std::string>(t.GetValue(2, 2)), "x");
}

TEST(TableTest, AppendRowFrom) {
  Table t = SmallTable();
  Table u(t.schema());
  u.AppendRowFrom(t, 1);
  EXPECT_EQ(u.num_rows(), 1u);
  EXPECT_EQ(std::get<std::string>(u.GetValue(0, 2)), "y");
}

TEST(TableTest, ColumnByName) {
  Table t = SmallTable();
  EXPECT_EQ(t.column("a").type(), DataType::kInt64);
  EXPECT_EQ(t.ColumnIndex("c"), 2);
}

TEST(TableTest, ToStringRendersRows) {
  Table t = SmallTable();
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("a | b | c"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(CatalogTest, AddGetAndDuplicates) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable("t", SmallTable()).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(cat.GetTable("t", &t).ok());
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_FALSE(cat.AddTable("t", SmallTable()).ok());
  EXPECT_EQ(cat.AddTable("t", SmallTable()).code(),
            Status::Code::kAlreadyExists);
  EXPECT_FALSE(cat.GetTable("missing", &t).ok());
  EXPECT_TRUE(cat.HasTable("t"));
  EXPECT_EQ(cat.TableNames().size(), 1u);
}

TEST(DictionaryTest, SingleIntColumn) {
  Table t = SmallTable();
  Dictionary d = BuildDictionary(t, {0});
  EXPECT_EQ(d.num_codes, 2u);
  EXPECT_EQ(d.codes[0], d.codes[2]);  // both a=1
  EXPECT_NE(d.codes[0], d.codes[1]);
  EXPECT_EQ(d.CodeForInt(1), d.codes[0]);
  EXPECT_EQ(d.CodeForInt(2), d.codes[1]);
  EXPECT_EQ(d.CodeForInt(99), UINT32_MAX);
}

TEST(DictionaryTest, MultiColumn) {
  Table t = SmallTable();
  Dictionary d = BuildDictionary(t, {0, 2});
  EXPECT_EQ(d.num_codes, 2u);  // (1,x) and (2,y); row 2 repeats (1,x)
  EXPECT_EQ(d.codes[0], d.codes[2]);
  std::string key = DictKeyOfRow(t, {0, 2}, 0);
  EXPECT_EQ(d.CodeForString(key), d.codes[0]);
}

TEST(StatusTest, Formatting) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_EQ(Status::NotFound("x").ToString(), "Not found: x");
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(DateTest, RoundTrip) {
  for (int64_t ymd : {19920101L, 19950617L, 19981231L, 20000229L}) {
    EXPECT_EQ(YmdFromDays(DaysFromYmd(ymd)), ymd);
  }
}

TEST(DateTest, Ordering) {
  EXPECT_LT(DaysFromYmd(19941231), DaysFromYmd(19950101));
  EXPECT_EQ(DaysFromYmd(19950102) - DaysFromYmd(19950101), 1);
}

TEST(ZipfTest, BoundsAndDeterminism) {
  ZipfGenerator g1(100, 1.0, 5);
  ZipfGenerator g2(100, 1.0, 5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = g1.Next();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    EXPECT_EQ(v, g2.Next());
  }
}

TEST(ZipfTest, SkewConcentratesMass) {
  // With theta=1.2, value 1 should be far more frequent than under theta=0.
  auto frac_ones = [](double theta) {
    ZipfGenerator g(100, theta, 11);
    int ones = 0;
    for (int i = 0; i < 20000; ++i) ones += g.Next() == 1;
    return ones / 20000.0;
  };
  EXPECT_GT(frac_ones(1.2), 0.15);
  EXPECT_LT(frac_ones(0.0), 0.03);
}

TEST(ZipfTest, UniformCoversRange) {
  ZipfGenerator g(10, 0.0, 3);
  std::vector<int> seen(11, 0);
  for (int i = 0; i < 5000; ++i) ++seen[static_cast<size_t>(g.Next())];
  for (int v = 1; v <= 10; ++v) EXPECT_GT(seen[static_cast<size_t>(v)], 300);
}

}  // namespace
}  // namespace smoke
