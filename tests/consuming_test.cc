#include "query/consuming.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "query/lazy.h"
#include "query/lineage_query.h"
#include "test_util.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

using testing::GroupedRows;

class ConsumingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new tpch::Database(tpch::Generate(0.01));
    q1_ = new SPJAQuery(tpch::MakeQ1(*db_));
    base_ = new SPJAResult(SPJAExec(*q1_, CaptureOptions::Inject()));
  }
  static void TearDownTestSuite() {
    delete base_;
    delete q1_;
    delete db_;
  }
  static tpch::Database* db_;
  static SPJAQuery* q1_;
  static SPJAResult* base_;
};
tpch::Database* ConsumingTest::db_ = nullptr;
SPJAQuery* ConsumingTest::q1_ = nullptr;
SPJAResult* ConsumingTest::base_ = nullptr;

TEST_F(ConsumingTest, Q1aIndexedMatchesLazy) {
  ConsumingSpec q1a = tpch::MakeQ1a(*db_);
  for (rid_t oid = 0; oid < base_->output.num_rows(); ++oid) {
    const RidVec& rids =
        base_->lineage.input(0).backward.index().list(oid);
    auto indexed = ConsumingOverRids(db_->lineitem, q1a, rids);
    auto preds = LazyBackwardPredicates(*q1_, base_->output, oid);
    auto lazy = ConsumingLazy(db_->lineitem, preds, q1a);
    ASSERT_EQ(GroupedRows(indexed.output, 2), GroupedRows(lazy.output, 2))
        << "group " << oid;
  }
}

TEST_F(ConsumingTest, Q1aGroupsByYearMonth) {
  ConsumingSpec q1a = tpch::MakeQ1a(*db_);
  const RidVec& rids = base_->lineage.input(0).backward.index().list(0);
  auto res = ConsumingOverRids(db_->lineitem, q1a, rids);
  EXPECT_GT(res.output.num_rows(), 12u);  // several year-month cells
  const auto& years = res.output.column(0).ints();
  const auto& months = res.output.column(1).ints();
  for (size_t g = 0; g < res.output.num_rows(); ++g) {
    EXPECT_GE(years[g], 1992);
    EXPECT_LE(years[g], 1998);
    EXPECT_GE(months[g], 1);
    EXPECT_LE(months[g], 12);
  }
}

TEST_F(ConsumingTest, Q1bFiltersApply) {
  ConsumingSpec q1b = tpch::MakeQ1b(*db_, "MAIL", "NONE");
  const RidVec& rids = base_->lineage.input(0).backward.index().list(1);
  auto res = ConsumingOverRids(db_->lineitem, q1b, rids);
  // Captured consuming lineage only contains MAIL/NONE rows.
  const auto& modes = db_->lineitem.column(tpch::kLShipmode).strings();
  const auto& instr = db_->lineitem.column(tpch::kLShipinstruct).strings();
  for (size_t g = 0; g < res.backward.size(); ++g) {
    for (rid_t r : res.backward.list(g)) {
      ASSERT_EQ(modes[r], "MAIL");
      ASSERT_EQ(instr[r], "NONE");
    }
  }
}

TEST_F(ConsumingTest, Q1cChainsOverQ1b) {
  ConsumingSpec q1b = tpch::MakeQ1b(*db_, "SHIP", "COLLECT COD");
  const RidVec& rids = base_->lineage.input(0).backward.index().list(0);
  auto q1b_res = ConsumingOverRids(db_->lineitem, q1b, rids);
  if (q1b_res.output.num_rows() == 0) GTEST_SKIP();
  // Q1c uses Q1b as its base query: trace back through Q1b's lineage.
  ConsumingSpec q1c = tpch::MakeQ1c(*db_, "SHIP", "COLLECT COD");
  const RidVec& sub = q1b_res.backward.list(0);
  auto q1c_res = ConsumingOverRids(db_->lineitem, q1c, sub);
  EXPECT_GT(q1c_res.output.num_rows(), 0u);
  // Q1c adds l_tax (x100): all values in [0, 8].
  const auto& tax = q1c_res.output.column(2).ints();
  for (size_t g = 0; g < q1c_res.output.num_rows(); ++g) {
    EXPECT_GE(tax[g], 0);
    EXPECT_LE(tax[g], 8);
  }
}

TEST_F(ConsumingTest, DataSkippingMatchesIndexed) {
  // Re-run the base query with skip partitioning on the Q1b attributes.
  SPJAPushdown push;
  push.skip_cols = {tpch::kLShipmode, tpch::kLShipinstruct};
  auto skip_base = SPJAExec(*q1_, CaptureOptions::Inject(), &push);
  ASSERT_GT(skip_base.skip_dict.num_codes, 0u);

  for (const std::string& mode : {"MAIL", "RAIL"}) {
    for (const std::string& instr : {"NONE", "COLLECT COD"}) {
      ConsumingSpec q1b = tpch::MakeQ1b(*db_, mode, instr);
      uint32_t code = skip_base.skip_dict.CodeForString(
          mode + std::string("\x1f") + instr);
      ASSERT_NE(code, UINT32_MAX);
      for (rid_t oid = 0; oid < skip_base.output.num_rows(); ++oid) {
        auto skipping = ConsumingSkipping(db_->lineitem,
                                          skip_base.skip_index, oid, code,
                                          q1b);
        const RidVec& rids =
            base_->lineage.input(0).backward.index().list(oid);
        auto indexed = ConsumingOverRids(db_->lineitem, q1b, rids);
        ASSERT_EQ(GroupedRows(skipping.output, 2),
                  GroupedRows(indexed.output, 2))
            << mode << "/" << instr << " oid " << oid;
      }
    }
  }
}

TEST_F(ConsumingTest, SkipPartitionsCoverBackwardIndex) {
  SPJAPushdown push;
  push.skip_cols = {tpch::kLShipmode};
  auto skip_base = SPJAExec(*q1_, CaptureOptions::Inject(), &push);
  for (rid_t oid = 0; oid < skip_base.output.num_rows(); ++oid) {
    std::vector<rid_t> all;
    skip_base.skip_index.TraceAllInto(oid, &all);
    const RidVec& plain =
        base_->lineage.input(0).backward.index().list(oid);
    ASSERT_EQ(testing::Sorted(all), testing::Sorted(plain));
  }
}

TEST_F(ConsumingTest, AggPushdownCubeMatchesConsumingQuery) {
  // Push Q1a's (year, month) grouping into capture — here we use l_tax as
  // the cube dimension (Q1c's added group) for a single-column cube.
  SPJAPushdown push;
  push.cube_cols = {tpch::kLTax};
  push.cube_aggs = {AggSpec::Count("cnt"),
                    AggSpec::Sum(ScalarExpr::Col(tpch::kLQuantity), "sum_qty")};
  auto cube_base = SPJAExec(*q1_, CaptureOptions::Inject(), &push);
  ASSERT_TRUE(cube_base.cube.enabled());

  ConsumingSpec by_tax;
  by_tax.group_by = {GroupExpr::Scale100(tpch::kLTax, "l_tax_x100")};
  by_tax.aggs = push.cube_aggs;
  for (rid_t oid = 0; oid < cube_base.output.num_rows(); ++oid) {
    Table cube_table = cube_base.cube.GroupTable(oid);
    const RidVec& rids =
        base_->lineage.input(0).backward.index().list(oid);
    auto indexed = ConsumingOverRids(db_->lineitem, by_tax, rids);
    ASSERT_EQ(cube_table.num_rows(), indexed.output.num_rows());
    // Compare cell contents keyed by tax value.
    std::map<int64_t, std::pair<int64_t, double>> cube_cells, ref_cells;
    for (size_t i = 0; i < cube_table.num_rows(); ++i) {
      int64_t tax100 = static_cast<int64_t>(
          std::llround(std::get<double>(cube_table.GetValue(i, 0)) * 100));
      cube_cells[tax100] = {
          std::get<int64_t>(cube_table.GetValue(i, 1)),
          std::get<double>(cube_table.GetValue(i, 2))};
    }
    for (size_t i = 0; i < indexed.output.num_rows(); ++i) {
      ref_cells[std::get<int64_t>(indexed.output.GetValue(i, 0))] = {
          std::get<int64_t>(indexed.output.GetValue(i, 1)),
          std::get<double>(indexed.output.GetValue(i, 2))};
    }
    ASSERT_EQ(cube_cells.size(), ref_cells.size());
    for (const auto& [k, v] : ref_cells) {
      ASSERT_TRUE(cube_cells.count(k));
      ASSERT_EQ(cube_cells[k].first, v.first);
      ASSERT_NEAR(cube_cells[k].second, v.second, 1e-6);
    }
  }
}

TEST_F(ConsumingTest, SelectionPushdownGatesBackwardCapture) {
  SPJAPushdown push;
  push.sel_fact = {Predicate::Double(tpch::kLTax, CmpOp::kLt, 0.03)};
  auto res = SPJAExec(*q1_, CaptureOptions::Inject(), &push);
  const auto& tax = db_->lineitem.column(tpch::kLTax).doubles();
  const auto& bw = res.lineage.input(0).backward.index();
  size_t kept = 0;
  for (size_t g = 0; g < bw.size(); ++g) {
    for (rid_t r : bw.list(g)) {
      ASSERT_LT(tax[r], 0.03);
      ++kept;
    }
  }
  // Some rows filtered out of lineage but the query result is unchanged.
  size_t plain = 0;
  const auto& plain_bw = base_->lineage.input(0).backward.index();
  for (size_t g = 0; g < plain_bw.size(); ++g) plain += plain_bw.list(g).size();
  EXPECT_LT(kept, plain);
  EXPECT_EQ(GroupedRows(res.output, 2), GroupedRows(base_->output, 2));
}

TEST_F(ConsumingTest, LazyBackwardMatchesIndexBackward) {
  for (rid_t oid = 0; oid < base_->output.num_rows(); ++oid) {
    auto lazy = LazyBackwardRids(*q1_, base_->output, oid);
    const RidVec& idx = base_->lineage.input(0).backward.index().list(oid);
    ASSERT_EQ(testing::Sorted(lazy), testing::Sorted(idx));
  }
}

TEST_F(ConsumingTest, MaterializeRowsIsSecondaryIndexScan) {
  const RidVec& rids = base_->lineage.input(0).backward.index().list(0);
  std::vector<rid_t> vec(rids.begin(), rids.end());
  Table rows = MaterializeRows(db_->lineitem, vec);
  ASSERT_EQ(rows.num_rows(), vec.size());
  EXPECT_EQ(std::get<int64_t>(rows.GetValue(0, tpch::kLOrderkey)),
            std::get<int64_t>(
                db_->lineitem.GetValue(vec[0], tpch::kLOrderkey)));
}

}  // namespace
}  // namespace smoke
