// The unified lineage-consumption API: Trace plan nodes, TraceBuilder
// compilation, physical strategy choices, typed engine handles, and the
// bounds-validated lineage query core.
#include "query/trace_builder.h"

#include <random>

#include <gtest/gtest.h>

#include "core/smoke_engine.h"
#include "query/consuming.h"
#include "query/lazy.h"
#include "query/lineage_query.h"
#include "test_util.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

using testing::GroupedRows;
using testing::Sorted;

// ---------------------------------------------------------------------------
// TPC-H equivalence: the compiled consuming path must reproduce the legacy
// free-function results for Q1a/Q1b/Q1c under all four strategies.
// ---------------------------------------------------------------------------

class TraceEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new tpch::Database(tpch::Generate(0.01));
    q1_ = new SPJAQuery(tpch::MakeQ1(*db_));
    base_ = new SPJAResult(SPJAExec(*q1_, CaptureOptions::Inject()));

    SPJAPushdown skip;
    skip.skip_cols = {tpch::kLShipmode, tpch::kLShipinstruct};
    skip_base_ = new SPJAResult(SPJAExec(*q1_, CaptureOptions::Inject(), &skip));

    SPJAPushdown cube;
    cube.cube_cols = {tpch::kLTax};
    cube.cube_aggs = {
        AggSpec::Count("cnt"),
        AggSpec::Sum(ScalarExpr::Col(tpch::kLQuantity), "sum_qty")};
    cube_base_ = new SPJAResult(SPJAExec(*q1_, CaptureOptions::Inject(), &cube));
  }
  static void TearDownTestSuite() {
    delete cube_base_;
    delete skip_base_;
    delete base_;
    delete q1_;
    delete db_;
  }

  static TraceSource BaseSource() {
    return TraceSource::FromSpja(*q1_, *base_, "q1");
  }

  static const RidVec& BackwardList(rid_t oid) {
    return base_->lineage.input(0).backward.index().list(oid);
  }

  static tpch::Database* db_;
  static SPJAQuery* q1_;
  static SPJAResult* base_;
  static SPJAResult* skip_base_;
  static SPJAResult* cube_base_;
};
tpch::Database* TraceEquivalenceTest::db_ = nullptr;
SPJAQuery* TraceEquivalenceTest::q1_ = nullptr;
SPJAResult* TraceEquivalenceTest::base_ = nullptr;
SPJAResult* TraceEquivalenceTest::skip_base_ = nullptr;
SPJAResult* TraceEquivalenceTest::cube_base_ = nullptr;

TEST_F(TraceEquivalenceTest, Q1aIndexedMatchesLegacy) {
  ConsumingSpec q1a = tpch::MakeQ1a(*db_);
  for (rid_t oid = 0; oid < base_->output.num_rows(); ++oid) {
    PlanResult pr;
    LineageQuery compiled;
    TraceBuilder b = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    b.Consuming(q1a).Strategy(TraceStrategy::kIndexed);
    ASSERT_TRUE(b.Compile(&compiled).ok());
    EXPECT_EQ(compiled.strategy(), TraceStrategy::kIndexed);
    ASSERT_TRUE(compiled.Execute(CaptureOptions::Inject(), &pr).ok());

    auto legacy = ConsumingOverRids(db_->lineitem, q1a, BackwardList(oid));
    ASSERT_EQ(GroupedRows(pr.output, 2), GroupedRows(legacy.output, 2))
        << "group " << oid;
    // Row-for-row: the compiled pipeline preserves first-encounter order.
    ASSERT_EQ(pr.output.num_rows(), legacy.output.num_rows());
    for (size_t r = 0; r < pr.output.num_rows(); ++r) {
      ASSERT_EQ(testing::RowKey(pr.output, static_cast<rid_t>(r)),
                testing::RowKey(legacy.output, static_cast<rid_t>(r)));
    }
    // The consuming query's own composed lineage matches the legacy
    // backward lists (same rids, same witness order).
    int rel = pr.lineage.FindInput("lineitem");
    ASSERT_GE(rel, 0);
    const LineageIndex& bw = pr.lineage.input(static_cast<size_t>(rel)).backward;
    ASSERT_EQ(bw.size(), legacy.backward.size());
    std::vector<rid_t> got;
    for (size_t g = 0; g < legacy.backward.size(); ++g) {
      got.clear();
      bw.TraceInto(static_cast<rid_t>(g), &got);
      const RidVec& want = legacy.backward.list(g);
      ASSERT_EQ(got, std::vector<rid_t>(want.begin(), want.end()))
          << "group " << oid << " cell " << g;
    }
  }
}

TEST_F(TraceEquivalenceTest, Q1bLazyMatchesLegacy) {
  ConsumingSpec q1b = tpch::MakeQ1b(*db_, "MAIL", "NONE");
  for (rid_t oid = 0; oid < base_->output.num_rows(); ++oid) {
    LineageQuery compiled;
    TraceBuilder b = TraceBuilder::Backward(BaseSource(), "lineitem", {oid});
    b.Consuming(q1b).Strategy(TraceStrategy::kLazy);
    ASSERT_TRUE(b.Compile(&compiled).ok());
    EXPECT_EQ(compiled.strategy(), TraceStrategy::kLazy);
    PlanResult pr;
    ASSERT_TRUE(compiled.Execute(CaptureOptions::Inject(), &pr).ok());

    auto preds = LazyBackwardPredicates(*q1_, base_->output, oid);
    auto legacy = ConsumingLazy(db_->lineitem, preds, q1b);
    ASSERT_EQ(GroupedRows(pr.output, 2), GroupedRows(legacy.output, 2))
        << "group " << oid;
  }
}

TEST_F(TraceEquivalenceTest, Q1bSkippingMatchesLegacy) {
  ASSERT_GT(skip_base_->skip_dict.num_codes, 0u);
  TraceSource src = TraceSource::FromSpja(*q1_, *skip_base_, "q1skip");
  for (const std::string mode : {"MAIL", "RAIL"}) {
    for (const std::string instr : {"NONE", "COLLECT COD"}) {
      ConsumingSpec q1b = tpch::MakeQ1b(*db_, mode, instr);
      uint32_t code = skip_base_->skip_dict.CodeForString(
          mode + std::string("\x1f") + instr);
      ASSERT_NE(code, UINT32_MAX);
      for (rid_t oid = 0; oid < skip_base_->output.num_rows(); ++oid) {
        LineageQuery compiled;
        TraceBuilder b = TraceBuilder::Backward(src, "lineitem", {oid});
        b.Consuming(q1b).Strategy(TraceStrategy::kSkipping);
        ASSERT_TRUE(b.Compile(&compiled).ok());
        EXPECT_EQ(compiled.strategy(), TraceStrategy::kSkipping);
        PlanResult pr;
        ASSERT_TRUE(compiled.Execute(CaptureOptions::Inject(), &pr).ok());

        auto legacy = ConsumingSkipping(db_->lineitem, skip_base_->skip_index,
                                        oid, code, q1b);
        ASSERT_EQ(GroupedRows(pr.output, 2), GroupedRows(legacy.output, 2))
            << mode << "/" << instr << " oid " << oid;
      }
    }
  }
}

TEST_F(TraceEquivalenceTest, AutoResolvesSkippingFromArtifacts) {
  ConsumingSpec q1b = tpch::MakeQ1b(*db_, "MAIL", "NONE");
  TraceSource src = TraceSource::FromSpja(*q1_, *skip_base_, "q1skip");
  LineageQuery compiled;
  TraceBuilder b = TraceBuilder::Backward(src, "lineitem", {0});
  b.Consuming(q1b);  // strategy stays kAuto
  ASSERT_TRUE(b.Compile(&compiled).ok());
  EXPECT_EQ(compiled.strategy(), TraceStrategy::kSkipping);

  // Without matching artifacts, auto falls back to indexed.
  LineageQuery compiled2;
  TraceBuilder b2 = TraceBuilder::Backward(BaseSource(), "lineitem", {0});
  b2.Consuming(q1b);
  ASSERT_TRUE(b2.Compile(&compiled2).ok());
  EXPECT_EQ(compiled2.strategy(), TraceStrategy::kIndexed);
}

TEST_F(TraceEquivalenceTest, Q1cCubeMatchesIndexed) {
  ASSERT_TRUE(cube_base_->cube.enabled());
  ConsumingSpec by_tax;
  by_tax.group_by = {GroupExpr::Scale100(tpch::kLTax, "l_tax_x100")};
  by_tax.aggs = {AggSpec::Count("cnt"),
                 AggSpec::Sum(ScalarExpr::Col(tpch::kLQuantity), "sum_qty")};
  TraceSource src = TraceSource::FromSpja(*q1_, *cube_base_, "q1cube");
  for (rid_t oid = 0; oid < cube_base_->output.num_rows(); ++oid) {
    LineageQuery compiled;
    TraceBuilder b = TraceBuilder::Backward(src, "lineitem", {oid});
    b.Consuming(by_tax).Strategy(TraceStrategy::kCube);
    ASSERT_TRUE(b.Compile(&compiled).ok());
    EXPECT_EQ(compiled.strategy(), TraceStrategy::kCube);
    PlanResult pr;
    ASSERT_TRUE(compiled.Execute(CaptureOptions::Inject(), &pr).ok());

    auto legacy = ConsumingOverRids(db_->lineitem, by_tax, BackwardList(oid));
    ASSERT_EQ(GroupedRows(pr.output, 1), GroupedRows(legacy.output, 1))
        << "group " << oid;
  }
}

TEST_F(TraceEquivalenceTest, CubeResultOutlivesCompiledQuery) {
  // Regression: the reshaped cube table is owned by the compiled query; a
  // retained PlanResult must keep it alive after builder + compiled query
  // are gone (ASan flags the dangling borrow otherwise).
  ConsumingSpec by_tax;
  by_tax.group_by = {GroupExpr::Scale100(tpch::kLTax, "l_tax_x100")};
  by_tax.aggs = {AggSpec::Count("cnt"),
                 AggSpec::Sum(ScalarExpr::Col(tpch::kLQuantity), "sum_qty")};
  PlanResult pr;
  {
    TraceBuilder b = TraceBuilder::Backward(
        TraceSource::FromSpja(*q1_, *cube_base_, "q1cube"), "lineitem", {0});
    b.Consuming(by_tax).Strategy(TraceStrategy::kCube);
    ASSERT_TRUE(b.Execute(CaptureOptions::Inject(), &pr).ok());
  }
  ASSERT_EQ(pr.owned_tables.size(), 1u);
  ASSERT_GT(pr.lineage.num_inputs(), 0u);
  const TableLineage& tl = pr.lineage.input(0);
  ASSERT_NE(tl.table, nullptr);
  EXPECT_EQ(tl.table->num_rows(), pr.output.num_rows());
  Table rows;
  EXPECT_TRUE(MaterializeRowsChecked(*tl.table, {0}, &rows).ok());
}

TEST_F(TraceEquivalenceTest, SkippingRequiresCoveredRelation) {
  // Q12 joins orders into lineitem; partition the *fact* backward lists by
  // l_orderkey (column 0 — the same index as o_orderkey, the coincidence
  // that used to fool code resolution for the orders relation).
  SPJAQuery q12 = tpch::MakeQ12(*db_);
  SPJAPushdown push;
  push.skip_cols = {tpch::kLOrderkey};
  auto res = SPJAExec(q12, CaptureOptions::Inject(), &push);
  ASSERT_GT(res.skip_dict.num_codes, 0u);
  TraceSource src = TraceSource::FromSpja(q12, res, "q12");
  const int64_t key = db_->lineitem.column(tpch::kLOrderkey).ints()[0];

  // Explicit skipping on a relation the skip index does not cover fails...
  LineageQuery lq;
  TraceBuilder bad = TraceBuilder::Backward(src, "orders", {0});
  bad.Filter(Predicate::Int(tpch::kOOrderkey, CmpOp::kEq, key))
      .GroupBy(GroupExpr::Raw(tpch::kOOrderkey, "k"))
      .Agg(AggSpec::Count("n"))
      .Strategy(TraceStrategy::kSkipping);
  EXPECT_FALSE(bad.Compile(&lq).ok());

  // ...and auto falls back to indexed instead of scanning fact partitions
  // as orders rows.
  TraceBuilder auto_b = TraceBuilder::Backward(src, "orders", {0});
  auto_b.Filter(Predicate::Int(tpch::kOOrderkey, CmpOp::kEq, key))
      .GroupBy(GroupExpr::Raw(tpch::kOOrderkey, "k"))
      .Agg(AggSpec::Count("n"));
  ASSERT_TRUE(auto_b.Compile(&lq).ok());
  EXPECT_EQ(lq.strategy(), TraceStrategy::kIndexed);

  // On the covered (fact) relation, skipping still resolves.
  TraceBuilder good = TraceBuilder::Backward(src, "lineitem", {0});
  good.Filter(Predicate::Int(tpch::kLOrderkey, CmpOp::kEq, key))
      .GroupBy(GroupExpr::Raw(tpch::kLOrderkey, "k"))
      .Agg(AggSpec::Count("n"));
  ASSERT_TRUE(good.Compile(&lq).ok());
  EXPECT_EQ(lq.strategy(), TraceStrategy::kSkipping);
}

TEST_F(TraceEquivalenceTest, Q1cChainMatchesLegacyUnderEveryStrategy) {
  // Hop 1 (Q1b) under each strategy that captures fine-grained lineage;
  // hop 2 (Q1c) always consumes the retained hop-1 plan's composed lineage.
  ConsumingSpec q1b = tpch::MakeQ1b(*db_, "SHIP", "COLLECT COD");
  ConsumingSpec q1c = tpch::MakeQ1c(*db_, "SHIP", "COLLECT COD");
  const rid_t oid = 0;

  auto legacy_q1b = ConsumingOverRids(db_->lineitem, q1b, BackwardList(oid));
  if (legacy_q1b.output.num_rows() == 0) GTEST_SKIP();
  const RidVec& legacy_sub = legacy_q1b.backward.list(0);
  auto legacy_q1c = ConsumingOverRids(db_->lineitem, q1c, legacy_sub);

  struct Case {
    TraceStrategy strategy;
    TraceSource src;
  };
  std::vector<Case> cases = {
      {TraceStrategy::kIndexed, BaseSource()},
      {TraceStrategy::kLazy, BaseSource()},
      {TraceStrategy::kSkipping,
       TraceSource::FromSpja(*q1_, *skip_base_, "q1skip")},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(TraceStrategyName(c.strategy));
    PlanResult hop1;
    TraceBuilder b1 = TraceBuilder::Backward(c.src, "lineitem", {oid});
    b1.Consuming(q1b).Strategy(c.strategy);
    ASSERT_TRUE(b1.Execute(CaptureOptions::Inject(), &hop1).ok());
    ASSERT_EQ(GroupedRows(hop1.output, 2), GroupedRows(legacy_q1b.output, 2));

    // The chain: trace backward through the retained hop-1 plan.
    PlanResult hop2;
    TraceBuilder b2 = TraceBuilder::Backward(
        TraceSource::FromPlan(hop1, "q1b"), "lineitem", {0});
    b2.Consuming(q1c);
    ASSERT_TRUE(b2.Execute(CaptureOptions::Inject(), &hop2).ok());
    ASSERT_EQ(GroupedRows(hop2.output, 3), GroupedRows(legacy_q1c.output, 3));
  }
}

TEST_F(TraceEquivalenceTest, EngineConsumingQueriesChainOverPlans) {
  tpch::Database db = tpch::Generate(0.005);
  SmokeEngine eng;
  ASSERT_TRUE(eng.CreateTable("lineitem", std::move(db.lineitem)).ok());
  const Table* lineitem = nullptr;
  ASSERT_TRUE(eng.GetTable("lineitem", &lineitem).ok());
  SPJAQuery q1 = tpch::MakeQ1(*db_);
  q1.fact = lineitem;
  ASSERT_TRUE(eng.ExecuteQuery("q1", q1).ok());

  ConsumingSpec q1a = tpch::MakeQ1a(*db_);
  TraceSource q1_src;
  ASSERT_TRUE(eng.MakeTraceSource("q1", &q1_src).ok());
  TraceBuilder q1a_query =
      TraceBuilder::Backward(std::move(q1_src), "lineitem", {0});
  q1a_query.Consuming(q1a);
  ASSERT_TRUE(eng.ExecuteTraceQuery("q1a", q1a_query).ok());
  const Table* out = nullptr;
  ASSERT_TRUE(eng.GetResult("q1a", &out).ok());
  EXPECT_GT(out->num_rows(), 0u);

  // The retained consuming result is an ordinary plan: string-keyed lineage
  // queries and further consuming chains work against it.
  std::vector<rid_t> rids;
  ASSERT_TRUE(eng.Backward("q1a", "lineitem", {0}, &rids).ok());
  EXPECT_GT(rids.size(), 0u);

  ConsumingSpec q1c = tpch::MakeQ1c(*db_, "SHIP", "COLLECT COD");
  TraceSource q1a_src;
  ASSERT_TRUE(eng.MakeTraceSource("q1a", &q1a_src).ok());
  TraceBuilder q1c_query =
      TraceBuilder::Backward(std::move(q1a_src), "lineitem", {0});
  q1c_query.Consuming(q1c);
  Status st = eng.ExecuteTraceQuery("q1c", q1c_query);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(eng.GetResult("q1c", &out).ok());
}

// ---------------------------------------------------------------------------
// Typed engine handles.
// ---------------------------------------------------------------------------

TEST(TraceHandleTest, TypedTraceMatchesStringShims) {
  tpch::Database db = tpch::Generate(0.005);
  SmokeEngine eng;
  ASSERT_TRUE(eng.CreateTable("lineitem", std::move(db.lineitem)).ok());
  const Table* lineitem = nullptr;
  ASSERT_TRUE(eng.GetTable("lineitem", &lineitem).ok());
  SPJAQuery q1 = tpch::MakeQ1(db);
  q1.fact = lineitem;  // rebind to the engine-owned relation
  ASSERT_TRUE(eng.ExecuteQuery("q1", q1).ok());

  TraceResult t;
  ASSERT_TRUE(eng.TraceBackward("q1", "lineitem", {0}, &t).ok());
  std::vector<rid_t> rids;
  ASSERT_TRUE(eng.Backward("q1", "lineitem", {0}, &rids).ok());
  EXPECT_EQ(t.rids, rids);
  EXPECT_EQ(t.rows.num_rows(), rids.size());
  EXPECT_EQ(t.rows.num_columns(), lineitem->num_columns());

  Table rows;
  ASSERT_TRUE(eng.BackwardRows("q1", "lineitem", {0}, &rows).ok());
  EXPECT_EQ(testing::RowSet(t.rows), testing::RowSet(rows));

  // The handle is chainable: forward over its own plan round-trips.
  TraceResult fwd;
  ASSERT_TRUE(eng.TraceForward("q1", "lineitem", t.rids, &fwd).ok());
  EXPECT_EQ(fwd.rids, std::vector<rid_t>{0});

  // Typed trace of an unknown query or relation fails cleanly.
  EXPECT_FALSE(eng.TraceBackward("nope", "lineitem", {0}, &t).ok());
  EXPECT_FALSE(eng.TraceBackward("q1", "nope", {0}, &t).ok());
  EXPECT_FALSE(eng.TraceBackward("q1", "lineitem", {999999}, &t).ok());
}

// ---------------------------------------------------------------------------
// Property: forward ∘ backward round-trips over random plan DAGs through
// the Trace API, for random rid subsets.
// ---------------------------------------------------------------------------

Table MakePropertyTable(std::mt19937* rng, size_t n) {
  Schema s;
  s.AddField("id", DataType::kInt64);
  s.AddField("a", DataType::kInt64);
  s.AddField("b", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  std::uniform_int_distribution<int64_t> da(0, 7), db(0, 19);
  std::uniform_real_distribution<double> dv(0.0, 100.0);
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({static_cast<int64_t>(i), da(*rng), db(*rng), dv(*rng)});
  }
  return t;
}

/// Builds one of three random plan shapes over `t`: select→group-by,
/// select→group-by→group-by (rollup), or bag-union of two selects→group-by.
LogicalPlan MakeRandomPlan(std::mt19937* rng, const Table* t) {
  PlanBuilder b;
  std::uniform_int_distribution<int> shape(0, 2), cut(0, 19);
  GroupBySpec ga;
  ga.keys = {1};  // a
  ga.aggs = {AggSpec::Count("cnt"),
             AggSpec::Sum(ScalarExpr::Col(3), "sum_v")};
  int root = -1;
  switch (shape(*rng)) {
    case 0: {
      int scan = b.Scan(t, "base");
      int sel = b.Select(scan, {Predicate::Int(2, CmpOp::kLe, cut(*rng))});
      root = b.GroupBy(sel, ga);
      break;
    }
    case 1: {
      int scan = b.Scan(t, "base");
      int sel = b.Select(scan, {Predicate::Int(2, CmpOp::kGe, cut(*rng))});
      int gb = b.GroupBy(sel, ga);
      GroupBySpec rollup;
      rollup.keys = {1};  // cnt (group-by output: a, cnt, sum_v)
      rollup.aggs = {AggSpec::Count("n_groups")};
      root = b.GroupBy(gb, rollup);
      break;
    }
    default: {
      int scan = b.Scan(t, "base");
      int s1 = b.Select(scan, {Predicate::Int(2, CmpOp::kLe, cut(*rng))});
      int s2 = b.Select(scan, {Predicate::Int(2, CmpOp::kGe, cut(*rng))});
      int u = b.SetOp(SetOpKind::kBagUnion, s1, s2, std::vector<int>{});
      root = b.GroupBy(u, ga);
      break;
    }
  }
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(root, &plan).ok());
  return plan;
}

TEST(TracePropertyTest, ForwardBackwardRoundTripsOverRandomPlans) {
  std::mt19937 rng(20180717);
  for (int trial = 0; trial < 12; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Table t = MakePropertyTable(&rng, 4000);
    LogicalPlan plan = MakeRandomPlan(&rng, &t);
    PlanResult pr;
    ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &pr).ok());
    if (pr.output.num_rows() == 0) continue;
    TraceSource src = TraceSource::FromPlan(pr, "plan");

    // Random output subset O'.
    std::vector<rid_t> subset;
    std::uniform_int_distribution<rid_t> pick(
        0, static_cast<rid_t>(pr.output.num_rows() - 1));
    std::uniform_int_distribution<size_t> count(1, 5);
    size_t k = count(rng);
    for (size_t i = 0; i < k; ++i) subset.push_back(pick(rng));

    PlanResult back;
    ASSERT_TRUE(TraceBuilder::Backward(src, "base", subset)
                    .Dedup(true)
                    .Execute(CaptureOptions::Inject(), &back)
                    .ok());
    int rc = back.output.ColumnIndex(kTraceRidColumn);
    ASSERT_GE(rc, 0);
    const auto& bvals = back.output.column(static_cast<size_t>(rc)).ints();
    std::vector<rid_t> b_rids(bvals.begin(), bvals.end());

    if (b_rids.empty()) continue;
    PlanResult fwd;
    ASSERT_TRUE(TraceBuilder::Forward(src, "base", b_rids)
                    .Execute(CaptureOptions::Inject(), &fwd)
                    .ok());
    rc = fwd.output.ColumnIndex(kTraceRidColumn);
    ASSERT_GE(rc, 0);
    const auto& fvals = fwd.output.column(static_cast<size_t>(rc)).ints();
    std::set<rid_t> f_set(fvals.begin(), fvals.end());

    // Every output with nonempty backward lineage must be recovered.
    for (rid_t o : subset) {
      std::vector<rid_t> alone;
      ASSERT_TRUE(
          BackwardRidsChecked(pr.lineage, "base", {o}, true, &alone).ok());
      if (!alone.empty()) {
        EXPECT_TRUE(f_set.count(o)) << "output " << o << " lost";
      }
    }
    // And backward of the recovered outputs covers the traced inputs.
    std::vector<rid_t> f_rids(f_set.begin(), f_set.end());
    std::vector<rid_t> back2;
    ASSERT_TRUE(
        BackwardRidsChecked(pr.lineage, "base", f_rids, true, &back2).ok());
    std::set<rid_t> back2_set(back2.begin(), back2.end());
    for (rid_t r : b_rids) {
      EXPECT_TRUE(back2_set.count(r)) << "input " << r << " lost";
    }
  }
}

// ---------------------------------------------------------------------------
// Bounds validation (regression: out-of-range rids used to index OOB).
// ---------------------------------------------------------------------------

TEST(LineageBoundsTest, CheckedQueriesRejectOutOfRangeRids) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  Table t(s);
  for (int64_t i = 0; i < 10; ++i) t.AppendRow({i % 3});
  GroupBySpec spec;
  spec.keys = {0};
  spec.aggs = {AggSpec::Count("cnt")};
  auto res = GroupByExec(t, "t", spec, CaptureOptions::Inject());

  std::vector<rid_t> out;
  EXPECT_FALSE(
      BackwardRidsChecked(res.lineage, "t", {99}, false, &out).ok());
  EXPECT_FALSE(ForwardRidsChecked(res.lineage, "t", {10}, true, &out).ok());
  EXPECT_FALSE(
      BackwardRidsChecked(res.lineage, "missing", {0}, false, &out).ok());
  Table rows;
  EXPECT_FALSE(MaterializeRowsChecked(t, {10}, &rows).ok());
  EXPECT_FALSE(MaterializeRowsChecked(t, {0, 1, 12345}, &rows).ok());

  // In-range queries still work, and the boundary is exact.
  EXPECT_TRUE(BackwardRidsChecked(res.lineage, "t", {2}, false, &out).ok());
  EXPECT_FALSE(BackwardRidsChecked(res.lineage, "t", {3}, false, &out).ok());
  EXPECT_TRUE(MaterializeRowsChecked(t, {9}, &rows).ok());

  // Trace plan nodes report the same errors through Status.
  PlanResult base;
  PlanBuilder pb;
  int gb = pb.GroupBy(pb.Scan(&t, "t"), spec);
  LogicalPlan plan;
  ASSERT_TRUE(pb.Build(gb, &plan).ok());
  ASSERT_TRUE(ExecutePlan(plan, CaptureOptions::Inject(), &base).ok());
  PlanResult pr;
  EXPECT_FALSE(TraceBuilder::Backward(TraceSource::FromPlan(base), "t", {99})
                   .Execute(CaptureOptions::Inject(), &pr)
                   .ok());
}

}  // namespace
}  // namespace smoke
