// Engine-level tests of the compressed lineage store (lineage/store/):
//  - backward/forward/TraceBuilder results are bit-identical across codecs
//    {raw, range, bitmap, adaptive} and thread counts {1, 7} on the
//    zipf / ontime / TPC-H workload shapes the memory bench uses;
//  - the adaptive codec compresses the contiguous-selection series >= 4x;
//  - lineage_budget_bytes: capture succeeds under budget, stats stay under
//    budget, and traces on evicted queries answer via the lazy rescan;
//  - DropResult/DropTable/ReplaceTable release lineage store accounting
//    (LineageMemoryStats returns to baseline after drops).
#include <gtest/gtest.h>

#include <vector>

#include "core/smoke_engine.h"
#include "test_util.h"
#include "workloads/ontime.h"
#include "workloads/tpch.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

constexpr LineageCodec kAllCodecs[] = {
    LineageCodec::kRaw, LineageCodec::kRange, LineageCodec::kBitmap,
    LineageCodec::kAdaptive};
constexpr int kThreadCounts[] = {1, 7};

CaptureOptions Opts(LineageCodec codec, int threads) {
  CaptureOptions o = CaptureOptions::Inject();
  o.lineage_codec = codec;
  o.num_threads = threads;
  return o;
}

size_t StatBytes(const SmokeEngine& engine, const std::string& name) {
  for (const auto& q : engine.LineageMemoryStats().queries) {
    if (q.name == name) return q.bytes;
  }
  return 0;
}

/// One trace round over a retained query: backward (dup-preserving and
/// deduplicated), forward, and a typed TraceBackward — everything the
/// bit-identity claim covers.
struct TraceRound {
  std::vector<rid_t> bw_dups;
  std::vector<rid_t> bw_dedup;
  std::vector<rid_t> fw;
  std::vector<rid_t> trace_rids;
  std::multiset<std::string> trace_rows;

  static TraceRound Of(const SmokeEngine& engine, const std::string& query,
                       const std::string& relation,
                       const std::vector<rid_t>& out_rids,
                       const std::vector<rid_t>& in_rids) {
    TraceRound t;
    EXPECT_TRUE(
        engine.Backward(query, relation, out_rids, &t.bw_dups, false).ok());
    EXPECT_TRUE(
        engine.Backward(query, relation, out_rids, &t.bw_dedup, true).ok());
    EXPECT_TRUE(engine.Forward(query, relation, in_rids, &t.fw).ok());
    TraceResult tr;
    EXPECT_TRUE(engine.TraceBackward(query, relation, out_rids, &tr).ok());
    t.trace_rids = tr.rids;
    t.trace_rows = testing::RowSet(tr.rows);
    return t;
  }

  void ExpectEq(const TraceRound& ref, const std::string& what) const {
    EXPECT_EQ(bw_dups, ref.bw_dups) << what;
    EXPECT_EQ(bw_dedup, ref.bw_dedup) << what;
    EXPECT_EQ(fw, ref.fw) << what;
    EXPECT_EQ(trace_rids, ref.trace_rids) << what;
    EXPECT_EQ(trace_rows, ref.trace_rows) << what;
  }
};

// ---- bit-identity across codecs and thread counts ----

/// Contiguous selection over the zipf table (the clustered series): one
/// range predicate keeps rids [5000, 15000), so backward/forward arrays are
/// single runs — the codec's best case, and the >= 4x acceptance series.
TEST(LineageStoreTest, ZipfContiguousSelectionBitIdentical) {
  Table zipf = MakeZipfTable(20000, 50, 1.0);

  const std::vector<rid_t> outs = {0, 1, 2, 9999, 5000};
  const std::vector<rid_t> ins = {5000, 5001, 14999, 0, 19999};

  TraceRound ref;
  size_t raw_bytes = 0, adaptive_bytes = 0;
  bool have_ref = false;
  for (LineageCodec codec : kAllCodecs) {
    for (int threads : kThreadCounts) {
      SmokeEngine engine;
      ASSERT_TRUE(engine.CreateTable("zipf", zipf).ok());
      const Table* t = nullptr;
      ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
      PlanBuilder b;
      int scan = b.Scan(t, "zipf");
      int sel = b.Select(
          scan, {Predicate::Int(zipf_table::kId, CmpOp::kGe, 5000),
                 Predicate::Int(zipf_table::kId, CmpOp::kLt, 15000)});
      LogicalPlan plan;
      ASSERT_TRUE(b.Build(sel, &plan).ok());
      ASSERT_TRUE(engine.ExecutePlan("sel", plan, Opts(codec, threads)).ok());

      TraceRound got = TraceRound::Of(engine, "sel", "zipf", outs, ins);
      if (!have_ref) {
        ref = got;
        have_ref = true;
      } else {
        got.ExpectEq(ref, std::string("codec=") + LineageCodecName(codec) +
                              " threads=" + std::to_string(threads));
      }
      if (threads == 1) {
        if (codec == LineageCodec::kRaw) raw_bytes = StatBytes(engine, "sel");
        if (codec == LineageCodec::kAdaptive) {
          adaptive_bytes = StatBytes(engine, "sel");
        }
      }
    }
  }
  // The acceptance floor: adaptive encoding cuts the contiguous-selection
  // series' lineage memory by at least 4x vs raw.
  ASSERT_GT(raw_bytes, 0u);
  ASSERT_GT(adaptive_bytes, 0u);
  EXPECT_GE(raw_bytes, 4 * adaptive_bytes)
      << "raw=" << raw_bytes << " adaptive=" << adaptive_bytes;
}

/// Zipf group-by through the SPJA facade (sorted clustered postings), with
/// a consuming query stacked on the encoded indexes.
TEST(LineageStoreTest, ZipfGroupByBitIdenticalAndConsuming) {
  Table zipf = MakeZipfTable(12000, 40, 1.0);
  SPJAQuery query;
  query.fact_name = "zipf";
  query.group_by = {ColRef::Fact(zipf_table::kZ)};
  query.aggs = {AggSpec::Count("cnt"),
                AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};

  const std::vector<rid_t> outs = {0, 3, 7};
  const std::vector<rid_t> ins = {0, 17, 4242, 11999};

  TraceRound ref;
  std::map<std::string, std::string> consuming_ref;
  bool have_ref = false;
  for (LineageCodec codec : kAllCodecs) {
    for (int threads : kThreadCounts) {
      SmokeEngine engine;
      ASSERT_TRUE(engine.CreateTable("zipf", zipf).ok());
      const Table* t = nullptr;
      ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
      query.fact = t;
      ASSERT_TRUE(
          engine.ExecuteQuery("gb", query, Opts(codec, threads)).ok());

      TraceRound got = TraceRound::Of(engine, "gb", "zipf", outs, ins);
      // A consuming query over the encoded backward index: regroup group
      // 0's rows by id parity-ish derived key.
      TraceSource src;
      ASSERT_TRUE(engine.MakeTraceSource("gb", &src).ok());
      PlanResult consuming;
      ASSERT_TRUE(TraceBuilder::Backward(src, "zipf", {0})
                      .Filter(Predicate::Double(zipf_table::kV, CmpOp::kGe,
                                                25.0))
                      .GroupBy(GroupExpr::Raw(zipf_table::kZ, "z"))
                      .Agg(AggSpec::Count("cnt"))
                      .Execute(CaptureOptions::Inject(), &consuming)
                      .ok());
      auto consuming_rows = testing::GroupedRows(consuming.output, 1);

      if (!have_ref) {
        ref = got;
        consuming_ref = consuming_rows;
        have_ref = true;
      } else {
        const std::string what = std::string("codec=") +
                                 LineageCodecName(codec) +
                                 " threads=" + std::to_string(threads);
        got.ExpectEq(ref, what);
        EXPECT_EQ(consuming_rows, consuming_ref) << what;
      }
    }
  }
}

/// Ontime crossfilter shape: group flights by carrier via the plan API.
TEST(LineageStoreTest, OntimeGroupByBitIdentical) {
  Table flights = ontime::Generate(8000);
  GroupBySpec spec;
  spec.keys = {ontime::kCarrier};
  spec.aggs = {AggSpec::Count("cnt")};

  const std::vector<rid_t> outs = {0, 1, 5};
  const std::vector<rid_t> ins = {0, 123, 7999};

  TraceRound ref;
  bool have_ref = false;
  for (LineageCodec codec : kAllCodecs) {
    for (int threads : kThreadCounts) {
      SmokeEngine engine;
      ASSERT_TRUE(engine.CreateTable("flights", flights).ok());
      const Table* t = nullptr;
      ASSERT_TRUE(engine.GetTable("flights", &t).ok());
      PlanBuilder b;
      int root = b.GroupBy(b.Scan(t, "flights"), spec);
      LogicalPlan plan;
      ASSERT_TRUE(b.Build(root, &plan).ok());
      ASSERT_TRUE(engine.ExecutePlan("bars", plan, Opts(codec, threads)).ok());
      TraceRound got = TraceRound::Of(engine, "bars", "flights", outs, ins);
      if (!have_ref) {
        ref = got;
        have_ref = true;
      } else {
        got.ExpectEq(ref, std::string("codec=") + LineageCodecName(codec) +
                              " threads=" + std::to_string(threads));
      }
    }
  }
}

/// Join + set-op plan across codecs: gids ⋈ zipf probe lineage (both
/// sides) and a bag-union DAG on top, exercising the 1:N join indexes and
/// merged-path composition under every codec.
TEST(LineageStoreTest, JoinAndSetOpBitIdentical) {
  Table zipf = MakeZipfTable(6000, 25, 1.0);
  Table gids = MakeGidsTable(25);

  const std::vector<rid_t> outs = {0, 1, 2, 3};
  const std::vector<rid_t> zipf_ins = {0, 100, 5999};
  const std::vector<rid_t> gid_ins = {0, 5, 24};

  TraceRound zref, gref;
  bool have_ref = false;
  for (LineageCodec codec : kAllCodecs) {
    for (int threads : kThreadCounts) {
      SmokeEngine engine;
      ASSERT_TRUE(engine.CreateTable("zipf", zipf).ok());
      ASSERT_TRUE(engine.CreateTable("gids", gids).ok());
      const Table* zt = nullptr;
      const Table* gt = nullptr;
      ASSERT_TRUE(engine.GetTable("zipf", &zt).ok());
      ASSERT_TRUE(engine.GetTable("gids", &gt).ok());

      PlanBuilder b;
      int build = b.Scan(gt, "gids");
      int probe = b.Scan(zt, "zipf");
      JoinSpec js;
      js.left_key = 0;  // gids.id
      js.right_key = zipf_table::kZ;
      js.pk_build = true;
      int join = b.HashJoin(build, probe, js);
      int lo = b.Select(join, {Predicate::Int(0, CmpOp::kLe, 12)});
      int hi = b.Select(join, {Predicate::Int(0, CmpOp::kGt, 12)});
      int root = b.SetOp(SetOpKind::kBagUnion, lo, hi, std::vector<int>{});
      LogicalPlan plan;
      ASSERT_TRUE(b.Build(root, &plan).ok());
      ASSERT_TRUE(engine.ExecutePlan("dag", plan, Opts(codec, threads)).ok());

      TraceRound zgot = TraceRound::Of(engine, "dag", "zipf", outs, zipf_ins);
      TraceRound ggot = TraceRound::Of(engine, "dag", "gids", outs, gid_ins);
      if (!have_ref) {
        zref = zgot;
        gref = ggot;
        have_ref = true;
      } else {
        const std::string what = std::string("codec=") +
                                 LineageCodecName(codec) +
                                 " threads=" + std::to_string(threads);
        zgot.ExpectEq(zref, what + " (zipf)");
        ggot.ExpectEq(gref, what + " (gids)");
      }
    }
  }
}

/// TPC-H Q1 (selection + group-by over lineitem) across codecs, plus the
/// skipping strategy over a frozen (compressed) partitioned index.
TEST(LineageStoreTest, TpchQ1AndSkippingBitIdentical) {
  tpch::Database db = tpch::Generate(0.002);
  SPJAQuery q1 = tpch::MakeQ1(db);

  Workload workload;
  workload.pushdown.skip_cols = {tpch::kLShipmode};

  const std::vector<rid_t> outs = {0, 1};
  std::vector<rid_t> ins = {0, 100, 999};

  TraceRound ref;
  std::multiset<std::string> skip_ref;
  bool have_ref = false;
  for (LineageCodec codec : kAllCodecs) {
    SmokeEngine engine;
    ASSERT_TRUE(engine.CreateTable("lineitem", db.lineitem).ok());
    const Table* t = nullptr;
    ASSERT_TRUE(engine.GetTable("lineitem", &t).ok());
    SPJAQuery q = q1;
    q.fact = t;
    ASSERT_TRUE(engine.ExecuteQuery("q1", q, Opts(codec, 1)).ok());
    // Second retention with the data-skipping push-down (which *replaces*
    // the plain fact backward index with the partitioned one).
    ASSERT_TRUE(
        engine.ExecuteQuery("q1skip", q, Opts(codec, 1), &workload).ok());

    TraceRound got = TraceRound::Of(engine, "q1", "lineitem", outs, ins);

    // Skipping strategy: trace group 0's MAIL rows only, through the
    // partitioned index (frozen under non-raw codecs).
    TraceSource src;
    ASSERT_TRUE(engine.MakeTraceSource("q1skip", &src).ok());
    LineageQuery lq;
    ASSERT_TRUE(TraceBuilder::Backward(src, "lineitem", {0})
                    .Filter(Predicate::Str(tpch::kLShipmode, CmpOp::kEq,
                                           "MAIL"))
                    .Strategy(TraceStrategy::kSkipping)
                    .Compile(&lq)
                    .ok());
    EXPECT_EQ(lq.strategy(), TraceStrategy::kSkipping);
    PlanResult pr;
    ASSERT_TRUE(lq.Execute(CaptureOptions::Inject(), &pr).ok());
    auto skip_rows = testing::RowSet(pr.output);

    // The tracker must see the partitioned skip index too — with skip
    // push-down it replaces the plain fact backward index and holds the
    // dominant lineage bytes.
    const SPJAResult* ro = nullptr;
    ASSERT_TRUE(engine.GetResultObject("q1skip", &ro).ok());
    EXPECT_GT(ro->skip_index.MemoryBytes(), 0u);
    EXPECT_EQ(StatBytes(engine, "q1skip"),
              ro->lineage.MemoryBytes() + ro->skip_index.MemoryBytes());

    if (!have_ref) {
      ref = got;
      skip_ref = skip_rows;
      have_ref = true;
    } else {
      const std::string what =
          std::string("codec=") + LineageCodecName(codec);
      got.ExpectEq(ref, what);
      EXPECT_EQ(skip_rows, skip_ref) << what;
    }
  }
}

/// A budget-evicted query with skip push-down must not resolve kAuto to
/// the skipping strategy (the partitioned index is gone; only its
/// dictionary survives) — it takes the lazy rescan and still answers
/// correctly, even with an equality filter on the partition column.
TEST(LineageStoreTest, EvictedSkipQueryFallsBackToLazyNotSkipping) {
  Table zipf = MakeZipfTable(10000, 12, 1.0);
  SPJAQuery query;
  query.fact_name = "zipf";
  query.group_by = {ColRef::Fact(zipf_table::kZ)};
  query.aggs = {AggSpec::Count("cnt")};
  Workload workload;
  workload.pushdown.skip_cols = {zipf_table::kZ};

  auto run = [&](SmokeEngine* engine, size_t budget) {
    ASSERT_TRUE(engine->CreateTable("zipf", zipf).ok());
    const Table* t = nullptr;
    ASSERT_TRUE(engine->GetTable("zipf", &t).ok());
    SPJAQuery q = query;
    q.fact = t;
    CaptureOptions opts = CaptureOptions::Inject();
    opts.lineage_budget_bytes = budget;
    ASSERT_TRUE(engine->ExecuteQuery("q", q, opts, &workload).ok());
  };
  SmokeEngine reference;
  run(&reference, 0);
  SmokeEngine budgeted;
  run(&budgeted, 128);  // far below any footprint: forces eviction
  ASSERT_GT(budgeted.LineageMemoryStats().num_evicted, 0u);
  EXPECT_LE(budgeted.LineageMemoryStats().total_bytes, 128u);

  // Pin the filter to output 1's actual group key so both engines trace a
  // non-empty row set. The reference answers through the skipping strategy,
  // the budgeted engine through the lazy rescan — same rows either way.
  const Table* out = nullptr;
  ASSERT_TRUE(reference.GetResult("q", &out).ok());
  const int64_t key = out->column(0).ints()[1];
  auto traced = [&](const SmokeEngine& engine, TraceStrategy expect) {
    TraceSource src;
    EXPECT_TRUE(engine.MakeTraceSource("q", &src).ok());
    LineageQuery lq;
    EXPECT_TRUE(TraceBuilder::Backward(src, "zipf", {1})
                    .Filter(Predicate::Int(zipf_table::kZ, CmpOp::kEq, key))
                    .Compile(&lq)
                    .ok());
    EXPECT_EQ(lq.strategy(), expect);
    PlanResult pr;
    EXPECT_TRUE(lq.Execute(CaptureOptions::Inject(), &pr).ok());
    // Trace plans carry the __trace_rid column; lazy plans don't. Compare
    // the endpoint rows only.
    std::vector<rid_t> rids;
    Table rows;
    if (SplitTraceRows(pr.output, &rids, &rows).ok()) {
      return testing::RowSet(rows);
    }
    return testing::RowSet(pr.output);
  };
  auto want = traced(reference, TraceStrategy::kSkipping);
  auto got = traced(budgeted, TraceStrategy::kLazy);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(got, want);
}

// ---- memory budget: re-encode, evict, lazy fallback ----

TEST(LineageStoreTest, BudgetEvictionFallsBackToLazyRescan) {
  Table zipf = MakeZipfTable(15000, 30, 1.0);
  SPJAQuery query;
  query.fact_name = "zipf";
  query.fact_filters = {Predicate::Double(zipf_table::kV, CmpOp::kLt, 80.0)};
  query.group_by = {ColRef::Fact(zipf_table::kZ)};
  query.aggs = {AggSpec::Count("cnt")};

  // Reference engine: unlimited memory, raw codec.
  SmokeEngine unbounded;
  ASSERT_TRUE(unbounded.CreateTable("zipf", zipf).ok());
  const Table* t0 = nullptr;
  ASSERT_TRUE(unbounded.GetTable("zipf", &t0).ok());
  SPJAQuery q0 = query;
  q0.fact = t0;
  for (const char* name : {"qa", "qb", "qc"}) {
    ASSERT_TRUE(unbounded.ExecuteQuery(name, q0).ok());
  }
  const size_t raw_total = unbounded.LineageMemoryStats().total_bytes;
  ASSERT_GT(raw_total, 0u);

  // Budgeted engine: the budget is far below the raw footprint, so capture
  // must re-encode and then evict — but still succeed.
  SmokeEngine budgeted;
  ASSERT_TRUE(budgeted.CreateTable("zipf", zipf).ok());
  const Table* t1 = nullptr;
  ASSERT_TRUE(budgeted.GetTable("zipf", &t1).ok());
  SPJAQuery q1 = query;
  q1.fact = t1;
  CaptureOptions opts = CaptureOptions::Inject();
  opts.lineage_budget_bytes = raw_total / 6;
  for (const char* name : {"qa", "qb", "qc"}) {
    ASSERT_TRUE(budgeted.ExecuteQuery(name, q1, opts).ok());
  }

  LineageStoreStats stats = budgeted.LineageMemoryStats();
  EXPECT_EQ(stats.budget_bytes, opts.lineage_budget_bytes);
  EXPECT_LE(stats.total_bytes, stats.budget_bytes);
  EXPECT_GT(stats.num_evicted, 0u);

  // Every trace on the budgeted engine answers exactly like the unbounded
  // one — evicted queries transparently fall back to the lazy rescan.
  const Table* out = nullptr;
  ASSERT_TRUE(unbounded.GetResult("qa", &out).ok());
  std::vector<rid_t> all_outs;
  for (rid_t o = 0; o < out->num_rows(); ++o) all_outs.push_back(o);
  for (const char* name : {"qa", "qb", "qc"}) {
    std::vector<rid_t> want, got;
    ASSERT_TRUE(unbounded.Backward(name, "zipf", all_outs, &want).ok());
    ASSERT_TRUE(budgeted.Backward(name, "zipf", all_outs, &got).ok());
    EXPECT_EQ(got, want) << name;

    TraceResult twant, tgot;
    ASSERT_TRUE(unbounded.TraceBackward(name, "zipf", {2}, &twant).ok());
    ASSERT_TRUE(budgeted.TraceBackward(name, "zipf", {2}, &tgot).ok());
    EXPECT_EQ(tgot.rids, twant.rids) << name;
    EXPECT_EQ(testing::RowSet(tgot.rows), testing::RowSet(twant.rows))
        << name;

    // Multi-seed typed traces also fall back (per-seed lazy loop), and the
    // synthesized handle stays chainable: its plan lineage maps the traced
    // rows back to the fact relation.
    TraceResult mwant, mgot;
    ASSERT_TRUE(
        unbounded.TraceBackward(name, "zipf", {0, 1, 2}, &mwant).ok());
    ASSERT_TRUE(budgeted.TraceBackward(name, "zipf", {0, 1, 2}, &mgot).ok());
    EXPECT_EQ(mgot.rids, mwant.rids) << name;
    EXPECT_EQ(testing::RowSet(mgot.rows), testing::RowSet(mwant.rows))
        << name;
    ASSERT_EQ(mgot.plan.lineage.num_inputs(), 1u);
    EXPECT_TRUE(testing::AreInverse(mgot.plan.lineage.input(0).backward,
                                    mgot.plan.lineage.input(0).forward));

    Table rwant, rgot;
    ASSERT_TRUE(unbounded.BackwardRows(name, "zipf", {1}, &rwant).ok());
    ASSERT_TRUE(budgeted.BackwardRows(name, "zipf", {1}, &rgot).ok());
    EXPECT_EQ(testing::RowSet(rgot), testing::RowSet(rwant)) << name;
  }

  // Forward lineage has no lazy rewrite: an evicted query reports a clear
  // error instead of a wrong answer (pin the documented behavior).
  LineageStoreStats after = budgeted.LineageMemoryStats();
  for (const auto& q : after.queries) {
    if (!q.evicted) continue;
    std::vector<rid_t> fwd;
    EXPECT_FALSE(budgeted.Forward(q.name, "zipf", {0}, &fwd).ok());
  }

  // SetLineageBudget(0) lifts the budget; new captures stay resident.
  budgeted.SetLineageBudget(0);
  ASSERT_TRUE(budgeted.ExecuteQuery("qd", q1).ok());
  EXPECT_GT(StatBytes(budgeted, "qd"), 0u);
}

/// Pruned directions are NOT eviction: a workload that declared "no
/// backward queries" gets an error, not a silent lazy rescan — the
/// fallback is gated on the store's eviction flag.
TEST(LineageStoreTest, PrunedBackwardDoesNotLazyFallback) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(3000, 10, 1.0)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  SPJAQuery q;
  q.fact = t;
  q.fact_name = "zipf";
  q.group_by = {ColRef::Fact(zipf_table::kZ)};
  q.aggs = {AggSpec::Count("cnt")};
  Workload w;
  w.needs_backward = false;  // forward-only workload
  ASSERT_TRUE(engine.ExecuteQuery("q", q, CaptureMode::kInject, &w).ok());

  std::vector<rid_t> rids;
  EXPECT_FALSE(engine.Backward("q", "zipf", {0}, &rids).ok());
  TraceResult tr;
  EXPECT_FALSE(engine.TraceBackward("q", "zipf", {0}, &tr).ok());
  EXPECT_FALSE(engine.TraceBackward("q", "zipf", {0, 1}, &tr).ok());
  // Forward still answers (that is what the workload declared).
  EXPECT_TRUE(engine.Forward("q", "zipf", {0}, &rids).ok());
}

TEST(LineageStoreTest, BudgetReencodesBeforeEvicting) {
  // A budget between the adaptive and raw footprints: enforcement should
  // recover by re-encoding alone, evicting nothing.
  Table zipf = MakeZipfTable(20000, 8, 0.0);
  SmokeEngine probe;
  ASSERT_TRUE(probe.CreateTable("zipf", zipf).ok());
  const Table* tp = nullptr;
  ASSERT_TRUE(probe.GetTable("zipf", &tp).ok());
  PlanBuilder pb;
  int sel = pb.Select(pb.Scan(tp, "zipf"),
                      {Predicate::Int(zipf_table::kId, CmpOp::kLt, 15000)});
  LogicalPlan plan;
  ASSERT_TRUE(pb.Build(sel, &plan).ok());
  ASSERT_TRUE(
      probe.ExecutePlan("sel", plan, Opts(LineageCodec::kRaw, 1)).ok());
  const size_t raw_bytes = probe.LineageMemoryStats().total_bytes;

  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", zipf).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  PlanBuilder b2;
  int sel2 = b2.Select(b2.Scan(t, "zipf"),
                       {Predicate::Int(zipf_table::kId, CmpOp::kLt, 15000)});
  LogicalPlan plan2;
  ASSERT_TRUE(b2.Build(sel2, &plan2).ok());
  CaptureOptions opts = Opts(LineageCodec::kRaw, 1);
  opts.lineage_budget_bytes = raw_bytes / 2;  // adaptive fits easily
  ASSERT_TRUE(engine.ExecutePlan("sel", plan2, opts).ok());

  LineageStoreStats stats = engine.LineageMemoryStats();
  EXPECT_LE(stats.total_bytes, stats.budget_bytes);
  EXPECT_EQ(stats.num_evicted, 0u);
  ASSERT_EQ(stats.queries.size(), 1u);
  EXPECT_EQ(stats.queries[0].codec, LineageCodec::kAdaptive);

  // The re-encoded plan still answers traces (indexed, not lazy).
  std::vector<rid_t> rids;
  ASSERT_TRUE(engine.Backward("sel", "zipf", {42}, &rids).ok());
  EXPECT_EQ(rids, std::vector<rid_t>{42});
}

/// Deferred plans are accounted (and encoded) at FinalizePlan, not at
/// retention — before finalize the entry reports 0 bytes, after it the
/// encoded composed indexes.
TEST(LineageStoreTest, DeferredPlanAccountsAtFinalize) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(4000, 10, 1.0)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt")};
  PlanBuilder b;
  int root = b.GroupBy(b.Scan(t, "zipf"), spec);
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(root, &plan).ok());

  CaptureOptions opts = CaptureOptions::Defer();
  opts.defer_plan_finalize = true;
  opts.lineage_codec = LineageCodec::kAdaptive;
  ASSERT_TRUE(engine.ExecutePlan("dq", plan, opts).ok());
  EXPECT_EQ(StatBytes(engine, "dq"), 0u);  // nothing composed yet
  ASSERT_TRUE(engine.FinalizePlan("dq").ok());

  const PlanResult* pr = nullptr;
  ASSERT_TRUE(engine.GetPlanResult("dq", &pr).ok());
  EXPECT_GT(pr->lineage.num_inputs(), 0u);
  EXPECT_TRUE(pr->lineage.input(0).backward.encoded());
  EXPECT_EQ(StatBytes(engine, "dq"), pr->lineage.MemoryBytes());
  EXPECT_GT(StatBytes(engine, "dq"), 0u);
}

// ---- drop/replace accounting (regression: stats return to baseline) ----

TEST(LineageStoreTest, DropReleasesLineageAccounting) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(5000, 10, 1.0)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  ASSERT_EQ(engine.LineageMemoryStats().total_bytes, 0u);

  SPJAQuery query;
  query.fact = t;
  query.fact_name = "zipf";
  query.group_by = {ColRef::Fact(zipf_table::kZ)};
  query.aggs = {AggSpec::Count("cnt")};
  ASSERT_TRUE(engine.ExecuteQuery("spja", query).ok());

  PlanBuilder b;
  int sel = b.Select(b.Scan(t, "zipf"),
                     {Predicate::Int(zipf_table::kId, CmpOp::kLt, 2500)});
  LogicalPlan plan;
  ASSERT_TRUE(b.Build(sel, &plan).ok());
  ASSERT_TRUE(
      engine.ExecutePlan("plan", plan, Opts(LineageCodec::kAdaptive, 1)).ok());

  LineageStoreStats stats = engine.LineageMemoryStats();
  EXPECT_EQ(stats.num_queries, 2u);
  EXPECT_GT(stats.total_bytes, 0u);

  // Dropping the table is refused while results borrow it — and must not
  // disturb accounting.
  EXPECT_FALSE(engine.DropTable("zipf").ok());
  EXPECT_EQ(engine.LineageMemoryStats().total_bytes, stats.total_bytes);

  ASSERT_TRUE(engine.DropResult("spja").ok());
  ASSERT_TRUE(engine.DropResult("plan").ok());
  LineageStoreStats after = engine.LineageMemoryStats();
  EXPECT_EQ(after.total_bytes, 0u);
  EXPECT_EQ(after.num_queries, 0u);

  // With the borrowers gone, replace and drop proceed; accounting stays at
  // baseline.
  ASSERT_TRUE(engine.ReplaceTable("zipf", MakeZipfTable(100, 5, 0.0)).ok());
  ASSERT_TRUE(engine.DropTable("zipf").ok());
  EXPECT_EQ(engine.LineageMemoryStats().total_bytes, 0u);
}

TEST(LineageStoreTest, DropResultRefusedWhileTraceBorrowsOutput) {
  SmokeEngine engine;
  ASSERT_TRUE(engine.CreateTable("zipf", MakeZipfTable(2000, 10, 1.0)).ok());
  const Table* t = nullptr;
  ASSERT_TRUE(engine.GetTable("zipf", &t).ok());
  SPJAQuery query;
  query.fact = t;
  query.fact_name = "zipf";
  query.group_by = {ColRef::Fact(zipf_table::kZ)};
  query.aggs = {AggSpec::Count("cnt")};
  ASSERT_TRUE(engine.ExecuteQuery("base", query).ok());

  // A retained forward trace scans base's output rows: its lineage borrows
  // them, so dropping "base" first would dangle the trace.
  TraceSource src;
  ASSERT_TRUE(engine.MakeTraceSource("base", &src).ok());
  ASSERT_TRUE(engine
                  .ExecuteTraceQuery("fwd",
                                     TraceBuilder::Forward(src, "zipf", {0}))
                  .ok());
  EXPECT_FALSE(engine.DropResult("base").ok());
  ASSERT_TRUE(engine.DropResult("fwd").ok());
  ASSERT_TRUE(engine.DropResult("base").ok());
  EXPECT_EQ(engine.LineageMemoryStats().num_queries, 0u);
}

}  // namespace
}  // namespace smoke
