#include "lineage/rid_index.h"

#include <gtest/gtest.h>

#include "capture/cube_index.h"
#include "lineage/partitioned_rid_index.h"
#include "lineage/query_lineage.h"
#include "query/lineage_query.h"
#include "storage/table.h"

namespace smoke {
namespace {

TEST(RidIndexTest, AppendAndTrace) {
  RidIndex idx(3);
  idx.Append(0, 5);
  idx.Append(0, 6);
  idx.Append(2, 7);
  EXPECT_EQ(idx.list(0).size(), 2u);
  EXPECT_EQ(idx.list(1).size(), 0u);
  EXPECT_EQ(idx.TotalEdges(), 3u);
}

TEST(RidIndexTest, FromListsAdoptsWithoutCopy) {
  std::vector<RidVec> lists(2);
  lists[0].PushBack(1);
  lists[1].PushBack(2);
  const rid_t* p = lists[0].data();
  RidIndex idx = RidIndex::FromLists(std::move(lists));
  EXPECT_EQ(idx.list(0).data(), p);  // no reallocation: reuse (P4)
}

TEST(LineageIndexTest, ArrayTraceSkipsInvalid) {
  RidArray arr = {3, kInvalidRid, 4};
  LineageIndex idx = LineageIndex::FromArray(std::move(arr));
  std::vector<rid_t> out;
  idx.TraceInto(0, &out);
  idx.TraceInto(1, &out);
  idx.TraceInto(2, &out);
  EXPECT_EQ(out, (std::vector<rid_t>{3, 4}));
  EXPECT_EQ(idx.TotalEdges(), 2u);
}

TEST(LineageIndexTest, EmptyKind) {
  LineageIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.TotalEdges(), 0u);
}

TEST(PartitionedRidIndexTest, AppendAndPartitionTrace) {
  PartitionedRidIndex idx(2, 3);
  idx.Append(0, 0, 10);
  idx.Append(0, 2, 11);
  idx.Append(1, 1, 12);
  EXPECT_EQ(idx.Partition(0, 0).size(), 1u);
  EXPECT_EQ(idx.Partition(0, 1).size(), 0u);
  EXPECT_EQ(idx.Partition(0, 2)[0], 11u);
  std::vector<rid_t> all;
  idx.TraceAllInto(0, &all);
  EXPECT_EQ(all, (std::vector<rid_t>{10, 11}));
  EXPECT_EQ(idx.TotalEdges(), 3u);
}

TEST(PartitionedRidIndexTest, AddOutputGrows) {
  PartitionedRidIndex idx;
  idx.SetNumCodes(4);
  EXPECT_EQ(idx.num_outputs(), 0u);
  idx.AddOutput();
  idx.AddOutput();
  EXPECT_EQ(idx.num_outputs(), 2u);
  idx.Append(1, 3, 9);
  EXPECT_EQ(idx.Partition(1, 3)[0], 9u);
}

TEST(QueryLineageTest, FindInputAndStability) {
  QueryLineage lineage;
  TableLineage& a = lineage.AddInput("a", nullptr);
  TableLineage& b = lineage.AddInput("b", nullptr);
  TableLineage& c = lineage.AddInput("c", nullptr);
  // References must stay valid across AddInput calls (deque-backed).
  a.backward = LineageIndex::FromArray({1});
  b.backward = LineageIndex::FromArray({2});
  c.backward = LineageIndex::FromArray({3});
  EXPECT_EQ(lineage.FindInput("b"), 1);
  EXPECT_EQ(lineage.FindInput("missing"), -1);
  EXPECT_EQ(lineage.input(0).backward.array()[0], 1u);
  EXPECT_EQ(lineage.input(2).backward.array()[0], 3u);
}

TEST(QueryLineageTest, MemoryAccounting) {
  QueryLineage lineage;
  TableLineage& a = lineage.AddInput("a", nullptr);
  RidIndex idx(10);
  for (int i = 0; i < 10; ++i) idx.Append(static_cast<size_t>(i), 1);
  a.backward = LineageIndex::FromIndex(std::move(idx));
  EXPECT_GT(lineage.MemoryBytes(), 10 * sizeof(rid_t));
}

TEST(LineageQueryTest, BackwardDedupPreservesFirstSeenOrder) {
  QueryLineage lineage;
  Schema s;
  s.AddField("x", DataType::kInt64);
  Table t(s);
  for (int i = 0; i < 5; ++i) t.AppendRow({int64_t{i}});
  TableLineage& tl = lineage.AddInput("t", &t);
  RidIndex idx(2);
  idx.Append(0, 3);
  idx.Append(0, 1);
  idx.Append(1, 1);
  idx.Append(1, 4);
  tl.backward = LineageIndex::FromIndex(std::move(idx));
  lineage.set_output_cardinality(2);

  auto dup = BackwardRids(lineage, "t", {0, 1}, /*dedup=*/false);
  EXPECT_EQ(dup, (std::vector<rid_t>{3, 1, 1, 4}));
  auto dedup = BackwardRids(lineage, "t", {0, 1}, /*dedup=*/true);
  EXPECT_EQ(dedup, (std::vector<rid_t>{3, 1, 4}));
}

TEST(CubeIndexTest, IntKeyCells) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  t.AppendRow({int64_t{1}, 10.0});
  t.AppendRow({int64_t{2}, 20.0});
  t.AppendRow({int64_t{1}, 30.0});
  CubeIndex cube;
  cube.Init(t, {0}, {AggSpec::Count("c"), AggSpec::Sum(ScalarExpr::Col(1), "s")});
  cube.AddGroup();
  cube.Update(0, 0);
  cube.Update(0, 1);
  cube.Update(0, 2);
  Table out = cube.GroupTable(0);
  ASSERT_EQ(out.num_rows(), 2u);  // k=1 and k=2 cells
  // First-encounter order: k=1 first.
  EXPECT_EQ(out.column(0).ints()[0], 1);
  EXPECT_EQ(out.column(1).ints()[0], 2);           // count
  EXPECT_DOUBLE_EQ(out.column(2).doubles()[0], 40.0);  // sum
  EXPECT_GT(cube.MemoryBytes(), 0u);
}

TEST(CubeIndexTest, MultiGroupIsolation) {
  Schema s;
  s.AddField("k", DataType::kInt64);
  Table t(s);
  t.AppendRow({int64_t{7}});
  t.AppendRow({int64_t{8}});
  CubeIndex cube;
  cube.Init(t, {0}, {AggSpec::Count("c")});
  cube.AddGroup();
  cube.AddGroup();
  cube.Update(0, 0);
  cube.Update(1, 1);
  EXPECT_EQ(cube.GroupTable(0).num_rows(), 1u);
  EXPECT_EQ(cube.GroupTable(1).num_rows(), 1u);
  EXPECT_EQ(cube.GroupTable(0).column(0).ints()[0], 7);
  EXPECT_EQ(cube.GroupTable(1).column(0).ints()[0], 8);
}

TEST(CubeIndexTest, StringKeyCells) {
  Schema s;
  s.AddField("k", DataType::kString);
  Table t(s);
  t.AppendRow({std::string("x")});
  t.AppendRow({std::string("y")});
  t.AppendRow({std::string("x")});
  CubeIndex cube;
  cube.Init(t, {0}, {AggSpec::Count("c")});
  cube.AddGroup();
  for (rid_t r = 0; r < 3; ++r) cube.Update(0, r);
  Table out = cube.GroupTable(0);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column(0).strings()[0], "x");
  EXPECT_EQ(out.column(1).ints()[0], 2);
}

}  // namespace
}  // namespace smoke
