#include "common/hash.h"

#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

namespace smoke {
namespace {

TEST(Hash64Test, Deterministic) {
  EXPECT_EQ(Hash64(42), Hash64(42));
  EXPECT_NE(Hash64(42), Hash64(43));
}

TEST(HashBytesTest, EmptyAndContent) {
  EXPECT_EQ(HashBytes("", 0), HashBytes("", 0));
  EXPECT_NE(HashBytes("a", 1), HashBytes("b", 1));
}

TEST(IntKeyMapTest, FindOnEmpty) {
  IntKeyMap m;
  EXPECT_EQ(m.Find(5), IntKeyMap::kNotFound);
}

TEST(IntKeyMapTest, InsertAndFind) {
  IntKeyMap m;
  m.Insert(5, 100);
  EXPECT_EQ(m.Find(5), 100u);
  EXPECT_EQ(m.Find(6), IntKeyMap::kNotFound);
}

TEST(IntKeyMapTest, FindOrInsertReturnsExisting) {
  IntKeyMap m;
  EXPECT_EQ(m.FindOrInsert(7, 1), IntKeyMap::kNotFound);  // fresh
  EXPECT_EQ(m.FindOrInsert(7, 2), 1u);                    // existing
  EXPECT_EQ(m.size(), 1u);
}

TEST(IntKeyMapTest, NegativeAndExtremeKeys) {
  IntKeyMap m;
  m.Insert(-1, 1);
  m.Insert(INT64_MIN, 2);
  m.Insert(INT64_MAX, 3);
  m.Insert(0, 4);
  EXPECT_EQ(m.Find(-1), 1u);
  EXPECT_EQ(m.Find(INT64_MIN), 2u);
  EXPECT_EQ(m.Find(INT64_MAX), 3u);
  EXPECT_EQ(m.Find(0), 4u);
}

TEST(IntKeyMapTest, RehashPreservesEntries) {
  IntKeyMap m(4);
  for (int64_t k = 0; k < 1000; ++k) {
    m.Insert(k * 131, static_cast<uint32_t>(k));
  }
  EXPECT_EQ(m.size(), 1000u);
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(m.Find(k * 131), static_cast<uint32_t>(k));
  }
}

class IntKeyMapRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntKeyMapRandomSweep, MatchesStdUnorderedMap) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> keys(-5000, 5000);
  IntKeyMap m;
  std::unordered_map<int64_t, uint32_t> ref;
  for (int i = 0; i < 20000; ++i) {
    int64_t k = keys(rng);
    uint32_t fresh = static_cast<uint32_t>(ref.size());
    auto [it, inserted] = ref.emplace(k, fresh);
    uint32_t got = m.FindOrInsert(k, fresh);
    if (inserted) {
      ASSERT_EQ(got, IntKeyMap::kNotFound);
    } else {
      ASSERT_EQ(got, it->second);
    }
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) ASSERT_EQ(m.Find(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntKeyMapRandomSweep,
                         ::testing::Values(1, 2, 3, 1234, 99999));

}  // namespace
}  // namespace smoke
