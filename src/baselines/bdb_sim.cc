#include "baselines/bdb_sim.h"

#include <algorithm>

namespace smoke {

// Composite key layout: (user key << 32) | insertion sequence. Duplicates of
// one user key are adjacent and ordered by insertion, like DB_DUP.
namespace {
inline uint64_t Compose(uint32_t key, uint32_t seq) {
  return (static_cast<uint64_t>(key) << 32) | seq;
}
inline uint32_t UserKey(uint64_t k) { return static_cast<uint32_t>(k >> 32); }
}  // namespace

struct BdbSim::Node {
  bool leaf = true;
  int n = 0;                       // entries (leaf) / keys (internal)
  uint64_t keys[kOrder];           // composite keys / separators
  uint32_t vals[kOrder];           // leaf payloads
  Node* children[kOrder + 1];      // internal fan-out
  Node* next = nullptr;            // leaf chain for cursor scans
};

int BdbSim::CompareKeys(const void* a, const void* b) {
  uint64_t ka, kb;
  std::memcpy(&ka, a, sizeof(ka));
  std::memcpy(&kb, b, sizeof(kb));
  return ka < kb ? -1 : (ka > kb ? 1 : 0);
}

int BdbSim::UpperBound(const uint64_t* keys, int n, uint64_t k) const {
  int lo = 0, hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (cmp_(&keys[mid], &k) <= 0) lo = mid + 1;
    else hi = mid;
  }
  return lo;
}

int BdbSim::LowerBound(const uint64_t* keys, int n, uint64_t k) const {
  int lo = 0, hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (cmp_(&keys[mid], &k) < 0) lo = mid + 1;
    else hi = mid;
  }
  return lo;
}

BdbSim::Node* BdbSim::NewLeafLocked() {
  Node* n = new Node();
  n->leaf = true;
  ++num_nodes_;
  return n;
}

BdbSim::Node* BdbSim::NewInternalLocked() {
  Node* n = new Node();
  n->leaf = false;
  ++num_nodes_;
  return n;
}

void BdbSim::FreeTree(Node* n) {
  if (n == nullptr) return;
  if (!n->leaf) {
    for (int i = 0; i <= n->n; ++i) FreeTree(n->children[i]);
  }
  delete n;
}

BdbSim::~BdbSim() { FreeTree(root_); }

void BdbSim::Put(const void* key, size_t key_len, const void* val,
                 size_t val_len) {
  // Page latch: BDB latches even in single-threaded in-memory use.
  MutexLock lock(latch_);
  // Unmarshal the byte buffers (the API boundary the paper charges for).
  SMOKE_DCHECK(key_len == 4 && val_len == 4);
  (void)key_len;
  (void)val_len;
  uint32_t k32, v32;
  std::memcpy(&k32, key, 4);
  std::memcpy(&v32, val, 4);
  uint64_t k = Compose(k32, static_cast<uint32_t>(seq_++));

  SplitResult split = InsertRecLocked(root_, k, v32);
  if (split.right != nullptr) {
    Node* new_root = NewInternalLocked();
    new_root->n = 1;
    new_root->keys[0] = split.sep;
    new_root->children[0] = root_;
    new_root->children[1] = split.right;
    root_ = new_root;
  }
  ++count_;
}

BdbSim::SplitResult BdbSim::InsertRecLocked(Node* n, uint64_t k, uint32_t v) {
  if (n->leaf) {
    int pos = UpperBound(n->keys, n->n, k);
    // Shift and insert.
    for (int i = n->n; i > pos; --i) {
      n->keys[i] = n->keys[i - 1];
      n->vals[i] = n->vals[i - 1];
    }
    n->keys[pos] = k;
    n->vals[pos] = v;
    ++n->n;
    if (n->n < kOrder) return {};
    // Split leaf.
    Node* right = NewLeafLocked();
    int half = n->n / 2;
    right->n = n->n - half;
    std::copy(n->keys + half, n->keys + n->n, right->keys);
    std::copy(n->vals + half, n->vals + n->n, right->vals);
    n->n = half;
    right->next = n->next;
    n->next = right;
    return {right, right->keys[0]};
  }

  int pos = UpperBound(n->keys, n->n, k);
  SplitResult child_split = InsertRecLocked(n->children[pos], k, v);
  if (child_split.right == nullptr) return {};
  // Insert separator into this internal node.
  for (int i = n->n; i > pos; --i) {
    n->keys[i] = n->keys[i - 1];
    n->children[i + 1] = n->children[i];
  }
  n->keys[pos] = child_split.sep;
  n->children[pos + 1] = child_split.right;
  ++n->n;
  if (n->n < kOrder) return {};
  // Split internal: middle separator moves up.
  Node* right = NewInternalLocked();
  int mid = n->n / 2;
  uint64_t up = n->keys[mid];
  right->n = n->n - mid - 1;
  std::copy(n->keys + mid + 1, n->keys + n->n, right->keys);
  std::copy(n->children + mid + 1, n->children + n->n + 1, right->children);
  n->n = mid;
  return {right, up};
}

bool BdbSim::Cursor::Seek(uint32_t key) {
  MutexLock lock(db_->latch_);
  key_ = key;
  uint64_t target = Compose(key, 0);
  const Node* n = db_->root_;
  while (!n->leaf) {
    int pos = db_->UpperBound(n->keys, n->n, target);
    n = n->children[pos];
  }
  int pos = db_->LowerBound(n->keys, n->n, target);
  // Target may start in the next leaf.
  while (n != nullptr && pos >= n->n) {
    n = n->next;
    pos = 0;
  }
  if (n == nullptr || UserKey(n->keys[pos]) != key) return false;
  leaf_ = n;
  pos_ = static_cast<size_t>(pos);
  return true;
}

bool BdbSim::Cursor::Next(uint32_t* value) {
  MutexLock lock(db_->latch_);
  const Node* n = static_cast<const Node*>(leaf_);
  if (n == nullptr) return false;
  if (pos_ >= static_cast<size_t>(n->n)) {
    n = n->next;
    pos_ = 0;
    if (n == nullptr) {
      leaf_ = nullptr;
      return false;
    }
    leaf_ = n;
  }
  if (UserKey(n->keys[pos_]) != key_) return false;
  *value = n->vals[pos_];
  ++pos_;
  return true;
}

}  // namespace smoke
