// Phys-Mem baseline (paper Section 5, Appendix B): lineage capture through
// one *virtual function call per lineage edge* into an in-memory subsystem
// that builds Smoke-style rid indexes but cannot reuse operator state.
//
// Per the paper's appendix: "for one-to-many relations between output and
// input, Phys-Mem probes a hash table on the output rid. Each entry in the
// hash table keeps a pointer to an rid index that we use to append the input
// rid." — the subsystem does not know output rids are dense, so it pays a
// hash probe per edge on top of the virtual call.
#ifndef SMOKE_BASELINES_PHYS_MEM_H_
#define SMOKE_BASELINES_PHYS_MEM_H_

#include <vector>

#include "common/hash.h"
#include "common/rid_vec.h"
#include "engine/capture.h"
#include "lineage/rid_index.h"

namespace smoke {

/// \brief In-memory per-edge lineage writer.
///
/// `forward_one_to_one` selects the paper's 1:1 representation ("for
/// one-to-one relations, we use an rid list where we append the input
/// rid") — group-by and selection forward lineage is 1:1, join forward is
/// 1:N (hash-probed).
class PhysMemWriter : public LineageWriter {
 public:
  /// Direction flags mirror instrumentation pruning.
  explicit PhysMemWriter(bool backward = true, bool forward = true,
                         bool forward_one_to_one = true)
      : backward_(backward),
        forward_(forward),
        forward_one_to_one_(forward_one_to_one) {}

  void BeginCapture(size_t input_cardinality) override {
    (void)input_cardinality;  // a detached subsystem cannot exploit this
  }

  void Emit(rid_t out, rid_t in) override {
    if (backward_) AppendTo(&bw_map_, &bw_lists_, out, in);
    if (forward_) {
      if (forward_one_to_one_) fw_list_.PushBack(out);
      else AppendTo(&fw_map_, &fw_lists_, in, out);
    }
  }

  void FinishCapture(size_t output_cardinality) override {
    output_cardinality_ = output_cardinality;
  }

  size_t num_edges() const {
    size_t n = 0;
    for (const auto& l : bw_lists_) n += l.size();
    return n;
  }

  /// Converts the captured backward lineage into a dense RidIndex
  /// (out rid -> input rids), for equivalence testing and querying.
  RidIndex ExportBackward() const {
    RidIndex idx(output_cardinality_);
    ExportInto(bw_map_, bw_lists_, &idx);
    return idx;
  }

  /// Converts forward lineage into a dense RidIndex (in rid -> out rids).
  /// For 1:1 forward capture, entry i is the i-th emitted edge's output —
  /// valid when the operator emits exactly one edge per input rid in rid
  /// order (group-by; NOT selection, which skips filtered rows).
  RidIndex ExportForward(size_t input_cardinality) const {
    RidIndex idx(input_cardinality);
    if (forward_one_to_one_) {
      for (size_t i = 0; i < fw_list_.size(); ++i) {
        idx.Append(i, fw_list_[i]);
      }
      return idx;
    }
    ExportInto(fw_map_, fw_lists_, &idx);
    return idx;
  }

  /// Direct keyed lookup (what a lineage query against the subsystem does).
  const RidVec* Lookup(rid_t out) const {
    uint32_t slot = bw_map_.Find(static_cast<int64_t>(out));
    if (slot == IntKeyMap::kNotFound) return nullptr;
    return &bw_lists_[slot];
  }

 private:
  void AppendTo(IntKeyMap* map, std::vector<RidVec>* lists, rid_t key,
                rid_t value) {
    uint32_t fresh = static_cast<uint32_t>(lists->size());
    uint32_t slot = map->FindOrInsert(static_cast<int64_t>(key), fresh);
    if (slot == IntKeyMap::kNotFound) {
      lists->emplace_back();
      slot = fresh;
    }
    (*lists)[slot].PushBack(value);
  }

  void ExportInto(const IntKeyMap& map, const std::vector<RidVec>& lists,
                  RidIndex* idx) const {
    for (size_t key = 0; key < idx->size(); ++key) {
      uint32_t slot = map.Find(static_cast<int64_t>(key));
      if (slot == IntKeyMap::kNotFound) continue;
      for (rid_t v : lists[slot]) idx->Append(key, v);
    }
  }

  bool backward_;
  bool forward_;
  bool forward_one_to_one_;
  IntKeyMap bw_map_{1024};
  IntKeyMap fw_map_{1024};
  std::vector<RidVec> bw_lists_;
  std::vector<RidVec> fw_lists_;
  RidVec fw_list_;  // 1:1 forward representation
  size_t output_cardinality_ = 0;
};

}  // namespace smoke

#endif  // SMOKE_BASELINES_PHYS_MEM_H_
