// Phys-Bdb baseline: an external lineage store simulating BerkeleyDB
// (paper Section 5: in-memory BDB 12.1 with a B-tree index and duplicate
// keys). The simulation reproduces the three costs the paper attributes to
// Phys-Bdb: (1) a function call across the subsystem boundary per edge,
// (2) key/value byte marshalling, and (3) B-tree node traversal and splits
// per insert, plus cursor-based reads at query time.
#ifndef SMOKE_BASELINES_BDB_SIM_H_
#define SMOKE_BASELINES_BDB_SIM_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/types.h"
#include "engine/capture.h"

namespace smoke {

/// \brief A B+-tree multimap over byte-marshalled uint32 keys/values with
/// BerkeleyDB DB_DUP semantics (duplicate keys ordered by insertion).
///
/// Internally keys are (key, seq) pairs, seq being a global insertion
/// counter — the standard way duplicate support is layered over a unique
/// B-tree. Nodes hold up to kOrder entries. Faithful to BDB's cost
/// structure: every key comparison goes through a user-supplied comparator
/// function pointer (bt_compare), and every operation takes the tree latch
/// (BDB latches pages even in single-threaded in-memory use).
class BdbSim {
 public:
  BdbSim() {
    MutexLock lock(latch_);
    root_ = NewLeafLocked();
  }
  SMOKE_DISALLOW_COPY_AND_ASSIGN(BdbSim);

  /// DB->put(key, value) with byte-buffer marshalling (DB_DUP).
  void Put(const void* key, size_t key_len, const void* val, size_t val_len)
      SMOKE_EXCLUDES(latch_);

  /// Cursor API: DBC->get(DB_SET) then DB_NEXT_DUP. Returns all values for
  /// `key` via repeated per-value calls (the cursor-like access pattern the
  /// paper found faster than bulk fetches).
  class Cursor {
   public:
    explicit Cursor(const BdbSim* db) : db_(db) {}
    /// Positions at the first duplicate of `key`; returns false if absent.
    bool Seek(uint32_t key) SMOKE_EXCLUDES(db_->latch_);
    /// Fetches the current value and advances; false when duplicates end.
    bool Next(uint32_t* value) SMOKE_EXCLUDES(db_->latch_);

   private:
    const BdbSim* db_;
    const void* leaf_ = nullptr;
    size_t pos_ = 0;
    uint32_t key_ = 0;
  };

  /// Entry and node counts take the latch: Put mutates them, and BdbWriter
  /// is shared across capture workers — an unlatched read here was the
  /// unguarded-stats race the thread-safety annotations surfaced
  /// (tests/bdb_sim_test.cc ConcurrentPutsAndStatsReads).
  size_t size() const SMOKE_EXCLUDES(latch_) {
    MutexLock lock(latch_);
    return count_;
  }
  size_t num_nodes() const SMOKE_EXCLUDES(latch_) {
    MutexLock lock(latch_);
    return num_nodes_;
  }

  ~BdbSim();

 private:
  friend class Cursor;
  static constexpr int kOrder = 64;

  /// bt_compare-style comparator: called through a function pointer per
  /// comparison, like BDB's user-configurable key comparator.
  using Comparator = int (*)(const void* a, const void* b);
  static int CompareKeys(const void* a, const void* b);

  struct Node;
  Node* NewLeafLocked() SMOKE_REQUIRES(latch_);
  Node* NewInternalLocked() SMOKE_REQUIRES(latch_);
  void FreeTree(Node* n);

  /// Binary search via the comparator callback: first index with
  /// keys[i] > k (upper bound) or keys[i] >= k (lower bound).
  int UpperBound(const uint64_t* keys, int n, uint64_t k) const;
  int LowerBound(const uint64_t* keys, int n, uint64_t k) const;

  // Insert (k, v); returns a split (new right node + separator) or null.
  struct SplitResult {
    Node* right = nullptr;
    uint64_t sep = 0;
  };
  SplitResult InsertRecLocked(Node* n, uint64_t k, uint32_t v)
      SMOKE_REQUIRES(latch_);

  Node* root_ SMOKE_GUARDED_BY(latch_) = nullptr;
  uint64_t seq_ SMOKE_GUARDED_BY(latch_) = 0;
  size_t count_ SMOKE_GUARDED_BY(latch_) = 0;
  size_t num_nodes_ SMOKE_GUARDED_BY(latch_) = 0;
  Comparator cmp_ = &BdbSim::CompareKeys;  ///< set once, then read-only
  mutable Mutex latch_;
};

/// \brief LineageWriter that stores edges in BdbSim trees (one per
/// direction), marshalling rids through byte buffers on every call.
class BdbWriter : public LineageWriter {
 public:
  BdbWriter(bool backward = true, bool forward = true)
      : backward_(backward), forward_(forward) {
    if (backward_) bw_ = std::make_unique<BdbSim>();
    if (forward_) fw_ = std::make_unique<BdbSim>();
  }

  void BeginCapture(size_t) override {}

  void Emit(rid_t out, rid_t in) override {
    unsigned char kbuf[4], vbuf[4];
    if (backward_) {
      std::memcpy(kbuf, &out, 4);
      std::memcpy(vbuf, &in, 4);
      bw_->Put(kbuf, 4, vbuf, 4);
    }
    if (forward_) {
      std::memcpy(kbuf, &in, 4);
      std::memcpy(vbuf, &out, 4);
      fw_->Put(kbuf, 4, vbuf, 4);
    }
  }

  void FinishCapture(size_t) override {}

  BdbSim* backward_db() { return bw_.get(); }
  BdbSim* forward_db() { return fw_.get(); }

  /// Cursor-style backward lineage fetch: one virtual-call round trip per
  /// rid (paper Section 6.3).
  void FetchBackward(rid_t out, std::vector<rid_t>* rids) const {
    BdbSim::Cursor cur(bw_.get());
    if (!cur.Seek(out)) return;
    uint32_t v;
    while (cur.Next(&v)) rids->push_back(v);
  }

 private:
  bool backward_;
  bool forward_;
  std::unique_ptr<BdbSim> bw_;
  std::unique_ptr<BdbSim> fw_;
};

}  // namespace smoke

#endif  // SMOKE_BASELINES_BDB_SIM_H_
