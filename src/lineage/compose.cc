#include "lineage/compose.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace smoke {

namespace {

/// Appends every input rid that intermediate position `mid` maps to under
/// `inner` onto `list`.
inline void AppendInner(const LineageIndex& inner, rid_t mid, RidVec* list) {
  if (inner.kind() == LineageIndex::Kind::kArray) {
    rid_t r = inner.array()[mid];
    if (r != kInvalidRid) list->PushBack(r);
  } else {
    const RidVec& l = inner.index().list(mid);
    for (rid_t r : l) list->PushBack(r);
  }
}

/// Sorts and deduplicates `scratch` into `list` (forward set semantics).
inline void SortedUniqueInto(std::vector<rid_t>* scratch, RidVec* list) {
  std::sort(scratch->begin(), scratch->end());
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
  list->Reserve(scratch->size());
  for (rid_t r : *scratch) list->PushBack(r);
}

}  // namespace

LineageIndex ComposeBackward(const LineageIndex& outer,
                             const LineageIndex& inner) {
  if (outer.empty() || inner.empty()) return LineageIndex();
  const size_t n = outer.size();

  if (outer.kind() == LineageIndex::Kind::kArray &&
      inner.kind() == LineageIndex::Kind::kArray) {
    RidArray out(n, kInvalidRid);
    const RidArray& oa = outer.array();
    const RidArray& ia = inner.array();
    for (size_t o = 0; o < n; ++o) {
      if (oa[o] != kInvalidRid) out[o] = ia[oa[o]];
    }
    return LineageIndex::FromArray(std::move(out));
  }

  RidIndex out(n);
  for (size_t o = 0; o < n; ++o) {
    RidVec& list = out.list(o);
    if (outer.kind() == LineageIndex::Kind::kArray) {
      rid_t mid = outer.array()[o];
      if (mid != kInvalidRid) AppendInner(inner, mid, &list);
    } else {
      const RidVec& mids = outer.index().list(o);
      for (rid_t mid : mids) AppendInner(inner, mid, &list);
    }
  }
  return LineageIndex::FromIndex(std::move(out));
}

LineageIndex ComposeForward(const LineageIndex& inner,
                            const LineageIndex& outer) {
  if (inner.empty() || outer.empty()) return LineageIndex();
  const size_t n = inner.size();

  if (inner.kind() == LineageIndex::Kind::kArray &&
      outer.kind() == LineageIndex::Kind::kArray) {
    RidArray out(n, kInvalidRid);
    const RidArray& ia = inner.array();
    const RidArray& oa = outer.array();
    for (size_t i = 0; i < n; ++i) {
      if (ia[i] != kInvalidRid) out[i] = oa[ia[i]];
    }
    return LineageIndex::FromArray(std::move(out));
  }

  RidIndex out(n);
  std::vector<rid_t> scratch;
  for (size_t i = 0; i < n; ++i) {
    scratch.clear();
    if (inner.kind() == LineageIndex::Kind::kArray) {
      rid_t mid = inner.array()[i];
      if (mid != kInvalidRid) outer.TraceInto(mid, &scratch);
    } else {
      for (rid_t mid : inner.index().list(i)) outer.TraceInto(mid, &scratch);
    }
    SortedUniqueInto(&scratch, &out.list(i));
  }
  return LineageIndex::FromIndex(std::move(out));
}

void MergeBackwardInto(LineageIndex* dst, LineageIndex src) {
  if (src.empty()) return;
  if (dst->empty()) {
    *dst = std::move(src);
    return;
  }
  SMOKE_CHECK(dst->size() == src.size());
  const size_t n = dst->size();
  // Promote to the 1-to-N form: merged outputs can have multiple ancestors.
  if (dst->kind() == LineageIndex::Kind::kArray) {
    RidIndex promoted(n);
    const RidArray& a = dst->array();
    for (size_t o = 0; o < n; ++o) {
      if (a[o] != kInvalidRid) promoted.Append(o, a[o]);
    }
    *dst = LineageIndex::FromIndex(std::move(promoted));
  }
  RidIndex& di = dst->mutable_index();
  std::vector<rid_t> tmp;
  for (size_t o = 0; o < n; ++o) {
    tmp.clear();
    src.TraceInto(static_cast<rid_t>(o), &tmp);
    for (rid_t r : tmp) di.Append(o, r);
  }
}

void MergeForwardInto(LineageIndex* dst, LineageIndex src) {
  if (src.empty()) return;
  if (dst->empty()) {
    *dst = std::move(src);
    return;
  }
  SMOKE_CHECK(dst->size() == src.size());
  const size_t n = dst->size();
  RidIndex merged(n);
  std::vector<rid_t> scratch;
  for (size_t i = 0; i < n; ++i) {
    scratch.clear();
    dst->TraceInto(static_cast<rid_t>(i), &scratch);
    src.TraceInto(static_cast<rid_t>(i), &scratch);
    SortedUniqueInto(&scratch, &merged.list(i));
  }
  *dst = LineageIndex::FromIndex(std::move(merged));
}

LineageIndex IdentityIndex(size_t n) {
  RidArray ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<rid_t>(i);
  return LineageIndex::FromArray(std::move(ids));
}

}  // namespace smoke
