#include "lineage/compose.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace smoke {

namespace {

/// Appends every input rid that intermediate position `mid` maps to under
/// `inner` onto `list`. Works over raw and encoded forms (decode-on-demand:
/// only the probed posting list is decoded).
inline void AppendInner(const LineageIndex& inner, rid_t mid, RidVec* list) {
  inner.ForEachRelated(mid, [list](rid_t r) { list->PushBack(r); });
}

/// Sorts and deduplicates `scratch` into `list` (forward set semantics).
inline void SortedUniqueInto(std::vector<rid_t>* scratch, RidVec* list) {
  std::sort(scratch->begin(), scratch->end());
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
  list->Reserve(scratch->size());
  for (rid_t r : *scratch) list->PushBack(r);
}

}  // namespace

LineageIndex ComposeBackward(const LineageIndex& outer,
                             const LineageIndex& inner) {
  if (outer.empty() || inner.empty()) return LineageIndex();
  const size_t n = outer.size();

  if (outer.IsOneToOne() && inner.IsOneToOne()) {
    RidArray out(n, kInvalidRid);
    for (size_t o = 0; o < n; ++o) {
      rid_t mid = outer.ValueAt(static_cast<rid_t>(o));
      if (mid != kInvalidRid) out[o] = inner.ValueAt(mid);
    }
    return LineageIndex::FromArray(std::move(out));
  }

  RidIndex out(n);
  for (size_t o = 0; o < n; ++o) {
    RidVec& list = out.list(o);
    outer.ForEachRelated(static_cast<rid_t>(o), [&inner, &list](rid_t mid) {
      AppendInner(inner, mid, &list);
    });
  }
  return LineageIndex::FromIndex(std::move(out));
}

LineageIndex ComposeForward(const LineageIndex& inner,
                            const LineageIndex& outer) {
  if (inner.empty() || outer.empty()) return LineageIndex();
  const size_t n = inner.size();

  if (inner.IsOneToOne() && outer.IsOneToOne()) {
    RidArray out(n, kInvalidRid);
    for (size_t i = 0; i < n; ++i) {
      rid_t mid = inner.ValueAt(static_cast<rid_t>(i));
      if (mid != kInvalidRid) out[i] = outer.ValueAt(mid);
    }
    return LineageIndex::FromArray(std::move(out));
  }

  RidIndex out(n);
  std::vector<rid_t> scratch;
  for (size_t i = 0; i < n; ++i) {
    scratch.clear();
    inner.ForEachRelated(static_cast<rid_t>(i), [&outer, &scratch](rid_t mid) {
      outer.TraceInto(mid, &scratch);
    });
    SortedUniqueInto(&scratch, &out.list(i));
  }
  return LineageIndex::FromIndex(std::move(out));
}

void MergeBackwardInto(LineageIndex* dst, LineageIndex src) {
  if (src.empty()) return;
  if (dst->empty()) {
    *dst = std::move(src);
    return;
  }
  SMOKE_CHECK(dst->size() == src.size());
  const size_t n = dst->size();
  // Promote to the raw 1-to-N form: merged outputs can have multiple
  // ancestors (and encoded forms are immutable).
  if (dst->kind() != LineageIndex::Kind::kIndex) {
    RidIndex promoted(n);
    for (size_t o = 0; o < n; ++o) {
      dst->ForEachRelated(static_cast<rid_t>(o),
                          [&promoted, o](rid_t r) { promoted.Append(o, r); });
    }
    *dst = LineageIndex::FromIndex(std::move(promoted));
  }
  RidIndex& di = dst->mutable_index();
  std::vector<rid_t> tmp;
  for (size_t o = 0; o < n; ++o) {
    tmp.clear();
    src.TraceInto(static_cast<rid_t>(o), &tmp);
    for (rid_t r : tmp) di.Append(o, r);
  }
}

void MergeForwardInto(LineageIndex* dst, LineageIndex src) {
  if (src.empty()) return;
  if (dst->empty()) {
    *dst = std::move(src);
    return;
  }
  SMOKE_CHECK(dst->size() == src.size());
  const size_t n = dst->size();
  RidIndex merged(n);
  std::vector<rid_t> scratch;
  for (size_t i = 0; i < n; ++i) {
    scratch.clear();
    dst->TraceInto(static_cast<rid_t>(i), &scratch);
    src.TraceInto(static_cast<rid_t>(i), &scratch);
    SortedUniqueInto(&scratch, &merged.list(i));
  }
  *dst = LineageIndex::FromIndex(std::move(merged));
}

LineageIndex IdentityIndex(size_t n) {
  RidArray ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<rid_t>(i);
  return LineageIndex::FromArray(std::move(ids));
}

}  // namespace smoke
