#include "lineage/store/lineage_store.h"

#include <utility>

namespace smoke {

LineageIndex EncodeLineage(LineageIndex index, LineageCodec codec) {
  switch (index.kind()) {
    case LineageIndex::Kind::kNone:
      return index;
    case LineageIndex::Kind::kArray:
      if (codec == LineageCodec::kRaw) return index;
      return LineageIndex::FromEncodedArray(
          EncodedRidArray::Encode(std::move(index.mutable_array()), codec));
    case LineageIndex::Kind::kIndex:
      if (codec == LineageCodec::kRaw) return index;
      return LineageIndex::FromEncodedPostings(
          EncodedPostings::Encode(index.index(), codec));
    case LineageIndex::Kind::kEncodedArray: {
      // Re-encode through the raw form (encoded forms are immutable).
      LineageIndex raw =
          LineageIndex::FromArray(index.encoded_array().Decode());
      return EncodeLineage(std::move(raw), codec);
    }
    case LineageIndex::Kind::kEncodedIndex: {
      if (codec == LineageCodec::kRaw) {
        return LineageIndex::FromIndex(index.encoded_postings().Decode());
      }
      // Re-encode list-at-a-time: decoding the whole index to raw first
      // would spike transient memory to the raw footprint exactly when the
      // budget is under pressure (same pattern as PartitionedRidIndex::
      // Freeze).
      const EncodedPostings& ep = index.encoded_postings();
      PostingsBuilder b(codec);
      std::vector<rid_t> list;
      for (size_t i = 0; i < ep.num_lists(); ++i) {
        list.clear();
        ep.AppendList(i, &list);
        b.AddList(list.data(), list.size());
      }
      return LineageIndex::FromEncodedPostings(b.Finish());
    }
  }
  return index;
}

void EncodeQueryLineage(QueryLineage* lineage, LineageCodec codec) {
  for (size_t i = 0; i < lineage->num_inputs(); ++i) {
    TableLineage& tl = lineage->mutable_input(i);
    tl.backward = EncodeLineage(std::move(tl.backward), codec);
    tl.forward = EncodeLineage(std::move(tl.forward), codec);
  }
}

void EvictQueryLineage(QueryLineage* lineage) {
  for (size_t i = 0; i < lineage->num_inputs(); ++i) {
    TableLineage& tl = lineage->mutable_input(i);
    tl.backward = LineageIndex();
    tl.forward = LineageIndex();
  }
  lineage->set_evicted(true);
}

void LineageMemoryTracker::Register(const std::string& name, size_t bytes,
                                    LineageCodec codec) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  total_ -= e.bytes;
  e.bytes = bytes;
  e.codec = codec;
  e.evicted = false;
  e.last_access = ++tick_;
  total_ += bytes;
}

void LineageMemoryTracker::Update(const std::string& name, size_t bytes,
                                  LineageCodec codec) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  total_ -= it->second.bytes;
  it->second.bytes = bytes;
  it->second.codec = codec;
  total_ += bytes;
}

void LineageMemoryTracker::MarkEvicted(const std::string& name,
                                       size_t residual_bytes) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  total_ -= it->second.bytes;
  it->second.bytes = residual_bytes;
  it->second.evicted = true;
  total_ += residual_bytes;
}

void LineageMemoryTracker::Release(const std::string& name) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  total_ -= it->second.bytes;
  entries_.erase(it);
}

void LineageMemoryTracker::Touch(const std::string& name) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  it->second.last_access = ++tick_;
}

bool LineageMemoryTracker::Coldest(
    const std::function<bool(const std::string&, const Entry&)>& pred,
    std::string* out) const {
  MutexLock lock(mu_);
  uint64_t best_tick = 0;
  bool found = false;
  for (const auto& [name, entry] : entries_) {
    if (!pred(name, entry)) continue;
    if (!found || entry.last_access < best_tick) {
      best_tick = entry.last_access;
      *out = name;
      found = true;
    }
  }
  return found;
}

void LineageMemoryTracker::SetBudget(size_t bytes) {
  MutexLock lock(mu_);
  budget_ = bytes;
}

size_t LineageMemoryTracker::budget() const {
  MutexLock lock(mu_);
  return budget_;
}

size_t LineageMemoryTracker::total_bytes() const {
  MutexLock lock(mu_);
  return total_;
}

LineageStoreStats LineageMemoryTracker::Stats() const {
  MutexLock lock(mu_);
  LineageStoreStats s;
  s.total_bytes = total_;
  s.budget_bytes = budget_;
  s.num_queries = entries_.size();
  for (const auto& [name, entry] : entries_) {
    if (entry.evicted) ++s.num_evicted;
    LineageStoreStats::QueryStats q;
    q.name = name;
    q.bytes = entry.bytes;
    q.codec = entry.codec;
    q.evicted = entry.evicted;
    q.last_access = entry.last_access;
    s.queries.push_back(std::move(q));
  }
  return s;
}

bool LineageMemoryTracker::Lookup(const std::string& name, Entry* out) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

}  // namespace smoke
