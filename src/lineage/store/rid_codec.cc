#include "lineage/store/rid_codec.h"

#include <algorithm>
#include <utility>

#include "lineage/rid_index.h"

namespace smoke {

const char* LineageCodecName(LineageCodec c) {
  switch (c) {
    case LineageCodec::kRaw:      return "raw";
    case LineageCodec::kRange:    return "range";
    case LineageCodec::kBitmap:   return "bitmap";
    case LineageCodec::kAdaptive: return "adaptive";
  }
  return "?";
}

RidSetStats RidSetStats::Of(const rid_t* data, size_t n) {
  RidSetStats s;
  s.count = n;
  if (n == 0) return s;
  s.runs = 1;
  s.min = s.max = data[0];
  for (size_t i = 1; i < n; ++i) {
    const rid_t prev = data[i - 1];
    const rid_t cur = data[i];
    // A step-+1 run never crosses into the kInvalidRid sentinel.
    if (!(cur == prev + 1 && cur != kInvalidRid)) ++s.runs;
    if (cur <= prev) s.ascending_nodup = false;
    if (cur < s.min) s.min = cur;
    if (cur > s.max) s.max = cur;
  }
  return s;
}

RidSetEncoding ChooseEncoding(const RidSetStats& stats, LineageCodec policy) {
  switch (policy) {
    case LineageCodec::kRaw:
      return RidSetEncoding::kRaw;
    case LineageCodec::kRange:
      return RidSetEncoding::kRange;
    case LineageCodec::kBitmap:
      // Lossless only for strictly-ascending duplicate-free lists; guard
      // against pathological spans (a near-empty list over a huge rid
      // universe would allocate span/32 words).
      if (stats.BitmapEligible() &&
          stats.BitmapWords() <= 8 * stats.RawWords()) {
        return RidSetEncoding::kBitmap;
      }
      return RidSetEncoding::kRange;
    case LineageCodec::kAdaptive: {
      size_t best_words = stats.RawWords();
      RidSetEncoding best = RidSetEncoding::kRaw;
      if (stats.RangeWords() < best_words) {
        best_words = stats.RangeWords();
        best = RidSetEncoding::kRange;
      }
      if (stats.BitmapEligible() && stats.BitmapWords() < best_words) {
        best = RidSetEncoding::kBitmap;
      }
      return best;
    }
  }
  return RidSetEncoding::kRaw;
}

namespace {

/// Appends the encoded words of one list onto `data`.
void EncodeListInto(const rid_t* d, size_t n, RidSetEncoding enc,
                    std::vector<rid_t>* data) {
  switch (enc) {
    case RidSetEncoding::kRaw:
      data->insert(data->end(), d, d + n);
      break;
    case RidSetEncoding::kRange: {
      size_t i = 0;
      while (i < n) {
        size_t j = i + 1;
        while (j < n && d[j] == d[j - 1] + 1 && d[j] != kInvalidRid) ++j;
        data->push_back(d[i]);
        data->push_back(static_cast<rid_t>(j - i));
        i = j;
      }
      break;
    }
    case RidSetEncoding::kBitmap: {
      const rid_t base = d[0];
      const size_t words =
          (static_cast<size_t>(d[n - 1]) - base) / 32 + 1;
      const size_t start = data->size();
      data->push_back(base);
      data->resize(start + 1 + words, 0);
      for (size_t i = 0; i < n; ++i) {
        const size_t off = d[i] - base;
        (*data)[start + 1 + off / 32] |=
            static_cast<rid_t>(1u) << (off % 32);
      }
      break;
    }
  }
}

}  // namespace

void PostingsBuilder::AddList(const rid_t* data, size_t n) {
  out_.AppendNewList(data, n, policy_);
}

void EncodedPostings::AppendNewList(const rid_t* d, size_t n,
                                    LineageCodec policy) {
  if (offsets_.empty()) offsets_.push_back(0);
  const RidSetStats stats = RidSetStats::Of(d, n);
  const RidSetEncoding enc =
      n == 0 ? RidSetEncoding::kRaw : ChooseEncoding(stats, policy);
  EncodeListInto(d, n, enc, &data_);
  encodings_.push_back(static_cast<uint8_t>(enc));
  offsets_.push_back(data_.size());
}

std::vector<rid_t>& EncodedPostings::OverlayList(size_t i) {
  auto it = overlay_.find(i);
  if (it != overlay_.end()) return it->second;
  std::vector<rid_t> list;
  list.reserve(ListSize(i));
  ForEachInList(i, [&list](rid_t r) { list.push_back(r); });
  return overlay_.emplace(i, std::move(list)).first->second;
}

void EncodedPostings::ExtendList(size_t i, const rid_t* d, size_t n) {
  SMOKE_DCHECK(i < encodings_.size());
  if (n == 0) return;
  if (auto it = overlay_.find(i); it != overlay_.end()) {
    it->second.insert(it->second.end(), d, d + n);
    return;
  }
  // Arena fast path: only the tail list can grow in place (any trailing
  // empty list shares the arena end offset, so extending a non-last list
  // would leak the new words into it).
  const bool tail =
      i + 1 == num_lists() && offsets_[i + 1] == data_.size();
  const RidSetEncoding enc = static_cast<RidSetEncoding>(encodings_[i]);
  if (tail && enc == RidSetEncoding::kRaw) {
    data_.insert(data_.end(), d, d + n);
    offsets_[i + 1] = data_.size();
    return;
  }
  if (tail && enc == RidSetEncoding::kRange) {
    for (size_t k = 0; k < n; ++k) {
      const rid_t v = d[k];
      const uint64_t b = offsets_[i];
      const uint64_t e = offsets_[i + 1];
      bool extended = false;
      if (e > b) {
        const rid_t start = data_[e - 2];
        const rid_t len = data_[e - 1];
        const rid_t last =
            start == kInvalidRid ? kInvalidRid : start + len - 1;
        if (last != kInvalidRid && v == last + 1 && v != kInvalidRid) {
          ++data_[e - 1];
          extended = true;
        }
      }
      if (!extended) {
        data_.push_back(v);
        data_.push_back(1);
        offsets_[i + 1] = data_.size();
      }
    }
    return;
  }
  // Bitmap or interior list: shift to the decoded overlay.
  std::vector<rid_t>& list = OverlayList(i);
  list.insert(list.end(), d, d + n);
}

void EncodedPostings::InsertSortedIntoList(size_t i, rid_t v) {
  SMOKE_DCHECK(i < encodings_.size());
  // Fast path: appending past the current tail is just an extend.
  bool past_end = true;
  if (auto it = overlay_.find(i); it != overlay_.end()) {
    past_end = it->second.empty() || v > it->second.back();
  } else if (ListSize(i) > 0) {
    rid_t last = 0;
    ForEachInList(i, [&last](rid_t r) { last = r; });
    past_end = v > last;
  }
  if (past_end) {
    ExtendList(i, &v, 1);
    return;
  }
  std::vector<rid_t>& list = OverlayList(i);
  auto pos = std::lower_bound(list.begin(), list.end(), v);
  if (pos != list.end() && *pos == v) return;  // already present
  list.insert(pos, v);
}

EncodedPostings EncodedPostings::Encode(const RidIndex& index,
                                        LineageCodec policy) {
  PostingsBuilder b(policy);
  const size_t n = index.size();
  for (size_t i = 0; i < n; ++i) b.AddList(index.list(i));
  return b.Finish();
}

size_t EncodedPostings::ListSize(size_t i) const {
  SMOKE_DCHECK(i < encodings_.size());
  if (!overlay_.empty()) {
    if (auto it = overlay_.find(i); it != overlay_.end()) {
      return it->second.size();
    }
  }
  const uint64_t b = offsets_[i];
  const uint64_t e = offsets_[i + 1];
  switch (static_cast<RidSetEncoding>(encodings_[i])) {
    case RidSetEncoding::kRaw:
      return static_cast<size_t>(e - b);
    case RidSetEncoding::kRange: {
      size_t n = 0;
      for (uint64_t w = b; w < e; w += 2) n += data_[w + 1];
      return n;
    }
    case RidSetEncoding::kBitmap: {
      size_t n = 0;
      for (uint64_t w = b + 1; w < e; ++w) {
        n += static_cast<size_t>(__builtin_popcount(data_[w]));
      }
      return n;
    }
  }
  return 0;
}

RidIndex EncodedPostings::Decode() const {
  const size_t n = num_lists();
  std::vector<RidVec> lists(n);
  for (size_t i = 0; i < n; ++i) {
    RidVec& l = lists[i];
    const size_t count = ListSize(i);
    if (count > 0) l.Reserve(count);
    ForEachInList(i, [&l](rid_t r) { l.PushBack(r); });
  }
  return RidIndex::FromLists(std::move(lists));
}

size_t EncodedPostings::TotalEdges() const {
  size_t n = 0;
  for (size_t i = 0; i < num_lists(); ++i) n += ListSize(i);
  return n;
}

namespace {

/// True when `cur` extends the array run ending at `prev`: a step-+1
/// ascending value run, or a constant kInvalidRid run.
inline bool ContinuesArrayRun(rid_t prev, rid_t cur) {
  return (prev == kInvalidRid && cur == kInvalidRid) ||
         (prev != kInvalidRid && cur == prev + 1 && cur != kInvalidRid);
}

}  // namespace

EncodedRidArray EncodedRidArray::Encode(std::vector<rid_t> array,
                                        LineageCodec policy) {
  EncodedRidArray out;
  out.size_ = array.size();
  size_t runs = 0;
  for (size_t i = 0; i < array.size(); ++i) {
    if (i == 0 || !ContinuesArrayRun(array[i - 1], array[i])) ++runs;
  }
  // Range costs 2 words per run; raw costs 1 word per position. Forced
  // kBitmap has no 1:1 form and behaves adaptively.
  bool range = false;
  switch (policy) {
    case LineageCodec::kRaw:
      range = false;
      break;
    case LineageCodec::kRange:
      range = !array.empty();
      break;
    case LineageCodec::kBitmap:
    case LineageCodec::kAdaptive:
      range = 2 * runs < array.size();
      break;
  }
  if (!range) {
    out.encoding_ = RidSetEncoding::kRaw;
    out.data_ = std::move(array);
    out.data_.shrink_to_fit();
    return out;
  }
  out.encoding_ = RidSetEncoding::kRange;
  out.run_pos_.reserve(runs);
  out.run_val_.reserve(runs);
  for (size_t i = 0; i < array.size(); ++i) {
    if (i == 0 || !ContinuesArrayRun(array[i - 1], array[i])) {
      out.run_pos_.push_back(static_cast<uint32_t>(i));
      out.run_val_.push_back(array[i]);
    }
  }
  return out;
}

void EncodedRidArray::Append(rid_t v) {
  if (encoding_ == RidSetEncoding::kRaw) {
    data_.push_back(v);
    ++size_;
    return;
  }
  if (size_ == 0) {
    run_pos_.push_back(0);
    run_val_.push_back(v);
    ++size_;
    return;
  }
  const rid_t start = run_val_.back();
  const rid_t last =
      start == kInvalidRid
          ? kInvalidRid
          : start + static_cast<rid_t>(size_ - run_pos_.back() - 1);
  if (!ContinuesArrayRun(last, v)) {
    run_pos_.push_back(static_cast<uint32_t>(size_));
    run_val_.push_back(v);
  }
  ++size_;
}

std::vector<rid_t> EncodedRidArray::Decode() const {
  std::vector<rid_t> out(size_);
  ForEach([&out](size_t i, rid_t r) { out[i] = r; });
  return out;
}

}  // namespace smoke
