// The compressed lineage store: physical representation and memory
// accounting of all retained lineage.
//
// Capture stays write-optimized (raw RidVec/RidArray buffers — paper
// Section 3.1: resize cost dominates capture). At capture-finalize time the
// store re-encodes the composed end-to-end indexes under a pluggable codec
// (lineage/store/rid_codec.h) chosen per posting list; consumers evaluate
// traces over the encoded forms in-situ, decode-on-demand.
//
// The store also owns the lineage memory budget: a LineageMemoryTracker
// accounts bytes per retained query (surfaced as
// SmokeEngine::LineageMemoryStats()), and when
// CaptureOptions::lineage_budget_bytes is exceeded the engine first
// re-encodes cold indexes adaptively and ultimately evicts them — evicted
// queries transparently fall back to the lazy-rescan trace strategy.
#ifndef SMOKE_LINEAGE_STORE_LINEAGE_STORE_H_
#define SMOKE_LINEAGE_STORE_LINEAGE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "lineage/query_lineage.h"
#include "lineage/store/rid_codec.h"

namespace smoke {

/// Re-encodes one finalized lineage index under `codec`. kRaw decodes back
/// to the raw forms (the identity on raw input); other policies encode —
/// already-encoded input is decoded first, so re-encoding under a different
/// policy is supported. kNone passes through.
LineageIndex EncodeLineage(LineageIndex index, LineageCodec codec);

/// Applies EncodeLineage to every captured backward/forward index of
/// `lineage`.
void EncodeQueryLineage(QueryLineage* lineage, LineageCodec codec);

/// Drops every index of `lineage` (budget eviction). Table names/pointers
/// are kept so relation lookup still resolves — traces answer via the
/// lazy-rescan fallback afterwards.
void EvictQueryLineage(QueryLineage* lineage);

/// Point-in-time report of the lineage store, per retained query.
struct LineageStoreStats {
  struct QueryStats {
    std::string name;
    size_t bytes = 0;
    LineageCodec codec = LineageCodec::kRaw;
    bool evicted = false;
    uint64_t last_access = 0;  ///< LRU tick; higher = more recent
  };
  size_t total_bytes = 0;
  size_t budget_bytes = 0;  ///< 0 = unlimited
  size_t num_queries = 0;
  size_t num_evicted = 0;
  std::vector<QueryStats> queries;  ///< name order
};

/// \brief Per-retained-query lineage memory accounting with an LRU clock.
/// The engine updates entries at every store mutation (retain, re-encode,
/// evict, drop) and bumps the clock on every trace access.
///
/// Internally synchronized: Touch() runs inside the engine's *const*
/// lookup paths, which concurrent readers may share — LRU bookkeeping must
/// not turn read-only trace APIs into data races. That invariant is
/// machine-checked: every field is SMOKE_GUARDED_BY(mu_), so a code path
/// that reaches the tick map without the lock cannot compile under Clang.
class LineageMemoryTracker {
 public:
  struct Entry {
    size_t bytes = 0;
    LineageCodec codec = LineageCodec::kRaw;
    bool evicted = false;
    uint64_t last_access = 0;
  };

  void Register(const std::string& name, size_t bytes, LineageCodec codec)
      SMOKE_EXCLUDES(mu_);

  /// Updates bytes/codec of an existing entry (re-encoding). Unknown names
  /// are ignored.
  void Update(const std::string& name, size_t bytes, LineageCodec codec)
      SMOKE_EXCLUDES(mu_);

  /// Marks `name` evicted with `residual_bytes` remaining (normally 0).
  void MarkEvicted(const std::string& name, size_t residual_bytes)
      SMOKE_EXCLUDES(mu_);

  void Release(const std::string& name) SMOKE_EXCLUDES(mu_);

  /// Bumps the LRU clock of `name` (trace access). Unknown names ignored.
  void Touch(const std::string& name) SMOKE_EXCLUDES(mu_);

  void SetBudget(size_t bytes) SMOKE_EXCLUDES(mu_);
  size_t budget() const SMOKE_EXCLUDES(mu_);
  size_t total_bytes() const SMOKE_EXCLUDES(mu_);

  /// The least-recently-accessed entry satisfying `pred`; false when none.
  /// `pred` runs under the tracker's lock: it must not call back into this
  /// tracker (SMOKE_EXCLUDES would not catch that through std::function).
  bool Coldest(
      const std::function<bool(const std::string&, const Entry&)>& pred,
      std::string* out) const SMOKE_EXCLUDES(mu_);

  LineageStoreStats Stats() const SMOKE_EXCLUDES(mu_);

  /// Copies the entry registered under `name` (the cost model's per-query
  /// store statistics); false when unknown.
  bool Lookup(const std::string& name, Entry* out) const SMOKE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ SMOKE_GUARDED_BY(mu_);
  size_t total_ SMOKE_GUARDED_BY(mu_) = 0;
  size_t budget_ SMOKE_GUARDED_BY(mu_) = 0;
  uint64_t tick_ SMOKE_GUARDED_BY(mu_) = 0;
};

}  // namespace smoke

#endif  // SMOKE_LINEAGE_STORE_LINEAGE_STORE_H_
