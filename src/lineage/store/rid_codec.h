// Pluggable rid-set codecs for the compressed lineage store.
//
// Smoke's rid arrays/indexes are write-optimized: capture appends into raw
// RidVec buffers because array resizing dominates capture cost (paper
// Section 3.1). Their *retained* footprint, however, is the system's
// dominant memory cost. Following "Compression and In-Situ Query Processing
// for Fine-Grained Array Lineage" (Zhao & Krishnan), the store re-encodes
// finalized indexes into compressed forms that are queried WITHOUT
// decompression: consumers iterate encoded posting lists decode-on-demand
// (ForEach over one list at a time), never materializing the full index.
//
// Three physical encodings, chosen per posting list / per array:
//  - kRaw:    the rids verbatim (today's representation, flattened).
//  - kRange:  maximal step-+1 runs as (start, len) pairs. Lossless for ANY
//             rid sequence — order and duplicates are preserved by run
//             splitting — and collapses contiguous selections and sorted
//             group postings to a handful of words.
//  - kBitmap: base rid + bit words (dense postings). Only eligible for
//             strictly-ascending duplicate-free lists, where ascending
//             decode order reproduces the sequence bit-identically.
//
// The adaptive policy picks the smallest eligible encoding per list from
// one-pass stats (count, run count, sortedness, span) at capture-finalize
// time. Every policy round-trips every input exactly: encoded and raw
// indexes answer lineage queries with bit-identical results.
#ifndef SMOKE_LINEAGE_STORE_RID_CODEC_H_
#define SMOKE_LINEAGE_STORE_RID_CODEC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/rid_vec.h"
#include "common/types.h"

namespace smoke {

class RidIndex;

/// Encoding policy for a lineage index (CaptureOptions::lineage_codec).
/// kRaw/kRange/kBitmap force one encoding family for every list (bench
/// ablations); kAdaptive picks per posting list.
enum class LineageCodec : uint8_t { kRaw, kRange, kBitmap, kAdaptive };

const char* LineageCodecName(LineageCodec c);

/// Physical encoding of one posting list / rid array.
enum class RidSetEncoding : uint8_t { kRaw = 0, kRange = 1, kBitmap = 2 };

/// One-pass statistics of a rid sequence, driving the adaptive choice.
struct RidSetStats {
  size_t count = 0;
  size_t runs = 0;            ///< maximal step-+1 ascending runs
  bool ascending_nodup = true;
  rid_t min = 0;
  rid_t max = 0;

  static RidSetStats Of(const rid_t* data, size_t n);

  size_t RawWords() const { return count; }
  size_t RangeWords() const { return runs * 2; }
  bool BitmapEligible() const { return ascending_nodup && count > 0; }
  /// 1 base word + bit words spanning [min, max]; only when eligible.
  size_t BitmapWords() const {
    return 1 + (static_cast<size_t>(max) - min) / 32 + 1;
  }
};

/// Resolves the policy against the stats of one list. Forced kBitmap falls
/// back to kRange for lists a bitmap cannot represent losslessly (unsorted
/// or duplicated) or would blow up on (span > 8x the raw size).
RidSetEncoding ChooseEncoding(const RidSetStats& stats, LineageCodec policy);

/// \brief A compressed 1-to-N lineage index: per-source posting lists in a
/// flat arena (offsets + per-list encoding tag + data words), replacing the
/// per-list RidVec headers and growth slack of RidIndex. Immutable after
/// Encode; consumers decode one list at a time (in-situ).
class EncodedPostings {
 public:
  /// Default: zero lists, no allocation (a default-constructed instance
  /// lives inside every LineageIndex). PostingsBuilder seeds offsets_.
  EncodedPostings() = default;

  /// Encodes every list of `index` under `policy`.
  static EncodedPostings Encode(const RidIndex& index, LineageCodec policy);

  size_t num_lists() const { return encodings_.size(); }

  RidSetEncoding list_encoding(size_t i) const {
    SMOKE_DCHECK(i < encodings_.size());
    return static_cast<RidSetEncoding>(encodings_[i]);
  }

  /// Decode-on-demand iteration over list `i`, in stored order. Lists that
  /// have been mutated through the refresh overlay iterate their decoded
  /// overlay copy instead of the arena words.
  template <typename F>
  void ForEachInList(size_t i, F&& f) const {
    SMOKE_DCHECK(i < encodings_.size());
    if (!overlay_.empty()) {
      if (auto it = overlay_.find(i); it != overlay_.end()) {
        for (rid_t r : it->second) f(r);
        return;
      }
    }
    const uint64_t b = offsets_[i];
    const uint64_t e = offsets_[i + 1];
    switch (static_cast<RidSetEncoding>(encodings_[i])) {
      case RidSetEncoding::kRaw:
        for (uint64_t w = b; w < e; ++w) f(data_[w]);
        break;
      case RidSetEncoding::kRange:
        for (uint64_t w = b; w < e; w += 2) {
          const rid_t start = data_[w];
          const rid_t len = data_[w + 1];
          for (rid_t k = 0; k < len; ++k) f(start + k);
        }
        break;
      case RidSetEncoding::kBitmap: {
        const rid_t base = data_[b];
        for (uint64_t w = b + 1; w < e; ++w) {
          uint32_t word = data_[w];
          const rid_t word_base =
              base + static_cast<rid_t>((w - b - 1) * 32);
          while (word != 0) {
            const int bit = __builtin_ctz(word);
            f(word_base + static_cast<rid_t>(bit));
            word &= word - 1;
          }
        }
        break;
      }
    }
  }

  /// Appends list `i` onto `out` (the TraceInto contract).
  void AppendList(size_t i, std::vector<rid_t>* out) const {
    ForEachInList(i, [out](rid_t r) { out->push_back(r); });
  }

  /// Decoded length of list `i` (scans the encoded words, not the rids).
  size_t ListSize(size_t i) const;

  // ---- incremental refresh mutators (src/refresh) ----
  //
  // Monotonic rid spaces make posting-list growth append-shaped, so the
  // encoded store supports three in-place mutations without a full
  // re-encode. Tail lists extend directly in the arena (the common case:
  // the delta touches the most recently written list); everything else
  // shifts the touched list into a decoded per-list overlay, leaving the
  // arena words of untouched lists shared and compressed.

  /// Appends a brand-new list (source rid == num_lists()) encoded under
  /// `policy` — the same choice PostingsBuilder::AddList makes.
  void AppendNewList(const rid_t* d, size_t n, LineageCodec policy);

  /// Appends `n` rids onto existing list `i`, preserving order. Arena
  /// fast path when `i` is the tail list under kRaw/kRange; otherwise the
  /// list moves to the overlay.
  void ExtendList(size_t i, const rid_t* d, size_t n);

  /// Inserts `v` into ascending duplicate-free list `i`, keeping it sorted
  /// and skipping the insert when `v` is already present.
  void InsertSortedIntoList(size_t i, rid_t v);

  /// Decodes the whole index back to its raw form (round-trip tests,
  /// re-encoding under a different policy).
  RidIndex Decode() const;

  size_t TotalEdges() const;
  size_t MemoryBytes() const {
    size_t b = offsets_.capacity() * sizeof(uint64_t) + encodings_.capacity() +
               data_.capacity() * sizeof(rid_t);
    for (const auto& [i, list] : overlay_) {
      (void)i;
      b += sizeof(size_t) + list.capacity() * sizeof(rid_t);
    }
    return b;
  }

 private:
  friend class PostingsBuilder;

  /// Moves list `i` out of the arena into its decoded overlay copy and
  /// returns it (no-op when already overlaid).
  std::vector<rid_t>& OverlayList(size_t i);

  std::vector<uint64_t> offsets_;   ///< word offsets into data_, n+1 entries
  std::vector<uint8_t> encodings_;  ///< RidSetEncoding per list
  std::vector<rid_t> data_;         ///< flat arena of encoded words
  /// Refresh overlay: decoded copies of mutated lists, keyed by list id.
  /// Readers (ForEachInList/ListSize) consult it first.
  std::unordered_map<size_t, std::vector<rid_t>> overlay_;
};

/// \brief Incremental construction of an EncodedPostings: append lists in
/// source order, each encoded under the builder's policy. Used by the store
/// to re-encode RidIndex lists and PartitionedRidIndex partitions without an
/// intermediate copy.
class PostingsBuilder {
 public:
  explicit PostingsBuilder(LineageCodec policy) : policy_(policy) {
    out_.offsets_.push_back(0);
  }

  /// Encodes `n` rids as the next list.
  void AddList(const rid_t* data, size_t n);
  void AddList(const RidVec& list) { AddList(list.data(), list.size()); }

  /// Shrinks the arena to size (MemoryBytes() reports capacity — growth
  /// slack would both waste memory and inflate the budget accounting).
  EncodedPostings Finish() {
    out_.offsets_.shrink_to_fit();
    out_.encodings_.shrink_to_fit();
    out_.data_.shrink_to_fit();
    return std::move(out_);
  }

 private:
  LineageCodec policy_;
  EncodedPostings out_;
};

/// \brief A compressed 1-to-1 lineage array (RidArray): position -> rid or
/// kInvalidRid. Two encodings: raw values, or maximal runs — step-+1
/// ascending value runs and constant kInvalidRid runs — stored as parallel
/// (run start position, run start value) arrays with O(log runs) random
/// access. A contiguous selection's backward array collapses to one run.
/// (Bitmaps do not apply to 1:1 arrays; forced kBitmap behaves like
/// kAdaptive here.)
class EncodedRidArray {
 public:
  EncodedRidArray() = default;

  /// Takes the array by value: when the chosen encoding is raw the input
  /// is adopted (moved) instead of copied — re-encoding happens exactly
  /// when the budget is under pressure, so peak transient memory matters.
  static EncodedRidArray Encode(std::vector<rid_t> array,
                                LineageCodec policy);

  size_t size() const { return size_; }
  RidSetEncoding encoding() const { return encoding_; }

  /// The rid at position `i` (kInvalidRid = no counterpart).
  rid_t At(size_t i) const {
    SMOKE_DCHECK(i < size_);
    if (encoding_ == RidSetEncoding::kRaw) return data_[i];
    // Binary search for the run containing i.
    size_t lo = 0, hi = run_pos_.size();
    while (hi - lo > 1) {
      const size_t mid = (lo + hi) / 2;
      if (run_pos_[mid] <= i) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const rid_t v = run_val_[lo];
    if (v == kInvalidRid) return kInvalidRid;
    return v + static_cast<rid_t>(i - run_pos_[lo]);
  }

  /// Linear decode: f(position, rid) for every position, in order.
  template <typename F>
  void ForEach(F&& f) const {
    if (encoding_ == RidSetEncoding::kRaw) {
      for (size_t i = 0; i < size_; ++i) f(i, data_[i]);
      return;
    }
    for (size_t r = 0; r < run_pos_.size(); ++r) {
      const size_t begin = run_pos_[r];
      const size_t end = r + 1 < run_pos_.size() ? run_pos_[r + 1] : size_;
      const rid_t v = run_val_[r];
      for (size_t i = begin; i < end; ++i) {
        f(i, v == kInvalidRid
                 ? kInvalidRid
                 : v + static_cast<rid_t>(i - begin));
      }
    }
  }

  std::vector<rid_t> Decode() const;

  /// Appends one position at the end (incremental refresh): extends the
  /// trailing run in place when `v` continues it, else starts a new run —
  /// the append-shaped mutation monotonic rid spaces produce.
  void Append(rid_t v);

  size_t MemoryBytes() const {
    return data_.capacity() * sizeof(rid_t) +
           run_pos_.capacity() * sizeof(uint32_t) +
           run_val_.capacity() * sizeof(rid_t);
  }

 private:
  RidSetEncoding encoding_ = RidSetEncoding::kRaw;
  size_t size_ = 0;
  std::vector<rid_t> data_;       ///< kRaw: the values
  std::vector<uint32_t> run_pos_; ///< kRange: run start positions (first 0)
  std::vector<rid_t> run_val_;    ///< kRange: run start values / kInvalidRid
};

}  // namespace smoke

#endif  // SMOKE_LINEAGE_STORE_RID_CODEC_H_
