// Partitioned rid arrays for the data-skipping optimization (paper
// Section 4.2): the rid lists of a backward index are partitioned by a
// (dictionary-encoded) predicate attribute so parameterized lineage
// consuming queries only scan the matching partition.
#ifndef SMOKE_LINEAGE_PARTITIONED_RID_INDEX_H_
#define SMOKE_LINEAGE_PARTITIONED_RID_INDEX_H_

#include <vector>

#include "common/macros.h"
#include "common/rid_vec.h"
#include "common/types.h"
#include "lineage/store/rid_codec.h"

namespace smoke {

/// \brief A backward lineage index whose per-output rid lists are split by
/// partition code: entry (output, code) -> rids of input records in that
/// output's lineage whose partition attribute has that code.
///
/// Two storage tiers: raw RidVec partitions during capture (write path),
/// and — after Freeze() — a compressed flat arena (lineage/store/) that the
/// skipping strategy consumes via the decode-on-demand ForEachInPartition
/// iterator without materializing rid lists.
class PartitionedRidIndex {
 public:
  PartitionedRidIndex() = default;
  PartitionedRidIndex(size_t num_outputs, uint32_t num_codes)
      : num_codes_(num_codes), parts_(num_outputs * num_codes) {}

  void Reset(size_t num_outputs, uint32_t num_codes) {
    num_codes_ = num_codes;
    parts_.assign(num_outputs * num_codes, RidVec());
  }

  /// Appends one output entry (a fresh row of empty partitions). Used when
  /// output cardinality grows during capture (group-by discovers groups).
  void AddOutput() { parts_.resize(parts_.size() + num_codes_); }

  void SetNumCodes(uint32_t num_codes) {
    SMOKE_DCHECK(parts_.empty());
    num_codes_ = num_codes;
  }

  size_t num_outputs() const {
    if (num_codes_ == 0) return 0;
    return (frozen_ ? encoded_.num_lists() : parts_.size()) / num_codes_;
  }
  uint32_t num_codes() const { return num_codes_; }

  void Append(size_t output, uint32_t code, rid_t rid) {
    SMOKE_DCHECK(code < num_codes_);
    SMOKE_DCHECK(!frozen_);
    parts_[output * num_codes_ + code].PushBack(rid);
  }

  /// Raw tier only (capture-side reuse); frozen indexes are consumed via
  /// ForEachInPartition.
  const RidVec& Partition(size_t output, uint32_t code) const {
    SMOKE_DCHECK(code < num_codes_);
    SMOKE_DCHECK(!frozen_);
    return parts_[output * num_codes_ + code];
  }

  bool frozen() const { return frozen_; }

  /// (Re-)encodes every partition under `policy` into the compressed flat
  /// arena and drops the raw RidVec tier. Appends are no longer allowed
  /// afterwards. Freezing an already-frozen index decodes and re-encodes
  /// (budget enforcement re-encodes cold forced-codec indexes adaptively).
  void Freeze(LineageCodec policy) {
    PostingsBuilder b(policy);
    if (frozen_) {
      std::vector<rid_t> list;
      for (size_t i = 0; i < encoded_.num_lists(); ++i) {
        list.clear();
        encoded_.AppendList(i, &list);
        b.AddList(list.data(), list.size());
      }
    } else {
      for (const RidVec& l : parts_) b.AddList(l);
    }
    encoded_ = b.Finish();
    parts_.clear();
    parts_.shrink_to_fit();
    frozen_ = true;
  }

  /// Decode-on-demand iteration over partition (output, code), in stored
  /// order. Works on both tiers — the skipping trace path consumes
  /// partitions through this, so frozen (compressed) skip indexes answer
  /// queries without decompression.
  template <typename F>
  void ForEachInPartition(size_t output, uint32_t code, F&& f) const {
    SMOKE_DCHECK(code < num_codes_);
    const size_t i = output * num_codes_ + code;
    if (frozen_) {
      encoded_.ForEachInList(i, f);
      return;
    }
    for (rid_t r : parts_[i]) f(r);
  }

  /// All rids of `output` across partitions (equivalent to an unpartitioned
  /// backward trace).
  void TraceAllInto(size_t output, std::vector<rid_t>* out) const {
    for (uint32_t c = 0; c < num_codes_; ++c) {
      ForEachInPartition(output, c, [out](rid_t r) { out->push_back(r); });
    }
  }

  size_t TotalEdges() const {
    if (frozen_) return encoded_.TotalEdges();
    size_t n = 0;
    for (const auto& l : parts_) n += l.size();
    return n;
  }

  size_t MemoryBytes() const {
    size_t b = parts_.capacity() * sizeof(RidVec);
    for (const auto& l : parts_) b += l.MemoryBytes();
    return b + encoded_.MemoryBytes();
  }

 private:
  uint32_t num_codes_ = 0;
  bool frozen_ = false;
  std::vector<RidVec> parts_;  // row-major: [output][code] (raw tier)
  EncodedPostings encoded_;    // frozen tier
};

}  // namespace smoke

#endif  // SMOKE_LINEAGE_PARTITIONED_RID_INDEX_H_
