// Partitioned rid arrays for the data-skipping optimization (paper
// Section 4.2): the rid lists of a backward index are partitioned by a
// (dictionary-encoded) predicate attribute so parameterized lineage
// consuming queries only scan the matching partition.
#ifndef SMOKE_LINEAGE_PARTITIONED_RID_INDEX_H_
#define SMOKE_LINEAGE_PARTITIONED_RID_INDEX_H_

#include <vector>

#include "common/macros.h"
#include "common/rid_vec.h"
#include "common/types.h"

namespace smoke {

/// \brief A backward lineage index whose per-output rid lists are split by
/// partition code: entry (output, code) -> rids of input records in that
/// output's lineage whose partition attribute has that code.
class PartitionedRidIndex {
 public:
  PartitionedRidIndex() = default;
  PartitionedRidIndex(size_t num_outputs, uint32_t num_codes)
      : num_codes_(num_codes), parts_(num_outputs * num_codes) {}

  void Reset(size_t num_outputs, uint32_t num_codes) {
    num_codes_ = num_codes;
    parts_.assign(num_outputs * num_codes, RidVec());
  }

  /// Appends one output entry (a fresh row of empty partitions). Used when
  /// output cardinality grows during capture (group-by discovers groups).
  void AddOutput() { parts_.resize(parts_.size() + num_codes_); }

  void SetNumCodes(uint32_t num_codes) {
    SMOKE_DCHECK(parts_.empty());
    num_codes_ = num_codes;
  }

  size_t num_outputs() const {
    return num_codes_ == 0 ? 0 : parts_.size() / num_codes_;
  }
  uint32_t num_codes() const { return num_codes_; }

  void Append(size_t output, uint32_t code, rid_t rid) {
    SMOKE_DCHECK(code < num_codes_);
    parts_[output * num_codes_ + code].PushBack(rid);
  }

  const RidVec& Partition(size_t output, uint32_t code) const {
    SMOKE_DCHECK(code < num_codes_);
    return parts_[output * num_codes_ + code];
  }

  /// All rids of `output` across partitions (equivalent to an unpartitioned
  /// backward trace).
  void TraceAllInto(size_t output, std::vector<rid_t>* out) const {
    for (uint32_t c = 0; c < num_codes_; ++c) {
      const RidVec& l = Partition(output, c);
      out->insert(out->end(), l.begin(), l.end());
    }
  }

  size_t TotalEdges() const {
    size_t n = 0;
    for (const auto& l : parts_) n += l.size();
    return n;
  }

  size_t MemoryBytes() const {
    size_t b = parts_.capacity() * sizeof(RidVec);
    for (const auto& l : parts_) b += l.MemoryBytes();
    return b;
  }

 private:
  uint32_t num_codes_ = 0;
  std::vector<RidVec> parts_;  // row-major: [output][code]
};

}  // namespace smoke

#endif  // SMOKE_LINEAGE_PARTITIONED_RID_INDEX_H_
