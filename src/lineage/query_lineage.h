// End-to-end lineage of one (multi-)operator query: for each input base
// relation, a backward index (output -> input rids) and a forward index
// (input rid -> outputs). This is what Smoke's instrumented plans emit
// (paper Figure 2: "query execution generates lineage indexes that map input
// and output record ids").
#ifndef SMOKE_LINEAGE_QUERY_LINEAGE_H_
#define SMOKE_LINEAGE_QUERY_LINEAGE_H_

#include <deque>
#include <string>
#include <vector>

#include "common/macros.h"
#include "lineage/rid_index.h"

namespace smoke {

class Table;

/// Lineage of the query output with respect to one input relation.
struct TableLineage {
  std::string table_name;
  const Table* table = nullptr;  ///< borrowed input relation
  LineageIndex backward;         ///< output position -> input rids
  LineageIndex forward;          ///< input rid -> output positions
};

/// \brief Lineage indexes for one executed query.
///
/// Backward lists preserve duplicates and per-table alignment: for an output
/// o, position j of every table's backward list corresponds to the same
/// derivation (join witness). This is what lets Smoke recover why-/how-
/// provenance from plain rid indexes (paper Appendix E).
class QueryLineage {
 public:
  QueryLineage() = default;

  size_t num_inputs() const { return inputs_.size(); }
  size_t output_cardinality() const { return output_cardinality_; }
  void set_output_cardinality(size_t n) { output_cardinality_ = n; }

  TableLineage& AddInput(std::string name, const Table* table) {
    inputs_.push_back(TableLineage{std::move(name), table, {}, {}});
    return inputs_.back();
  }

  const TableLineage& input(size_t i) const {
    SMOKE_DCHECK(i < inputs_.size());
    return inputs_[i];
  }
  TableLineage& mutable_input(size_t i) {
    SMOKE_DCHECK(i < inputs_.size());
    return inputs_[i];
  }

  /// Index of the input named `name`, or -1.
  int FindInput(const std::string& name) const {
    for (size_t i = 0; i < inputs_.size(); ++i) {
      if (inputs_[i].table_name == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Total bytes held by all indexes (storage-overhead reporting).
  size_t MemoryBytes() const {
    size_t b = 0;
    for (const auto& in : inputs_) {
      b += in.backward.MemoryBytes() + in.forward.MemoryBytes();
    }
    return b;
  }

  /// True when the indexes were dropped by the lineage store's budget
  /// eviction (lineage/store/). Distinguishes "evicted — answer backward
  /// traces via the lazy rescan" from "never captured / pruned / replaced
  /// by a push-down artifact", where a silent lazy answer would contradict
  /// the declared capture semantics and the right response is an error.
  bool evicted() const { return evicted_; }
  void set_evicted(bool evicted) { evicted_ = evicted; }

 private:
  // Deque: AddInput hands out references that must survive later AddInputs.
  std::deque<TableLineage> inputs_;
  size_t output_cardinality_ = 0;
  bool evicted_ = false;
};

}  // namespace smoke

#endif  // SMOKE_LINEAGE_QUERY_LINEAGE_H_
