#include "lineage/fragment_merge.h"

#include <utility>

#include "common/macros.h"

namespace smoke {

std::vector<rid_t> ExclusiveOffsets(const std::vector<size_t>& counts) {
  std::vector<rid_t> offsets(counts.size() + 1, 0);
  rid_t total = 0;
  for (size_t m = 0; m < counts.size(); ++m) {
    offsets[m] = total;
    total += static_cast<rid_t>(counts[m]);
  }
  offsets[counts.size()] = total;
  return offsets;
}

RidArray ConcatBackwardArrays(std::vector<RidArray> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  RidArray merged;
  merged.reserve(total);
  for (auto& p : parts) {
    merged.insert(merged.end(), p.begin(), p.end());
    RidArray().swap(p);
  }
  return merged;
}

RidArray ScatterForwardArrays(size_t num_inputs,
                              const std::vector<RidArray>& parts,
                              const std::vector<rid_t>& in_begins,
                              const std::vector<rid_t>& out_offsets) {
  SMOKE_DCHECK(parts.size() == in_begins.size());
  SMOKE_DCHECK(out_offsets.size() >= parts.size());
  RidArray merged(num_inputs, kInvalidRid);
  for (size_t m = 0; m < parts.size(); ++m) {
    const RidArray& p = parts[m];
    const rid_t in_begin = in_begins[m];
    const rid_t shift = out_offsets[m];
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i] != kInvalidRid) merged[in_begin + i] = p[i] + shift;
    }
  }
  return merged;
}

RidIndex ConcatIndexParts(std::vector<RidIndex> parts,
                          const std::vector<rid_t>& out_offsets) {
  SMOKE_DCHECK(out_offsets.size() >= parts.size());
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  RidIndex merged(total);
  size_t pos = 0;
  for (size_t m = 0; m < parts.size(); ++m) {
    const rid_t shift = out_offsets[m];
    for (size_t i = 0; i < parts[m].size(); ++i, ++pos) {
      RidVec list = std::move(parts[m].list(i));
      for (size_t j = 0; j < list.size(); ++j) list[j] += shift;
      merged.list(pos) = std::move(list);
    }
    parts[m] = RidIndex();
  }
  return merged;
}

RidIndex InvertBackwardArray(const RidArray& backward, size_t num_inputs) {
  // Exact sizing pass, then fill — appends happen in increasing output rid
  // order, matching the list order of single-threaded capture.
  std::vector<uint32_t> counts(num_inputs, 0);
  for (rid_t in : backward) {
    if (in != kInvalidRid) ++counts[in];
  }
  RidIndex fw(num_inputs);
  for (size_t i = 0; i < num_inputs; ++i) {
    if (counts[i] > 0) fw.list(i).Reserve(counts[i]);
  }
  for (rid_t out = 0; out < backward.size(); ++out) {
    rid_t in = backward[out];
    if (in != kInvalidRid) fw.Append(in, out);
  }
  return fw;
}

// ---- incremental-refresh append builders ----

void AppendArrayValue(LineageIndex* idx, rid_t v) {
  switch (idx->kind()) {
    case LineageIndex::Kind::kArray:
      idx->mutable_array().push_back(v);
      break;
    case LineageIndex::Kind::kEncodedArray:
      idx->mutable_encoded_array().Append(v);
      break;
    default:
      SMOKE_DCHECK(false);
  }
}

void AppendIndexList(LineageIndex* idx, const rid_t* d, size_t n,
                     LineageCodec codec) {
  switch (idx->kind()) {
    case LineageIndex::Kind::kIndex: {
      RidIndex& index = idx->mutable_index();
      const size_t i = index.size();
      index.Resize(i + 1);
      if (n > 0) {
        index.list(i).Reserve(n);
        index.list(i).PushBackAll(d, n);
      }
      break;
    }
    case LineageIndex::Kind::kEncodedIndex:
      idx->mutable_encoded_postings().AppendNewList(d, n, codec);
      break;
    default:
      SMOKE_DCHECK(false);
  }
}

void AppendEmptyIndexLists(LineageIndex* idx, size_t count,
                           LineageCodec codec) {
  switch (idx->kind()) {
    case LineageIndex::Kind::kIndex:
      idx->mutable_index().Resize(idx->mutable_index().size() + count);
      break;
    case LineageIndex::Kind::kEncodedIndex:
      for (size_t k = 0; k < count; ++k) {
        idx->mutable_encoded_postings().AppendNewList(nullptr, 0, codec);
      }
      break;
    default:
      SMOKE_DCHECK(false);
  }
}

void ExtendIndexList(LineageIndex* idx, size_t i, const rid_t* d, size_t n) {
  switch (idx->kind()) {
    case LineageIndex::Kind::kIndex:
      idx->mutable_index().list(i).PushBackAll(d, n);
      break;
    case LineageIndex::Kind::kEncodedIndex:
      idx->mutable_encoded_postings().ExtendList(i, d, n);
      break;
    default:
      SMOKE_DCHECK(false);
  }
}

void InsertSortedIntoIndexList(LineageIndex* idx, size_t i, rid_t v) {
  switch (idx->kind()) {
    case LineageIndex::Kind::kIndex: {
      RidVec& list = idx->mutable_index().list(i);
      size_t pos = 0;
      while (pos < list.size() && list[pos] < v) ++pos;
      if (pos < list.size() && list[pos] == v) return;  // already present
      list.PushBack(v);  // grow, then shift the tail up one slot
      for (size_t j = list.size() - 1; j > pos; --j) list[j] = list[j - 1];
      list[pos] = v;
      break;
    }
    case LineageIndex::Kind::kEncodedIndex:
      idx->mutable_encoded_postings().InsertSortedIntoList(i, v);
      break;
    default:
      SMOKE_DCHECK(false);
  }
}

}  // namespace smoke
