// Lineage composition across adjacent instrumented operators (paper
// Section 3.3): Smoke stitches the per-operator rid indexes of a plan into
// one end-to-end index per base relation, so lineage queries over the plan
// output remain single secondary-index scans.
//
// Composition is defined over the two physical index forms:
//   RidArray ∘ RidArray  -> RidArray   (1:1 through 1:1 stays 1:1)
//   RidArray ∘ RidIndex, RidIndex ∘ RidArray, RidIndex ∘ RidIndex -> RidIndex
//
// Backward composition preserves duplicates (witness multiplicity — the
// same property the monolithic SPJA block maintains); forward composition
// deduplicates, since forward lineage is set-valued (an input can reach an
// output through many derivations).
#ifndef SMOKE_LINEAGE_COMPOSE_H_
#define SMOKE_LINEAGE_COMPOSE_H_

#include "lineage/rid_index.h"

namespace smoke {

/// Composes backward indexes of two adjacent operators.
/// `outer` maps final-output positions to intermediate positions; `inner`
/// maps intermediate positions to input positions. The result maps
/// final-output positions to input positions. Either side empty (kNone, a
/// pruned direction) yields an empty index.
LineageIndex ComposeBackward(const LineageIndex& outer,
                             const LineageIndex& inner);

/// Composes forward indexes of two adjacent operators.
/// `inner` maps input positions to intermediate positions; `outer` maps
/// intermediate positions to final-output positions. The result maps input
/// positions to final-output positions, deduplicated per input.
LineageIndex ComposeForward(const LineageIndex& inner,
                            const LineageIndex& outer);

/// Multiset-unions `src` into `dst` (backward semantics: duplicate edges
/// from distinct derivation paths are kept). Both must be defined over the
/// same number of source positions. Used when a plan DAG reaches the same
/// node through multiple paths.
void MergeBackwardInto(LineageIndex* dst, LineageIndex src);

/// Set-unions `src` into `dst` (forward semantics: edges are deduplicated,
/// lists kept sorted).
void MergeForwardInto(LineageIndex* dst, LineageIndex src);

/// The identity 1:1 index over `n` positions (position i maps to i). Used to
/// materialize the lineage of pure pipelined operators (projection) when a
/// composition endpoint needs an explicit index.
LineageIndex IdentityIndex(size_t n);

}  // namespace smoke

#endif  // SMOKE_LINEAGE_COMPOSE_H_
