// Lineage index representations (paper Section 3.1).
//
// Two physical forms:
//  - RidArray: 1-to-1 relationships (e.g., selection backward/forward,
//    group-by forward). Entry i holds the single rid related to rid i.
//  - RidIndex: 1-to-N relationships (e.g., group-by backward, join forward).
//    Entry i points to an rid array of related rids. Arrays start at
//    capacity 10 and grow 1.5x (RidVec).
#ifndef SMOKE_LINEAGE_RID_INDEX_H_
#define SMOKE_LINEAGE_RID_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/rid_vec.h"
#include "common/types.h"

namespace smoke {

/// 1-to-1 lineage: position -> single rid (kInvalidRid = no counterpart,
/// e.g., a selection input tuple that failed the predicate).
using RidArray = std::vector<rid_t>;

/// \brief 1-to-N lineage: position -> rid list.
class RidIndex {
 public:
  RidIndex() = default;
  explicit RidIndex(size_t num_entries) : lists_(num_entries) {}

  size_t size() const { return lists_.size(); }
  void Resize(size_t n) { lists_.resize(n); }

  RidVec& list(size_t i) {
    SMOKE_DCHECK(i < lists_.size());
    return lists_[i];
  }
  const RidVec& list(size_t i) const {
    SMOKE_DCHECK(i < lists_.size());
    return lists_[i];
  }

  void Append(size_t i, rid_t rid) { lists_[i].PushBack(rid); }

  /// Takes ownership of pre-built rid lists (hash-table reuse: Inject moves
  /// the i_rids arrays out of the group/join hash table instead of copying).
  static RidIndex FromLists(std::vector<RidVec> lists) {
    RidIndex idx;
    idx.lists_ = std::move(lists);
    return idx;
  }

  /// Total number of lineage edges stored.
  size_t TotalEdges() const {
    size_t n = 0;
    for (const auto& l : lists_) n += l.size();
    return n;
  }

  size_t MemoryBytes() const {
    size_t b = lists_.capacity() * sizeof(RidVec);
    for (const auto& l : lists_) b += l.MemoryBytes();
    return b;
  }

  /// Total reallocations across all rid arrays (resize-cost ablation).
  uint64_t TotalReallocs() const {
    uint64_t n = 0;
    for (const auto& l : lists_) n += l.realloc_count();
    return n;
  }

 private:
  std::vector<RidVec> lists_;
};

/// \brief Tagged union over the two physical lineage forms, with a uniform
/// trace interface. Direction and endpoint metadata live in QueryLineage.
class LineageIndex {
 public:
  enum class Kind : uint8_t { kNone, kArray, kIndex };

  LineageIndex() = default;
  static LineageIndex FromArray(RidArray array) {
    LineageIndex idx;
    idx.kind_ = Kind::kArray;
    idx.array_ = std::move(array);
    return idx;
  }
  static LineageIndex FromIndex(RidIndex index) {
    LineageIndex idx;
    idx.kind_ = Kind::kIndex;
    idx.index_ = std::move(index);
    return idx;
  }

  Kind kind() const { return kind_; }
  bool empty() const { return kind_ == Kind::kNone; }

  const RidArray& array() const {
    SMOKE_DCHECK(kind_ == Kind::kArray);
    return array_;
  }
  const RidIndex& index() const {
    SMOKE_DCHECK(kind_ == Kind::kIndex);
    return index_;
  }
  RidArray& mutable_array() { return array_; }
  RidIndex& mutable_index() { return index_; }

  /// Number of source positions this index is defined over.
  size_t size() const {
    switch (kind_) {
      case Kind::kArray: return array_.size();
      case Kind::kIndex: return index_.size();
      case Kind::kNone:  return 0;
    }
    return 0;
  }

  /// Appends all rids related to source position `pos` into `out`.
  void TraceInto(rid_t pos, std::vector<rid_t>* out) const {
    switch (kind_) {
      case Kind::kArray: {
        rid_t r = array_[pos];
        if (r != kInvalidRid) out->push_back(r);
        break;
      }
      case Kind::kIndex: {
        const RidVec& l = index_.list(pos);
        out->insert(out->end(), l.begin(), l.end());
        break;
      }
      case Kind::kNone:
        break;
    }
  }

  size_t TotalEdges() const {
    switch (kind_) {
      case Kind::kArray: {
        size_t n = 0;
        for (rid_t r : array_) n += (r != kInvalidRid);
        return n;
      }
      case Kind::kIndex: return index_.TotalEdges();
      case Kind::kNone:  return 0;
    }
    return 0;
  }

  size_t MemoryBytes() const {
    switch (kind_) {
      case Kind::kArray: return array_.capacity() * sizeof(rid_t);
      case Kind::kIndex: return index_.MemoryBytes();
      case Kind::kNone:  return 0;
    }
    return 0;
  }

 private:
  Kind kind_ = Kind::kNone;
  RidArray array_;
  RidIndex index_;
};

}  // namespace smoke

#endif  // SMOKE_LINEAGE_RID_INDEX_H_
