// Lineage index representations (paper Section 3.1).
//
// Two physical forms:
//  - RidArray: 1-to-1 relationships (e.g., selection backward/forward,
//    group-by forward). Entry i holds the single rid related to rid i.
//  - RidIndex: 1-to-N relationships (e.g., group-by backward, join forward).
//    Entry i points to an rid array of related rids. Arrays start at
//    capacity 10 and grow 1.5x (RidVec).
#ifndef SMOKE_LINEAGE_RID_INDEX_H_
#define SMOKE_LINEAGE_RID_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/rid_vec.h"
#include "common/types.h"
#include "lineage/store/rid_codec.h"

namespace smoke {

/// 1-to-1 lineage: position -> single rid (kInvalidRid = no counterpart,
/// e.g., a selection input tuple that failed the predicate).
using RidArray = std::vector<rid_t>;

/// \brief 1-to-N lineage: position -> rid list.
class RidIndex {
 public:
  RidIndex() = default;
  explicit RidIndex(size_t num_entries) : lists_(num_entries) {}

  size_t size() const { return lists_.size(); }
  void Resize(size_t n) { lists_.resize(n); }

  RidVec& list(size_t i) {
    SMOKE_DCHECK(i < lists_.size());
    return lists_[i];
  }
  const RidVec& list(size_t i) const {
    SMOKE_DCHECK(i < lists_.size());
    return lists_[i];
  }

  void Append(size_t i, rid_t rid) { lists_[i].PushBack(rid); }

  /// Takes ownership of pre-built rid lists (hash-table reuse: Inject moves
  /// the i_rids arrays out of the group/join hash table instead of copying).
  static RidIndex FromLists(std::vector<RidVec> lists) {
    RidIndex idx;
    idx.lists_ = std::move(lists);
    return idx;
  }

  /// Total number of lineage edges stored.
  size_t TotalEdges() const {
    size_t n = 0;
    for (const auto& l : lists_) n += l.size();
    return n;
  }

  size_t MemoryBytes() const {
    size_t b = lists_.capacity() * sizeof(RidVec);
    for (const auto& l : lists_) b += l.MemoryBytes();
    return b;
  }

  /// Total reallocations across all rid arrays (resize-cost ablation).
  uint64_t TotalReallocs() const {
    uint64_t n = 0;
    for (const auto& l : lists_) n += l.realloc_count();
    return n;
  }

 private:
  std::vector<RidVec> lists_;
};

/// \brief Tagged union over the physical lineage forms, with a uniform
/// trace interface. Direction and endpoint metadata live in QueryLineage.
///
/// Two raw forms (write-optimized, what capture produces) and two encoded
/// forms (read-optimized, what the compressed lineage store re-encodes
/// retained indexes into at finalize time — lineage/store/). Consumers that
/// go through the uniform accessors (TraceInto / ForEachRelated / ValueAt)
/// work over all forms without decompressing whole indexes.
class LineageIndex {
 public:
  enum class Kind : uint8_t {
    kNone,
    kArray,          ///< raw 1:1
    kIndex,          ///< raw 1:N
    kEncodedArray,   ///< compressed 1:1 (lineage/store/rid_codec.h)
    kEncodedIndex,   ///< compressed 1:N posting lists
  };

  LineageIndex() = default;
  static LineageIndex FromArray(RidArray array) {
    LineageIndex idx;
    idx.kind_ = Kind::kArray;
    idx.array_ = std::move(array);
    return idx;
  }
  static LineageIndex FromIndex(RidIndex index) {
    LineageIndex idx;
    idx.kind_ = Kind::kIndex;
    idx.index_ = std::move(index);
    return idx;
  }
  static LineageIndex FromEncodedArray(EncodedRidArray array) {
    LineageIndex idx;
    idx.kind_ = Kind::kEncodedArray;
    idx.earray_ = std::move(array);
    return idx;
  }
  static LineageIndex FromEncodedPostings(EncodedPostings postings) {
    LineageIndex idx;
    idx.kind_ = Kind::kEncodedIndex;
    idx.epostings_ = std::move(postings);
    return idx;
  }

  Kind kind() const { return kind_; }
  bool empty() const { return kind_ == Kind::kNone; }
  bool encoded() const {
    return kind_ == Kind::kEncodedArray || kind_ == Kind::kEncodedIndex;
  }
  /// True for the 1:1 forms (raw or encoded) — ValueAt is available.
  bool IsOneToOne() const {
    return kind_ == Kind::kArray || kind_ == Kind::kEncodedArray;
  }

  const RidArray& array() const {
    SMOKE_DCHECK(kind_ == Kind::kArray);
    return array_;
  }
  const RidIndex& index() const {
    SMOKE_DCHECK(kind_ == Kind::kIndex);
    return index_;
  }
  const EncodedRidArray& encoded_array() const {
    SMOKE_DCHECK(kind_ == Kind::kEncodedArray);
    return earray_;
  }
  const EncodedPostings& encoded_postings() const {
    SMOKE_DCHECK(kind_ == Kind::kEncodedIndex);
    return epostings_;
  }
  RidArray& mutable_array() { return array_; }
  RidIndex& mutable_index() { return index_; }
  EncodedRidArray& mutable_encoded_array() {
    SMOKE_DCHECK(kind_ == Kind::kEncodedArray);
    return earray_;
  }
  EncodedPostings& mutable_encoded_postings() {
    SMOKE_DCHECK(kind_ == Kind::kEncodedIndex);
    return epostings_;
  }

  /// Number of source positions this index is defined over.
  size_t size() const {
    switch (kind_) {
      case Kind::kArray:        return array_.size();
      case Kind::kIndex:        return index_.size();
      case Kind::kEncodedArray: return earray_.size();
      case Kind::kEncodedIndex: return epostings_.num_lists();
      case Kind::kNone:         return 0;
    }
    return 0;
  }

  /// The single rid related to `pos` (1:1 forms only; kInvalidRid = none).
  rid_t ValueAt(rid_t pos) const {
    SMOKE_DCHECK(IsOneToOne());
    return kind_ == Kind::kArray ? array_[pos] : earray_.At(pos);
  }

  /// Calls `f(rid)` for every rid related to source position `pos`, in
  /// stored order. Decode-on-demand for the encoded forms: only the probed
  /// posting list is decoded, never the whole index (in-situ evaluation).
  template <typename F>
  void ForEachRelated(rid_t pos, F&& f) const {
    switch (kind_) {
      case Kind::kArray: {
        rid_t r = array_[pos];
        if (r != kInvalidRid) f(r);
        break;
      }
      case Kind::kIndex: {
        const RidVec& l = index_.list(pos);
        for (rid_t r : l) f(r);
        break;
      }
      case Kind::kEncodedArray: {
        rid_t r = earray_.At(pos);
        if (r != kInvalidRid) f(r);
        break;
      }
      case Kind::kEncodedIndex:
        epostings_.ForEachInList(pos, f);
        break;
      case Kind::kNone:
        break;
    }
  }

  /// Appends all rids related to source position `pos` into `out`.
  void TraceInto(rid_t pos, std::vector<rid_t>* out) const {
    if (kind_ == Kind::kIndex) {  // bulk append fast path
      const RidVec& l = index_.list(pos);
      out->insert(out->end(), l.begin(), l.end());
      return;
    }
    ForEachRelated(pos, [out](rid_t r) { out->push_back(r); });
  }

  size_t TotalEdges() const {
    switch (kind_) {
      case Kind::kArray: {
        size_t n = 0;
        for (rid_t r : array_) n += (r != kInvalidRid);
        return n;
      }
      case Kind::kIndex:        return index_.TotalEdges();
      case Kind::kEncodedArray: {
        size_t n = 0;
        earray_.ForEach([&n](size_t, rid_t r) { n += (r != kInvalidRid); });
        return n;
      }
      case Kind::kEncodedIndex: return epostings_.TotalEdges();
      case Kind::kNone:         return 0;
    }
    return 0;
  }

  size_t MemoryBytes() const {
    switch (kind_) {
      case Kind::kArray:        return array_.capacity() * sizeof(rid_t);
      case Kind::kIndex:        return index_.MemoryBytes();
      case Kind::kEncodedArray: return earray_.MemoryBytes();
      case Kind::kEncodedIndex: return epostings_.MemoryBytes();
      case Kind::kNone:         return 0;
    }
    return 0;
  }

 private:
  Kind kind_ = Kind::kNone;
  RidArray array_;
  RidIndex index_;
  EncodedRidArray earray_;
  EncodedPostings epostings_;
};

}  // namespace smoke

#endif  // SMOKE_LINEAGE_RID_INDEX_H_
