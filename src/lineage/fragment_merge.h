// Deterministic merging of per-morsel lineage fragments (ROADMAP "Parallel
// capture").
//
// Morsel-driven operators (engine/select.cc, engine/hash_join.cc,
// engine/group_by.cc) emit one fragment per morsel: rids on the INPUT side
// are absolute (a morsel knows its [begin, end) row range), rids on the
// OUTPUT side are morsel-local because a morsel cannot know how many output
// rows earlier morsels produce. The merge step concatenates fragments in
// morsel order, shifting output-side rids by each morsel's output offset
// (the exclusive prefix sum of per-morsel output counts).
//
// Because every function here consumes fragments in morsel index order —
// never in thread completion order — merged lineage is bit-identical to the
// single-threaded run for any thread count (tests/parallel_capture_test.cc).
#ifndef SMOKE_LINEAGE_FRAGMENT_MERGE_H_
#define SMOKE_LINEAGE_FRAGMENT_MERGE_H_

#include <vector>

#include "lineage/rid_index.h"

namespace smoke {

/// Exclusive prefix sum of per-morsel output counts: offsets[m] is the
/// global output rid of morsel m's first output row. One extra trailing
/// entry holds the total.
std::vector<rid_t> ExclusiveOffsets(const std::vector<size_t>& counts);

/// Concatenates per-morsel 1:1 backward fragments (output-position order ==
/// morsel order; values are already absolute input rids). Parts are consumed.
RidArray ConcatBackwardArrays(std::vector<RidArray> parts);

/// Merges per-morsel forward fragments into one input-indexed array of
/// `num_inputs` entries. Part m covers input rows [in_begins[m],
/// in_begins[m] + parts[m].size()) and holds morsel-local output rids
/// (kInvalidRid for dropped rows), shifted up by out_offsets[m].
RidArray ScatterForwardArrays(size_t num_inputs,
                              const std::vector<RidArray>& parts,
                              const std::vector<rid_t>& in_begins,
                              const std::vector<rid_t>& out_offsets);

/// Concatenates per-morsel 1:N forward fragments over disjoint input spans
/// (part m's entry i is input row in_begins[m] + i), shifting every stored
/// output rid by out_offsets[m]. Parts are consumed.
RidIndex ConcatIndexParts(std::vector<RidIndex> parts,
                          const std::vector<rid_t>& out_offsets);

/// Inverts a merged 1:1 backward array (output rid -> input rid) into the
/// exactly-sized forward index (input rid -> output rids). Output rids are
/// appended in increasing order — the same list order single-threaded
/// capture produces. Used for the build-side forward index of a parallel
/// join probe, where per-morsel fragments would overlap on the input side.
RidIndex InvertBackwardArray(const RidArray& backward, size_t num_inputs);

// ---- incremental-refresh append builders (src/refresh) ----
//
// Delta batches extend retained composed indexes in place. Rid spaces are
// monotonic, so every maintenance operation is append-shaped: new output
// positions land at the end of 1:1 arrays, new source positions append
// lists, and existing posting lists grow at their tail (the one exception,
// sorted mid-list insert, only occurs for static relations feeding a
// group-by root). Each builder dispatches over the raw and encoded forms
// of LineageIndex, so refresh works directly on store-encoded retained
// indexes (encoded appends route through the PostingsBuilder encode path).

/// Appends one trailing position to a 1:1 array (raw or encoded).
void AppendArrayValue(LineageIndex* idx, rid_t v);

/// Appends a new source position holding `n` rids to a 1:N index. Encoded
/// indexes encode the new list under `codec`.
void AppendIndexList(LineageIndex* idx, const rid_t* d, size_t n,
                     LineageCodec codec);

/// Appends `count` empty source positions to a 1:N index (input rows with
/// no outputs yet).
void AppendEmptyIndexLists(LineageIndex* idx, size_t count,
                           LineageCodec codec);

/// Appends `n` rids at the tail of existing list `i`, preserving order.
void ExtendIndexList(LineageIndex* idx, size_t i, const rid_t* d, size_t n);

/// Inserts `v` into ascending duplicate-free list `i` (no-op when already
/// present).
void InsertSortedIntoIndexList(LineageIndex* idx, size_t i, rid_t v);

}  // namespace smoke

#endif  // SMOKE_LINEAGE_FRAGMENT_MERGE_H_
