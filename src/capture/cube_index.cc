#include "capture/cube_index.h"

#include "common/macros.h"
#include "engine/key_encode.h"

namespace smoke {

void CubeIndex::Init(const Table& fact, std::vector<int> sub_cols,
                     std::vector<AggSpec> aggs) {
  fact_ = &fact;
  sub_cols_ = std::move(sub_cols);
  layout_ = AggLayout(fact, aggs);
  stride_ = layout_.stride();
  int_key_ = sub_cols_.size() == 1 &&
             fact.column(static_cast<size_t>(sub_cols_[0])).type() ==
                 DataType::kInt64;
  if (int_key_) {
    int_col_ = fact.column(static_cast<size_t>(sub_cols_[0])).ints().data();
  }
  enabled_ = true;
}

std::string CubeIndex::StrKey(rid_t rid) const {
  return EncodeRowKey(*fact_, sub_cols_, rid);
}

void CubeIndex::AddGroup() {
  if (int_key_) int_maps_.emplace_back();
  else str_maps_.emplace_back();
  states_.emplace_back();
  cell_first_rid_.emplace_back();
}

void CubeIndex::Update(uint32_t g, rid_t rid) {
  uint32_t cell;
  if (int_key_) {
    auto& map = int_maps_[g];
    auto [it, inserted] =
        map.emplace(IntKey(rid), static_cast<uint32_t>(cell_first_rid_[g].size()));
    cell = it->second;
    if (inserted) {
      states_[g].resize(states_[g].size() + stride_);
      layout_.Init(&states_[g][cell * stride_]);
      cell_first_rid_[g].push_back(rid);
    }
  } else {
    auto& map = str_maps_[g];
    auto [it, inserted] =
        map.emplace(StrKey(rid), static_cast<uint32_t>(cell_first_rid_[g].size()));
    cell = it->second;
    if (inserted) {
      states_[g].resize(states_[g].size() + stride_);
      layout_.Init(&states_[g][cell * stride_]);
      cell_first_rid_[g].push_back(rid);
    }
  }
  layout_.Update(&states_[g][cell * stride_], rid);
}

Table CubeIndex::GroupTable(uint32_t g) const {
  Schema s;
  for (int c : sub_cols_) {
    s.AddField(fact_->schema().field(static_cast<size_t>(c)).name,
               fact_->schema().field(static_cast<size_t>(c)).type);
  }
  for (size_t i = 0; i < layout_.num_aggs(); ++i) {
    s.AddField(layout_.OutputField(i).name, layout_.OutputField(i).type);
  }
  Table out(s);
  const auto& firsts = cell_first_rid_[g];
  std::vector<Column*> agg_cols;
  for (size_t i = 0; i < layout_.num_aggs(); ++i) {
    agg_cols.push_back(&out.mutable_column(sub_cols_.size() + i));
  }
  for (size_t cell = 0; cell < firsts.size(); ++cell) {
    for (size_t k = 0; k < sub_cols_.size(); ++k) {
      out.mutable_column(k).AppendFrom(
          fact_->column(static_cast<size_t>(sub_cols_[k])), firsts[cell]);
    }
    layout_.Finalize(&states_[g][cell * stride_], &agg_cols);
  }
  return out;
}

size_t CubeIndex::MemoryBytes() const {
  size_t b = 0;
  for (const auto& v : states_) b += v.capacity() * sizeof(double);
  for (const auto& v : cell_first_rid_) b += v.capacity() * sizeof(rid_t);
  for (const auto& m : int_maps_) b += m.size() * 24;
  for (const auto& m : str_maps_) b += m.size() * 48;
  return b;
}

}  // namespace smoke
