// Group-by push-down (paper Section 4.2): during lineage capture, partition
// each output group's lineage by additional grouping attributes and maintain
// incremental aggregation state per (group, sub-key) — an online partial
// data cube that piggy-backs on the base query's table scan. Lineage
// consuming queries that only add grouping attributes become lookups.
//
// Supports algebraic/distributive functions (SUM, COUNT, AVG, MIN, MAX),
// like the data-cube literature the paper builds on.
#ifndef SMOKE_CAPTURE_CUBE_INDEX_H_
#define SMOKE_CAPTURE_CUBE_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/aggregates.h"
#include "storage/table.h"

namespace smoke {

/// \brief Per-output-group sub-aggregates keyed by extra grouping columns.
class CubeIndex {
 public:
  CubeIndex() = default;

  /// Binds to the fact table; `sub_cols` are the push-down grouping columns
  /// and `aggs` the aggregates to materialize per (group, sub-key).
  void Init(const Table& fact, std::vector<int> sub_cols,
            std::vector<AggSpec> aggs);

  bool enabled() const { return enabled_; }
  const AggLayout& layout() const { return layout_; }
  size_t num_groups() const { return states_.size(); }

  /// Registers output group `g` (groups must be added densely in order).
  void AddGroup();

  /// Folds fact row `rid` into group `g`'s cube.
  void Update(uint32_t g, rid_t rid);

  /// Materializes group `g`'s cube as a relation: the sub-key columns
  /// followed by the finalized aggregates. Row order follows sub-key
  /// first-encounter order.
  Table GroupTable(uint32_t g) const;

  size_t MemoryBytes() const;

 private:
  /// Encodes the sub-key of `rid` (int fast path / byte string).
  int64_t IntKey(rid_t rid) const { return int_col_[rid]; }
  std::string StrKey(rid_t rid) const;

  bool enabled_ = false;
  const Table* fact_ = nullptr;
  std::vector<int> sub_cols_;
  AggLayout layout_;
  size_t stride_ = 0;
  bool int_key_ = false;
  const int64_t* int_col_ = nullptr;

  // Per group: sub-key -> cell index; cell states are flattened per group.
  std::vector<std::unordered_map<int64_t, uint32_t>> int_maps_;
  std::vector<std::unordered_map<std::string, uint32_t>> str_maps_;
  std::vector<std::vector<double>> states_;
  std::vector<std::vector<rid_t>> cell_first_rid_;  // for key materialization
};

}  // namespace smoke

#endif  // SMOKE_CAPTURE_CUBE_INDEX_H_
