#include "query/provenance.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/macros.h"

namespace smoke {

namespace {

/// Collects the aligned witness tuples of `oid` (may contain duplicates).
std::vector<Witness> RawWitnesses(const QueryLineage& lineage, rid_t oid) {
  const size_t nt = lineage.num_inputs();
  SMOKE_CHECK(nt >= 1);
  std::vector<std::vector<rid_t>> per_table(nt);
  size_t len = SIZE_MAX;
  for (size_t t = 0; t < nt; ++t) {
    lineage.input(t).backward.TraceInto(oid, &per_table[t]);
    len = std::min(len, per_table[t].size());
  }
  // Alignment invariant: all lists have the same length for SPJA plans.
  for (size_t t = 0; t < nt; ++t) SMOKE_CHECK(per_table[t].size() == len);
  std::vector<Witness> ws(len);
  for (size_t j = 0; j < len; ++j) {
    ws[j].rids.resize(nt);
    for (size_t t = 0; t < nt; ++t) ws[j].rids[t] = per_table[t][j];
  }
  return ws;
}

}  // namespace

std::vector<Witness> WhyProvenance(const QueryLineage& lineage, rid_t oid) {
  std::vector<Witness> ws = RawWitnesses(lineage, oid);
  std::set<std::vector<rid_t>> seen;
  std::vector<Witness> out;
  for (auto& w : ws) {
    if (seen.insert(w.rids).second) out.push_back(std::move(w));
  }
  return out;
}

std::vector<std::vector<rid_t>> WhichProvenance(const QueryLineage& lineage,
                                                rid_t oid) {
  const size_t nt = lineage.num_inputs();
  std::vector<std::vector<rid_t>> out(nt);
  for (size_t t = 0; t < nt; ++t) {
    lineage.input(t).backward.TraceInto(oid, &out[t]);
    std::sort(out[t].begin(), out[t].end());
    out[t].erase(std::unique(out[t].begin(), out[t].end()), out[t].end());
  }
  return out;
}

std::string HowProvenance(const QueryLineage& lineage, rid_t oid) {
  std::vector<Witness> ws = WhyProvenance(lineage, oid);
  const size_t nt = lineage.num_inputs();
  std::ostringstream out;

  auto term = [&](size_t t, rid_t r) {
    return lineage.input(t).table_name + "[" + std::to_string(r) + "]";
  };

  if (nt == 2) {
    // Factor on the first relation: a1*(b1 + b2) + a2*(b3).
    std::map<rid_t, std::vector<rid_t>> grouped;
    for (const Witness& w : ws) grouped[w.rids[0]].push_back(w.rids[1]);
    bool first = true;
    for (const auto& [a, bs] : grouped) {
      if (!first) out << " + ";
      first = false;
      out << term(0, a);
      out << "*(";
      for (size_t i = 0; i < bs.size(); ++i) {
        if (i) out << " + ";
        out << term(1, bs[i]);
      }
      out << ")";
    }
    return out.str();
  }

  // General case: sum of monomials.
  for (size_t j = 0; j < ws.size(); ++j) {
    if (j) out << " + ";
    for (size_t t = 0; t < nt; ++t) {
      if (t) out << "*";
      out << term(t, ws[j].rids[t]);
    }
  }
  return out.str();
}

}  // namespace smoke
