// Lazy lineage query evaluation (paper Section 2.1, Appendix C): rewrite
// lineage queries as relational queries over the input relations. For a
// group-by base query O = γ_{g1..gn,F}(I), the backward lineage of output o
// is σ_{o.g1=I.g1 ∧ ... ∧ o.gn=I.gn}(I), with the base query's selections
// conjoined.
//
// The unified consumption API reuses these rewrites: TraceStrategy::kLazy
// (query/trace_builder.h) compiles the same predicates into a Scan → Select
// plan instead of a Trace node. The free functions here remain the
// standalone baseline the benches time.
#ifndef SMOKE_QUERY_LAZY_H_
#define SMOKE_QUERY_LAZY_H_

#include <vector>

#include "engine/spja.h"

namespace smoke {

/// True when the lazy backward rewrite can answer traces on `query`
/// *transparently* (the lineage store's eviction fallback): fact table
/// present, no dimension joins (the rescan cannot reconstruct join
/// survivorship), and every group key on the fact table. Shared by the
/// engine's eviction-eligibility gate and TraceBuilder strategy resolution
/// so the two can never disagree.
bool LazyRewriteAvailable(const SPJAQuery& query);

/// Builds the selection predicates (over the fact table) equivalent to "fact
/// row belongs to output group `oid`" of the SPJA base query: the base
/// query's fact filters plus equality on each group-by key with the group's
/// values. Requires all group-by columns to live on the fact table (true for
/// the paper's lazy comparisons — Q1 and the microbenchmarks).
std::vector<Predicate> LazyBackwardPredicates(const SPJAQuery& query,
                                              const Table& output, rid_t oid);

/// Lazily evaluates Lb(oid, fact) as a full selection scan of the fact
/// table. This is the paper's strongest lazy baseline (cheap equality
/// predicates on the group keys).
std::vector<rid_t> LazyBackwardRids(const SPJAQuery& query,
                                    const Table& output, rid_t oid);

}  // namespace smoke

#endif  // SMOKE_QUERY_LAZY_H_
