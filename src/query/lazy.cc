#include "query/lazy.h"

#include "common/macros.h"

namespace smoke {

bool LazyRewriteAvailable(const SPJAQuery& query) {
  if (query.fact == nullptr || !query.dims.empty()) return false;
  for (const ColRef& c : query.group_by) {
    if (c.table != ColRef::kFact) return false;
  }
  return true;
}

std::vector<Predicate> LazyBackwardPredicates(const SPJAQuery& query,
                                              const Table& output,
                                              rid_t oid) {
  std::vector<Predicate> preds = query.fact_filters;
  for (size_t k = 0; k < query.group_by.size(); ++k) {
    const ColRef& ref = query.group_by[k];
    SMOKE_CHECK(ref.table == ColRef::kFact);
    const Column& out_col = output.column(k);
    switch (out_col.type()) {
      case DataType::kInt64:
        preds.push_back(
            Predicate::Int(ref.col, CmpOp::kEq, out_col.ints()[oid]));
        break;
      case DataType::kFloat64:
        preds.push_back(
            Predicate::Double(ref.col, CmpOp::kEq, out_col.doubles()[oid]));
        break;
      case DataType::kString:
        preds.push_back(
            Predicate::Str(ref.col, CmpOp::kEq, out_col.strings()[oid]));
        break;
    }
  }
  return preds;
}

std::vector<rid_t> LazyBackwardRids(const SPJAQuery& query,
                                    const Table& output, rid_t oid) {
  std::vector<Predicate> preds = LazyBackwardPredicates(query, output, oid);
  PredicateList plist(*query.fact, preds);
  std::vector<rid_t> rids;
  const size_t n = query.fact->num_rows();
  for (rid_t r = 0; r < n; ++r) {
    if (plist.Eval(r)) rids.push_back(r);
  }
  return rids;
}

}  // namespace smoke
