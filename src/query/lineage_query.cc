#include "query/lineage_query.h"

#include "common/macros.h"

namespace smoke {

namespace {

std::vector<rid_t> Trace(const LineageIndex& index, size_t universe,
                         const std::vector<rid_t>& from, bool dedup) {
  std::vector<rid_t> out;
  if (!dedup) {
    for (rid_t f : from) index.TraceInto(f, &out);
    return out;
  }
  std::vector<uint8_t> seen(universe, 0);
  std::vector<rid_t> raw;
  for (rid_t f : from) {
    raw.clear();
    index.TraceInto(f, &raw);
    for (rid_t r : raw) {
      if (!seen[r]) {
        seen[r] = 1;
        out.push_back(r);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<rid_t> BackwardRids(const QueryLineage& lineage,
                                const std::string& table_name,
                                const std::vector<rid_t>& out_rids,
                                bool dedup) {
  int i = lineage.FindInput(table_name);
  SMOKE_CHECK(i >= 0);
  const TableLineage& tl = lineage.input(static_cast<size_t>(i));
  SMOKE_CHECK(!tl.backward.empty());
  size_t universe = tl.table != nullptr ? tl.table->num_rows() : 0;
  return Trace(tl.backward, universe, out_rids, dedup);
}

std::vector<rid_t> ForwardRids(const QueryLineage& lineage,
                               const std::string& table_name,
                               const std::vector<rid_t>& in_rids,
                               bool dedup) {
  int i = lineage.FindInput(table_name);
  SMOKE_CHECK(i >= 0);
  const TableLineage& tl = lineage.input(static_cast<size_t>(i));
  SMOKE_CHECK(!tl.forward.empty());
  return Trace(tl.forward, lineage.output_cardinality(), in_rids, dedup);
}

Table MaterializeRows(const Table& table, const std::vector<rid_t>& rids) {
  Table out(table.schema());
  out.Reserve(rids.size());
  for (rid_t r : rids) out.AppendRowFrom(table, r);
  return out;
}

}  // namespace smoke
