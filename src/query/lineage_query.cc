#include "query/lineage_query.h"

#include "common/macros.h"

namespace smoke {

namespace {

/// Probes `index` for every rid in `from` (all already validated against
/// `index.size()`), deduplicating targets over `universe` when asked.
std::vector<rid_t> Trace(const LineageIndex& index, size_t universe,
                         const std::vector<rid_t>& from, bool dedup) {
  std::vector<rid_t> out;
  if (!dedup) {
    for (rid_t f : from) index.TraceInto(f, &out);
    return out;
  }
  std::vector<uint8_t> seen(universe, 0);
  std::vector<rid_t> raw;
  for (rid_t f : from) {
    raw.clear();
    index.TraceInto(f, &raw);
    for (rid_t r : raw) {
      if (!seen[r]) {
        seen[r] = 1;
        out.push_back(r);
      }
    }
  }
  return out;
}

Status ValidateRids(const std::vector<rid_t>& rids, size_t universe,
                    const char* what) {
  for (rid_t r : rids) {
    if (r >= universe) {
      return Status::InvalidArgument(
          std::string(what) + " rid " + std::to_string(r) +
          " out of range [0, " + std::to_string(universe) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

Status BackwardRidsChecked(const QueryLineage& lineage,
                           const std::string& table_name,
                           const std::vector<rid_t>& out_rids, bool dedup,
                           std::vector<rid_t>* out) {
  int i = lineage.FindInput(table_name);
  if (i < 0) {
    return Status::NotFound("relation '" + table_name +
                            "' in query lineage");
  }
  const TableLineage& tl = lineage.input(static_cast<size_t>(i));
  if (tl.backward.empty()) {
    if (lineage.evicted()) {
      return Status::InvalidArgument(
          "backward lineage for '" + table_name +
          "' was evicted under the lineage memory budget (re-execute the "
          "query or raise the budget)");
    }
    return Status::InvalidArgument(
        "backward lineage for '" + table_name +
        "' was not captured (pruned or mode without indexes)");
  }
  SMOKE_RETURN_NOT_OK(
      ValidateRids(out_rids, tl.backward.size(), "output"));
  size_t universe = tl.table != nullptr ? tl.table->num_rows() : 0;
  *out = Trace(tl.backward, universe, out_rids, dedup);
  return Status::OK();
}

Status ForwardRidsChecked(const QueryLineage& lineage,
                          const std::string& table_name,
                          const std::vector<rid_t>& in_rids, bool dedup,
                          std::vector<rid_t>* out) {
  int i = lineage.FindInput(table_name);
  if (i < 0) {
    return Status::NotFound("relation '" + table_name +
                            "' in query lineage");
  }
  const TableLineage& tl = lineage.input(static_cast<size_t>(i));
  if (tl.forward.empty()) {
    if (lineage.evicted()) {
      return Status::InvalidArgument(
          "forward lineage for '" + table_name +
          "' was evicted under the lineage memory budget (forward traces "
          "have no lazy rewrite; re-execute the query or raise the budget)");
    }
    return Status::InvalidArgument("forward lineage for '" + table_name +
                                   "' was not captured");
  }
  SMOKE_RETURN_NOT_OK(ValidateRids(in_rids, tl.forward.size(), "input"));
  *out = Trace(tl.forward, lineage.output_cardinality(), in_rids, dedup);
  return Status::OK();
}

Status MaterializeRowsChecked(const Table& table,
                              const std::vector<rid_t>& rids, Table* out) {
  SMOKE_RETURN_NOT_OK(ValidateRids(rids, table.num_rows(), "traced"));
  Table result(table.schema());
  result.Reserve(rids.size());
  for (rid_t r : rids) result.AppendRowFrom(table, r);
  *out = std::move(result);
  return Status::OK();
}

std::vector<rid_t> BackwardRids(const QueryLineage& lineage,
                                const std::string& table_name,
                                const std::vector<rid_t>& out_rids,
                                bool dedup) {
  std::vector<rid_t> out;
  Status st = BackwardRidsChecked(lineage, table_name, out_rids, dedup, &out);
  if (!st.ok()) {
    std::fprintf(stderr, "BackwardRids: %s\n", st.ToString().c_str());
    SMOKE_CHECK(false && "BackwardRids failed; use BackwardRidsChecked");
  }
  return out;
}

std::vector<rid_t> ForwardRids(const QueryLineage& lineage,
                               const std::string& table_name,
                               const std::vector<rid_t>& in_rids,
                               bool dedup) {
  std::vector<rid_t> out;
  Status st = ForwardRidsChecked(lineage, table_name, in_rids, dedup, &out);
  if (!st.ok()) {
    std::fprintf(stderr, "ForwardRids: %s\n", st.ToString().c_str());
    SMOKE_CHECK(false && "ForwardRids failed; use ForwardRidsChecked");
  }
  return out;
}

Table MaterializeRows(const Table& table, const std::vector<rid_t>& rids) {
  Table out;
  Status st = MaterializeRowsChecked(table, rids, &out);
  if (!st.ok()) {
    std::fprintf(stderr, "MaterializeRows: %s\n", st.ToString().c_str());
    SMOKE_CHECK(false && "MaterializeRows failed; use MaterializeRowsChecked");
  }
  return out;
}

}  // namespace smoke
