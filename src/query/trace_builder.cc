#include "query/trace_builder.h"

#include <utility>

#include "optimizer/cost.h"
#include "optimizer/optimizer.h"
#include "query/lazy.h"

namespace smoke {

const char* TraceStrategyName(TraceStrategy s) {
  switch (s) {
    case TraceStrategy::kAuto:     return "auto";
    case TraceStrategy::kIndexed:  return "indexed";
    case TraceStrategy::kLazy:     return "lazy";
    case TraceStrategy::kSkipping: return "skipping";
    case TraceStrategy::kCube:     return "cube";
  }
  return "?";
}

Status SplitTraceRows(const Table& output, std::vector<rid_t>* rids,
                      Table* rows) {
  int rid_col = output.ColumnIndex(kTraceRidColumn);
  if (rid_col < 0) {
    return Status::InvalidArgument("trace plan output carries no rid column");
  }
  const auto& rid_vals = output.column(static_cast<size_t>(rid_col)).ints();
  rids->assign(rid_vals.begin(), rid_vals.end());
  Schema schema;
  for (size_t c = 0; c < output.num_columns(); ++c) {
    if (static_cast<int>(c) == rid_col) continue;
    schema.AddField(output.schema().field(c).name,
                    output.schema().field(c).type);
  }
  Table stripped(schema);
  size_t dst = 0;
  for (size_t c = 0; c < output.num_columns(); ++c) {
    if (static_cast<int>(c) == rid_col) continue;
    stripped.mutable_column(dst++) = output.column(c);
  }
  *rows = std::move(stripped);
  return Status::OK();
}

Status LineageQuery::Execute(const CaptureOptions& opts,
                             PlanResult* out) const {
  if (plan_.root() < 0) {
    return Status::InvalidArgument("lineage query was not compiled");
  }
  // The compiled plan is already optimized (or deliberately not, via
  // TraceBuilder::Optimize(false)); don't re-run the rewriter per Execute.
  CaptureOptions run_opts = opts;
  run_opts.optimize = false;
  SMOKE_RETURN_NOT_OK(ExecutePlan(plan_, run_opts, out));
  out->explain = explain_;
  // The result's lineage borrows whatever the plan scans; keep compile-time
  // materializations (the cube lookup table) alive with the result, not
  // with this (possibly temporary) compiled query.
  if (owned_table_ != nullptr) out->owned_tables.push_back(owned_table_);
  return Status::OK();
}

TraceBuilder TraceBuilder::Backward(TraceSource src, std::string relation,
                                    std::vector<rid_t> out_rids) {
  TraceBuilder b;
  b.src_ = std::move(src);
  b.relation_ = std::move(relation);
  b.dir_ = TraceDirection::kBackward;
  b.seeds_ = std::move(out_rids);
  b.dedup_ = false;  // witness alignment, like BackwardRids
  return b;
}

TraceBuilder TraceBuilder::Forward(TraceSource src, std::string relation,
                                   std::vector<rid_t> in_rids) {
  TraceBuilder b;
  b.src_ = std::move(src);
  b.relation_ = std::move(relation);
  b.dir_ = TraceDirection::kForward;
  b.seeds_ = std::move(in_rids);
  b.dedup_ = true;  // forward lineage is set-valued
  return b;
}

TraceBuilder& TraceBuilder::ThenForward(TraceSource next) {
  hops_.push_back(std::move(next));
  return *this;
}

TraceBuilder& TraceBuilder::Filter(Predicate p) {
  filters_.push_back(std::move(p));
  return *this;
}

TraceBuilder& TraceBuilder::GroupBy(GroupExpr g) {
  groups_.push_back(std::move(g));
  return *this;
}

TraceBuilder& TraceBuilder::Agg(AggSpec a) {
  aggs_.push_back(std::move(a));
  return *this;
}

TraceBuilder& TraceBuilder::Consuming(const ConsumingSpec& spec) {
  filters_.insert(filters_.end(), spec.filters.begin(), spec.filters.end());
  groups_.insert(groups_.end(), spec.group_by.begin(), spec.group_by.end());
  aggs_.insert(aggs_.end(), spec.aggs.begin(), spec.aggs.end());
  return *this;
}

TraceBuilder& TraceBuilder::Strategy(TraceStrategy s) {
  strategy_ = s;
  return *this;
}

TraceBuilder& TraceBuilder::Dedup(bool dedup) {
  dedup_ = dedup;
  return *this;
}

TraceBuilder& TraceBuilder::Optimize(bool on) {
  optimize_ = on;
  return *this;
}

Status TraceBuilder::ResolveStrategy(TraceStrategy* out, uint32_t* skip_code,
                                     std::string* detail) const {
  const bool chained = !hops_.empty();
  if (dir_ == TraceDirection::kForward || chained) {
    if (strategy_ != TraceStrategy::kAuto &&
        strategy_ != TraceStrategy::kIndexed) {
      return Status::InvalidArgument(
          "forward and multi-hop traces support only the indexed strategy");
    }
    *out = TraceStrategy::kIndexed;
    *detail = chained ? "multi-hop traces are indexed"
                      : "forward traces are indexed";
    return Status::OK();
  }
  switch (strategy_) {
    case TraceStrategy::kIndexed:
      *out = TraceStrategy::kIndexed;
      *detail = "requested explicitly";
      return Status::OK();
    case TraceStrategy::kLazy: {
      if (src_.query == nullptr || src_.output == nullptr) {
        return Status::InvalidArgument(
            "lazy strategy needs the source SPJA query and output");
      }
      if (seeds_.size() != 1) {
        return Status::InvalidArgument(
            "lazy strategy traces exactly one output rid");
      }
      if (src_.query->fact_name != relation_) {
        return Status::InvalidArgument(
            "lazy strategy traces the fact relation only");
      }
      for (const ColRef& c : src_.query->group_by) {
        if (c.table != ColRef::kFact) {
          return Status::InvalidArgument(
              "lazy rewrite requires fact-table group-by keys");
        }
      }
      if (seeds_[0] >= src_.output->num_rows()) {
        return Status::InvalidArgument("output rid out of range");
      }
      *out = TraceStrategy::kLazy;
      *detail = "requested explicitly";
      return Status::OK();
    }
    case TraceStrategy::kSkipping: {
      if (!ResolveSkipCode(src_, relation_, filters_, skip_code)) {
        return Status::InvalidArgument(
            "skipping strategy needs a partitioned backward index covering "
            "the traced relation, with its partition columns pinned by "
            "equality predicates");
      }
      *out = TraceStrategy::kSkipping;
      *detail = "requested explicitly";
      return Status::OK();
    }
    case TraceStrategy::kCube: {
      const SPJAResult* a = src_.artifacts;
      if (a == nullptr || !a->cube.enabled()) {
        return Status::InvalidArgument(
            "cube strategy needs group-by push-down artifacts");
      }
      if (seeds_.size() != 1) {
        return Status::InvalidArgument(
            "cube strategy traces exactly one output rid");
      }
      if (!filters_.empty()) {
        return Status::InvalidArgument(
            "cube strategy cannot apply extra filters (sub-aggregates are "
            "already folded)");
      }
      const std::vector<int>& cube_cols = a->applied_pushdown.cube_cols;
      const std::vector<AggSpec>& cube_aggs = a->applied_pushdown.cube_aggs;
      if (groups_.empty() || groups_.size() != cube_cols.size()) {
        return Status::InvalidArgument(
            "cube strategy group expressions must match the cube columns");
      }
      for (size_t i = 0; i < groups_.size(); ++i) {
        if (groups_[i].col != cube_cols[i]) {
          return Status::InvalidArgument(
              "cube strategy group expressions must match the cube columns "
              "in order");
        }
      }
      if (aggs_.size() != cube_aggs.size()) {
        return Status::InvalidArgument(
            "cube strategy aggregates must match the cube aggregates");
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (aggs_[i].op != cube_aggs[i].op ||
            aggs_[i].name != cube_aggs[i].name) {
          return Status::InvalidArgument(
              "cube strategy aggregates must match the cube aggregates in "
              "order");
        }
      }
      *out = TraceStrategy::kCube;
      *detail = "requested explicitly";
      return Status::OK();
    }
    case TraceStrategy::kAuto: {
      // Cost-based selection (optimizer/cost.h): price every candidate
      // against the capture artifacts, store statistics, and seed-set
      // cardinality, then take the cheapest transparent one.
      TraceCostReport report =
          CostTraceStrategies(src_, relation_, seeds_, filters_);
      *out = report.chosen;
      *skip_code = report.skip_code;
      *detail = report.Summary();
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown trace strategy");
}

Status TraceBuilder::CompileCube(LineageQuery* out) const {
  const CubeIndex& cube = src_.artifacts->cube;
  rid_t oid = seeds_[0];
  if (oid >= cube.num_groups()) {
    return Status::InvalidArgument("output rid out of range for cube");
  }
  Table cells = cube.GroupTable(oid);

  // Reshape the cube cells to the consuming-query schema: derived int64
  // group keys (the cube keys run through each GroupExpr), then the
  // finalized aggregates as stored.
  Schema schema;
  for (const GroupExpr& g : groups_) schema.AddField(g.name, DataType::kInt64);
  const size_t nkeys = groups_.size();
  for (size_t i = nkeys; i < cells.num_columns(); ++i) {
    schema.AddField(cells.schema().field(i).name, cells.schema().field(i).type);
  }
  Table shaped(schema);
  const size_t rows = cells.num_rows();
  for (size_t i = 0; i < nkeys; ++i) {
    GroupExpr g = groups_[i];
    g.col = static_cast<int>(i);  // cube cell table: key i lives in column i
    BoundGroupExpr be;
    if (!BoundGroupExpr::Bind(cells, g, &be)) {
      return Status::InvalidArgument("cube key column type mismatch for '" +
                                     groups_[i].name + "'");
    }
    Column& dst = shaped.mutable_column(i);
    for (rid_t r = 0; r < rows; ++r) dst.AppendInt(be.Eval(r));
  }
  for (size_t i = nkeys; i < cells.num_columns(); ++i) {
    shaped.mutable_column(i) = cells.column(i);
  }

  LineageQuery q;
  q.strategy_ = TraceStrategy::kCube;
  q.owned_table_ = std::make_shared<Table>(std::move(shaped));
  PlanBuilder b;
  int scan = b.Scan(q.owned_table_.get(),
                    (src_.name.empty() ? std::string("trace") : src_.name) +
                        ".cube");
  std::vector<int> all_cols;
  for (size_t c = 0; c < q.owned_table_->num_columns(); ++c) {
    all_cols.push_back(static_cast<int>(c));
  }
  int root = b.Project(scan, std::move(all_cols));
  SMOKE_RETURN_NOT_OK(b.Build(root, &q.plan_));
  *out = std::move(q);
  return Status::OK();
}

Status TraceBuilder::Compile(LineageQuery* out) const {
  if (src_.lineage == nullptr) {
    return Status::InvalidArgument("trace source has no lineage");
  }
  TraceStrategy strat;
  uint32_t skip_code = 0;
  std::string strategy_detail;
  SMOKE_RETURN_NOT_OK(ResolveStrategy(&strat, &skip_code, &strategy_detail));
  if (strat == TraceStrategy::kCube) {
    SMOKE_RETURN_NOT_OK(CompileCube(out));
    out->explain_.strategy = TraceStrategyName(TraceStrategy::kCube);
    out->explain_.strategy_detail = std::move(strategy_detail);
    out->explain_.plan_text = out->plan_.ToString();
    return Status::OK();
  }

  int idx = src_.lineage->FindInput(relation_);
  if (idx < 0) {
    return Status::NotFound("relation '" + relation_ +
                            "' in trace source lineage");
  }
  const TableLineage& tl = src_.lineage->input(static_cast<size_t>(idx));

  PlanBuilder b;
  int cur = -1;
  size_t base_width = 0;  // columns preceding the derived group keys

  if (strat == TraceStrategy::kLazy) {
    // No trace at all: full selection scan with the lazily rewritten
    // backward predicates conjoined with the consuming filters.
    const Table* fact = src_.query->fact;
    std::vector<Predicate> preds =
        LazyBackwardPredicates(*src_.query, *src_.output, seeds_[0]);
    preds.insert(preds.end(), filters_.begin(), filters_.end());
    int scan = b.Scan(fact, relation_);
    cur = b.Select(scan, std::move(preds));
    base_width = fact->num_columns();
  } else if (dir_ == TraceDirection::kBackward) {
    if (tl.table == nullptr) {
      return Status::InvalidArgument("relation table not available");
    }
    int scan = b.Scan(tl.table, relation_);
    TraceSpec ts;
    ts.lineage = src_.lineage;
    ts.relation = relation_;
    ts.direction = TraceDirection::kBackward;
    ts.seeds = seeds_;
    ts.dedup = hops_.empty() ? dedup_ : true;
    if (strat == TraceStrategy::kSkipping) {
      ts.skip_index = &src_.artifacts->skip_index;
      ts.skip_code = skip_code;
    }
    cur = b.Trace(scan, std::move(ts));
    base_width = tl.table->num_columns() + 1;  // + kTraceRidColumn
    for (const TraceSource& hop : hops_) {
      if (hop.lineage == nullptr || hop.output == nullptr) {
        return Status::InvalidArgument(
            "multi-hop trace target needs lineage and output");
      }
      TraceSpec hs;
      hs.lineage = hop.lineage;
      hs.relation = relation_;
      hs.direction = TraceDirection::kForward;
      hs.seeds_from_child = true;
      hs.dedup = true;
      hs.endpoint = hop.output;
      cur = b.Trace(cur, std::move(hs));
      base_width = hop.output->num_columns() + 1;
    }
  } else {
    // Forward single hop: the endpoint is the source query's output.
    if (src_.output == nullptr) {
      return Status::InvalidArgument(
          "forward traces need the source output table");
    }
    int scan = b.Scan(src_.output,
                      (src_.name.empty() ? std::string("trace") : src_.name) +
                          ".out");
    TraceSpec ts;
    ts.lineage = src_.lineage;
    ts.relation = relation_;
    ts.direction = TraceDirection::kForward;
    ts.seeds = seeds_;
    ts.dedup = dedup_;
    cur = b.Trace(scan, std::move(ts));
    base_width = src_.output->num_columns() + 1;
  }

  if (strat != TraceStrategy::kLazy && !filters_.empty()) {
    cur = b.Select(cur, filters_);
  }
  if (!groups_.empty() || !aggs_.empty()) {
    GroupBySpec gs;
    if (!groups_.empty()) {
      cur = b.Derive(cur, groups_);
      for (size_t i = 0; i < groups_.size(); ++i) {
        gs.keys.push_back(static_cast<int>(base_width + i));
      }
    }
    gs.aggs = aggs_;
    cur = b.GroupBy(cur, std::move(gs));
  }

  LineageQuery q;
  q.strategy_ = strat;
  q.explain_.strategy = TraceStrategyName(strat);
  q.explain_.strategy_detail = std::move(strategy_detail);
  SMOKE_RETURN_NOT_OK(b.Build(cur, &q.plan_));
  if (optimize_) {
    LogicalPlan optimized;
    SMOKE_RETURN_NOT_OK(OptimizePlan(q.plan_, &optimized, &q.explain_));
    q.plan_ = std::move(optimized);
  } else {
    q.explain_.plan_text = q.plan_.ToString();
  }
  *out = std::move(q);
  return Status::OK();
}

Status TraceBuilder::Execute(const CaptureOptions& opts,
                             PlanResult* out) const {
  LineageQuery q;
  SMOKE_RETURN_NOT_OK(Compile(&q));
  return q.Execute(opts, out);
}

}  // namespace smoke
