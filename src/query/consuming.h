// Lineage consuming queries (paper Sections 2.1, 6.4, Appendix C):
// SQL over the result of a lineage query — in the paper's drill-down chain,
// group-by aggregations with extra filters and extra grouping attributes
// evaluated over Lb(o, lineitem) (TPC-H Q1a/Q1b/Q1c).
//
// Evaluation strategies (compared in Figures 10–11):
//  - Lazy: rewrite to a full selection scan of the input relation;
//  - Indexed: secondary index scan over the backward lineage rid list;
//  - Skipping: scan only the rid partition matching the parameterized
//    predicate (data-skipping push-down);
//  - Cube: fetch the materialized sub-aggregates (group-by push-down) —
//    no scan at all.
//
// Consuming queries capture their own backward lineage, so their results
// can serve as base queries for further consuming queries (the Q1b → Q1c
// chain).
//
// NOTE: these free functions are the legacy single-shot evaluation paths.
// The unified consumption API (query/trace_builder.h) compiles the same
// ConsumingSpec into an ordinary LogicalPlan — Trace → Select → Derive →
// GroupBy — executed by the plan executor, which adds morsel parallelism
// and composed end-to-end lineage. The functions here remain as the
// reference implementations that the equivalence tests compare against and
// that the figure benches time in isolation.
#ifndef SMOKE_QUERY_CONSUMING_H_
#define SMOKE_QUERY_CONSUMING_H_

#include <string>
#include <vector>

#include "engine/aggregates.h"
#include "engine/expr.h"
#include "engine/group_expr.h"
#include "lineage/partitioned_rid_index.h"
#include "lineage/rid_index.h"
#include "storage/table.h"

namespace smoke {

/// A lineage consuming query: extra filters, extra grouping, aggregates —
/// all over the traced input relation.
struct ConsumingSpec {
  std::vector<Predicate> filters;
  std::vector<GroupExpr> group_by;
  std::vector<AggSpec> aggs;
};

struct ConsumingResult {
  Table output;       ///< group expr columns (int64) then aggregates
  RidIndex backward;  ///< output row -> input rids (for further chaining)
};

/// Indexed evaluation over an explicit rid list (the backward lineage of the
/// selected base output).
ConsumingResult ConsumingOverRids(const Table& input, const ConsumingSpec& spec,
                                  const rid_t* rids, size_t n,
                                  bool capture_lineage = true);

inline ConsumingResult ConsumingOverRids(const Table& input,
                                         const ConsumingSpec& spec,
                                         const std::vector<rid_t>& rids,
                                         bool capture_lineage = true) {
  return ConsumingOverRids(input, spec, rids.data(), rids.size(),
                           capture_lineage);
}
inline ConsumingResult ConsumingOverRids(const Table& input,
                                         const ConsumingSpec& spec,
                                         const RidVec& rids,
                                         bool capture_lineage = true) {
  return ConsumingOverRids(input, spec, rids.data(), rids.size(),
                           capture_lineage);
}

/// Lazy evaluation: full scan of `input` with `base_preds` (the lazily
/// rewritten backward lineage predicates) conjoined with the spec's filters.
ConsumingResult ConsumingLazy(const Table& input,
                              const std::vector<Predicate>& base_preds,
                              const ConsumingSpec& spec,
                              bool capture_lineage = true);

/// Data-skipping evaluation: scans only partition `code` of output `oid` in
/// the partitioned backward index (the spec's filters on the partition
/// attributes are already satisfied by construction; remaining filters are
/// still applied).
ConsumingResult ConsumingSkipping(const Table& input,
                                  const PartitionedRidIndex& index, rid_t oid,
                                  uint32_t code, const ConsumingSpec& spec,
                                  bool capture_lineage = true);

}  // namespace smoke

#endif  // SMOKE_QUERY_CONSUMING_H_
