// Provenance semantics over Smoke's rid indexes (paper Appendix E).
//
// Backward rid lists preserve duplicates and are aligned across input
// relations: position j of every table's list for an output o is one join
// witness. From that single representation Smoke derives:
//   - why-provenance:  the set of witnesses {(a1,b1), (a1,b2)};
//   - which-provenance (lineage): the set union of the lists {a1,b1,b2};
//   - how-provenance:  the polynomial a1·(b1+b2).
#ifndef SMOKE_QUERY_PROVENANCE_H_
#define SMOKE_QUERY_PROVENANCE_H_

#include <string>
#include <vector>

#include "lineage/query_lineage.h"

namespace smoke {

/// One derivation of an output: one rid per input relation, in
/// QueryLineage input order.
struct Witness {
  std::vector<rid_t> rids;

  bool operator==(const Witness& other) const { return rids == other.rids; }
};

/// Why-provenance: the witnesses of output `oid` (duplicates collapsed).
std::vector<Witness> WhyProvenance(const QueryLineage& lineage, rid_t oid);

/// Which-provenance (lineage): per input relation, the deduplicated set of
/// contributing rids.
std::vector<std::vector<rid_t>> WhichProvenance(const QueryLineage& lineage,
                                                rid_t oid);

/// How-provenance: the provenance polynomial of output `oid` rendered as a
/// string, e.g. "A[1]*(B[1] + B[2])" for two inputs (factored on the first
/// relation) or a sum of monomials for more inputs.
std::string HowProvenance(const QueryLineage& lineage, rid_t oid);

}  // namespace smoke

#endif  // SMOKE_QUERY_PROVENANCE_H_
