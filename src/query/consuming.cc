#include "query/consuming.h"

#include <cmath>
#include <unordered_map>

#include "common/macros.h"

namespace smoke {

namespace {

struct Grouper {
  std::vector<BoundGroupExpr> exprs;
  AggLayout layout;
  size_t stride;
  bool capture;

  // Single derived key fast path or packed multi-key (each component is
  // offset-encoded into 16 bits; all experiment keys fit comfortably).
  std::unordered_map<int64_t, uint32_t> map;
  std::vector<double> state;
  std::vector<std::vector<int64_t>> key_values;  // per group, per expr
  std::vector<uint32_t> counts;
  std::vector<RidVec> lists;

  Grouper(const Table& input, const ConsumingSpec& spec, bool cap)
      : layout(input, spec.aggs), capture(cap) {
    stride = layout.stride();
    for (const GroupExpr& g : spec.group_by) {
      BoundGroupExpr b;
      SMOKE_CHECK(BoundGroupExpr::Bind(input, g, &b) &&
                  "group expression column missing or wrong type (string "
                  "grouping keys use GroupExpr::kRaw over int codes)");
      exprs.push_back(b);
    }
    map.reserve(256);
  }

  void Add(rid_t r) {
    int64_t key = 0;
    int64_t vals[8];
    SMOKE_DCHECK(exprs.size() <= 8);
    for (size_t i = 0; i < exprs.size(); ++i) {
      vals[i] = exprs[i].Eval(r);
      key = key * 1000003 + vals[i];  // injective for small component ranges
    }
    auto [it, inserted] = map.emplace(key, static_cast<uint32_t>(counts.size()));
    uint32_t g = it->second;
    if (inserted) {
      state.resize(state.size() + stride);
      layout.Init(&state[g * stride]);
      counts.push_back(0);
      key_values.emplace_back(vals, vals + exprs.size());
      if (capture) lists.emplace_back();
    }
    layout.Update(&state[g * stride], r);
    ++counts[g];
    if (capture) lists[g].PushBack(r);
  }

  ConsumingResult Finish(const ConsumingSpec& spec) {
    ConsumingResult result;
    Schema s;
    for (const GroupExpr& g : spec.group_by) {
      s.AddField(g.name, DataType::kInt64);
    }
    for (size_t i = 0; i < layout.num_aggs(); ++i) {
      s.AddField(layout.OutputField(i).name, layout.OutputField(i).type);
    }
    result.output = Table(s);
    result.output.Reserve(counts.size());
    std::vector<Column*> agg_cols;
    for (size_t i = 0; i < layout.num_aggs(); ++i) {
      agg_cols.push_back(
          &result.output.mutable_column(spec.group_by.size() + i));
    }
    for (size_t g = 0; g < counts.size(); ++g) {
      for (size_t k = 0; k < spec.group_by.size(); ++k) {
        result.output.mutable_column(k).AppendInt(key_values[g][k]);
      }
      layout.Finalize(&state[g * stride], &agg_cols);
    }
    if (capture) result.backward = RidIndex::FromLists(std::move(lists));
    return result;
  }
};

}  // namespace

ConsumingResult ConsumingOverRids(const Table& input,
                                  const ConsumingSpec& spec, const rid_t* rids,
                                  size_t n, bool capture_lineage) {
  PredicateList filt(input, spec.filters);
  Grouper grouper(input, spec, capture_lineage);
  if (filt.empty()) {
    for (size_t i = 0; i < n; ++i) grouper.Add(rids[i]);
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (filt.Eval(rids[i])) grouper.Add(rids[i]);
    }
  }
  return grouper.Finish(spec);
}

ConsumingResult ConsumingLazy(const Table& input,
                              const std::vector<Predicate>& base_preds,
                              const ConsumingSpec& spec,
                              bool capture_lineage) {
  std::vector<Predicate> all = base_preds;
  all.insert(all.end(), spec.filters.begin(), spec.filters.end());
  PredicateList filt(input, all);
  Grouper grouper(input, spec, capture_lineage);
  const size_t n = input.num_rows();
  for (rid_t r = 0; r < n; ++r) {
    if (filt.Eval(r)) grouper.Add(r);
  }
  return grouper.Finish(spec);
}

ConsumingResult ConsumingSkipping(const Table& input,
                                  const PartitionedRidIndex& index, rid_t oid,
                                  uint32_t code, const ConsumingSpec& spec,
                                  bool capture_lineage) {
  if (!index.frozen()) {  // zero-copy over the raw tier
    const RidVec& part = index.Partition(oid, code);
    return ConsumingOverRids(input, spec, part.data(), part.size(),
                             capture_lineage);
  }
  std::vector<rid_t> part;
  index.ForEachInPartition(oid, code,
                           [&part](rid_t r) { part.push_back(r); });
  return ConsumingOverRids(input, spec, part.data(), part.size(),
                           capture_lineage);
}

}  // namespace smoke
