// The unified lineage-consumption API (paper Sections 2.1, 4, 6.4): lineage
// queries *are* relational queries, so this layer compiles a trace plus
// optional filters / group-by / aggregates into an ordinary LogicalPlan —
// Trace → Select → Derive → GroupBy — executed by the plan executor. The
// compiled consuming query therefore gets everything plans get: morsel
// parallelism, deterministic fragment merging, and its own composed
// end-to-end lineage back to the base relation (which is what lets drill-
// down chains like TPC-H Q1a → Q1b → Q1c stack without special cases).
//
// The paper's evaluation strategies (Figures 10–11) are a *physical* choice
// resolved at plan-compile time against the retained query's capture
// artifacts:
//  - kIndexed:  Trace node probing the captured backward/forward index
//               (secondary index scan);
//  - kLazy:     no trace at all — a full selection scan of the relation
//               with the lazily rewritten backward predicates;
//  - kSkipping: Trace node scanning only the rid partition whose code
//               matches the query's equality predicates on the partition
//               attributes (data-skipping push-down);
//  - kCube:     no scan at all — the materialized sub-aggregates of the
//               group-by push-down, reshaped to the consuming schema.
// kAuto picks kSkipping when the artifacts and predicates line up, and
// kIndexed otherwise (kLazy / kCube are opt-in: the former is the paper's
// baseline, the latter trades chainable fine-grained lineage for lookups).
#ifndef SMOKE_QUERY_TRACE_BUILDER_H_
#define SMOKE_QUERY_TRACE_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/explain.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "query/consuming.h"

namespace smoke {

/// \brief Store-level statistics about a trace source's retained lineage
/// (LineageStoreStats, filled by SmokeEngine::MakeTraceSource from the
/// memory tracker). Feeds the cost model's strategy notes; `valid` is false
/// for sources built outside the engine.
struct TraceSourceStats {
  bool valid = false;
  size_t store_bytes = 0;
  LineageCodec codec = LineageCodec::kRaw;
  bool evicted = false;
};

/// \brief What a trace needs to know about the (retained) query it traces:
/// the captured lineage, the output relation, and — for the lazy/skipping/
/// cube physical choices — the original SPJA query and its capture
/// artifacts. All pointers are borrowed and must outlive compiled plans.
struct TraceSource {
  const QueryLineage* lineage = nullptr;
  const Table* output = nullptr;
  std::string name;                      ///< diagnostics / scan labels
  const SPJAQuery* query = nullptr;      ///< enables kLazy
  const SPJAResult* artifacts = nullptr; ///< enables kSkipping / kCube
  TraceSourceStats stats;                ///< cost-model store statistics

  static TraceSource FromPlan(const PlanResult& result,
                              std::string name = "plan") {
    TraceSource s;
    s.lineage = &result.lineage;
    s.output = &result.output;
    s.name = std::move(name);
    s.artifacts = result.spja_artifacts.get();
    return s;
  }
  static TraceSource FromSpja(const SPJAQuery& query, const SPJAResult& result,
                              std::string name = "spja") {
    TraceSource s;
    s.lineage = &result.lineage;
    s.output = &result.output;
    s.name = std::move(name);
    s.query = &query;
    s.artifacts = &result;
    return s;
  }
};

/// Physical evaluation strategy of a compiled lineage query.
enum class TraceStrategy : uint8_t { kAuto, kIndexed, kLazy, kSkipping, kCube };

const char* TraceStrategyName(TraceStrategy s);

/// Splits a trace plan's output into the traced rids (the trailing
/// kTraceRidColumn) and the endpoint rows without that column. Fails when
/// `output` carries no rid column (i.e. it is not a trace plan output).
/// Shared by the typed engine handles and PlanCrossfilter.
Status SplitTraceRows(const Table& output, std::vector<rid_t>* rids,
                      Table* rows);

/// \brief A compiled lineage-consuming query: an ordinary LogicalPlan (plus
/// any materialization it borrows, e.g. the cube lookup table) ready for the
/// plan executor. Copyable; copies share the owned materializations.
class LineageQuery {
 public:
  LineageQuery() = default;

  const LogicalPlan& plan() const { return plan_; }
  /// The physical strategy the compile resolved to (never kAuto).
  TraceStrategy strategy() const { return strategy_; }
  /// EXPLAIN record: applied rewrite rules, the resolved strategy, and the
  /// cost-model candidate summary that justified it.
  const PlanExplain& explain() const { return explain_; }

  /// Executes the compiled plan. `opts.mode` decides whether the consuming
  /// query captures its own lineage (kInject) or not (kNone); parallel
  /// knobs apply as for any plan.
  Status Execute(const CaptureOptions& opts, PlanResult* out) const;

 private:
  friend class TraceBuilder;
  LogicalPlan plan_;
  TraceStrategy strategy_ = TraceStrategy::kIndexed;
  PlanExplain explain_;
  /// kCube: the reshaped sub-aggregate table the plan scans.
  std::shared_ptr<Table> owned_table_;
};

/// \brief Fluent construction of lineage queries and lineage-consuming
/// queries over retained results.
///
///   auto q = TraceBuilder::Backward(src, "lineitem", {oid})
///                .Filter(Predicate::Str(kLShipmode, CmpOp::kEq, "MAIL"))
///                .GroupBy(GroupExpr::Year(kLShipdate))
///                .Agg(AggSpec::Count("cnt"));
///   PlanResult r;
///   q.Execute(CaptureOptions::Inject(), &r);   // r has its own lineage
///
/// Multi-hop linked brushing (TraceAcross ≡ Trace∘Trace):
///
///   TraceBuilder::Backward(view1, "sales", {bar}).ThenForward(view2)
///
/// Backward traces keep duplicate rids by default (witness alignment, like
/// BackwardRids); forward and multi-hop traces deduplicate.
class TraceBuilder {
 public:
  /// Lb(out_rids ⊆ O, relation) over `src`.
  static TraceBuilder Backward(TraceSource src, std::string relation,
                               std::vector<rid_t> out_rids);

  /// Lf(in_rids ⊆ relation, O) over `src`.
  static TraceBuilder Forward(TraceSource src, std::string relation,
                              std::vector<rid_t> in_rids);

  /// Chains a forward hop into `next` over the same relation: the traced
  /// rids of the previous hop become the forward seeds (linked brushing).
  /// Both hops deduplicate. Requires a backward first hop.
  TraceBuilder& ThenForward(TraceSource next);

  /// Consuming-query clauses over the traced rows (the trace endpoint's
  /// schema: the relation for backward traces, the source query's output
  /// for forward traces).
  TraceBuilder& Filter(Predicate p);
  TraceBuilder& GroupBy(GroupExpr g);
  TraceBuilder& Agg(AggSpec a);
  /// Bulk form of Filter/GroupBy/Agg from the legacy mini-language.
  TraceBuilder& Consuming(const ConsumingSpec& spec);

  /// Requests a physical strategy (default kAuto). Non-indexed strategies
  /// require a single seed and the matching source artifacts; Compile fails
  /// otherwise rather than silently falling back.
  TraceBuilder& Strategy(TraceStrategy s);

  /// Overrides rid deduplication of the (first) trace hop.
  TraceBuilder& Dedup(bool dedup);

  /// Toggles the plan rewriter on the compiled plan (default on). The
  /// resolved strategy is cost-based either way; this gates only the
  /// rule-based rewrites (fusion, push-down, elision) — the `--no-optimize`
  /// ablation path.
  TraceBuilder& Optimize(bool on);

  /// Resolves the strategy against the source's capture artifacts and
  /// compiles the trace + clauses into a LogicalPlan.
  Status Compile(LineageQuery* out) const;

  /// Compile + Execute in one step.
  Status Execute(const CaptureOptions& opts, PlanResult* out) const;

 private:
  TraceBuilder() = default;

  Status ResolveStrategy(TraceStrategy* out, uint32_t* skip_code,
                         std::string* detail) const;
  Status CompileCube(LineageQuery* out) const;

  TraceSource src_;
  std::string relation_;
  TraceDirection dir_ = TraceDirection::kBackward;
  std::vector<rid_t> seeds_;
  std::vector<TraceSource> hops_;
  std::vector<Predicate> filters_;
  std::vector<GroupExpr> groups_;
  std::vector<AggSpec> aggs_;
  TraceStrategy strategy_ = TraceStrategy::kAuto;
  bool dedup_ = false;
  bool optimize_ = true;
};

}  // namespace smoke

#endif  // SMOKE_QUERY_TRACE_BUILDER_H_
