// Lineage query evaluation over captured indexes (paper Sections 2.1, 6.3).
//
// Backward queries Lb(O' ⊆ O, R) return the input records that contributed
// to a subset of outputs; forward queries Lf(R' ⊆ R, O) the outputs derived
// from a subset of inputs. Smoke evaluates both as secondary index scans:
// probe the rid index, then index directly into the relation's arrays.
#ifndef SMOKE_QUERY_LINEAGE_QUERY_H_
#define SMOKE_QUERY_LINEAGE_QUERY_H_

#include <string>
#include <vector>

#include "lineage/query_lineage.h"
#include "storage/table.h"

namespace smoke {

/// Backward lineage: input rids of `table_name` reachable from `out_rids`.
/// Duplicates are preserved when `dedup` is false (why-provenance witness
/// alignment); deduplication uses a visited bitmap over the input.
std::vector<rid_t> BackwardRids(const QueryLineage& lineage,
                                const std::string& table_name,
                                const std::vector<rid_t>& out_rids,
                                bool dedup = false);

/// Forward lineage: output rids reachable from `in_rids` of `table_name`.
/// Deduplicated by default (an input can contribute to an output through
/// many derivations).
std::vector<rid_t> ForwardRids(const QueryLineage& lineage,
                               const std::string& table_name,
                               const std::vector<rid_t>& in_rids,
                               bool dedup = true);

/// SELECT * FROM L(...): materializes the traced rows — a secondary index
/// scan into `table`.
Table MaterializeRows(const Table& table, const std::vector<rid_t>& rids);

}  // namespace smoke

#endif  // SMOKE_QUERY_LINEAGE_QUERY_H_
