// Lineage query evaluation over captured indexes (paper Sections 2.1, 6.3).
//
// Backward queries Lb(O' ⊆ O, R) return the input records that contributed
// to a subset of outputs; forward queries Lf(R' ⊆ R, O) the outputs derived
// from a subset of inputs. Smoke evaluates both as secondary index scans:
// probe the rid index, then index directly into the relation's arrays.
//
// The Status-returning entry points validate every rid against the index
// universe before probing (an out-of-range rid is a data error, not UB);
// they are the shared core behind the free-function wrappers below, the
// SmokeEngine facade, and the plan-level Trace operator
// (plan/operators.cc).
#ifndef SMOKE_QUERY_LINEAGE_QUERY_H_
#define SMOKE_QUERY_LINEAGE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lineage/query_lineage.h"
#include "storage/table.h"

namespace smoke {

/// Backward lineage with bounds validation: input rids of `table_name`
/// reachable from `out_rids`. Fails with NotFound when the relation is not
/// a lineage input, InvalidArgument when its backward index was not
/// captured or an out_rid is out of range. Duplicates are preserved when
/// `dedup` is false (why-provenance witness alignment).
Status BackwardRidsChecked(const QueryLineage& lineage,
                           const std::string& table_name,
                           const std::vector<rid_t>& out_rids, bool dedup,
                           std::vector<rid_t>* out);

/// Forward lineage with bounds validation: output rids reachable from
/// `in_rids` of `table_name`. Same failure modes as BackwardRidsChecked.
Status ForwardRidsChecked(const QueryLineage& lineage,
                          const std::string& table_name,
                          const std::vector<rid_t>& in_rids, bool dedup,
                          std::vector<rid_t>* out);

/// SELECT * FROM L(...) with bounds validation: materializes the traced
/// rows into `*out`; fails with InvalidArgument on an out-of-range rid.
Status MaterializeRowsChecked(const Table& table,
                              const std::vector<rid_t>& rids, Table* out);

/// Legacy wrappers: same semantics, but an invalid rid or a missing index
/// aborts with a diagnostic instead of indexing out of bounds.
std::vector<rid_t> BackwardRids(const QueryLineage& lineage,
                                const std::string& table_name,
                                const std::vector<rid_t>& out_rids,
                                bool dedup = false);

std::vector<rid_t> ForwardRids(const QueryLineage& lineage,
                               const std::string& table_name,
                               const std::vector<rid_t>& in_rids,
                               bool dedup = true);

Table MaterializeRows(const Table& table, const std::vector<rid_t>& rids);

}  // namespace smoke

#endif  // SMOKE_QUERY_LINEAGE_QUERY_H_
