#include "apps/profiler.h"

#include <unordered_map>

#include "baselines/phys_mem.h"
#include "common/hash.h"
#include "common/macros.h"

namespace smoke {

namespace {

/// Typed accessor: display string + int64 view of a column value.
struct ColAccess {
  const std::vector<int64_t>* ints = nullptr;
  const std::vector<std::string>* strs = nullptr;

  explicit ColAccess(const Column& c) {
    if (c.type() == DataType::kInt64) ints = &c.ints();
    else strs = &c.strings();
  }
  bool is_int() const { return ints != nullptr; }
  std::string Display(rid_t r) const {
    return is_int() ? std::to_string((*ints)[r]) : (*strs)[r];
  }
};

/// Distinct-value grouping of one column with Inject lineage: value ->
/// group slot; per-slot rid lists (backward) and a row -> slot array
/// (forward).
struct DistinctIndex {
  std::unordered_map<int64_t, uint32_t> int_map;
  std::unordered_map<std::string, uint32_t> str_map;
  std::vector<RidVec> lists;      // backward
  RidArray forward;               // row -> slot
  std::vector<rid_t> first_rid;   // slot representative

  void Build(const Table& t, int col, bool want_backward) {
    ColAccess a(t.column(static_cast<size_t>(col)));
    const size_t n = t.num_rows();
    forward.assign(n, kInvalidRid);
    if (a.is_int()) {
      int_map.reserve(1024);
      for (rid_t r = 0; r < n; ++r) {
        auto [it, inserted] = int_map.emplace(
            (*a.ints)[r], static_cast<uint32_t>(first_rid.size()));
        if (inserted) {
          first_rid.push_back(r);
          if (want_backward) lists.emplace_back();
        }
        if (want_backward) lists[it->second].PushBack(r);
        forward[r] = it->second;
      }
    } else {
      str_map.reserve(1024);
      for (rid_t r = 0; r < n; ++r) {
        auto [it, inserted] = str_map.emplace(
            (*a.strs)[r], static_cast<uint32_t>(first_rid.size()));
        if (inserted) {
          first_rid.push_back(r);
          if (want_backward) lists.emplace_back();
        }
        if (want_backward) lists[it->second].PushBack(r);
        forward[r] = it->second;
      }
    }
  }
};

}  // namespace

FdReport ProfileCD(const Table& table, const FdSpec& fd) {
  // One pass: group by LHS, track whether COUNT(DISTINCT RHS) > 1 (any RHS
  // differing from the group's first), capture i_rids inline (Inject).
  ColAccess lhs(table.column(static_cast<size_t>(fd.lhs_col)));
  ColAccess rhs(table.column(static_cast<size_t>(fd.rhs_col)));
  const size_t n = table.num_rows();

  std::unordered_map<int64_t, uint32_t> int_map;
  std::unordered_map<std::string, uint32_t> str_map;
  std::vector<RidVec> lists;
  std::vector<rid_t> first_rid;
  std::vector<uint8_t> violated;

  auto on_row = [&](uint32_t g, rid_t r, bool inserted) {
    if (inserted) {
      first_rid.push_back(r);
      violated.push_back(0);
      lists.emplace_back();
    }
    lists[g].PushBack(r);
    if (!violated[g]) {
      rid_t f = first_rid[g];
      bool same = rhs.is_int() ? (*rhs.ints)[r] == (*rhs.ints)[f]
                               : (*rhs.strs)[r] == (*rhs.strs)[f];
      if (!same) violated[g] = 1;
    }
  };

  if (lhs.is_int()) {
    int_map.reserve(1024);
    for (rid_t r = 0; r < n; ++r) {
      auto [it, inserted] = int_map.emplace(
          (*lhs.ints)[r], static_cast<uint32_t>(first_rid.size()));
      on_row(it->second, r, inserted);
    }
  } else {
    str_map.reserve(1024);
    for (rid_t r = 0; r < n; ++r) {
      auto [it, inserted] = str_map.emplace(
          (*lhs.strs)[r], static_cast<uint32_t>(first_rid.size()));
      on_row(it->second, r, inserted);
    }
  }

  FdReport report;
  report.num_groups = first_rid.size();
  std::vector<RidVec> violating_lists;
  for (size_t g = 0; g < first_rid.size(); ++g) {
    if (!violated[g]) continue;
    report.violating_values.push_back(lhs.Display(first_rid[g]));
    violating_lists.push_back(std::move(lists[g]));
  }
  report.bipartite = RidIndex::FromLists(std::move(violating_lists));
  return report;
}

FdReport ProfileUG(const Table& table, const FdSpec& fd) {
  // Q_ug,A and Q_ug,B: DISTINCT with lineage. Violation check: backward
  // trace each distinct a to T, forward trace into Q_ug,B's output.
  DistinctIndex da, db;
  da.Build(table, fd.lhs_col, /*want_backward=*/true);
  db.Build(table, fd.rhs_col, /*want_backward=*/false);

  ColAccess lhs(table.column(static_cast<size_t>(fd.lhs_col)));
  FdReport report;
  report.num_groups = da.first_rid.size();
  std::vector<RidVec> violating_lists;
  for (size_t g = 0; g < da.first_rid.size(); ++g) {
    const RidVec& rids = da.lists[g];
    const uint32_t first_b = db.forward[rids[0]];
    bool violated = false;
    for (size_t i = 1; i < rids.size(); ++i) {
      if (db.forward[rids[i]] != first_b) {
        violated = true;
        break;
      }
    }
    if (!violated) continue;
    report.violating_values.push_back(lhs.Display(da.first_rid[g]));
    violating_lists.push_back(da.lists[g]);  // copy: index stays reusable
  }
  report.bipartite = RidIndex::FromLists(std::move(violating_lists));
  return report;
}

FdReport ProfileMetanomeUG(const Table& table, const FdSpec& fd) {
  // Metanome's data model: every attribute is a string; lineage-index
  // construction goes through a virtual Emit call per edge.
  ColAccess lhs(table.column(static_cast<size_t>(fd.lhs_col)));
  ColAccess rhs(table.column(static_cast<size_t>(fd.rhs_col)));
  const size_t n = table.num_rows();

  PhysMemWriter wa(/*backward=*/true, /*forward=*/false);
  LineageWriter* wa_iface = &wa;  // force virtual dispatch
  std::unordered_map<std::string, uint32_t> a_map;
  std::vector<rid_t> a_first;
  a_map.reserve(1024);
  wa_iface->BeginCapture(n);
  for (rid_t r = 0; r < n; ++r) {
    // String-typed processing even for integer attributes (NPI).
    std::string key = lhs.Display(r);
    auto [it, inserted] =
        a_map.emplace(std::move(key), static_cast<uint32_t>(a_first.size()));
    if (inserted) a_first.push_back(r);
    wa_iface->Emit(it->second, r);
  }
  wa_iface->FinishCapture(a_first.size());

  std::unordered_map<std::string, uint32_t> b_map;
  std::vector<uint32_t> b_fw(n);
  b_map.reserve(1024);
  uint32_t b_groups = 0;
  for (rid_t r = 0; r < n; ++r) {
    std::string key = rhs.Display(r);
    auto [it, inserted] = b_map.emplace(std::move(key), b_groups);
    if (inserted) ++b_groups;
    b_fw[r] = it->second;
  }

  FdReport report;
  report.num_groups = a_first.size();
  std::vector<RidVec> violating_lists;
  for (uint32_t g = 0; g < a_first.size(); ++g) {
    const RidVec* rids = wa.Lookup(g);  // keyed fetch from the subsystem
    SMOKE_CHECK(rids != nullptr);
    const uint32_t first_b = b_fw[(*rids)[0]];
    bool violated = false;
    for (size_t i = 1; i < rids->size(); ++i) {
      if (b_fw[(*rids)[i]] != first_b) {
        violated = true;
        break;
      }
    }
    if (!violated) continue;
    report.violating_values.push_back(lhs.Display(a_first[g]));
    violating_lists.push_back(*rids);
  }
  report.bipartite = RidIndex::FromLists(std::move(violating_lists));
  return report;
}

}  // namespace smoke
