#include "apps/crossfilter.h"

#include <unordered_map>

#include "common/macros.h"

namespace smoke {

Crossfilter::Crossfilter(const Table& data, std::vector<int> dims)
    : data_(data), dims_(std::move(dims)) {}

void Crossfilter::Initialize(Strategy strategy) {
  strategy_ = strategy;
  views_.clear();
  marginals_.clear();
  const size_t n = data_.num_rows();
  const bool bt = strategy == Strategy::kBT || strategy == Strategy::kBTFT;
  const bool ft = strategy == Strategy::kBTFT;

  // Initial view queries: one group-by COUNT(*) per dimension, with lineage
  // capture per strategy (Inject-style: i_rids appended inline).
  for (int col : dims_) {
    View view;
    view.col = col;
    const auto& vals = data_.column(static_cast<size_t>(col)).ints();
    if (ft) view.forward.assign(n, kInvalidRid);
    std::vector<RidVec> lists;
    for (rid_t r = 0; r < n; ++r) {
      uint32_t fresh = static_cast<uint32_t>(view.bin_values.size());
      uint32_t bar = view.bin_to_bar.FindOrInsert(vals[r], fresh);
      if (bar == IntKeyMap::kNotFound) {
        bar = fresh;
        view.bin_values.push_back(vals[r]);
        view.counts.push_back(0);
        if (bt) lists.emplace_back();
      }
      ++view.counts[bar];
      if (bt) lists[bar].PushBack(r);
      if (ft) view.forward[r] = bar;
    }
    if (bt) view.backward = RidIndex::FromLists(std::move(lists));
    views_.push_back(std::move(view));
  }

  if (strategy == Strategy::kCube) {
    // Partial cube: pairwise marginals over the (already discovered) bars —
    // the group-by push-down run for every ordered view pair, sharing one
    // scan of the base table (cf. the paper's custom partial cube).
    const size_t nv = views_.size();
    marginals_.resize(nv);
    for (size_t v = 0; v < nv; ++v) {
      marginals_[v].resize(nv);
      for (size_t w = 0; w < nv; ++w) {
        if (v == w) continue;
        marginals_[v][w].assign(NumBars(v) * NumBars(w), 0);
      }
    }
    std::vector<const int64_t*> cols(nv);
    for (size_t v = 0; v < nv; ++v) {
      cols[v] = data_.column(static_cast<size_t>(dims_[v])).ints().data();
    }
    std::vector<uint32_t> bars(nv);
    for (rid_t r = 0; r < n; ++r) {
      for (size_t v = 0; v < nv; ++v) {
        bars[v] = views_[v].bin_to_bar.Find(cols[v][r]);
      }
      for (size_t v = 0; v < nv; ++v) {
        for (size_t w = 0; w < nv; ++w) {
          if (v == w) continue;
          ++marginals_[v][w][bars[v] * NumBars(w) + bars[w]];
        }
      }
    }
  }
}

std::vector<std::vector<int64_t>> Crossfilter::Brush(size_t v,
                                                     size_t bar) const {
  switch (strategy_) {
    case Strategy::kLazy: return BrushLazy(v, bar);
    case Strategy::kBT:   return BrushBT(v, bar);
    case Strategy::kBTFT: return BrushBTFT(v, bar);
    case Strategy::kCube: return BrushCube(v, bar);
  }
  return {};
}

std::vector<std::vector<int64_t>> Crossfilter::BrushLazy(size_t v,
                                                         size_t bar) const {
  // Shared selection scan: σ_{dim_v = bin}(T), re-running every other
  // group-by (fresh hash aggregation per view).
  const size_t nv = views_.size();
  std::vector<std::vector<int64_t>> out(nv);
  std::vector<std::unordered_map<int64_t, int64_t>> aggs(nv);
  const auto& sel =
      data_.column(static_cast<size_t>(dims_[v])).ints();
  const int64_t bin = views_[v].bin_values[bar];
  std::vector<const int64_t*> cols(nv);
  for (size_t w = 0; w < nv; ++w) {
    cols[w] = data_.column(static_cast<size_t>(dims_[w])).ints().data();
  }
  const size_t n = data_.num_rows();
  for (rid_t r = 0; r < n; ++r) {
    if (sel[r] != bin) continue;
    for (size_t w = 0; w < nv; ++w) {
      if (w == v) continue;
      ++aggs[w][cols[w][r]];
    }
  }
  for (size_t w = 0; w < nv; ++w) {
    if (w == v) {
      out[w] = views_[w].counts;
      continue;
    }
    out[w].assign(NumBars(w), 0);
    for (const auto& [bin_w, cnt] : aggs[w]) {
      uint32_t b = views_[w].bin_to_bar.Find(bin_w);
      out[w][b] = cnt;
    }
  }
  return out;
}

std::vector<std::vector<int64_t>> Crossfilter::BrushBT(size_t v,
                                                       size_t bar) const {
  // Shared indexed scan over the backward lineage of the brushed bar, still
  // re-running the group-by aggregations (fresh hash tables).
  const size_t nv = views_.size();
  std::vector<std::vector<int64_t>> out(nv);
  std::vector<std::unordered_map<int64_t, int64_t>> aggs(nv);
  std::vector<const int64_t*> cols(nv);
  for (size_t w = 0; w < nv; ++w) {
    cols[w] = data_.column(static_cast<size_t>(dims_[w])).ints().data();
  }
  const RidVec& rids = views_[v].backward.list(bar);
  for (rid_t r : rids) {
    for (size_t w = 0; w < nv; ++w) {
      if (w == v) continue;
      ++aggs[w][cols[w][r]];
    }
  }
  for (size_t w = 0; w < nv; ++w) {
    if (w == v) {
      out[w] = views_[w].counts;
      continue;
    }
    out[w].assign(NumBars(w), 0);
    for (const auto& [bin_w, cnt] : aggs[w]) {
      uint32_t b = views_[w].bin_to_bar.Find(bin_w);
      out[w][b] = cnt;
    }
  }
  return out;
}

std::vector<std::vector<int64_t>> Crossfilter::BrushBTFT(size_t v,
                                                         size_t bar) const {
  // Listing 1: forward indexes are perfect hashes from rows to bars — update
  // per-bar counters directly, no hash tables.
  const size_t nv = views_.size();
  std::vector<std::vector<int64_t>> out(nv);
  for (size_t w = 0; w < nv; ++w) {
    out[w] = w == v ? views_[w].counts
                    : std::vector<int64_t>(NumBars(w), 0);
  }
  const RidVec& rids = views_[v].backward.list(bar);
  for (size_t w = 0; w < nv; ++w) {
    if (w == v) continue;
    const RidArray& fw = views_[w].forward;
    auto& counts = out[w];
    for (rid_t r : rids) ++counts[fw[r]];
  }
  return out;
}

std::vector<std::vector<int64_t>> Crossfilter::BrushCube(size_t v,
                                                         size_t bar) const {
  const size_t nv = views_.size();
  std::vector<std::vector<int64_t>> out(nv);
  for (size_t w = 0; w < nv; ++w) {
    if (w == v) {
      out[w] = views_[w].counts;
      continue;
    }
    const auto& m = marginals_[v][w];
    out[w].assign(m.begin() + static_cast<long>(bar * NumBars(w)),
                  m.begin() + static_cast<long>((bar + 1) * NumBars(w)));
  }
  return out;
}

size_t Crossfilter::IndexMemoryBytes() const {
  size_t b = 0;
  for (const auto& view : views_) {
    b += view.backward.MemoryBytes();
    b += view.forward.capacity() * sizeof(rid_t);
  }
  for (const auto& per_v : marginals_) {
    for (const auto& m : per_v) b += m.capacity() * sizeof(int64_t);
  }
  return b;
}

}  // namespace smoke
