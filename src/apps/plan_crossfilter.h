// Crossfilter over retained plans (paper Section 6.5.1, generalized per
// ROADMAP "Crossfilter on plans"): each view is an arbitrary retained
// LogicalPlan — a plain group-by histogram, an aggregate-over-aggregate
// rollup, a join of aggregated subplans — and linked brushing is the
// Trace∘Trace chain (backward from the brushed output row to the shared
// base relation, forward into every other view) executed through Trace plan
// nodes. Any view shape with captured lineage on the shared relation
// participates; the classic per-view SPJA implementation in
// apps/crossfilter.h remains as the strategy benchmark (Figure 13/14).
#ifndef SMOKE_APPS_PLAN_CROSSFILTER_H_
#define SMOKE_APPS_PLAN_CROSSFILTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "query/trace_builder.h"

namespace smoke {

/// One view's share of a linked brush: the reachable output rows, the
/// shared-relation witness count per row, and the rows materialized.
struct LinkedBrush {
  std::vector<rid_t> rids;      ///< linked output rows of the target view
  std::vector<int64_t> counts;  ///< shared-relation witnesses per row
  Table rows;                   ///< the linked rows, materialized
};

/// Brushes output row `out_rid` of `from` into `to` through `relation`
/// (Trace∘Trace): the target rows reachable through the shared relation,
/// with counts[i] = relation rows in the brushed row's backward lineage
/// that reach rids[i]. For a group-by COUNT(*) view this equals the brushed
/// bar count of the classic crossfilter (BT strategy).
///
/// Session-safe: inputs are const, all state is local to the call, and the
/// retained lineage indexes are immutable after finalize — any number of
/// concurrent brushes may share the same PlanResults (the serving layer
/// calls this from many sessions over one snapshot). `opts` configures the
/// trace plans' execution (e.g. routing their morsels through a
/// TieredScheduler lease at interactive priority).
Status BrushLinkedPlans(const PlanResult& from, const std::string& from_name,
                        rid_t out_rid, const std::string& relation,
                        const PlanResult& to, const std::string& to_name,
                        const CaptureOptions& opts, LinkedBrush* out);

/// \brief A linked-brushing session over retained plan views sharing one
/// base relation.
class PlanCrossfilter {
 public:
  /// `relation` is the scan label (lineage endpoint) shared by all views.
  explicit PlanCrossfilter(std::string relation)
      : relation_(std::move(relation)) {}

  /// Executes `plan` and retains it as view `name`. The capture options
  /// must produce backward and forward lineage on the shared relation
  /// (CaptureOptions::Inject() default); AddView fails otherwise.
  Status AddView(std::string name, const LogicalPlan& plan,
                 const CaptureOptions& opts = CaptureOptions::Inject());

  size_t num_views() const { return views_.size(); }
  std::vector<std::string> ViewNames() const;
  Status ViewOutput(const std::string& name, const Table** out) const;

  /// One view's share of a brush result.
  using Linked = LinkedBrush;

  /// Brushes output row `out_rid` of `view`: for every *other* view, the
  /// output rows reachable through the shared relation (Trace∘Trace), with
  /// counts[i] = number of relation rows in the brushed row's backward
  /// lineage that reach rids[i]. For a group-by COUNT(*) view this equals
  /// the brushed bar count of the classic crossfilter (BT strategy).
  Status Brush(const std::string& view, rid_t out_rid,
               std::map<std::string, Linked>* out) const;

 private:
  struct View {
    std::string name;
    PlanResult result;
  };
  const View* Find(const std::string& name) const;

  std::string relation_;
  std::vector<View> views_;  // insertion order
};

}  // namespace smoke

#endif  // SMOKE_APPS_PLAN_CROSSFILTER_H_
