#include "apps/plan_crossfilter.h"

#include <utility>

namespace smoke {

Status PlanCrossfilter::AddView(std::string name, const LogicalPlan& plan,
                                const CaptureOptions& opts) {
  if (Find(name) != nullptr) {
    return Status::AlreadyExists("view '" + name + "'");
  }
  View v;
  v.name = std::move(name);
  SMOKE_RETURN_NOT_OK(ExecutePlan(plan, opts, &v.result));
  int idx = v.result.lineage.FindInput(relation_);
  if (idx < 0) {
    return Status::InvalidArgument("view '" + v.name +
                                   "' has no lineage on shared relation '" +
                                   relation_ + "'");
  }
  const TableLineage& tl = v.result.lineage.input(static_cast<size_t>(idx));
  if (tl.backward.empty() || tl.forward.empty()) {
    return Status::InvalidArgument(
        "view '" + v.name +
        "' must capture backward and forward lineage on '" + relation_ + "'");
  }
  views_.push_back(std::move(v));
  return Status::OK();
}

std::vector<std::string> PlanCrossfilter::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const View& v : views_) names.push_back(v.name);
  return names;
}

Status PlanCrossfilter::ViewOutput(const std::string& name,
                                   const Table** out) const {
  const View* v = Find(name);
  if (v == nullptr) return Status::NotFound("view '" + name + "'");
  *out = &v->result.output;
  return Status::OK();
}

const PlanCrossfilter::View* PlanCrossfilter::Find(
    const std::string& name) const {
  for (const View& v : views_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

Status BrushLinkedPlans(const PlanResult& from, const std::string& from_name,
                        rid_t out_rid, const std::string& relation,
                        const PlanResult& to, const std::string& to_name,
                        const CaptureOptions& opts, LinkedBrush* out) {
  // Trace∘Trace as a plan: backward to the shared relation, forward into
  // the target view, with the target's own lineage composed back to the
  // relation so witness counts fall out of the backward lists.
  PlanResult pr;
  SMOKE_RETURN_NOT_OK(
      TraceBuilder::Backward(TraceSource::FromPlan(from, from_name), relation,
                             {out_rid})
          .ThenForward(TraceSource::FromPlan(to, to_name))
          .Execute(opts, &pr));

  SMOKE_RETURN_NOT_OK(SplitTraceRows(pr.output, &out->rids, &out->rows));

  int rel = pr.lineage.FindInput(relation);
  if (rel < 0) {
    return Status::InvalidArgument("brush trace lost relation lineage");
  }
  const LineageIndex& bw = pr.lineage.input(static_cast<size_t>(rel)).backward;
  out->counts.assign(out->rids.size(), 0);
  std::vector<rid_t> tmp;
  for (size_t p = 0; p < out->rids.size(); ++p) {
    tmp.clear();
    bw.TraceInto(static_cast<rid_t>(p), &tmp);
    out->counts[p] = static_cast<int64_t>(tmp.size());
  }
  return Status::OK();
}

Status PlanCrossfilter::Brush(const std::string& view, rid_t out_rid,
                              std::map<std::string, Linked>* out) const {
  const View* from = Find(view);
  if (from == nullptr) return Status::NotFound("view '" + view + "'");
  out->clear();

  for (const View& to : views_) {
    if (&to == from) continue;
    Linked linked;
    SMOKE_RETURN_NOT_OK(BrushLinkedPlans(from->result, from->name, out_rid,
                                         relation_, to.result, to.name,
                                         CaptureOptions::Inject(), &linked));
    (*out)[to.name] = std::move(linked);
  }
  return Status::OK();
}

}  // namespace smoke
