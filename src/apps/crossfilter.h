// Crossfilter application (paper Section 6.5.1, Appendix D).
//
// N group-by COUNT(*) views over one table; brushing a bar in one view
// recomputes the other views over the backward lineage of that bar:
//
//  - Lazy: no capture; each brush re-runs the group-bys behind a shared
//    selection scan of the base table.
//  - BT: capture backward indexes during the initial view queries; a brush
//    re-runs the group-bys over a shared *indexed* scan (still re-building
//    group-by hash tables).
//  - BT+FT: additionally capture forward rid arrays; the forward index is a
//    perfect hash from base rows to each view's bars, so a brush increments
//    per-bar counters directly — no hash tables at all (Listing 1).
//  - Cube: offline partial data-cube (pairwise view marginals) built with
//    the group-by push-down machinery; brushes are lookups. Build cost is
//    charged separately (the cold-start problem).
#ifndef SMOKE_APPS_CROSSFILTER_H_
#define SMOKE_APPS_CROSSFILTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "lineage/rid_index.h"
#include "storage/table.h"

namespace smoke {

/// \brief Crossfilter session over integer-binned dimension columns.
class Crossfilter {
 public:
  enum class Strategy { kLazy, kBT, kBTFT, kCube };

  /// `dims`: one int64 column per view.
  Crossfilter(const Table& data, std::vector<int> dims);

  /// Runs the initial view queries with the capture required by `strategy`.
  /// Returns the time spent (callers time it themselves too; this performs
  /// the work). For kCube this also builds the pairwise marginals.
  void Initialize(Strategy strategy);

  size_t num_views() const { return dims_.size(); }

  /// Number of bars (distinct bins) in view `v`.
  size_t NumBars(size_t v) const { return views_[v].bin_values.size(); }

  /// The bin value of bar `bar` of view `v`.
  int64_t BarValue(size_t v, size_t bar) const {
    return views_[v].bin_values[bar];
  }

  /// Initial COUNT(*) of bar `bar` of view `v`.
  int64_t BarCount(size_t v, size_t bar) const {
    return views_[v].counts[bar];
  }

  /// Brushes bar `bar` of view `v`: recomputes every *other* view over the
  /// rows contributing to that bar. Returns, per view, the updated per-bar
  /// counts (aligned to that view's bar order; the brushed view keeps its
  /// initial counts). Uses the strategy from Initialize.
  std::vector<std::vector<int64_t>> Brush(size_t v, size_t bar) const;

  /// Memory held by lineage indexes / cube (reporting).
  size_t IndexMemoryBytes() const;

 private:
  struct View {
    int col;
    IntKeyMap bin_to_bar{64};          // bin value -> bar id
    std::vector<int64_t> bin_values;   // bar id -> bin value
    std::vector<int64_t> counts;       // initial COUNT(*)
    RidIndex backward;                 // bar -> row rids (BT, BT+FT)
    RidArray forward;                  // row -> bar (BT+FT)
  };

  std::vector<std::vector<int64_t>> BrushLazy(size_t v, size_t bar) const;
  std::vector<std::vector<int64_t>> BrushBT(size_t v, size_t bar) const;
  std::vector<std::vector<int64_t>> BrushBTFT(size_t v, size_t bar) const;
  std::vector<std::vector<int64_t>> BrushCube(size_t v, size_t bar) const;

  const Table& data_;
  std::vector<int> dims_;
  Strategy strategy_ = Strategy::kLazy;
  std::vector<View> views_;

  // Cube: marginals_[v][w] (v != w) is a NumBars(v) x NumBars(w) count
  // matrix, row-major.
  std::vector<std::vector<std::vector<int64_t>>> marginals_;
};

}  // namespace smoke

#endif  // SMOKE_APPS_CROSSFILTER_H_
