// Data profiling application (paper Section 6.5.2, Figure 15): FD violation
// detection with bipartite violation graphs, expressed in lineage terms.
//
// Task: given FD A → B over table T, find the distinct values a ∈ A that
// violate the FD and connect each violation to the tuples {t | t.A = a}.
//
//  - Smoke-CD: run Q_cd = SELECT A FROM T GROUP BY A HAVING
//    COUNT(DISTINCT B) > 1 with lineage capture; the backward/forward
//    indexes are the bipartite graph.
//  - Smoke-UG: UGuide's approach in lineage terms — evaluate SELECT
//    DISTINCT A and SELECT DISTINCT B with lineage, backward-trace each
//    distinct a to T, forward-trace into the distinct-B output; more than
//    one distinct b ⇒ violation.
//  - Metanome-UG: the same UG algorithm, simulating Metanome/UGuide's two
//    measured costs: all attributes modeled as strings (slowing integer
//    FDs like NPI → PAC_ID) and lineage-index construction through virtual
//    function calls (>2x overhead per the paper). JVM overhead is not
//    modeled (see EXPERIMENTS.md).
#ifndef SMOKE_APPS_PROFILER_H_
#define SMOKE_APPS_PROFILER_H_

#include <string>
#include <vector>

#include "lineage/rid_index.h"
#include "storage/table.h"

namespace smoke {

/// A functional dependency lhs_col -> rhs_col.
struct FdSpec {
  int lhs_col = -1;
  int rhs_col = -1;
  std::string name;
};

/// Violations of one FD plus the violation-to-tuple bipartite graph.
struct FdReport {
  /// Distinct violating LHS values (display strings, unordered).
  std::vector<std::string> violating_values;
  /// bipartite.list(i) holds the rids of tuples with LHS value
  /// violating_values[i].
  RidIndex bipartite;
  /// Total distinct LHS values checked.
  size_t num_groups = 0;
};

/// Smoke-CD: single grouped pass with lineage capture.
FdReport ProfileCD(const Table& table, const FdSpec& fd);

/// Smoke-UG: two DISTINCT queries with lineage, backward+forward tracing.
FdReport ProfileUG(const Table& table, const FdSpec& fd);

/// Metanome-UG simulation: UG with string-modeled attributes and
/// virtual-call lineage capture.
FdReport ProfileMetanomeUG(const Table& table, const FdSpec& fd);

}  // namespace smoke

#endif  // SMOKE_APPS_PROFILER_H_
