// In-memory relations.
#ifndef SMOKE_STORAGE_TABLE_H_
#define SMOKE_STORAGE_TABLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/types.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace smoke {

/// \brief An in-memory relation: a schema plus one Column per field.
///
/// Rows are addressed by rid in [0, num_rows()). Lineage indexes store rids;
/// dereferencing lineage is a direct array index into these columns.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {
    for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
  }

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Column& column(size_t i) const {
    SMOKE_DCHECK(i < columns_.size());
    return columns_[i];
  }
  Column& mutable_column(size_t i) {
    SMOKE_DCHECK(i < columns_.size());
    return columns_[i];
  }

  /// Column lookup by name; aborts if absent (schema errors are programming
  /// errors at this layer — the Catalog validates user input).
  const Column& column(const std::string& name) const {
    int i = schema_.IndexOf(name);
    SMOKE_CHECK(i >= 0);
    return columns_[static_cast<size_t>(i)];
  }
  int ColumnIndex(const std::string& name) const {
    return schema_.IndexOf(name);
  }

  /// Appends a full row given as values in schema order (test/build paths).
  void AppendRow(std::initializer_list<Value> values) {
    SMOKE_DCHECK(values.size() == columns_.size());
    size_t i = 0;
    for (const auto& v : values) columns_[i++].AppendValue(v);
  }

  /// Copies row `rid` of `src` (which must share this schema suffix starting
  /// at column `dst_offset`) onto the end of this table's columns.
  void AppendRowFrom(const Table& src, rid_t rid, size_t dst_offset = 0) {
    for (size_t c = 0; c < src.num_columns(); ++c) {
      columns_[dst_offset + c].AppendFrom(src.column(c), rid);
    }
  }

  /// Appends all rows of `src` (same schema; morsel output-chunk merging).
  void AppendAllRows(Table&& src) {
    SMOKE_DCHECK(src.num_columns() == columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].AppendAll(std::move(src.columns_[c]));
    }
  }

  Value GetValue(rid_t rid, size_t col) const {
    return columns_[col].GetValue(rid);
  }

  void Reserve(size_t n) {
    for (auto& c : columns_) c.Reserve(n);
  }

  size_t MemoryBytes() const {
    size_t b = 0;
    for (const auto& c : columns_) b += c.MemoryBytes();
    return b;
  }

  /// Renders the first `limit` rows for debugging and examples.
  std::string ToString(size_t limit = 10) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace smoke

#endif  // SMOKE_STORAGE_TABLE_H_
