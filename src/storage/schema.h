// Relation schemas: ordered, named, typed fields.
#ifndef SMOKE_STORAGE_SCHEMA_H_
#define SMOKE_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/types.h"

namespace smoke {

/// A named, typed column slot in a schema.
struct Field {
  std::string name;
  DataType type;
};

/// \brief Ordered collection of fields describing a relation layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const {
    SMOKE_DCHECK(i < fields_.size());
    return fields_[i];
  }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(std::string name, DataType type) {
    fields_.push_back({std::move(name), type});
  }

  /// Returns the index of the field named `name`, or -1.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  std::string ToString() const {
    std::string s = "(";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) s += ", ";
      s += fields_[i].name;
      s += ":";
      s += DataTypeName(fields_[i].type);
    }
    s += ")";
    return s;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace smoke

#endif  // SMOKE_STORAGE_SCHEMA_H_
