// Typed in-memory columns. Storage is columnar; execution is row-at-a-time
// over rids that index directly into these arrays (paper Section 3.1).
#ifndef SMOKE_STORAGE_COLUMN_H_
#define SMOKE_STORAGE_COLUMN_H_

#include <iterator>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/types.h"

namespace smoke {

/// \brief A typed column: exactly one of the three payload vectors is active,
/// selected by type(). Accessors are unchecked in release builds — hot loops
/// fetch the concrete vector once and index it by rid.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }

  size_t size() const {
    switch (type_) {
      case DataType::kInt64:   return ints_.size();
      case DataType::kFloat64: return doubles_.size();
      case DataType::kString:  return strings_.size();
    }
    return 0;
  }

  // Typed payload access (hot paths).
  const std::vector<int64_t>& ints() const {
    SMOKE_DCHECK(type_ == DataType::kInt64);
    return ints_;
  }
  const std::vector<double>& doubles() const {
    SMOKE_DCHECK(type_ == DataType::kFloat64);
    return doubles_;
  }
  const std::vector<std::string>& strings() const {
    SMOKE_DCHECK(type_ == DataType::kString);
    return strings_;
  }
  std::vector<int64_t>& mutable_ints() {
    SMOKE_DCHECK(type_ == DataType::kInt64);
    return ints_;
  }
  std::vector<double>& mutable_doubles() {
    SMOKE_DCHECK(type_ == DataType::kFloat64);
    return doubles_;
  }
  std::vector<std::string>& mutable_strings() {
    SMOKE_DCHECK(type_ == DataType::kString);
    return strings_;
  }

  // Generic appends (build paths, not hot).
  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v) { strings_.push_back(std::move(v)); }
  void AppendValue(const Value& v) {
    switch (type_) {
      case DataType::kInt64:   ints_.push_back(std::get<int64_t>(v)); break;
      case DataType::kFloat64: doubles_.push_back(std::get<double>(v)); break;
      case DataType::kString:  strings_.push_back(std::get<std::string>(v));
                               break;
    }
  }

  /// Copies row `rid` of `src` onto the end of this column.
  void AppendFrom(const Column& src, rid_t rid) {
    SMOKE_DCHECK(type_ == src.type_);
    switch (type_) {
      case DataType::kInt64:   ints_.push_back(src.ints_[rid]); break;
      case DataType::kFloat64: doubles_.push_back(src.doubles_[rid]); break;
      case DataType::kString:  strings_.push_back(src.strings_[rid]); break;
    }
  }

  /// Appends all of `src`'s values (bulk chunk merge; vector range insert,
  /// not per-row copies). Strings are moved out of `src`.
  void AppendAll(Column&& src) {
    SMOKE_DCHECK(type_ == src.type_);
    switch (type_) {
      case DataType::kInt64:
        ints_.insert(ints_.end(), src.ints_.begin(), src.ints_.end());
        break;
      case DataType::kFloat64:
        doubles_.insert(doubles_.end(), src.doubles_.begin(),
                        src.doubles_.end());
        break;
      case DataType::kString:
        strings_.insert(strings_.end(),
                        std::make_move_iterator(src.strings_.begin()),
                        std::make_move_iterator(src.strings_.end()));
        break;
    }
  }

  Value GetValue(rid_t rid) const {
    switch (type_) {
      case DataType::kInt64:   return Value(ints_[rid]);
      case DataType::kFloat64: return Value(doubles_[rid]);
      case DataType::kString:  return Value(strings_[rid]);
    }
    return Value(int64_t{0});
  }

  void Reserve(size_t n) {
    switch (type_) {
      case DataType::kInt64:   ints_.reserve(n); break;
      case DataType::kFloat64: doubles_.reserve(n); break;
      case DataType::kString:  strings_.reserve(n); break;
    }
  }

  size_t MemoryBytes() const {
    switch (type_) {
      case DataType::kInt64:   return ints_.capacity() * sizeof(int64_t);
      case DataType::kFloat64: return doubles_.capacity() * sizeof(double);
      case DataType::kString: {
        size_t b = strings_.capacity() * sizeof(std::string);
        for (const auto& s : strings_) b += s.capacity();
        return b;
      }
    }
    return 0;
  }

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace smoke

#endif  // SMOKE_STORAGE_COLUMN_H_
