#include "storage/table.h"

#include <sstream>

namespace smoke {

std::string Table::ToString(size_t limit) const {
  std::ostringstream out;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i) out << " | ";
    out << schema_.field(i).name;
  }
  out << "\n";
  size_t n = std::min(limit, num_rows());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c) out << " | ";
      out << ValueToString(GetValue(static_cast<rid_t>(r), c));
    }
    out << "\n";
  }
  if (n < num_rows()) {
    out << "... (" << num_rows() - n << " more rows)\n";
  }
  return out.str();
}

}  // namespace smoke
