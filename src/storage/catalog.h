// Named table registry.
#ifndef SMOKE_STORAGE_CATALOG_H_
#define SMOKE_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace smoke {

/// \brief Owns the database's base relations by name.
class Catalog {
 public:
  Catalog() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(Catalog);

  /// Registers `table` under `name`. Fails if the name is taken.
  Status AddTable(const std::string& name, Table table) {
    if (tables_.count(name)) {
      return Status::AlreadyExists("table '" + name + "'");
    }
    tables_[name] = std::make_unique<Table>(std::move(table));
    return Status::OK();
  }

  /// Looks up a table; sets *out on success.
  Status GetTable(const std::string& name, const Table** out) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
    *out = it->second.get();
    return Status::OK();
  }

  bool HasTable(const std::string& name) const { return tables_.count(name); }

  /// Mutable lookup for append-only growth (SmokeEngine::AppendRows).
  /// Pointer-stable like ReplaceTable; appending does not invalidate
  /// retained lineage because existing rids keep their rows.
  Status GetMutableTable(const std::string& name, Table** out) {
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
    *out = it->second.get();
    return Status::OK();
  }

  /// Removes `name`. Callers must ensure nothing still borrows the table
  /// pointer (SmokeEngine guards this against retained queries).
  Status DropTable(const std::string& name) {
    if (tables_.erase(name) == 0) {
      return Status::NotFound("table '" + name + "'");
    }
    return Status::OK();
  }

  /// Replaces the contents of `name` in place. Pointer-stable: previously
  /// handed-out Table pointers stay valid but observe the new rows — which
  /// silently invalidates any retained lineage rids, so SmokeEngine refuses
  /// this while retained queries reference the table.
  Status ReplaceTable(const std::string& name, Table table) {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + name + "'");
    }
    *it->second = std::move(table);
    return Status::OK();
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [k, v] : tables_) names.push_back(k);
    return names;
  }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace smoke

#endif  // SMOKE_STORAGE_CATALOG_H_
