#include "storage/dictionary.h"

#include <unordered_map>

#include "common/macros.h"

namespace smoke {

uint32_t Dictionary::CodeForInt(int64_t v) const {
  for (uint32_t i = 0; i < int_entries.size(); ++i) {
    if (int_entries[i] == v) return i;
  }
  return UINT32_MAX;
}

uint32_t Dictionary::CodeForString(const std::string& s) const {
  for (uint32_t i = 0; i < entries.size(); ++i) {
    if (entries[i] == s) return i;
  }
  return UINT32_MAX;
}

std::string DictKeyOfRow(const Table& table, const std::vector<int>& cols,
                         rid_t rid) {
  std::string key;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i) key.push_back('\x1f');
    key += ValueToString(table.GetValue(rid, static_cast<size_t>(cols[i])));
  }
  return key;
}

Dictionary BuildDictionary(const Table& table, const std::vector<int>& cols) {
  SMOKE_CHECK(!cols.empty());
  Dictionary dict;
  const size_t n = table.num_rows();
  dict.codes.resize(n);

  // Fast path: single int64 column.
  if (cols.size() == 1 &&
      table.column(static_cast<size_t>(cols[0])).type() == DataType::kInt64) {
    const auto& vals = table.column(static_cast<size_t>(cols[0])).ints();
    std::unordered_map<int64_t, uint32_t> map;
    map.reserve(1024);
    for (size_t r = 0; r < n; ++r) {
      auto [it, inserted] =
          map.emplace(vals[r], static_cast<uint32_t>(dict.entries.size()));
      if (inserted) {
        dict.entries.push_back(std::to_string(vals[r]));
        dict.int_entries.push_back(vals[r]);
      }
      dict.codes[r] = it->second;
    }
    dict.num_codes = static_cast<uint32_t>(dict.entries.size());
    return dict;
  }

  std::unordered_map<std::string, uint32_t> map;
  map.reserve(1024);
  for (size_t r = 0; r < n; ++r) {
    std::string key = DictKeyOfRow(table, cols, static_cast<rid_t>(r));
    auto [it, inserted] =
        map.emplace(std::move(key), static_cast<uint32_t>(dict.entries.size()));
    if (inserted) dict.entries.push_back(it->first);
    dict.codes[r] = it->second;
  }
  dict.num_codes = static_cast<uint32_t>(dict.entries.size());
  return dict;
}

}  // namespace smoke
