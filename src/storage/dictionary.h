// Dictionary encoding of column values into dense partition codes.
// Used by the data-skipping optimization (partitioned rid arrays, paper
// Section 4.2) and by the crossfilter binning.
#ifndef SMOKE_STORAGE_DICTIONARY_H_
#define SMOKE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace smoke {

/// \brief A dense code assignment for the distinct combinations of one or
/// more columns of a table.
///
/// codes[rid] is the partition id of row `rid`; dictionary entries map codes
/// back to the originating value combinations (as display strings plus, for
/// single int columns, the raw value).
struct Dictionary {
  std::vector<uint32_t> codes;             // per input rid
  std::vector<std::string> entries;        // code -> display string
  std::vector<int64_t> int_entries;        // code -> raw value (single-int)
  uint32_t num_codes = 0;

  /// Returns the code for a raw int value (single int-column dictionaries),
  /// or UINT32_MAX when absent.
  uint32_t CodeForInt(int64_t v) const;
  /// Returns the code for a display string, or UINT32_MAX when absent.
  uint32_t CodeForString(const std::string& s) const;
};

/// Builds a dictionary over the given columns of `table`. Multi-column
/// combinations are encoded as concatenated display strings with a '\x1f'
/// separator (the same encoding CodeForString expects).
Dictionary BuildDictionary(const Table& table, const std::vector<int>& cols);

/// Display-string encoding of a row's combination of `cols`, matching
/// BuildDictionary's entry format.
std::string DictKeyOfRow(const Table& table, const std::vector<int>& cols,
                         rid_t rid);

}  // namespace smoke

#endif  // SMOKE_STORAGE_DICTIONARY_H_
