// Plan execution with end-to-end lineage composition (paper Figure 2: a
// base query runs through an instrumented plan; the plan emits lineage
// indexes connecting its output to every base relation).
#ifndef SMOKE_PLAN_EXECUTOR_H_
#define SMOKE_PLAN_EXECUTOR_H_

#include <memory>

#include "common/status.h"
#include "engine/capture.h"
#include "lineage/query_lineage.h"
#include "plan/operator.h"
#include "plan/plan.h"

namespace smoke {

/// Result of executing a LogicalPlan: the root output plus one composed
/// end-to-end backward/forward index pair per reachable base-table scan
/// (in scan-creation order; for SpjaBlock plans that is fact first, then
/// dimensions in join order). Base tables are borrowed and must outlive the
/// result for lineage queries to dereference rows.
struct PlanResult {
  Table output;
  QueryLineage lineage;
  size_t output_cardinality = 0;
  /// Set when the plan root is an SPJA block: the block-level artifacts
  /// (annotated relation, group counts, push-down index/cube).
  std::shared_ptr<SPJAResult> spja_artifacts;
};

/// Executes `plan` with the capture technique in `opts` and composes the
/// per-operator lineage fragments into `out->lineage`.
///
/// Supported modes for multi-operator plans: kNone, kInject, kDefer (defer
/// finalization is eager, per operator). The logic/physical baseline modes
/// are only accepted when the plan is a single block over scans (the
/// SPJAExec compatibility path) — they produce annotated relations or
/// external writes that do not compose across operators.
///
/// Workload pruning (Section 4.1): opts.capture_backward/forward apply to
/// every operator; opts.only_relations names base relations (scan labels) —
/// subtrees containing no traced relation run with capture disabled, and
/// multi-input operators capture only the sides leading to traced scans.
Status ExecutePlan(const LogicalPlan& plan, const CaptureOptions& opts,
                   PlanResult* out);

}  // namespace smoke

#endif  // SMOKE_PLAN_EXECUTOR_H_
