// Plan execution with end-to-end lineage composition (paper Figure 2: a
// base query runs through an instrumented plan; the plan emits lineage
// indexes connecting its output to every base relation).
#ifndef SMOKE_PLAN_EXECUTOR_H_
#define SMOKE_PLAN_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/capture.h"
#include "lineage/query_lineage.h"
#include "optimizer/explain.h"
#include "plan/operator.h"
#include "plan/plan.h"

namespace smoke {

/// Execution state retained when plan-level defer scheduling is on
/// (CaptureOptions::defer_plan_finalize with mode kDefer): the per-operator
/// results with their unconsumed lineage fragments, plus the group-by nodes
/// whose deferred capture still needs finalizing. Holding the intermediate
/// outputs keeps every deferred operator's input batch alive until
/// PlanResult::FinalizeDeferred() probes the retained hash tables.
struct PlanDeferredState {
  LogicalPlan plan;  ///< copy of the executed DAG (borrows base tables)
  CaptureOptions opts;
  std::vector<OperatorResult> results;
  std::vector<uint8_t> reachable;
  std::vector<int> pending_group_bys;  ///< node ids awaiting finalization
};

/// Per-plan cache the refresh subsystem (src/refresh/) attaches to retained
/// state: analysis of the delta path plus rebuilt operator scratch (join
/// build maps). Defined in refresh/refresh.h — the plan layer only carries
/// the pointer, keeping the dependency one-directional.
struct RefreshPlanCache;

/// Execution state retained when CaptureOptions::retain_refresh_state is on:
/// everything the delta pass (src/refresh/) needs to run capture over only
/// an appended batch and extend the composed indexes in place — the
/// optimized plan actually executed, the capture options, and the
/// per-operator results (intermediate outputs kept alive, group-by hash
/// handles retained; the root output and the lineage fragments have been
/// moved out into the PlanResult).
struct PlanRefreshState {
  LogicalPlan plan;  ///< the optimized DAG that ran (borrows base tables)
  CaptureOptions opts;
  std::vector<OperatorResult> results;
  std::vector<uint8_t> reachable;

  /// Filled by refresh::AnalyzeRefreshability after retention.
  bool analyzed = false;
  bool refreshable = false;
  std::string fallback_reason;  ///< why not, when !refreshable

  /// Opaque per-plan scratch owned by the refresh subsystem.
  std::shared_ptr<RefreshPlanCache> cache;
};

/// Result of executing a LogicalPlan: the root output plus one composed
/// end-to-end backward/forward index pair per reachable base-table scan
/// (in scan-creation order; for SpjaBlock plans that is fact first, then
/// dimensions in join order). Base tables are borrowed and must outlive the
/// result for lineage queries to dereference rows.
struct PlanResult {
  Table output;
  QueryLineage lineage;
  size_t output_cardinality = 0;
  /// EXPLAIN record of the optimizer run (empty when opts.optimize was off).
  PlanExplain explain;
  /// Set when the plan root is an SPJA block: the block-level artifacts
  /// (annotated relation, group counts, push-down index/cube).
  std::shared_ptr<SPJAResult> spja_artifacts;
  /// Tables this result's lineage borrows that are not owned by the caller
  /// (e.g. the reshaped cube lookup table a kCube lineage query scans).
  /// Kept alive with the result so retained results never dangle.
  std::vector<std::shared_ptr<Table>> owned_tables;
  /// Non-null while deferred capture awaits FinalizeDeferred(); `lineage`
  /// is empty until then.
  std::unique_ptr<PlanDeferredState> deferred;
  /// Non-null when the plan ran with CaptureOptions::retain_refresh_state:
  /// the state the delta pass extends on each appended batch.
  std::shared_ptr<PlanRefreshState> refresh;

  /// True while deferred group-by capture has not been finalized yet.
  bool HasDeferred() const { return deferred != nullptr; }

  /// True when this retained result can be maintained incrementally by
  /// RefreshManager/SmokeEngine::AppendRows (refresh state was retained and
  /// the analysis accepted the plan shape — see src/refresh/refresh.h for
  /// the refreshability matrix).
  bool refreshable() const {
    return refresh != nullptr && refresh->analyzed && refresh->refreshable;
  }

  /// The paper's think-time Zγ at plan granularity: finalizes every pending
  /// deferred group-by (re-probing the retained hash tables) and composes
  /// the end-to-end lineage indexes. No-op when nothing is pending.
  Status FinalizeDeferred();
};

/// Executes `plan` with the capture technique in `opts` and composes the
/// per-operator lineage fragments into `out->lineage`.
///
/// Supported modes for multi-operator plans: kNone, kInject, kDefer (defer
/// finalization is eager per operator by default; set
/// opts.defer_plan_finalize to postpone it to PlanResult::
/// FinalizeDeferred()). The logic/physical baseline modes are only accepted
/// when the plan is a single block over scans (the SPJAExec compatibility
/// path) — they produce annotated relations or external writes that do not
/// compose across operators.
///
/// Parallel capture: opts.num_threads > 1 executes the parallelizable
/// operators morsel-driven over a plan-wide worker pool; results and
/// composed lineage are bit-identical to num_threads == 1.
///
/// Workload pruning (Section 4.1): opts.capture_backward/forward apply to
/// every operator; opts.only_relations names base relations (scan labels) —
/// subtrees containing no traced relation run with capture disabled, and
/// multi-input operators capture only the sides leading to traced scans.
Status ExecutePlan(const LogicalPlan& plan, const CaptureOptions& opts,
                   PlanResult* out);

}  // namespace smoke

#endif  // SMOKE_PLAN_EXECUTOR_H_
