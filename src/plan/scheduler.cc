#include "plan/scheduler.h"

#include <algorithm>

namespace smoke {

std::vector<Morsel> MakeMorsels(size_t num_rows, size_t morsel_rows) {
  SMOKE_CHECK(morsel_rows > 0);
  std::vector<Morsel> morsels;
  morsels.reserve((num_rows + morsel_rows - 1) / morsel_rows);
  for (size_t begin = 0; begin < num_rows; begin += morsel_rows) {
    Morsel m;
    m.begin = static_cast<rid_t>(begin);
    m.end = static_cast<rid_t>(std::min(begin + morsel_rows, num_rows));
    morsels.push_back(m);
  }
  return morsels;
}

std::vector<Morsel> MakePartitions(size_t num_rows, size_t parts) {
  if (parts < 1) parts = 1;
  parts = std::min(parts, std::max<size_t>(num_rows, 1));
  std::vector<Morsel> out;
  out.reserve(parts);
  const size_t base = num_rows / parts;
  const size_t extra = num_rows % parts;  // first `extra` partitions get +1
  size_t begin = 0;
  for (size_t p = 0; p < parts; ++p) {
    size_t len = base + (p < extra ? 1 : 0);
    Morsel m;
    m.begin = static_cast<rid_t>(begin);
    m.end = static_cast<rid_t>(begin + len);
    out.push_back(m);
    begin += len;
  }
  return out;
}

MorselScheduler::MorselScheduler(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back(
        [this, w] { WorkerLoop(static_cast<size_t>(w)); });
  }
}

MorselScheduler::~MorselScheduler() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void MorselScheduler::ParallelFor(
    size_t num_tasks, const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_threads_ == 1 || num_tasks == 1) {
    for (size_t t = 0; t < num_tasks; ++t) fn(t, 0);
    return;
  }
  uint64_t epoch;
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    pending_ = num_tasks;
    next_task_ = 0;
    epoch = ++epoch_;
  }
  work_cv_.NotifyAll();

  RunTasks(0, epoch);  // the caller is worker 0

  MutexLock lock(mu_);
  done_cv_.Wait(mu_, [this] {
    mu_.AssertHeld();
    return pending_ == 0;
  });
  // `fn` may be a temporary owned by the caller's frame: unpublish it before
  // returning. Stale workers validate the epoch before claiming, so none
  // can still touch it or the queue of a later batch.
  fn_ = nullptr;
}

void MorselScheduler::RunTasks(size_t worker, uint64_t epoch) {
  for (;;) {
    const std::function<void(size_t, size_t)>* fn;
    size_t task;
    {
      MutexLock lock(mu_);
      if (shutdown_ || fn_ == nullptr || epoch_ != epoch) return;
      if (next_task_ >= num_tasks_) return;
      task = next_task_++;
      fn = fn_;
    }
    (*fn)(task, worker);
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.NotifyOne();
    }
  }
}

void MorselScheduler::WorkerLoop(size_t worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    uint64_t epoch;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this, seen_epoch] {
        mu_.AssertHeld();
        return shutdown_ || (fn_ != nullptr && epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      epoch = seen_epoch = epoch_;
    }
    RunTasks(worker, epoch);
  }
}

}  // namespace smoke
