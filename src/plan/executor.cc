#include "plan/executor.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "lineage/compose.h"
#include "optimizer/optimizer.h"
#include "plan/scheduler.h"

namespace smoke {

namespace {

/// Root-to-node accumulated lineage during composition: maps root output
/// positions to this node's output positions (backward) and vice versa
/// (forward). The root itself is the identity.
struct PathLineage {
  LineageIndex backward;
  LineageIndex forward;
  bool identity = false;
  bool reached = false;
};

/// Replaces an identity accumulator with explicit 1:1 arrays (needed when a
/// DAG merge combines an identity path with a materialized one).
void MaterializeIdentity(PathLineage* acc, size_t cardinality) {
  if (!acc->identity) return;
  acc->backward = IdentityIndex(cardinality);
  acc->forward = IdentityIndex(cardinality);
  acc->identity = false;
}

bool IsLogicOrPhys(CaptureMode m) {
  return m == CaptureMode::kLogicRid || m == CaptureMode::kLogicTup ||
         m == CaptureMode::kLogicIdx || m == CaptureMode::kPhysMem ||
         m == CaptureMode::kPhysBdb;
}

/// Composes the per-operator fragments of an executed plan into one
/// end-to-end index pair per reachable scan. Consumes (moves) the fragments
/// out of `results`. Factored out of ExecutePlan so plan-level deferred
/// finalization (PlanResult::FinalizeDeferred) can run it at think-time.
void ComposePlanLineage(const LogicalPlan& plan,
                        const std::vector<uint8_t>& reachable,
                        size_t root_rows,
                        std::vector<OperatorResult>* results,
                        QueryLineage* out_lineage) {
  const size_t n = plan.num_nodes();
  const int root = plan.root();

  // Walk parents before children (descending id is reverse-topological);
  // acc[id] accumulates the root-to-node composition, merging when a DAG
  // node is reached through multiple paths. Fragments are consumed (moved)
  // — each (parent, child-slot) fragment is used exactly once.
  std::vector<PathLineage> acc(n);
  acc[static_cast<size_t>(root)].identity = true;
  acc[static_cast<size_t>(root)].reached = true;

  for (int id = root; id >= 0; --id) {
    const size_t uid = static_cast<size_t>(id);
    if (!reachable[uid] || !acc[uid].reached) continue;
    const PlanNode& node = plan.node(id);
    if (node.kind == PlanOpKind::kScan) continue;

    for (size_t k = 0; k < node.children.size(); ++k) {
      const size_t child = static_cast<size_t>(node.children[k]);
      LineageFragment frag;
      if (k < (*results)[uid].fragments.size()) {
        frag = std::move((*results)[uid].fragments[k]);
      }

      PathLineage down;
      down.reached = true;
      if (frag.identity) {
        // Pipelined 1:1 operator: pass the accumulator through. The last
        // child slot is the accumulator's final use, so it can be moved.
        down.identity = acc[uid].identity;
        if (k + 1 == node.children.size()) {
          down.backward = std::move(acc[uid].backward);
          down.forward = std::move(acc[uid].forward);
        } else {
          down.backward = acc[uid].backward;
          down.forward = acc[uid].forward;
        }
      } else if (acc[uid].identity) {
        down.backward = std::move(frag.backward);
        down.forward = std::move(frag.forward);
      } else {
        down.backward = ComposeBackward(acc[uid].backward, frag.backward);
        down.forward = ComposeForward(frag.forward, acc[uid].forward);
      }

      PathLineage& dst = acc[child];
      if (!dst.reached) {
        dst = std::move(down);
      } else {
        MaterializeIdentity(&dst, root_rows);
        MaterializeIdentity(&down, root_rows);
        MergeBackwardInto(&dst.backward, std::move(down.backward));
        MergeForwardInto(&dst.forward, std::move(down.forward));
      }
    }
  }

  // Emit one lineage input per reachable scan, in scan-creation order.
  for (size_t id = 0; id < n; ++id) {
    const PlanNode& node = plan.node(static_cast<int>(id));
    if (!reachable[id] || node.kind != PlanOpKind::kScan) continue;
    TableLineage& tl = out_lineage->AddInput(node.label, node.table);
    PathLineage& a = acc[id];
    if (!a.reached) continue;
    MaterializeIdentity(&a, root_rows);
    tl.backward = std::move(a.backward);
    tl.forward = std::move(a.forward);
  }
}

}  // namespace

Status ExecutePlan(const LogicalPlan& plan, const CaptureOptions& opts,
                   PlanResult* out) {
  if (plan.root() < 0) return Status::InvalidArgument("plan has no root");
  if (opts.retain_refresh_state && opts.defer_plan_finalize) {
    return Status::InvalidArgument(
        "retain_refresh_state needs finalized capture and composed indexes; "
        "it cannot be combined with defer_plan_finalize");
  }

  // Default path: rewrite the plan (src/optimizer/) and execute the
  // optimized copy. Rewrites preserve results and lineage bit-identically;
  // opts.optimize = false is the ablation escape hatch.
  if (opts.optimize) {
    LogicalPlan optimized;
    PlanExplain explain;
    SMOKE_RETURN_NOT_OK(OptimizePlan(plan, &optimized, &explain));
    CaptureOptions inner = opts;
    inner.optimize = false;
    SMOKE_RETURN_NOT_OK(ExecutePlan(optimized, inner, out));
    out->explain = std::move(explain);
    return Status::OK();
  }

  const size_t n = plan.num_nodes();
  const int root = plan.root();

  // ---- reachability from the root ----
  std::vector<uint8_t> reachable(n, 0);
  {
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      int id = stack.back();
      stack.pop_back();
      if (reachable[static_cast<size_t>(id)]) continue;
      reachable[static_cast<size_t>(id)] = 1;
      for (int c : plan.node(id).children) stack.push_back(c);
    }
  }

  // Logic / physical baseline modes do not compose across operators: they
  // are only accepted on single-block plans (every reachable node is either
  // the root or one of its scan children).
  if (IsLogicOrPhys(opts.mode)) {
    if (opts.mode == CaptureMode::kPhysMem ||
        opts.mode == CaptureMode::kPhysBdb) {
      return Status::Unsupported(
          "physical baselines are exercised per-operator, not via plans");
    }
    for (size_t id = 0; id < n; ++id) {
      if (!reachable[id] || static_cast<int>(id) == root) continue;
      if (plan.node(static_cast<int>(id)).kind != PlanOpKind::kScan) {
        return Status::Unsupported(
            "logic capture modes require a single-block plan");
      }
    }
  }

  // ---- relation pruning: which subtrees lead to traced base relations ----
  const bool prune = !opts.only_relations.empty();
  std::vector<uint8_t> traced(n, 1);
  if (prune) {
    for (size_t id = 0; id < n; ++id) {  // children precede parents
      const PlanNode& node = plan.node(static_cast<int>(id));
      if (node.kind == PlanOpKind::kScan) {
        traced[id] = opts.WantsTable(node.label);
      } else {
        traced[id] = 0;
        for (int c : node.children) traced[id] |= traced[static_cast<size_t>(c)];
      }
    }
  }

  // ---- execute reachable operators in topological (id) order ----
  // One worker pool for the whole plan: every morsel-parallel operator
  // reuses its threads.
  std::unique_ptr<MorselScheduler> pool;
  if (opts.num_threads > 1 && opts.scheduler == nullptr) {
    pool = std::make_unique<MorselScheduler>(opts.num_threads);
  }

  std::vector<OperatorResult> results(n);
  std::vector<int> pending_group_bys;
  for (size_t id = 0; id < n; ++id) {
    if (!reachable[id]) continue;
    const PlanNode& node = plan.node(static_cast<int>(id));
    if (node.kind == PlanOpKind::kScan) continue;

    std::vector<OperatorInput> inputs;
    inputs.reserve(node.children.size());
    for (int c : node.children) {
      const PlanNode& child = plan.node(c);
      OperatorInput in;
      if (child.kind == PlanOpKind::kScan) {
        in.table = child.table;
      } else {
        in.table = &results[static_cast<size_t>(c)].output;
      }
      in.name = child.label;
      inputs.push_back(std::move(in));
    }

    CaptureOptions node_opts = opts;
    if (pool != nullptr) node_opts.scheduler = pool.get();
    if (prune) {
      node_opts.only_relations.clear();
      if (!traced[id]) {
        // No traced relation below this node: skip capture entirely.
        node_opts.mode = CaptureMode::kNone;
      } else if (node.kind == PlanOpKind::kSpjaBlock) {
        // The fused block prunes internally by base-relation name.
        node_opts.only_relations = opts.only_relations;
      } else {
        bool all = true;
        for (int c : node.children) all &= traced[static_cast<size_t>(c)];
        if (!all) {
          for (int c : node.children) {
            if (traced[static_cast<size_t>(c)]) {
              node_opts.only_relations.push_back(plan.node(c).label);
            }
          }
        }
      }
    }

    std::unique_ptr<Operator> op = MakeOperator(node);
    SMOKE_CHECK(op != nullptr);
    SMOKE_RETURN_NOT_OK(op->Execute(inputs, node_opts, &results[id]));
    if (results[id].deferred_group_by != nullptr) {
      pending_group_bys.push_back(static_cast<int>(id));
    }
  }

  OperatorResult& root_result = results[static_cast<size_t>(root)];
  if (plan.node(root).kind == PlanOpKind::kScan) {
    return Status::InvalidArgument("plan root must be an operator, not a scan");
  }
  const size_t root_rows = root_result.output.num_rows();

  // ---- plan-level defer scheduling: stash, finalize at think-time ----
  if (!pending_group_bys.empty()) {
    out->output = std::move(root_result.output);
    out->output_cardinality = root_result.output_cardinality;
    out->lineage.set_output_cardinality(out->output_cardinality);
    out->spja_artifacts = std::move(root_result.spja_artifacts);
    auto st = std::make_unique<PlanDeferredState>();
    st->plan = plan;
    st->opts = opts;
    st->opts.scheduler = nullptr;  // the plan-scoped pool dies with us
    st->results = std::move(results);
    st->reachable = std::move(reachable);
    st->pending_group_bys = std::move(pending_group_bys);
    out->deferred = std::move(st);
    return Status::OK();
  }

  // ---- compose per-operator fragments into end-to-end indexes ----
  if (opts.mode != CaptureMode::kNone) {
    ComposePlanLineage(plan, reachable, root_rows, &results, &out->lineage);
  }

  out->output = std::move(root_result.output);
  out->output_cardinality = root_result.output_cardinality;
  out->lineage.set_output_cardinality(out->output_cardinality);
  out->spja_artifacts = std::move(root_result.spja_artifacts);

  // ---- retain refresh state (src/refresh/) ----
  // After composition the fragments are consumed but every non-root
  // intermediate output (and retained group-by handle) is still in
  // `results`; the delta pass replays only the appended rid range through
  // this state.
  if (opts.retain_refresh_state) {
    auto rs = std::make_shared<PlanRefreshState>();
    rs->plan = plan;
    rs->opts = opts;
    rs->opts.scheduler = nullptr;  // the plan-scoped pool dies with us
    rs->results = std::move(results);
    rs->reachable = std::move(reachable);
    out->refresh = std::move(rs);
  }
  return Status::OK();
}

Status PlanResult::FinalizeDeferred() {
  if (deferred == nullptr) return Status::OK();
  PlanDeferredState& st = *deferred;

  // Zγ per pending node: re-probe the retained hash table against the
  // operator's input batch (still alive inside st.results / base tables).
  for (int id : st.pending_group_bys) {
    OperatorResult& r = st.results[static_cast<size_t>(id)];
    SMOKE_CHECK(r.deferred_group_by != nullptr);
    const PlanNode& node = st.plan.node(id);
    const int child = node.children[0];
    const PlanNode& child_node = st.plan.node(child);
    const Table* input = child_node.kind == PlanOpKind::kScan
                             ? child_node.table
                             : &st.results[static_cast<size_t>(child)].output;
    GroupByResult* gb = r.deferred_group_by.get();
    FinalizeDeferredGroupBy(gb, *input, st.opts);
    LineageFragment& frag = r.fragments[0];
    TableLineage& tl = gb->lineage.mutable_input(0);
    frag.backward = std::move(tl.backward);
    frag.forward = std::move(tl.forward);
    r.deferred_group_by.reset();
  }

  if (st.opts.mode != CaptureMode::kNone) {
    ComposePlanLineage(st.plan, st.reachable, output.num_rows(), &st.results,
                       &lineage);
  }
  lineage.set_output_cardinality(output_cardinality);
  deferred.reset();
  return Status::OK();
}

}  // namespace smoke
