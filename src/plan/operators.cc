// Physical operator implementations for the plan API. Each delegates to the
// instrumented kernel in src/engine/, then repackages that kernel's
// QueryLineage into per-input fragments for composition.
#include "plan/operator.h"

#include <utility>

#include "engine/group_by.h"
#include "engine/hash_join.h"
#include "engine/select.h"
#include "engine/set_ops.h"
#include "engine/spja.h"
#include "lineage/compose.h"
#include "query/lineage_query.h"
#include "storage/dictionary.h"

namespace smoke {

namespace {

/// Moves the i-th input's indexes out of a kernel's QueryLineage. Missing
/// inputs (mode kNone, pruned relations) yield an empty fragment.
LineageFragment TakeFragment(QueryLineage* lineage, size_t i) {
  LineageFragment f;
  if (i < lineage->num_inputs()) {
    TableLineage& tl = lineage->mutable_input(i);
    f.backward = std::move(tl.backward);
    f.forward = std::move(tl.forward);
  }
  return f;
}

/// Partition-ignorant operators reject partial morsel views.
Status RequireFullRange(const std::vector<OperatorInput>& inputs,
                        const char* op_name) {
  for (const auto& in : inputs) {
    if (!in.IsFullRange()) {
      return Status::Unsupported(std::string(op_name) +
                                 " does not support partial morsel views");
    }
  }
  return Status::OK();
}

class SelectOperator : public Operator {
 public:
  explicit SelectOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "select"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    SelectResult r;
    if (inputs[0].IsFullRange()) {
      r = SelectExec(*inputs[0].table, inputs[0].name, node_.predicates,
                     opts);
    } else {
      // Morsel-view execution: the caller partitions rows and merges the
      // per-view fragments (lineage/fragment_merge.h).
      const Morsel view = inputs[0].EffectiveView();
      r = SelectExecRange(*inputs[0].table, inputs[0].name, view.begin,
                          view.end, node_.predicates, opts);
    }
    out->output = std::move(r.output);
    out->output_cardinality = out->output.num_rows();
    out->fragments.push_back(TakeFragment(&r.lineage, 0));
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

class ProjectOperator : public Operator {
 public:
  explicit ProjectOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "project"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    const Table& in = *inputs[0].table;
    Schema s;
    for (int c : node_.columns) {
      if (c < 0 || static_cast<size_t>(c) >= in.num_columns()) {
        return Status::InvalidArgument("projection column " +
                                       std::to_string(c) + " out of range");
      }
      s.AddField(in.schema().field(static_cast<size_t>(c)).name,
                 in.schema().field(static_cast<size_t>(c)).type);
    }
    Table output(s);
    if (inputs[0].IsFullRange()) {
      // Pure pipeline over the whole batch: identity lineage.
      for (size_t i = 0; i < node_.columns.size(); ++i) {
        output.mutable_column(i) =
            in.column(static_cast<size_t>(node_.columns[i]));
      }
      out->output = std::move(output);
      out->output_cardinality = out->output.num_rows();
      LineageFragment f;
      f.identity = true;
      out->fragments.push_back(std::move(f));
      return Status::OK();
    }
    // Morsel view: a 1:1 window [begin, end) — absolute input rids, local
    // output rids, so per-view fragments concatenate.
    const Morsel view = inputs[0].EffectiveView();
    for (size_t i = 0; i < node_.columns.size(); ++i) {
      Column& dst = output.mutable_column(i);
      const Column& src = in.column(static_cast<size_t>(node_.columns[i]));
      dst.Reserve(view.rows());
      for (rid_t r = view.begin; r < view.end; ++r) dst.AppendFrom(src, r);
    }
    out->output = std::move(output);
    out->output_cardinality = out->output.num_rows();
    LineageFragment f;
    if (opts.mode != CaptureMode::kNone && opts.capture_backward) {
      RidArray bw(view.rows());
      for (rid_t r = view.begin; r < view.end; ++r) bw[r - view.begin] = r;
      f.backward = LineageIndex::FromArray(std::move(bw));
    }
    if (opts.mode != CaptureMode::kNone && opts.capture_forward) {
      RidArray fw(in.num_rows(), kInvalidRid);
      for (rid_t r = view.begin; r < view.end; ++r) fw[r] = r - view.begin;
      f.forward = LineageIndex::FromArray(std::move(fw));
    }
    out->fragments.push_back(std::move(f));
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

class HashJoinOperator : public Operator {
 public:
  explicit HashJoinOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "hash_join"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    SMOKE_RETURN_NOT_OK(RequireFullRange(inputs, name()));
    if (node_.join.left_key < 0 ||
        static_cast<size_t>(node_.join.left_key) >=
            inputs[0].table->num_columns() ||
        node_.join.right_key < 0 ||
        static_cast<size_t>(node_.join.right_key) >=
            inputs[1].table->num_columns()) {
      return Status::InvalidArgument("hash-join key column out of range");
    }
    const Column& lk =
        inputs[0].table->column(static_cast<size_t>(node_.join.left_key));
    const Column& rk =
        inputs[1].table->column(static_cast<size_t>(node_.join.right_key));
    if (lk.type() != DataType::kInt64 || rk.type() != DataType::kInt64) {
      return Status::InvalidArgument("hash-join keys must be int64 columns");
    }
    JoinResult r =
        HashJoinExec(*inputs[0].table, inputs[0].name, *inputs[1].table,
                     inputs[1].name, node_.join, opts);
    out->output = std::move(r.output);
    out->output_cardinality = r.output_cardinality;
    out->fragments.push_back(TakeFragment(&r.lineage, 0));
    out->fragments.push_back(TakeFragment(&r.lineage, 1));
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

class GroupByOperator : public Operator {
 public:
  explicit GroupByOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "group_by"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    SMOKE_RETURN_NOT_OK(RequireFullRange(inputs, name()));
    const Table& in = *inputs[0].table;
    for (int k : node_.group_by.keys) {
      if (k < 0 || static_cast<size_t>(k) >= in.num_columns()) {
        return Status::InvalidArgument("group-by key column " +
                                       std::to_string(k) + " out of range");
      }
    }
    GroupByResult r = GroupByExec(in, inputs[0].name, node_.group_by, opts);
    if (opts.mode == CaptureMode::kDefer) {
      if (opts.defer_plan_finalize && node_.pushdown.empty()) {
        // Plan-level defer scheduling: keep the kernel result (with its
        // retained γht hash table) unfinalized; PlanResult::
        // FinalizeDeferred() completes capture at think-time.
        out->output = std::move(r.output);
        out->output_cardinality = out->output.num_rows();
        out->fragments.emplace_back();
        out->deferred_group_by = std::make_shared<GroupByResult>(std::move(r));
        return Status::OK();
      }
      // Default: finalize eagerly while the input batch is still alive.
      FinalizeDeferredGroupBy(&r, in, opts);
    }
    out->output = std::move(r.output);
    out->output_cardinality = out->output.num_rows();
    if (opts.retain_refresh_state) out->group_by = r.handle;
    LineageFragment frag = TakeFragment(&r.lineage, 0);

    // Capture push-downs lifted from the SPJA block (selection / data
    // skipping over the captured backward lists — SPJAPushdown semantics):
    // sel_fact gates which input rids enter backward lineage, skip_cols
    // replaces the plain backward index with a partitioned one. Applied to
    // the finalized lists, preserving in-list scan order, so the artifacts
    // match what the fused block builds in its hot loop.
    if (!node_.pushdown.empty() && !frag.backward.empty()) {
      const SPJAPushdown& push = node_.pushdown;
      auto artifacts = std::make_shared<SPJAResult>();
      artifacts->applied_pushdown = push;
      artifacts->output_cardinality = out->output_cardinality;
      artifacts->lineage.AddInput(inputs[0].name, inputs[0].table);
      artifacts->lineage.set_output_cardinality(out->output_cardinality);
      PredicateList sel(in, push.sel_fact);
      const size_t ng = out->output.num_rows();
      if (!push.skip_cols.empty()) {
        artifacts->skip_dict = BuildDictionary(in, push.skip_cols);
        artifacts->skip_index.SetNumCodes(artifacts->skip_dict.num_codes);
        const uint32_t* codes = artifacts->skip_dict.codes.data();
        for (size_t g = 0; g < ng; ++g) {
          artifacts->skip_index.AddOutput();
          frag.backward.ForEachRelated(
              static_cast<rid_t>(g), [&](rid_t r) {
                if (sel.Eval(r)) {
                  artifacts->skip_index.Append(static_cast<uint32_t>(g),
                                               codes[r], r);
                }
              });
        }
        // The partitioned index *replaces* the plain backward index, as in
        // the fused block: a plain backward trace over this group-by must
        // error rather than silently bypass the push-down.
        frag.backward = LineageIndex();
      } else if (!push.sel_fact.empty()) {
        RidIndex filtered(ng);
        for (size_t g = 0; g < ng; ++g) {
          RidVec& list = filtered.list(g);
          frag.backward.ForEachRelated(static_cast<rid_t>(g), [&](rid_t r) {
            if (sel.Eval(r)) list.PushBack(r);
          });
        }
        frag.backward = LineageIndex::FromIndex(std::move(filtered));
      }
      out->spja_artifacts = std::move(artifacts);
    }
    out->fragments.push_back(std::move(frag));
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

class SetOpOperator : public Operator {
 public:
  explicit SetOpOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "set_op"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    SMOKE_RETURN_NOT_OK(RequireFullRange(inputs, name()));
    const Table& a = *inputs[0].table;
    const Table& b = *inputs[1].table;
    const std::string& an = inputs[0].name;
    const std::string& bn = inputs[1].name;
    for (int c : node_.set_cols) {
      if (c < 0 || static_cast<size_t>(c) >= a.num_columns() ||
          static_cast<size_t>(c) >= b.num_columns()) {
        return Status::InvalidArgument("set-op column " + std::to_string(c) +
                                       " out of range");
      }
    }
    SetOpResult r;
    switch (node_.set_op) {
      case SetOpKind::kSetUnion:
        r = SetUnionExec(a, an, b, bn, node_.set_cols, opts);
        break;
      case SetOpKind::kBagUnion:
        r = BagUnionExec(a, an, b, bn, opts);
        break;
      case SetOpKind::kSetIntersect:
        r = SetIntersectExec(a, an, b, bn, node_.set_cols, opts);
        break;
      case SetOpKind::kBagIntersect:
        r = BagIntersectExec(a, an, b, bn, node_.set_cols, opts);
        break;
      case SetOpKind::kSetDifference:
        r = SetDifferenceExec(a, an, b, bn, node_.set_cols, opts);
        break;
    }
    out->output = std::move(r.output);
    out->output_cardinality = out->output.num_rows();
    out->fragments.push_back(TakeFragment(&r.lineage, 0));
    // Set difference has no B-side lineage (an output depends on the whole
    // inner relation); the fragment stays empty.
    out->fragments.push_back(TakeFragment(&r.lineage, 1));
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

class SpjaBlockOperator : public Operator {
 public:
  explicit SpjaBlockOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "spja_block"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    SMOKE_RETURN_NOT_OK(RequireFullRange(inputs, name()));
    // Rebind the block's table pointers to the bound inputs so a plan can
    // be replayed against refreshed scans.
    SPJAQuery q = node_.spja;
    q.fact = inputs[0].table;
    for (size_t j = 0; j < q.dims.size(); ++j) {
      q.dims[j].table = inputs[1 + j].table;
    }
    auto artifacts = std::make_shared<SPJAResult>(internal::SPJAExecFused(
        q, opts, node_.pushdown.empty() ? nullptr : &node_.pushdown));
    out->output = std::move(artifacts->output);
    out->output_cardinality = artifacts->output_cardinality;
    for (size_t i = 0; i < inputs.size(); ++i) {
      out->fragments.push_back(TakeFragment(&artifacts->lineage, i));
    }
    out->spja_artifacts = std::move(artifacts);
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

/// The lineage query as a physical operator (paper §2.1: backward/forward
/// traces are secondary index scans; here they are ordinary plan nodes, so
/// consuming queries stack on top of them and capture their own lineage).
///
/// Output: the endpoint rows of the traced rids plus the kTraceRidColumn.
/// Fragment: output rows ↔ child positions — for a single-hop trace the
/// child *is* the endpoint scan, so downstream lineage composes straight to
/// the base relation; for a chained hop (seeds_from_child) the fragment
/// records which child rows contributed to each traced output, composing
/// through the previous hop.
class TraceOperator : public Operator {
 public:
  explicit TraceOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "trace"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    SMOKE_RETURN_NOT_OK(RequireFullRange(inputs, name()));
    const TraceSpec& s = node_.trace;
    const QueryLineage& lin = *s.lineage;
    int idx = lin.FindInput(s.relation);
    if (idx < 0) {
      return Status::NotFound("relation '" + s.relation +
                              "' in trace source lineage");
    }
    const TableLineage& tl = lin.input(static_cast<size_t>(idx));
    const bool backward = s.direction == TraceDirection::kBackward;

    // For single-hop traces the child scan is the endpoint; chained hops
    // name their own endpoint (validated at plan build).
    const Table* endpoint =
        s.seeds_from_child ? s.endpoint : inputs[0].table;

    const bool capture = opts.mode != CaptureMode::kNone;
    const bool want_b = capture && opts.capture_backward;
    const bool want_f = capture && opts.capture_forward;

    std::vector<rid_t> rids;
    RidIndex chained_bw;  // chained: output position -> child positions
    RidIndex chained_fw;  // chained: child position -> output positions

    if (s.skip_index != nullptr) {
      // Data-skipping physical choice: scan only the matching partition of
      // each seed (the partition code encodes the pushed-down predicate).
      const PartitionedRidIndex& pidx = *s.skip_index;
      if (s.skip_code >= pidx.num_codes()) {
        return Status::InvalidArgument("skip partition code out of range");
      }
      for (rid_t oid : s.seeds) {
        if (oid >= pidx.num_outputs()) {
          return Status::InvalidArgument("output rid " + std::to_string(oid) +
                                         " out of range for skip index");
        }
        // Decode-on-demand: frozen (compressed) skip indexes stream the
        // matching partition without materializing it.
        pidx.ForEachInPartition(oid, s.skip_code,
                                [&rids](rid_t r) { rids.push_back(r); });
      }
    } else if (!s.seeds_from_child) {
      SMOKE_RETURN_NOT_OK(
          backward
              ? BackwardRidsChecked(lin, s.relation, s.seeds, s.dedup, &rids)
              : ForwardRidsChecked(lin, s.relation, s.seeds, s.dedup, &rids));
    } else {
      // Multi-hop: seed from the child trace's rid column, tracking which
      // child rows reach each traced output (the hop's lineage fragment).
      const Table& child = *inputs[0].table;
      int rid_col = child.ColumnIndex(kTraceRidColumn);
      if (rid_col < 0) {
        return Status::InvalidArgument(
            "chained trace child carries no rid column");
      }
      const LineageIndex& index = backward ? tl.backward : tl.forward;
      if (index.empty()) {
        return Status::InvalidArgument(
            (backward ? std::string("backward") : std::string("forward")) +
            " lineage for '" + s.relation + "' was not captured");
      }
      const size_t universe =
          backward ? (tl.table != nullptr ? tl.table->num_rows() : 0)
                   : lin.output_cardinality();
      const auto& seed_vals = child.column(static_cast<size_t>(rid_col)).ints();
      const size_t m = seed_vals.size();
      std::vector<uint32_t> pos(s.dedup ? universe : 0, UINT32_MAX);
      std::vector<rid_t> targets;
      if (want_f) chained_fw.Resize(m);
      for (size_t j = 0; j < m; ++j) {
        rid_t f = static_cast<rid_t>(seed_vals[j]);
        if (f >= index.size()) {
          return Status::InvalidArgument("chained trace seed rid " +
                                         std::to_string(f) + " out of range");
        }
        targets.clear();
        index.TraceInto(f, &targets);
        for (rid_t t : targets) {
          uint32_t p;
          if (s.dedup) {
            if (pos[t] == UINT32_MAX) {
              pos[t] = static_cast<uint32_t>(rids.size());
              rids.push_back(t);
            }
            p = pos[t];
          } else {
            p = static_cast<uint32_t>(rids.size());
            rids.push_back(t);
          }
          if (want_b) {
            if (chained_bw.size() <= p) chained_bw.Resize(p + 1);
            chained_bw.Append(p, static_cast<rid_t>(j));
          }
          if (want_f) chained_fw.Append(j, p);
        }
      }
    }

    // ---- fused drill-down hops + pushed-down filters (optimizer) ----
    //
    // Each stage (this node's own trace, then every fused hop, then the
    // filters) contributes the same lineage fragment the literal plan node
    // would have, and the stages compose in the executor's association
    // order: backward left-nested from the outermost stage inward, forward
    // right-nested — so the emitted fragment is bit-identical to what
    // ComposePlanLineage builds for the unfused chain. Intermediate
    // endpoints are bounds-checked (the literal chain materializes them)
    // but never copied — that skipped copy is the optimization.
    struct StageFrag {
      LineageIndex bw, fw;
    };
    std::vector<StageFrag> stages;
    const bool is_fused = !s.fused_hops.empty() || !s.filters.empty();
    if (is_fused) {
      StageFrag base;
      if (s.seeds_from_child) {
        if (want_b) {
          chained_bw.Resize(rids.size());
          base.bw = LineageIndex::FromIndex(std::move(chained_bw));
        }
        if (want_f) base.fw = LineageIndex::FromIndex(std::move(chained_fw));
      } else {
        if (want_b) base.bw = LineageIndex::FromArray(RidArray(rids));
        if (want_f) {
          RidIndex fw(inputs[0].table->num_rows());
          for (size_t i = 0; i < rids.size(); ++i) {
            fw.Append(rids[i], static_cast<rid_t>(i));
          }
          base.fw = LineageIndex::FromIndex(std::move(fw));
        }
      }
      stages.push_back(std::move(base));

      for (const TraceHopSpec& hop : s.fused_hops) {
        // The literal chain materializes the previous stage's endpoint
        // before this hop probes; keep its bounds check (and error text).
        if (endpoint == nullptr) {
          return Status::InvalidArgument("trace endpoint table not available");
        }
        for (rid_t r : rids) {
          if (r >= endpoint->num_rows()) {
            return Status::InvalidArgument("traced rid " + std::to_string(r) +
                                           " out of range for endpoint");
          }
        }
        const QueryLineage& hl = *hop.lineage;
        int hidx = hl.FindInput(hop.relation);
        if (hidx < 0) {
          return Status::NotFound("relation '" + hop.relation +
                                  "' in trace source lineage");
        }
        const TableLineage& htl = hl.input(static_cast<size_t>(hidx));
        const bool hop_backward = hop.direction == TraceDirection::kBackward;
        const LineageIndex& index = hop_backward ? htl.backward : htl.forward;
        if (index.empty()) {
          return Status::InvalidArgument(
              (hop_backward ? std::string("backward")
                            : std::string("forward")) +
              " lineage for '" + hop.relation + "' was not captured");
        }
        const size_t universe =
            hop_backward ? (htl.table != nullptr ? htl.table->num_rows() : 0)
                         : hl.output_cardinality();
        std::vector<rid_t> seeds_in = std::move(rids);
        rids.clear();
        std::vector<uint32_t> pos(hop.dedup ? universe : 0, UINT32_MAX);
        RidIndex hop_bw, hop_fw;
        if (want_f) hop_fw.Resize(seeds_in.size());
        std::vector<rid_t> targets;
        for (size_t j = 0; j < seeds_in.size(); ++j) {
          rid_t f = seeds_in[j];
          if (f >= index.size()) {
            return Status::InvalidArgument("chained trace seed rid " +
                                           std::to_string(f) +
                                           " out of range");
          }
          targets.clear();
          index.TraceInto(f, &targets);
          for (rid_t t : targets) {
            uint32_t p;
            if (hop.dedup) {
              if (pos[t] == UINT32_MAX) {
                pos[t] = static_cast<uint32_t>(rids.size());
                rids.push_back(t);
              }
              p = pos[t];
            } else {
              p = static_cast<uint32_t>(rids.size());
              rids.push_back(t);
            }
            if (want_b) {
              if (hop_bw.size() <= p) hop_bw.Resize(p + 1);
              hop_bw.Append(p, static_cast<rid_t>(j));
            }
            if (want_f) hop_fw.Append(j, p);
          }
        }
        StageFrag sf;
        if (want_b) {
          hop_bw.Resize(rids.size());
          sf.bw = LineageIndex::FromIndex(std::move(hop_bw));
        }
        if (want_f) sf.fw = LineageIndex::FromIndex(std::move(hop_fw));
        stages.push_back(std::move(sf));
        endpoint = hop.endpoint;
      }

      if (!s.filters.empty()) {
        if (endpoint == nullptr) {
          return Status::InvalidArgument("trace endpoint table not available");
        }
        for (rid_t r : rids) {
          if (r >= endpoint->num_rows()) {
            return Status::InvalidArgument("traced rid " + std::to_string(r) +
                                           " out of range for endpoint");
          }
        }
        // Evaluate against the endpoint rows the literal select would have
        // seen (the filters reference endpoint columns only — the rid
        // column is never a predicate target). Same fragment shape as the
        // selection kernel: backward = kept positions, forward = position
        // -> kept index or kInvalidRid.
        PredicateList preds(*endpoint, s.filters);
        const size_t m = rids.size();
        std::vector<rid_t> kept;
        RidArray fbw;
        RidArray ffw;
        if (want_f) ffw.assign(m, kInvalidRid);
        for (size_t i = 0; i < m; ++i) {
          if (!preds.Eval(rids[i])) continue;
          if (want_b) fbw.push_back(static_cast<rid_t>(i));
          if (want_f) ffw[i] = static_cast<rid_t>(kept.size());
          kept.push_back(rids[i]);
        }
        rids = std::move(kept);
        StageFrag sf;
        if (want_b) sf.bw = LineageIndex::FromArray(std::move(fbw));
        if (want_f) sf.fw = LineageIndex::FromArray(std::move(ffw));
        stages.push_back(std::move(sf));
      }
    }

    // Materialize the endpoint rows (the secondary index scan), bounds-
    // validated, with the traced rid as the trailing column.
    if (endpoint == nullptr) {
      return Status::InvalidArgument("trace endpoint table not available");
    }
    Schema schema = endpoint->schema();
    schema.AddField(kTraceRidColumn, DataType::kInt64);
    Table output(schema);
    output.Reserve(rids.size());
    Column& rid_out = output.mutable_column(endpoint->num_columns());
    for (rid_t r : rids) {
      if (r >= endpoint->num_rows()) {
        return Status::InvalidArgument("traced rid " + std::to_string(r) +
                                       " out of range for endpoint");
      }
      output.AppendRowFrom(*endpoint, r);
      rid_out.AppendInt(static_cast<int64_t>(r));
    }
    out->output = std::move(output);
    out->output_cardinality = rids.size();

    LineageFragment frag;
    if (is_fused) {
      // Executor association order: backward composes outermost-first
      // (CB(acc, frag) top-down), forward nests the deeper fragment as the
      // inner operand (CF(frag, acc)).
      StageFrag acc = std::move(stages.back());
      for (size_t k = stages.size() - 1; k-- > 0;) {
        if (want_b) acc.bw = ComposeBackward(acc.bw, stages[k].bw);
        if (want_f) acc.fw = ComposeForward(stages[k].fw, acc.fw);
      }
      frag.backward = std::move(acc.bw);
      frag.forward = std::move(acc.fw);
    } else if (s.seeds_from_child) {
      if (want_b) {
        chained_bw.Resize(rids.size());
        frag.backward = LineageIndex::FromIndex(std::move(chained_bw));
      }
      if (want_f) frag.forward = LineageIndex::FromIndex(std::move(chained_fw));
    } else {
      // Single hop: output row i is child row rids[i].
      if (want_b) {
        frag.backward = LineageIndex::FromArray(RidArray(rids));
      }
      if (want_f) {
        RidIndex fw(inputs[0].table->num_rows());
        for (size_t i = 0; i < rids.size(); ++i) {
          fw.Append(rids[i], static_cast<rid_t>(i));
        }
        frag.forward = LineageIndex::FromIndex(std::move(fw));
      }
    }
    out->fragments.push_back(std::move(frag));
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

/// Derived grouping keys as a pipelined operator: appends one computed
/// int64 column per GroupExpr (year/month/scale100/raw) after the child's
/// columns. 1:1 with the input, so its lineage is the identity — this is
/// how the consuming-query mini-language's derived keys become ordinary
/// group-by key columns in a compiled plan.
class DeriveOperator : public Operator {
 public:
  explicit DeriveOperator(const PlanNode& node) : node_(node) {}
  const char* name() const override { return "derive"; }

  Status Execute(const std::vector<OperatorInput>& inputs,
                 const CaptureOptions& opts, OperatorResult* out) const override {
    SMOKE_RETURN_NOT_OK(RequireFullRange(inputs, name()));
    (void)opts;
    const Table& in = *inputs[0].table;
    Schema schema = in.schema();
    for (const GroupExpr& g : node_.derives) {
      schema.AddField(g.name, DataType::kInt64);
    }
    Table output(schema);
    for (size_t c = 0; c < in.num_columns(); ++c) {
      output.mutable_column(c) = in.column(c);
    }
    const size_t n = in.num_rows();
    for (size_t k = 0; k < node_.derives.size(); ++k) {
      BoundGroupExpr b;
      if (!BoundGroupExpr::Bind(in, node_.derives[k], &b)) {
        return Status::InvalidArgument(
            "derive expression '" + node_.derives[k].name +
            "' binds to a missing or non-numeric column");
      }
      Column& dst = output.mutable_column(in.num_columns() + k);
      for (rid_t r = 0; r < n; ++r) dst.AppendInt(b.Eval(r));
    }
    out->output = std::move(output);
    out->output_cardinality = n;
    LineageFragment f;
    f.identity = true;
    out->fragments.push_back(std::move(f));
    return Status::OK();
  }

 private:
  const PlanNode& node_;
};

}  // namespace

std::unique_ptr<Operator> MakeOperator(const PlanNode& node) {
  switch (node.kind) {
    case PlanOpKind::kScan:
      return nullptr;  // scans are resolved by the executor
    case PlanOpKind::kSelect:
      return std::make_unique<SelectOperator>(node);
    case PlanOpKind::kProject:
      return std::make_unique<ProjectOperator>(node);
    case PlanOpKind::kHashJoin:
      return std::make_unique<HashJoinOperator>(node);
    case PlanOpKind::kGroupBy:
      return std::make_unique<GroupByOperator>(node);
    case PlanOpKind::kSetOp:
      return std::make_unique<SetOpOperator>(node);
    case PlanOpKind::kSpjaBlock:
      return std::make_unique<SpjaBlockOperator>(node);
    case PlanOpKind::kTrace:
      return std::make_unique<TraceOperator>(node);
    case PlanOpKind::kDerive:
      return std::make_unique<DeriveOperator>(node);
  }
  return nullptr;
}

}  // namespace smoke
