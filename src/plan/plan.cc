#include "plan/plan.h"

#include "optimizer/schema_infer.h"

namespace smoke {

const char kTraceRidColumn[] = "__trace_rid";

const char* PlanOpKindName(PlanOpKind k) {
  switch (k) {
    case PlanOpKind::kScan:      return "scan";
    case PlanOpKind::kSelect:    return "select";
    case PlanOpKind::kProject:   return "project";
    case PlanOpKind::kHashJoin:  return "hash_join";
    case PlanOpKind::kGroupBy:   return "group_by";
    case PlanOpKind::kSetOp:     return "set_op";
    case PlanOpKind::kSpjaBlock: return "spja_block";
    case PlanOpKind::kTrace:     return "trace";
    case PlanOpKind::kDerive:    return "derive";
  }
  return "?";
}

namespace {

void AppendNodeString(const LogicalPlan& plan, int id, int depth,
                      std::string* out) {
  const PlanNode& n = plan.node(id);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += PlanOpKindName(n.kind);
  *out += " [";
  *out += n.label;
  *out += "] #" + std::to_string(id) + "\n";
  for (int c : n.children) AppendNodeString(plan, c, depth + 1, out);
}

}  // namespace

std::string LogicalPlan::ToString() const {
  std::string s;
  if (root_ >= 0) AppendNodeString(*this, root_, 0, &s);
  return s;
}

int PlanBuilder::Add(PlanNode node) {
  int id = static_cast<int>(nodes_.size());
  if (node.label.empty()) {
    node.label = std::string(PlanOpKindName(node.kind)) + "#" +
                 std::to_string(id);
  }
  nodes_.push_back(std::move(node));
  return id;
}

int PlanBuilder::Scan(const Table* table, std::string name) {
  PlanNode n;
  n.kind = PlanOpKind::kScan;
  n.table = table;
  n.label = std::move(name);
  return Add(std::move(n));
}

int PlanBuilder::Select(int child, std::vector<Predicate> predicates) {
  PlanNode n;
  n.kind = PlanOpKind::kSelect;
  n.children = {child};
  n.predicates = std::move(predicates);
  return Add(std::move(n));
}

int PlanBuilder::Project(int child, std::vector<int> columns) {
  PlanNode n;
  n.kind = PlanOpKind::kProject;
  n.children = {child};
  n.columns = std::move(columns);
  return Add(std::move(n));
}

int PlanBuilder::Project(int child, std::vector<std::string> columns) {
  PlanNode n;
  n.kind = PlanOpKind::kProject;
  n.children = {child};
  n.column_names = std::move(columns);
  return Add(std::move(n));
}

int PlanBuilder::HashJoin(int build, int probe, JoinSpec spec) {
  PlanNode n;
  n.kind = PlanOpKind::kHashJoin;
  n.children = {build, probe};
  n.join = spec;
  return Add(std::move(n));
}

int PlanBuilder::GroupBy(int child, GroupBySpec spec) {
  PlanNode n;
  n.kind = PlanOpKind::kGroupBy;
  n.children = {child};
  n.group_by = std::move(spec);
  return Add(std::move(n));
}

int PlanBuilder::GroupBy(int child, GroupBySpec spec, SPJAPushdown push) {
  PlanNode n;
  n.kind = PlanOpKind::kGroupBy;
  n.children = {child};
  n.group_by = std::move(spec);
  n.pushdown = std::move(push);
  return Add(std::move(n));
}

int PlanBuilder::SetOp(SetOpKind kind, int left, int right,
                       std::vector<int> cols) {
  PlanNode n;
  n.kind = PlanOpKind::kSetOp;
  n.children = {left, right};
  n.set_op = kind;
  n.set_cols = std::move(cols);
  return Add(std::move(n));
}

int PlanBuilder::SetOp(SetOpKind kind, int left, int right,
                       std::vector<std::string> cols) {
  PlanNode n;
  n.kind = PlanOpKind::kSetOp;
  n.children = {left, right};
  n.set_op = kind;
  n.set_col_names = std::move(cols);
  return Add(std::move(n));
}

int PlanBuilder::SpjaBlock(SPJAQuery query, SPJAPushdown pushdown) {
  PlanNode n;
  n.kind = PlanOpKind::kSpjaBlock;
  n.children.push_back(Scan(query.fact, query.fact_name));
  for (const SPJADim& d : query.dims) {
    n.children.push_back(Scan(d.table, d.name));
  }
  n.spja = std::move(query);
  n.pushdown = std::move(pushdown);
  return Add(std::move(n));
}

int PlanBuilder::Trace(int child, TraceSpec spec) {
  PlanNode n;
  n.kind = PlanOpKind::kTrace;
  n.children = {child};
  n.trace = std::move(spec);
  return Add(std::move(n));
}

int PlanBuilder::Derive(int child, std::vector<GroupExpr> exprs) {
  PlanNode n;
  n.kind = PlanOpKind::kDerive;
  n.children = {child};
  n.derives = std::move(exprs);
  return Add(std::move(n));
}

void PlanBuilder::SetLabel(int node, std::string label) {
  SMOKE_CHECK(node >= 0 && static_cast<size_t>(node) < nodes_.size());
  nodes_[static_cast<size_t>(node)].label = std::move(label);
}

namespace {

bool PredicateHasNames(const Predicate& p) {
  return !p.col_name.empty() || !p.rhs_col_name.empty();
}

bool ExprHasNames(const ScalarExpr& e) {
  if (!e.col_name.empty()) return true;
  if (e.pred != nullptr && PredicateHasNames(*e.pred)) return true;
  if (e.left != nullptr && ExprHasNames(*e.left)) return true;
  if (e.right != nullptr && ExprHasNames(*e.right)) return true;
  return false;
}

Status ResolveColumn(const Schema& schema, const std::string& name,
                     const std::string& label, int* out) {
  const int i = schema.IndexOf(name);
  if (i < 0) {
    return Status::InvalidArgument("node '" + label + "': unknown column '" +
                                   name + "' (input schema: " +
                                   schema.ToString() + ")");
  }
  *out = i;
  return Status::OK();
}

Status ResolvePredicate(const Schema& schema, const std::string& label,
                        Predicate* p) {
  const bool rhs_named = !p->rhs_col_name.empty();
  if (!p->col_name.empty()) {
    SMOKE_RETURN_NOT_OK(ResolveColumn(schema, p->col_name, label, &p->col));
    p->col_name.clear();
  }
  if (rhs_named) {
    SMOKE_RETURN_NOT_OK(
        ResolveColumn(schema, p->rhs_col_name, label, &p->rhs_col));
    p->rhs_col_name.clear();
    // Name-based column-to-column compares take the compared type from the
    // schema (the index-based factory spells it out).
    if (p->col >= 0 && static_cast<size_t>(p->col) < schema.num_fields()) {
      p->type = schema.field(static_cast<size_t>(p->col)).type;
    }
  }
  return Status::OK();
}

Status ResolveExpr(const Schema& schema, const std::string& label,
                   ScalarExpr* e) {
  if (!e->col_name.empty()) {
    SMOKE_RETURN_NOT_OK(ResolveColumn(schema, e->col_name, label, &e->col));
    e->col_name.clear();
  }
  if (e->pred != nullptr) {
    SMOKE_RETURN_NOT_OK(ResolvePredicate(schema, label, e->pred.get()));
  }
  if (e->left != nullptr) {
    SMOKE_RETURN_NOT_OK(ResolveExpr(schema, label, e->left.get()));
  }
  if (e->right != nullptr) {
    SMOKE_RETURN_NOT_OK(ResolveExpr(schema, label, e->right.get()));
  }
  return Status::OK();
}

bool AnyPredicateNames(const std::vector<Predicate>& preds) {
  for (const Predicate& p : preds) {
    if (PredicateHasNames(p)) return true;
  }
  return false;
}

}  // namespace

Status PlanBuilder::ResolveNames() {
  // Child schemas are inferred on demand, one subtree at a time: nodes are
  // visited in ascending id order and children precede parents, so a
  // child's subtree is always fully resolved before its schema is needed.
  auto schema_of = [this](int child, std::vector<Schema>* all,
                          const Schema** out) -> Status {
    SMOKE_RETURN_NOT_OK(InferNodeSchemas(nodes_, child, all));
    *out = &(*all)[static_cast<size_t>(child)];
    return Status::OK();
  };
  for (size_t id = 0; id < nodes_.size(); ++id) {
    PlanNode& n = nodes_[id];
    std::vector<Schema> all;
    const Schema* schema = nullptr;
    switch (n.kind) {
      case PlanOpKind::kSelect: {
        if (n.children.size() != 1 || !AnyPredicateNames(n.predicates)) break;
        SMOKE_RETURN_NOT_OK(schema_of(n.children[0], &all, &schema));
        for (Predicate& p : n.predicates) {
          SMOKE_RETURN_NOT_OK(ResolvePredicate(*schema, n.label, &p));
        }
        break;
      }
      case PlanOpKind::kProject: {
        if (n.children.size() != 1 || n.column_names.empty()) break;
        SMOKE_RETURN_NOT_OK(schema_of(n.children[0], &all, &schema));
        for (const std::string& name : n.column_names) {
          int col = -1;
          SMOKE_RETURN_NOT_OK(ResolveColumn(*schema, name, n.label, &col));
          n.columns.push_back(col);
        }
        n.column_names.clear();
        break;
      }
      case PlanOpKind::kHashJoin: {
        if (n.children.size() != 2) break;
        if (!n.join.left_key_name.empty()) {
          SMOKE_RETURN_NOT_OK(schema_of(n.children[0], &all, &schema));
          SMOKE_RETURN_NOT_OK(ResolveColumn(*schema, n.join.left_key_name,
                                            n.label, &n.join.left_key));
          n.join.left_key_name.clear();
        }
        if (!n.join.right_key_name.empty()) {
          SMOKE_RETURN_NOT_OK(schema_of(n.children[1], &all, &schema));
          SMOKE_RETURN_NOT_OK(ResolveColumn(*schema, n.join.right_key_name,
                                            n.label, &n.join.right_key));
          n.join.right_key_name.clear();
        }
        break;
      }
      case PlanOpKind::kGroupBy: {
        bool agg_names = false;
        for (const AggSpec& a : n.group_by.aggs) {
          agg_names |= ExprHasNames(a.expr);
        }
        if (n.children.size() != 1 ||
            (n.group_by.key_names.empty() && !agg_names &&
             !AnyPredicateNames(n.pushdown.sel_fact))) {
          break;
        }
        SMOKE_RETURN_NOT_OK(schema_of(n.children[0], &all, &schema));
        for (const std::string& name : n.group_by.key_names) {
          int col = -1;
          SMOKE_RETURN_NOT_OK(ResolveColumn(*schema, name, n.label, &col));
          n.group_by.keys.push_back(col);
        }
        n.group_by.key_names.clear();
        for (AggSpec& a : n.group_by.aggs) {
          SMOKE_RETURN_NOT_OK(ResolveExpr(*schema, n.label, &a.expr));
        }
        for (Predicate& p : n.pushdown.sel_fact) {
          SMOKE_RETURN_NOT_OK(ResolvePredicate(*schema, n.label, &p));
        }
        break;
      }
      case PlanOpKind::kSetOp: {
        if (n.children.size() != 2 || n.set_col_names.empty()) break;
        SMOKE_RETURN_NOT_OK(schema_of(n.children[0], &all, &schema));
        for (const std::string& name : n.set_col_names) {
          int col = -1;
          SMOKE_RETURN_NOT_OK(ResolveColumn(*schema, name, n.label, &col));
          n.set_cols.push_back(col);
        }
        n.set_col_names.clear();
        break;
      }
      case PlanOpKind::kDerive: {
        bool any = false;
        for (const GroupExpr& g : n.derives) any |= !g.col_name.empty();
        if (n.children.size() != 1 || !any) break;
        SMOKE_RETURN_NOT_OK(schema_of(n.children[0], &all, &schema));
        for (GroupExpr& g : n.derives) {
          if (g.col_name.empty()) continue;
          SMOKE_RETURN_NOT_OK(
              ResolveColumn(*schema, g.col_name, n.label, &g.col));
          g.col_name.clear();
        }
        break;
      }
      case PlanOpKind::kTrace: {
        if (!AnyPredicateNames(n.trace.filters)) break;
        // Trace filters apply to the *final endpoint* rows (after any fused
        // hops), so they resolve against that table's schema, not the
        // child's output.
        const Table* endpoint = nullptr;
        if (!n.trace.fused_hops.empty()) {
          endpoint = n.trace.fused_hops.back().endpoint;
        } else if (n.trace.endpoint != nullptr) {
          endpoint = n.trace.endpoint;
        } else if (n.children.size() == 1 &&
                   nodes_[static_cast<size_t>(n.children[0])].kind ==
                       PlanOpKind::kScan) {
          endpoint = nodes_[static_cast<size_t>(n.children[0])].table;
        }
        if (endpoint == nullptr) {
          return Status::InvalidArgument(
              "trace '" + n.label +
              "': name-based filters need a resolvable endpoint table");
        }
        for (Predicate& p : n.trace.filters) {
          SMOKE_RETURN_NOT_OK(
              ResolvePredicate(endpoint->schema(), n.label, &p));
        }
        break;
      }
      case PlanOpKind::kScan:
      case PlanOpKind::kSpjaBlock:
        break;
    }
  }
  return Status::OK();
}

Status PlanBuilder::Build(int root, LogicalPlan* out) {
  if (root < 0 || static_cast<size_t>(root) >= nodes_.size()) {
    return Status::InvalidArgument("plan root id out of range");
  }
  SMOKE_RETURN_NOT_OK(ResolveNames());
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const PlanNode& n = nodes_[id];
    size_t arity = 0;
    switch (n.kind) {
      case PlanOpKind::kScan:      arity = 0; break;
      case PlanOpKind::kSelect:
      case PlanOpKind::kProject:
      case PlanOpKind::kGroupBy:
      case PlanOpKind::kTrace:
      case PlanOpKind::kDerive:    arity = 1; break;
      case PlanOpKind::kHashJoin:
      case PlanOpKind::kSetOp:     arity = 2; break;
      case PlanOpKind::kSpjaBlock: arity = 1 + n.spja.dims.size(); break;
    }
    if (n.children.size() != arity) {
      return Status::InvalidArgument(
          "node '" + n.label + "' expects " + std::to_string(arity) +
          " children, got " + std::to_string(n.children.size()));
    }
    for (int c : n.children) {
      // Children precede parents by construction; reject hand-crafted cycles.
      if (c < 0 || static_cast<size_t>(c) >= id) {
        return Status::InvalidArgument(
            "node '" + n.label + "' has invalid child id " +
            std::to_string(c));
      }
    }
    if (n.kind == PlanOpKind::kScan && n.table == nullptr) {
      return Status::InvalidArgument("scan '" + n.label + "' has no table");
    }
    if (n.kind == PlanOpKind::kSpjaBlock && n.spja.fact == nullptr) {
      return Status::InvalidArgument("SPJA block '" + n.label +
                                     "' has no fact table");
    }
    if (n.kind == PlanOpKind::kProject && n.columns.empty()) {
      // A zero-column output has no row count, which would collapse the
      // identity lineage to cardinality 0.
      return Status::InvalidArgument("projection '" + n.label +
                                     "' keeps no columns");
    }
    if (n.kind == PlanOpKind::kHashJoin && !n.join.materialize_output) {
      return Status::InvalidArgument(
          "plan joins must materialize their output (node '" + n.label +
          "')");
    }
    if (n.kind == PlanOpKind::kTrace) {
      if (n.trace.lineage == nullptr) {
        return Status::InvalidArgument("trace '" + n.label +
                                       "' has no source lineage");
      }
      if (n.trace.seeds_from_child) {
        if (n.trace.endpoint == nullptr) {
          return Status::InvalidArgument(
              "chained trace '" + n.label + "' must name its endpoint table");
        }
        const PlanNode& child = nodes_[static_cast<size_t>(n.children[0])];
        if (child.kind != PlanOpKind::kTrace) {
          return Status::InvalidArgument(
              "chained trace '" + n.label + "' needs a trace child");
        }
      }
      if (n.trace.skip_index != nullptr &&
          (n.trace.direction != TraceDirection::kBackward ||
           n.trace.seeds_from_child)) {
        return Status::InvalidArgument(
            "data-skipping traces must be backward and non-chained (node '" +
            n.label + "')");
      }
      for (const TraceHopSpec& h : n.trace.fused_hops) {
        if (h.lineage == nullptr || h.endpoint == nullptr) {
          return Status::InvalidArgument(
              "fused trace hop in '" + n.label +
              "' needs lineage and an endpoint table");
        }
      }
    }
    if (n.kind == PlanOpKind::kGroupBy && !n.pushdown.empty()) {
      if (!n.pushdown.cube_cols.empty()) {
        return Status::InvalidArgument(
            "group-by push-down supports selection and skipping only; cube "
            "push-down stays on SPJA blocks (node '" + n.label + "')");
      }
      const PlanNode& child = nodes_[static_cast<size_t>(n.children[0])];
      if (child.kind != PlanOpKind::kScan) {
        return Status::InvalidArgument(
            "group-by push-down requires a base-table scan input — the "
            "partitioned rids must be relation rids (node '" + n.label +
            "')");
      }
    }
    if (n.kind == PlanOpKind::kDerive && n.derives.empty()) {
      return Status::InvalidArgument("derive '" + n.label +
                                     "' has no expressions");
    }
  }
  out->nodes_ = std::move(nodes_);
  out->root_ = root;
  nodes_.clear();
  return Status::OK();
}

}  // namespace smoke
