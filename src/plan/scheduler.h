// Morsel-driven parallel execution (the enabling layer for parallel lineage
// capture — ROADMAP "Parallel capture").
//
// A MorselScheduler owns a fixed pool of worker threads and dispatches tasks
// from a shared atomic queue (the "morsel queue"): ParallelFor(num_tasks, fn)
// runs fn(task, worker) for every task index, with workers pulling the next
// task index as they finish the previous one. The calling thread participates
// as worker 0, so num_threads == 1 degenerates to a plain loop with no
// synchronization.
//
// Determinism contract: WHICH worker runs a task is nondeterministic, but
// callers key all shared state by TASK index, never by worker id, and merge
// per-task results in task order. That is what makes parallel lineage capture
// bit-identical to the single-threaded run regardless of thread count or
// scheduling (tests/parallel_capture_test.cc).
#ifndef SMOKE_PLAN_SCHEDULER_H_
#define SMOKE_PLAN_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/types.h"

namespace smoke {

/// One morsel: a half-open row range [begin, end) over a borrowed table.
struct Morsel {
  rid_t begin = 0;
  rid_t end = 0;
  size_t rows() const { return end - begin; }
};

/// Splits [0, num_rows) into morsels of at most `morsel_rows` rows. The last
/// morsel carries the remainder. Returns an empty vector for an empty input.
std::vector<Morsel> MakeMorsels(size_t num_rows, size_t morsel_rows);

/// Splits [0, num_rows) into exactly min(parts, num_rows) contiguous
/// near-equal partitions (used by operators whose per-task state is heavy,
/// e.g. group-by partial hash tables: one partition per worker).
std::vector<Morsel> MakePartitions(size_t num_rows, size_t parts);

/// \brief Abstract morsel-dispatch interface the parallel kernels run over.
///
/// Two implementations exist: MorselScheduler (below) — a private fixed
/// pool, one batch at a time, owned by a single plan execution — and
/// TieredScheduler::Lease (serve/admission.h) — a handle onto a shared
/// two-class serving pool that tags every submitted morsel with a priority
/// class so interactive traces preempt batch captures. Kernels are agnostic:
/// they split work into tasks, call ParallelFor, and key all shared state by
/// task index (see the determinism contract above).
class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  /// Worker parallelism available to callers sizing per-task state (e.g.
  /// one group-by partition per worker).
  virtual int num_threads() const = 0;

  /// Runs fn(task, worker) for every task in [0, num_tasks), blocking until
  /// all finished. worker is in [0, num_threads); distinct concurrently
  /// running tasks always see distinct worker ids.
  virtual void ParallelFor(
      size_t num_tasks,
      const std::function<void(size_t task, size_t worker)>& fn) = 0;

  /// Default morsel granularity for row-partitioned operators. Small enough
  /// to load-balance skewed predicates (and to bound how long a batch
  /// capture can occupy a serving worker before an interactive trace gets
  /// in), large enough to amortize dispatch.
  static constexpr size_t kDefaultMorselRows = 64 * 1024;
};

/// \brief Fixed thread pool with a shared task counter (morsel queue).
///
/// Workers are spawned once in the constructor and live until destruction,
/// so repeated ParallelFor calls (one per operator in a plan) reuse threads.
/// ParallelFor is not reentrant and must only be called from the thread that
/// constructed the scheduler.
class MorselScheduler : public TaskScheduler {
 public:
  /// `num_threads` counts the calling thread: the pool spawns
  /// num_threads - 1 workers. Values < 1 are clamped to 1.
  explicit MorselScheduler(int num_threads);
  ~MorselScheduler() override;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(MorselScheduler);

  int num_threads() const override { return num_threads_; }

  /// Runs fn(task, worker) for every task in [0, num_tasks), pulling task
  /// indexes from the shared queue. worker is in [0, num_threads); the
  /// calling thread is worker 0. Blocks until every task finished.
  void ParallelFor(
      size_t num_tasks,
      const std::function<void(size_t task, size_t worker)>& fn) override
      SMOKE_EXCLUDES(mu_);

 private:
  void WorkerLoop(size_t worker) SMOKE_EXCLUDES(mu_);
  /// Claims and runs tasks of batch `epoch` until the queue drains or the
  /// batch is superseded. Claims are validated against the epoch under the
  /// mutex, so a worker that wakes late for a finished batch can neither
  /// call its destroyed function nor steal a task from the next batch.
  /// Tasks are morsel-grained, so the two lock acquisitions per task are
  /// noise next to the task body.
  void RunTasks(size_t worker, uint64_t epoch) SMOKE_EXCLUDES(mu_);

  const int num_threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;   // workers wait for a new batch
  CondVar done_cv_;   // caller waits for batch completion
  /// current batch
  const std::function<void(size_t, size_t)>* fn_ SMOKE_GUARDED_BY(mu_) =
      nullptr;
  size_t num_tasks_ SMOKE_GUARDED_BY(mu_) = 0;
  uint64_t epoch_ SMOKE_GUARDED_BY(mu_) = 0;  // bumped per ParallelFor call
  size_t next_task_ SMOKE_GUARDED_BY(mu_) = 0;  // the morsel queue
  size_t pending_ SMOKE_GUARDED_BY(mu_) = 0;    // tasks not yet finished
  bool shutdown_ SMOKE_GUARDED_BY(mu_) = false;
};

}  // namespace smoke

#endif  // SMOKE_PLAN_SCHEDULER_H_
