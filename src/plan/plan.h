// Composable lineage-instrumented plans (paper Sections 3.3, Figure 2).
//
// A LogicalPlan is a DAG of relational operator nodes over base-table scans.
// Every physical operator implements the uniform capture contract
// (plan/operator.h): it consumes its input batch(es) together with
// CaptureOptions and emits its output plus one lineage fragment per input.
// The executor (plan/executor.h) runs the DAG and stitches adjacent
// fragments (lineage/compose.h) into end-to-end backward/forward indexes per
// base relation — exactly how the paper composes instrumented operators into
// instrumented plans.
//
// Plans are built bottom-up with PlanBuilder; node ids are handed back so
// subplans compose freely (aggregate-over-aggregate rollups, joins of
// aggregated subplans, select-over-aggregate chains — shapes the monolithic
// SPJA block cannot express). The fused SPJA block itself remains available
// as a single multi-input node (SpjaBlock), which is how the legacy
// SPJAExec entry point is now expressed.
#ifndef SMOKE_PLAN_PLAN_H_
#define SMOKE_PLAN_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/expr.h"
#include "engine/group_by.h"
#include "engine/group_expr.h"
#include "engine/hash_join.h"
#include "engine/spja.h"
#include "storage/table.h"

namespace smoke {

enum class PlanOpKind : uint8_t {
  kScan,       ///< leaf: a borrowed base relation
  kSelect,     ///< predicate filter (pipelined; rid-array lineage)
  kProject,    ///< column projection (pure pipeline; identity lineage)
  kHashJoin,   ///< hash equi-join (children: build side, probe side)
  kGroupBy,    ///< hash aggregation
  kSetOp,      ///< set/bag union, intersection, difference
  kSpjaBlock,  ///< the fused SPJA block kernel as one multi-input operator
  kTrace,      ///< lineage query over a retained result (paper §2.1/§6.3:
               ///< a secondary index scan, expressed as a plan operator)
  kDerive,     ///< appends derived int64 grouping keys (year/month/scale)
};

enum class SetOpKind : uint8_t {
  kSetUnion,
  kBagUnion,
  kSetIntersect,
  kBagIntersect,
  kSetDifference,
};

const char* PlanOpKindName(PlanOpKind k);

enum class TraceDirection : uint8_t { kBackward, kForward };

/// Name of the int64 rid column a Trace node appends after the endpoint's
/// columns: the traced rid of each output row. Chained Trace nodes read
/// their seeds from it, and the typed facade handles surface it as
/// TraceResult::rids.
extern const char kTraceRidColumn[];

/// \brief One drill-down hop folded into a Trace node by the optimizer's
/// trace-hop fusion rule (Trace∘Trace collapsed into one node). Hops apply
/// in order after the node's own trace: the previous hop's traced rids seed
/// this hop's index probe, and the per-hop fragments compose through
/// lineage/compose — bit-identical to executing the literal chain, minus
/// the intermediate endpoint materialization.
struct TraceHopSpec {
  const QueryLineage* lineage = nullptr;  ///< borrowed, like TraceSpec
  std::string relation;
  TraceDirection direction = TraceDirection::kForward;
  const Table* endpoint = nullptr;  ///< rows this hop would materialize
  bool dedup = true;
};

/// \brief Payload of a kTrace node: a backward/forward lineage query over a
/// retained query's captured indexes, re-expressed as a relational operator
/// (the paper's claim that lineage queries *are* relational queries).
///
/// The node's single child is the trace's lineage endpoint scan (the traced
/// base relation for backward, the retained query's output for forward) —
/// or, for multi-hop traces (TraceAcross ≡ Trace∘Trace), another Trace node
/// whose emitted rid column seeds this hop. Output: the endpoint rows of
/// the traced rids (secondary index scan) plus the kTraceRidColumn. The
/// lineage fragment maps output rows to the child, so plans stacked on top
/// of a Trace (consuming queries) compose end-to-end lineage back to the
/// base relation for free.
struct TraceSpec {
  /// Borrowed lineage of the traced (retained) query; must outlive plan
  /// execution.
  const QueryLineage* lineage = nullptr;
  /// The lineage input to trace on (QueryLineage::FindInput name).
  std::string relation;
  TraceDirection direction = TraceDirection::kBackward;
  /// Seed rids: output rids of the traced query (backward) or input rids of
  /// `relation` (forward). Ignored when seeds_from_child is set.
  std::vector<rid_t> seeds;
  /// Multi-hop trace: seed from the child Trace node's kTraceRidColumn
  /// instead of `seeds`.
  bool seeds_from_child = false;
  /// Deduplicate traced rids (first-encounter order). Backward consuming
  /// queries keep duplicates for witness alignment; TraceAcross dedups.
  bool dedup = true;
  /// Rows materialized into the output. Defaults to the child's table;
  /// chained hops must set it (the hop's own endpoint differs from the
  /// child's output).
  const Table* endpoint = nullptr;
  /// Data-skipping physical choice (paper §4.2): scan only partition
  /// `skip_code` of each seed in this partitioned backward index instead of
  /// probing the plain index. Backward, non-chained traces only.
  const PartitionedRidIndex* skip_index = nullptr;
  uint32_t skip_code = 0;
  /// Fused drill-down hops (optimizer trace-hop fusion). Applied in order
  /// after this node's own trace; the last hop's endpoint becomes the
  /// node's materialized output.
  std::vector<TraceHopSpec> fused_hops;
  /// Filters over the final endpoint's columns, pushed into the trace by
  /// the optimizer (predicate push-down into kTrace): evaluated per traced
  /// rid *before* materialization, so dropped rows are never copied.
  std::vector<Predicate> filters;
};

/// One node of the plan DAG. Exactly the payload fields for its kind are
/// meaningful; the rest stay default-constructed.
struct PlanNode {
  PlanOpKind kind = PlanOpKind::kScan;
  std::vector<int> children;
  /// Scan: the base relation name (the lineage endpoint). Other nodes: a
  /// label used for diagnostics and workload-pruning bookkeeping.
  std::string label;

  const Table* table = nullptr;         // kScan
  std::vector<Predicate> predicates;    // kSelect
  std::vector<int> columns;             // kProject
  /// kProject: name-based column references, resolved against the child's
  /// output schema at Build() time and appended to `columns` in order (then
  /// cleared). Other name fields live inside their specs (Predicate,
  /// JoinSpec, GroupBySpec, GroupExpr).
  std::vector<std::string> column_names;
  JoinSpec join;                        // kHashJoin
  GroupBySpec group_by;                 // kGroupBy
  SetOpKind set_op = SetOpKind::kSetUnion;  // kSetOp
  std::vector<int> set_cols;                // kSetOp (ignored for bag union)
  /// kSetOp: name-based forms of `set_cols`, resolved against the *left*
  /// child's schema (set-op columns are positional across both children).
  std::vector<std::string> set_col_names;
  SPJAQuery spja;                       // kSpjaBlock (table pointers are
                                        // rebound from the scan children)
  SPJAPushdown pushdown;                // kSpjaBlock, kGroupBy (sel/skip)
  TraceSpec trace;                      // kTrace
  std::vector<GroupExpr> derives;       // kDerive
};

/// \brief A validated operator DAG. Nodes are topologically ordered by id
/// (every child id is smaller than its parent's), with a single root.
class LogicalPlan {
 public:
  LogicalPlan() = default;

  size_t num_nodes() const { return nodes_.size(); }
  const PlanNode& node(int id) const {
    SMOKE_DCHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    return nodes_[static_cast<size_t>(id)];
  }
  int root() const { return root_; }

  /// Indented rendering of the DAG for debugging and examples.
  std::string ToString() const;

 private:
  friend class PlanBuilder;
  std::vector<PlanNode> nodes_;
  int root_ = -1;
};

/// \brief Bottom-up plan construction. Each method appends a node and
/// returns its id for use as a later child. Build() validates and freezes
/// the DAG. A node may be consumed by multiple parents (shared subplans);
/// the executor merges lineage across the resulting paths.
class PlanBuilder {
 public:
  PlanBuilder() = default;

  /// Leaf scan of a borrowed base relation. `name` is the relation name used
  /// as the lineage endpoint — give distinct names to distinct scans (two
  /// scans sharing a name make QueryLineage::FindInput ambiguous).
  int Scan(const Table* table, std::string name);

  /// SELECT * FROM child WHERE preds.
  int Select(int child, std::vector<Predicate> predicates);

  /// Projection onto `columns` (indexes into the child's output schema).
  int Project(int child, std::vector<int> columns);

  /// Projection by column name (resolved against the child's output schema
  /// at Build() time; unknown names fail Build with a clear Status).
  int Project(int child, std::vector<std::string> columns);

  /// build ⋈ probe. The left child is the build side (A in the paper's
  /// ⋈ht/⋈probe decomposition), the right child the probe side.
  int HashJoin(int build, int probe, JoinSpec spec);

  int GroupBy(int child, GroupBySpec spec);

  /// Group-by with capture push-downs attached directly to the node (the
  /// SpjaBlock-only attachment, lifted): `push.sel_fact` restricts the
  /// captured backward lists to qualifying input rows, `push.skip_cols`
  /// replaces the plain backward index with a partitioned (data-skipping)
  /// one. The child must be a base-table scan (push-down rids are relation
  /// rids); cube push-down stays SpjaBlock-only.
  int GroupBy(int child, GroupBySpec spec, SPJAPushdown push);

  /// Binary set/bag operator over `cols` (same positions in both children;
  /// ignored for bag union). Set difference captures lineage for the left
  /// child only (paper Appendix F.5).
  int SetOp(SetOpKind kind, int left, int right, std::vector<int> cols);

  /// Set/bag operator with name-based columns (resolved against the left
  /// child's schema; positions apply to both children as in the int form).
  int SetOp(SetOpKind kind, int left, int right,
            std::vector<std::string> cols);

  /// The fused SPJA block as a single node. Scan children for the fact and
  /// dimension tables are added automatically from `query`.
  int SpjaBlock(SPJAQuery query, SPJAPushdown pushdown = SPJAPushdown{});

  /// Lineage query as a plan node. `child` is the trace's endpoint scan, or
  /// a previous Trace node when `spec.seeds_from_child` chains hops
  /// (TraceAcross ≡ Trace∘Trace). Most callers should build traces through
  /// TraceBuilder (query/trace_builder.h) rather than by hand.
  int Trace(int child, TraceSpec spec);

  /// Appends one derived int64 grouping-key column per expression to the
  /// child's output (pure pipeline; identity lineage). The derived columns
  /// land after the child's columns, in `exprs` order, named by each
  /// expression.
  int Derive(int child, std::vector<GroupExpr> exprs);

  /// Appends a fully-formed node (the optimizer's plan-rebuild path). The
  /// node's children must already be valid builder ids; Build() validates
  /// as usual. Returns the node id.
  int AddNode(PlanNode node) { return Add(std::move(node)); }

  /// Overrides the auto-generated label of `node`.
  void SetLabel(int node, std::string label);

  /// Validates the DAG rooted at `root` and moves it into `*out`. The
  /// builder is left empty on success.
  ///
  /// Name resolution runs first: every name-based column reference —
  /// Select/Trace predicate `col_name`s, Project `column_names`, join key
  /// names, GroupBy `key_names` and aggregate-expression column names,
  /// SetOp `set_col_names`, Derive `col_name`s — is resolved against the
  /// referencing node's input schema (optimizer/schema_infer.h) and
  /// rewritten to the index form, clearing the name. Unknown names fail
  /// with a Status naming the node, the column, and the schema searched.
  /// Trace filters resolve against the trace's final endpoint schema.
  Status Build(int root, LogicalPlan* out);

 private:
  int Add(PlanNode node);

  /// The Build() name-resolution pass (see Build's doc comment).
  Status ResolveNames();

  std::vector<PlanNode> nodes_;
};

}  // namespace smoke

#endif  // SMOKE_PLAN_PLAN_H_
