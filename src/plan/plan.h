// Composable lineage-instrumented plans (paper Sections 3.3, Figure 2).
//
// A LogicalPlan is a DAG of relational operator nodes over base-table scans.
// Every physical operator implements the uniform capture contract
// (plan/operator.h): it consumes its input batch(es) together with
// CaptureOptions and emits its output plus one lineage fragment per input.
// The executor (plan/executor.h) runs the DAG and stitches adjacent
// fragments (lineage/compose.h) into end-to-end backward/forward indexes per
// base relation — exactly how the paper composes instrumented operators into
// instrumented plans.
//
// Plans are built bottom-up with PlanBuilder; node ids are handed back so
// subplans compose freely (aggregate-over-aggregate rollups, joins of
// aggregated subplans, select-over-aggregate chains — shapes the monolithic
// SPJA block cannot express). The fused SPJA block itself remains available
// as a single multi-input node (SpjaBlock), which is how the legacy
// SPJAExec entry point is now expressed.
#ifndef SMOKE_PLAN_PLAN_H_
#define SMOKE_PLAN_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/expr.h"
#include "engine/group_by.h"
#include "engine/hash_join.h"
#include "engine/spja.h"
#include "storage/table.h"

namespace smoke {

enum class PlanOpKind : uint8_t {
  kScan,       ///< leaf: a borrowed base relation
  kSelect,     ///< predicate filter (pipelined; rid-array lineage)
  kProject,    ///< column projection (pure pipeline; identity lineage)
  kHashJoin,   ///< hash equi-join (children: build side, probe side)
  kGroupBy,    ///< hash aggregation
  kSetOp,      ///< set/bag union, intersection, difference
  kSpjaBlock,  ///< the fused SPJA block kernel as one multi-input operator
};

enum class SetOpKind : uint8_t {
  kSetUnion,
  kBagUnion,
  kSetIntersect,
  kBagIntersect,
  kSetDifference,
};

const char* PlanOpKindName(PlanOpKind k);

/// One node of the plan DAG. Exactly the payload fields for its kind are
/// meaningful; the rest stay default-constructed.
struct PlanNode {
  PlanOpKind kind = PlanOpKind::kScan;
  std::vector<int> children;
  /// Scan: the base relation name (the lineage endpoint). Other nodes: a
  /// label used for diagnostics and workload-pruning bookkeeping.
  std::string label;

  const Table* table = nullptr;         // kScan
  std::vector<Predicate> predicates;    // kSelect
  std::vector<int> columns;             // kProject
  JoinSpec join;                        // kHashJoin
  GroupBySpec group_by;                 // kGroupBy
  SetOpKind set_op = SetOpKind::kSetUnion;  // kSetOp
  std::vector<int> set_cols;                // kSetOp (ignored for bag union)
  SPJAQuery spja;                       // kSpjaBlock (table pointers are
                                        // rebound from the scan children)
  SPJAPushdown pushdown;                // kSpjaBlock
};

/// \brief A validated operator DAG. Nodes are topologically ordered by id
/// (every child id is smaller than its parent's), with a single root.
class LogicalPlan {
 public:
  LogicalPlan() = default;

  size_t num_nodes() const { return nodes_.size(); }
  const PlanNode& node(int id) const {
    SMOKE_DCHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    return nodes_[static_cast<size_t>(id)];
  }
  int root() const { return root_; }

  /// Indented rendering of the DAG for debugging and examples.
  std::string ToString() const;

 private:
  friend class PlanBuilder;
  std::vector<PlanNode> nodes_;
  int root_ = -1;
};

/// \brief Bottom-up plan construction. Each method appends a node and
/// returns its id for use as a later child. Build() validates and freezes
/// the DAG. A node may be consumed by multiple parents (shared subplans);
/// the executor merges lineage across the resulting paths.
class PlanBuilder {
 public:
  PlanBuilder() = default;

  /// Leaf scan of a borrowed base relation. `name` is the relation name used
  /// as the lineage endpoint — give distinct names to distinct scans (two
  /// scans sharing a name make QueryLineage::FindInput ambiguous).
  int Scan(const Table* table, std::string name);

  /// SELECT * FROM child WHERE preds.
  int Select(int child, std::vector<Predicate> predicates);

  /// Projection onto `columns` (indexes into the child's output schema).
  int Project(int child, std::vector<int> columns);

  /// build ⋈ probe. The left child is the build side (A in the paper's
  /// ⋈ht/⋈probe decomposition), the right child the probe side.
  int HashJoin(int build, int probe, JoinSpec spec);

  int GroupBy(int child, GroupBySpec spec);

  /// Binary set/bag operator over `cols` (same positions in both children;
  /// ignored for bag union). Set difference captures lineage for the left
  /// child only (paper Appendix F.5).
  int SetOp(SetOpKind kind, int left, int right, std::vector<int> cols);

  /// The fused SPJA block as a single node. Scan children for the fact and
  /// dimension tables are added automatically from `query`.
  int SpjaBlock(SPJAQuery query, SPJAPushdown pushdown = SPJAPushdown{});

  /// Overrides the auto-generated label of `node`.
  void SetLabel(int node, std::string label);

  /// Validates the DAG rooted at `root` and moves it into `*out`. The
  /// builder is left empty on success.
  Status Build(int root, LogicalPlan* out);

 private:
  int Add(PlanNode node);

  std::vector<PlanNode> nodes_;
};

}  // namespace smoke

#endif  // SMOKE_PLAN_PLAN_H_
