// The uniform physical-operator capture contract (paper Section 3.3),
// extended with partition-aware execution (ROADMAP "Parallel capture").
//
// Every operator in an instrumented plan implements the same interface:
//   (input batch(es), CaptureOptions) -> (output batch, one lineage
//   fragment per input)
// A fragment is the operator-local backward/forward mapping between the
// operator's output positions and one input's positions, in one of the two
// physical index forms (rid array / rid index). The executor composes
// adjacent fragments (lineage/compose.h) into end-to-end indexes — the
// operators themselves never see more than their own inputs, which is what
// makes the plan API composable.
//
// Partition awareness: an OperatorInput may carry a morsel view — a
// half-open [row_begin, row_end) window over the borrowed batch. Fragments
// keep ABSOLUTE table rids on the input side and execution-local rids on
// the output side, so the fragments of disjoint morsel views concatenate
// into the full-input fragment by shifting output rids with each view's
// output offset (lineage/fragment_merge.h). With CaptureOptions::
// num_threads > 1 the kernels do exactly this internally: morsels are
// captured into thread-local fragment buffers and merged deterministically
// in morsel order, so results are bit-identical to single-threaded runs.
//
// The concrete implementations delegate to the instrumented kernels in
// src/engine/ (SelectExec, HashJoinExec, GroupByExec, the set operators and
// the fused SPJA block), preserving their inject/defer fast paths and
// hash-table rid reuse unchanged.
#ifndef SMOKE_PLAN_OPERATOR_H_
#define SMOKE_PLAN_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/capture.h"
#include "engine/group_by.h"
#include "lineage/rid_index.h"
#include "plan/plan.h"
#include "plan/scheduler.h"
#include "storage/table.h"

namespace smoke {

/// The lineage fragment of one operator execution with respect to one of
/// its inputs. Input-side rids are absolute positions in the input batch
/// (even under a morsel view); output-side rids are local to this
/// execution's output.
struct LineageFragment {
  LineageIndex backward;  ///< output position -> input positions
  LineageIndex forward;   ///< input position -> output positions
  /// Pure pipelined 1:1 operators (projection) mark their fragment as
  /// identity instead of materializing an index; composition passes the
  /// accumulated lineage through unchanged. Never set under a partial
  /// morsel view (the view's 1:1 mapping is offset, not identity).
  bool identity = false;
};

/// One bound operator input: a borrowed batch plus the label used for
/// relation pruning (base-relation name for scans, node label otherwise).
struct OperatorInput {
  const Table* table = nullptr;
  std::string name;

  /// Morsel/partition view: when `has_view` is set the operator consumes
  /// only rows [view.begin, view.end) of `table`. Supported by the
  /// row-partitioned operators (select, project); partition-ignorant
  /// operators reject partial views. Fragment rids on this input stay
  /// absolute, so per-view fragments merge with fragment_merge.h.
  Morsel view;
  bool has_view = false;

  Morsel EffectiveView() const {
    if (has_view) return view;
    Morsel full;
    full.begin = 0;
    full.end = static_cast<rid_t>(table->num_rows());
    return full;
  }
  bool IsFullRange() const {
    return !has_view ||
           (view.begin == 0 && view.end == table->num_rows());
  }
};

/// What an operator execution produces under the uniform contract.
struct OperatorResult {
  Table output;
  size_t output_cardinality = 0;
  /// Parallel to the inputs. Individual fragment indexes are empty when the
  /// mode captures nothing (kNone) or the input was pruned.
  std::vector<LineageFragment> fragments;
  /// SPJA block only: the block-level retained artifacts (annotated
  /// relation, group counts, push-down skip index / cube) that the
  /// SPJAExec compatibility wrapper re-exposes.
  std::shared_ptr<SPJAResult> spja_artifacts;
  /// Group-by under plan-level defer scheduling (CaptureOptions::
  /// defer_plan_finalize): the kernel result whose lineage is still pending
  /// — it retains the γht hash table that PlanResult::FinalizeDeferred()
  /// probes at think-time. The matching fragment stays empty until then.
  std::shared_ptr<GroupByResult> deferred_group_by;
  /// Group-by under CaptureOptions::retain_refresh_state: the finalized
  /// kernel's γht handle, kept alive so delta batches can probe and extend
  /// the aggregate state in place (src/refresh/).
  std::shared_ptr<GroupByHandle> group_by;
};

/// \brief A physical operator bound to a plan node.
///
/// The bound node must outlive the operator. Execution is const — one
/// operator may be executed repeatedly (e.g. by benches).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const char* name() const = 0;

  /// Runs the operator over `inputs` with the capture technique in `opts`,
  /// filling `*out`. Inputs arrive in the node's child order.
  virtual Status Execute(const std::vector<OperatorInput>& inputs,
                         const CaptureOptions& opts,
                         OperatorResult* out) const = 0;
};

/// Creates the physical operator for a non-scan plan node. The node must
/// outlive the returned operator.
std::unique_ptr<Operator> MakeOperator(const PlanNode& node);

}  // namespace smoke

#endif  // SMOKE_PLAN_OPERATOR_H_
