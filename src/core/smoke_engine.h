// SmokeEngine: the system-level facade (paper Figure 2).
//
// Ties the pieces together the way the paper's engine does: a client
// registers base relations, submits base queries Q (optionally with a
// declared lineage-consuming workload W that configures pruning and
// push-down), and then issues backward / forward / consuming lineage
// queries against the retained lineage indexes. Base queries come in two
// forms: the legacy SPJA block (ExecuteQuery) and arbitrary composable
// operator DAGs built with PlanBuilder (ExecutePlan). Query results and
// their lineage are retained under client-chosen names so consuming queries
// can chain (C over C' over Q) and lineage can be traced across queries.
//
// Lineage consumption goes through the unified API (query/trace_builder.h):
// traces and consuming queries compile to ordinary plans with Trace nodes,
// run by the same executor as base queries, and retain PlanResults — so a
// consuming result chains exactly like any other retained query. The typed
// handles (TraceResult / ExecuteTraceQuery) are the primary interface; the
// older string-keyed methods remain as thin shims over the same path.
#ifndef SMOKE_CORE_SMOKE_ENGINE_H_
#define SMOKE_CORE_SMOKE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/spja.h"
#include "lineage/store/lineage_store.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "query/consuming.h"
#include "query/trace_builder.h"
#include "refresh/refresh.h"
#include "shard/coordinator.h"
#include "storage/catalog.h"

namespace smoke {

/// \brief Typed result of a lineage trace: the traced rids, the
/// materialized endpoint rows, and the executed trace plan whose own
/// composed lineage makes the result chainable (trace the trace, stack a
/// consuming query on top, brush across views).
struct TraceResult {
  std::vector<rid_t> rids;  ///< traced rids, in trace order
  Table rows;               ///< SELECT * FROM L(...): the endpoint rows
  PlanResult plan;          ///< the trace as an executed plan (chainable)

  TraceSource AsSource(std::string name = "trace") const {
    return TraceSource::FromPlan(plan, std::move(name));
  }
};

/// The declared lineage-consuming workload W for a base query (paper
/// Section 4): which relations/directions future lineage queries touch
/// (instrumentation pruning) and which push-downs to apply.
struct Workload {
  /// Relations future lineage queries trace to (empty = all).
  std::vector<std::string> traced_relations;
  bool needs_backward = true;
  bool needs_forward = true;
  /// Push-down configuration (selection / data skipping / cube). Applies to
  /// SPJA base queries; plan base queries attach push-downs to their
  /// SpjaBlock nodes instead.
  SPJAPushdown pushdown;
};

/// \brief In-memory lineage-enabled database engine.
class SmokeEngine {
 public:
  SmokeEngine() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(SmokeEngine);

  // ---- data definition ----

  /// Registers a base relation. Fails with AlreadyExists if the name is
  /// taken — re-registering under a live name would dangle the borrowed
  /// table pointers inside retained queries (use ReplaceTable / DropTable,
  /// which check for that).
  Status CreateTable(const std::string& name, Table table);

  /// Looks up a base relation.
  Status GetTable(const std::string& name, const Table** out) const;

  /// Swaps in new contents for a registered relation. Refused while any
  /// retained query still references the table: retained lineage stores
  /// rids into the old rows, so replacing them underneath would silently
  /// corrupt every subsequent lineage query. The refusal names the
  /// borrowing result; drop the dependents first — or, to replace data
  /// underneath live readers without dropping anything, serve through
  /// ServeCore, which versions the whole engine instead of mutating it.
  Status ReplaceTable(const std::string& name, Table table);

  /// Unregisters a relation. Refused while any retained query references
  /// the table (same hazard as ReplaceTable). Dropping a sharded table
  /// drops its shard slices and codec with it.
  Status DropTable(const std::string& name);

  /// Partitions a registered base table into shards (range/hash on an int64
  /// column, shard/shard_map.h). Subsequent ExecutePlan calls whose plans
  /// scan the table route through the sharded coordinator
  /// (shard/coordinator.h): per-shard morsel-parallel execution,
  /// cross-shard lineage composition bit-identical to the unsharded run,
  /// and retained fan-out state so backward traces probe only the shards
  /// their seeds touch. Re-sharding with a new spec is allowed, but refused
  /// while a retained sharded result still borrows the current ShardMap.
  /// ReplaceTable re-slices a sharded table under the same spec.
  Status ShardTable(const std::string& name, const ShardingSpec& spec);

  /// Removes a table's sharding (slices and codec). The base relation and
  /// every retained result stay; subsequent plans execute unsharded. Same
  /// borrow refusal as re-sharding.
  Status UnshardTable(const std::string& name);

  /// Appends `rows` to a registered relation and incrementally maintains
  /// every retained plan that reads it (src/refresh/): refreshable views
  /// fold the delta through their operator DAGs in place; views whose
  /// analysis or delta placement forbids it (dim-side join append, SetOp,
  /// mid-plan group-by, ...) take a scoped rebuild with the reason recorded
  /// in their RefreshStats. Appending — unlike ReplaceTable — never
  /// invalidates retained rids, so this is the one mutation allowed while
  /// results are live. Refused (FailedPrecondition, naming the borrower)
  /// when a borrowing result cannot be maintained at all: a retained SPJA
  /// query, a sharded plan, or a plan executed without
  /// retain_refresh_state. Per-view stats for this batch are appended to
  /// `stats` when non-null.
  Status AppendRows(const std::string& name, const Table& rows,
                    std::vector<RefreshStats>* stats = nullptr);

  /// Adopts an externally maintained PlanResult as a retained plan (used by
  /// ServeCore to publish incrementally refreshed views into a fresh
  /// snapshot engine without re-executing them). The result must be
  /// finalized; its lineage is registered with the store accounting as-is
  /// (already encoded per `codec` by the maintainer).
  Status AdoptRetainedPlan(const std::string& query_name, PlanResult result,
                           LineageCodec codec);

  // ---- base queries ----

  /// Executes an SPJA base query with the given capture technique and
  /// retains its result and lineage under `query_name`. The optional
  /// workload drives pruning and push-down configuration.
  Status ExecuteQuery(const std::string& query_name, const SPJAQuery& query,
                      CaptureMode mode = CaptureMode::kInject,
                      const Workload* workload = nullptr);

  /// Full-options variant: `opts` additionally carries the parallel-capture
  /// knobs and the lineage-store knobs (lineage_codec — how the retained
  /// indexes are encoded at finalize; lineage_budget_bytes — engine-wide
  /// memory budget). Results and traces are bit-identical across codecs.
  Status ExecuteQuery(const std::string& query_name, const SPJAQuery& query,
                      const CaptureOptions& opts,
                      const Workload* workload = nullptr);

  /// Executes a composable operator DAG (plan/plan.h) and retains its
  /// result and composed end-to-end lineage under `query_name`. All lineage
  /// queries (Backward / Forward / BackwardRows / TraceAcross) and
  /// consuming queries work over retained plans exactly as over SPJA
  /// queries. The workload's traced_relations / directions configure
  /// pruning; its pushdown field is ignored (attach push-downs to SpjaBlock
  /// nodes when building the plan).
  Status ExecutePlan(const std::string& query_name, const LogicalPlan& plan,
                     CaptureMode mode = CaptureMode::kInject,
                     const Workload* workload = nullptr);

  /// Full-options variant: `opts` additionally carries the parallel-capture
  /// knobs (num_threads, morsel_rows — results and lineage are identical to
  /// single-threaded execution) and defer_plan_finalize (think-time
  /// finalization via FinalizePlan). A non-null workload overrides the
  /// pruning fields of `opts` as in the CaptureMode variant.
  Status ExecutePlan(const std::string& query_name, const LogicalPlan& plan,
                     const CaptureOptions& opts,
                     const Workload* workload = nullptr);

  /// Finalizes deferred capture of a retained plan executed with
  /// defer_plan_finalize (the paper's think-time Zγ at plan granularity).
  /// Lineage queries against the plan only see indexes after this runs.
  /// No-op for plans with nothing pending.
  Status FinalizePlan(const std::string& query_name);

  /// The output relation of a retained query (SPJA or plan).
  Status GetResult(const std::string& query_name, const Table** out) const;

  /// The full SPJA result object (lineage, push-down artifacts).
  Status GetResultObject(const std::string& query_name,
                         const SPJAResult** out) const;

  /// The full plan result object (composed lineage, block artifacts).
  Status GetPlanResult(const std::string& query_name,
                       const PlanResult** out) const;

  // ---- lineage queries: typed handles (the unified consumption API) ----

  /// Builds a TraceSource for a retained query (SPJA or plan) so callers
  /// can construct TraceBuilder queries directly. The source borrows the
  /// retained result and stays valid until the query is dropped.
  Status MakeTraceSource(const std::string& query_name,
                         TraceSource* out) const;

  /// Lb(out_rids ⊆ O, relation) as an executed Trace plan: rids, rows and
  /// chainable lineage in one typed handle.
  Status TraceBackward(const std::string& query_name,
                       const std::string& relation,
                       const std::vector<rid_t>& out_rids, TraceResult* out,
                       bool dedup = true) const;

  /// Lf(in_rids ⊆ relation, O) as an executed Trace plan.
  Status TraceForward(const std::string& query_name,
                      const std::string& relation,
                      const std::vector<rid_t>& in_rids,
                      TraceResult* out) const;

  /// Linked brushing as Trace∘Trace: backward from `from_query` to the
  /// shared relation, forward into `to_query`. The handle's rows are
  /// `to_query` output rows; its plan lineage maps them back to the shared
  /// relation rows that link them (witness counts for brushing).
  Status TraceLinked(const std::string& from_query,
                     const std::vector<rid_t>& out_rids,
                     const std::string& relation,
                     const std::string& to_query, TraceResult* out) const;

  /// Executes a TraceBuilder lineage/consuming query and retains its
  /// PlanResult under `result_name` — the result chains like any retained
  /// plan (Backward / TraceBackward / further consuming queries all work).
  Status ExecuteTraceQuery(const std::string& result_name,
                           const TraceBuilder& builder,
                           const CaptureOptions& opts = CaptureOptions::Inject());

  // ---- lineage queries: string-keyed shims ----

  /// Lb(out_rids ⊆ O, relation): input rids of `relation` that contributed
  /// to the given outputs of `query_name`.
  Status Backward(const std::string& query_name, const std::string& relation,
                  const std::vector<rid_t>& out_rids,
                  std::vector<rid_t>* rids, bool dedup = true) const;

  /// Lb over a retained sharded plan, forced through the shard fan-out
  /// path: probes only the shards the seeds' region rows live in and
  /// reports the fan-out in `stats` (optional). `relation` must be the
  /// sharded driver relation of the retained result. Rids are identical —
  /// order, multiplicity, dedup — to Backward's composed-index answer.
  /// (Backward itself picks between the two paths with the
  /// optimizer/cost.h shard pricing; this entry point pins the choice.)
  Status BackwardSharded(const std::string& query_name,
                         const std::string& relation,
                         const std::vector<rid_t>& out_rids,
                         std::vector<rid_t>* rids, ShardTraceStats* stats,
                         bool dedup = true) const;

  /// Lf(in_rids ⊆ R, O): output rids of `query_name` derived from the given
  /// input rids of `relation`.
  Status Forward(const std::string& query_name, const std::string& relation,
                 const std::vector<rid_t>& in_rids,
                 std::vector<rid_t>* rids) const;

  /// SELECT * FROM Lb(...): materializes the traced rows.
  Status BackwardRows(const std::string& query_name,
                      const std::string& relation,
                      const std::vector<rid_t>& out_rids, Table* rows) const;

  /// Linked brushing (paper Figure 1): Lf(Lb(out_rids ⊆ V1, relation), V2) —
  /// backward from `from_query`'s outputs to the shared input relation,
  /// then forward into `to_query`'s outputs. Both queries must have lineage
  /// on `relation` (backward on from, forward on to). Works across any mix
  /// of retained SPJA and plan queries.
  Status TraceAcross(const std::string& from_query,
                     const std::vector<rid_t>& out_rids,
                     const std::string& relation,
                     const std::string& to_query,
                     std::vector<rid_t>* linked) const;

#ifdef SMOKE_ENABLE_DEPRECATED_CONSUMING
  // ---- lineage consuming queries (retired shims) ----
  //
  // These string-keyed methods predate the unified consumption API
  // (TraceBuilder / ExecuteTraceQuery) and are compiled out by default.
  // Define SMOKE_ENABLE_DEPRECATED_CONSUMING to bring them back for one
  // release while migrating; see README "Migrating off ExecuteConsuming*".

  /// Evaluates a consuming query over the backward lineage of one output of
  /// a retained base query (secondary index scan), retaining the consuming
  /// result under `result_name` for further chaining. The traced relation
  /// defaults to the base query's fact table (SPJA) or first lineage input
  /// (plan).
  Status ExecuteConsuming(const std::string& result_name,
                          const std::string& base_query, rid_t output_rid,
                          const ConsumingSpec& spec);

  /// Same, tracing an explicit input `relation` of the base query.
  Status ExecuteConsumingOn(const std::string& result_name,
                            const std::string& base_query,
                            const std::string& relation, rid_t output_rid,
                            const ConsumingSpec& spec);

  /// Evaluates a consuming query over one output of a retained *consuming*
  /// result (the Q1b -> Q1c chain). Since consuming results are retained
  /// plans with composed lineage back to the traced relation, this is just
  /// ExecuteConsumingOn against that relation.
  Status ExecuteConsumingChained(const std::string& result_name,
                                 const std::string& base_consuming,
                                 rid_t output_rid, const ConsumingSpec& spec);

  /// The output of a retained consuming query (== GetResult).
  Status GetConsumingResult(const std::string& result_name,
                            const Table** out) const;
#endif  // SMOKE_ENABLE_DEPRECATED_CONSUMING

  /// Drops a retained query result and its lineage (releasing its lineage
  /// store accounting). Refused while another retained result's lineage
  /// still borrows this result's output rows (e.g. a retained forward
  /// trace) — dropping it would dangle that lineage.
  Status DropResult(const std::string& query_name);

  std::vector<std::string> QueryNames() const;

  // ---- lineage store: memory accounting & budget ----

  /// Per-retained-query lineage memory accounting: bytes, codec, eviction
  /// state, LRU ticks, and the engine-wide total/budget.
  LineageStoreStats LineageMemoryStats() const;

  /// Sets the engine-wide lineage memory budget (0 = unlimited) and
  /// enforces it immediately: coldest retained indexes are re-encoded
  /// adaptively, then evicted (lazy-rescan fallback) until under budget.
  void SetLineageBudget(size_t bytes);

 private:
  struct RetainedQuery {
    SPJAQuery query;        // note: borrows engine-owned tables
    SPJAResult result;
    const Table* fact = nullptr;
    LineageCodec codec = LineageCodec::kRaw;
  };
  struct RetainedPlan {
    PlanResult result;
    LineageCodec codec = LineageCodec::kRaw;
    /// Shard fan-out state when the plan executed sharded with backward
    /// capture (borrows the ShardMap of the driver's ShardedTable).
    std::unique_ptr<ShardedExecution> shard;
  };

  /// Unified lookup over retained SPJA queries and plans.
  Status FindLineage(const std::string& query_name,
                     const QueryLineage** out) const;

  /// True when `name` is already retained in any namespace.
  bool IsRetainedName(const std::string& name) const;

  /// True when any retained result still borrows `table`.
  bool TableInUse(const Table* table) const;

  /// Name of a retained result whose shard fan-out state borrows `st`'s
  /// ShardMap (first in name order), or "" when none — guards re-sharding
  /// and unsharding the way BorrowerOf guards table replacement.
  std::string ShardBorrowerOf(const ShardedTable* st) const;

  /// Name of a retained result whose query or lineage still borrows
  /// `table` (first in name order), or "" when none — lets the refusal
  /// paths tell the caller exactly what to drop. The serving layer
  /// (serve/serve_core.h) sidesteps these refusals entirely by giving each
  /// snapshot version its own engine.
  std::string BorrowerOf(const Table* table) const;

  /// Encodes the freshly retained query's lineage per `opts.lineage_codec`,
  /// registers it with the tracker, applies `opts.lineage_budget_bytes`,
  /// and enforces the budget.
  void FinishRetention(const std::string& query_name,
                       const CaptureOptions& opts);

  /// Re-encodes a retained query's lineage under the adaptive codec and
  /// updates its accounting.
  void ReencodeRetained(const std::string& query_name, LineageCodec codec);

  /// Drops a retained query's indexes (keeping result + metadata); its
  /// traces fall back to the lazy-rescan strategy.
  void EvictRetained(const std::string& query_name);

  /// True when backward traces on `query_name` can be answered by the lazy
  /// rescan after eviction (retained SPJA query, no dimensions, fact-table
  /// group-by keys).
  bool LazyFallbackAvailable(const std::string& query_name) const;

  /// Re-encode cold, then evict, until total lineage bytes fit the budget.
  void EnforceBudget();

  Catalog catalog_;
  /// Shard slices + codec per sharded base table, keyed by table name.
  std::map<std::string, std::unique_ptr<ShardedTable>> sharded_;
  std::map<std::string, std::unique_ptr<RetainedQuery>> queries_;
  /// Retained plan results: base-query plans AND trace/consuming results —
  /// the unified consumption API makes them the same kind of thing.
  std::map<std::string, std::unique_ptr<RetainedPlan>> plans_;
  /// Lineage store accounting (mutable: trace accesses bump LRU ticks
  /// through const lookups).
  mutable LineageMemoryTracker tracker_;
};

}  // namespace smoke

#endif  // SMOKE_CORE_SMOKE_ENGINE_H_
