// SmokeEngine: the system-level facade (paper Figure 2).
//
// Ties the pieces together the way the paper's engine does: a client
// registers base relations, submits base queries Q (optionally with a
// declared lineage-consuming workload W that configures pruning and
// push-down), and then issues backward / forward / consuming lineage
// queries against the retained lineage indexes. Query results and their
// lineage are retained under client-chosen names so consuming queries can
// chain (C over C' over Q).
#ifndef SMOKE_CORE_SMOKE_ENGINE_H_
#define SMOKE_CORE_SMOKE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/spja.h"
#include "query/consuming.h"
#include "storage/catalog.h"

namespace smoke {

/// The declared lineage-consuming workload W for a base query (paper
/// Section 4): which relations/directions future lineage queries touch
/// (instrumentation pruning) and which push-downs to apply.
struct Workload {
  /// Relations future lineage queries trace to (empty = all).
  std::vector<std::string> traced_relations;
  bool needs_backward = true;
  bool needs_forward = true;
  /// Push-down configuration (selection / data skipping / cube).
  SPJAPushdown pushdown;
};

/// \brief In-memory lineage-enabled database engine.
class SmokeEngine {
 public:
  SmokeEngine() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(SmokeEngine);

  // ---- data definition ----

  /// Registers a base relation.
  Status CreateTable(const std::string& name, Table table);

  /// Looks up a base relation.
  Status GetTable(const std::string& name, const Table** out) const;

  // ---- base queries ----

  /// Executes an SPJA base query with the given capture technique and
  /// retains its result and lineage under `query_name`. The optional
  /// workload drives pruning and push-down configuration.
  Status ExecuteQuery(const std::string& query_name, const SPJAQuery& query,
                      CaptureMode mode = CaptureMode::kInject,
                      const Workload* workload = nullptr);

  /// The output relation of a retained query.
  Status GetResult(const std::string& query_name, const Table** out) const;

  /// The full result object (lineage, push-down artifacts).
  Status GetResultObject(const std::string& query_name,
                         const SPJAResult** out) const;

  // ---- lineage queries ----

  /// Lb(out_rids ⊆ O, relation): input rids of `relation` that contributed
  /// to the given outputs of `query_name`.
  Status Backward(const std::string& query_name, const std::string& relation,
                  const std::vector<rid_t>& out_rids,
                  std::vector<rid_t>* rids, bool dedup = true) const;

  /// Lf(in_rids ⊆ R, O): output rids of `query_name` derived from the given
  /// input rids of `relation`.
  Status Forward(const std::string& query_name, const std::string& relation,
                 const std::vector<rid_t>& in_rids,
                 std::vector<rid_t>* rids) const;

  /// SELECT * FROM Lb(...): materializes the traced rows.
  Status BackwardRows(const std::string& query_name,
                      const std::string& relation,
                      const std::vector<rid_t>& out_rids, Table* rows) const;

  /// Linked brushing (paper Figure 1): Lf(Lb(out_rids ⊆ V1, relation), V2) —
  /// backward from `from_query`'s outputs to the shared input relation,
  /// then forward into `to_query`'s outputs. Both queries must have lineage
  /// on `relation` (backward on from, forward on to).
  Status TraceAcross(const std::string& from_query,
                     const std::vector<rid_t>& out_rids,
                     const std::string& relation,
                     const std::string& to_query,
                     std::vector<rid_t>* linked) const;

  // ---- lineage consuming queries ----

  /// Evaluates a consuming query over the backward lineage of one output of
  /// a retained base query (secondary index scan), retaining the consuming
  /// result under `result_name` for further chaining. The traced relation
  /// is the base query's fact table.
  Status ExecuteConsuming(const std::string& result_name,
                          const std::string& base_query, rid_t output_rid,
                          const ConsumingSpec& spec);

  /// Evaluates a consuming query over one output of a retained *consuming*
  /// result (the Q1b -> Q1c chain).
  Status ExecuteConsumingChained(const std::string& result_name,
                                 const std::string& base_consuming,
                                 rid_t output_rid, const ConsumingSpec& spec);

  /// The output of a retained consuming query.
  Status GetConsumingResult(const std::string& result_name,
                            const Table** out) const;

  /// Drops a retained query result and its lineage.
  Status DropResult(const std::string& query_name);

  std::vector<std::string> QueryNames() const;

 private:
  struct RetainedQuery {
    SPJAQuery query;        // note: borrows engine-owned tables
    SPJAResult result;
    const Table* fact = nullptr;
  };
  struct RetainedConsuming {
    ConsumingResult result;
    const Table* fact = nullptr;
  };

  Catalog catalog_;
  std::map<std::string, std::unique_ptr<RetainedQuery>> queries_;
  std::map<std::string, std::unique_ptr<RetainedConsuming>> consuming_;
};

}  // namespace smoke

#endif  // SMOKE_CORE_SMOKE_ENGINE_H_
