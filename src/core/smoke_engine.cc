#include "core/smoke_engine.h"

#include "query/lineage_query.h"

namespace smoke {

Status SmokeEngine::CreateTable(const std::string& name, Table table) {
  return catalog_.AddTable(name, std::move(table));
}

Status SmokeEngine::GetTable(const std::string& name,
                             const Table** out) const {
  return catalog_.GetTable(name, out);
}

Status SmokeEngine::ReplaceTable(const std::string& name, Table table) {
  const Table* existing = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetTable(name, &existing));
  if (TableInUse(existing)) {
    return Status::InvalidArgument(
        "table '" + name +
        "' is referenced by retained query results; drop them before "
        "replacing the table");
  }
  return catalog_.ReplaceTable(name, std::move(table));
}

Status SmokeEngine::DropTable(const std::string& name) {
  const Table* existing = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetTable(name, &existing));
  if (TableInUse(existing)) {
    return Status::InvalidArgument(
        "table '" + name +
        "' is referenced by retained query results; drop them before "
        "dropping the table");
  }
  return catalog_.DropTable(name);
}

bool SmokeEngine::TableInUse(const Table* table) const {
  for (const auto& [name, rq] : queries_) {
    (void)name;
    if (rq->fact == table || rq->query.fact == table) return true;
    for (const SPJADim& d : rq->query.dims) {
      if (d.table == table) return true;
    }
    const QueryLineage& lin = rq->result.lineage;
    for (size_t i = 0; i < lin.num_inputs(); ++i) {
      if (lin.input(i).table == table) return true;
    }
  }
  for (const auto& [name, rp] : plans_) {
    (void)name;
    const QueryLineage& lin = rp->result.lineage;
    for (size_t i = 0; i < lin.num_inputs(); ++i) {
      if (lin.input(i).table == table) return true;
    }
  }
  for (const auto& [name, rc] : consuming_) {
    (void)name;
    if (rc->fact == table) return true;
  }
  return false;
}

bool SmokeEngine::IsRetainedName(const std::string& name) const {
  return queries_.count(name) > 0 || plans_.count(name) > 0 ||
         consuming_.count(name) > 0;
}

Status SmokeEngine::ExecuteQuery(const std::string& query_name,
                                 const SPJAQuery& query, CaptureMode mode,
                                 const Workload* workload) {
  if (IsRetainedName(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (query.fact == nullptr) {
    return Status::InvalidArgument("query has no fact table");
  }
  if (mode == CaptureMode::kPhysMem || mode == CaptureMode::kPhysBdb) {
    return Status::Unsupported(
        "physical baselines are exercised per-operator, not via the engine "
        "facade");
  }

  CaptureOptions opts = CaptureOptions::Mode(mode);
  const SPJAPushdown* push = nullptr;
  if (workload != nullptr) {
    opts.only_relations = workload->traced_relations;
    opts.capture_backward = workload->needs_backward;
    opts.capture_forward = workload->needs_forward;
    if (!workload->pushdown.empty()) push = &workload->pushdown;
  }

  auto retained = std::make_unique<RetainedQuery>();
  retained->query = query;
  retained->fact = query.fact;
  retained->result = SPJAExec(query, opts, push);
  queries_[query_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::ExecutePlan(const std::string& query_name,
                                const LogicalPlan& plan, CaptureMode mode,
                                const Workload* workload) {
  return ExecutePlan(query_name, plan, CaptureOptions::Mode(mode), workload);
}

Status SmokeEngine::ExecutePlan(const std::string& query_name,
                                const LogicalPlan& plan,
                                const CaptureOptions& options,
                                const Workload* workload) {
  if (IsRetainedName(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (options.mode == CaptureMode::kPhysMem ||
      options.mode == CaptureMode::kPhysBdb) {
    return Status::Unsupported(
        "physical baselines are exercised per-operator, not via the engine "
        "facade");
  }

  CaptureOptions opts = options;
  if (workload != nullptr) {
    if (!workload->pushdown.empty()) {
      return Status::InvalidArgument(
          "workload push-downs do not apply to plan queries; attach them to "
          "the plan's SpjaBlock node instead");
    }
    opts.only_relations = workload->traced_relations;
    opts.capture_backward = workload->needs_backward;
    opts.capture_forward = workload->needs_forward;
  }

  auto retained = std::make_unique<RetainedPlan>();
  SMOKE_RETURN_NOT_OK(smoke::ExecutePlan(plan, opts, &retained->result));
  plans_[query_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::FinalizePlan(const std::string& query_name) {
  auto it = plans_.find(query_name);
  if (it == plans_.end()) {
    return Status::NotFound("plan query '" + query_name + "'");
  }
  return it->second->result.FinalizeDeferred();
}

Status SmokeEngine::GetResult(const std::string& query_name,
                              const Table** out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = &it->second->result.output;
    return Status::OK();
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    *out = &it->second->result.output;
    return Status::OK();
  }
  return Status::NotFound("query '" + query_name + "'");
}

Status SmokeEngine::GetResultObject(const std::string& query_name,
                                    const SPJAResult** out) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + query_name + "'");
  }
  *out = &it->second->result;
  return Status::OK();
}

Status SmokeEngine::GetPlanResult(const std::string& query_name,
                                  const PlanResult** out) const {
  auto it = plans_.find(query_name);
  if (it == plans_.end()) {
    return Status::NotFound("plan query '" + query_name + "'");
  }
  *out = &it->second->result;
  return Status::OK();
}

Status SmokeEngine::FindLineage(const std::string& query_name,
                                const QueryLineage** out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = &it->second->result.lineage;
    return Status::OK();
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    *out = &it->second->result.lineage;
    return Status::OK();
  }
  return Status::NotFound("query '" + query_name + "'");
}

Status SmokeEngine::Backward(const std::string& query_name,
                             const std::string& relation,
                             const std::vector<rid_t>& out_rids,
                             std::vector<rid_t>* rids, bool dedup) const {
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  int idx = lineage->FindInput(relation);
  if (idx < 0) {
    return Status::NotFound("relation '" + relation + "' in query lineage");
  }
  if (lineage->input(static_cast<size_t>(idx)).backward.empty()) {
    return Status::InvalidArgument(
        "backward lineage for '" + relation +
        "' was not captured (pruned or mode without indexes)");
  }
  for (rid_t o : out_rids) {
    if (o >= lineage->output_cardinality()) {
      return Status::InvalidArgument("output rid out of range");
    }
  }
  *rids = BackwardRids(*lineage, relation, out_rids, dedup);
  return Status::OK();
}

Status SmokeEngine::Forward(const std::string& query_name,
                            const std::string& relation,
                            const std::vector<rid_t>& in_rids,
                            std::vector<rid_t>* rids) const {
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  int idx = lineage->FindInput(relation);
  if (idx < 0) {
    return Status::NotFound("relation '" + relation + "' in query lineage");
  }
  const TableLineage& tl = lineage->input(static_cast<size_t>(idx));
  if (tl.forward.empty()) {
    return Status::InvalidArgument(
        "forward lineage for '" + relation + "' was not captured");
  }
  for (rid_t r : in_rids) {
    if (tl.table != nullptr && r >= tl.table->num_rows()) {
      return Status::InvalidArgument("input rid out of range");
    }
  }
  *rids = ForwardRids(*lineage, relation, in_rids);
  return Status::OK();
}

Status SmokeEngine::BackwardRows(const std::string& query_name,
                                 const std::string& relation,
                                 const std::vector<rid_t>& out_rids,
                                 Table* rows) const {
  std::vector<rid_t> rids;
  SMOKE_RETURN_NOT_OK(Backward(query_name, relation, out_rids, &rids));
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  int idx = lineage->FindInput(relation);
  const Table* table = lineage->input(static_cast<size_t>(idx)).table;
  if (table == nullptr) {
    return Status::InvalidArgument("relation table not available");
  }
  *rows = MaterializeRows(*table, rids);
  return Status::OK();
}

Status SmokeEngine::TraceAcross(const std::string& from_query,
                                const std::vector<rid_t>& out_rids,
                                const std::string& relation,
                                const std::string& to_query,
                                std::vector<rid_t>* linked) const {
  std::vector<rid_t> shared;
  SMOKE_RETURN_NOT_OK(
      Backward(from_query, relation, out_rids, &shared, /*dedup=*/true));
  return Forward(to_query, relation, shared, linked);
}

Status SmokeEngine::ExecuteConsuming(const std::string& result_name,
                                     const std::string& base_query,
                                     rid_t output_rid,
                                     const ConsumingSpec& spec) {
  // Default traced relation: the SPJA fact table, or a plan's first input.
  std::string relation;
  if (auto it = queries_.find(base_query); it != queries_.end()) {
    relation = it->second->query.fact_name;
  } else if (auto it = plans_.find(base_query); it != plans_.end()) {
    const QueryLineage& lin = it->second->result.lineage;
    if (lin.num_inputs() == 0) {
      return Status::InvalidArgument("plan query '" + base_query +
                                     "' has no captured lineage");
    }
    relation = lin.input(0).table_name;
  } else {
    return Status::NotFound("query '" + base_query + "'");
  }
  return ExecuteConsumingOn(result_name, base_query, relation, output_rid,
                            spec);
}

Status SmokeEngine::ExecuteConsumingOn(const std::string& result_name,
                                       const std::string& base_query,
                                       const std::string& relation,
                                       rid_t output_rid,
                                       const ConsumingSpec& spec) {
  if (IsRetainedName(result_name)) {
    return Status::AlreadyExists("result '" + result_name + "'");
  }
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(base_query, &lineage));
  if (output_rid >= lineage->output_cardinality()) {
    return Status::InvalidArgument("output rid out of range");
  }
  int idx = lineage->FindInput(relation);
  if (idx < 0) {
    return Status::NotFound("relation '" + relation + "' in query lineage");
  }
  const TableLineage& tl = lineage->input(static_cast<size_t>(idx));
  if (tl.backward.empty()) {
    return Status::InvalidArgument(
        "base query has no backward index for '" + relation +
        "' (pruned or skip-partitioned)");
  }
  if (tl.table == nullptr) {
    return Status::InvalidArgument("relation table not available");
  }

  auto retained = std::make_unique<RetainedConsuming>();
  retained->fact = tl.table;
  if (tl.backward.kind() == LineageIndex::Kind::kIndex) {
    retained->result = ConsumingOverRids(
        *tl.table, spec, tl.backward.index().list(output_rid));
  } else {
    std::vector<rid_t> rids;
    tl.backward.TraceInto(output_rid, &rids);
    retained->result = ConsumingOverRids(*tl.table, spec, rids);
  }
  consuming_[result_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::ExecuteConsumingChained(const std::string& result_name,
                                            const std::string& base_consuming,
                                            rid_t output_rid,
                                            const ConsumingSpec& spec) {
  if (IsRetainedName(result_name)) {
    return Status::AlreadyExists("result '" + result_name + "'");
  }
  auto it = consuming_.find(base_consuming);
  if (it == consuming_.end()) {
    return Status::NotFound("consuming result '" + base_consuming + "'");
  }
  if (output_rid >= it->second->result.backward.size()) {
    return Status::InvalidArgument("output rid out of range");
  }
  const RidVec& rids = it->second->result.backward.list(output_rid);
  auto retained = std::make_unique<RetainedConsuming>();
  retained->fact = it->second->fact;
  retained->result = ConsumingOverRids(*it->second->fact, spec, rids);
  consuming_[result_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::GetConsumingResult(const std::string& result_name,
                                       const Table** out) const {
  auto it = consuming_.find(result_name);
  if (it == consuming_.end()) {
    return Status::NotFound("consuming result '" + result_name + "'");
  }
  *out = &it->second->result.output;
  return Status::OK();
}

Status SmokeEngine::DropResult(const std::string& query_name) {
  if (queries_.erase(query_name) > 0) return Status::OK();
  if (plans_.erase(query_name) > 0) return Status::OK();
  if (consuming_.erase(query_name) > 0) return Status::OK();
  return Status::NotFound("query '" + query_name + "'");
}

std::vector<std::string> SmokeEngine::QueryNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : queries_) names.push_back(k);
  for (const auto& [k, v] : plans_) names.push_back(k);
  for (const auto& [k, v] : consuming_) names.push_back(k);
  return names;
}

}  // namespace smoke
