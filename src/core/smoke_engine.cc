#include "core/smoke_engine.h"

#include "optimizer/cost.h"
#include "query/lazy.h"
#include "query/lineage_query.h"

namespace smoke {

namespace {

/// Tracked bytes of a retained SPJA query: the composed indexes plus the
/// partitioned skip index — under skip push-down the latter *replaces* the
/// plain fact backward index and is where the dominant lineage lives.
size_t SpjaLineageBytes(const SPJAResult& result) {
  return result.lineage.MemoryBytes() + result.skip_index.MemoryBytes();
}

size_t PlanLineageBytes(const PlanResult& result) {
  size_t b = result.lineage.MemoryBytes();
  if (result.spja_artifacts != nullptr) {
    b += result.spja_artifacts->skip_index.MemoryBytes();
  }
  return b;
}

}  // namespace

Status SmokeEngine::CreateTable(const std::string& name, Table table) {
  return catalog_.AddTable(name, std::move(table));
}

Status SmokeEngine::GetTable(const std::string& name,
                             const Table** out) const {
  return catalog_.GetTable(name, out);
}

Status SmokeEngine::ReplaceTable(const std::string& name, Table table) {
  const Table* existing = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetTable(name, &existing));
  if (const std::string borrower = BorrowerOf(existing); !borrower.empty()) {
    return Status::InvalidArgument(
        "table '" + name + "' is borrowed by retained result '" + borrower +
        "'; drop it (and any other dependents) before replacing the table, "
        "or serve versioned replacements through ServeCore");
  }
  SMOKE_RETURN_NOT_OK(catalog_.ReplaceTable(name, std::move(table)));
  // Re-slice a sharded table under its existing spec (the catalog replace
  // is pointer-stable, so the new rows are already visible through base()).
  if (auto it = sharded_.find(name); it != sharded_.end()) {
    const ShardingSpec spec = it->second->spec();
    auto st = std::make_unique<ShardedTable>();
    if (Status s = ShardedTable::Create(existing, spec, st.get()); !s.ok()) {
      // The new contents cannot carry the old spec (column gone or
      // retyped): drop the sharding rather than keep stale slices.
      sharded_.erase(it);
      return Status::InvalidArgument(
          "table '" + name + "' replaced, but its sharding was dropped: " +
          s.message());
    }
    it->second = std::move(st);
  }
  return Status::OK();
}

Status SmokeEngine::DropTable(const std::string& name) {
  const Table* existing = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetTable(name, &existing));
  if (const std::string borrower = BorrowerOf(existing); !borrower.empty()) {
    return Status::InvalidArgument(
        "table '" + name + "' is borrowed by retained result '" + borrower +
        "'; drop it (and any other dependents) before dropping the table");
  }
  SMOKE_RETURN_NOT_OK(catalog_.DropTable(name));
  sharded_.erase(name);
  return Status::OK();
}

Status SmokeEngine::ShardTable(const std::string& name,
                               const ShardingSpec& spec) {
  const Table* base = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetTable(name, &base));
  if (auto it = sharded_.find(name); it != sharded_.end()) {
    if (const std::string b = ShardBorrowerOf(it->second.get()); !b.empty()) {
      return Status::InvalidArgument(
          "table '" + name + "' cannot be re-sharded: retained result '" + b +
          "' holds shard fan-out state over its current ShardMap; drop the "
          "result first");
    }
  }
  auto st = std::make_unique<ShardedTable>();
  SMOKE_RETURN_NOT_OK(ShardedTable::Create(base, spec, st.get()));
  sharded_[name] = std::move(st);
  return Status::OK();
}

Status SmokeEngine::UnshardTable(const std::string& name) {
  auto it = sharded_.find(name);
  if (it == sharded_.end()) {
    return Status::NotFound("sharded table '" + name + "'");
  }
  if (const std::string b = ShardBorrowerOf(it->second.get()); !b.empty()) {
    return Status::InvalidArgument(
        "table '" + name + "' cannot be unsharded: retained result '" + b +
        "' holds shard fan-out state over its ShardMap; drop the result "
        "first");
  }
  sharded_.erase(it);
  return Status::OK();
}

Status SmokeEngine::AppendRows(const std::string& name, const Table& rows,
                               std::vector<RefreshStats>* stats) {
  Table* dst = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetMutableTable(name, &dst));
  if (sharded_.count(name) != 0) {
    return Status::FailedPrecondition(
        "table '" + name + "' is sharded; appending would desync the shard "
        "slices — unshard first, or re-shard after a bulk replace");
  }
  if (rows.num_columns() != dst->num_columns()) {
    return Status::InvalidArgument("AppendRows('" + name +
                                   "'): column count mismatch");
  }

  // Every borrower must be incrementally maintainable before any row lands:
  // refusal here is atomic (the table is untouched). Appends never dangle
  // retained rids — the hazard is retained results going stale — so, unlike
  // ReplaceTable, borrowing is allowed when the borrower can be maintained.
  for (const auto& [qname, rq] : queries_) {
    const QueryLineage& lin = rq->result.lineage;
    bool borrows = rq->fact == dst || rq->query.fact == dst;
    for (const SPJADim& d : rq->query.dims) borrows |= d.table == dst;
    for (size_t i = 0; !borrows && i < lin.num_inputs(); ++i) {
      borrows = lin.input(i).table == dst;
    }
    if (borrows) {
      return Status::FailedPrecondition(
          "table '" + name + "' is borrowed by retained SPJA query '" +
          qname + "', which cannot be incrementally maintained; drop it or "
          "re-issue it as a plan with retain_refresh_state");
    }
  }
  std::vector<std::string> views;
  for (const auto& [qname, rp] : plans_) {
    const QueryLineage& lin = rp->result.lineage;
    bool borrows = false;
    for (size_t i = 0; !borrows && i < lin.num_inputs(); ++i) {
      borrows = lin.input(i).table == dst;
    }
    if (!borrows) continue;
    if (rp->shard != nullptr) {
      return Status::FailedPrecondition(
          "table '" + name + "' is borrowed by sharded retained plan '" +
          qname + "'; sharded results cannot be refreshed in place — drop "
          "it or route appends through re-execution");
    }
    if (rp->result.refresh == nullptr) {
      return Status::FailedPrecondition(
          "table '" + name + "' is borrowed by retained result '" + qname +
          "', which was executed without retain_refresh_state and cannot be "
          "maintained; drop it or re-execute with refresh state retained");
    }
    if (rp->result.HasDeferred()) {
      return Status::FailedPrecondition(
          "table '" + name + "' is borrowed by retained plan '" + qname +
          "' with pending deferred capture; FinalizePlan it first");
    }
    views.push_back(qname);
  }

  for (size_t r = 0; r < rows.num_rows(); ++r) {
    dst->AppendRowFrom(rows, static_cast<rid_t>(r));
  }

  for (const std::string& qname : views) {
    RetainedPlan& rp = *plans_[qname];
    RefreshStats s;
    SMOKE_RETURN_NOT_OK(RefreshPlanAppend(&rp.result, &s));
    if (!s.incremental) {
      // Scoped rebuild fallback (dim-side append, non-refreshable shape).
      std::string reason = std::move(s.fallback_reason);
      SMOKE_RETURN_NOT_OK(RebuildRetainedPlan(&rp.result));
      if (rp.codec != LineageCodec::kRaw) {
        EncodeQueryLineage(&rp.result.lineage, rp.codec);
        if (rp.result.spja_artifacts != nullptr) {
          rp.result.spja_artifacts->skip_index.Freeze(rp.codec);
        }
      }
      s = RefreshStats{};
      s.table = name;
      s.delta_rows = rows.num_rows();
      s.fallback_reason = std::move(reason);
      s.output_rows_appended = rp.result.output.num_rows();
    }
    s.target = qname;
    tracker_.Update(qname, PlanLineageBytes(rp.result), rp.codec);
    if (stats != nullptr) stats->push_back(std::move(s));
  }
  EnforceBudget();
  return Status::OK();
}

Status SmokeEngine::AdoptRetainedPlan(const std::string& query_name,
                                      PlanResult result, LineageCodec codec) {
  if (IsRetainedName(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (result.HasDeferred()) {
    return Status::InvalidArgument(
        "cannot adopt a result with pending deferred capture");
  }
  auto retained = std::make_unique<RetainedPlan>();
  retained->result = std::move(result);
  retained->codec = codec;
  RetainedPlan& rp = *retained;
  plans_[query_name] = std::move(retained);
  tracker_.Register(query_name, PlanLineageBytes(rp.result), codec);
  EnforceBudget();
  return Status::OK();
}

std::string SmokeEngine::ShardBorrowerOf(const ShardedTable* st) const {
  for (const auto& [name, rp] : plans_) {
    if (rp->shard != nullptr && rp->shard->map == &st->map()) return name;
  }
  return std::string();
}

bool SmokeEngine::TableInUse(const Table* table) const {
  return !BorrowerOf(table).empty();
}

std::string SmokeEngine::BorrowerOf(const Table* table) const {
  for (const auto& [name, rq] : queries_) {
    if (rq->fact == table || rq->query.fact == table) return name;
    for (const SPJADim& d : rq->query.dims) {
      if (d.table == table) return name;
    }
    const QueryLineage& lin = rq->result.lineage;
    for (size_t i = 0; i < lin.num_inputs(); ++i) {
      if (lin.input(i).table == table) return name;
    }
  }
  for (const auto& [name, rp] : plans_) {
    const QueryLineage& lin = rp->result.lineage;
    for (size_t i = 0; i < lin.num_inputs(); ++i) {
      if (lin.input(i).table == table) return name;
    }
  }
  return std::string();
}

bool SmokeEngine::IsRetainedName(const std::string& name) const {
  return queries_.count(name) > 0 || plans_.count(name) > 0;
}

Status SmokeEngine::ExecuteQuery(const std::string& query_name,
                                 const SPJAQuery& query, CaptureMode mode,
                                 const Workload* workload) {
  return ExecuteQuery(query_name, query, CaptureOptions::Mode(mode),
                      workload);
}

Status SmokeEngine::ExecuteQuery(const std::string& query_name,
                                 const SPJAQuery& query,
                                 const CaptureOptions& options,
                                 const Workload* workload) {
  if (IsRetainedName(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (query.fact == nullptr) {
    return Status::InvalidArgument("query has no fact table");
  }
  if (options.mode == CaptureMode::kPhysMem ||
      options.mode == CaptureMode::kPhysBdb) {
    return Status::Unsupported(
        "physical baselines are exercised per-operator, not via the engine "
        "facade");
  }

  CaptureOptions opts = options;
  const SPJAPushdown* push = nullptr;
  if (workload != nullptr) {
    opts.only_relations = workload->traced_relations;
    opts.capture_backward = workload->needs_backward;
    opts.capture_forward = workload->needs_forward;
    if (!workload->pushdown.empty()) push = &workload->pushdown;
  }

  auto retained = std::make_unique<RetainedQuery>();
  retained->query = query;
  retained->fact = query.fact;
  retained->result = SPJAExec(query, opts, push);
  queries_[query_name] = std::move(retained);
  FinishRetention(query_name, opts);
  return Status::OK();
}

Status SmokeEngine::ExecutePlan(const std::string& query_name,
                                const LogicalPlan& plan, CaptureMode mode,
                                const Workload* workload) {
  return ExecutePlan(query_name, plan, CaptureOptions::Mode(mode), workload);
}

Status SmokeEngine::ExecutePlan(const std::string& query_name,
                                const LogicalPlan& plan,
                                const CaptureOptions& options,
                                const Workload* workload) {
  if (IsRetainedName(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (options.mode == CaptureMode::kPhysMem ||
      options.mode == CaptureMode::kPhysBdb) {
    return Status::Unsupported(
        "physical baselines are exercised per-operator, not via the engine "
        "facade");
  }

  CaptureOptions opts = options;
  if (workload != nullptr) {
    if (!workload->pushdown.empty()) {
      return Status::InvalidArgument(
          "workload push-downs do not apply to plan queries; attach them to "
          "the plan's SpjaBlock node instead");
    }
    opts.only_relations = workload->traced_relations;
    opts.capture_backward = workload->needs_backward;
    opts.capture_forward = workload->needs_forward;
  }

  auto retained = std::make_unique<RetainedPlan>();
  if (sharded_.empty()) {
    SMOKE_RETURN_NOT_OK(smoke::ExecutePlan(plan, opts, &retained->result));
  } else {
    // Route through the sharded coordinator; plans that scan no sharded
    // table fall through to the unsharded executor inside.
    ShardResolver resolver;
    for (const auto& [tname, st] : sharded_) resolver[st->base()] = st.get();
    ShardedPlanResult sp;
    SMOKE_RETURN_NOT_OK(ExecuteShardedPlan(plan, resolver, opts, &sp));
    retained->result = std::move(sp.plan);
    retained->shard = std::move(sp.shard);
  }
  plans_[query_name] = std::move(retained);
  FinishRetention(query_name, opts);
  return Status::OK();
}

Status SmokeEngine::FinalizePlan(const std::string& query_name) {
  auto it = plans_.find(query_name);
  if (it == plans_.end()) {
    return Status::NotFound("plan query '" + query_name + "'");
  }
  RetainedPlan& rp = *it->second;
  const bool was_deferred = rp.result.HasDeferred();
  SMOKE_RETURN_NOT_OK(rp.result.FinalizeDeferred());
  if (was_deferred) {
    // Capture finalize is the store's encode point: the freshly composed
    // indexes are re-encoded under the retention codec and accounted.
    if (rp.codec != LineageCodec::kRaw) {
      EncodeQueryLineage(&rp.result.lineage, rp.codec);
      if (rp.result.spja_artifacts != nullptr) {
        rp.result.spja_artifacts->skip_index.Freeze(rp.codec);
      }
    }
    tracker_.Update(query_name, PlanLineageBytes(rp.result), rp.codec);
    EnforceBudget();
  }
  return Status::OK();
}

Status SmokeEngine::GetResult(const std::string& query_name,
                              const Table** out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = &it->second->result.output;
    return Status::OK();
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    *out = &it->second->result.output;
    return Status::OK();
  }
  return Status::NotFound("query '" + query_name + "'");
}

Status SmokeEngine::GetResultObject(const std::string& query_name,
                                    const SPJAResult** out) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + query_name + "'");
  }
  *out = &it->second->result;
  return Status::OK();
}

Status SmokeEngine::GetPlanResult(const std::string& query_name,
                                  const PlanResult** out) const {
  auto it = plans_.find(query_name);
  if (it == plans_.end()) {
    return Status::NotFound("plan query '" + query_name + "'");
  }
  *out = &it->second->result;
  return Status::OK();
}

Status SmokeEngine::FindLineage(const std::string& query_name,
                                const QueryLineage** out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = &it->second->result.lineage;
    tracker_.Touch(query_name);
    return Status::OK();
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    *out = &it->second->result.lineage;
    tracker_.Touch(query_name);
    return Status::OK();
  }
  return Status::NotFound("query '" + query_name + "'");
}

// ---- lineage queries: typed handles ----

namespace {

/// Splits an executed trace plan into the typed handle: the trailing
/// kTraceRidColumn becomes `rids`, the remaining columns become `rows`, and
/// the PlanResult itself is kept for chaining.
Status SplitTraceOutput(PlanResult&& pr, TraceResult* out) {
  SMOKE_RETURN_NOT_OK(SplitTraceRows(pr.output, &out->rids, &out->rows));
  out->plan = std::move(pr);
  return Status::OK();
}

}  // namespace

Status SmokeEngine::MakeTraceSource(const std::string& query_name,
                                    TraceSource* out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = TraceSource::FromSpja(it->second->query, it->second->result,
                                 query_name);
  } else if (auto pit = plans_.find(query_name); pit != plans_.end()) {
    *out = TraceSource::FromPlan(pit->second->result, query_name);
  } else {
    return Status::NotFound("query '" + query_name + "'");
  }
  // Feed the store-level statistics to the trace cost model
  // (optimizer/cost.h) before bumping the LRU clock.
  LineageMemoryTracker::Entry entry;
  if (tracker_.Lookup(query_name, &entry)) {
    out->stats.valid = true;
    out->stats.store_bytes = entry.bytes;
    out->stats.codec = entry.codec;
    out->stats.evicted = entry.evicted;
  }
  tracker_.Touch(query_name);
  return Status::OK();
}

Status SmokeEngine::TraceBackward(const std::string& query_name,
                                  const std::string& relation,
                                  const std::vector<rid_t>& out_rids,
                                  TraceResult* out, bool dedup) const {
  // Evicted-index fallback for multi-seed traces: the compiled lazy plan
  // handles exactly one seed, so loop the lazy rescan per seed (the same
  // path the string-keyed Backward takes) and synthesize the 1:1 lineage
  // the Trace operator would have produced — the handle stays chainable.
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    const RetainedQuery& rq = *it->second;
    const int li = rq.result.lineage.FindInput(relation);
    if (out_rids.size() != 1 && li >= 0 && rq.result.lineage.evicted() &&
        LazyFallbackAvailable(query_name)) {
      std::vector<rid_t> rids;
      SMOKE_RETURN_NOT_OK(
          Backward(query_name, relation, out_rids, &rids, dedup));
      const Table* fact = rq.query.fact;
      SMOKE_RETURN_NOT_OK(MaterializeRowsChecked(*fact, rids, &out->rows));
      out->rids = rids;
      PlanResult pr;
      pr.output = out->rows;
      pr.output_cardinality = rids.size();
      TableLineage& tl = pr.lineage.AddInput(relation, fact);
      tl.backward = LineageIndex::FromArray(RidArray(rids));
      RidIndex fw(fact->num_rows());
      for (size_t i = 0; i < rids.size(); ++i) {
        fw.Append(rids[i], static_cast<rid_t>(i));
      }
      tl.forward = LineageIndex::FromIndex(std::move(fw));
      pr.lineage.set_output_cardinality(rids.size());
      out->plan = std::move(pr);
      return Status::OK();
    }
  }
  TraceSource src;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(query_name, &src));
  LineageQuery q;
  SMOKE_RETURN_NOT_OK(TraceBuilder::Backward(std::move(src), relation, out_rids)
                          .Dedup(dedup)
                          .Compile(&q));
  PlanResult pr;
  SMOKE_RETURN_NOT_OK(q.Execute(CaptureOptions::Inject(), &pr));
  if (q.strategy() == TraceStrategy::kLazy) {
    // Lazy plans (the evicted-index fallback) scan the relation directly
    // and carry no rid column; the traced rids are the trace plan's own
    // composed 1:1 backward lineage from its selection.
    int idx = pr.lineage.FindInput(relation);
    if (idx < 0) {
      return Status::InvalidArgument("lazy trace captured no lineage for '" +
                                     relation + "'");
    }
    const LineageIndex& bw = pr.lineage.input(static_cast<size_t>(idx)).backward;
    if (!bw.IsOneToOne()) {
      return Status::InvalidArgument("lazy trace lineage is not 1:1");
    }
    const size_t n = pr.output.num_rows();
    out->rids.clear();
    out->rids.reserve(n);
    for (rid_t r = 0; r < n; ++r) out->rids.push_back(bw.ValueAt(r));
    out->rows = pr.output;
    out->plan = std::move(pr);
    return Status::OK();
  }
  return SplitTraceOutput(std::move(pr), out);
}

Status SmokeEngine::TraceForward(const std::string& query_name,
                                 const std::string& relation,
                                 const std::vector<rid_t>& in_rids,
                                 TraceResult* out) const {
  TraceSource src;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(query_name, &src));
  PlanResult pr;
  SMOKE_RETURN_NOT_OK(TraceBuilder::Forward(std::move(src), relation, in_rids)
                          .Execute(CaptureOptions::Inject(), &pr));
  return SplitTraceOutput(std::move(pr), out);
}

Status SmokeEngine::TraceLinked(const std::string& from_query,
                                const std::vector<rid_t>& out_rids,
                                const std::string& relation,
                                const std::string& to_query,
                                TraceResult* out) const {
  TraceSource from;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(from_query, &from));
  TraceSource to;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(to_query, &to));
  PlanResult pr;
  SMOKE_RETURN_NOT_OK(TraceBuilder::Backward(std::move(from), relation, out_rids)
                          .ThenForward(std::move(to))
                          .Execute(CaptureOptions::Inject(), &pr));
  return SplitTraceOutput(std::move(pr), out);
}

Status SmokeEngine::ExecuteTraceQuery(const std::string& result_name,
                                      const TraceBuilder& builder,
                                      const CaptureOptions& opts) {
  if (IsRetainedName(result_name)) {
    return Status::AlreadyExists("result '" + result_name + "'");
  }
  auto retained = std::make_unique<RetainedPlan>();
  SMOKE_RETURN_NOT_OK(builder.Execute(opts, &retained->result));
  plans_[result_name] = std::move(retained);
  FinishRetention(result_name, opts);
  return Status::OK();
}

// ---- lineage queries: string-keyed shims ----

Status SmokeEngine::Backward(const std::string& query_name,
                             const std::string& relation,
                             const std::vector<rid_t>& out_rids,
                             std::vector<rid_t>* rids, bool dedup) const {
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  const int i = lineage->FindInput(relation);
  if (i >= 0 && lineage->evicted() && LazyFallbackAvailable(query_name)) {
    // The index was evicted under the lineage budget: answer by lazy
    // rescan of the fact relation, seed by seed. (Pruned or push-down-
    // replaced indexes deliberately do NOT fall back — their capture
    // semantics restrict lineage on purpose, so a lazy answer would be
    // silently wrong; they keep returning the "not captured" error.)
    const RetainedQuery& rq = *queries_.at(query_name);
    std::vector<uint8_t> seen(dedup ? rq.query.fact->num_rows() : 0, 0);
    rids->clear();
    for (rid_t oid : out_rids) {
      if (oid >= rq.result.output.num_rows()) {
        return Status::InvalidArgument(
            "output rid " + std::to_string(oid) + " out of range [0, " +
            std::to_string(rq.result.output.num_rows()) + ")");
      }
      for (rid_t r : LazyBackwardRids(rq.query, rq.result.output, oid)) {
        if (dedup) {
          if (seen[r]) continue;
          seen[r] = 1;
        }
        rids->push_back(r);
      }
    }
    return Status::OK();
  }
  // Sharded retained plans: when the seed set is selective enough that the
  // shard fan-out beats a composed-index probe (optimizer/cost.h pricing),
  // answer by probing only the touched shards. Rids are identical either
  // way.
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    const RetainedPlan& rp = *it->second;
    if (rp.shard != nullptr && relation == rp.shard->driver_relation &&
        CostShardTrace(out_rids.size(), rp.shard->num_shards(),
                       rp.result.output.num_rows())
            .use_fan_out) {
      return rp.shard->TraceBackward(out_rids, dedup, rids, nullptr);
    }
  }
  return BackwardRidsChecked(*lineage, relation, out_rids, dedup, rids);
}

Status SmokeEngine::BackwardSharded(const std::string& query_name,
                                    const std::string& relation,
                                    const std::vector<rid_t>& out_rids,
                                    std::vector<rid_t>* rids,
                                    ShardTraceStats* stats,
                                    bool dedup) const {
  auto it = plans_.find(query_name);
  if (it == plans_.end()) {
    return Status::NotFound("plan query '" + query_name + "'");
  }
  const RetainedPlan& rp = *it->second;
  if (rp.shard == nullptr) {
    return Status::InvalidArgument(
        "query '" + query_name +
        "' has no shard fan-out state (plan touched no sharded table, or "
        "backward capture was off)");
  }
  if (relation != rp.shard->driver_relation) {
    return Status::InvalidArgument(
        "shard fan-out applies to the sharded driver relation '" +
        rp.shard->driver_relation + "' only; trace '" + relation +
        "' through Backward");
  }
  tracker_.Touch(query_name);
  return rp.shard->TraceBackward(out_rids, dedup, rids, stats);
}

Status SmokeEngine::Forward(const std::string& query_name,
                            const std::string& relation,
                            const std::vector<rid_t>& in_rids,
                            std::vector<rid_t>* rids) const {
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  return ForwardRidsChecked(*lineage, relation, in_rids, /*dedup=*/true, rids);
}

Status SmokeEngine::BackwardRows(const std::string& query_name,
                                 const std::string& relation,
                                 const std::vector<rid_t>& out_rids,
                                 Table* rows) const {
  std::vector<rid_t> rids;
  SMOKE_RETURN_NOT_OK(Backward(query_name, relation, out_rids, &rids));
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  int idx = lineage->FindInput(relation);
  const Table* table = lineage->input(static_cast<size_t>(idx)).table;
  if (table == nullptr) {
    return Status::InvalidArgument("relation table not available");
  }
  return MaterializeRowsChecked(*table, rids, rows);
}

Status SmokeEngine::TraceAcross(const std::string& from_query,
                                const std::vector<rid_t>& out_rids,
                                const std::string& relation,
                                const std::string& to_query,
                                std::vector<rid_t>* linked) const {
  std::vector<rid_t> shared;
  SMOKE_RETURN_NOT_OK(
      Backward(from_query, relation, out_rids, &shared, /*dedup=*/true));
  return Forward(to_query, relation, shared, linked);
}

#ifdef SMOKE_ENABLE_DEPRECATED_CONSUMING
Status SmokeEngine::ExecuteConsuming(const std::string& result_name,
                                     const std::string& base_query,
                                     rid_t output_rid,
                                     const ConsumingSpec& spec) {
  // Default traced relation: the SPJA fact table, or a plan's first input.
  std::string relation;
  if (auto it = queries_.find(base_query); it != queries_.end()) {
    relation = it->second->query.fact_name;
  } else if (auto it = plans_.find(base_query); it != plans_.end()) {
    const QueryLineage& lin = it->second->result.lineage;
    if (lin.num_inputs() == 0) {
      return Status::InvalidArgument("plan query '" + base_query +
                                     "' has no captured lineage");
    }
    relation = lin.input(0).table_name;
  } else {
    return Status::NotFound("query '" + base_query + "'");
  }
  return ExecuteConsumingOn(result_name, base_query, relation, output_rid,
                            spec);
}

Status SmokeEngine::ExecuteConsumingOn(const std::string& result_name,
                                       const std::string& base_query,
                                       const std::string& relation,
                                       rid_t output_rid,
                                       const ConsumingSpec& spec) {
  // Shim over the unified path: compile the spec into a Trace → Select →
  // Derive → GroupBy plan (strategy resolved against the base query's
  // capture artifacts) and retain the PlanResult. The result's composed
  // lineage maps its outputs back to `relation`, which is what makes
  // ExecuteConsumingChained just another consuming query.
  TraceSource src;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(base_query, &src));
  TraceBuilder builder =
      TraceBuilder::Backward(std::move(src), relation, {output_rid});
  builder.Consuming(spec);
  return ExecuteTraceQuery(result_name, builder, CaptureOptions::Inject());
}

Status SmokeEngine::ExecuteConsumingChained(const std::string& result_name,
                                            const std::string& base_consuming,
                                            rid_t output_rid,
                                            const ConsumingSpec& spec) {
  auto it = plans_.find(base_consuming);
  if (it == plans_.end()) {
    return Status::NotFound("consuming result '" + base_consuming + "'");
  }
  const QueryLineage& lin = it->second->result.lineage;
  if (lin.num_inputs() == 0) {
    return Status::InvalidArgument("consuming result '" + base_consuming +
                                   "' has no captured lineage");
  }
  return ExecuteConsumingOn(result_name, base_consuming,
                            lin.input(0).table_name, output_rid, spec);
}

Status SmokeEngine::GetConsumingResult(const std::string& result_name,
                                       const Table** out) const {
  auto it = plans_.find(result_name);
  if (it == plans_.end()) {
    return Status::NotFound("consuming result '" + result_name + "'");
  }
  *out = &it->second->result.output;
  return Status::OK();
}
#endif  // SMOKE_ENABLE_DEPRECATED_CONSUMING

Status SmokeEngine::DropResult(const std::string& query_name) {
  const Table* output = nullptr;
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    output = &it->second->result.output;
  } else if (auto it = plans_.find(query_name); it != plans_.end()) {
    output = &it->second->result.output;
  } else {
    return Status::NotFound("query '" + query_name + "'");
  }
  // A retained forward trace (or chained hop) borrows the traced query's
  // output rows through its lineage; dropping the query under it would
  // dangle those pointers — same hazard DropTable guards against.
  if (const std::string borrower = BorrowerOf(output); !borrower.empty()) {
    return Status::InvalidArgument("result '" + query_name +
                                   "' is borrowed by retained result '" +
                                   borrower + "'s lineage; drop '" + borrower +
                                   "' first");
  }
  if (queries_.erase(query_name) == 0) plans_.erase(query_name);
  tracker_.Release(query_name);
  return Status::OK();
}

std::vector<std::string> SmokeEngine::QueryNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : queries_) names.push_back(k);
  for (const auto& [k, v] : plans_) names.push_back(k);
  return names;
}

// ---- lineage store: accounting, budget enforcement, eviction ----

LineageStoreStats SmokeEngine::LineageMemoryStats() const {
  return tracker_.Stats();
}

void SmokeEngine::SetLineageBudget(size_t bytes) {
  tracker_.SetBudget(bytes);
  EnforceBudget();
}

void SmokeEngine::FinishRetention(const std::string& query_name,
                                  const CaptureOptions& opts) {
  if (opts.lineage_budget_bytes > 0) {
    tracker_.SetBudget(opts.lineage_budget_bytes);
  }
  const LineageCodec codec = opts.lineage_codec;
  size_t bytes = 0;
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    RetainedQuery& rq = *it->second;
    if (codec != LineageCodec::kRaw) {
      EncodeQueryLineage(&rq.result.lineage, codec);
      rq.result.skip_index.Freeze(codec);
    }
    rq.codec = codec;
    bytes = SpjaLineageBytes(rq.result);
  } else if (auto it2 = plans_.find(query_name); it2 != plans_.end()) {
    RetainedPlan& rp = *it2->second;
    rp.codec = codec;
    // Deferred plans have no composed lineage yet; FinalizePlan encodes and
    // re-accounts at think-time.
    if (!rp.result.HasDeferred() && codec != LineageCodec::kRaw) {
      EncodeQueryLineage(&rp.result.lineage, codec);
      if (rp.result.spja_artifacts != nullptr) {
        rp.result.spja_artifacts->skip_index.Freeze(codec);
      }
    }
    // Plans retained with refresh state are analyzed eagerly (after the
    // store encode, so the watermarks see the final indexes): AppendRows
    // and the serving layer then make refresh-vs-rebuild decisions without
    // re-walking the plan, and refreshable() is meaningful immediately.
    if (rp.result.refresh != nullptr && !rp.result.HasDeferred()) {
      AnalyzeRefreshability(&rp.result).IgnoreError();
    }
    bytes = PlanLineageBytes(rp.result);
  } else {
    return;
  }
  tracker_.Register(query_name, bytes, codec);
  EnforceBudget();
}

void SmokeEngine::ReencodeRetained(const std::string& query_name,
                                   LineageCodec codec) {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    RetainedQuery& rq = *it->second;
    EncodeQueryLineage(&rq.result.lineage, codec);
    rq.result.skip_index.Freeze(codec);
    rq.codec = codec;
    tracker_.Update(query_name, SpjaLineageBytes(rq.result), codec);
    return;
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    RetainedPlan& rp = *it->second;
    rp.codec = codec;
    if (!rp.result.HasDeferred()) {
      EncodeQueryLineage(&rp.result.lineage, codec);
      if (rp.result.spja_artifacts != nullptr) {
        rp.result.spja_artifacts->skip_index.Freeze(codec);
      }
    }
    tracker_.Update(query_name, PlanLineageBytes(rp.result), codec);
    return;
  }
  tracker_.Release(query_name);  // stale entry — should not happen
}

void SmokeEngine::EvictRetained(const std::string& query_name) {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) return;
  RetainedQuery& rq = *it->second;
  EvictQueryLineage(&rq.result.lineage);
  rq.result.skip_index = PartitionedRidIndex();
  // The dictionary stays (it is query metadata, not lineage), but strategy
  // resolution checks the skip *index* presence, so kAuto falls through to
  // the lazy rescan rather than probing the dropped partitions.
  tracker_.MarkEvicted(query_name, SpjaLineageBytes(rq.result));
}

bool SmokeEngine::LazyFallbackAvailable(const std::string& query_name) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) return false;
  return LazyRewriteAvailable(it->second->query);
}

void SmokeEngine::EnforceBudget() {
  const size_t budget = tracker_.budget();
  if (budget == 0) return;
  // Stage 1: re-encode the coldest indexes under the adaptive codec — the
  // cheap recovery that keeps indexed traces working.
  while (tracker_.total_bytes() > budget) {
    std::string victim;
    if (!tracker_.Coldest(
            [](const std::string&, const LineageMemoryTracker::Entry& e) {
              return !e.evicted && e.codec != LineageCodec::kAdaptive;
            },
            &victim)) {
      break;
    }
    ReencodeRetained(victim, LineageCodec::kAdaptive);
  }
  // Stage 2: evict the coldest queries whose traces can fall back to the
  // lazy rescan. Queries without a lazy rewrite are never evicted (the
  // budget is best-effort for them — dropping their indexes would lose
  // lineage, not degrade it).
  while (tracker_.total_bytes() > budget) {
    std::string victim;
    if (!tracker_.Coldest(
            [this](const std::string& name,
                   const LineageMemoryTracker::Entry& e) {
              return !e.evicted && LazyFallbackAvailable(name);
            },
            &victim)) {
      break;
    }
    EvictRetained(victim);
  }
}

}  // namespace smoke
