#include "core/smoke_engine.h"

#include "query/lineage_query.h"

namespace smoke {

Status SmokeEngine::CreateTable(const std::string& name, Table table) {
  return catalog_.AddTable(name, std::move(table));
}

Status SmokeEngine::GetTable(const std::string& name,
                             const Table** out) const {
  return catalog_.GetTable(name, out);
}

Status SmokeEngine::ExecuteQuery(const std::string& query_name,
                                 const SPJAQuery& query, CaptureMode mode,
                                 const Workload* workload) {
  if (queries_.count(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (query.fact == nullptr) {
    return Status::InvalidArgument("query has no fact table");
  }
  if (mode == CaptureMode::kPhysMem || mode == CaptureMode::kPhysBdb) {
    return Status::Unsupported(
        "physical baselines are exercised per-operator, not via the engine "
        "facade");
  }

  CaptureOptions opts = CaptureOptions::Mode(mode);
  const SPJAPushdown* push = nullptr;
  if (workload != nullptr) {
    opts.only_relations = workload->traced_relations;
    opts.capture_backward = workload->needs_backward;
    opts.capture_forward = workload->needs_forward;
    if (!workload->pushdown.empty()) push = &workload->pushdown;
  }

  auto retained = std::make_unique<RetainedQuery>();
  retained->query = query;
  retained->fact = query.fact;
  retained->result = SPJAExec(query, opts, push);
  if (mode == CaptureMode::kDefer) {
    // The facade finalizes eagerly; callers wanting think-time scheduling
    // use SPJAExec directly. (SPJA Defer finalizes inside SPJAExec.)
  }
  queries_[query_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::GetResult(const std::string& query_name,
                              const Table** out) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + query_name + "'");
  }
  *out = &it->second->result.output;
  return Status::OK();
}

Status SmokeEngine::GetResultObject(const std::string& query_name,
                                    const SPJAResult** out) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + query_name + "'");
  }
  *out = &it->second->result;
  return Status::OK();
}

Status SmokeEngine::Backward(const std::string& query_name,
                             const std::string& relation,
                             const std::vector<rid_t>& out_rids,
                             std::vector<rid_t>* rids, bool dedup) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + query_name + "'");
  }
  const QueryLineage& lineage = it->second->result.lineage;
  int idx = lineage.FindInput(relation);
  if (idx < 0) {
    return Status::NotFound("relation '" + relation + "' in query lineage");
  }
  if (lineage.input(static_cast<size_t>(idx)).backward.empty()) {
    return Status::InvalidArgument(
        "backward lineage for '" + relation +
        "' was not captured (pruned or mode without indexes)");
  }
  for (rid_t o : out_rids) {
    if (o >= lineage.output_cardinality()) {
      return Status::InvalidArgument("output rid out of range");
    }
  }
  *rids = BackwardRids(lineage, relation, out_rids, dedup);
  return Status::OK();
}

Status SmokeEngine::Forward(const std::string& query_name,
                            const std::string& relation,
                            const std::vector<rid_t>& in_rids,
                            std::vector<rid_t>* rids) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + query_name + "'");
  }
  const QueryLineage& lineage = it->second->result.lineage;
  int idx = lineage.FindInput(relation);
  if (idx < 0) {
    return Status::NotFound("relation '" + relation + "' in query lineage");
  }
  const TableLineage& tl = lineage.input(static_cast<size_t>(idx));
  if (tl.forward.empty()) {
    return Status::InvalidArgument(
        "forward lineage for '" + relation + "' was not captured");
  }
  for (rid_t r : in_rids) {
    if (tl.table != nullptr && r >= tl.table->num_rows()) {
      return Status::InvalidArgument("input rid out of range");
    }
  }
  *rids = ForwardRids(lineage, relation, in_rids);
  return Status::OK();
}

Status SmokeEngine::BackwardRows(const std::string& query_name,
                                 const std::string& relation,
                                 const std::vector<rid_t>& out_rids,
                                 Table* rows) const {
  std::vector<rid_t> rids;
  SMOKE_RETURN_NOT_OK(Backward(query_name, relation, out_rids, &rids));
  auto it = queries_.find(query_name);
  const QueryLineage& lineage = it->second->result.lineage;
  int idx = lineage.FindInput(relation);
  const Table* table = lineage.input(static_cast<size_t>(idx)).table;
  if (table == nullptr) {
    return Status::InvalidArgument("relation table not available");
  }
  *rows = MaterializeRows(*table, rids);
  return Status::OK();
}

Status SmokeEngine::TraceAcross(const std::string& from_query,
                                const std::vector<rid_t>& out_rids,
                                const std::string& relation,
                                const std::string& to_query,
                                std::vector<rid_t>* linked) const {
  std::vector<rid_t> shared;
  SMOKE_RETURN_NOT_OK(
      Backward(from_query, relation, out_rids, &shared, /*dedup=*/true));
  return Forward(to_query, relation, shared, linked);
}

Status SmokeEngine::ExecuteConsuming(const std::string& result_name,
                                     const std::string& base_query,
                                     rid_t output_rid,
                                     const ConsumingSpec& spec) {
  if (consuming_.count(result_name)) {
    return Status::AlreadyExists("result '" + result_name + "'");
  }
  auto it = queries_.find(base_query);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + base_query + "'");
  }
  const SPJAResult& base = it->second->result;
  const QueryLineage& lineage = base.lineage;
  if (output_rid >= base.output_cardinality) {
    return Status::InvalidArgument("output rid out of range");
  }
  int idx = lineage.FindInput(it->second->query.fact_name);
  if (idx < 0 || lineage.input(static_cast<size_t>(idx)).backward.kind() !=
                     LineageIndex::Kind::kIndex) {
    return Status::InvalidArgument(
        "base query has no fact backward index (pruned or skip-partitioned)");
  }
  const RidVec& rids =
      lineage.input(static_cast<size_t>(idx)).backward.index().list(output_rid);
  auto retained = std::make_unique<RetainedConsuming>();
  retained->fact = it->second->fact;
  retained->result = ConsumingOverRids(*it->second->fact, spec, rids);
  consuming_[result_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::ExecuteConsumingChained(const std::string& result_name,
                                            const std::string& base_consuming,
                                            rid_t output_rid,
                                            const ConsumingSpec& spec) {
  if (consuming_.count(result_name)) {
    return Status::AlreadyExists("result '" + result_name + "'");
  }
  auto it = consuming_.find(base_consuming);
  if (it == consuming_.end()) {
    return Status::NotFound("consuming result '" + base_consuming + "'");
  }
  if (output_rid >= it->second->result.backward.size()) {
    return Status::InvalidArgument("output rid out of range");
  }
  const RidVec& rids = it->second->result.backward.list(output_rid);
  auto retained = std::make_unique<RetainedConsuming>();
  retained->fact = it->second->fact;
  retained->result = ConsumingOverRids(*it->second->fact, spec, rids);
  consuming_[result_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::GetConsumingResult(const std::string& result_name,
                                       const Table** out) const {
  auto it = consuming_.find(result_name);
  if (it == consuming_.end()) {
    return Status::NotFound("consuming result '" + result_name + "'");
  }
  *out = &it->second->result.output;
  return Status::OK();
}

Status SmokeEngine::DropResult(const std::string& query_name) {
  if (queries_.erase(query_name) > 0) return Status::OK();
  if (consuming_.erase(query_name) > 0) return Status::OK();
  return Status::NotFound("query '" + query_name + "'");
}

std::vector<std::string> SmokeEngine::QueryNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : queries_) names.push_back(k);
  for (const auto& [k, v] : consuming_) names.push_back(k);
  return names;
}

}  // namespace smoke
