#include "core/smoke_engine.h"

#include "query/lineage_query.h"

namespace smoke {

Status SmokeEngine::CreateTable(const std::string& name, Table table) {
  return catalog_.AddTable(name, std::move(table));
}

Status SmokeEngine::GetTable(const std::string& name,
                             const Table** out) const {
  return catalog_.GetTable(name, out);
}

Status SmokeEngine::ReplaceTable(const std::string& name, Table table) {
  const Table* existing = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetTable(name, &existing));
  if (TableInUse(existing)) {
    return Status::InvalidArgument(
        "table '" + name +
        "' is referenced by retained query results; drop them before "
        "replacing the table");
  }
  return catalog_.ReplaceTable(name, std::move(table));
}

Status SmokeEngine::DropTable(const std::string& name) {
  const Table* existing = nullptr;
  SMOKE_RETURN_NOT_OK(catalog_.GetTable(name, &existing));
  if (TableInUse(existing)) {
    return Status::InvalidArgument(
        "table '" + name +
        "' is referenced by retained query results; drop them before "
        "dropping the table");
  }
  return catalog_.DropTable(name);
}

bool SmokeEngine::TableInUse(const Table* table) const {
  for (const auto& [name, rq] : queries_) {
    (void)name;
    if (rq->fact == table || rq->query.fact == table) return true;
    for (const SPJADim& d : rq->query.dims) {
      if (d.table == table) return true;
    }
    const QueryLineage& lin = rq->result.lineage;
    for (size_t i = 0; i < lin.num_inputs(); ++i) {
      if (lin.input(i).table == table) return true;
    }
  }
  for (const auto& [name, rp] : plans_) {
    (void)name;
    const QueryLineage& lin = rp->result.lineage;
    for (size_t i = 0; i < lin.num_inputs(); ++i) {
      if (lin.input(i).table == table) return true;
    }
  }
  return false;
}

bool SmokeEngine::IsRetainedName(const std::string& name) const {
  return queries_.count(name) > 0 || plans_.count(name) > 0;
}

Status SmokeEngine::ExecuteQuery(const std::string& query_name,
                                 const SPJAQuery& query, CaptureMode mode,
                                 const Workload* workload) {
  if (IsRetainedName(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (query.fact == nullptr) {
    return Status::InvalidArgument("query has no fact table");
  }
  if (mode == CaptureMode::kPhysMem || mode == CaptureMode::kPhysBdb) {
    return Status::Unsupported(
        "physical baselines are exercised per-operator, not via the engine "
        "facade");
  }

  CaptureOptions opts = CaptureOptions::Mode(mode);
  const SPJAPushdown* push = nullptr;
  if (workload != nullptr) {
    opts.only_relations = workload->traced_relations;
    opts.capture_backward = workload->needs_backward;
    opts.capture_forward = workload->needs_forward;
    if (!workload->pushdown.empty()) push = &workload->pushdown;
  }

  auto retained = std::make_unique<RetainedQuery>();
  retained->query = query;
  retained->fact = query.fact;
  retained->result = SPJAExec(query, opts, push);
  queries_[query_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::ExecutePlan(const std::string& query_name,
                                const LogicalPlan& plan, CaptureMode mode,
                                const Workload* workload) {
  return ExecutePlan(query_name, plan, CaptureOptions::Mode(mode), workload);
}

Status SmokeEngine::ExecutePlan(const std::string& query_name,
                                const LogicalPlan& plan,
                                const CaptureOptions& options,
                                const Workload* workload) {
  if (IsRetainedName(query_name)) {
    return Status::AlreadyExists("query '" + query_name + "'");
  }
  if (options.mode == CaptureMode::kPhysMem ||
      options.mode == CaptureMode::kPhysBdb) {
    return Status::Unsupported(
        "physical baselines are exercised per-operator, not via the engine "
        "facade");
  }

  CaptureOptions opts = options;
  if (workload != nullptr) {
    if (!workload->pushdown.empty()) {
      return Status::InvalidArgument(
          "workload push-downs do not apply to plan queries; attach them to "
          "the plan's SpjaBlock node instead");
    }
    opts.only_relations = workload->traced_relations;
    opts.capture_backward = workload->needs_backward;
    opts.capture_forward = workload->needs_forward;
  }

  auto retained = std::make_unique<RetainedPlan>();
  SMOKE_RETURN_NOT_OK(smoke::ExecutePlan(plan, opts, &retained->result));
  plans_[query_name] = std::move(retained);
  return Status::OK();
}

Status SmokeEngine::FinalizePlan(const std::string& query_name) {
  auto it = plans_.find(query_name);
  if (it == plans_.end()) {
    return Status::NotFound("plan query '" + query_name + "'");
  }
  return it->second->result.FinalizeDeferred();
}

Status SmokeEngine::GetResult(const std::string& query_name,
                              const Table** out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = &it->second->result.output;
    return Status::OK();
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    *out = &it->second->result.output;
    return Status::OK();
  }
  return Status::NotFound("query '" + query_name + "'");
}

Status SmokeEngine::GetResultObject(const std::string& query_name,
                                    const SPJAResult** out) const {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + query_name + "'");
  }
  *out = &it->second->result;
  return Status::OK();
}

Status SmokeEngine::GetPlanResult(const std::string& query_name,
                                  const PlanResult** out) const {
  auto it = plans_.find(query_name);
  if (it == plans_.end()) {
    return Status::NotFound("plan query '" + query_name + "'");
  }
  *out = &it->second->result;
  return Status::OK();
}

Status SmokeEngine::FindLineage(const std::string& query_name,
                                const QueryLineage** out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = &it->second->result.lineage;
    return Status::OK();
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    *out = &it->second->result.lineage;
    return Status::OK();
  }
  return Status::NotFound("query '" + query_name + "'");
}

// ---- lineage queries: typed handles ----

namespace {

/// Splits an executed trace plan into the typed handle: the trailing
/// kTraceRidColumn becomes `rids`, the remaining columns become `rows`, and
/// the PlanResult itself is kept for chaining.
Status SplitTraceOutput(PlanResult&& pr, TraceResult* out) {
  SMOKE_RETURN_NOT_OK(SplitTraceRows(pr.output, &out->rids, &out->rows));
  out->plan = std::move(pr);
  return Status::OK();
}

}  // namespace

Status SmokeEngine::MakeTraceSource(const std::string& query_name,
                                    TraceSource* out) const {
  if (auto it = queries_.find(query_name); it != queries_.end()) {
    *out = TraceSource::FromSpja(it->second->query, it->second->result,
                                 query_name);
    return Status::OK();
  }
  if (auto it = plans_.find(query_name); it != plans_.end()) {
    *out = TraceSource::FromPlan(it->second->result, query_name);
    return Status::OK();
  }
  return Status::NotFound("query '" + query_name + "'");
}

Status SmokeEngine::TraceBackward(const std::string& query_name,
                                  const std::string& relation,
                                  const std::vector<rid_t>& out_rids,
                                  TraceResult* out, bool dedup) const {
  TraceSource src;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(query_name, &src));
  PlanResult pr;
  SMOKE_RETURN_NOT_OK(TraceBuilder::Backward(std::move(src), relation, out_rids)
                          .Dedup(dedup)
                          .Execute(CaptureOptions::Inject(), &pr));
  return SplitTraceOutput(std::move(pr), out);
}

Status SmokeEngine::TraceForward(const std::string& query_name,
                                 const std::string& relation,
                                 const std::vector<rid_t>& in_rids,
                                 TraceResult* out) const {
  TraceSource src;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(query_name, &src));
  PlanResult pr;
  SMOKE_RETURN_NOT_OK(TraceBuilder::Forward(std::move(src), relation, in_rids)
                          .Execute(CaptureOptions::Inject(), &pr));
  return SplitTraceOutput(std::move(pr), out);
}

Status SmokeEngine::TraceLinked(const std::string& from_query,
                                const std::vector<rid_t>& out_rids,
                                const std::string& relation,
                                const std::string& to_query,
                                TraceResult* out) const {
  TraceSource from;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(from_query, &from));
  TraceSource to;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(to_query, &to));
  PlanResult pr;
  SMOKE_RETURN_NOT_OK(TraceBuilder::Backward(std::move(from), relation, out_rids)
                          .ThenForward(std::move(to))
                          .Execute(CaptureOptions::Inject(), &pr));
  return SplitTraceOutput(std::move(pr), out);
}

Status SmokeEngine::ExecuteTraceQuery(const std::string& result_name,
                                      const TraceBuilder& builder,
                                      const CaptureOptions& opts) {
  if (IsRetainedName(result_name)) {
    return Status::AlreadyExists("result '" + result_name + "'");
  }
  auto retained = std::make_unique<RetainedPlan>();
  SMOKE_RETURN_NOT_OK(builder.Execute(opts, &retained->result));
  plans_[result_name] = std::move(retained);
  return Status::OK();
}

// ---- lineage queries: string-keyed shims ----

Status SmokeEngine::Backward(const std::string& query_name,
                             const std::string& relation,
                             const std::vector<rid_t>& out_rids,
                             std::vector<rid_t>* rids, bool dedup) const {
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  return BackwardRidsChecked(*lineage, relation, out_rids, dedup, rids);
}

Status SmokeEngine::Forward(const std::string& query_name,
                            const std::string& relation,
                            const std::vector<rid_t>& in_rids,
                            std::vector<rid_t>* rids) const {
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  return ForwardRidsChecked(*lineage, relation, in_rids, /*dedup=*/true, rids);
}

Status SmokeEngine::BackwardRows(const std::string& query_name,
                                 const std::string& relation,
                                 const std::vector<rid_t>& out_rids,
                                 Table* rows) const {
  std::vector<rid_t> rids;
  SMOKE_RETURN_NOT_OK(Backward(query_name, relation, out_rids, &rids));
  const QueryLineage* lineage = nullptr;
  SMOKE_RETURN_NOT_OK(FindLineage(query_name, &lineage));
  int idx = lineage->FindInput(relation);
  const Table* table = lineage->input(static_cast<size_t>(idx)).table;
  if (table == nullptr) {
    return Status::InvalidArgument("relation table not available");
  }
  return MaterializeRowsChecked(*table, rids, rows);
}

Status SmokeEngine::TraceAcross(const std::string& from_query,
                                const std::vector<rid_t>& out_rids,
                                const std::string& relation,
                                const std::string& to_query,
                                std::vector<rid_t>* linked) const {
  std::vector<rid_t> shared;
  SMOKE_RETURN_NOT_OK(
      Backward(from_query, relation, out_rids, &shared, /*dedup=*/true));
  return Forward(to_query, relation, shared, linked);
}

Status SmokeEngine::ExecuteConsuming(const std::string& result_name,
                                     const std::string& base_query,
                                     rid_t output_rid,
                                     const ConsumingSpec& spec) {
  // Default traced relation: the SPJA fact table, or a plan's first input.
  std::string relation;
  if (auto it = queries_.find(base_query); it != queries_.end()) {
    relation = it->second->query.fact_name;
  } else if (auto it = plans_.find(base_query); it != plans_.end()) {
    const QueryLineage& lin = it->second->result.lineage;
    if (lin.num_inputs() == 0) {
      return Status::InvalidArgument("plan query '" + base_query +
                                     "' has no captured lineage");
    }
    relation = lin.input(0).table_name;
  } else {
    return Status::NotFound("query '" + base_query + "'");
  }
  return ExecuteConsumingOn(result_name, base_query, relation, output_rid,
                            spec);
}

Status SmokeEngine::ExecuteConsumingOn(const std::string& result_name,
                                       const std::string& base_query,
                                       const std::string& relation,
                                       rid_t output_rid,
                                       const ConsumingSpec& spec) {
  // Shim over the unified path: compile the spec into a Trace → Select →
  // Derive → GroupBy plan (strategy resolved against the base query's
  // capture artifacts) and retain the PlanResult. The result's composed
  // lineage maps its outputs back to `relation`, which is what makes
  // ExecuteConsumingChained just another consuming query.
  TraceSource src;
  SMOKE_RETURN_NOT_OK(MakeTraceSource(base_query, &src));
  TraceBuilder builder =
      TraceBuilder::Backward(std::move(src), relation, {output_rid});
  builder.Consuming(spec);
  return ExecuteTraceQuery(result_name, builder, CaptureOptions::Inject());
}

Status SmokeEngine::ExecuteConsumingChained(const std::string& result_name,
                                            const std::string& base_consuming,
                                            rid_t output_rid,
                                            const ConsumingSpec& spec) {
  auto it = plans_.find(base_consuming);
  if (it == plans_.end()) {
    return Status::NotFound("consuming result '" + base_consuming + "'");
  }
  const QueryLineage& lin = it->second->result.lineage;
  if (lin.num_inputs() == 0) {
    return Status::InvalidArgument("consuming result '" + base_consuming +
                                   "' has no captured lineage");
  }
  return ExecuteConsumingOn(result_name, base_consuming,
                            lin.input(0).table_name, output_rid, spec);
}

Status SmokeEngine::GetConsumingResult(const std::string& result_name,
                                       const Table** out) const {
  auto it = plans_.find(result_name);
  if (it == plans_.end()) {
    return Status::NotFound("consuming result '" + result_name + "'");
  }
  *out = &it->second->result.output;
  return Status::OK();
}

Status SmokeEngine::DropResult(const std::string& query_name) {
  if (queries_.erase(query_name) > 0) return Status::OK();
  if (plans_.erase(query_name) > 0) return Status::OK();
  return Status::NotFound("query '" + query_name + "'");
}

std::vector<std::string> SmokeEngine::QueryNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : queries_) names.push_back(k);
  for (const auto& [k, v] : plans_) names.push_back(k);
  return names;
}

}  // namespace smoke
