// Ontime-like dataset for the crossfilter experiment (paper Section 6.5.1).
//
// Substitution note (DESIGN.md Section 2): the paper uses the 123.5M-row
// Airline On-Time Performance dataset. We generate a synthetic equivalent
// with the same binning structure: <lat,lon> over a 256x256 grid (65,536
// bins, sparse — only ~300 airport bins non-empty), <date> with 7,762 bins,
// <departure delay> with 8 bins, <carrier> with 29 bins, for a total of
// ~8,100 non-empty bars across the four views, matching the paper's
// interaction count.
#ifndef SMOKE_WORKLOADS_ONTIME_H_
#define SMOKE_WORKLOADS_ONTIME_H_

#include <cstdint>

#include "storage/table.h"

namespace smoke {
namespace ontime {

enum Col : int {
  kLatLonBin = 0,  ///< airport grid cell in [0, 65536)
  kDateBin,        ///< day index in [0, 7762)
  kDelayBin,       ///< departure-delay bucket in [0, 8)
  kCarrier,        ///< carrier id in [0, 29)
};

constexpr int64_t kNumLatLonBins = 65536;
constexpr int64_t kNumDateBins = 7762;
constexpr int64_t kNumDelayBins = 8;
constexpr int64_t kNumCarriers = 29;
constexpr int64_t kNumAirports = 300;  // non-empty lat/lon bins

/// Generates `rows` flights. Airports and carriers follow zipfian
/// popularity; dates are uniform; delay buckets are skewed toward
/// small delays.
Table Generate(size_t rows, uint64_t seed = 77);

}  // namespace ontime
}  // namespace smoke

#endif  // SMOKE_WORKLOADS_ONTIME_H_
