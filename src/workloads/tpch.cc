#include "workloads/tpch.h"

#include <random>

#include "common/date.h"
#include "common/macros.h"

namespace smoke {
namespace tpch {

namespace {

const char* kNations[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

const std::vector<std::string> kShipModes = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
const std::vector<std::string> kShipInstructs = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};
const std::vector<std::string> kOrderPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
const std::vector<std::string> kMktSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};

constexpr int64_t kStartDay = DaysFromCivil(1992, 1, 1);
constexpr int64_t kEndDay = DaysFromCivil(1998, 8, 2);
// dbgen's CURRENTDATE used for returnflag/linestatus determination.
constexpr int64_t kCurrentDay = DaysFromCivil(1995, 6, 17);

Schema LineitemSchema() {
  Schema s;
  s.AddField("l_orderkey", DataType::kInt64);
  s.AddField("l_quantity", DataType::kFloat64);
  s.AddField("l_extendedprice", DataType::kFloat64);
  s.AddField("l_discount", DataType::kFloat64);
  s.AddField("l_tax", DataType::kFloat64);
  s.AddField("l_returnflag", DataType::kString);
  s.AddField("l_linestatus", DataType::kString);
  s.AddField("l_shipdate", DataType::kInt64);
  s.AddField("l_commitdate", DataType::kInt64);
  s.AddField("l_receiptdate", DataType::kInt64);
  s.AddField("l_shipinstruct", DataType::kString);
  s.AddField("l_shipmode", DataType::kString);
  return s;
}

Schema OrdersSchema() {
  Schema s;
  s.AddField("o_orderkey", DataType::kInt64);
  s.AddField("o_custkey", DataType::kInt64);
  s.AddField("o_orderdate", DataType::kInt64);
  s.AddField("o_orderpriority", DataType::kString);
  s.AddField("o_shippriority", DataType::kInt64);
  return s;
}

Schema CustomerSchema() {
  Schema s;
  s.AddField("c_custkey", DataType::kInt64);
  s.AddField("c_name", DataType::kString);
  s.AddField("c_address", DataType::kString);
  s.AddField("c_nationkey", DataType::kInt64);
  s.AddField("c_phone", DataType::kString);
  s.AddField("c_acctbal", DataType::kFloat64);
  s.AddField("c_mktsegment", DataType::kString);
  return s;
}

Schema NationSchema() {
  Schema s;
  s.AddField("n_nationkey", DataType::kInt64);
  s.AddField("n_name", DataType::kString);
  return s;
}

}  // namespace

const std::vector<std::string>& ShipModes() { return kShipModes; }
const std::vector<std::string>& ShipInstructs() { return kShipInstructs; }

Database Generate(double scale_factor, uint64_t seed) {
  SMOKE_CHECK(scale_factor > 0);
  Database db;
  std::mt19937_64 rng(seed);
  auto ri = [&rng](int64_t lo, int64_t hi) {  // inclusive
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
  };
  auto rd = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };

  const size_t num_customers =
      static_cast<size_t>(150000 * scale_factor) + 1;
  const size_t num_orders = num_customers * 10;

  // Precompute day-number -> yyyymmdd for the generation window.
  std::vector<int64_t> ymd(static_cast<size_t>(kEndDay - kStartDay + 160));
  for (size_t i = 0; i < ymd.size(); ++i) {
    ymd[i] = YmdFromDays(kStartDay + static_cast<int64_t>(i));
  }
  auto to_ymd = [&ymd](int64_t day) {
    return ymd[static_cast<size_t>(day - kStartDay)];
  };

  // ---- nation ----
  db.nation = Table(NationSchema());
  for (int64_t k = 0; k < 25; ++k) {
    db.nation.mutable_column(kNNationkey).AppendInt(k);
    db.nation.mutable_column(kNName).AppendString(kNations[k]);
  }

  // ---- customer ----
  db.customer = Table(CustomerSchema());
  db.customer.Reserve(num_customers);
  for (size_t c = 1; c <= num_customers; ++c) {
    db.customer.mutable_column(kCCustkey).AppendInt(static_cast<int64_t>(c));
    db.customer.mutable_column(kCName).AppendString(
        "Customer#" + std::to_string(c));
    db.customer.mutable_column(kCAddress).AppendString(
        "Addr" + std::to_string(ri(0, 999999)));
    db.customer.mutable_column(kCNationkey).AppendInt(ri(0, 24));
    db.customer.mutable_column(kCPhone).AppendString(
        std::to_string(ri(10, 34)) + "-" + std::to_string(ri(100, 999)) +
        "-" + std::to_string(ri(1000, 9999)));
    db.customer.mutable_column(kCAcctbal).AppendDouble(rd(-999.99, 9999.99));
    db.customer.mutable_column(kCMktsegment).AppendString(
        kMktSegments[static_cast<size_t>(ri(0, 4))]);
  }

  // ---- orders + lineitem ----
  db.orders = Table(OrdersSchema());
  db.orders.Reserve(num_orders);
  db.lineitem = Table(LineitemSchema());
  db.lineitem.Reserve(num_orders * 4);
  for (size_t o = 1; o <= num_orders; ++o) {
    const int64_t okey = static_cast<int64_t>(o);
    // dbgen leaves a "hole": only 2/3 of customers have orders; we keep all
    // for simplicity (join shape is unchanged).
    const int64_t ckey = ri(1, static_cast<int64_t>(num_customers));
    const int64_t odate_day = ri(kStartDay, kEndDay - 121);
    db.orders.mutable_column(kOOrderkey).AppendInt(okey);
    db.orders.mutable_column(kOCustkey).AppendInt(ckey);
    db.orders.mutable_column(kOOrderdate).AppendInt(to_ymd(odate_day));
    db.orders.mutable_column(kOOrderpriority).AppendString(
        kOrderPriorities[static_cast<size_t>(ri(0, 4))]);
    db.orders.mutable_column(kOShippriority).AppendInt(0);

    const int64_t num_lines = ri(1, 7);
    for (int64_t l = 0; l < num_lines; ++l) {
      const int64_t ship_day = odate_day + ri(1, 121);
      const int64_t commit_day = odate_day + ri(30, 90);
      const int64_t receipt_day = ship_day + ri(1, 30);
      const double quantity = static_cast<double>(ri(1, 50));
      const double price = quantity * rd(900.0, 10000.0);
      db.lineitem.mutable_column(kLOrderkey).AppendInt(okey);
      db.lineitem.mutable_column(kLQuantity).AppendDouble(quantity);
      db.lineitem.mutable_column(kLExtendedprice).AppendDouble(price);
      db.lineitem.mutable_column(kLDiscount).AppendDouble(
          static_cast<double>(ri(0, 10)) / 100.0);
      db.lineitem.mutable_column(kLTax).AppendDouble(
          static_cast<double>(ri(0, 8)) / 100.0);
      // dbgen: R/A when receipt <= CURRENTDATE else N; O when shipped after
      // CURRENTDATE else F. Yields the four Q1 groups with group (N, F)
      // rare, as in the paper's bar widths.
      const char* rflag =
          receipt_day <= kCurrentDay ? (ri(0, 1) ? "R" : "A") : "N";
      const char* lstatus = ship_day > kCurrentDay ? "O" : "F";
      db.lineitem.mutable_column(kLReturnflag).AppendString(rflag);
      db.lineitem.mutable_column(kLLinestatus).AppendString(lstatus);
      db.lineitem.mutable_column(kLShipdate).AppendInt(to_ymd(ship_day));
      db.lineitem.mutable_column(kLCommitdate).AppendInt(to_ymd(commit_day));
      db.lineitem.mutable_column(kLReceiptdate).AppendInt(to_ymd(receipt_day));
      db.lineitem.mutable_column(kLShipinstruct).AppendString(
          kShipInstructs[static_cast<size_t>(ri(0, 3))]);
      db.lineitem.mutable_column(kLShipmode).AppendString(
          kShipModes[static_cast<size_t>(ri(0, 6))]);
    }
  }
  return db;
}

namespace {

/// Q1's aggregate list (shared by Q1 and the Q1a/Q1b/Q1c variants).
std::vector<AggSpec> Q1Aggs() {
  using E = ScalarExpr;
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec::Sum(E::Col(kLQuantity), "sum_qty"));
  aggs.push_back(AggSpec::Sum(E::Col(kLExtendedprice), "sum_base_price"));
  aggs.push_back(AggSpec::Sum(
      E::Mul(E::Col(kLExtendedprice),
             E::Sub(E::Const(1.0), E::Col(kLDiscount))),
      "sum_disc_price"));
  aggs.push_back(AggSpec::Sum(
      E::Mul(E::Mul(E::Col(kLExtendedprice),
                    E::Sub(E::Const(1.0), E::Col(kLDiscount))),
             E::Add(E::Const(1.0), E::Col(kLTax))),
      "sum_charge"));
  aggs.push_back(AggSpec::Avg(E::Col(kLQuantity), "avg_qty"));
  aggs.push_back(AggSpec::Avg(E::Col(kLExtendedprice), "avg_price"));
  aggs.push_back(AggSpec::Avg(E::Col(kLDiscount), "avg_disc"));
  aggs.push_back(AggSpec::Count("count_order"));
  return aggs;
}

ScalarExpr Revenue() {
  using E = ScalarExpr;
  return E::Mul(E::Col(kLExtendedprice),
                E::Sub(E::Const(1.0), E::Col(kLDiscount)));
}

}  // namespace

SPJAQuery MakeQ1(const Database& db) {
  SPJAQuery q;
  q.fact = &db.lineitem;
  q.fact_name = "lineitem";
  q.fact_filters = {Predicate::Int(kLShipdate, CmpOp::kLe, 19980902)};
  q.group_by = {ColRef::Fact(kLReturnflag), ColRef::Fact(kLLinestatus)};
  q.aggs = Q1Aggs();
  return q;
}

SPJAQuery MakeQ3(const Database& db) {
  SPJAQuery q;
  q.fact = &db.lineitem;
  q.fact_name = "lineitem";
  q.fact_filters = {Predicate::Int(kLShipdate, CmpOp::kGt, 19950315)};

  SPJADim orders;
  orders.table = &db.orders;
  orders.name = "orders";
  orders.pk_col = kOOrderkey;
  orders.fk = ColRef::Fact(kLOrderkey);
  orders.filters = {Predicate::Int(kOOrderdate, CmpOp::kLt, 19950315)};
  q.dims.push_back(orders);

  SPJADim customer;
  customer.table = &db.customer;
  customer.name = "customer";
  customer.pk_col = kCCustkey;
  customer.fk = ColRef::Dim(0, kOCustkey);
  customer.filters = {Predicate::Str(kCMktsegment, CmpOp::kEq, "BUILDING")};
  q.dims.push_back(customer);

  q.group_by = {ColRef::Fact(kLOrderkey), ColRef::Dim(0, kOOrderdate),
                ColRef::Dim(0, kOShippriority)};
  q.aggs = {AggSpec::Sum(Revenue(), "revenue")};
  return q;
}

SPJAQuery MakeQ10(const Database& db) {
  SPJAQuery q;
  q.fact = &db.lineitem;
  q.fact_name = "lineitem";
  q.fact_filters = {Predicate::Str(kLReturnflag, CmpOp::kEq, "R")};

  SPJADim orders;
  orders.table = &db.orders;
  orders.name = "orders";
  orders.pk_col = kOOrderkey;
  orders.fk = ColRef::Fact(kLOrderkey);
  orders.filters = {Predicate::Int(kOOrderdate, CmpOp::kGe, 19931001),
                    Predicate::Int(kOOrderdate, CmpOp::kLt, 19940101)};
  q.dims.push_back(orders);

  SPJADim customer;
  customer.table = &db.customer;
  customer.name = "customer";
  customer.pk_col = kCCustkey;
  customer.fk = ColRef::Dim(0, kOCustkey);
  q.dims.push_back(customer);

  SPJADim nation;
  nation.table = &db.nation;
  nation.name = "nation";
  nation.pk_col = kNNationkey;
  nation.fk = ColRef::Dim(1, kCNationkey);
  q.dims.push_back(nation);

  q.group_by = {ColRef::Dim(1, kCCustkey), ColRef::Dim(1, kCName),
                ColRef::Dim(1, kCAcctbal), ColRef::Dim(1, kCPhone),
                ColRef::Dim(2, kNName),    ColRef::Dim(1, kCAddress)};
  q.aggs = {AggSpec::Sum(Revenue(), "revenue")};
  return q;
}

SPJAQuery MakeQ12(const Database& db) {
  SPJAQuery q;
  q.fact = &db.lineitem;
  q.fact_name = "lineitem";
  q.fact_filters = {
      Predicate::StrIn(kLShipmode, {"MAIL", "SHIP"}),
      Predicate::ColCmp(kLCommitdate, CmpOp::kLt, kLReceiptdate,
                        DataType::kInt64),
      Predicate::ColCmp(kLShipdate, CmpOp::kLt, kLCommitdate,
                        DataType::kInt64),
      Predicate::Int(kLReceiptdate, CmpOp::kGe, 19940101),
      Predicate::Int(kLReceiptdate, CmpOp::kLt, 19950101),
  };

  SPJADim orders;
  orders.table = &db.orders;
  orders.name = "orders";
  orders.pk_col = kOOrderkey;
  orders.fk = ColRef::Fact(kLOrderkey);
  q.dims.push_back(orders);

  q.group_by = {ColRef::Fact(kLShipmode)};

  AggSpec high = AggSpec::Sum(
      ScalarExpr::Indicator(
          Predicate::StrIn(kOOrderpriority, {"1-URGENT", "2-HIGH"})),
      "high_line_count");
  high.src = 1;  // reads the orders dimension
  AggSpec low = AggSpec::Sum(
      ScalarExpr::Indicator(Predicate::StrIn(
          kOOrderpriority, {"3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"})),
      "low_line_count");
  low.src = 1;
  q.aggs = {high, low};
  return q;
}

ConsumingSpec MakeQ1a(const Database& db) {
  (void)db;
  ConsumingSpec spec;
  spec.group_by = {GroupExpr::Year(kLShipdate, "ship_year"),
                   GroupExpr::Month(kLShipdate, "ship_month")};
  spec.aggs = Q1Aggs();
  return spec;
}

ConsumingSpec MakeQ1b(const Database& db, const std::string& shipmode,
                      const std::string& shipinstruct) {
  ConsumingSpec spec = MakeQ1a(db);
  spec.filters = {Predicate::Str(kLShipmode, CmpOp::kEq, shipmode),
                  Predicate::Str(kLShipinstruct, CmpOp::kEq, shipinstruct)};
  return spec;
}

ConsumingSpec MakeQ1c(const Database& db, const std::string& shipmode,
                      const std::string& shipinstruct) {
  ConsumingSpec spec = MakeQ1b(db, shipmode, shipinstruct);
  spec.group_by.push_back(GroupExpr::Scale100(kLTax, "l_tax_x100"));
  return spec;
}

}  // namespace tpch
}  // namespace smoke
