#include "workloads/physician.h"

#include <random>

namespace smoke {
namespace physician {

Table Generate(size_t rows, uint64_t seed) {
  Schema s;
  s.AddField("npi", DataType::kInt64);
  s.AddField("pac_id", DataType::kString);
  s.AddField("zip", DataType::kString);
  s.AddField("state", DataType::kString);
  s.AddField("city", DataType::kString);
  s.AddField("lbn1", DataType::kString);
  s.AddField("ccn1", DataType::kString);
  Table t(s);
  t.Reserve(rows);

  std::mt19937_64 rng(seed);
  auto ri = [&rng](int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
  };
  auto chance = [&rng](double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng) < p;
  };

  // Each physician (NPI) appears on average ~2.5 rows (one per practice
  // location), like the real file.
  const int64_t num_npi = std::max<int64_t>(1, static_cast<int64_t>(rows) * 2 / 5);
  const int64_t num_zip = std::max<int64_t>(1, std::min<int64_t>(30000, static_cast<int64_t>(rows) / 8));
  const int64_t num_lbn = std::max<int64_t>(1, static_cast<int64_t>(rows) / 20);

  auto& npi = t.mutable_column(kNpi).mutable_ints();
  auto& pac = t.mutable_column(kPacId).mutable_strings();
  auto& zip = t.mutable_column(kZip).mutable_strings();
  auto& state = t.mutable_column(kState).mutable_strings();
  auto& city = t.mutable_column(kCity).mutable_strings();
  auto& lbn = t.mutable_column(kLbn1).mutable_strings();
  auto& ccn = t.mutable_column(kCcn1).mutable_strings();

  for (size_t r = 0; r < rows; ++r) {
    const int64_t n = ri(1, num_npi);
    npi.push_back(1000000000 + n);
    // Canonical PAC_ID is a function of NPI; violations break it.
    int64_t pac_base = chance(0.003) ? n * 7 + 1 : n * 7;
    pac.push_back("PAC" + std::to_string(pac_base));

    const int64_t z = ri(0, num_zip - 1);
    zip.push_back(std::to_string(10000 + z));
    // Canonical state is zip / 600 (~50 states); 0.2% violations.
    int64_t st = chance(0.002) ? ri(0, 49) : z * 50 / num_zip;
    state.push_back("ST" + std::to_string(st));
    // Canonical city is a function of zip; 2% violations.
    int64_t ct = chance(0.02) ? z * 3 + 1 : z * 3;
    city.push_back("CITY" + std::to_string(ct));

    const int64_t b = ri(0, num_lbn - 1);
    lbn.push_back("HOSPITAL GROUP " + std::to_string(b));
    int64_t cc = chance(0.005) ? b * 11 + 1 : b * 11;
    ccn.push_back("CCN" + std::to_string(cc));
  }
  return t;
}

}  // namespace physician
}  // namespace smoke
