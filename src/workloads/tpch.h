// TPC-H dbgen-lite: generates the lineitem, orders, customer and nation
// relations (the columns needed by Q1, Q3, Q10 and Q12) with dbgen-faithful
// distributions, plus hand-planned SPJA blocks for the four queries the
// paper evaluates (Section 6.2) and the Q1a/Q1b/Q1c drill-down variants
// (Section 6.4, Appendix C).
//
// Dates are int64 yyyymmdd. The engine is hash-based, so ORDER BY clauses
// are omitted, exactly as in the paper.
#ifndef SMOKE_WORKLOADS_TPCH_H_
#define SMOKE_WORKLOADS_TPCH_H_

#include <cstdint>

#include "engine/spja.h"
#include "query/consuming.h"
#include "storage/table.h"

namespace smoke {
namespace tpch {

// Column indexes.
enum LineitemCol : int {
  kLOrderkey = 0,
  kLQuantity,
  kLExtendedprice,
  kLDiscount,
  kLTax,
  kLReturnflag,
  kLLinestatus,
  kLShipdate,
  kLCommitdate,
  kLReceiptdate,
  kLShipinstruct,
  kLShipmode,
};

enum OrdersCol : int {
  kOOrderkey = 0,
  kOCustkey,
  kOOrderdate,
  kOOrderpriority,
  kOShippriority,
};

enum CustomerCol : int {
  kCCustkey = 0,
  kCName,
  kCAddress,
  kCNationkey,
  kCPhone,
  kCAcctbal,
  kCMktsegment,
};

enum NationCol : int {
  kNNationkey = 0,
  kNName,
};

/// The generated database. Row counts at scale factor 1: customer 150k,
/// orders 1.5M, lineitem ~6M, nation 25.
struct Database {
  Table lineitem;
  Table orders;
  Table customer;
  Table nation;
};

/// Generates the database at `scale_factor` (fractions supported; the
/// benches default to 0.1 so the suite runs in minutes on a laptop).
Database Generate(double scale_factor, uint64_t seed = 2018);

/// TPC-H Q1 over `db` (pricing summary report; selection on l_shipdate,
/// group by returnflag/linestatus, 8 aggregates).
SPJAQuery MakeQ1(const Database& db);

/// TPC-H Q3 (shipping priority): customer ⋈ orders ⋈ lineitem.
SPJAQuery MakeQ3(const Database& db);

/// TPC-H Q10 (returned items): customer ⋈ orders ⋈ lineitem ⋈ nation.
SPJAQuery MakeQ10(const Database& db);

/// TPC-H Q12 (shipping modes): orders ⋈ lineitem with CASE aggregates over
/// o_orderpriority.
SPJAQuery MakeQ12(const Database& db);

/// Q1a (Section 6.4): drill into one Q1 group by (year, month) of
/// l_shipdate, same aggregates.
ConsumingSpec MakeQ1a(const Database& db);

/// Q1b: Q1a plus two parameterized predicates l_shipmode = :p1 AND
/// l_shipinstruct = :p2 (text attributes, to exercise push-down overheads).
ConsumingSpec MakeQ1b(const Database& db, const std::string& shipmode,
                      const std::string& shipinstruct);

/// Q1c: Q1b plus l_tax added to the GROUP BY.
ConsumingSpec MakeQ1c(const Database& db, const std::string& shipmode,
                      const std::string& shipinstruct);

/// The seven shipmode values / four shipinstruct values of dbgen.
const std::vector<std::string>& ShipModes();
const std::vector<std::string>& ShipInstructs();

}  // namespace tpch
}  // namespace smoke

#endif  // SMOKE_WORKLOADS_TPCH_H_
