#include "workloads/ontime.h"

#include <random>
#include <unordered_set>

#include "common/zipf.h"

namespace smoke {
namespace ontime {

Table Generate(size_t rows, uint64_t seed) {
  Schema s;
  s.AddField("latlon_bin", DataType::kInt64);
  s.AddField("date_bin", DataType::kInt64);
  s.AddField("delay_bin", DataType::kInt64);
  s.AddField("carrier", DataType::kInt64);
  Table t(s);
  t.Reserve(rows);

  std::mt19937_64 rng(seed);

  // Pick kNumAirports distinct grid cells.
  std::vector<int64_t> airports;
  {
    std::unordered_set<int64_t> used;
    std::uniform_int_distribution<int64_t> cell(0, kNumLatLonBins - 1);
    while (airports.size() < static_cast<size_t>(kNumAirports)) {
      int64_t c = cell(rng);
      if (used.insert(c).second) airports.push_back(c);
    }
  }

  ZipfGenerator airport_pick(kNumAirports, 1.0, seed + 1);
  ZipfGenerator carrier_pick(kNumCarriers, 0.8, seed + 2);
  ZipfGenerator delay_pick(kNumDelayBins, 1.2, seed + 3);
  std::uniform_int_distribution<int64_t> date_pick(0, kNumDateBins - 1);

  auto& latlon = t.mutable_column(kLatLonBin).mutable_ints();
  auto& date = t.mutable_column(kDateBin).mutable_ints();
  auto& delay = t.mutable_column(kDelayBin).mutable_ints();
  auto& carrier = t.mutable_column(kCarrier).mutable_ints();
  for (size_t i = 0; i < rows; ++i) {
    latlon.push_back(airports[static_cast<size_t>(airport_pick.Next() - 1)]);
    date.push_back(date_pick(rng));
    delay.push_back(delay_pick.Next() - 1);
    carrier.push_back(carrier_pick.Next() - 1);
  }
  return t;
}

}  // namespace ontime
}  // namespace smoke
