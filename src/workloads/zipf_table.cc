#include "workloads/zipf_table.h"

#include "common/zipf.h"

namespace smoke {

Table MakeZipfTable(size_t n, uint64_t groups, double theta, uint64_t seed) {
  Schema s;
  s.AddField("id", DataType::kInt64);
  s.AddField("z", DataType::kInt64);
  s.AddField("v", DataType::kFloat64);
  Table t(s);
  t.Reserve(n);
  ZipfGenerator zgen(groups, theta, seed);
  UniformDouble vgen(0.0, 100.0, seed + 1);
  auto& ids = t.mutable_column(zipf_table::kId).mutable_ints();
  auto& zs = t.mutable_column(zipf_table::kZ).mutable_ints();
  auto& vs = t.mutable_column(zipf_table::kV).mutable_doubles();
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<int64_t>(i));
    zs.push_back(zgen.Next());
    vs.push_back(vgen.Next());
  }
  return t;
}

Table MakeGidsTable(uint64_t groups, uint64_t seed) {
  Schema s;
  s.AddField("id", DataType::kInt64);
  s.AddField("payload", DataType::kFloat64);
  Table t(s);
  t.Reserve(groups);
  UniformDouble vgen(0.0, 1.0, seed);
  auto& ids = t.mutable_column(0).mutable_ints();
  auto& vs = t.mutable_column(1).mutable_doubles();
  for (uint64_t g = 1; g <= groups; ++g) {
    ids.push_back(static_cast<int64_t>(g));
    vs.push_back(vgen.Next());
  }
  return t;
}

std::unordered_map<int64_t, uint32_t> CountPerKey(const Table& table,
                                                  int col) {
  std::unordered_map<int64_t, uint32_t> counts;
  for (int64_t v : table.column(static_cast<size_t>(col)).ints()) {
    ++counts[v];
  }
  return counts;
}

}  // namespace smoke
