// Physician-Compare-like dataset for the data profiling experiment
// (paper Section 6.5.2, Figure 15).
//
// Substitution note (DESIGN.md Section 2): the paper uses the 2.2M-row
// Physician Compare National file (as in HoloClean). We generate a
// synthetic equivalent with the four functional dependencies the paper
// checks — NPI → PAC_ID, Zip → State, Zip → City, LBN1 → CCN1 — and
// controlled violation rates per FD. NPI is an integer attribute; all
// others are strings (the paper exploits this: Metanome models *all*
// attributes as strings, which slows integer FDs like NPI → PAC_ID).
#ifndef SMOKE_WORKLOADS_PHYSICIAN_H_
#define SMOKE_WORKLOADS_PHYSICIAN_H_

#include <cstdint>

#include "storage/table.h"

namespace smoke {
namespace physician {

enum Col : int {
  kNpi = 0,  ///< int64
  kPacId,    ///< string
  kZip,      ///< string
  kState,    ///< string
  kCity,     ///< string
  kLbn1,     ///< string
  kCcn1,     ///< string
};

/// Generates `rows` physician records with injected FD violations
/// (violation rates: NPI→PAC_ID 0.3%, Zip→State 0.2%, Zip→City 2%,
/// LBN1→CCN1 0.5%).
Table Generate(size_t rows, uint64_t seed = 99);

}  // namespace physician
}  // namespace smoke

#endif  // SMOKE_WORKLOADS_PHYSICIAN_H_
