// Microbenchmark datasets (paper Section 5): zipf_{theta,n,g}(id, z, v)
// tables with zipfian z in [1, g] and uniform v in [0, 100), plus the gids
// dimension table for the pk-fk join microbenchmark.
#ifndef SMOKE_WORKLOADS_ZIPF_TABLE_H_
#define SMOKE_WORKLOADS_ZIPF_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "storage/table.h"

namespace smoke {

namespace zipf_table {
/// Column indexes of the generated zipf table.
enum : int { kId = 0, kZ = 1, kV = 2 };
}  // namespace zipf_table

/// Generates zipf_{theta,n,g}: columns id (0..n-1), z (zipfian in [1, g]),
/// v (uniform double in [0, 100)). Tuples are deliberately narrow to
/// emphasize worst-case lineage overheads.
Table MakeZipfTable(size_t n, uint64_t groups, double theta,
                    uint64_t seed = 42);

/// Generates gids(id, payload): one row per key in [1, groups] — the pk side
/// of the join microbenchmark.
Table MakeGidsTable(uint64_t groups, uint64_t seed = 7);

/// Exact per-key cardinalities of column `col` (the TC hints used by
/// Smoke-I+TC).
std::unordered_map<int64_t, uint32_t> CountPerKey(const Table& table, int col);

}  // namespace smoke

#endif  // SMOKE_WORKLOADS_ZIPF_TABLE_H_
