#include "refresh/refresh.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/macros.h"
#include "engine/group_expr.h"
#include "engine/select.h"
#include "lineage/fragment_merge.h"
#include "lineage/store/lineage_store.h"

namespace smoke {

namespace {

/// The cumulative output table of a path node: intermediates live in the
/// retained per-operator results, the root's output was moved into the
/// PlanResult itself.
Table* NodeOutput(PlanResult* pr, int id) {
  PlanRefreshState& rs = *pr->refresh;
  if (id == rs.plan.root()) return &pr->output;
  return &rs.results[static_cast<size_t>(id)].output;
}

/// One relation's witness column: for every delta row of the current
/// frontier, the one base rid of `scan` it derives from (backward lineage
/// is 1:1 per relation below a group-by root — each output row has exactly
/// one ancestor in each base relation).
struct Witness {
  int scan = -1;
  std::vector<rid_t> rids;
};

/// Probe-side match expansion of the witness columns through a join: each
/// delta probe row's witnesses are replicated once per build match.
void RemapWitnesses(const std::vector<size_t>& pick,
                    std::vector<Witness>* wits) {
  for (Witness& w : *wits) {
    std::vector<rid_t> next;
    next.reserve(pick.size());
    for (size_t i : pick) next.push_back(w.rids[i]);
    w.rids = std::move(next);
  }
}

Status BuildJoinCache(const LogicalPlan& plan, int join_id, size_t build_rows,
                      RefreshPlanCache::JoinBuild* jb) {
  const PlanNode& node = plan.node(join_id);
  const PlanNode& build = plan.node(node.children[0]);
  SMOKE_CHECK(build.kind == PlanOpKind::kScan);
  const int key = node.join.left_key;
  if (key < 0 || static_cast<size_t>(key) >= build.table->num_columns()) {
    return Status::InvalidArgument("join build key column out of range");
  }
  const std::vector<int64_t>& keys = build.table->column(
      static_cast<size_t>(key)).ints();
  jb->pk = node.join.pk_build;
  for (size_t a = 0; a < build_rows; ++a) {
    const int64_t k = keys[a];
    if (jb->pk) {
      const uint32_t slot = static_cast<uint32_t>(jb->single.size());
      uint32_t prev = jb->map.FindOrInsert(k, slot);
      if (prev != IntKeyMap::kNotFound) {
        return Status::InvalidArgument(
            "pk_build join has duplicate build keys");
      }
      jb->single.push_back(static_cast<rid_t>(a));
    } else {
      uint32_t slot = jb->map.FindOrInsert(
          k, static_cast<uint32_t>(jb->lists.size()));
      if (slot == IntKeyMap::kNotFound) {
        jb->lists.emplace_back();
        slot = static_cast<uint32_t>(jb->lists.size() - 1);
      }
      jb->lists[slot].PushBack(static_cast<rid_t>(a));
    }
  }
  return Status::OK();
}

/// Deep copy of one lineage index (all four physical forms are value types;
/// RidIndex needs an explicit per-list copy only because RidVec copies are
/// exact-capacity).
LineageIndex CopyIndex(const LineageIndex& src) {
  switch (src.kind()) {
    case LineageIndex::Kind::kNone:
      return LineageIndex();
    case LineageIndex::Kind::kArray:
      return LineageIndex::FromArray(src.array());
    case LineageIndex::Kind::kIndex: {
      const RidIndex& in = src.index();
      std::vector<RidVec> lists(in.size());
      for (size_t i = 0; i < in.size(); ++i) lists[i] = in.list(i);
      return LineageIndex::FromIndex(RidIndex::FromLists(std::move(lists)));
    }
    case LineageIndex::Kind::kEncodedArray:
      return LineageIndex::FromEncodedArray(src.encoded_array());
    case LineageIndex::Kind::kEncodedIndex:
      return LineageIndex::FromEncodedPostings(src.encoded_postings());
  }
  return LineageIndex();
}

}  // namespace

Status AnalyzeRefreshability(PlanResult* pr) {
  if (pr == nullptr || pr->refresh == nullptr) {
    return Status::InvalidArgument(
        "no refresh state retained; execute the plan with "
        "CaptureOptions::retain_refresh_state");
  }
  PlanRefreshState& rs = *pr->refresh;
  rs.analyzed = true;
  rs.refreshable = false;
  rs.fallback_reason.clear();
  rs.cache.reset();
  // Rejections are analysis results, not errors: record the reason and
  // return OK so callers can fall back to rebuilds.
  auto reject = [&rs](std::string why) {
    rs.fallback_reason = std::move(why);
    return Status::OK();
  };

  if (pr->HasDeferred()) {
    return reject("deferred capture not finalized (call FinalizeDeferred)");
  }
  if (pr->lineage.evicted()) {
    return reject("lineage evicted by the store budget (lazy fallback only)");
  }
  const CaptureOptions& opts = rs.opts;
  if (opts.mode != CaptureMode::kInject) {
    return reject(std::string("capture mode ") + CaptureModeName(opts.mode) +
                  " (refresh replays capture inline and needs Smoke-I)");
  }
  if (!opts.capture_backward || !opts.capture_forward) {
    return reject("direction pruning active (refresh maintains both "
                  "lineage directions)");
  }
  if (!opts.only_relations.empty()) {
    return reject("relation pruning active (partial capture cannot be "
                  "extended consistently)");
  }

  const LogicalPlan& plan = rs.plan;
  const size_t n = plan.num_nodes();
  const int root = plan.root();

  std::vector<int> parents(n, 0);
  std::set<std::string> scan_labels;
  for (size_t id = 0; id < n; ++id) {
    if (!rs.reachable[id]) continue;
    const PlanNode& node = plan.node(static_cast<int>(id));
    for (int c : node.children) ++parents[static_cast<size_t>(c)];
    switch (node.kind) {
      case PlanOpKind::kScan:
        if (!scan_labels.insert(node.label).second) {
          return reject("duplicate scan label '" + node.label +
                        "' (delta attribution is ambiguous)");
        }
        break;
      case PlanOpKind::kSelect:
      case PlanOpKind::kProject:
      case PlanOpKind::kDerive:
        break;
      case PlanOpKind::kGroupBy:
        if (static_cast<int>(id) != root) {
          return reject("group-by below the plan root (patched aggregates "
                        "would invalidate downstream captures)");
        }
        if (!node.pushdown.empty()) {
          return reject("group-by capture push-down (push-down artifacts "
                        "are not incrementally maintained)");
        }
        break;
      case PlanOpKind::kHashJoin:
        if (plan.node(node.children[0]).kind != PlanOpKind::kScan) {
          return reject("join build side is not a base-table scan");
        }
        if (!node.join.materialize_output) {
          return reject("join output not materialized");
        }
        break;
      default:
        return reject(std::string("plan contains a ") +
                      PlanOpKindName(node.kind) + " node");
    }
  }
  for (size_t id = 0; id < n; ++id) {
    if (rs.reachable[id] && parents[id] > 1) {
      return reject("shared subplan (node '" +
                    plan.node(static_cast<int>(id)).label +
                    "' feeds multiple parents)");
    }
  }
  if (plan.node(root).kind == PlanOpKind::kScan) {
    return reject("plan root is a bare scan");
  }
  if (plan.node(root).kind == PlanOpKind::kGroupBy &&
      rs.results[static_cast<size_t>(root)].group_by == nullptr) {
    return reject("no retained group-by hash handle");
  }

  // With every join build side a direct scan and all other operators unary,
  // the reachable plan is a chain: one probe-path leaf scan (the only
  // relation that can take incremental deltas) with operators stacked on
  // top. Walk it down from the root.
  auto cache = std::make_shared<RefreshPlanCache>();
  int id = root;
  while (plan.node(id).kind != PlanOpKind::kScan) {
    cache->path.push_back(id);
    const PlanNode& node = plan.node(id);
    id = node.kind == PlanOpKind::kHashJoin ? node.children[1]
                                            : node.children[0];
  }
  cache->delta_scan = id;
  std::reverse(cache->path.begin(), cache->path.end());

  // Watermarks come from the composed forward indexes (defined over exactly
  // the rows capture saw), so rows appended after retention but before this
  // analysis still count as pending deltas.
  for (size_t sid = 0; sid < n; ++sid) {
    const PlanNode& node = plan.node(static_cast<int>(sid));
    if (!rs.reachable[sid] || node.kind != PlanOpKind::kScan) continue;
    const int input = pr->lineage.FindInput(node.label);
    if (input < 0) {
      return reject("no composed lineage for relation '" + node.label + "'");
    }
    const TableLineage& tl = pr->lineage.input(static_cast<size_t>(input));
    if (tl.backward.empty() || tl.forward.empty()) {
      return reject("missing composed index for relation '" + node.label +
                    "'");
    }
    cache->scan_rows[static_cast<int>(sid)] = tl.forward.size();
  }

  for (int jid : cache->path) {
    const PlanNode& node = plan.node(jid);
    if (node.kind != PlanOpKind::kHashJoin) continue;
    RefreshPlanCache::JoinBuild& jb = cache->joins[jid];
    const int build_scan = node.children[0];
    SMOKE_RETURN_NOT_OK(BuildJoinCache(
        plan, jid, cache->scan_rows[build_scan], &jb));
  }

  rs.cache = std::move(cache);
  rs.refreshable = true;
  return Status::OK();
}

Status RefreshPlanAppend(PlanResult* pr, RefreshStats* stats) {
  RefreshStats local;
  if (stats == nullptr) stats = &local;
  *stats = RefreshStats{};
  if (pr == nullptr || pr->refresh == nullptr) {
    return Status::InvalidArgument(
        "no refresh state retained; execute the plan with "
        "CaptureOptions::retain_refresh_state");
  }
  PlanRefreshState& rs = *pr->refresh;
  if (!rs.analyzed) SMOKE_RETURN_NOT_OK(AnalyzeRefreshability(pr));
  if (!rs.refreshable) {
    stats->fallback_reason = rs.fallback_reason;
    return Status::OK();
  }
  RefreshPlanCache& cache = *rs.cache;
  const LogicalPlan& plan = rs.plan;
  const LineageCodec codec = rs.opts.lineage_codec;

  // ---- delta detection against the watermarks ----
  for (const auto& [sid, rows] : cache.scan_rows) {
    if (sid == cache.delta_scan) continue;
    const PlanNode& scan = plan.node(sid);
    if (scan.table->num_rows() != rows) {
      stats->table = scan.label;
      stats->fallback_reason =
          "dim-side append: relation '" + scan.label +
          "' feeds a join build side; the retained build map only folds "
          "probe-side deltas — scoped rebuild required";
      return Status::OK();
    }
  }
  const Table* base = plan.node(cache.delta_scan).table;
  const size_t old_n = cache.scan_rows[cache.delta_scan];
  const size_t new_n = base->num_rows();
  stats->table = plan.node(cache.delta_scan).label;
  SMOKE_CHECK(new_n >= old_n);
  if (new_n == old_n) {  // nothing pending: the view is already live
    stats->incremental = true;
    return Status::OK();
  }
  stats->delta_rows = new_n - old_n;

  // ---- the delta pass: replay capture over [old_n, new_n) only ----
  std::vector<Witness> wits(1);
  wits[0].scan = cache.delta_scan;
  wits[0].rids.reserve(new_n - old_n);
  for (size_t r = old_n; r < new_n; ++r) {
    wits[0].rids.push_back(static_cast<rid_t>(r));
  }

  const Table* cur = base;    // frontier: the node output carrying the delta
  size_t cur_old = old_n;     // frontier rows before this batch
  const int root = plan.root();
  const bool group_root = plan.node(root).kind == PlanOpKind::kGroupBy;
  const size_t out_old = pr->output.num_rows();
  GroupByDelta gdelta;

  for (int id : cache.path) {
    const PlanNode& node = plan.node(id);
    Table* out = NodeOutput(pr, id);
    const size_t cur_end = cur->num_rows();
    switch (node.kind) {
      case PlanOpKind::kSelect: {
        CaptureOptions dopts = CaptureOptions::Inject();
        dopts.capture_forward = false;  // witnesses only need backward
        SelectResult sel = SelectExecRange(
            *cur, node.label, static_cast<rid_t>(cur_old),
            static_cast<rid_t>(cur_end), node.predicates, dopts);
        const RidArray& bw = sel.lineage.input(0).backward.array();
        std::vector<size_t> pick(bw.size());
        for (size_t j = 0; j < bw.size(); ++j) pick[j] = bw[j] - cur_old;
        RemapWitnesses(pick, &wits);
        out->AppendAllRows(std::move(sel.output));
        stats->rows_scanned += cur_end - cur_old;
        break;
      }
      case PlanOpKind::kProject: {
        for (size_t r = cur_old; r < cur_end; ++r) {
          for (size_t k = 0; k < node.columns.size(); ++k) {
            out->mutable_column(k).AppendFrom(
                cur->column(static_cast<size_t>(node.columns[k])),
                static_cast<rid_t>(r));
          }
        }
        stats->rows_scanned += cur_end - cur_old;
        break;
      }
      case PlanOpKind::kDerive: {
        std::vector<BoundGroupExpr> bound(node.derives.size());
        for (size_t k = 0; k < node.derives.size(); ++k) {
          SMOKE_CHECK(BoundGroupExpr::Bind(*cur, node.derives[k], &bound[k]));
        }
        const size_t base_cols = cur->num_columns();
        for (size_t r = cur_old; r < cur_end; ++r) {
          out->AppendRowFrom(*cur, static_cast<rid_t>(r));
          for (size_t k = 0; k < bound.size(); ++k) {
            out->mutable_column(base_cols + k)
                .AppendInt(bound[k].Eval(static_cast<rid_t>(r)));
          }
        }
        stats->rows_scanned += cur_end - cur_old;
        break;
      }
      case PlanOpKind::kHashJoin: {
        const RefreshPlanCache::JoinBuild& jb = cache.joins[id];
        const int build_scan = node.children[0];
        const Table* build = plan.node(build_scan).table;
        const size_t build_cols = build->num_columns();
        const std::vector<int64_t>& pkeys = cur->column(
            static_cast<size_t>(node.join.right_key)).ints();
        std::vector<size_t> pick;
        Witness bwit;
        bwit.scan = build_scan;
        // The sequential probe loop of the kernel, over the delta only:
        // probe rows ascending, matches in build scan order.
        for (size_t b = cur_old; b < cur_end; ++b) {
          const uint32_t slot = jb.map.Find(pkeys[b]);
          if (slot == IntKeyMap::kNotFound) continue;
          const rid_t* match = jb.pk ? &jb.single[slot]
                                     : jb.lists[slot].data();
          const size_t nm = jb.pk ? 1 : jb.lists[slot].size();
          for (size_t m = 0; m < nm; ++m) {
            out->AppendRowFrom(*build, match[m]);
            out->AppendRowFrom(*cur, static_cast<rid_t>(b), build_cols);
            pick.push_back(b - cur_old);
            bwit.rids.push_back(match[m]);
          }
        }
        RemapWitnesses(pick, &wits);
        wits.push_back(std::move(bwit));
        stats->rows_scanned += cur_end - cur_old;
        break;
      }
      case PlanOpKind::kGroupBy: {
        GroupByHandle* h =
            rs.results[static_cast<size_t>(root)].group_by.get();
        gdelta = GroupByDeltaAppend(h, *cur, static_cast<rid_t>(cur_old),
                                    &pr->output);
        stats->rows_scanned += cur_end - cur_old;
        break;
      }
      default:
        SMOKE_CHECK(false);
    }
    cur = out;
    cur_old = out->num_rows() -
              (node.kind == PlanOpKind::kGroupBy
                   ? 0  // group output rows are patched, not all appended
                   : wits[0].rids.size());
    if (node.kind != PlanOpKind::kGroupBy) {
      // All witness columns stay aligned with the node's delta output rows.
      SMOKE_DCHECK(cur_old + wits[0].rids.size() == out->num_rows());
    }
  }

  // ---- composed-index maintenance ----
  size_t edges = 0;
  const size_t dn = wits[0].rids.size();  // delta rows at the root's input
  for (size_t i = 0; i < pr->lineage.num_inputs(); ++i) {
    TableLineage& tl = pr->lineage.mutable_input(i);
    const Witness* wit = nullptr;
    for (const Witness& w : wits) {
      if (plan.node(w.scan).label == tl.table_name) {
        wit = &w;
        break;
      }
    }
    SMOKE_CHECK(wit != nullptr);  // chain shape: every scan is on the path
    const bool is_delta_rel = wit->scan == cache.delta_scan;

    if (!group_root) {
      // Backward is 1:1 per relation: one new entry per delta output row.
      for (size_t j = 0; j < dn; ++j) {
        AppendArrayValue(&tl.backward, wit->rids[j]);
      }
      edges += dn;
      if (is_delta_rel) {
        // New source positions for the appended base rows.
        if (tl.forward.IsOneToOne()) {
          std::vector<rid_t> inv(new_n - old_n, kInvalidRid);
          for (size_t j = 0; j < dn; ++j) {
            SMOKE_DCHECK(inv[wit->rids[j] - old_n] == kInvalidRid);
            inv[wit->rids[j] - old_n] = static_cast<rid_t>(out_old + j);
          }
          for (rid_t v : inv) AppendArrayValue(&tl.forward, v);
          edges += inv.size();
        } else {
          std::vector<std::vector<rid_t>> lists(new_n - old_n);
          for (size_t j = 0; j < dn; ++j) {
            lists[wit->rids[j] - old_n].push_back(
                static_cast<rid_t>(out_old + j));
          }
          for (const auto& l : lists) {
            AppendIndexList(&tl.forward, l.data(), l.size(), codec);
            edges += l.size();
          }
        }
      } else {
        // Static build relation: new output rids extend existing lists at
        // the tail (output rids are ascending, lists stay sorted-deduped).
        for (size_t j = 0; j < dn; ++j) {
          const rid_t o = static_cast<rid_t>(out_old + j);
          ExtendIndexList(&tl.forward, wit->rids[j], &o, 1);
        }
        edges += dn;
      }
    } else {
      const size_t old_ng = gdelta.old_num_groups;
      // Backward: existing groups extend their lists in delta encounter
      // order (== full re-execution's input scan order); new groups append
      // whole lists in slot order.
      std::vector<std::vector<rid_t>> fresh(
          pr->output.num_rows() - old_ng);
      for (size_t j = 0; j < dn; ++j) {
        const uint32_t slot = gdelta.slots[j];
        if (slot >= old_ng) {
          fresh[slot - old_ng].push_back(wit->rids[j]);
        } else {
          ExtendIndexList(&tl.backward, slot, &wit->rids[j], 1);
        }
      }
      for (const auto& l : fresh) {
        AppendIndexList(&tl.backward, l.data(), l.size(), codec);
      }
      edges += dn;
      if (is_delta_rel) {
        if (tl.forward.IsOneToOne()) {
          std::vector<rid_t> inv(new_n - old_n, kInvalidRid);
          for (size_t j = 0; j < dn; ++j) {
            SMOKE_DCHECK(inv[wit->rids[j] - old_n] == kInvalidRid);
            inv[wit->rids[j] - old_n] = gdelta.slots[j];
          }
          for (rid_t v : inv) AppendArrayValue(&tl.forward, v);
          edges += inv.size();
        } else {
          std::vector<std::vector<rid_t>> lists(new_n - old_n);
          for (size_t j = 0; j < dn; ++j) {
            lists[wit->rids[j] - old_n].push_back(gdelta.slots[j]);
          }
          for (auto& l : lists) {
            std::sort(l.begin(), l.end());
            l.erase(std::unique(l.begin(), l.end()), l.end());
            AppendIndexList(&tl.forward, l.data(), l.size(), codec);
            edges += l.size();
          }
        }
      } else {
        // Static relation under a group root: a build row may gain a group
        // it already fed (no-op), an existing group it never fed (sorted
        // mid-list insert), or a new group (tail append) — the one
        // maintenance case that is not purely append-shaped.
        for (size_t j = 0; j < dn; ++j) {
          InsertSortedIntoIndexList(&tl.forward, wit->rids[j],
                                    gdelta.slots[j]);
        }
        edges += dn;
      }
    }
  }
  stats->index_bytes_appended = edges * sizeof(rid_t);

  if (group_root) {
    stats->groups_touched = gdelta.touched.size();
    stats->new_groups = pr->output.num_rows() - gdelta.old_num_groups;
    stats->output_rows_appended = stats->new_groups;
  } else {
    stats->output_rows_appended = pr->output.num_rows() - out_old;
  }
  pr->output_cardinality = pr->output.num_rows();
  pr->lineage.set_output_cardinality(pr->output_cardinality);
  cache.scan_rows[cache.delta_scan] = new_n;
  stats->incremental = true;
  return Status::OK();
}

Status RebuildRetainedPlan(PlanResult* pr) {
  if (pr == nullptr || pr->refresh == nullptr) {
    return Status::InvalidArgument(
        "no refresh state retained; cannot rebuild without the plan");
  }
  // Keep the state alive across the overwrite of *pr: the plan being
  // re-executed lives inside it.
  std::shared_ptr<PlanRefreshState> rs = pr->refresh;
  CaptureOptions opts = rs->opts;
  opts.optimize = false;  // the stashed plan is the optimized one
  PlanResult fresh;
  SMOKE_RETURN_NOT_OK(ExecutePlan(rs->plan, opts, &fresh));
  *pr = std::move(fresh);
  return AnalyzeRefreshability(pr);
}

Status ClonePlanResultForServe(
    const PlanResult& src,
    const std::unordered_map<const Table*, const Table*>& rebind,
    PlanResult* out) {
  if (src.HasDeferred()) {
    return Status::InvalidArgument(
        "cannot clone a result with pending deferred capture");
  }
  if (src.spja_artifacts != nullptr) {
    return Status::InvalidArgument(
        "cannot clone a result with SPJA block artifacts");
  }
  PlanResult copy;
  copy.output = src.output;
  copy.output_cardinality = src.output_cardinality;
  copy.owned_tables = src.owned_tables;
  for (size_t i = 0; i < src.lineage.num_inputs(); ++i) {
    const TableLineage& in = src.lineage.input(i);
    const Table* table = in.table;
    if (auto it = rebind.find(table); it != rebind.end()) table = it->second;
    TableLineage& tl = copy.lineage.AddInput(in.table_name, table);
    tl.backward = CopyIndex(in.backward);
    tl.forward = CopyIndex(in.forward);
  }
  copy.lineage.set_output_cardinality(src.lineage.output_cardinality());
  copy.lineage.set_evicted(src.lineage.evicted());
  *out = std::move(copy);
  return Status::OK();
}

// ---- RefreshManager ----

Status RefreshManager::RegisterTable(const std::string& name, Table* table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  tables_[name] = table;
  return Status::OK();
}

Status RefreshManager::RegisterView(const std::string& name,
                                    PlanResult* view) {
  if (view == nullptr) return Status::InvalidArgument("null view");
  for (const auto& [vname, v] : views_) {
    (void)v;
    if (vname == name) return Status::AlreadyExists("view '" + name + "'");
  }
  SMOKE_RETURN_NOT_OK(AnalyzeRefreshability(view));
  views_.emplace_back(name, view);
  return Status::OK();
}

Status RefreshManager::AppendBatch(const std::string& table,
                                   const Table& rows,
                                   std::vector<RefreshStats>* stats) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table '" + table + "'");
  Table* dst = it->second;
  if (rows.num_columns() != dst->num_columns()) {
    return Status::InvalidArgument("AppendBatch('" + table +
                                   "'): column count mismatch");
  }
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    dst->AppendRowFrom(rows, static_cast<rid_t>(r));
  }
  for (auto& [vname, view] : views_) {
    RefreshStats s;
    SMOKE_RETURN_NOT_OK(RefreshPlanAppend(view, &s));
    if (!s.incremental) {
      // Scoped rebuild fallback; keep the reason the delta pass reported.
      std::string reason = s.fallback_reason;
      SMOKE_RETURN_NOT_OK(RebuildRetainedPlan(view));
      s = RefreshStats{};
      s.table = table;
      s.delta_rows = rows.num_rows();
      s.fallback_reason = std::move(reason);
      s.output_rows_appended = view->output.num_rows();
      s.rows_scanned = 0;  // the rebuild re-scanned everything, not a delta
    }
    s.target = vname;
    last_[vname] = s;
    if (stats != nullptr) stats->push_back(std::move(s));
  }
  return Status::OK();
}

const RefreshStats* RefreshManager::LastStats(const std::string& view) const {
  auto it = last_.find(view);
  return it == last_.end() ? nullptr : &it->second;
}

}  // namespace smoke
