// Incremental capture & live refresh: retained plans become live views
// (paper Section 2.1, footnote 1: Smoke's query model includes refresh and
// forward propagation in addition to backward/forward lineage queries —
// here generalized from the single group-by kernel to whole retained plans).
//
// A plan executed with CaptureOptions::retain_refresh_state keeps, alongside
// its composed end-to-end indexes, the per-operator intermediate outputs and
// group-by hash handles (PlanRefreshState, plan/executor.h). When a base
// relation grows, the delta pass here re-runs capture over ONLY the appended
// rid range and extends everything in place:
//
//  - selects / projects / derives emit output fragments for the delta rows
//    and append them to the retained intermediate outputs;
//  - hash joins probe the delta against a cached build-side map (the build
//    relation is static — a delta arriving on the build side instead falls
//    back to a scoped rebuild with an explicit RefreshStats reason);
//  - a group-by at the plan root folds the delta into its retained γht
//    handle (GroupByDeltaAppend): new groups append output rows, updated
//    groups patch their finalized aggregates in place;
//  - the composed backward/forward indexes grow through the append builders
//    in lineage/fragment_merge.h, which dispatch over raw AND store-encoded
//    forms — so refresh works directly on kAdaptive-encoded retained
//    indexes, routing new posting lists through the PostingsBuilder encode
//    path.
//
// Because rid spaces are monotonic (appends only), every index maintenance
// operation is append-shaped and the refreshed result — output rows, group
// slots, and both lineage directions — is bit-identical to dropping the
// view and re-executing the plan from scratch (tests/refresh_property_test).
//
// Refreshability matrix (AnalyzeRefreshability):
//
//   node kind     | refreshable when
//   --------------+------------------------------------------------------
//   Scan          | always (append-only base relation)
//   Select        | always
//   Project       | always
//   Derive        | always
//   HashJoin      | build child is a DIRECT base-table scan and the delta
//                 | arrives via the probe subtree; materialized output
//   GroupBy       | only at the plan root, without capture push-downs
//   SetOp         | never
//   SpjaBlock     | never
//   Trace         | never
//
// plus plan-level requirements: Smoke-I (inject) capture, both directions,
// no relation pruning, no shared subplans, no duplicate scan labels, no
// pending deferred capture, lineage not evicted. Everything else reports a
// precise fallback_reason and is served by a full rebuild.
#ifndef SMOKE_REFRESH_REFRESH_H_
#define SMOKE_REFRESH_REFRESH_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/rid_vec.h"
#include "common/status.h"
#include "engine/group_by.h"
#include "plan/executor.h"
#include "storage/table.h"

namespace smoke {

/// What one delta batch did to one retained view (per-batch observability;
/// the serving layer surfaces these through ServeCore::LastRefreshStats).
struct RefreshStats {
  std::string target;  ///< retained view / plan name (filled by callers)
  std::string table;   ///< base relation the delta landed on

  /// True when the view was maintained incrementally; false means the delta
  /// pass did not run (see fallback_reason) and the caller either rebuilt
  /// the view or left it refusing.
  bool incremental = false;
  std::string fallback_reason;  ///< why not, when !incremental

  size_t delta_rows = 0;     ///< appended base rows in this batch
  size_t rows_scanned = 0;   ///< rows the delta pass actually touched
  size_t groups_touched = 0; ///< group-by root: distinct groups updated
  size_t new_groups = 0;     ///< group-by root: groups created by the delta
  size_t output_rows_appended = 0;
  /// Lineage edges appended across all composed indexes, in rid_t bytes
  /// (logical volume — the store codec may pack them tighter).
  size_t index_bytes_appended = 0;
};

/// Per-plan scratch the refresh subsystem caches on PlanRefreshState
/// (forward-declared in plan/executor.h): the analyzed delta path plus the
/// rebuilt join build-side maps, so each batch probes instead of rebuilding.
struct RefreshPlanCache {
  /// Operator node ids on the unique path delta-scan -> root, bottom-up.
  std::vector<int> path;
  /// The one scan whose table may receive incremental deltas (the leaf of
  /// the probe chain; every other scan feeds a join build side).
  int delta_scan = -1;
  /// Scan node id -> base rows already folded into the view. Compared
  /// against the live tables to detect deltas (and dim-side appends).
  std::map<int, size_t> scan_rows;

  /// Cached build side of one hash join: key -> build rids in scan order
  /// (the probe loop's match order, so delta outputs replicate the
  /// sequential kernel exactly).
  struct JoinBuild {
    IntKeyMap map{64};
    std::vector<RidVec> lists;   ///< slot -> build rids (non-pk)
    std::vector<rid_t> single;   ///< slot -> build rid (pk_build)
    bool pk = false;
  };
  std::map<int, JoinBuild> joins;  ///< join node id -> build map
};

/// Analyzes a retained plan's refresh state against the matrix above,
/// filling refresh->analyzed / refreshable / fallback_reason and building
/// the RefreshPlanCache (delta path, join build maps, base-row watermarks).
/// Idempotent; called automatically by the first RefreshPlanAppend and by
/// the engine/serving integration right after retention. Errors only on
/// misuse (no refresh state retained at all).
Status AnalyzeRefreshability(PlanResult* pr);

/// Runs the delta pass: detects which base relations grew since the last
/// sync (via the cached watermarks), re-runs capture over the appended rid
/// ranges, extends the intermediate outputs, the root output, and every
/// composed index in place, and fills `stats`.
///
/// Always returns OK unless misused; when the view cannot be maintained
/// (not refreshable, or the delta landed on a join build side), the view is
/// left UNTOUCHED, stats->incremental is false and stats->fallback_reason
/// says why — the caller decides between RebuildRetainedPlan and refusal.
Status RefreshPlanAppend(PlanResult* pr, RefreshStats* stats);

/// Scoped rebuild fallback: re-executes the retained (already optimized)
/// plan stashed in the refresh state against the current base tables,
/// replaces *pr, and re-analyzes. Lineage is left raw — callers owning a
/// store policy (SmokeEngine) re-encode afterwards.
Status RebuildRetainedPlan(PlanResult* pr);

/// Deep-copies a finalized retained result for the serving layer: output,
/// composed lineage and cardinality are cloned, with every borrowed Table*
/// in `rebind` swapped for its replacement (a snapshot's own table copies).
/// Refresh/deferred state and explain records are not cloned — the copy is
/// an immutable published artifact. Fails on results that still hold
/// deferred capture or SPJA block artifacts (those views re-execute).
Status ClonePlanResultForServe(
    const PlanResult& src,
    const std::unordered_map<const Table*, const Table*>& rebind,
    PlanResult* out);

/// \brief Standalone registry tying append-only base tables to retained
/// live views (the engine-free counterpart of SmokeEngine::AppendRows, used
/// by tests, benches and examples that execute plans directly).
///
/// Tables and views are borrowed and must outlive the manager. Registered
/// views are analyzed once; AppendBatch appends the rows, then maintains
/// every registered view — incrementally when the analysis and the delta
/// placement allow it, otherwise by scoped rebuild (RebuildRetainedPlan)
/// with the reason recorded in that batch's RefreshStats.
class RefreshManager {
 public:
  RefreshManager() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(RefreshManager);

  /// Registers an append-only base relation by name.
  Status RegisterTable(const std::string& name, Table* table);

  /// Registers a retained view (a PlanResult executed with
  /// retain_refresh_state) and analyzes its refreshability. Views that
  /// analyze as non-refreshable are still accepted — they are maintained by
  /// rebuild on every batch that touches their inputs.
  Status RegisterView(const std::string& name, PlanResult* view);

  /// Appends `rows` to the registered table and maintains every registered
  /// view. Per-view RefreshStats for this batch are appended to `stats`
  /// (when non-null) and retained for LastStats.
  Status AppendBatch(const std::string& table, const Table& rows,
                     std::vector<RefreshStats>* stats = nullptr);

  /// The stats of `view` from the most recent AppendBatch, or null.
  const RefreshStats* LastStats(const std::string& view) const;

 private:
  std::map<std::string, Table*> tables_;
  std::vector<std::pair<std::string, PlanResult*>> views_;  // registration order
  std::map<std::string, RefreshStats> last_;
};

// ---- single-kernel refresh (the original engine/refresh API, re-homed) ----

/// Incrementally maintains `result` after rows [first_new_rid, input rows)
/// were appended to `input`. Requires result->handle and Inject-captured
/// lineage. Returns the output rids whose aggregates changed (new groups
/// are returned too, in output order). Implemented in engine/group_by.cc
/// for access to the kernel internals.
std::vector<rid_t> RefreshAppend(GroupByResult* result, const Table& input,
                                 rid_t first_new_rid);

/// Recomputes the output groups affected by in-place updates to the given
/// input rows (group-by key columns must be unchanged — key changes require
/// re-running the query). Returns the affected output rids.
std::vector<rid_t> ForwardPropagate(GroupByResult* result, const Table& input,
                                    const std::vector<rid_t>& updated_rids);

}  // namespace smoke

#endif  // SMOKE_REFRESH_REFRESH_H_
