#include "shard/sharded_table.h"

#include <algorithm>
#include <utility>

namespace smoke {

Status ShardedTable::Create(const Table* base, const ShardingSpec& spec,
                            ShardedTable* out) {
  if (base == nullptr) {
    return Status::InvalidArgument("sharded table needs a base table");
  }
  if (spec.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (spec.column < 0 ||
      static_cast<size_t>(spec.column) >= base->num_columns()) {
    return Status::InvalidArgument("sharding column out of range");
  }
  const Column& col = base->column(static_cast<size_t>(spec.column));
  if (col.type() != DataType::kInt64) {
    return Status::InvalidArgument(
        "sharding column must be int64 ('" +
        base->schema().field(static_cast<size_t>(spec.column)).name + "' is " +
        DataTypeName(col.type()) + ")");
  }

  const std::vector<int64_t>& vals = col.ints();
  const size_t n = vals.size();
  std::vector<uint32_t> assign(n, 0);
  if (spec.kind == ShardingSpec::Kind::kHash) {
    for (size_t i = 0; i < n; ++i) {
      assign[i] = ShardOfHash(vals[i], spec.num_shards);
    }
  } else {
    // Equal-width ranges over the observed value domain. The last shard
    // absorbs the rounding remainder.
    int64_t lo = 0, hi = 0;
    if (n > 0) {
      auto [mn, mx] = std::minmax_element(vals.begin(), vals.end());
      lo = *mn;
      hi = *mx;
    }
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    const uint64_t width =
        std::max<uint64_t>(1, (span + spec.num_shards - 1) / spec.num_shards);
    for (size_t i = 0; i < n; ++i) {
      uint64_t off = static_cast<uint64_t>(vals[i] - lo);
      assign[i] = static_cast<uint32_t>(
          std::min<uint64_t>(off / width, spec.num_shards - 1));
    }
  }

  ShardedTable st;
  st.base_ = base;
  st.spec_ = spec;
  st.map_ = ShardMap::FromAssignment(std::move(assign), spec.num_shards);
  st.shards_.reserve(spec.num_shards);
  for (uint32_t s = 0; s < spec.num_shards; ++s) {
    Table slice(base->schema());
    const std::vector<rid_t>& globals = st.map_.globals_of(s);
    slice.Reserve(globals.size());
    for (rid_t g : globals) slice.AppendRowFrom(*base, g);
    st.shards_.push_back(std::move(slice));
  }
  *out = std::move(st);
  return Status::OK();
}

}  // namespace smoke
