// Sharded plan execution with cross-shard lineage composition.
//
// The coordinator compiles a LogicalPlan whose scans touch sharded tables
// (shard/sharded_table.h) into per-shard subplans plus exchange/merge steps
// — the per-segment plan + motion architecture of MPP engines, carried over
// with Smoke's twist: lineage composes across the shard boundary exactly as
// it does across morsels.
//
//   1. Classification. The lowest-cost sharded scan becomes the *driver*;
//      the maximal subtree above it built from select/project/derive nodes
//      and hash joins probing the driver side is the *sharded region*. Join
//      build sides are executed once on the coordinator and broadcast (or,
//      when both join children are direct scans of tables hash-sharded on
//      the join keys with equal shard counts, read co-located from the
//      build table's own slices). Everything above the region runs on the
//      coordinator as an ordinary unsharded plan.
//   2. Per-shard execution. Each shard runs the unmodified morsel-parallel
//      executor over its slice. Per-row *order keys* — the driver's global
//      rid recovered from the shard's composed backward index — drive a
//      stable gather merge that restores the exact unsharded row order.
//   3. Exchange. A group-by directly above the region becomes a
//      partial-aggregate exchange: each shard aggregates locally, the
//      coordinator merges partial states (AggLayout::Merge) keyed by the
//      encoded group key, orders merged groups by first-encounter order
//      key, and finalizes. (Floating-point SUM/AVG accumulate per shard
//      before merging, so results are bit-identical whenever the summed
//      values are exactly representable — integers, counts — and agree to
//      reassociation otherwise.)
//   4. Lineage. Per-shard indexes are remapped through the ShardMap codec
//      and concatenated in gather order into region-level indexes, then
//      composed (lineage/compose.h) with the coordinator plan's lineage —
//      the same associativity that makes morsel fragment merging exact.
//
// Backward traces over a retained sharded result fan out only to the shards
// the traced rid set touches (the skip-index idea at shard granularity):
// ShardedExecution keeps the per-shard driver indexes plus the
// output→region chain, probes owner shards only, and reports
// ShardTraceStats so callers can see the fan-out.
#ifndef SMOKE_SHARD_COORDINATOR_H_
#define SMOKE_SHARD_COORDINATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "plan/executor.h"
#include "shard/sharded_table.h"

namespace smoke {

/// Fan-out accounting of one backward trace over a sharded result.
struct ShardTraceStats {
  size_t shards_total = 0;
  size_t shards_visited = 0;
  size_t rids_traced = 0;
};

/// \brief Retained fan-out state of one sharded execution: enough to answer
/// backward traces to the driver relation by probing only the shards the
/// seed rids touch, bit-identical to probing the composed index.
struct ShardedExecution {
  /// Scan label of the driver relation (the sharded lineage endpoint
  /// fan-out applies to; other relations answer from the composed lineage).
  std::string driver_relation;
  /// Borrowed codec of the driver's sharded table (owned by the engine's
  /// ShardedTable; DropTable refuses while results borrow it).
  const ShardMap* map = nullptr;
  /// Final output position -> sharded-region row positions. Identity when
  /// the region root was the plan root.
  LineageIndex to_region;
  bool to_region_identity = false;
  /// Region row position -> (shard, shard-local row position).
  std::vector<ShardLoc> owner;
  /// Per shard: local region row -> local driver rid (each shard's composed
  /// subtree backward index, kept un-gathered for fan-out probing).
  std::vector<LineageIndex> shard_backward;

  size_t num_shards() const { return shard_backward.size(); }

  /// Lb(out_rids, driver_relation) probing only owner shards. Identical
  /// rids (order and multiplicity, first-encounter dedup when `dedup`) to a
  /// trace over the composed index. `stats` (optional) reports fan-out.
  Status TraceBackward(const std::vector<rid_t>& out_rids, bool dedup,
                       std::vector<rid_t>* rids,
                       ShardTraceStats* stats) const;
};

/// Result of a sharded plan execution: a PlanResult bit-identical to the
/// unsharded executor's (output rows, order, composed lineage), plus the
/// retained fan-out state (null when the plan touched no sharded table, or
/// when capture was off).
struct ShardedPlanResult {
  PlanResult plan;
  std::unique_ptr<ShardedExecution> shard;
};

/// Maps base-table pointers (what plan scans hold) to their sharded form.
using ShardResolver = std::unordered_map<const Table*, const ShardedTable*>;

/// Executes `plan` sharded per `sharded` with the capture technique in
/// `opts`. Plans that scan no sharded table fall through to the unsharded
/// executor. Rejects defer_plan_finalize (sharded lineage composes eagerly)
/// and the logic/physical baseline modes.
Status ExecuteShardedPlan(const LogicalPlan& plan, const ShardResolver& sharded,
                          const CaptureOptions& opts, ShardedPlanResult* out);

}  // namespace smoke

#endif  // SMOKE_SHARD_COORDINATOR_H_
