#include "shard/coordinator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "engine/group_by.h"
#include "engine/key_encode.h"
#include "lineage/compose.h"
#include "optimizer/optimizer.h"

namespace smoke {

namespace {

/// Label of the synthetic scan that stands in for the sharded region (or the
/// exchange output) inside the coordinator's remainder plan. Never emitted:
/// the final lineage speaks the original scan labels.
const char kBoundaryLabel[] = "__shard_boundary";

/// An accumulated output→region (or region→output) mapping; identity when
/// the region root is the plan root.
struct Chain {
  LineageIndex index;
  bool identity = false;
};

LineageIndex ComposeBackwardChain(const Chain& outer, LineageIndex inner) {
  if (outer.identity) return inner;
  return ComposeBackward(outer.index, inner);
}

LineageIndex ComposeForwardChain(LineageIndex inner, const Chain& outer) {
  if (outer.identity) return inner;
  return ComposeForward(inner, outer.index);
}

/// The single related rid of a 1:1 backward index at `pos` (defensive over
/// physical forms: composed subtree backward indexes to the driver are 1:1
/// by construction — every region row has exactly one driver ancestor).
rid_t SingleRidAt(const LineageIndex& idx, rid_t pos) {
  if (idx.IsOneToOne()) return idx.ValueAt(pos);
  rid_t found = kInvalidRid;
  idx.ForEachRelated(pos, [&found](rid_t r) {
    SMOKE_DCHECK(found == kInvalidRid);
    found = r;
  });
  SMOKE_DCHECK(found != kInvalidRid);
  return found;
}

/// One base-scan stand-in inside the per-shard template plan.
struct TemplateScan {
  enum class Kind : uint8_t {
    kDriver,     ///< the sharded driver scan — reads its shard slice
    kColocated,  ///< co-located build scan — reads the build table's slice
    kBroadcast,  ///< build child was a base scan — every shard reads it
    kPrep,       ///< build child was an operator — reads its prepared output
  };
  Kind kind = Kind::kDriver;
  int orig_id = -1;
  const ShardedTable* sh = nullptr;  ///< kDriver / kColocated
  int prep = -1;                     ///< kPrep: index into preps
};

/// Classification of the plan around one candidate driver scan.
struct Region {
  int driver = -1;
  int root = -1;                ///< region root R (== driver when trivial)
  std::vector<int> spine;       ///< driver .. root
  int exchange = -1;            ///< group-by fused as partial-agg exchange
  /// Spine joins' build children, in spine order.
  struct Build {
    int join = -1;
    int child = -1;
    bool colocated = false;
    bool is_scan = false;
    const ShardedTable* sh = nullptr;  ///< co-located build table
  };
  std::vector<Build> builds;
};

/// All nodes reachable downward from `id` (inclusive).
std::vector<int> DownSet(const LogicalPlan& plan, int id) {
  std::vector<int> out;
  std::vector<uint8_t> seen(plan.num_nodes(), 0);
  std::vector<int> stack = {id};
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(u)]) continue;
    seen[static_cast<size_t>(u)] = 1;
    out.push_back(u);
    for (int c : plan.node(u).children) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// True when the subtree under build child `b` is isolated: no node in it is
/// reached from outside except `b` itself through its spine join `join`.
/// Isolation is what lets the coordinator execute the build side once and
/// broadcast it without replaying the original DAG's lineage merges.
bool BuildIsolated(const LogicalPlan& plan,
                   const std::vector<std::vector<int>>& parents, int join,
                   int b) {
  std::vector<int> down = DownSet(plan, b);
  std::vector<uint8_t> in(plan.num_nodes(), 0);
  for (int u : down) in[static_cast<size_t>(u)] = 1;
  for (int u : down) {
    for (int p : parents[static_cast<size_t>(u)]) {
      if (in[static_cast<size_t>(p)]) continue;
      if (u == b && p == join) continue;
      return false;
    }
  }
  // b must be consumed by the join exactly once (a self-join of b against
  // itself cannot broadcast one side).
  int uses = 0;
  for (int p : parents[static_cast<size_t>(b)]) uses += (p == join);
  return uses == 1 && parents[static_cast<size_t>(b)].size() == 1;
}

/// Climbs the maximal sharded region above `driver`.
Region ClassifyFrom(const LogicalPlan& plan, const ShardResolver& sharded,
                    const std::vector<std::vector<int>>& parents, int driver) {
  Region r;
  r.driver = driver;
  r.spine = {driver};
  const ShardedTable* st = sharded.at(plan.node(driver).table);
  int cur = driver;
  for (;;) {
    const auto& ps = parents[static_cast<size_t>(cur)];
    if (ps.size() != 1) break;
    const int p = ps[0];
    const PlanNode& pn = plan.node(p);
    if (pn.kind == PlanOpKind::kSelect || pn.kind == PlanOpKind::kProject ||
        pn.kind == PlanOpKind::kDerive) {
      r.spine.push_back(p);
      cur = p;
      continue;
    }
    if (pn.kind == PlanOpKind::kHashJoin && pn.children[1] == cur &&
        pn.children[0] != cur) {
      const int b = pn.children[0];
      if (!BuildIsolated(plan, parents, p, b)) break;
      Region::Build bd;
      bd.join = p;
      bd.child = b;
      const PlanNode& bn = plan.node(b);
      bd.is_scan = bn.kind == PlanOpKind::kScan;
      // Co-located build: both join children are direct scans of tables
      // hash-sharded on their join keys with equal shard counts — matching
      // keys land in the same shard (ShardOfHash is shared), so each shard
      // builds from its own build slice instead of the broadcast table.
      if (bd.is_scan && cur == driver &&
          st->spec().kind == ShardingSpec::Kind::kHash &&
          pn.join.right_key == st->spec().column) {
        auto it = sharded.find(bn.table);
        if (it != sharded.end() &&
            it->second->spec().kind == ShardingSpec::Kind::kHash &&
            it->second->num_shards() == st->num_shards() &&
            pn.join.left_key == it->second->spec().column) {
          bd.colocated = true;
          bd.sh = it->second;
        }
      }
      r.builds.push_back(bd);
      r.spine.push_back(p);
      cur = p;
      continue;
    }
    break;
  }
  r.root = r.spine.back();
  // Partial-aggregate exchange: a group-by (no push-down — push-down rids
  // are relation rids, which partial aggregation would not preserve)
  // consuming the region root as its only parent.
  const auto& rps = parents[static_cast<size_t>(r.root)];
  if (rps.size() == 1) {
    const PlanNode& pn = plan.node(rps[0]);
    if (pn.kind == PlanOpKind::kGroupBy && pn.pushdown.empty()) {
      r.exchange = rps[0];
    }
  }
  return r;
}

/// Clears pruned directions/relations from emitted lineage, matching the
/// unsharded executor's observable pruning semantics (pruned entries exist
/// but stay empty).
void ApplyUserPruning(QueryLineage* lineage, const CaptureOptions& opts) {
  for (size_t i = 0; i < lineage->num_inputs(); ++i) {
    TableLineage& in = lineage->mutable_input(i);
    if (!opts.WantsTable(in.table_name)) {
      in.backward = LineageIndex();
      in.forward = LineageIndex();
      continue;
    }
    if (!opts.capture_backward) in.backward = LineageIndex();
    if (!opts.capture_forward) in.forward = LineageIndex();
  }
}

/// Internal capture configuration for coordinator-run sub-plans.
CaptureOptions InnerOpts(const CaptureOptions& user, bool backward,
                         bool forward) {
  CaptureOptions o;
  o.mode = (backward || forward) ? CaptureMode::kInject : CaptureMode::kNone;
  o.capture_backward = backward;
  o.capture_forward = forward;
  o.num_threads = user.num_threads;
  o.scheduler = user.scheduler;
  o.morsel_rows = user.morsel_rows;
  o.optimize = false;
  return o;
}

}  // namespace

Status ShardedExecution::TraceBackward(const std::vector<rid_t>& out_rids,
                                       bool dedup, std::vector<rid_t>* rids,
                                       ShardTraceStats* stats) const {
  rids->clear();
  std::vector<uint8_t> visited(shard_backward.size(), 0);
  std::unordered_set<rid_t> seen;
  std::vector<rid_t> region_rows;
  for (rid_t o : out_rids) {
    region_rows.clear();
    if (to_region_identity) {
      if (static_cast<size_t>(o) >= owner.size()) {
        return Status::InvalidArgument("output rid out of range");
      }
      region_rows.push_back(o);
    } else {
      if (static_cast<size_t>(o) >= to_region.size()) {
        return Status::InvalidArgument("output rid out of range");
      }
      to_region.TraceInto(o, &region_rows);
    }
    for (rid_t q : region_rows) {
      const ShardLoc& loc = owner[q];
      visited[loc.shard] = 1;
      shard_backward[loc.shard].ForEachRelated(loc.local, [&](rid_t local) {
        rid_t g = map->ToGlobal(loc.shard, local);
        if (!dedup || seen.insert(g).second) rids->push_back(g);
      });
    }
  }
  if (stats != nullptr) {
    stats->shards_total = shard_backward.size();
    stats->shards_visited = 0;
    for (uint8_t v : visited) stats->shards_visited += v;
    stats->rids_traced = rids->size();
  }
  return Status::OK();
}

Status ExecuteShardedPlan(const LogicalPlan& plan, const ShardResolver& sharded,
                          const CaptureOptions& opts, ShardedPlanResult* out) {
  if (plan.root() < 0) return Status::InvalidArgument("plan has no root");

  // Optimize first so classification sees the final (rewritten) DAG; the
  // rewrites preserve results and lineage bit-identically either way.
  if (opts.optimize) {
    LogicalPlan optimized;
    PlanExplain explain;
    SMOKE_RETURN_NOT_OK(OptimizePlan(plan, &optimized, &explain));
    CaptureOptions inner = opts;
    inner.optimize = false;
    SMOKE_RETURN_NOT_OK(ExecuteShardedPlan(optimized, sharded, inner, out));
    out->plan.explain = std::move(explain);
    return Status::OK();
  }

  const int root = plan.root();
  const size_t n = plan.num_nodes();

  std::vector<uint8_t> reachable(n, 0);
  {
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      int id = stack.back();
      stack.pop_back();
      if (reachable[static_cast<size_t>(id)]) continue;
      reachable[static_cast<size_t>(id)] = 1;
      for (int c : plan.node(id).children) stack.push_back(c);
    }
  }

  std::vector<int> sharded_scans;
  for (size_t id = 0; id < n; ++id) {
    if (!reachable[id]) continue;
    const PlanNode& node = plan.node(static_cast<int>(id));
    if (node.kind == PlanOpKind::kScan &&
        sharded.count(node.table) != 0) {
      sharded_scans.push_back(static_cast<int>(id));
    }
  }
  if (sharded_scans.empty() || plan.node(root).kind == PlanOpKind::kScan) {
    // Nothing sharded (or the root-is-scan error path): plain execution.
    out->shard.reset();
    return ExecutePlan(plan, opts, &out->plan);
  }

  if (opts.mode != CaptureMode::kNone && !IsSmokeMode(opts.mode)) {
    return Status::Unsupported(
        "sharded execution supports the Smoke capture modes only "
        "(kNone/kInject/kDefer)");
  }
  if (opts.defer_plan_finalize) {
    return Status::Unsupported(
        "sharded execution composes cross-shard lineage eagerly; "
        "defer_plan_finalize is not supported — drop the flag or execute "
        "unsharded");
  }

  std::vector<std::vector<int>> parents(n);
  for (size_t id = 0; id < n; ++id) {
    if (!reachable[id]) continue;
    for (int c : plan.node(static_cast<int>(id)).children) {
      parents[static_cast<size_t>(c)].push_back(static_cast<int>(id));
    }
  }

  // Pick the driver: the sharded scan with the tallest region (most work
  // pushed down to the shards); ties go to the lowest node id.
  Region region;
  for (int cand : sharded_scans) {
    Region r = ClassifyFrom(plan, sharded, parents, cand);
    if (region.driver < 0 || r.spine.size() > region.spine.size()) {
      region = std::move(r);
    }
  }
  const int driver = region.driver;
  const std::string& driver_label = plan.node(driver).label;
  const ShardedTable* st = sharded.at(plan.node(driver).table);
  const ShardMap& smap = st->map();
  const uint32_t S = st->num_shards();

  const bool capture = opts.mode != CaptureMode::kNone;
  const bool want_b = capture && opts.capture_backward;
  const bool want_f = capture && opts.capture_forward;
  const bool trivial = region.root == driver;

  // ---- degenerate region: nothing above the scan shards — run the plan
  // unsharded, but still retain shard-granularity fan-out state (the
  // skip-index idea: backward traces probe only the shards their region
  // rows — here, base rids — live in).
  if (trivial && region.exchange < 0) {
    CaptureOptions inner = InnerOpts(opts, want_b, want_f);
    SMOKE_RETURN_NOT_OK(ExecutePlan(plan, inner, &out->plan));
    ApplyUserPruning(&out->plan.lineage, opts);
    out->shard.reset();
    if (want_b && opts.WantsTable(driver_label)) {
      int di = out->plan.lineage.FindInput(driver_label);
      if (di >= 0 &&
          !out->plan.lineage.input(static_cast<size_t>(di)).backward.empty()) {
        auto ex = std::make_unique<ShardedExecution>();
        ex->driver_relation = driver_label;
        ex->map = &smap;
        ex->to_region =
            out->plan.lineage.input(static_cast<size_t>(di)).backward;
        ex->owner.reserve(smap.num_rows());
        for (size_t g = 0; g < smap.num_rows(); ++g) {
          ex->owner.push_back(smap.ToLocal(static_cast<rid_t>(g)));
        }
        ex->shard_backward.resize(S);
        for (uint32_t s = 0; s < S; ++s) {
          ex->shard_backward[s] = IdentityIndex(smap.shard_rows(s));
        }
        out->shard = std::move(ex);
      }
    }
    return Status::OK();
  }

  // ---- broadcast build preparation: execute operator build sides once ----
  struct Prep {
    PlanResult result;
    std::vector<int> scan_ids;  ///< original ids of its scans, ascending
  };
  std::vector<Prep> preps;
  std::unordered_map<int, int> prep_of_child;  // build child id -> prep index
  for (const Region::Build& b : region.builds) {
    if (b.is_scan) continue;
    Prep prep;
    PlanBuilder pb;
    std::vector<int> newid(n, -1);
    for (int id : DownSet(plan, b.child)) {
      const PlanNode& node = plan.node(id);
      if (node.kind == PlanOpKind::kScan) {
        newid[static_cast<size_t>(id)] = pb.Scan(node.table, node.label);
        prep.scan_ids.push_back(id);
      } else {
        PlanNode clone = node;
        for (int& c : clone.children) c = newid[static_cast<size_t>(c)];
        newid[static_cast<size_t>(id)] = pb.AddNode(std::move(clone));
      }
    }
    LogicalPlan sub;
    SMOKE_RETURN_NOT_OK(pb.Build(newid[static_cast<size_t>(b.child)], &sub));
    SMOKE_RETURN_NOT_OK(
        ExecutePlan(sub, InnerOpts(opts, want_b, want_f), &prep.result));
    prep_of_child[b.child] = static_cast<int>(preps.size());
    preps.push_back(std::move(prep));
  }

  // ---- template scans, in ascending original-id order ----
  std::vector<int> members = region.spine;
  for (const Region::Build& b : region.builds) members.push_back(b.child);
  std::sort(members.begin(), members.end());
  std::vector<TemplateScan> tscans;
  for (int id : members) {
    if (id == driver) {
      TemplateScan t;
      t.kind = TemplateScan::Kind::kDriver;
      t.orig_id = id;
      t.sh = st;
      tscans.push_back(t);
      continue;
    }
    for (const Region::Build& b : region.builds) {
      if (b.child != id) continue;
      TemplateScan t;
      t.orig_id = id;
      if (b.colocated) {
        t.kind = TemplateScan::Kind::kColocated;
        t.sh = b.sh;
      } else if (b.is_scan) {
        t.kind = TemplateScan::Kind::kBroadcast;
      } else {
        t.kind = TemplateScan::Kind::kPrep;
        t.prep = prep_of_child.at(id);
      }
      tscans.push_back(t);
      break;
    }
  }
  int driver_tpos = -1;
  for (size_t i = 0; i < tscans.size(); ++i) {
    if (tscans[i].kind == TemplateScan::Kind::kDriver) {
      driver_tpos = static_cast<int>(i);
    }
  }

  // ---- per-shard region execution ----
  struct ShardRun {
    PlanResult result;           // non-trivial regions only
    const Table* rows = nullptr; // region-local output rows
    std::vector<rid_t> keys;     // local row -> global driver rid (order key)
  };
  std::vector<ShardRun> runs(S);
  // Internal capture: backward is always on — the gather merge needs the
  // driver order keys even when the caller captures nothing. When the
  // caller captures nothing else, relation pruning trims capture to the
  // driver path.
  CaptureOptions shard_opts = InnerOpts(opts, /*backward=*/true, want_f);
  if (!capture) shard_opts.only_relations = {driver_label};
  for (uint32_t s = 0; s < S; ++s) {
    if (trivial) {
      runs[s].rows = &st->shard(s);
      runs[s].keys.assign(smap.globals_of(s).begin(),
                          smap.globals_of(s).end());
      continue;
    }
    PlanBuilder pb;
    std::vector<int> newid(n, -1);
    for (int id : members) {
      const PlanNode& node = plan.node(id);
      if (id == driver) {
        newid[static_cast<size_t>(id)] = pb.Scan(&st->shard(s), node.label);
        continue;
      }
      bool is_build_child = false;
      for (const Region::Build& b : region.builds) {
        if (b.child != id) continue;
        is_build_child = true;
        const Table* src = b.colocated ? &b.sh->shard(s)
                           : b.is_scan ? node.table
                                       : &preps[static_cast<size_t>(
                                              prep_of_child.at(id))]
                                              .result.output;
        newid[static_cast<size_t>(id)] = pb.Scan(src, node.label);
        break;
      }
      if (is_build_child) continue;
      PlanNode clone = node;
      for (int& c : clone.children) c = newid[static_cast<size_t>(c)];
      newid[static_cast<size_t>(id)] = pb.AddNode(std::move(clone));
    }
    LogicalPlan sp;
    SMOKE_RETURN_NOT_OK(pb.Build(newid[static_cast<size_t>(region.root)], &sp));
    SMOKE_RETURN_NOT_OK(ExecutePlan(sp, shard_opts, &runs[s].result));
    runs[s].rows = &runs[s].result.output;
    const LineageIndex& db =
        runs[s].result.lineage.input(static_cast<size_t>(driver_tpos))
            .backward;
    const size_t rows = runs[s].rows->num_rows();
    runs[s].keys.resize(rows);
    for (size_t p = 0; p < rows; ++p) {
      runs[s].keys[p] =
          smap.ToGlobal(s, SingleRidAt(db, static_cast<rid_t>(p)));
    }
  }

  // ---- gather permutation: stable merge by driver order key ----
  // Per-shard key sequences are non-decreasing (slices preserve global rid
  // order; the region's operators preserve input order) and a driver rid
  // lives in exactly one shard, so the stable sort reproduces the exact
  // unsharded row order, duplicates (join fan-out) included.
  std::vector<ShardLoc> owner;
  std::vector<std::vector<rid_t>> gpos(S);
  {
    size_t total = 0;
    for (uint32_t s = 0; s < S; ++s) total += runs[s].keys.size();
    owner.reserve(total);
    for (uint32_t s = 0; s < S; ++s) {
      gpos[s].resize(runs[s].keys.size());
      for (size_t p = 0; p < runs[s].keys.size(); ++p) {
        owner.push_back(ShardLoc{s, static_cast<rid_t>(p)});
      }
    }
    std::stable_sort(owner.begin(), owner.end(),
                     [&runs](const ShardLoc& a, const ShardLoc& b) {
                       return runs[a.shard].keys[a.local] <
                              runs[b.shard].keys[b.local];
                     });
    for (size_t q = 0; q < owner.size(); ++q) {
      gpos[owner[q].shard][owner[q].local] = static_cast<rid_t>(q);
    }
  }
  const size_t region_rows = owner.size();

  // Gathered region backward/forward per template scan, built on demand.
  // Backward: region row -> scan rids, concatenated in gather order with
  // rids remapped through the scan's ShardMap (driver / co-located) or kept
  // (broadcast / prep — every shard reads the same rows).
  auto gather_backward = [&](int tpos) -> LineageIndex {
    const TemplateScan& t = tscans[static_cast<size_t>(tpos)];
    if (trivial) {
      // No spine ran (runs[s].result is empty): the region rows ARE the
      // driver slice rows, so the gather lineage is the codec itself.
      RidArray arr(region_rows, kInvalidRid);
      for (size_t q = 0; q < region_rows; ++q) {
        arr[q] = smap.ToGlobal(owner[q].shard, owner[q].local);
      }
      return LineageIndex::FromArray(std::move(arr));
    }
    bool all_one = true;
    for (uint32_t s = 0; s < S; ++s) {
      const LineageIndex& b =
          runs[s].result.lineage.input(static_cast<size_t>(tpos)).backward;
      all_one &= b.IsOneToOne();
    }
    auto remap = [&](uint32_t s, rid_t r) -> rid_t {
      if (r == kInvalidRid) return r;
      return t.sh != nullptr ? t.sh->map().ToGlobal(s, r) : r;
    };
    if (all_one) {
      RidArray arr(region_rows, kInvalidRid);
      for (size_t q = 0; q < region_rows; ++q) {
        const ShardLoc& loc = owner[q];
        const LineageIndex& b =
            runs[loc.shard].result.lineage.input(static_cast<size_t>(tpos))
                .backward;
        arr[q] = remap(loc.shard, b.ValueAt(loc.local));
      }
      return LineageIndex::FromArray(std::move(arr));
    }
    RidIndex idx(region_rows);
    std::vector<rid_t> tmp;
    for (size_t q = 0; q < region_rows; ++q) {
      const ShardLoc& loc = owner[q];
      const LineageIndex& b =
          runs[loc.shard].result.lineage.input(static_cast<size_t>(tpos))
              .backward;
      tmp.clear();
      b.TraceInto(loc.local, &tmp);
      for (rid_t r : tmp) idx.Append(q, remap(loc.shard, r));
    }
    return LineageIndex::FromIndex(std::move(idx));
  };
  // Forward: scan rid -> region rows. Driver / co-located inputs are
  // disjoint across shards; broadcast / prep inputs union across shards
  // (disjoint region rows, so a plain sort restores the sorted invariant).
  auto gather_forward = [&](int tpos) -> LineageIndex {
    const TemplateScan& t = tscans[static_cast<size_t>(tpos)];
    const size_t domain =
        t.sh != nullptr
            ? t.sh->base()->num_rows()
            : (t.kind == TemplateScan::Kind::kPrep
                   ? preps[static_cast<size_t>(t.prep)].result.output.num_rows()
                   : plan.node(t.orig_id).table->num_rows());
    if (trivial) {
      RidArray arr(domain, kInvalidRid);
      for (size_t q = 0; q < region_rows; ++q) {
        arr[smap.ToGlobal(owner[q].shard, owner[q].local)] =
            static_cast<rid_t>(q);
      }
      return LineageIndex::FromArray(std::move(arr));
    }
    if (t.sh != nullptr) {
      bool all_one = true;
      for (uint32_t s = 0; s < S; ++s) {
        all_one &= runs[s]
                       .result.lineage.input(static_cast<size_t>(tpos))
                       .forward.IsOneToOne();
      }
      if (all_one) {
        RidArray arr(domain, kInvalidRid);
        for (uint32_t s = 0; s < S; ++s) {
          const LineageIndex& f =
              runs[s].result.lineage.input(static_cast<size_t>(tpos)).forward;
          for (size_t l = 0; l < f.size(); ++l) {
            rid_t v = f.ValueAt(static_cast<rid_t>(l));
            arr[t.sh->map().ToGlobal(s, static_cast<rid_t>(l))] =
                v == kInvalidRid ? kInvalidRid : gpos[s][v];
          }
        }
        return LineageIndex::FromArray(std::move(arr));
      }
    }
    RidIndex idx(domain);
    std::vector<rid_t> tmp;
    for (uint32_t s = 0; s < S; ++s) {
      const LineageIndex& f =
          runs[s].result.lineage.input(static_cast<size_t>(tpos)).forward;
      for (size_t l = 0; l < f.size(); ++l) {
        tmp.clear();
        f.TraceInto(static_cast<rid_t>(l), &tmp);
        rid_t in = t.sh != nullptr
                       ? t.sh->map().ToGlobal(s, static_cast<rid_t>(l))
                       : static_cast<rid_t>(l);
        for (rid_t v : tmp) idx.Append(in, gpos[s][v]);
      }
    }
    for (size_t i = 0; i < domain; ++i) {
      RidVec& l = idx.list(i);
      std::sort(l.data(), l.data() + l.size());
    }
    return LineageIndex::FromIndex(std::move(idx));
  };

  // ---- partial-aggregate exchange ----
  Table exchange_out;
  Chain x_b, x_f;  // exchange output <-> region rows
  x_b.identity = x_f.identity = true;
  size_t boundary_rows = region_rows;
  std::vector<GroupByResult> partials;
  if (region.exchange >= 0) {
    const GroupBySpec& spec = plan.node(region.exchange).group_by;
    CaptureOptions gopts = InnerOpts(opts, /*backward=*/true,
                                     /*forward=*/false);
    gopts.num_threads = opts.num_threads;
    gopts.scheduler = opts.scheduler;
    gopts.morsel_rows = opts.morsel_rows;
    partials.reserve(S);
    for (uint32_t s = 0; s < S; ++s) {
      partials.push_back(GroupByExec(*runs[s].rows, "part", spec, gopts));
    }
    const AggLayout& layout = partials[0].handle->layout();
    const size_t stride = layout.stride();
    const size_t num_keys = spec.keys.size();
    std::vector<int> out_key_cols;
    for (size_t k = 0; k < num_keys; ++k) {
      out_key_cols.push_back(static_cast<int>(k));
    }
    struct MergedGroup {
      std::vector<double> state;
      uint32_t src_shard = 0;
      uint32_t src_slot = 0;
      rid_t min_pos = kInvalidRid;  ///< first-encounter region row
      std::vector<rid_t> region_rids;
    };
    std::vector<MergedGroup> groups;
    std::unordered_map<std::string, size_t> slot_of;
    std::vector<rid_t> tmp;
    for (uint32_t s = 0; s < S; ++s) {
      const GroupByResult& gr = partials[s];
      const std::vector<double>& state = gr.handle->agg_state();
      const size_t ng = gr.handle->num_groups();
      const LineageIndex& gb = gr.lineage.input(0).backward;
      for (size_t g = 0; g < ng; ++g) {
        std::string key =
            EncodeRowKey(gr.output, out_key_cols, static_cast<rid_t>(g));
        tmp.clear();
        gb.TraceInto(static_cast<rid_t>(g), &tmp);  // ascending local rids
        auto [it, fresh] = slot_of.emplace(std::move(key), groups.size());
        if (fresh) {
          groups.emplace_back();
          MergedGroup& m = groups.back();
          m.state.assign(state.begin() + static_cast<long>(g * stride),
                         state.begin() + static_cast<long>((g + 1) * stride));
          m.src_shard = s;
          m.src_slot = static_cast<uint32_t>(g);
        } else {
          layout.Merge(groups[it->second].state.data(),
                       state.data() + g * stride);
        }
        MergedGroup& m = groups[it->second];
        for (rid_t r : tmp) {
          rid_t q = gpos[s][r];
          m.region_rids.push_back(q);
          if (q < m.min_pos || m.min_pos == kInvalidRid) m.min_pos = q;
        }
      }
    }
    // Merged groups emit in global first-encounter order — the order the
    // unsharded group-by would have assigned slots scanning the gathered
    // input.
    std::vector<size_t> order(groups.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&groups](size_t a, size_t b) {
      return groups[a].min_pos < groups[b].min_pos;
    });
    exchange_out = Table(partials[0].output.schema());
    std::vector<Column*> agg_cols;
    for (size_t a = 0; a < layout.num_aggs(); ++a) {
      agg_cols.push_back(&exchange_out.mutable_column(num_keys + a));
    }
    RidIndex xb(groups.size());
    RidArray xf;
    if (want_f) xf.assign(region_rows, kInvalidRid);
    for (size_t m = 0; m < order.size(); ++m) {
      MergedGroup& g = groups[order[m]];
      const Table& src = partials[g.src_shard].output;
      for (size_t k = 0; k < num_keys; ++k) {
        exchange_out.mutable_column(k).AppendFrom(src.column(k), g.src_slot);
      }
      layout.Finalize(g.state.data(), &agg_cols);
      std::sort(g.region_rids.begin(), g.region_rids.end());
      for (rid_t q : g.region_rids) {
        xb.Append(m, q);
        if (want_f) xf[q] = static_cast<rid_t>(m);
      }
    }
    boundary_rows = groups.size();
    x_b.identity = false;
    x_b.index = LineageIndex::FromIndex(std::move(xb));
    if (want_f) {
      x_f.identity = false;
      x_f.index = LineageIndex::FromArray(std::move(xf));
    }
  }

  // ---- gathered boundary table ----
  const int boundary = region.exchange >= 0 ? region.exchange : region.root;
  Table gathered;
  if (region.exchange < 0) {
    gathered = Table(runs[0].rows->schema());
    gathered.Reserve(region_rows);
    for (const ShardLoc& loc : owner) {
      gathered.AppendRowFrom(*runs[loc.shard].rows, loc.local);
    }
  }
  Table& boundary_table = region.exchange >= 0 ? exchange_out : gathered;

  // ---- remainder: the plan above the boundary, on the coordinator ----
  // Remainder node ids preserve the original nodes' relative order, so the
  // executor's top-down DAG lineage merges happen in the original order —
  // the composition below the boundary then distributes over those merges
  // (compose is associative; merge concatenates/unions), keeping the final
  // indexes bit-identical to the unsharded run.
  Chain rem_b, rem_f;
  rem_b.identity = rem_f.identity = true;
  std::vector<TableLineage> rem_inputs;  // non-boundary, ascending orig id
  std::vector<uint8_t> consumed(n, 0);
  for (int id : DownSet(plan, region.root)) consumed[static_cast<size_t>(id)] = 1;
  if (region.exchange >= 0) consumed[static_cast<size_t>(region.exchange)] = 1;
  if (boundary == root) {
    out->plan.output = std::move(boundary_table);
    out->plan.output_cardinality = boundary_rows;
  } else {
    PlanBuilder pb;
    std::vector<int> newid(n, -1);
    for (size_t id = 0; id < n; ++id) {
      if (!reachable[id]) continue;
      if (static_cast<int>(id) == boundary) {
        newid[id] = pb.Scan(&boundary_table, kBoundaryLabel);
        continue;
      }
      if (consumed[id]) continue;
      PlanNode clone = plan.node(static_cast<int>(id));
      for (int& c : clone.children) c = newid[static_cast<size_t>(c)];
      newid[id] = pb.AddNode(std::move(clone));
    }
    LogicalPlan rplan;
    SMOKE_RETURN_NOT_OK(pb.Build(newid[static_cast<size_t>(root)], &rplan));
    PlanResult rr;
    SMOKE_RETURN_NOT_OK(
        ExecutePlan(rplan, InnerOpts(opts, capture, want_f), &rr));
    out->plan.output = std::move(rr.output);
    out->plan.output_cardinality = rr.output_cardinality;
    out->plan.spja_artifacts = std::move(rr.spja_artifacts);
    out->plan.owned_tables = std::move(rr.owned_tables);
    for (size_t i = 0; i < rr.lineage.num_inputs(); ++i) {
      TableLineage& in = rr.lineage.mutable_input(i);
      if (in.table_name == kBoundaryLabel) {
        rem_b.identity = rem_f.identity = false;
        rem_b.index = std::move(in.backward);
        rem_f.index = std::move(in.forward);
      } else {
        rem_inputs.push_back(std::move(in));
      }
    }
  }

  // Output -> region chain (through the exchange when present).
  Chain to_region_b, to_region_f;
  to_region_b.identity = rem_b.identity && x_b.identity;
  if (!to_region_b.identity) {
    if (x_b.identity) {
      to_region_b.index = std::move(rem_b.index);
    } else if (rem_b.identity) {
      to_region_b.index = x_b.index;  // keep x_b for fan-out state below
    } else {
      to_region_b.index = ComposeBackward(rem_b.index, x_b.index);
    }
  }
  if (want_f) {
    to_region_f.identity = rem_f.identity && x_f.identity;
    if (!to_region_f.identity) {
      if (x_f.identity) {
        to_region_f.index = std::move(rem_f.index);
      } else if (rem_f.identity) {
        to_region_f.index = std::move(x_f.index);
      } else {
        to_region_f.index = ComposeForward(x_f.index, rem_f.index);
      }
    }
  }

  // ---- final lineage emission: original reachable scans, ascending id ----
  if (capture) {
    // Prep-output chains, one per broadcast operator build (composed once,
    // shared by every scan under that build).
    std::vector<LineageIndex> prep_b(preps.size()), prep_f(preps.size());
    std::unordered_map<int, std::pair<int, int>> prep_scan_pos;
    for (size_t j = 0; j < preps.size(); ++j) {
      for (size_t u = 0; u < preps[j].scan_ids.size(); ++u) {
        prep_scan_pos[preps[j].scan_ids[u]] = {static_cast<int>(j),
                                               static_cast<int>(u)};
      }
    }
    for (size_t tp = 0; tp < tscans.size(); ++tp) {
      if (tscans[tp].kind != TemplateScan::Kind::kPrep) continue;
      const size_t j = static_cast<size_t>(tscans[tp].prep);
      prep_b[j] = ComposeBackwardChain(to_region_b,
                                       gather_backward(static_cast<int>(tp)));
      if (want_f) {
        prep_f[j] = ComposeForwardChain(gather_forward(static_cast<int>(tp)),
                                        to_region_f);
      }
    }
    std::unordered_map<int, int> tpos_of;
    for (size_t tp = 0; tp < tscans.size(); ++tp) {
      if (tscans[tp].kind != TemplateScan::Kind::kPrep) {
        tpos_of[tscans[tp].orig_id] = static_cast<int>(tp);
      }
    }
    size_t next_rem = 0;
    for (size_t id = 0; id < n; ++id) {
      const PlanNode& node = plan.node(static_cast<int>(id));
      if (!reachable[id] || node.kind != PlanOpKind::kScan) continue;
      TableLineage& tl =
          out->plan.lineage.AddInput(node.label, node.table);
      LineageIndex b, f;
      auto tit = tpos_of.find(static_cast<int>(id));
      auto pit = prep_scan_pos.find(static_cast<int>(id));
      if (tit != tpos_of.end()) {
        b = ComposeBackwardChain(to_region_b, gather_backward(tit->second));
        if (want_f) {
          f = ComposeForwardChain(gather_forward(tit->second), to_region_f);
        }
      } else if (pit != prep_scan_pos.end()) {
        const auto [j, u] = pit->second;
        const TableLineage& pin =
            preps[static_cast<size_t>(j)].result.lineage.input(
                static_cast<size_t>(u));
        b = ComposeBackward(prep_b[static_cast<size_t>(j)], pin.backward);
        if (want_f) {
          f = ComposeForward(pin.forward, prep_f[static_cast<size_t>(j)]);
        }
      } else {
        SMOKE_CHECK(next_rem < rem_inputs.size());
        b = std::move(rem_inputs[next_rem].backward);
        f = std::move(rem_inputs[next_rem].forward);
        ++next_rem;
      }
      if (!opts.WantsTable(node.label)) continue;  // entry stays empty
      if (opts.capture_backward) tl.backward = std::move(b);
      if (opts.capture_forward) tl.forward = std::move(f);
    }
    out->plan.lineage.set_output_cardinality(out->plan.output_cardinality);
  }

  // ---- fan-out state for backward traces to the driver ----
  out->shard.reset();
  if (want_b && opts.WantsTable(driver_label)) {
    auto ex = std::make_unique<ShardedExecution>();
    ex->driver_relation = driver_label;
    ex->map = &smap;
    ex->to_region_identity = to_region_b.identity;
    if (!to_region_b.identity) ex->to_region = std::move(to_region_b.index);
    ex->owner = std::move(owner);
    ex->shard_backward.resize(S);
    for (uint32_t s = 0; s < S; ++s) {
      if (trivial) {
        ex->shard_backward[s] = IdentityIndex(smap.shard_rows(s));
      } else {
        ex->shard_backward[s] = std::move(
            runs[s]
                .result.lineage.mutable_input(static_cast<size_t>(driver_tpos))
                .backward);
      }
    }
    out->shard = std::move(ex);
  }
  return Status::OK();
}

}  // namespace smoke
