// A base relation partitioned into shards (shard/coordinator.h runs one
// unmodified morsel-parallel executor per shard slice).
#ifndef SMOKE_SHARD_SHARDED_TABLE_H_
#define SMOKE_SHARD_SHARDED_TABLE_H_

#include <vector>

#include "common/status.h"
#include "shard/shard_map.h"
#include "storage/table.h"

namespace smoke {

/// \brief A borrowed base table plus its range/hash partitioning: one slice
/// Table per shard (same schema, rows in global-rid order within the slice)
/// and the ShardMap codec connecting slice-local rids to the base table's
/// global rids. The base table stays the lineage endpoint — slices are
/// execution artifacts, never traced against directly.
class ShardedTable {
 public:
  ShardedTable() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(ShardedTable);
  ShardedTable(ShardedTable&&) = default;
  ShardedTable& operator=(ShardedTable&&) = default;

  /// Slices `*base` per `spec`. The partitioning column must be an int64
  /// column of `*base`; `base` is borrowed and must outlive the result.
  static Status Create(const Table* base, const ShardingSpec& spec,
                       ShardedTable* out);

  const Table* base() const { return base_; }
  const ShardingSpec& spec() const { return spec_; }
  const ShardMap& map() const { return map_; }
  uint32_t num_shards() const { return map_.num_shards(); }
  const Table& shard(uint32_t s) const {
    SMOKE_DCHECK(s < shards_.size());
    return shards_[s];
  }

 private:
  const Table* base_ = nullptr;
  ShardingSpec spec_;
  ShardMap map_;
  std::vector<Table> shards_;
};

}  // namespace smoke

#endif  // SMOKE_SHARD_SHARDED_TABLE_H_
