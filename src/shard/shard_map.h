// Global-rid ⇄ (shard, local-rid) codec for sharded base tables.
//
// Sharded execution (shard/coordinator.h) partitions a base relation into
// independently executed shards; every shard runs the unmodified
// morsel-parallel executor over *local* rids starting at 0. Lineage,
// however, is defined over the relation's *global* rids — the rids every
// retained index, trace and consuming query speaks. The ShardMap is the
// bijection between the two spaces: it is to shards what
// lineage/fragment_merge's exclusive offsets are to morsels, except that
// shard assignment follows a partitioning column (range/hash), not row
// position, so the mapping must be materialized rather than computed from
// offsets.
#ifndef SMOKE_SHARD_SHARD_MAP_H_
#define SMOKE_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/types.h"

namespace smoke {

/// How a base table is partitioned into shards. The partitioning column
/// must be int64 (all shardable keys in the paper's workloads are integer
/// or dictionary-encoded).
struct ShardingSpec {
  enum class Kind : uint8_t {
    kRange,  ///< equal-width ranges over the column's value domain
    kHash,   ///< stable hash of the column value modulo num_shards
  };

  Kind kind = Kind::kHash;
  int column = 0;
  uint32_t num_shards = 1;

  static ShardingSpec Hash(int column, uint32_t num_shards) {
    ShardingSpec s;
    s.kind = Kind::kHash;
    s.column = column;
    s.num_shards = num_shards;
    return s;
  }
  static ShardingSpec Range(int column, uint32_t num_shards) {
    ShardingSpec s;
    s.kind = Kind::kRange;
    s.column = column;
    s.num_shards = num_shards;
    return s;
  }
};

/// Stable value hash for hash partitioning (splitmix64 finalizer). Shared by
/// ShardedTable::Create and the co-located join check so two tables hashed
/// on their join keys with equal shard counts place matching keys in the
/// same shard.
inline uint32_t ShardOfHash(int64_t v, uint32_t num_shards) {
  uint64_t x = static_cast<uint64_t>(v);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % num_shards);
}

/// A global rid decoded into its shard coordinates.
struct ShardLoc {
  uint32_t shard = 0;
  rid_t local = 0;
};

/// \brief The bijection global rid ⇄ (shard, local rid) of one sharded
/// table. Local rids within a shard preserve global rid order (slicing is
/// order-stable), which is what lets the coordinator's gather merge restore
/// the unsharded row order from per-shard order keys.
class ShardMap {
 public:
  ShardMap() = default;

  /// Builds the codec from a per-row shard assignment. `shard_of[g]` is the
  /// shard of global rid g; locals are assigned in ascending global order.
  static ShardMap FromAssignment(std::vector<uint32_t> shard_of,
                                 uint32_t num_shards) {
    ShardMap m;
    m.shard_of_ = std::move(shard_of);
    m.local_of_.resize(m.shard_of_.size());
    m.global_of_.resize(num_shards);
    for (size_t g = 0; g < m.shard_of_.size(); ++g) {
      uint32_t s = m.shard_of_[g];
      SMOKE_DCHECK(s < num_shards);
      m.local_of_[g] = static_cast<rid_t>(m.global_of_[s].size());
      m.global_of_[s].push_back(static_cast<rid_t>(g));
    }
    return m;
  }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(global_of_.size());
  }
  size_t num_rows() const { return shard_of_.size(); }
  size_t shard_rows(uint32_t s) const { return global_of_[s].size(); }

  ShardLoc ToLocal(rid_t global) const {
    SMOKE_DCHECK(static_cast<size_t>(global) < shard_of_.size());
    return ShardLoc{shard_of_[global], local_of_[global]};
  }
  rid_t ToGlobal(uint32_t shard, rid_t local) const {
    SMOKE_DCHECK(shard < global_of_.size());
    SMOKE_DCHECK(static_cast<size_t>(local) < global_of_[shard].size());
    return global_of_[shard][local];
  }

  /// Global rids of shard `s` in local-rid order (ascending global rids).
  const std::vector<rid_t>& globals_of(uint32_t s) const {
    SMOKE_DCHECK(s < global_of_.size());
    return global_of_[s];
  }

 private:
  std::vector<uint32_t> shard_of_;            // global -> shard
  std::vector<rid_t> local_of_;               // global -> local
  std::vector<std::vector<rid_t>> global_of_; // shard -> local -> global
};

}  // namespace smoke

#endif  // SMOKE_SHARD_SHARD_MAP_H_
