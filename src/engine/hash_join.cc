#include "engine/hash_join.h"

#include <memory>

#include "common/macros.h"
#include "lineage/fragment_merge.h"
#include "plan/scheduler.h"

namespace smoke {

namespace {

/// Output schema: left fields, then right fields (renamed on collision),
/// then annotation columns for the rid-annotated logic modes.
Schema OutputSchema(const Table& left, const Table& right,
                    const std::string& right_name, CaptureMode mode) {
  Schema s = left.schema();
  for (const auto& f : right.schema().fields()) {
    std::string name = f.name;
    if (s.IndexOf(name) >= 0) name = right_name + "_" + name;
    s.AddField(std::move(name), f.type);
  }
  if (mode == CaptureMode::kLogicRid || mode == CaptureMode::kLogicIdx) {
    s.AddField("prov_rid_a", DataType::kInt64);
    s.AddField("prov_rid_b", DataType::kInt64);
  }
  return s;
}

struct JoinHashTable {
  IntKeyMap map;
  // M:N: i_rids[slot] holds the A rids for the entry's key.
  std::vector<RidVec> i_rids;
  // Pk build: exactly one A rid per entry.
  std::vector<rid_t> single_rid;
  // Defer: first output rid of each B-match run for the entry.
  std::vector<RidVec> o_rids;

  explicit JoinHashTable(size_t expected) : map(expected) {}
};

/// Morsel-driven parallel ⋈'probe (kNone, kInject, and pk-fk kDefer — the
/// modes whose probe loop is stateless given the read-only build table).
/// B is split into morsels; each morsel probes the shared hash table into a
/// thread-local output chunk plus per-morsel lineage fragments: A/B backward
/// rids are absolute, output rids morsel-local. Fragments merge in morsel
/// order; A's forward index is rebuilt exactly-sized by inverting the merged
/// A-backward array (per-morsel forward fragments would overlap on A rows).
JoinResult HashJoinProbeParallel(const Table& left,
                                 const std::string& left_name,
                                 const Table& right,
                                 const std::string& right_name,
                                 const JoinSpec& spec,
                                 const CaptureOptions& opts,
                                 const JoinHashTable& ht,
                                 TaskScheduler* sched) {
  const size_t na = left.num_rows();
  const size_t nb = right.num_rows();
  const int64_t* rkeys =
      right.column(static_cast<size_t>(spec.right_key)).ints().data();
  const CaptureMode mode = opts.mode;
  const bool pk = spec.pk_build;
  const bool smoke = mode != CaptureMode::kNone;
  const bool want_a = smoke && opts.WantsTable(left_name);
  const bool want_b_side = smoke && opts.WantsTable(right_name);
  const bool want_bw = opts.capture_backward;
  const bool want_fw = opts.capture_forward;
  // A's forward index is derived from the merged backward array, so the
  // backward fragments are collected whenever either A-side direction is on.
  const bool need_a_bw = want_a && (want_bw || want_fw);
  const bool need_b_bw = want_b_side && want_bw;
  const bool need_b_fw = want_b_side && want_fw;

  const size_t morsel_rows = opts.morsel_rows > 0
                                 ? opts.morsel_rows
                                 : MorselScheduler::kDefaultMorselRows;
  const std::vector<Morsel> morsels = MakeMorsels(nb, morsel_rows);
  const size_t nm = morsels.size();

  const Schema out_schema = OutputSchema(left, right, right_name, mode);
  const size_t left_cols = left.num_columns();
  const size_t right_cols = right.num_columns();

  std::vector<Table> chunks(nm);
  std::vector<RidArray> a_bw_parts(nm);
  std::vector<RidArray> b_bw_parts(nm);
  std::vector<RidArray> b_fw_arr_parts(nm);   // pk: B row -> one local out
  std::vector<RidIndex> b_fw_idx_parts(nm);   // M:N: B row -> local outs
  std::vector<size_t> counts(nm, 0);

  sched->ParallelFor(nm, [&](size_t m, size_t) {
    const Morsel span = morsels[m];
    Table chunk(out_schema);
    RidArray a_bw;
    RidArray b_bw;
    RidArray b_fw_arr;
    RidIndex b_fw_idx;
    if (need_b_fw) {
      if (pk) b_fw_arr.assign(span.rows(), kInvalidRid);
      else b_fw_idx.Resize(span.rows());
    }
    if (pk) {
      // Per-morsel join cardinality is bounded by the morsel's B rows.
      if (spec.materialize_output) chunk.Reserve(span.rows());
      if (need_a_bw) a_bw.reserve(span.rows());
      if (need_b_bw) b_bw.reserve(span.rows());
    }
    rid_t local_o = 0;
    for (rid_t b = span.begin; b < span.end; ++b) {
      uint32_t slot = ht.map.Find(rkeys[b]);
      if (slot == IntKeyMap::kNotFound) continue;
      const rid_t* match_begin;
      size_t match_count;
      rid_t single;
      if (pk) {
        single = ht.single_rid[slot];
        match_begin = &single;
        match_count = 1;
      } else {
        match_begin = ht.i_rids[slot].data();
        match_count = ht.i_rids[slot].size();
      }
      for (size_t i = 0; i < match_count; ++i) {
        rid_t a = match_begin[i];
        if (spec.materialize_output) {
          chunk.AppendRowFrom(left, a);
          for (size_t c = 0; c < right_cols; ++c) {
            chunk.mutable_column(left_cols + c).AppendFrom(right.column(c), b);
          }
        }
        if (need_a_bw) a_bw.push_back(a);
        if (need_b_bw) b_bw.push_back(b);
        if (need_b_fw) {
          if (pk) b_fw_arr[b - span.begin] = local_o;
          else b_fw_idx.Append(b - span.begin, local_o);
        }
        ++local_o;
      }
    }
    counts[m] = local_o;
    chunks[m] = std::move(chunk);
    a_bw_parts[m] = std::move(a_bw);
    b_bw_parts[m] = std::move(b_bw);
    b_fw_arr_parts[m] = std::move(b_fw_arr);
    b_fw_idx_parts[m] = std::move(b_fw_idx);
  });

  // ---- deterministic merge in morsel order ----
  const std::vector<rid_t> offsets = ExclusiveOffsets(counts);
  const rid_t total = offsets[nm];

  JoinResult result;
  result.output = Table(out_schema);
  result.output_cardinality = total;
  if (spec.materialize_output) {
    result.output.Reserve(total);
    for (size_t m = 0; m < nm; ++m) {
      result.output.AppendAllRows(std::move(chunks[m]));
    }
  }

  if (mode != CaptureMode::kNone) {
    TableLineage& la = result.lineage.AddInput(left_name, &left);
    TableLineage& lb = result.lineage.AddInput(right_name, &right);
    result.lineage.set_output_cardinality(total);
    if (need_a_bw) {
      RidArray a_bw = ConcatBackwardArrays(std::move(a_bw_parts));
      if (want_fw) {
        la.forward = LineageIndex::FromIndex(InvertBackwardArray(a_bw, na));
      }
      if (want_bw) la.backward = LineageIndex::FromArray(std::move(a_bw));
    }
    if (need_b_bw) {
      lb.backward = LineageIndex::FromArray(
          ConcatBackwardArrays(std::move(b_bw_parts)));
    }
    if (need_b_fw) {
      if (pk) {
        std::vector<rid_t> in_begins(nm);
        for (size_t m = 0; m < nm; ++m) in_begins[m] = morsels[m].begin;
        lb.forward = LineageIndex::FromArray(
            ScatterForwardArrays(nb, b_fw_arr_parts, in_begins, offsets));
      } else {
        lb.forward = LineageIndex::FromIndex(
            ConcatIndexParts(std::move(b_fw_idx_parts), offsets));
      }
    }
  }
  return result;
}

}  // namespace

JoinResult HashJoinExec(const Table& left, const std::string& left_name,
                        const Table& right, const std::string& right_name,
                        const JoinSpec& spec, const CaptureOptions& opts) {
  if (!spec.left_key_name.empty() || !spec.right_key_name.empty()) {
    // Name forms reaching the kernel directly (no PlanBuilder::Build pass)
    // resolve here; unknown names abort like Table::column(name).
    JoinSpec resolved = spec;
    if (!resolved.left_key_name.empty()) {
      resolved.left_key = left.ColumnIndex(resolved.left_key_name);
      SMOKE_CHECK(resolved.left_key >= 0);
      resolved.left_key_name.clear();
    }
    if (!resolved.right_key_name.empty()) {
      resolved.right_key = right.ColumnIndex(resolved.right_key_name);
      SMOKE_CHECK(resolved.right_key >= 0);
      resolved.right_key_name.clear();
    }
    return HashJoinExec(left, left_name, right, right_name, resolved, opts);
  }
  SMOKE_CHECK(left.column(static_cast<size_t>(spec.left_key)).type() ==
              DataType::kInt64);
  SMOKE_CHECK(right.column(static_cast<size_t>(spec.right_key)).type() ==
              DataType::kInt64);

  const size_t na = left.num_rows();
  const size_t nb = right.num_rows();
  const int64_t* lkeys =
      left.column(static_cast<size_t>(spec.left_key)).ints().data();
  const int64_t* rkeys =
      right.column(static_cast<size_t>(spec.right_key)).ints().data();

  const CaptureMode mode = opts.mode;
  // Pk-fk joins: Defer is identical to Inject (Section 3.2.4).
  const bool pk = spec.pk_build;
  const bool inject = mode == CaptureMode::kInject ||
                      (mode == CaptureMode::kDefer && pk);
  const bool defer = mode == CaptureMode::kDefer && !pk;
  const bool defer_backward =
      defer && spec.defer_variant == JoinSpec::DeferVariant::kBoth;
  const bool phys = mode == CaptureMode::kPhysMem ||
                    mode == CaptureMode::kPhysBdb;
  const bool logic_rid =
      mode == CaptureMode::kLogicRid || mode == CaptureMode::kLogicIdx;
  const bool smoke = inject || defer;

  const bool want_a = smoke && opts.WantsTable(left_name);
  const bool want_b_side = smoke && opts.WantsTable(right_name);
  const bool want_bw = opts.capture_backward;
  const bool want_fw = opts.capture_forward;

  // Morsel-parallel probe path: kNone, kInject, and pk-fk kDefer (≡ Inject).
  // Non-pk kDefer keeps the sequential probe — its o_rids bookkeeping and
  // scanht pass already amortize capture off the critical path.
  const bool parallel = opts.WantsParallel() && !defer;

  // ---- ⋈'ht: build phase on A ----
  JoinHashTable ht(na);
  const CardinalityHints* hints = opts.hints;
  const bool tc = hints != nullptr && hints->have_per_key_counts;

  // Forward index for A (rid index: one A row joins many outputs). The
  // parallel probe derives it from the merged backward fragments instead.
  RidIndex a_fw;
  if (!parallel && want_a && want_fw) a_fw.Resize(na);

  for (rid_t a = 0; a < na; ++a) {
    uint32_t fresh = static_cast<uint32_t>(pk ? ht.single_rid.size()
                                              : ht.i_rids.size());
    uint32_t slot = ht.map.FindOrInsert(lkeys[a], fresh);
    if (slot == IntKeyMap::kNotFound) {
      slot = fresh;
      if (pk) {
        ht.single_rid.push_back(a);
      } else {
        ht.i_rids.emplace_back();
      }
      if (defer) ht.o_rids.emplace_back();
    } else {
      SMOKE_DCHECK(!pk);  // duplicate key on a pk build side
    }
    if (!pk) ht.i_rids[slot].PushBack(a);
    // Smoke-I+TC: pre-size this A row's forward list with the known number
    // of B matches for its key.
    if (!parallel && tc && want_a && want_fw) {
      auto it = hints->per_key_counts.find(lkeys[a]);
      if (it != hints->per_key_counts.end()) a_fw.list(a).Reserve(it->second);
    }
  }

  if (parallel) {
    if (opts.scheduler != nullptr) {
      return HashJoinProbeParallel(left, left_name, right, right_name, spec,
                                   opts, ht, opts.scheduler);
    }
    MorselScheduler local(opts.num_threads);
    return HashJoinProbeParallel(left, left_name, right, right_name, spec,
                                 opts, ht, &local);
  }

  // ---- ⋈'probe: probe phase with B ----
  JoinResult result;
  result.output = Table(OutputSchema(left, right, right_name, mode));
  if (pk && spec.materialize_output) {
    // Pk-fk join cardinality is bounded by |B| — pre-size the output for
    // every mode (an engine-level optimization, not a capture one).
    result.output.Reserve(nb);
  }
  const size_t left_cols = left.num_columns();
  const size_t right_cols = right.num_columns();
  const size_t ann_a_col = left_cols + right_cols;

  RidArray a_bw;
  RidArray b_bw;
  RidIndex b_fw_idx;   // M:N: B row -> many outputs
  RidArray b_fw_arr;   // pk-fk: B row -> exactly one output
  if (want_b_side && want_fw) {
    if (pk) b_fw_arr.assign(nb, kInvalidRid);
    else b_fw_idx.Resize(nb);
  }
  if (pk) {
    // Join cardinality <= |B|: pre-allocate backward arrays.
    if (want_a && want_bw) a_bw.reserve(nb);
    if (want_b_side && want_bw) b_bw.reserve(nb);
  }

  if (phys) {
    SMOKE_CHECK(opts.writer != nullptr && spec.writer_right != nullptr);
    opts.writer->BeginCapture(na);
    spec.writer_right->BeginCapture(nb);
  }

  rid_t o = 0;
  for (rid_t b = 0; b < nb; ++b) {
    uint32_t slot = ht.map.Find(rkeys[b]);
    if (slot == IntKeyMap::kNotFound) continue;
    const rid_t* match_begin;
    size_t match_count;
    rid_t single;
    if (pk) {
      single = ht.single_rid[slot];
      match_begin = &single;
      match_count = 1;
    } else {
      match_begin = ht.i_rids[slot].data();
      match_count = ht.i_rids[slot].size();
    }
    if (defer) ht.o_rids[slot].PushBack(o);  // first output rid of this run
    for (size_t m = 0; m < match_count; ++m) {
      rid_t a = match_begin[m];
      if (spec.materialize_output) {
        result.output.AppendRowFrom(left, a);
        for (size_t c = 0; c < right_cols; ++c) {
          result.output.mutable_column(left_cols + c)
              .AppendFrom(right.column(c), b);
        }
      }
      if (logic_rid) {
        result.output.mutable_column(ann_a_col).AppendInt(a);
        result.output.mutable_column(ann_a_col + 1).AppendInt(b);
      }
      if (inject) {
        if (want_a && want_bw) a_bw.push_back(a);
        if (want_a && want_fw) a_fw.Append(a, o);
      } else if (defer && !defer_backward) {
        // Smoke-D-DeferForw: backward for A inline, forward deferred.
        if (want_a && want_bw) a_bw.push_back(a);
      }
      if (want_b_side && want_bw) b_bw.push_back(b);
      if (want_b_side && want_fw) {
        if (pk) b_fw_arr[b] = o;
        else b_fw_idx.Append(b, o);
      }
      if (phys) {
        opts.writer->Emit(o, a);
        spec.writer_right->Emit(o, b);
      }
      ++o;
    }
  }
  result.output_cardinality = o;

  if (phys) {
    opts.writer->FinishCapture(o);
    spec.writer_right->FinishCapture(o);
  }

  // ---- scanht: deferred index construction for A (Section 3.2.4) ----
  if (defer && want_a) {
    // Exact cardinalities are now known: each entry produced
    // |i_rids| * |o_rids| outputs.
    if (defer_backward && want_bw) a_bw.assign(o, kInvalidRid);
    const size_t num_entries = ht.i_rids.size();
    for (size_t s = 0; s < num_entries; ++s) {
      const RidVec& in_rids = ht.i_rids[s];
      const RidVec& out_starts = ht.o_rids[s];
      if (want_fw) {
        for (size_t i = 0; i < in_rids.size(); ++i) {
          a_fw.list(in_rids[i]).Reserve(out_starts.size());
        }
      }
      for (size_t j = 0; j < out_starts.size(); ++j) {
        rid_t start = out_starts[j];
        for (size_t i = 0; i < in_rids.size(); ++i) {
          rid_t out_rid = start + static_cast<rid_t>(i);
          if (defer_backward && want_bw) a_bw[out_rid] = in_rids[i];
          if (want_fw) a_fw.Append(in_rids[i], out_rid);
        }
      }
    }
  }

  // ---- lineage emission ----
  if (mode != CaptureMode::kNone) {
    TableLineage& la = result.lineage.AddInput(left_name, &left);
    TableLineage& lb = result.lineage.AddInput(right_name, &right);
    result.lineage.set_output_cardinality(o);
    if (smoke) {
      if (want_a && want_bw)
        la.backward = LineageIndex::FromArray(std::move(a_bw));
      if (want_a && want_fw)
        la.forward = LineageIndex::FromIndex(std::move(a_fw));
      if (want_b_side && want_bw)
        lb.backward = LineageIndex::FromArray(std::move(b_bw));
      if (want_b_side && want_fw) {
        lb.forward = pk ? LineageIndex::FromArray(std::move(b_fw_arr))
                        : LineageIndex::FromIndex(std::move(b_fw_idx));
      }
    } else if (mode == CaptureMode::kLogicIdx) {
      // Scan the annotated output to build the same end-to-end indexes.
      const auto& ann_a = result.output.column(ann_a_col).ints();
      const auto& ann_b = result.output.column(ann_a_col + 1).ints();
      RidArray a2_bw, b2_bw;
      RidIndex a2_fw(na);
      RidIndex b2_fw(nb);
      a2_bw.reserve(ann_a.size());
      b2_bw.reserve(ann_b.size());
      for (rid_t row = 0; row < ann_a.size(); ++row) {
        rid_t a = static_cast<rid_t>(ann_a[row]);
        rid_t b = static_cast<rid_t>(ann_b[row]);
        a2_bw.push_back(a);
        b2_bw.push_back(b);
        a2_fw.Append(a, row);
        b2_fw.Append(b, row);
      }
      la.backward = LineageIndex::FromArray(std::move(a2_bw));
      la.forward = LineageIndex::FromIndex(std::move(a2_fw));
      lb.backward = LineageIndex::FromArray(std::move(b2_bw));
      lb.forward = LineageIndex::FromIndex(std::move(b2_fw));
    }
  }

  return result;
}

}  // namespace smoke
