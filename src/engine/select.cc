#include "engine/select.h"

#include <memory>

#include "common/macros.h"
#include "lineage/fragment_merge.h"
#include "plan/scheduler.h"

namespace smoke {

namespace {

Schema OutputSchema(const Table& input, CaptureMode mode) {
  Schema s = input.schema();
  if (mode == CaptureMode::kLogicRid || mode == CaptureMode::kLogicIdx) {
    s.AddField("prov_rid", DataType::kInt64);
  } else if (mode == CaptureMode::kLogicTup) {
    for (const auto& f : input.schema().fields()) {
      s.AddField("prov_" + f.name, f.type);
    }
  }
  return s;
}

/// Morsel-driven parallel selection (Smoke modes only; kDefer maps to
/// kInject for selection as in the sequential path). Each morsel filters its
/// row range into a thread-local output chunk and emits a per-morsel lineage
/// fragment — backward holds absolute input rids, forward holds morsel-local
/// output rids. Merging in morsel order (lineage/fragment_merge.h) makes the
/// result bit-identical to the sequential loop.
SelectResult SelectExecParallel(const Table& input,
                                const std::string& input_name,
                                const PredicateList& plist,
                                const CaptureOptions& opts,
                                TaskScheduler* sched) {
  const size_t n = input.num_rows();
  const bool smoke_capture = IsSmokeMode(opts.mode);
  const bool want_b = smoke_capture && opts.capture_backward;
  const bool want_f = smoke_capture && opts.capture_forward;

  const size_t morsel_rows = opts.morsel_rows > 0
                                 ? opts.morsel_rows
                                 : MorselScheduler::kDefaultMorselRows;
  const std::vector<Morsel> morsels = MakeMorsels(n, morsel_rows);
  const size_t nm = morsels.size();

  // Thread-local fragment buffers, keyed by morsel index so the merge never
  // depends on which worker ran which morsel.
  std::vector<Table> chunks(nm);
  std::vector<RidArray> bw_parts(nm);
  std::vector<RidArray> fw_parts(nm);
  std::vector<size_t> counts(nm, 0);
  const double sel = opts.hints != nullptr
                         ? opts.hints->selection_selectivity
                         : -1.0;
  const Schema out_schema = OutputSchema(input, opts.mode);

  sched->ParallelFor(nm, [&](size_t m, size_t) {
    const Morsel span = morsels[m];
    Table chunk(out_schema);
    RidArray bw;
    RidArray fw;
    if (want_f) fw.assign(span.rows(), kInvalidRid);
    if (want_b && sel >= 0) {
      bw.reserve(static_cast<size_t>(sel * static_cast<double>(span.rows())) +
                 1);
    }
    rid_t local_o = 0;
    for (rid_t r = span.begin; r < span.end; ++r) {
      if (!plist.Eval(r)) continue;
      chunk.AppendRowFrom(input, r);
      if (want_b) bw.push_back(r);
      if (want_f) fw[r - span.begin] = local_o;
      ++local_o;
    }
    counts[m] = local_o;
    chunks[m] = std::move(chunk);
    bw_parts[m] = std::move(bw);
    fw_parts[m] = std::move(fw);
  });

  // ---- deterministic merge in morsel order ----
  const std::vector<rid_t> offsets = ExclusiveOffsets(counts);
  const rid_t total = offsets[nm];

  SelectResult result;
  result.output = Table(out_schema);
  result.output.Reserve(total);
  for (size_t m = 0; m < nm; ++m) {
    result.output.AppendAllRows(std::move(chunks[m]));
  }
  if (opts.mode != CaptureMode::kNone) {
    TableLineage& lin = result.lineage.AddInput(input_name, &input);
    if (want_b) {
      lin.backward =
          LineageIndex::FromArray(ConcatBackwardArrays(std::move(bw_parts)));
    }
    if (want_f) {
      std::vector<rid_t> in_begins(nm);
      for (size_t m = 0; m < nm; ++m) in_begins[m] = morsels[m].begin;
      lin.forward = LineageIndex::FromArray(
          ScatterForwardArrays(n, fw_parts, in_begins, offsets));
    }
  }
  result.lineage.set_output_cardinality(total);
  return result;
}

}  // namespace

SelectResult SelectExecRange(const Table& input, const std::string& input_name,
                             rid_t row_begin, rid_t row_end,
                             const std::vector<Predicate>& preds,
                             const CaptureOptions& opts) {
  SMOKE_CHECK(opts.mode == CaptureMode::kNone || IsSmokeMode(opts.mode));
  SMOKE_CHECK(row_begin <= row_end && row_end <= input.num_rows());
  const size_t n = input.num_rows();
  PredicateList plist(input, preds);

  SelectResult result;
  result.output = Table(input.schema());
  const bool smoke_capture = IsSmokeMode(opts.mode);
  const bool want_b = smoke_capture && opts.capture_backward;
  const bool want_f = smoke_capture && opts.capture_forward;

  RidArray backward;
  RidArray forward;
  if (want_f) forward.assign(n, kInvalidRid);
  if (want_b) {
    // EC hint: pre-allocate the backward rid array from the selectivity
    // estimate; underestimates fall back to vector growth.
    double sel = opts.hints != nullptr ? opts.hints->selection_selectivity
                                       : -1.0;
    if (sel >= 0) {
      backward.reserve(
          static_cast<size_t>(sel * static_cast<double>(row_end - row_begin)) +
          1);
    }
  }

  rid_t ctr_o = 0;
  for (rid_t ctr_i = row_begin; ctr_i < row_end; ++ctr_i) {
    if (!plist.Eval(ctr_i)) continue;
    result.output.AppendRowFrom(input, ctr_i);
    if (want_b) backward.push_back(ctr_i);
    if (want_f) forward[ctr_i] = ctr_o;
    ++ctr_o;
  }

  if (opts.mode != CaptureMode::kNone) {
    TableLineage& lin = result.lineage.AddInput(input_name, &input);
    if (want_b) lin.backward = LineageIndex::FromArray(std::move(backward));
    if (want_f) lin.forward = LineageIndex::FromArray(std::move(forward));
  }
  result.lineage.set_output_cardinality(ctr_o);
  return result;
}

SelectResult SelectExec(const Table& input, const std::string& input_name,
                        const std::vector<Predicate>& preds,
                        const CaptureOptions& opts) {
  const size_t n = input.num_rows();

  if (opts.WantsParallel()) {
    PredicateList plist(input, preds);
    if (opts.scheduler != nullptr) {
      return SelectExecParallel(input, input_name, plist, opts,
                                opts.scheduler);
    }
    MorselScheduler local(opts.num_threads);
    return SelectExecParallel(input, input_name, plist, opts, &local);
  }

  // The sequential Smoke/baseline loop is the full-range morsel execution.
  if (opts.mode == CaptureMode::kNone || IsSmokeMode(opts.mode)) {
    return SelectExecRange(input, input_name, 0, static_cast<rid_t>(n),
                           preds, opts);
  }

  // ---- logic / physical baseline modes ----
  PredicateList plist(input, preds);
  SelectResult result;
  result.output = Table(OutputSchema(input, opts.mode));
  TableLineage* lin = &result.lineage.AddInput(input_name, &input);
  const bool phys_capture =
      opts.mode == CaptureMode::kPhysMem || opts.mode == CaptureMode::kPhysBdb;

  if (phys_capture) {
    SMOKE_CHECK(opts.writer != nullptr);
    opts.writer->BeginCapture(n);
  }

  // ctr_i is the loop variable; ctr_o the output counter.
  rid_t ctr_o = 0;
  const bool annotate_rid = opts.mode == CaptureMode::kLogicRid ||
                            opts.mode == CaptureMode::kLogicIdx;
  const bool annotate_tup = opts.mode == CaptureMode::kLogicTup;
  const size_t in_cols = input.num_columns();

  for (rid_t ctr_i = 0; ctr_i < n; ++ctr_i) {
    if (!plist.Eval(ctr_i)) continue;
    result.output.AppendRowFrom(input, ctr_i);
    if (annotate_rid) {
      result.output.mutable_column(in_cols).AppendInt(ctr_i);
    } else if (annotate_tup) {
      for (size_t c = 0; c < in_cols; ++c) {
        result.output.mutable_column(in_cols + c)
            .AppendFrom(input.column(c), ctr_i);
      }
    }
    if (phys_capture) opts.writer->Emit(ctr_o, ctr_i);
    ++ctr_o;
  }

  if (phys_capture) opts.writer->FinishCapture(ctr_o);

  if (opts.mode == CaptureMode::kLogicIdx) {
    // Logic-Idx scans the annotated output to build the same end-to-end
    // indexes Smoke produces (here the annotation scan is the prov_rid
    // column of the output we just materialized).
    RidArray b2;
    RidArray f2(n, kInvalidRid);
    const auto& ann = result.output.column(in_cols).ints();
    for (rid_t o = 0; o < ann.size(); ++o) {
      rid_t r = static_cast<rid_t>(ann[o]);
      if (opts.capture_backward) b2.push_back(r);
      if (opts.capture_forward) f2[r] = o;
    }
    if (opts.capture_backward)
      lin->backward = LineageIndex::FromArray(std::move(b2));
    if (opts.capture_forward)
      lin->forward = LineageIndex::FromArray(std::move(f2));
  }

  result.lineage.set_output_cardinality(ctr_o);
  return result;
}

}  // namespace smoke
