#include "engine/select.h"

#include "common/macros.h"

namespace smoke {

namespace {

Schema OutputSchema(const Table& input, CaptureMode mode) {
  Schema s = input.schema();
  if (mode == CaptureMode::kLogicRid || mode == CaptureMode::kLogicIdx) {
    s.AddField("prov_rid", DataType::kInt64);
  } else if (mode == CaptureMode::kLogicTup) {
    for (const auto& f : input.schema().fields()) {
      s.AddField("prov_" + f.name, f.type);
    }
  }
  return s;
}

}  // namespace

SelectResult SelectExec(const Table& input, const std::string& input_name,
                        const std::vector<Predicate>& preds,
                        const CaptureOptions& opts) {
  const size_t n = input.num_rows();
  PredicateList plist(input, preds);

  SelectResult result;
  result.output = Table(OutputSchema(input, opts.mode));
  TableLineage* lin = nullptr;
  const bool smoke_capture =
      opts.mode == CaptureMode::kInject || opts.mode == CaptureMode::kDefer;
  const bool phys_capture =
      opts.mode == CaptureMode::kPhysMem || opts.mode == CaptureMode::kPhysBdb;
  if (opts.mode != CaptureMode::kNone) {
    lin = &result.lineage.AddInput(input_name, &input);
  }

  RidArray backward;
  RidArray forward;
  const bool want_b = smoke_capture && opts.capture_backward;
  const bool want_f = smoke_capture && opts.capture_forward;
  if (want_f) forward.assign(n, kInvalidRid);
  if (want_b) {
    // EC hint: pre-allocate the backward rid array from the selectivity
    // estimate; underestimates fall back to vector growth.
    double sel = opts.hints != nullptr ? opts.hints->selection_selectivity
                                       : -1.0;
    if (sel >= 0) {
      backward.reserve(static_cast<size_t>(sel * static_cast<double>(n)) + 1);
    }
  }

  if (phys_capture) {
    SMOKE_CHECK(opts.writer != nullptr);
    opts.writer->BeginCapture(n);
  }

  // ctr_i is the loop variable; ctr_o the output counter.
  rid_t ctr_o = 0;
  const bool annotate_rid = opts.mode == CaptureMode::kLogicRid ||
                            opts.mode == CaptureMode::kLogicIdx;
  const bool annotate_tup = opts.mode == CaptureMode::kLogicTup;
  const size_t in_cols = input.num_columns();

  for (rid_t ctr_i = 0; ctr_i < n; ++ctr_i) {
    if (!plist.Eval(ctr_i)) continue;
    result.output.AppendRowFrom(input, ctr_i);
    if (annotate_rid) {
      result.output.mutable_column(in_cols).AppendInt(ctr_i);
    } else if (annotate_tup) {
      for (size_t c = 0; c < in_cols; ++c) {
        result.output.mutable_column(in_cols + c)
            .AppendFrom(input.column(c), ctr_i);
      }
    }
    if (want_b) backward.push_back(ctr_i);
    if (want_f) forward[ctr_i] = ctr_o;
    if (phys_capture) opts.writer->Emit(ctr_o, ctr_i);
    ++ctr_o;
  }

  if (phys_capture) opts.writer->FinishCapture(ctr_o);

  if (opts.mode == CaptureMode::kLogicIdx) {
    // Logic-Idx scans the annotated output to build the same end-to-end
    // indexes Smoke produces (here the annotation scan is the prov_rid
    // column of the output we just materialized).
    RidArray b2;
    RidArray f2(n, kInvalidRid);
    const auto& ann = result.output.column(in_cols).ints();
    for (rid_t o = 0; o < ann.size(); ++o) {
      rid_t r = static_cast<rid_t>(ann[o]);
      if (opts.capture_backward) b2.push_back(r);
      if (opts.capture_forward) f2[r] = o;
    }
    if (opts.capture_backward)
      lin->backward = LineageIndex::FromArray(std::move(b2));
    if (opts.capture_forward)
      lin->forward = LineageIndex::FromArray(std::move(f2));
  } else if (smoke_capture) {
    if (want_b) lin->backward = LineageIndex::FromArray(std::move(backward));
    if (want_f) lin->forward = LineageIndex::FromArray(std::move(forward));
  }

  result.lineage.set_output_cardinality(ctr_o);
  return result;
}

}  // namespace smoke
