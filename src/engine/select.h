// Instrumented selection (paper Section 3.2.2).
//
// Selection is an if-condition in a for-loop over the input. Both lineage
// directions are rid arrays. Inject tracks two counters (ctr_i, ctr_o); the
// forward array is pre-allocated from the input cardinality, and the
// backward array can be pre-allocated from a selectivity estimate
// (Smoke-I+EC; overestimating beats resizing — paper Appendix G.1).
// Defer is strictly inferior to Inject for selection and is mapped to
// Inject, as in the paper.
//
// In composable plans this kernel backs the kSelect node (plan/operator.h);
// its rid arrays become the node's lineage fragment.
#ifndef SMOKE_ENGINE_SELECT_H_
#define SMOKE_ENGINE_SELECT_H_

#include <string>
#include <vector>

#include "engine/capture.h"
#include "engine/expr.h"
#include "lineage/query_lineage.h"
#include "storage/table.h"

namespace smoke {

/// Result of a selection: the filtered output plus (optionally) lineage.
/// Under kLogicRid/kLogicIdx the output carries a trailing "prov_rid"
/// annotation column; under kLogicTup trailing copies of all input columns.
struct SelectResult {
  Table output;
  QueryLineage lineage;
};

/// Runs SELECT * FROM input WHERE preds with the capture technique in
/// `opts`. `input_name` labels the lineage endpoint.
SelectResult SelectExec(const Table& input, const std::string& input_name,
                        const std::vector<Predicate>& preds,
                        const CaptureOptions& opts);

/// Morsel/partition execution (plan/operator.h): filters only rows
/// [row_begin, row_end) of `input`. Backward lineage holds absolute input
/// rids; the forward array spans the full input with kInvalidRid outside
/// the view, so fragments of disjoint views concatenate with
/// lineage/fragment_merge.h. Smoke modes and kNone only.
SelectResult SelectExecRange(const Table& input, const std::string& input_name,
                             rid_t row_begin, rid_t row_end,
                             const std::vector<Predicate>& preds,
                             const CaptureOptions& opts);

}  // namespace smoke

#endif  // SMOKE_ENGINE_SELECT_H_
