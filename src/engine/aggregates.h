// Aggregate functions over a flat double-slot arena.
//
// Group-by operators keep one contiguous block of double slots per group
// (the "intermediate aggregation state" of the paper's γht). AggLayout maps
// a list of AggSpecs onto slots and provides init/update/finalize.
// Supported: COUNT(*), SUM(expr), MIN(expr), MAX(expr), AVG(expr) —
// the algebraic/distributive functions the push-down optimization supports.
#ifndef SMOKE_ENGINE_AGGREGATES_H_
#define SMOKE_ENGINE_AGGREGATES_H_

#include <string>
#include <vector>

#include "engine/expr.h"
#include "storage/table.h"

namespace smoke {

enum class AggOp : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// \brief One aggregate in a group-by's SELECT list.
struct AggSpec {
  AggOp op = AggOp::kCount;
  ScalarExpr expr;   // ignored for kCount
  std::string name;  // output column name
  /// Which input relation the expression reads, as an index into the
  /// multi-table AggLayout constructor's table list (0 = fact for SPJA
  /// blocks; single-table operators ignore it).
  int src = 0;

  static AggSpec Count(std::string name = "count") {
    AggSpec a;
    a.op = AggOp::kCount;
    a.name = std::move(name);
    return a;
  }
  static AggSpec Sum(ScalarExpr e, std::string name = "sum") {
    AggSpec a;
    a.op = AggOp::kSum;
    a.expr = std::move(e);
    a.name = std::move(name);
    return a;
  }
  static AggSpec Min(ScalarExpr e, std::string name = "min") {
    AggSpec a;
    a.op = AggOp::kMin;
    a.expr = std::move(e);
    a.name = std::move(name);
    return a;
  }
  static AggSpec Max(ScalarExpr e, std::string name = "max") {
    AggSpec a;
    a.op = AggOp::kMax;
    a.expr = std::move(e);
    a.name = std::move(name);
    return a;
  }
  static AggSpec Avg(ScalarExpr e, std::string name = "avg") {
    AggSpec a;
    a.op = AggOp::kAvg;
    a.expr = std::move(e);
    a.name = std::move(name);
    return a;
  }
};

/// \brief Binds AggSpecs to a table and lays their state out in a per-group
/// stride of double slots. COUNT uses 1 slot; SUM/MIN/MAX 1; AVG 2 (sum,
/// count). Updates run compiled expressions — no virtual calls per row.
class AggLayout {
 public:
  AggLayout() = default;
  AggLayout(const Table& table, const std::vector<AggSpec>& specs);

  /// Multi-table binding for SPJA blocks: each spec's expression is
  /// compiled against tables[spec.src].
  AggLayout(const std::vector<const Table*>& tables,
            const std::vector<AggSpec>& specs);

  /// Re-compiles the bound expressions against `table`'s current column
  /// payloads. Required after the table's columns reallocate (appends) —
  /// compiled expressions hold raw data pointers. Single-table layouts only.
  void Rebind(const Table& table);

  size_t stride() const { return stride_; }
  size_t num_aggs() const { return specs_.size(); }
  const std::vector<AggSpec>& specs() const { return specs_; }

  /// Writes initial state into `state[0..stride)`.
  void Init(double* state) const;

  /// Folds row `rid` into `state` (single-table binding).
  void Update(double* state, rid_t rid) const;

  /// Folds one joined row into `state`; rids[i] addresses tables[i] from the
  /// multi-table constructor.
  void UpdateMulti(double* state, const rid_t* rids) const;

  /// Merges `src` state into `dst` (used by cube/partial-aggregate merging).
  void Merge(double* dst, const double* src) const;

  /// Appends one finalized output value per aggregate to `cols` (parallel to
  /// specs; cols[i] must have the type from OutputField(i)).
  void Finalize(const double* state, std::vector<Column*>* cols) const;

  /// Output schema contribution of aggregate `i`.
  Field OutputField(size_t i) const;

  /// Finalized scalar value of aggregate `i` (for cube lookups).
  double FinalValue(const double* state, size_t i) const;

 private:
  struct BoundAgg {
    AggOp op;
    size_t slot;
    CompiledExpr expr;  // unused for kCount
    bool has_expr = false;
    int src = 0;
  };

  std::vector<AggSpec> specs_;
  std::vector<BoundAgg> bound_;
  size_t stride_ = 0;
};

}  // namespace smoke

#endif  // SMOKE_ENGINE_AGGREGATES_H_
