// Byte-encoding of composite keys for hash operators (group-by, set ops).
#ifndef SMOKE_ENGINE_KEY_ENCODE_H_
#define SMOKE_ENGINE_KEY_ENCODE_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace smoke {

/// Encodes row `rid`'s values of `cols` as bytes (raw 8-byte ints/doubles,
/// length-prefixed strings) — injective, suitable as a hash-map key.
inline std::string EncodeRowKey(const Table& in, const std::vector<int>& cols,
                                rid_t rid) {
  std::string key;
  key.reserve(cols.size() * 8);
  for (int c : cols) {
    const Column& col = in.column(static_cast<size_t>(c));
    switch (col.type()) {
      case DataType::kInt64: {
        int64_t v = col.ints()[rid];
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kFloat64: {
        double v = col.doubles()[rid];
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        const std::string& v = col.strings()[rid];
        uint32_t len = static_cast<uint32_t>(v.size());
        key.append(reinterpret_cast<const char*>(&len), sizeof(len));
        key.append(v);
        break;
      }
    }
  }
  return key;
}

}  // namespace smoke

#endif  // SMOKE_ENGINE_KEY_ENCODE_H_
