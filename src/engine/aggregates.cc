#include "engine/aggregates.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace smoke {

AggLayout::AggLayout(const Table& table, const std::vector<AggSpec>& specs)
    : AggLayout(std::vector<const Table*>{&table}, specs) {}

AggLayout::AggLayout(const std::vector<const Table*>& tables,
                     const std::vector<AggSpec>& specs)
    : specs_(specs) {
  for (const AggSpec& s : specs_) {
    SMOKE_CHECK(s.src >= 0 && static_cast<size_t>(s.src) < tables.size());
    BoundAgg b;
    b.op = s.op;
    b.slot = stride_;
    b.src = s.src;
    if (s.op != AggOp::kCount) {
      b.expr = CompiledExpr(*tables[static_cast<size_t>(s.src)], s.expr);
      b.has_expr = true;
    }
    stride_ += (s.op == AggOp::kAvg) ? 2 : 1;
    bound_.push_back(std::move(b));
  }
}

void AggLayout::Rebind(const Table& table) {
  for (size_t i = 0; i < bound_.size(); ++i) {
    if (bound_[i].has_expr) {
      bound_[i].expr = CompiledExpr(table, specs_[i].expr);
    }
  }
}

void AggLayout::Init(double* state) const {
  for (const BoundAgg& b : bound_) {
    switch (b.op) {
      case AggOp::kCount:
      case AggOp::kSum:
        state[b.slot] = 0;
        break;
      case AggOp::kMin:
        state[b.slot] = std::numeric_limits<double>::infinity();
        break;
      case AggOp::kMax:
        state[b.slot] = -std::numeric_limits<double>::infinity();
        break;
      case AggOp::kAvg:
        state[b.slot] = 0;
        state[b.slot + 1] = 0;
        break;
    }
  }
}

void AggLayout::Update(double* state, rid_t rid) const {
  for (const BoundAgg& b : bound_) {
    switch (b.op) {
      case AggOp::kCount:
        state[b.slot] += 1;
        break;
      case AggOp::kSum:
        state[b.slot] += b.expr.Eval(rid);
        break;
      case AggOp::kMin:
        state[b.slot] = std::min(state[b.slot], b.expr.Eval(rid));
        break;
      case AggOp::kMax:
        state[b.slot] = std::max(state[b.slot], b.expr.Eval(rid));
        break;
      case AggOp::kAvg: {
        state[b.slot] += b.expr.Eval(rid);
        state[b.slot + 1] += 1;
        break;
      }
    }
  }
}

void AggLayout::UpdateMulti(double* state, const rid_t* rids) const {
  for (const BoundAgg& b : bound_) {
    const rid_t rid = rids[b.src];
    switch (b.op) {
      case AggOp::kCount:
        state[b.slot] += 1;
        break;
      case AggOp::kSum:
        state[b.slot] += b.expr.Eval(rid);
        break;
      case AggOp::kMin:
        state[b.slot] = std::min(state[b.slot], b.expr.Eval(rid));
        break;
      case AggOp::kMax:
        state[b.slot] = std::max(state[b.slot], b.expr.Eval(rid));
        break;
      case AggOp::kAvg:
        state[b.slot] += b.expr.Eval(rid);
        state[b.slot + 1] += 1;
        break;
    }
  }
}

void AggLayout::Merge(double* dst, const double* src) const {
  for (const BoundAgg& b : bound_) {
    switch (b.op) {
      case AggOp::kCount:
      case AggOp::kSum:
        dst[b.slot] += src[b.slot];
        break;
      case AggOp::kMin:
        dst[b.slot] = std::min(dst[b.slot], src[b.slot]);
        break;
      case AggOp::kMax:
        dst[b.slot] = std::max(dst[b.slot], src[b.slot]);
        break;
      case AggOp::kAvg:
        dst[b.slot] += src[b.slot];
        dst[b.slot + 1] += src[b.slot + 1];
        break;
    }
  }
}

double AggLayout::FinalValue(const double* state, size_t i) const {
  const BoundAgg& b = bound_[i];
  switch (b.op) {
    case AggOp::kCount:
    case AggOp::kSum:
    case AggOp::kMin:
    case AggOp::kMax:
      return state[b.slot];
    case AggOp::kAvg:
      return state[b.slot + 1] == 0 ? 0 : state[b.slot] / state[b.slot + 1];
  }
  return 0;
}

void AggLayout::Finalize(const double* state,
                         std::vector<Column*>* cols) const {
  for (size_t i = 0; i < bound_.size(); ++i) {
    double v = FinalValue(state, i);
    Column* c = (*cols)[i];
    if (c->type() == DataType::kInt64) {
      c->AppendInt(static_cast<int64_t>(v));
    } else {
      c->AppendDouble(v);
    }
  }
}

Field AggLayout::OutputField(size_t i) const {
  const AggSpec& s = specs_[i];
  DataType t =
      (s.op == AggOp::kCount) ? DataType::kInt64 : DataType::kFloat64;
  return Field{s.name, t};
}

}  // namespace smoke
