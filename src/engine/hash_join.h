// Instrumented hash equi-join (paper Section 3.2.4).
//
// A hash join splits into ⋈ht (build on the left relation A) and ⋈probe
// (probe with the right relation B). Lineage: backward rid *arrays* for both
// sides (each output row has exactly one A and one B ancestor) and forward
// rid *indexes* (an input record can produce many join results).
//
//  - Inject: ⋈'ht augments each hash entry with i_rids (A rids for the
//    entry's key); ⋈'probe tracks the output rid and populates all four
//    indexes. Forward-index resizing for A is the dominant overhead because
//    output cardinalities are unknown during the probe.
//  - Defer: adds o_rids to each entry — the rid of the *first* output record
//    for each B match (output records for one match run are contiguous).
//    After the probe, scanht pre-allocates and populates A's forward and
//    backward indexes exactly. Variant kDeferForwardOnly defers only A's
//    forward index (Smoke-D-DeferForw in Figure 7).
//  - Pk-fk optimization: i_rids collapses to a single rid; B's forward index
//    is an rid array; backward arrays are pre-allocated (join cardinality =
//    matched-B cardinality); Defer ≡ Inject.
//  - Logic-Rid: output annotated with prov_rid_a / prov_rid_b columns (the
//    join output *is* Perm's denormalized lineage graph). Logic-Tup is the
//    unannotated output itself. Logic-Idx additionally scans the annotated
//    output to build the four rid indexes.
//  - Phys-Mem / Phys-Bdb: one virtual Emit per (output, input) edge — two
//    per output row — via CaptureOptions::writer (A side) and
//    JoinSpec::writer_right (B side).
//
// In composable plans this kernel backs the kHashJoin node
// (plan/operator.h): the left child is the build side, the right the probe
// side, and the four indexes become the node's two lineage fragments.
#ifndef SMOKE_ENGINE_HASH_JOIN_H_
#define SMOKE_ENGINE_HASH_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "engine/capture.h"
#include "lineage/query_lineage.h"
#include "storage/table.h"

namespace smoke {

/// Join description. Join keys must be int64 columns (all joins in the
/// paper's workloads are integer keys).
struct JoinSpec {
  int left_key = -1;
  int right_key = -1;
  /// Name-based key references: resolved by PlanBuilder::Build against the
  /// build (left) / probe (right) child's output schema, then cleared.
  std::string left_key_name;
  std::string right_key_name;

  /// Build-side key is unique (primary key): enables the pk-fk
  /// optimizations above.
  bool pk_build = false;

  /// When false, the join output relation is not materialized (used by the
  /// M:N microbenchmark whose output exceeds memory; lineage indexes are
  /// still built). Lineage and annotations are unaffected.
  bool materialize_output = true;

  /// Defer variant (only meaningful under CaptureMode::kDefer).
  enum class DeferVariant : uint8_t { kBoth, kForwardOnly };
  DeferVariant defer_variant = DeferVariant::kBoth;

  /// Phys-* edge sink for the right relation (left uses
  /// CaptureOptions::writer).
  LineageWriter* writer_right = nullptr;
};

struct JoinResult {
  Table output;           ///< left columns ++ right columns (+ annotations)
  QueryLineage lineage;   ///< input 0 = left (A), input 1 = right (B)
  size_t output_cardinality = 0;  ///< valid even when not materialized
};

/// Executes A ⋈ B with the capture technique in `opts`.
JoinResult HashJoinExec(const Table& left, const std::string& left_name,
                        const Table& right, const std::string& right_name,
                        const JoinSpec& spec, const CaptureOptions& opts);

}  // namespace smoke

#endif  // SMOKE_ENGINE_HASH_JOIN_H_
