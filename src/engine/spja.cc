#include "engine/spja.h"

#include <unordered_map>

#include "common/hash.h"
#include "common/macros.h"
#include "engine/key_encode.h"
#include "plan/executor.h"
#include "plan/plan.h"

namespace smoke {

namespace {

constexpr size_t kMaxDims = 8;

/// Bound accessor for one dimension's fk source column.
struct FkRef {
  const int64_t* col = nullptr;
  int src = ColRef::kFact;  // kFact: index by fact rid; else by dim_rids[src]
};

/// Encodes composite group keys from the current (fact rid, dim rids).
struct KeyBinder {
  struct Part {
    const Column* col;
    int table;  // ColRef::kFact or dim index
  };
  std::vector<Part> parts;
  bool int_fast = false;
  const int64_t* fast_col = nullptr;

  void Bind(const SPJAQuery& q) {
    for (const ColRef& ref : q.group_by) {
      const Table* t = ref.table == ColRef::kFact
                           ? q.fact
                           : q.dims[static_cast<size_t>(ref.table)].table;
      parts.push_back({&t->column(static_cast<size_t>(ref.col)), ref.table});
    }
    int_fast = parts.size() == 1 && parts[0].table == ColRef::kFact &&
               parts[0].col->type() == DataType::kInt64;
    if (int_fast) fast_col = parts[0].col->ints().data();
  }

  std::string StrKey(rid_t fact_rid, const rid_t* dim_rids) const {
    std::string key;
    key.reserve(parts.size() * 8);
    for (const Part& p : parts) {
      rid_t rid = p.table == ColRef::kFact
                      ? fact_rid
                      : dim_rids[static_cast<size_t>(p.table)];
      switch (p.col->type()) {
        case DataType::kInt64: {
          int64_t v = p.col->ints()[rid];
          key.append(reinterpret_cast<const char*>(&v), sizeof(v));
          break;
        }
        case DataType::kFloat64: {
          double v = p.col->doubles()[rid];
          key.append(reinterpret_cast<const char*>(&v), sizeof(v));
          break;
        }
        case DataType::kString: {
          const std::string& v = p.col->strings()[rid];
          uint32_t len = static_cast<uint32_t>(v.size());
          key.append(reinterpret_cast<const char*>(&len), sizeof(len));
          key.append(v);
          break;
        }
      }
    }
    return key;
  }
};

}  // namespace

SPJAResult SPJAExec(const SPJAQuery& q, const CaptureOptions& opts,
                    const SPJAPushdown* push) {
  // Canonical plan form: one SpjaBlock node over scans of the fact and
  // dimension tables, executed through the composable plan API.
  PlanBuilder builder;
  int root = builder.SpjaBlock(q, push != nullptr ? *push : SPJAPushdown{});
  LogicalPlan plan;
  Status st = builder.Build(root, &plan);
  SMOKE_CHECK(st.ok());
  PlanResult pr;
  st = ExecutePlan(plan, opts, &pr);
  SMOKE_CHECK(st.ok());
  SMOKE_CHECK(pr.spja_artifacts != nullptr);
  SPJAResult result = std::move(*pr.spja_artifacts);
  result.output = std::move(pr.output);
  result.lineage = std::move(pr.lineage);
  return result;
}

namespace internal {

SPJAResult SPJAExecFused(const SPJAQuery& q, const CaptureOptions& opts,
                         const SPJAPushdown* push) {
  SMOKE_CHECK(q.fact != nullptr);
  SMOKE_CHECK(q.dims.size() <= kMaxDims);
  const Table& fact = *q.fact;
  const size_t n = fact.num_rows();
  const size_t nd = q.dims.size();
  const size_t nt = 1 + nd;
  const CaptureMode mode = opts.mode;
  SMOKE_CHECK(mode != CaptureMode::kPhysMem && mode != CaptureMode::kPhysBdb);
  const bool has_push = push != nullptr && !push->empty();
  if (has_push) SMOKE_CHECK(mode == CaptureMode::kInject);

  SPJAResult result;
  if (has_push) result.applied_pushdown = *push;

  // ---- pipeline breakers: build filtered dimension hash tables ----
  // The hash-table payload *is* the dimension rid — the lineage annotation
  // of the build side comes for free (reuse, P4).
  std::vector<IntKeyMap> dim_maps;
  dim_maps.reserve(nd);
  std::vector<FkRef> fks(nd);
  for (size_t j = 0; j < nd; ++j) {
    const SPJADim& dim = q.dims[j];
    const Table& dt = *dim.table;
    dim_maps.emplace_back(dt.num_rows());
    PredicateList filt(dt, dim.filters);
    const auto& pks = dt.column(static_cast<size_t>(dim.pk_col)).ints();
    for (rid_t r = 0; r < dt.num_rows(); ++r) {
      if (!filt.Eval(r)) continue;
      dim_maps[j].Insert(pks[r], r);
    }
    const Table* src_table =
        dim.fk.table == ColRef::kFact
            ? q.fact
            : q.dims[static_cast<size_t>(dim.fk.table)].table;
    SMOKE_CHECK(dim.fk.table < static_cast<int>(j));  // joined in order
    fks[j].col =
        src_table->column(static_cast<size_t>(dim.fk.col)).ints().data();
    fks[j].src = dim.fk.table;
  }

  PredicateList fact_filt(fact, q.fact_filters);

  // ---- group-by state ----
  std::vector<const Table*> tables;
  tables.push_back(q.fact);
  for (const auto& d : q.dims) tables.push_back(d.table);
  AggLayout layout(tables, q.aggs);
  const size_t stride = layout.stride();

  KeyBinder keys;
  keys.Bind(q);
  size_t expected = opts.hints && opts.hints->expected_groups
                        ? opts.hints->expected_groups
                        : 1024;
  IntKeyMap gmap(expected);
  std::unordered_map<std::string, uint32_t> smap;
  smap.reserve(expected);

  std::vector<double> agg_state;
  std::vector<uint32_t> counts;
  std::vector<rid_t> first_fact;
  std::vector<std::vector<rid_t>> first_dim(nd);

  // ---- capture state ----
  std::vector<uint8_t> want_tbl(nt, 0);
  want_tbl[0] = opts.WantsTable(q.fact_name);
  for (size_t j = 0; j < nd; ++j) want_tbl[1 + j] = opts.WantsTable(q.dims[j].name);
  const bool want_bw = opts.capture_backward;
  const bool want_fw = opts.capture_forward;
  const bool inject = mode == CaptureMode::kInject;
  const bool defer = mode == CaptureMode::kDefer;
  const bool logic = mode == CaptureMode::kLogicRid ||
                     mode == CaptureMode::kLogicTup ||
                     mode == CaptureMode::kLogicIdx;

  std::vector<std::vector<RidVec>> bw(nt);  // [table][group] rid lists
  RidArray fact_fw;
  std::vector<RidIndex> dim_fw(nd);
  if (inject && want_fw) {
    if (want_tbl[0]) fact_fw.assign(n, kInvalidRid);
    for (size_t j = 0; j < nd; ++j) {
      if (want_tbl[1 + j]) dim_fw[j].Resize(q.dims[j].table->num_rows());
    }
  }

  // ---- push-down state ----
  PredicateList sel_push;
  bool use_sel = false, use_skip = false, use_cube = false;
  const uint32_t* skip_codes = nullptr;
  if (has_push) {
    if (!push->sel_fact.empty()) {
      sel_push = PredicateList(fact, push->sel_fact);
      use_sel = true;
    }
    if (!push->skip_cols.empty()) {
      result.skip_dict = BuildDictionary(fact, push->skip_cols);
      result.skip_index.SetNumCodes(result.skip_dict.num_codes);
      skip_codes = result.skip_dict.codes.data();
      use_skip = true;
    }
    if (!push->cube_cols.empty()) {
      result.cube.Init(fact, push->cube_cols, push->cube_aggs);
      use_cube = true;
    }
  }

  // ---- helpers ----
  auto new_group = [&](rid_t r, const rid_t* dim_rids) -> uint32_t {
    uint32_t g = static_cast<uint32_t>(counts.size());
    agg_state.resize(agg_state.size() + stride);
    layout.Init(&agg_state[g * stride]);
    counts.push_back(0);
    first_fact.push_back(r);
    for (size_t j = 0; j < nd; ++j) first_dim[j].push_back(dim_rids[j]);
    if (inject && want_bw) {
      for (size_t t = 0; t < nt; ++t) {
        if (want_tbl[t] && !(t == 0 && use_skip)) bw[t].emplace_back();
      }
    }
    if (use_skip) result.skip_index.AddOutput();
    if (use_cube) result.cube.AddGroup();
    return g;
  };

  auto find_or_create = [&](rid_t r, const rid_t* dim_rids) -> uint32_t {
    if (keys.int_fast) {
      uint32_t fresh = static_cast<uint32_t>(counts.size());
      uint32_t g = gmap.FindOrInsert(keys.fast_col[r], fresh);
      if (g == IntKeyMap::kNotFound) g = new_group(r, dim_rids);
      return g;
    }
    std::string key = keys.StrKey(r, dim_rids);
    auto [it, inserted] =
        smap.emplace(std::move(key), static_cast<uint32_t>(counts.size()));
    if (inserted) return new_group(r, dim_rids);
    return it->second;
  };

  auto find_group = [&](rid_t r, const rid_t* dim_rids) -> uint32_t {
    if (keys.int_fast) return gmap.Find(keys.fast_col[r]);
    auto it = smap.find(keys.StrKey(r, dim_rids));
    return it == smap.end() ? IntKeyMap::kNotFound : it->second;
  };

  auto for_each_passing = [&](auto&& fn) {
    rid_t dim_rids[kMaxDims];
    for (rid_t r = 0; r < n; ++r) {
      if (!fact_filt.Eval(r)) continue;
      bool ok = true;
      for (size_t j = 0; j < nd; ++j) {
        int64_t fkv = fks[j].src == ColRef::kFact
                          ? fks[j].col[r]
                          : fks[j].col[dim_rids[fks[j].src]];
        uint32_t d = dim_maps[j].Find(fkv);
        if (d == IntKeyMap::kNotFound) {
          ok = false;
          break;
        }
        dim_rids[j] = d;
      }
      if (!ok) continue;
      fn(r, dim_rids);
    }
  };

  // ---- pass 1: pipelined scan + probes + final aggregation ----
  if (inject) {
    for_each_passing([&](rid_t r, const rid_t* dim_rids) {
      uint32_t g = find_or_create(r, dim_rids);
      rid_t rids[kMaxDims + 1];
      rids[0] = r;
      for (size_t j = 0; j < nd; ++j) rids[1 + j] = dim_rids[j];
      layout.UpdateMulti(&agg_state[g * stride], rids);
      ++counts[g];
      if (want_bw) {
        const bool pass_sel = !use_sel || sel_push.Eval(r);
        if (want_tbl[0] && pass_sel) {
          if (use_skip) result.skip_index.Append(g, skip_codes[r], r);
          else bw[0][g].PushBack(r);
        }
        for (size_t j = 0; j < nd; ++j) {
          if (want_tbl[1 + j]) bw[1 + j][g].PushBack(dim_rids[j]);
        }
      }
      if (want_fw) {
        if (want_tbl[0]) fact_fw[r] = g;
        for (size_t j = 0; j < nd; ++j) {
          if (!want_tbl[1 + j]) continue;
          RidVec& l = dim_fw[j].list(dim_rids[j]);
          if (l.empty() || l[l.size() - 1] != g) l.PushBack(g);
        }
      }
      if (use_cube) result.cube.Update(g, r);
    });
  } else {
    // Baseline / Defer / Logic: clean pipeline, no capture in the hot loop.
    for_each_passing([&](rid_t r, const rid_t* dim_rids) {
      uint32_t g = find_or_create(r, dim_rids);
      rid_t rids[kMaxDims + 1];
      rids[0] = r;
      for (size_t j = 0; j < nd; ++j) rids[1 + j] = dim_rids[j];
      layout.UpdateMulti(&agg_state[g * stride], rids);
      ++counts[g];
    });
  }

  // ---- γagg: materialize the output (groups in slot order) ----
  const size_t num_groups = counts.size();
  {
    Schema os;
    for (const ColRef& ref : q.group_by) {
      const Table* t = ref.table == ColRef::kFact
                           ? q.fact
                           : q.dims[static_cast<size_t>(ref.table)].table;
      std::string name = t->schema().field(static_cast<size_t>(ref.col)).name;
      if (os.IndexOf(name) >= 0) name += "_2";
      os.AddField(name, t->schema().field(static_cast<size_t>(ref.col)).type);
    }
    for (size_t i = 0; i < layout.num_aggs(); ++i) {
      os.AddField(layout.OutputField(i).name, layout.OutputField(i).type);
    }
    result.output = Table(os);
    result.output.Reserve(num_groups);
    std::vector<Column*> agg_cols;
    for (size_t i = 0; i < layout.num_aggs(); ++i) {
      agg_cols.push_back(
          &result.output.mutable_column(q.group_by.size() + i));
    }
    for (size_t g = 0; g < num_groups; ++g) {
      for (size_t k = 0; k < q.group_by.size(); ++k) {
        const ColRef& ref = q.group_by[k];
        const Table* t = ref.table == ColRef::kFact
                             ? q.fact
                             : q.dims[static_cast<size_t>(ref.table)].table;
        rid_t rep = ref.table == ColRef::kFact
                        ? first_fact[g]
                        : first_dim[static_cast<size_t>(ref.table)][g];
        result.output.mutable_column(k).AppendFrom(
            t->column(static_cast<size_t>(ref.col)), rep);
      }
      layout.Finalize(&agg_state[g * stride], &agg_cols);
    }
  }
  result.output_cardinality = num_groups;
  result.group_counts = counts;

  // ---- Defer: second pass with exactly-sized indexes ----
  if (defer) {
    if (want_bw) {
      for (size_t t = 0; t < nt; ++t) {
        if (!want_tbl[t]) continue;
        bw[t].resize(num_groups);
        for (size_t g = 0; g < num_groups; ++g) bw[t][g].Reserve(counts[g]);
      }
    }
    if (want_fw) {
      if (want_tbl[0]) fact_fw.assign(n, kInvalidRid);
      for (size_t j = 0; j < nd; ++j) {
        if (want_tbl[1 + j]) dim_fw[j].Resize(q.dims[j].table->num_rows());
      }
    }
    for_each_passing([&](rid_t r, const rid_t* dim_rids) {
      uint32_t g = find_group(r, dim_rids);
      SMOKE_DCHECK(g != IntKeyMap::kNotFound);
      if (want_bw) {
        if (want_tbl[0]) bw[0][g].PushBack(r);
        for (size_t j = 0; j < nd; ++j) {
          if (want_tbl[1 + j]) bw[1 + j][g].PushBack(dim_rids[j]);
        }
      }
      if (want_fw) {
        if (want_tbl[0]) fact_fw[r] = g;
        for (size_t j = 0; j < nd; ++j) {
          if (!want_tbl[1 + j]) continue;
          RidVec& l = dim_fw[j].list(dim_rids[j]);
          if (l.empty() || l[l.size() - 1] != g) l.PushBack(g);
        }
      }
    });
  }

  // ---- Logic modes: materialize the denormalized annotated relation ----
  if (logic) {
    Schema as = result.output.schema();
    const size_t base_cols = as.num_fields();
    if (mode == CaptureMode::kLogicTup) {
      for (size_t t = 0; t < nt; ++t) {
        const Table* tt = tables[t];
        const std::string& tn = t == 0 ? q.fact_name : q.dims[t - 1].name;
        for (const auto& f : tt->schema().fields()) {
          as.AddField("prov_" + tn + "_" + f.name, f.type);
        }
      }
    } else {
      for (size_t t = 0; t < nt; ++t) {
        const std::string& tn = t == 0 ? q.fact_name : q.dims[t - 1].name;
        as.AddField("prov_rid_" + tn, DataType::kInt64);
      }
    }
    Table annotated(as);
    for_each_passing([&](rid_t r, const rid_t* dim_rids) {
      uint32_t g = find_group(r, dim_rids);
      SMOKE_DCHECK(g != IntKeyMap::kNotFound);
      annotated.AppendRowFrom(result.output, g);
      if (mode == CaptureMode::kLogicTup) {
        size_t c = base_cols;
        annotated.AppendRowFrom(fact, r, c);
        c += fact.num_columns();
        for (size_t j = 0; j < nd; ++j) {
          annotated.AppendRowFrom(*q.dims[j].table, dim_rids[j], c);
          c += q.dims[j].table->num_columns();
        }
      } else {
        annotated.mutable_column(base_cols).AppendInt(r);
        for (size_t j = 0; j < nd; ++j) {
          annotated.mutable_column(base_cols + 1 + j).AppendInt(dim_rids[j]);
        }
      }
    });

    if (mode == CaptureMode::kLogicIdx) {
      // Scan the annotated relation to construct end-to-end indexes.
      for (size_t t = 0; t < nt; ++t) bw[t].resize(num_groups);
      if (want_fw) {
        fact_fw.assign(n, kInvalidRid);
        for (size_t j = 0; j < nd; ++j) {
          dim_fw[j].Resize(q.dims[j].table->num_rows());
        }
      }
      const size_t rows = annotated.num_rows();
      std::vector<const int64_t*> prov(nt);
      for (size_t t = 0; t < nt; ++t) {
        prov[t] = annotated.column(base_cols + t).ints().data();
      }
      rid_t dim_rids[kMaxDims];
      for (rid_t row = 0; row < rows; ++row) {
        rid_t r = static_cast<rid_t>(prov[0][row]);
        for (size_t j = 0; j < nd; ++j) {
          dim_rids[j] = static_cast<rid_t>(prov[1 + j][row]);
        }
        uint32_t g = find_group(r, dim_rids);
        if (want_bw) {
          bw[0][g].PushBack(r);
          for (size_t j = 0; j < nd; ++j) bw[1 + j][g].PushBack(dim_rids[j]);
        }
        if (want_fw) {
          fact_fw[r] = g;
          for (size_t j = 0; j < nd; ++j) {
            RidVec& l = dim_fw[j].list(dim_rids[j]);
            if (l.empty() || l[l.size() - 1] != g) l.PushBack(g);
          }
        }
      }
    }
    result.annotated = std::move(annotated);
  }

  // ---- emit lineage ----
  if (mode != CaptureMode::kNone) {
    TableLineage& lf = result.lineage.AddInput(q.fact_name, q.fact);
    result.lineage.set_output_cardinality(num_groups);
    const bool built = inject || defer || mode == CaptureMode::kLogicIdx;
    if (built && want_tbl[0]) {
      if (want_bw && !use_skip) {
        lf.backward = LineageIndex::FromIndex(RidIndex::FromLists(std::move(bw[0])));
      }
      if (want_fw) lf.forward = LineageIndex::FromArray(std::move(fact_fw));
    }
    for (size_t j = 0; j < nd; ++j) {
      TableLineage& ld = result.lineage.AddInput(q.dims[j].name,
                                                 q.dims[j].table);
      if (built && want_tbl[1 + j]) {
        if (want_bw) {
          ld.backward =
              LineageIndex::FromIndex(RidIndex::FromLists(std::move(bw[1 + j])));
        }
        if (want_fw) ld.forward = LineageIndex::FromIndex(std::move(dim_fw[j]));
      }
    }
  }

  return result;
}

}  // namespace internal

}  // namespace smoke
