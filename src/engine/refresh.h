// Refresh and forward propagation (paper Section 2.1, footnote 1: Smoke's
// query model includes refresh and forward propagation in addition to
// backward/forward lineage queries).
//
// Both operate on a GroupByResult whose hash-table handle is retained
// (reuse, P4):
//  - AppendRows: the input relation grew; fold the new rows into the
//    retained hash table, update the output aggregates in place, extend the
//    lineage indexes, and report which output groups changed (including
//    newly created groups, which are appended to the output).
//  - ForwardPropagate: input rows changed in place (non-key columns);
//    forward lineage identifies the affected output groups, whose
//    aggregates are recomputed by a secondary index scan of their backward
//    lineage — the affected set, not the whole relation.
#ifndef SMOKE_ENGINE_REFRESH_H_
#define SMOKE_ENGINE_REFRESH_H_

#include <vector>

#include "engine/group_by.h"

namespace smoke {

/// Incrementally maintains `result` after rows [first_new_rid, input rows)
/// were appended to `input`. Requires result->handle and Inject-captured
/// lineage. Returns the output rids whose aggregates changed (new groups
/// are returned too, in output order).
std::vector<rid_t> RefreshAppend(GroupByResult* result, const Table& input,
                                 rid_t first_new_rid);

/// Recomputes the output groups affected by in-place updates to the given
/// input rows (group-by key columns must be unchanged — key changes require
/// re-running the query). Returns the affected output rids.
std::vector<rid_t> ForwardPropagate(GroupByResult* result, const Table& input,
                                    const std::vector<rid_t>& updated_rids);

}  // namespace smoke

#endif  // SMOKE_ENGINE_REFRESH_H_
