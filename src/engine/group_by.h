// Instrumented hash group-by aggregation (paper Section 3.2.3).
//
// The logical GROUPBY decomposes into two physical operators: γht builds the
// hash table mapping group keys to intermediate aggregation state; γagg scans
// it, finalizes aggregates, and emits output records. Lineage capture:
//
//  - Inject (Smoke-I): γ'ht augments each group's state with an i_rids array
//    of input rids; γ'agg moves those arrays into the backward rid index and
//    fills the forward rid array (both exactly sized, since input/output
//    cardinalities are then known). The dominant overhead is i_rids resizing,
//    which per-key cardinality hints (Smoke-I+TC) remove.
//  - Defer (Smoke-D): γ'ht/γ'agg only assign each group its output rid; the
//    hash table is pinned, and FinalizeDeferredGroupBy (the paper's Zγ) later
//    re-scans the input, probes the *reused* hash table, and populates
//    exactly-sized indexes. Can be scheduled during user think time.
//  - Logic-Rid / Logic-Tup: Perm's aggregation rewrite computes the
//    denormalized lineage graph Q ⋈ input as an annotated output relation.
//  - Logic-Idx: additionally scans the annotated relation to build the same
//    end-to-end rid indexes Smoke emits.
//  - Phys-Mem / Phys-Bdb: one virtual writer->Emit(out, in) per lineage edge.
//
// In composable plans this kernel backs the kGroupBy node (plan/operator.h);
// plans finalize deferred capture eagerly while the input batch is alive.
#ifndef SMOKE_ENGINE_GROUP_BY_H_
#define SMOKE_ENGINE_GROUP_BY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "engine/aggregates.h"
#include "engine/capture.h"
#include "lineage/query_lineage.h"
#include "storage/table.h"

namespace smoke {

/// Group-by query description: key columns plus aggregate list.
struct GroupBySpec {
  std::vector<int> keys;
  std::vector<AggSpec> aggs;
  /// Name-based key references: resolved against the input schema by
  /// PlanBuilder::Build, appended to `keys` in order, then cleared.
  /// Aggregate expressions resolve their own ScalarExpr::Col names.
  std::vector<std::string> key_names;
};

/// \brief The retained γht hash table: key -> dense group slot, plus the
/// per-group arena (aggregation state, counts, representative rids, i_rids).
///
/// Group slots are assigned in first-encounter order and γagg emits groups in
/// slot order, so slot == output rid. The handle outlives the operator so
/// Defer can re-probe it (hash-table reuse, paper P4) and so downstream
/// consumers (Logic-Idx, lazy comparisons, cube push-down) can reuse it.
class GroupByHandle {
 public:
  GroupByHandle() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(GroupByHandle);

  size_t num_groups() const { return counts_.size(); }

  /// Probes the hash table with row `rid` of the original input; returns the
  /// group slot (== output rid) or IntKeyMap::kNotFound.
  uint32_t Probe(const Table& input, rid_t rid) const;

  const std::vector<uint32_t>& counts() const { return counts_; }
  const AggLayout& layout() const { return layout_; }
  const std::vector<double>& agg_state() const { return agg_state_; }

 private:
  friend struct GroupByInternals;

  bool int_key_ = false;
  int int_key_col_ = -1;
  std::vector<int> key_cols_;
  IntKeyMap int_map_{64};
  std::unordered_map<std::string, uint32_t> str_map_;

  AggLayout layout_;
  std::vector<double> agg_state_;   // stride per group
  std::vector<rid_t> first_rid_;    // representative input rid per group
  std::vector<uint32_t> counts_;    // input rows per group
  std::vector<RidVec> i_rids_;      // Inject: backward lists (pre-move)
};

/// Result of a group-by: output relation (key columns then aggregate
/// columns), lineage per the capture mode, and the retained hash table.
struct GroupByResult {
  Table output;
  QueryLineage lineage;
  std::shared_ptr<GroupByHandle> handle;
  /// Logic modes only: the denormalized annotated relation (Perm rewrite).
  Table annotated;
};

/// Executes the group-by with the capture technique in `opts`.
/// Under Logic modes the output is the denormalized annotated relation
/// (one row per input row: group keys, aggregates, then "prov_rid" or full
/// input tuple); the proper query output can be emitted separately.
GroupByResult GroupByExec(const Table& input, const std::string& input_name,
                          const GroupBySpec& spec, const CaptureOptions& opts);

/// The paper's Zγ operator: completes lineage for a kDefer run by re-scanning
/// the input and probing the retained hash table. Populates result->lineage
/// with exactly-sized indexes. No-op if lineage is already present.
void FinalizeDeferredGroupBy(GroupByResult* result, const Table& input,
                             const CaptureOptions& opts);

/// What a delta batch did to a retained γht handle (incremental refresh,
/// src/refresh/): one group slot per delta row, plus the touched groups in
/// first-touch order. Slot == output rid; slots >= old_num_groups were
/// created by this delta (their output rows were appended at the end, so
/// slot assignment matches a from-scratch re-execution bit-identically).
struct GroupByDelta {
  std::vector<uint32_t> slots;    ///< group slot per delta row, in rid order
  std::vector<uint32_t> touched;  ///< distinct touched slots, first-touch order
  size_t old_num_groups = 0;
};

/// Merges the delta rows [first_new_rid, input.num_rows()) of a retained
/// group-by's input into its γht handle: updates aggregate state and counts,
/// appends one row to `output` per new group, and patches the finalized
/// aggregate values of every touched group in place (`output` is the
/// retained result table — key columns then aggregate columns, slot ==
/// output rid). Lineage-index maintenance is the caller's job (the composed
/// indexes live with the plan, not the kernel).
GroupByDelta GroupByDeltaAppend(GroupByHandle* h, const Table& input,
                                rid_t first_new_rid, Table* output);

}  // namespace smoke

#endif  // SMOKE_ENGINE_GROUP_BY_H_
