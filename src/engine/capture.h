// Lineage capture configuration: technique taxonomy (paper Table 1),
// cardinality hints (Smoke-I+TC / +EC), direction & relation pruning
// (Section 4.1), and the virtual edge-writer interface used by the physical
// baselines (Phys-Mem, Phys-Bdb).
#ifndef SMOKE_ENGINE_CAPTURE_H_
#define SMOKE_ENGINE_CAPTURE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "lineage/store/rid_codec.h"

namespace smoke {

class TaskScheduler;  // plan/scheduler.h: morsel-dispatch interface

/// Capture technique taxonomy — paper Table 1.
enum class CaptureMode : uint8_t {
  kNone = 0,   ///< Baseline: run the base query without capturing lineage.
  kInject,     ///< Smoke-I: capture inline during operator execution.
  kDefer,      ///< Smoke-D: defer (parts of) index construction post-op.
  kLogicRid,   ///< Perm rewrite, rid annotations (denormalized output).
  kLogicTup,   ///< Perm rewrite, full input-tuple annotations.
  kLogicIdx,   ///< Logic-Rid + scan annotations to build Smoke indexes.
  kPhysMem,    ///< Virtual emit() per lineage edge into in-memory indexes.
  kPhysBdb,    ///< Virtual emit() per edge into an external B-tree store.
};

inline const char* CaptureModeName(CaptureMode m) {
  switch (m) {
    case CaptureMode::kNone:     return "Baseline";
    case CaptureMode::kInject:   return "Smoke-I";
    case CaptureMode::kDefer:    return "Smoke-D";
    case CaptureMode::kLogicRid: return "Logic-Rid";
    case CaptureMode::kLogicTup: return "Logic-Tup";
    case CaptureMode::kLogicIdx: return "Logic-Idx";
    case CaptureMode::kPhysMem:  return "Phys-Mem";
    case CaptureMode::kPhysBdb:  return "Phys-Bdb";
  }
  return "?";
}

inline const char* CaptureModeDescription(CaptureMode m) {
  switch (m) {
    case CaptureMode::kNone:
      return "Smoke without lineage capture";
    case CaptureMode::kInject:
      return "Smoke with inject lineage capture";
    case CaptureMode::kDefer:
      return "Smoke with defer lineage capture";
    case CaptureMode::kLogicRid:
      return "Rid-based annotation";
    case CaptureMode::kLogicTup:
      return "Tuple-based annotation";
    case CaptureMode::kLogicIdx:
      return "Indexing input-output relations";
    case CaptureMode::kPhysMem:
      return "Virtual emit function calls and no reuse";
    case CaptureMode::kPhysBdb:
      return "Lineage capture using BerkeleyDB(-sim)";
  }
  return "?";
}

inline bool IsSmokeMode(CaptureMode m) {
  return m == CaptureMode::kInject || m == CaptureMode::kDefer;
}

/// \brief Cardinality statistics available to capture (paper Sections 3.2 and
/// 6.1: knowing group/join-match cardinalities cuts capture overhead by up to
/// ~60% by pre-allocating rid arrays; selection estimates pre-size the
/// backward rid array — overestimation is preferable to resizing).
struct CardinalityHints {
  /// Exact or estimated number of input records per group / join key.
  /// Keyed by the int64 group-by (or join) key value. (Smoke-I+TC)
  std::unordered_map<int64_t, uint32_t> per_key_counts;
  bool have_per_key_counts = false;

  /// Expected number of distinct groups (pre-sizes the hash table / index).
  size_t expected_groups = 0;

  /// Estimated selectivity of a selection in [0, 1]; negative = unknown.
  /// (Smoke-I+EC)
  double selection_selectivity = -1.0;
};

/// \brief Abstract per-edge lineage sink used by the physical baselines.
///
/// The paper's Phys-* techniques route every lineage edge through a virtual
/// function call into a subsystem that the operator cannot co-optimize with
/// (Section 2.1 "Physical lineage capture"). Concrete writers live in
/// src/baselines (PhysMemWriter, BdbWriter).
class LineageWriter {
 public:
  virtual ~LineageWriter() = default;

  /// Called once before capture with input cardinality (writers may not use
  /// it — the point of Phys-* is that they cannot share operator state).
  virtual void BeginCapture(size_t input_cardinality) = 0;

  /// Stores one lineage edge: output record `out` derives from input `in`.
  virtual void Emit(rid_t out, rid_t in) = 0;

  /// Called once after the operator finishes, with the output cardinality.
  virtual void FinishCapture(size_t output_cardinality) = 0;
};

/// \brief Per-operator capture configuration.
struct CaptureOptions {
  CaptureMode mode = CaptureMode::kNone;

  /// Direction pruning (Section 4.1): skip building an index that the known
  /// workload will never use.
  bool capture_backward = true;
  bool capture_forward = true;

  /// Relation pruning (Section 4.1): names of input relations to capture
  /// for; empty means all. (Consulted by multi-input operators.)
  std::vector<std::string> only_relations;

  /// Optional statistics (TC/EC variants). Borrowed, may be null.
  const CardinalityHints* hints = nullptr;

  /// Edge sink for kPhysMem / kPhysBdb. Borrowed, must outlive the operator.
  LineageWriter* writer = nullptr;

  /// Morsel-driven parallel capture. With num_threads > 1 the parallelizable
  /// kernels (select, group-by, hash-join probe) partition their input into
  /// morsels, capture into thread-local fragment buffers, and merge the
  /// per-morsel fragments deterministically (lineage/fragment_merge.h) —
  /// results and lineage are bit-identical to num_threads == 1. Modes other
  /// than kNone/kInject/kDefer, and kernels without a parallel path, fall
  /// back to the sequential implementation. Default 1 preserves the exact
  /// single-threaded code paths.
  int num_threads = 1;

  /// Shared worker pool (borrowed; plan/executor.cc owns one per ExecutePlan
  /// so all operators of a plan reuse threads; the serving layer passes a
  /// TieredScheduler lease instead so morsels carry a priority class).
  /// Kernels called directly with num_threads > 1 and no scheduler spin up
  /// a transient pool.
  TaskScheduler* scheduler = nullptr;

  /// Rows per morsel for the row-partitioned kernels; 0 = default
  /// (TaskScheduler::kDefaultMorselRows).
  size_t morsel_rows = 0;

  /// Plan-level defer scheduling: when true (and mode == kDefer), plan
  /// execution leaves deferred group-by capture unfinalized and skips
  /// lineage composition; PlanResult::FinalizeDeferred() completes both at
  /// think-time. Ignored by the standalone kernels.
  bool defer_plan_finalize = false;

  /// Retain the operator-level state incremental refresh needs (src/
  /// refresh/): the optimized plan, per-node intermediate outputs, group-by
  /// hash handles and join build maps. Costs memory proportional to the
  /// intermediates, so it is opt-in; SmokeEngine::AppendRows and
  /// ServeCore's incremental snapshot path turn it on for retained views.
  /// Incompatible with defer_plan_finalize (refresh needs composed indexes
  /// and finalized group-bys).
  bool retain_refresh_state = false;

  /// Compressed lineage store policy (lineage/store/): how the engine
  /// re-encodes this query's retained indexes at capture-finalize time.
  /// Capture itself always writes raw (write-optimized) buffers; traces
  /// over encoded indexes are evaluated in-situ and return bit-identical
  /// results for every codec. kRaw keeps today's representation.
  LineageCodec lineage_codec = LineageCodec::kRaw;

  /// Engine-wide lineage memory budget in bytes (0 = leave unchanged).
  /// When retained lineage exceeds the budget, the engine re-encodes the
  /// coldest indexes adaptively, then evicts cold queries entirely —
  /// evicted queries transparently answer backward traces via the
  /// lazy-rescan strategy. Equivalent to SmokeEngine::SetLineageBudget.
  size_t lineage_budget_bytes = 0;

  /// Run the rule-based plan rewriter (src/optimizer/) before executing a
  /// LogicalPlan. Rewrites preserve results and lineage bit-identically;
  /// false is the ablation / debugging path (bench --no-optimize). Ignored
  /// by the standalone kernels.
  bool optimize = true;

  /// True when this operator execution should take a parallel path.
  bool WantsParallel() const {
    return num_threads > 1 &&
           (mode == CaptureMode::kNone || mode == CaptureMode::kInject ||
            mode == CaptureMode::kDefer);
  }

  bool WantsTable(const std::string& name) const {
    if (only_relations.empty()) return true;
    for (const auto& t : only_relations) {
      if (t == name) return true;
    }
    return false;
  }

  static CaptureOptions None() { return CaptureOptions{}; }
  static CaptureOptions Inject() {
    CaptureOptions o;
    o.mode = CaptureMode::kInject;
    return o;
  }
  static CaptureOptions Defer() {
    CaptureOptions o;
    o.mode = CaptureMode::kDefer;
    return o;
  }
  static CaptureOptions Mode(CaptureMode m) {
    CaptureOptions o;
    o.mode = m;
    return o;
  }
};

}  // namespace smoke

#endif  // SMOKE_ENGINE_CAPTURE_H_
