// Scalar expressions and predicates.
//
// Predicates are small POD structs compared against typed constants; hot
// loops evaluate them through PredicateList, which binds column payloads
// once so per-row evaluation is branch-predictable switch dispatch with no
// virtual calls (tight integration, paper P1).
#ifndef SMOKE_ENGINE_EXPR_H_
#define SMOKE_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/types.h"
#include "storage/table.h"

namespace smoke {

enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe, kIn };

/// \brief A comparison of one column against a constant, an IN set, or
/// another column of the same table (rhs_col >= 0).
///
/// Columns are referenced by index, or by name through the string factory
/// overloads: `col_name` / `rhs_col_name` are resolved against the owning
/// node's input schema by PlanBuilder::Build (plan/plan.h) and cleared once
/// resolved. Execution kernels only ever see indexes.
struct Predicate {
  int col = -1;
  CmpOp op = CmpOp::kEq;
  DataType type = DataType::kInt64;
  int64_t ival = 0;
  double dval = 0;
  std::string sval;
  std::vector<int64_t> in_ints;
  std::vector<std::string> in_strs;
  int rhs_col = -1;  ///< column-to-column comparison (e.g., TPC-H Q12)
  std::string col_name;      ///< unresolved name form of `col`
  std::string rhs_col_name;  ///< unresolved name form of `rhs_col`

  static Predicate Int(int col, CmpOp op, int64_t v) {
    Predicate p;
    p.col = col; p.op = op; p.type = DataType::kInt64; p.ival = v;
    return p;
  }
  static Predicate Double(int col, CmpOp op, double v) {
    Predicate p;
    p.col = col; p.op = op; p.type = DataType::kFloat64; p.dval = v;
    return p;
  }
  static Predicate Str(int col, CmpOp op, std::string v) {
    Predicate p;
    p.col = col; p.op = op; p.type = DataType::kString; p.sval = std::move(v);
    return p;
  }
  static Predicate IntIn(int col, std::vector<int64_t> vals) {
    Predicate p;
    p.col = col; p.op = CmpOp::kIn; p.type = DataType::kInt64;
    p.in_ints = std::move(vals);
    return p;
  }
  static Predicate StrIn(int col, std::vector<std::string> vals) {
    Predicate p;
    p.col = col; p.op = CmpOp::kIn; p.type = DataType::kString;
    p.in_strs = std::move(vals);
    return p;
  }
  static Predicate ColCmp(int col, CmpOp op, int rhs_col, DataType type) {
    Predicate p;
    p.col = col; p.op = op; p.type = type; p.rhs_col = rhs_col;
    return p;
  }

  // Name-based forms, resolved at plan-build time.
  static Predicate Int(std::string col, CmpOp op, int64_t v) {
    Predicate p = Int(-1, op, v);
    p.col_name = std::move(col);
    return p;
  }
  static Predicate Double(std::string col, CmpOp op, double v) {
    Predicate p = Double(-1, op, v);
    p.col_name = std::move(col);
    return p;
  }
  static Predicate Str(std::string col, CmpOp op, std::string v) {
    Predicate p = Str(-1, op, std::move(v));
    p.col_name = std::move(col);
    return p;
  }
  static Predicate IntIn(std::string col, std::vector<int64_t> vals) {
    Predicate p = IntIn(-1, std::move(vals));
    p.col_name = std::move(col);
    return p;
  }
  static Predicate StrIn(std::string col, std::vector<std::string> vals) {
    Predicate p = StrIn(-1, std::move(vals));
    p.col_name = std::move(col);
    return p;
  }
  /// The compared type is taken from the resolved column's schema entry.
  static Predicate ColCmp(std::string col, CmpOp op, std::string rhs_col) {
    Predicate p = ColCmp(-1, op, -1, DataType::kInt64);
    p.col_name = std::move(col);
    p.rhs_col_name = std::move(rhs_col);
    return p;
  }
};

/// \brief A conjunction of predicates bound to a table's column payloads.
class PredicateList {
 public:
  PredicateList() = default;
  PredicateList(const Table& table, std::vector<Predicate> preds);

  /// True when every predicate accepts row `rid`.
  bool Eval(rid_t rid) const {
    for (const auto& b : bound_) {
      if (!EvalOne(b, rid)) return false;
    }
    return true;
  }

  bool empty() const { return bound_.empty(); }
  size_t size() const { return bound_.size(); }
  const std::vector<Predicate>& predicates() const { return preds_; }

 private:
  struct Bound {
    const Predicate* pred;
    const int64_t* icol = nullptr;
    const double* dcol = nullptr;
    const std::string* scol = nullptr;
    const int64_t* icol2 = nullptr;  // rhs column (col-to-col compares)
    const double* dcol2 = nullptr;
    const std::string* scol2 = nullptr;
  };

  static bool EvalOne(const Bound& b, rid_t rid);

  std::vector<Predicate> preds_;
  std::vector<Bound> bound_;
};

/// \brief Arithmetic scalar expression AST (aggregate arguments like
/// l_extendedprice * (1 - l_discount) * (1 + l_tax), sum(v*v), sqrt(v)).
///
/// Predicates can be embedded (Indicator), evaluating to 1.0/0.0 — this is
/// how CASE WHEN ... THEN 1 ELSE 0 aggregates (TPC-H Q12) are expressed.
struct ScalarExpr {
  enum class Op : uint8_t {
    kCol, kConst, kAdd, kSub, kMul, kDiv, kSqrt, kIndicator
  };

  Op op = Op::kConst;
  int col = -1;
  /// Unresolved name form of `col` (kCol only) — resolved against the
  /// owning node's input schema by PlanBuilder::Build and cleared.
  std::string col_name;
  double constant = 0;
  std::unique_ptr<Predicate> pred;  // Indicator payload
  std::unique_ptr<ScalarExpr> left;
  std::unique_ptr<ScalarExpr> right;

  ScalarExpr() = default;
  ScalarExpr(const ScalarExpr& other) { *this = other; }
  ScalarExpr& operator=(const ScalarExpr& other);
  ScalarExpr(ScalarExpr&&) = default;
  ScalarExpr& operator=(ScalarExpr&&) = default;

  static ScalarExpr Col(int c);
  static ScalarExpr Col(std::string name);
  static ScalarExpr Const(double v);
  static ScalarExpr Add(ScalarExpr a, ScalarExpr b);
  static ScalarExpr Sub(ScalarExpr a, ScalarExpr b);
  static ScalarExpr Mul(ScalarExpr a, ScalarExpr b);
  static ScalarExpr Div(ScalarExpr a, ScalarExpr b);
  static ScalarExpr Sqrt(ScalarExpr a);
  static ScalarExpr Indicator(Predicate p);
};

/// \brief A ScalarExpr compiled to a postfix program over bound column
/// payloads; evaluation runs a small value stack with no allocation.
class CompiledExpr {
 public:
  CompiledExpr() = default;
  CompiledExpr(const Table& table, const ScalarExpr& expr);

  double Eval(rid_t rid) const;

 private:
  struct Instr {
    ScalarExpr::Op op;
    const int64_t* icol = nullptr;
    const double* dcol = nullptr;
    double constant = 0;
    // Indicator payload
    std::shared_ptr<PredicateList> pred;
  };

  void Compile(const Table& table, const ScalarExpr& expr);

  std::vector<Instr> prog_;
  size_t max_stack_ = 0;
};

}  // namespace smoke

#endif  // SMOKE_ENGINE_EXPR_H_
