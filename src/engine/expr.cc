#include "engine/expr.h"

#include <algorithm>
#include <cmath>

namespace smoke {

PredicateList::PredicateList(const Table& table, std::vector<Predicate> preds)
    : preds_(std::move(preds)) {
  bound_.reserve(preds_.size());
  for (auto& p : preds_) {
    // Name forms reaching a kernel directly (no PlanBuilder::Build pass)
    // resolve here; unknown names abort like Table::column(name).
    if (!p.col_name.empty()) {
      p.col = table.ColumnIndex(p.col_name);
      SMOKE_CHECK(p.col >= 0);
      p.col_name.clear();
    }
    if (!p.rhs_col_name.empty()) {
      p.rhs_col = table.ColumnIndex(p.rhs_col_name);
      SMOKE_CHECK(p.rhs_col >= 0);
      p.rhs_col_name.clear();
      p.type = table.schema().field(static_cast<size_t>(p.col)).type;
    }
    SMOKE_CHECK(p.col >= 0 &&
                static_cast<size_t>(p.col) < table.num_columns());
    Bound b;
    b.pred = &p;
    const Column& c = table.column(static_cast<size_t>(p.col));
    SMOKE_CHECK(c.type() == p.type);
    switch (c.type()) {
      case DataType::kInt64:   b.icol = c.ints().data(); break;
      case DataType::kFloat64: b.dcol = c.doubles().data(); break;
      case DataType::kString:  b.scol = c.strings().data(); break;
    }
    if (p.rhs_col >= 0) {
      const Column& c2 = table.column(static_cast<size_t>(p.rhs_col));
      SMOKE_CHECK(c2.type() == p.type);
      switch (c2.type()) {
        case DataType::kInt64:   b.icol2 = c2.ints().data(); break;
        case DataType::kFloat64: b.dcol2 = c2.doubles().data(); break;
        case DataType::kString:  b.scol2 = c2.strings().data(); break;
      }
    }
    bound_.push_back(b);
  }
}

namespace {

template <typename T>
bool Compare(CmpOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kIn: return false;  // handled by caller
  }
  return false;
}

}  // namespace

bool PredicateList::EvalOne(const Bound& b, rid_t rid) {
  const Predicate& p = *b.pred;
  if (p.rhs_col >= 0) {
    switch (p.type) {
      case DataType::kInt64:   return Compare(p.op, b.icol[rid], b.icol2[rid]);
      case DataType::kFloat64: return Compare(p.op, b.dcol[rid], b.dcol2[rid]);
      case DataType::kString:  return Compare(p.op, b.scol[rid], b.scol2[rid]);
    }
    return false;
  }
  if (p.op == CmpOp::kIn) {
    if (b.icol != nullptr) {
      int64_t v = b.icol[rid];
      return std::find(p.in_ints.begin(), p.in_ints.end(), v) !=
             p.in_ints.end();
    }
    const std::string& v = b.scol[rid];
    return std::find(p.in_strs.begin(), p.in_strs.end(), v) !=
           p.in_strs.end();
  }
  switch (p.type) {
    case DataType::kInt64:   return Compare(p.op, b.icol[rid], p.ival);
    case DataType::kFloat64: return Compare(p.op, b.dcol[rid], p.dval);
    case DataType::kString:  return Compare(p.op, b.scol[rid], p.sval);
  }
  return false;
}

ScalarExpr& ScalarExpr::operator=(const ScalarExpr& other) {
  if (this == &other) return *this;
  op = other.op;
  col = other.col;
  col_name = other.col_name;
  constant = other.constant;
  pred = other.pred ? std::make_unique<Predicate>(*other.pred) : nullptr;
  left = other.left ? std::make_unique<ScalarExpr>(*other.left) : nullptr;
  right = other.right ? std::make_unique<ScalarExpr>(*other.right) : nullptr;
  return *this;
}

ScalarExpr ScalarExpr::Col(int c) {
  ScalarExpr e;
  e.op = Op::kCol;
  e.col = c;
  return e;
}
ScalarExpr ScalarExpr::Col(std::string name) {
  ScalarExpr e;
  e.op = Op::kCol;
  e.col_name = std::move(name);
  return e;
}
ScalarExpr ScalarExpr::Const(double v) {
  ScalarExpr e;
  e.op = Op::kConst;
  e.constant = v;
  return e;
}
namespace {
ScalarExpr Binary(ScalarExpr::Op op, ScalarExpr a, ScalarExpr b) {
  ScalarExpr e;
  e.op = op;
  e.left = std::make_unique<ScalarExpr>(std::move(a));
  e.right = std::make_unique<ScalarExpr>(std::move(b));
  return e;
}
}  // namespace
ScalarExpr ScalarExpr::Add(ScalarExpr a, ScalarExpr b) {
  return Binary(Op::kAdd, std::move(a), std::move(b));
}
ScalarExpr ScalarExpr::Sub(ScalarExpr a, ScalarExpr b) {
  return Binary(Op::kSub, std::move(a), std::move(b));
}
ScalarExpr ScalarExpr::Mul(ScalarExpr a, ScalarExpr b) {
  return Binary(Op::kMul, std::move(a), std::move(b));
}
ScalarExpr ScalarExpr::Div(ScalarExpr a, ScalarExpr b) {
  return Binary(Op::kDiv, std::move(a), std::move(b));
}
ScalarExpr ScalarExpr::Sqrt(ScalarExpr a) {
  ScalarExpr e;
  e.op = Op::kSqrt;
  e.left = std::make_unique<ScalarExpr>(std::move(a));
  return e;
}
ScalarExpr ScalarExpr::Indicator(Predicate p) {
  ScalarExpr e;
  e.op = Op::kIndicator;
  e.pred = std::make_unique<Predicate>(std::move(p));
  return e;
}

CompiledExpr::CompiledExpr(const Table& table, const ScalarExpr& expr) {
  Compile(table, expr);
  // Postfix stack depth is bounded by expression depth; compute a safe bound.
  max_stack_ = prog_.size() + 1;
  SMOKE_CHECK(max_stack_ <= 64);  // expressions in this engine are small
}

void CompiledExpr::Compile(const Table& table, const ScalarExpr& expr) {
  switch (expr.op) {
    case ScalarExpr::Op::kCol: {
      Instr in;
      in.op = ScalarExpr::Op::kCol;
      int col = expr.col;
      if (!expr.col_name.empty()) {
        col = table.ColumnIndex(expr.col_name);
        SMOKE_CHECK(col >= 0);
      }
      const Column& c = table.column(static_cast<size_t>(col));
      SMOKE_CHECK(c.type() != DataType::kString);
      if (c.type() == DataType::kInt64) in.icol = c.ints().data();
      else in.dcol = c.doubles().data();
      prog_.push_back(std::move(in));
      break;
    }
    case ScalarExpr::Op::kConst: {
      Instr in;
      in.op = ScalarExpr::Op::kConst;
      in.constant = expr.constant;
      prog_.push_back(std::move(in));
      break;
    }
    case ScalarExpr::Op::kIndicator: {
      Instr in;
      in.op = ScalarExpr::Op::kIndicator;
      in.pred = std::make_shared<PredicateList>(
          table, std::vector<Predicate>{*expr.pred});
      prog_.push_back(std::move(in));
      break;
    }
    case ScalarExpr::Op::kSqrt:
      Compile(table, *expr.left);
      prog_.push_back({ScalarExpr::Op::kSqrt, nullptr, nullptr, 0, nullptr});
      break;
    default:
      Compile(table, *expr.left);
      Compile(table, *expr.right);
      prog_.push_back({expr.op, nullptr, nullptr, 0, nullptr});
      break;
  }
}

double CompiledExpr::Eval(rid_t rid) const {
  double stack[64];
  size_t top = 0;
  for (const Instr& in : prog_) {
    switch (in.op) {
      case ScalarExpr::Op::kCol:
        stack[top++] = in.icol ? static_cast<double>(in.icol[rid])
                               : in.dcol[rid];
        break;
      case ScalarExpr::Op::kConst:
        stack[top++] = in.constant;
        break;
      case ScalarExpr::Op::kIndicator:
        stack[top++] = in.pred->Eval(rid) ? 1.0 : 0.0;
        break;
      case ScalarExpr::Op::kSqrt:
        stack[top - 1] = std::sqrt(stack[top - 1]);
        break;
      case ScalarExpr::Op::kAdd:
        stack[top - 2] += stack[top - 1];
        --top;
        break;
      case ScalarExpr::Op::kSub:
        stack[top - 2] -= stack[top - 1];
        --top;
        break;
      case ScalarExpr::Op::kMul:
        stack[top - 2] *= stack[top - 1];
        --top;
        break;
      case ScalarExpr::Op::kDiv:
        stack[top - 2] /= stack[top - 1];
        --top;
        break;
    }
  }
  SMOKE_DCHECK(top == 1);
  return stack[0];
}

}  // namespace smoke
